// Package rng supplies the deterministic random-number machinery for the
// TESLA reproduction: a xoshiro256** pseudo-random generator, Gaussian
// variates, and a Sobol low-discrepancy sequence used for the quasi-Monte
// Carlo integration inside the constrained noisy-EI acquisition function.
//
// Everything is seeded explicitly so that experiments, tests and benchmarks
// are bit-reproducible without global state.
package rng

import "math"

// Rand is a xoshiro256** generator. It is not safe for concurrent use; give
// each goroutine its own instance (Split derives independent streams).
type Rand struct {
	s [4]uint64
	// cached second normal variate from the Box–Muller transform
	haveGauss bool
	gauss     float64
}

// New returns a generator seeded from the given seed via SplitMix64, which
// guarantees a well-mixed non-zero internal state for any seed value.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// State is a Rand's full internal state, exported for checkpointing: a
// generator restored from it continues the exact variate stream, including
// the cached Box–Muller half.
type State struct {
	S         [4]uint64
	HaveGauss bool
	Gauss     float64
}

// State captures the generator's current state.
func (r *Rand) State() State {
	return State{S: r.s, HaveGauss: r.haveGauss, Gauss: r.gauss}
}

// Restore resets the generator to a previously captured state.
func (r *Rand) Restore(st State) {
	r.s = st.S
	r.haveGauss = st.HaveGauss
	r.gauss = st.Gauss
}

// Split derives a statistically independent generator from r, advancing r.
func (r *Rand) Split() *Rand { return New(r.Uint64() ^ 0xa0761d6478bd642f) }

// SeedFor derives the seed of substream `stream` of a base seed via a
// SplitMix64 finalizer over base⊕mix(stream). Unlike Split it is a pure
// function of (base, stream), which is what parallel fan-outs need: worker
// k of a pool seeds its generator with SeedFor(base, k) and the ensemble of
// streams is identical no matter how many workers ran or in what order.
func SeedFor(base, stream uint64) uint64 {
	z := base + (stream+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewStream returns New(SeedFor(base, stream)): the canonical way to build
// per-task generators inside a parallel region.
func NewStream(base, stream uint64) *Rand { return New(SeedFor(base, stream)) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform variate in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate via the Box–Muller transform.
func (r *Rand) Norm() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// NormScaled returns mean + std·Norm().
func (r *Rand) NormScaled(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes idx in place.
func (r *Rand) Shuffle(idx []int) {
	for i := len(idx) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
}
