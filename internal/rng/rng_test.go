package rng

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between independent streams", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(8)
	var sum, sum2 float64
	n := 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %g far from 0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Fatalf("uniform variance %g far from 1/12", variance)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	var sum, sum2 float64
	n := 100000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %g far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %g far from 1", variance)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := New(10)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for Intn(0)")
		}
	}()
	r.Intn(0)
}

func TestUniformRange(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(20, 35)
		if v < 20 || v >= 35 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%20)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		sorted := append([]int(nil), p...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(12)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatalf("split streams should differ")
	}
}

func TestInvNormCDFRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := InvNormCDF(p)
		back := NormCDF(x)
		if math.Abs(back-p) > 1e-9 {
			t.Fatalf("roundtrip at p=%g: Φ(Φ⁻¹(p)) = %g", p, back)
		}
	}
}

func TestInvNormCDFEdges(t *testing.T) {
	if !math.IsInf(InvNormCDF(0), -1) || !math.IsInf(InvNormCDF(1), 1) {
		t.Fatalf("edges should map to ±Inf")
	}
	if !math.IsNaN(InvNormCDF(-0.1)) || !math.IsNaN(InvNormCDF(1.1)) {
		t.Fatalf("out-of-range p should be NaN")
	}
	if InvNormCDF(0.5) != 0 && math.Abs(InvNormCDF(0.5)) > 1e-12 {
		t.Fatalf("median should be ~0, got %g", InvNormCDF(0.5))
	}
}

func TestNormPDFKnown(t *testing.T) {
	if math.Abs(NormPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatalf("φ(0) wrong: %g", NormPDF(0))
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(13)
	idx := []int{1, 2, 3, 4, 5}
	r.Shuffle(idx)
	sorted := append([]int(nil), idx...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i+1 {
			t.Fatalf("shuffle lost elements: %v", idx)
		}
	}
}

func TestSeedForDeterministicAndDistinct(t *testing.T) {
	if SeedFor(7, 3) != SeedFor(7, 3) {
		t.Fatalf("SeedFor must be a pure function")
	}
	seen := map[uint64]bool{}
	for stream := uint64(0); stream < 1000; stream++ {
		s := SeedFor(42, stream)
		if seen[s] {
			t.Fatalf("substream collision at stream %d", stream)
		}
		seen[s] = true
	}
	if SeedFor(1, 0) == SeedFor(2, 0) {
		t.Fatalf("different bases must give different streams")
	}
}

func TestNewStreamIndependence(t *testing.T) {
	// Streams of the same base must not be trivially correlated: compare the
	// first draws of many substreams for repeats.
	seen := map[uint64]bool{}
	for stream := uint64(0); stream < 200; stream++ {
		v := NewStream(99, stream).Uint64()
		if seen[v] {
			t.Fatalf("substreams share their first draw (stream %d)", stream)
		}
		seen[v] = true
	}
	// And a substream is reproducible.
	a, b := NewStream(5, 17), NewStream(5, 17)
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("substream not reproducible at draw %d", i)
		}
	}
}
