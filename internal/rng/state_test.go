package rng

import "testing"

// TestStateRestoreContinuesStream: a generator restored from a captured state
// must continue the exact variate stream — including the cached Box–Muller
// half, which an odd Norm() count leaves pending.
func TestStateRestoreContinuesStream(t *testing.T) {
	r := New(42)
	for i := 0; i < 17; i++ {
		r.Norm()
	}
	st := r.State()
	if !st.HaveGauss {
		t.Fatal("odd Norm() count should leave a cached gaussian")
	}
	want := make([]float64, 64)
	for i := range want {
		if i%3 == 0 {
			want[i] = r.Norm()
		} else {
			want[i] = r.Float64()
		}
	}
	r2 := New(99999) // deliberately different seed — Restore must fully overwrite
	r2.Restore(st)
	for i := range want {
		var got float64
		if i%3 == 0 {
			got = r2.Norm()
		} else {
			got = r2.Float64()
		}
		if got != want[i] {
			t.Fatalf("draw %d diverged after restore: %g != %g", i, got, want[i])
		}
	}
}
