package rng

import "fmt"

// Sobol generates a Sobol' low-discrepancy sequence in up to MaxSobolDim
// dimensions using Gray-code construction with Joe–Kuo direction numbers.
// An optional random digital shift (XOR scramble) turns the deterministic
// sequence into a randomized QMC estimator, which is what the constrained
// noisy-EI acquisition function uses to integrate over the GP posterior.
type Sobol struct {
	dim   int
	count uint64
	v     [][]uint64 // v[d][bit] direction numbers, 32 bits
	x     []uint64   // current integer state per dimension
	shift []uint64   // digital shift per dimension (0 = unscrambled)
}

// MaxSobolDim is the largest supported dimensionality.
const MaxSobolDim = 32

const sobolBits = 32

// sobolPoly encodes, per dimension d >= 2, the primitive polynomial degree s,
// the coefficient word a, and the initial direction numbers m (Joe–Kuo).
var sobolPoly = []struct {
	s, a uint
	m    []uint64
}{
	{1, 0, []uint64{1}},
	{2, 1, []uint64{1, 3}},
	{3, 1, []uint64{1, 3, 1}},
	{3, 2, []uint64{1, 1, 1}},
	{4, 1, []uint64{1, 1, 3, 3}},
	{4, 4, []uint64{1, 3, 5, 13}},
	{5, 2, []uint64{1, 1, 5, 5, 17}},
	{5, 4, []uint64{1, 1, 5, 5, 5}},
	{5, 7, []uint64{1, 1, 7, 11, 19}},
	{5, 11, []uint64{1, 1, 5, 1, 1}},
	{5, 13, []uint64{1, 1, 1, 3, 11}},
	{5, 14, []uint64{1, 3, 5, 5, 31}},
	{6, 1, []uint64{1, 3, 3, 9, 7, 49}},
	{6, 13, []uint64{1, 1, 1, 15, 21, 21}},
	{6, 16, []uint64{1, 3, 1, 13, 27, 49}},
	{6, 19, []uint64{1, 1, 1, 15, 7, 5}},
	{6, 22, []uint64{1, 3, 1, 15, 13, 25}},
	{6, 25, []uint64{1, 1, 5, 5, 19, 61}},
	{7, 1, []uint64{1, 3, 7, 11, 23, 15, 103}},
	{7, 4, []uint64{1, 3, 7, 13, 13, 15, 69}},
	{7, 7, []uint64{1, 1, 3, 13, 7, 35, 63}},
	{7, 8, []uint64{1, 3, 5, 9, 1, 25, 53}},
	{7, 14, []uint64{1, 3, 1, 13, 9, 35, 107}},
	{7, 19, []uint64{1, 3, 1, 5, 27, 61, 31}},
	{7, 21, []uint64{1, 1, 5, 11, 19, 41, 61}},
	{7, 28, []uint64{1, 3, 5, 3, 3, 13, 69}},
	{7, 31, []uint64{1, 1, 7, 13, 1, 19, 1}},
	{7, 32, []uint64{1, 3, 7, 5, 13, 19, 59}},
	{7, 37, []uint64{1, 1, 3, 9, 25, 29, 41}},
	{7, 41, []uint64{1, 3, 5, 13, 23, 1, 55}},
	{7, 42, []uint64{1, 3, 7, 3, 13, 59, 17}},
}

// NewSobol returns a Sobol sequence over the unit hypercube [0,1)^dim.
func NewSobol(dim int) (*Sobol, error) {
	if dim < 1 || dim > MaxSobolDim {
		return nil, fmt.Errorf("rng: Sobol dimension %d outside [1,%d]", dim, MaxSobolDim)
	}
	s := &Sobol{
		dim:   dim,
		v:     make([][]uint64, dim),
		x:     make([]uint64, dim),
		shift: make([]uint64, dim),
	}
	// Dimension 0 is the van der Corput sequence: v[bit] = 2^(31-bit).
	s.v[0] = make([]uint64, sobolBits)
	for b := 0; b < sobolBits; b++ {
		s.v[0][b] = 1 << (sobolBits - 1 - b)
	}
	for d := 1; d < dim; d++ {
		p := sobolPoly[d-1]
		deg := int(p.s)
		v := make([]uint64, sobolBits)
		for i := 0; i < deg && i < sobolBits; i++ {
			v[i] = p.m[i] << (sobolBits - 1 - i)
		}
		for i := deg; i < sobolBits; i++ {
			vi := v[i-deg] ^ (v[i-deg] >> uint(deg))
			for k := 1; k < deg; k++ {
				if (p.a>>(uint(deg)-1-uint(k)))&1 == 1 {
					vi ^= v[i-k]
				}
			}
			v[i] = vi
		}
		s.v[d] = v
	}
	return s, nil
}

// Scramble applies an independent random digital shift per dimension drawn
// from r, converting the sequence into a randomized QMC point set. Call it
// before generating points.
func (s *Sobol) Scramble(r *Rand) {
	for d := range s.shift {
		s.shift[d] = r.Uint64() >> (64 - sobolBits)
	}
}

// Next writes the next point of the sequence into dst (len >= dim) and
// returns dst[:dim]. The very first point of an unscrambled sequence is the
// origin; callers wanting a strictly interior point set may Skip(1).
func (s *Sobol) Next(dst []float64) []float64 {
	if len(dst) < s.dim {
		dst = make([]float64, s.dim)
	}
	for d := 0; d < s.dim; d++ {
		dst[d] = float64(s.x[d]^s.shift[d]) / float64(uint64(1)<<sobolBits)
	}
	// Gray-code update: flip by the direction number of the lowest zero bit.
	c := 0
	n := s.count
	for n&1 == 1 {
		n >>= 1
		c++
	}
	for d := 0; d < s.dim; d++ {
		s.x[d] ^= s.v[d][c]
	}
	s.count++
	return dst[:s.dim]
}

// Skip advances the sequence by n points without emitting them.
func (s *Sobol) Skip(n int) {
	var buf []float64
	for i := 0; i < n; i++ {
		buf = s.Next(buf)
	}
}

// Points returns n consecutive points as an n×dim slice-of-slices.
func (s *Sobol) Points(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = append([]float64(nil), s.Next(nil)...)
	}
	return out
}

// Dim reports the dimensionality of the sequence.
func (s *Sobol) Dim() int { return s.dim }
