package rng

import (
	"math"
	"testing"
)

func TestSobolDim1IsVanDerCorput(t *testing.T) {
	s, err := NewSobol(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125}
	for i, w := range want {
		got := s.Next(nil)[0]
		if math.Abs(got-w) > 1e-12 {
			t.Fatalf("van der Corput point %d = %g, want %g", i, got, w)
		}
	}
}

func TestSobolRange(t *testing.T) {
	for _, dim := range []int{1, 2, 5, 16, 32} {
		s, err := NewSobol(dim)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 256; i++ {
			p := s.Next(nil)
			if len(p) != dim {
				t.Fatalf("dim %d point has length %d", dim, len(p))
			}
			for _, v := range p {
				if v < 0 || v >= 1 {
					t.Fatalf("dim %d point outside [0,1): %g", dim, v)
				}
			}
		}
	}
}

func TestSobolDimValidation(t *testing.T) {
	if _, err := NewSobol(0); err == nil {
		t.Fatalf("dim 0 should error")
	}
	if _, err := NewSobol(MaxSobolDim + 1); err == nil {
		t.Fatalf("dim %d should error", MaxSobolDim+1)
	}
}

func TestSobolUniformityBeatsExpectedError(t *testing.T) {
	// The mean of n Sobol points converges as ~1/n, far better than the
	// 1/√n Monte-Carlo rate; with 1024 points the mean must be very close
	// to 0.5 in every dimension.
	s, err := NewSobol(8)
	if err != nil {
		t.Fatal(err)
	}
	n := 1024
	sums := make([]float64, 8)
	for i := 0; i < n; i++ {
		p := s.Next(nil)
		for d, v := range p {
			sums[d] += v
		}
	}
	for d, sum := range sums {
		mean := sum / float64(n)
		if math.Abs(mean-0.5) > 0.01 {
			t.Fatalf("dim %d mean %g too far from 0.5 for a low-discrepancy set", d, mean)
		}
	}
}

func TestSobolScrambleStaysInRangeAndChangesPoints(t *testing.T) {
	a, _ := NewSobol(4)
	b, _ := NewSobol(4)
	b.Scramble(New(99))
	differ := false
	for i := 0; i < 64; i++ {
		pa := append([]float64(nil), a.Next(nil)...)
		pb := append([]float64(nil), b.Next(nil)...)
		for d := range pb {
			if pb[d] < 0 || pb[d] >= 1 {
				t.Fatalf("scrambled point outside range: %g", pb[d])
			}
			if pa[d] != pb[d] {
				differ = true
			}
		}
	}
	if !differ {
		t.Fatalf("scramble changed nothing")
	}
}

func TestSobolSkip(t *testing.T) {
	a, _ := NewSobol(2)
	b, _ := NewSobol(2)
	b.Skip(5)
	a.Skip(3)
	a.Skip(2)
	pa := a.Next(nil)
	pb := b.Next(nil)
	for d := range pa {
		if pa[d] != pb[d] {
			t.Fatalf("Skip paths diverged: %v vs %v", pa, pb)
		}
	}
}

func TestSobolPoints(t *testing.T) {
	s, _ := NewSobol(3)
	pts := s.Points(10)
	if len(pts) != 10 || len(pts[0]) != 3 {
		t.Fatalf("Points shape wrong")
	}
	if s.Dim() != 3 {
		t.Fatalf("Dim() = %d", s.Dim())
	}
	// Points must be distinct (after the origin, every point differs).
	for i := 1; i < len(pts); i++ {
		same := true
		for d := range pts[i] {
			if pts[i][d] != pts[i-1][d] {
				same = false
			}
		}
		if same {
			t.Fatalf("consecutive Sobol points identical at %d", i)
		}
	}
}

func TestSobolStratification2D(t *testing.T) {
	// The first 4 points of a 2-D Sobol sequence after the origin land in
	// distinct quadrants — a defining property of (t,m,s)-nets.
	s, _ := NewSobol(2)
	s.Skip(0)
	quadrants := map[[2]int]int{}
	for i := 0; i < 4; i++ {
		p := s.Next(nil)
		q := [2]int{int(p[0] * 2), int(p[1] * 2)}
		quadrants[q]++
	}
	if len(quadrants) != 4 {
		t.Fatalf("first 4 points occupy %d quadrants, want 4", len(quadrants))
	}
}
