// Package mat provides the small dense linear-algebra kernel used throughout
// the TESLA reproduction: row-major float64 matrices, matrix products, Gram
// accumulation, Cholesky factorization and triangular solves.
//
// The package is deliberately minimal — it implements exactly the operations
// required by ridge regression (normal equations), Gaussian-process inference
// and the neural/tree baselines, with cache-friendly loop orders but no
// further micro-optimization. All operations are deterministic.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64.
//
// The zero value is an empty matrix. Use New or NewFromSlice to construct a
// sized matrix. Data is stored in a single backing slice so that rows are
// contiguous: element (i, j) lives at Data[i*Cols+j].
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewFromSlice wraps data as an r×c matrix. The slice is used directly (not
// copied) and must have length r*c.
func NewFromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: slice length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns the i-th row as a subslice sharing the matrix backing store.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// Mul computes a*b into a new matrix using an ikj loop order so the inner
// loop walks both operands contiguously.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec computes a*x for a vector x of length a.Cols.
func MulVec(a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddScaled performs dst += alpha*src element-wise on equal-length vectors.
func AddScaled(dst []float64, alpha float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mat: AddScaled length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += alpha * v
	}
}

// Gram computes Xᵀ·X (the Gram matrix) for the n×d design matrix X.
// Only the upper triangle is accumulated, then mirrored; the accumulation is
// rank-1 per row which keeps the working set to a single sample row.
func Gram(x *Dense) *Dense {
	d := x.Cols
	g := New(d, d)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for a, va := range row {
			if va == 0 {
				continue
			}
			grow := g.Row(a)
			for b := a; b < d; b++ {
				grow[b] += va * row[b]
			}
		}
	}
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			g.Data[b*d+a] = g.Data[a*d+b]
		}
	}
	return g
}

// XtY computes Xᵀ·Y where X is n×d and Y is n×m, producing d×m.
func XtY(x, y *Dense) *Dense {
	if x.Rows != y.Rows {
		panic(fmt.Sprintf("mat: XtY row mismatch %d vs %d", x.Rows, y.Rows))
	}
	out := New(x.Cols, y.Cols)
	for i := 0; i < x.Rows; i++ {
		xrow := x.Row(i)
		yrow := y.Row(i)
		for a, xv := range xrow {
			if xv == 0 {
				continue
			}
			orow := out.Row(a)
			for b, yv := range yrow {
				orow[b] += xv * yv
			}
		}
	}
	return out
}

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	L *Dense
}

// NewCholesky factors the symmetric positive definite matrix a.
// It returns an error if a pivot is non-positive (a not SPD within floating
// point), in which case the caller typically retries with added jitter.
func NewCholesky(a *Dense) (*Cholesky, error) {
	return CholeskyInPlace(a.Clone())
}

// CholeskyInPlace factors a in place, overwriting it with the lower factor L
// (upper triangle zeroed). Only the lower triangle of a is read, so callers
// may build just that half. On error a is left partially overwritten; callers
// that retry with jitter must refill the matrix from their source first.
func CholeskyInPlace(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: Cholesky of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	l := a
	for j := 0; j < n; j++ {
		ljj := l.Data[j*n+j]
		lrowj := l.Row(j)[:j]
		ljj -= Dot(lrowj, lrowj)
		if ljj <= 0 || math.IsNaN(ljj) {
			return nil, fmt.Errorf("mat: matrix not positive definite at pivot %d (value %g)", j, ljj)
		}
		ljj = math.Sqrt(ljj)
		l.Data[j*n+j] = ljj
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			v := l.Data[i*n+j] - Dot(l.Row(i)[:j], lrowj)
			l.Data[i*n+j] = v * inv
		}
	}
	// Zero the upper triangle so L is a clean lower factor.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l.Data[i*n+j] = 0
		}
	}
	return &Cholesky{L: l}, nil
}

// Extend grows the factorization in place by one symmetric row: given the
// factor of an n×n matrix A, it produces the factor of the (n+1)×(n+1)
// matrix [[A, k], [kᵀ, d]] in O(n²) — a forward substitution for the new
// off-diagonal row plus one pivot — instead of the O(n³) full refactorization.
// The result is bit-identical to refactorizing the extended matrix from
// scratch (the leading rows of a Cholesky factor depend only on the leading
// submatrix, and the new row is computed with the same dot/reciprocal
// sequence NewCholesky uses). The factor's storage is reused when its backing
// slice has capacity; on a non-positive pivot the factorization is left
// unchanged and an error is returned.
func (c *Cholesky) Extend(k []float64, d float64) error {
	n := c.L.Rows
	if len(k) != n {
		panic(fmt.Sprintf("mat: Extend row length %d vs order %d", len(k), n))
	}
	m := n + 1
	// Stage the new row in the tail of the target storage so a failed pivot
	// leaves the existing factor untouched.
	row := make([]float64, m)
	var pivot float64
	{
		l := c.L.Data
		for j := 0; j < n; j++ {
			ljj := l[j*n+j]
			v := k[j] - Dot(c.L.Row(j)[:j], row[:j])
			row[j] = v * (1 / ljj)
		}
		pivot = d - Dot(row[:n], row[:n])
		if pivot <= 0 || math.IsNaN(pivot) {
			return fmt.Errorf("mat: extended matrix not positive definite (pivot %g)", pivot)
		}
		row[n] = math.Sqrt(pivot)
	}

	old := c.L.Data
	var data []float64
	if cap(old) >= m*m {
		// Restride rows n-1..1 backward (row i moves from offset i·n to i·m,
		// strictly rightward, so a reverse walk never overwrites unread data).
		data = old[:m*m]
		for i := n - 1; i >= 1; i-- {
			copy(data[i*m:i*m+i+1], data[i*n:i*n+i+1])
		}
	} else {
		data = make([]float64, m*m, 2*m*m)
		for i := 0; i < n; i++ {
			copy(data[i*m:i*m+i+1], old[i*n:i*n+i+1])
		}
	}
	// Zero each old row's upper triangle (restriding leaves stale values
	// behind the diagonal) and install the new row.
	for i := 0; i < n; i++ {
		z := data[i*m+i+1 : (i+1)*m]
		for j := range z {
			z[j] = 0
		}
	}
	copy(data[n*m:], row)
	c.L = &Dense{Rows: m, Cols: m, Data: data}
	return nil
}

// SolveVec solves A·x = b for x given the factorization of A.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	x := make([]float64, len(b))
	c.SolveVecTo(x, b)
	return x
}

// SolveVecTo solves A·x = b into dst without allocating. dst may alias b.
func (c *Cholesky) SolveVecTo(dst, b []float64) {
	n := c.L.Rows
	if len(b) != n || len(dst) != n {
		panic(fmt.Sprintf("mat: SolveVecTo lengths %d,%d vs order %d", len(dst), len(b), n))
	}
	// Forward substitution L·y = b (y lands in dst).
	for i := 0; i < n; i++ {
		dst[i] = (b[i] - Dot(c.L.Row(i)[:i], dst[:i])) / c.L.Data[i*n+i]
	}
	// Back substitution Lᵀ·x = y, in place over y.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.Data[k*n+i] * dst[k]
		}
		dst[i] = s / c.L.Data[i*n+i]
	}
}

// ForwardSolveTo computes dst = L⁻¹·b (forward substitution only) without
// allocating. dst may alias b. Combined with a dot product this evaluates
// quadratic forms bᵀA⁻¹b in half the work of a full solve.
func (c *Cholesky) ForwardSolveTo(dst, b []float64) {
	n := c.L.Rows
	if len(b) != n || len(dst) != n {
		panic(fmt.Sprintf("mat: ForwardSolveTo lengths %d,%d vs order %d", len(dst), len(b), n))
	}
	for i := 0; i < n; i++ {
		dst[i] = (b[i] - Dot(c.L.Row(i)[:i], dst[:i])) / c.L.Data[i*n+i]
	}
}

// Solve solves A·X = B column-by-column for a d×m right-hand side. One
// scratch column is reused across all right-hand sides.
func (c *Cholesky) Solve(b *Dense) *Dense {
	n := c.L.Rows
	if b.Rows != n {
		panic(fmt.Sprintf("mat: Solve rhs rows %d vs order %d", b.Rows, n))
	}
	out := New(n, b.Cols)
	col := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.Data[i*b.Cols+j]
		}
		c.SolveVecTo(col, col)
		for i := 0; i < n; i++ {
			out.Data[i*out.Cols+j] = col[i]
		}
	}
	return out
}

// LogDet returns log(det(A)) = 2·Σ log L_ii for the factored matrix.
func (c *Cholesky) LogDet() float64 {
	n := c.L.Rows
	var s float64
	for i := 0; i < n; i++ {
		s += math.Log(c.L.Data[i*n+i])
	}
	return 2 * s
}

// SolveSPD solves A·X = B for a symmetric positive definite A, adding
// exponentially growing diagonal jitter on factorization failure. It is the
// workhorse for ridge normal equations and GP inference where A is SPD by
// construction but can be borderline in floating point.
func SolveSPD(a, b *Dense) (*Dense, error) {
	jitter := 0.0
	base := meanDiag(a) * 1e-12
	if base <= 0 {
		base = 1e-12
	}
	for attempt := 0; attempt < 8; attempt++ {
		work := a
		if jitter > 0 {
			work = a.Clone()
			for i := 0; i < work.Rows; i++ {
				work.Data[i*work.Cols+i] += jitter
			}
		}
		ch, err := NewCholesky(work)
		if err == nil {
			return ch.Solve(b), nil
		}
		if jitter == 0 {
			jitter = base
		} else {
			jitter *= 100
		}
	}
	return nil, fmt.Errorf("mat: SolveSPD failed even with jitter %g", jitter)
}

func meanDiag(a *Dense) float64 {
	n := a.Rows
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += math.Abs(a.Data[i*a.Cols+i])
	}
	return s / float64(n)
}
