package mat

import (
	"testing"

	"tesla/internal/rng"
)

func randomDense(rows, cols int, seed uint64) *Dense {
	r := rng.New(seed)
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Norm()
	}
	return m
}

func BenchmarkGram200x100(b *testing.B) {
	x := randomDense(200, 100, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Gram(x)
	}
}

func BenchmarkCholesky100(b *testing.B) {
	a := randomSPD(100, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveVec100(b *testing.B) {
	a := randomSPD(100, 3)
	ch, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 100)
	for i := range rhs {
		rhs[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.SolveVec(rhs)
	}
}

func BenchmarkMul100(b *testing.B) {
	x := randomDense(100, 100, 4)
	y := randomDense(100, 100, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
