package mat

import (
	"math"
	"testing"
	"testing/quick"

	"tesla/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 {
		t.Fatalf("Set/At mismatch")
	}
	if got := m.Row(2)[3]; got != 7 {
		t.Fatalf("Row view mismatch: %g", got)
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for negative dims")
		}
	}()
	New(-1, 2)
}

func TestNewFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for mismatched slice")
		}
	}()
	NewFromSlice(2, 2, []float64{1, 2, 3})
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(1)
	m := New(5, 3)
	for i := range m.Data {
		m.Data[i] = r.Norm()
	}
	tt := m.T().T()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatalf("transpose involution failed at %d", i)
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("Mul[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for dimension mismatch")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func TestMulVecMatchesMul(t *testing.T) {
	r := rng.New(2)
	a := New(4, 6)
	for i := range a.Data {
		a.Data[i] = r.Norm()
	}
	x := make([]float64, 6)
	for i := range x {
		x[i] = r.Norm()
	}
	got := MulVec(a, x)
	bx := NewFromSlice(6, 1, append([]float64(nil), x...))
	want := Mul(a, bx)
	for i := range got {
		if !almostEqual(got[i], want.Data[i], 1e-12) {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want.Data[i])
		}
	}
}

func TestDotAndAddScaled(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %g", Dot(a, b))
	}
	AddScaled(a, 2, b)
	want := []float64{9, 12, 15}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("AddScaled[%d] = %g", i, a[i])
		}
	}
}

func TestGramMatchesXtX(t *testing.T) {
	r := rng.New(3)
	x := New(10, 4)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	g := Gram(x)
	want := Mul(x.T(), x)
	for i := range g.Data {
		if !almostEqual(g.Data[i], want.Data[i], 1e-10) {
			t.Fatalf("Gram[%d] = %g, want %g", i, g.Data[i], want.Data[i])
		}
	}
}

func TestXtYMatchesExplicit(t *testing.T) {
	r := rng.New(4)
	x := New(8, 3)
	y := New(8, 2)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	for i := range y.Data {
		y.Data[i] = r.Norm()
	}
	got := XtY(x, y)
	want := Mul(x.T(), y)
	for i := range got.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-10) {
			t.Fatalf("XtY[%d] = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

// randomSPD builds A = BᵀB + εI, guaranteed symmetric positive definite.
func randomSPD(n int, seed uint64) *Dense {
	r := rng.New(seed)
	b := New(n, n)
	for i := range b.Data {
		b.Data[i] = r.Norm()
	}
	a := Mul(b.T(), b)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += 0.5
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	a := randomSPD(6, 5)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("Cholesky failed: %v", err)
	}
	recon := Mul(ch.L, ch.L.T())
	for i := range a.Data {
		if !almostEqual(a.Data[i], recon.Data[i], 1e-9) {
			t.Fatalf("L·Lᵀ[%d] = %g, want %g", i, recon.Data[i], a.Data[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatalf("expected failure on indefinite matrix")
	}
}

func TestSolveVecRoundTrip(t *testing.T) {
	a := randomSPD(7, 6)
	r := rng.New(7)
	x := make([]float64, 7)
	for i := range x {
		x[i] = r.Norm()
	}
	b := MulVec(a, x)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("Cholesky failed: %v", err)
	}
	got := ch.SolveVec(b)
	for i := range x {
		if !almostEqual(got[i], x[i], 1e-8) {
			t.Fatalf("SolveVec[%d] = %g, want %g", i, got[i], x[i])
		}
	}
}

func TestSolveMultiRHS(t *testing.T) {
	a := randomSPD(5, 8)
	r := rng.New(9)
	x := New(5, 3)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	b := Mul(a, x)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("Cholesky failed: %v", err)
	}
	got := ch.Solve(b)
	for i := range x.Data {
		if !almostEqual(got.Data[i], x.Data[i], 1e-8) {
			t.Fatalf("Solve[%d] = %g, want %g", i, got.Data[i], x.Data[i])
		}
	}
}

func TestLogDetMatchesProductOfPivots(t *testing.T) {
	// diag(1,4,9) has det 36.
	a := New(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 4)
	a.Set(2, 2, 9)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("Cholesky failed: %v", err)
	}
	if !almostEqual(ch.LogDet(), math.Log(36), 1e-12) {
		t.Fatalf("LogDet = %g, want %g", ch.LogDet(), math.Log(36))
	}
}

func TestSolveSPDWithJitterOnBorderline(t *testing.T) {
	// Rank-deficient Gram (duplicate columns) — SolveSPD must still return
	// some solution via jitter rather than erroring.
	x := New(4, 2)
	for i := 0; i < 4; i++ {
		x.Set(i, 0, float64(i))
		x.Set(i, 1, float64(i)) // identical column
	}
	g := Gram(x)
	b := New(2, 1)
	b.Set(0, 0, 1)
	b.Set(1, 0, 1)
	if _, err := SolveSPD(g, b); err != nil {
		t.Fatalf("SolveSPD failed on borderline matrix: %v", err)
	}
}

func TestSolveSPDProperty(t *testing.T) {
	// Property: for random SPD systems, SolveSPD recovers the solution.
	f := func(seed uint64) bool {
		n := 3 + int(seed%5)
		a := randomSPD(n, seed)
		r := rng.New(seed ^ 0xbeef)
		x := New(n, 1)
		for i := range x.Data {
			x.Data[i] = r.Norm()
		}
		b := Mul(a, x)
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		for i := range x.Data {
			if !almostEqual(got.Data[i], x.Data[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(2, 2)
	b := a.Clone()
	b.Set(0, 0, 5)
	if a.At(0, 0) != 0 {
		t.Fatalf("Clone shares storage")
	}
}

// leading returns the k×k leading principal submatrix of a.
func leading(a *Dense, k int) *Dense {
	out := New(k, k)
	for i := 0; i < k; i++ {
		copy(out.Row(i), a.Row(i)[:k])
	}
	return out
}

// TestCholeskyExtendMatchesFull is the incremental-append property the GP
// fitter relies on: growing a factor one symmetric row at a time must equal
// refactorizing the full matrix from scratch (to 1e-12; in fact the two are
// bit-identical because Extend replays NewCholesky's exact arithmetic).
func TestCholeskyExtendMatchesFull(t *testing.T) {
	for _, n := range []int{2, 5, 9, 16} {
		a := randomSPD(n, uint64(n))
		ch, err := NewCholesky(leading(a, 2))
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k < n; k++ {
			row := a.Row(k)[:k]
			if err := ch.Extend(row, a.At(k, k)); err != nil {
				t.Fatalf("n=%d extend to %d: %v", n, k+1, err)
			}
		}
		full, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		if ch.L.Rows != n {
			t.Fatalf("extended factor order %d, want %d", ch.L.Rows, n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d := math.Abs(ch.L.At(i, j) - full.L.At(i, j))
				if d > 1e-12 {
					t.Fatalf("n=%d: L[%d,%d] incremental %g vs full %g (|Δ|=%g)",
						n, i, j, ch.L.At(i, j), full.L.At(i, j), d)
				}
			}
		}
		// The extended factor must be a working factorization, not just
		// numerically close: round-trip a solve.
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i) - 1.5
		}
		x := ch.SolveVec(b)
		ax := MulVec(a, x)
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-8) {
				t.Fatalf("extended solve round-trip: (Ax)[%d] = %g, want %g", i, ax[i], b[i])
			}
		}
	}
}

// TestCholeskyExtendRejectsIndefinite: appending a row that breaks positive
// definiteness must error and leave the existing factor intact and usable.
func TestCholeskyExtendRejectsIndefinite(t *testing.T) {
	a := randomSPD(4, 3)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	before := ch.L.Clone()
	// d = 0 with a non-trivial cross row cannot be SPD.
	if err := ch.Extend([]float64{1, 2, 3, 4}, 0); err == nil {
		t.Fatalf("indefinite extension accepted")
	}
	if ch.L.Rows != 4 {
		t.Fatalf("failed extension resized the factor to %d", ch.L.Rows)
	}
	for i := range before.Data {
		if ch.L.Data[i] != before.Data[i] {
			t.Fatalf("failed extension mutated the factor at %d", i)
		}
	}
}

func TestCholeskyInPlaceMatchesNewCholesky(t *testing.T) {
	a := randomSPD(7, 11)
	ref, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	work := a.Clone()
	ch, err := CholeskyInPlace(work)
	if err != nil {
		t.Fatal(err)
	}
	if ch.L != work {
		t.Fatalf("CholeskyInPlace must factor into its argument")
	}
	for i := range ref.L.Data {
		if ch.L.Data[i] != ref.L.Data[i] {
			t.Fatalf("in-place factor differs at %d: %g vs %g", i, ch.L.Data[i], ref.L.Data[i])
		}
	}
}

// TestSolveVecToAliasing: the allocation-free solves must give bit-identical
// results whether or not dst aliases b.
func TestSolveVecToAliasing(t *testing.T) {
	a := randomSPD(8, 21)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 8)
	for i := range b {
		b[i] = math.Sin(float64(i) + 0.5)
	}
	want := ch.SolveVec(b)
	got := append([]float64(nil), b...)
	ch.SolveVecTo(got, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliased SolveVecTo[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestForwardSolveQuadraticForm: dot(L⁻¹b, L⁻¹b) must equal bᵀA⁻¹b — the
// half-solve identity the GP posterior variance uses.
func TestForwardSolveQuadraticForm(t *testing.T) {
	a := randomSPD(9, 33)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 9)
	for i := range b {
		b[i] = math.Cos(1.7 * float64(i))
	}
	v := make([]float64, 9)
	ch.ForwardSolveTo(v, b)
	want := Dot(b, ch.SolveVec(b))
	if !almostEqual(Dot(v, v), want, 1e-9*math.Abs(want)+1e-12) {
		t.Fatalf("‖L⁻¹b‖² = %g, bᵀA⁻¹b = %g", Dot(v, v), want)
	}
	// Aliased form matches too.
	alias := append([]float64(nil), b...)
	ch.ForwardSolveTo(alias, alias)
	for i := range v {
		if alias[i] != v[i] {
			t.Fatalf("aliased ForwardSolveTo[%d] = %g, want %g", i, alias[i], v[i])
		}
	}
}
