package bo

import "fmt"

// ResultState is the durable form of a Result: the recommendation plus the
// observed points and their noise variances. The fitted GPs are deliberately
// absent — they are a pure function of the evaluations, and refitting on
// restore is cheaper and safer than serializing Cholesky factors.
type ResultState struct {
	X        float64
	Feasible bool
	Evals    []Evaluation
}

// State captures the result for checkpointing.
func (r *Result) State() ResultState {
	return ResultState{X: r.X, Feasible: r.Feasible, Evals: append([]Evaluation(nil), r.Evals...)}
}

// ResultFromState rebuilds a Result, refitting the objective and constraint
// surrogates from the stored evaluations.
func ResultFromState(st ResultState) (*Result, error) {
	res := &Result{X: st.X, Feasible: st.Feasible, Evals: append([]Evaluation(nil), st.Evals...)}
	if len(res.Evals) == 0 {
		return res, nil
	}
	objGP, conGP, err := fitSurrogates(res.Evals)
	if err != nil {
		return nil, fmt.Errorf("bo: refitting surrogates from state: %w", err)
	}
	res.ObjGP, res.ConGP = objGP, conGP
	return res, nil
}
