// Package bo implements TESLA's modeling-error-aware Bayesian optimizer
// (paper §3.3): separate fixed-noise Gaussian processes for the objective
// (cooling energy + interruption penalty) and the thermal-safety constraint,
// a constrained Noisy Expected Improvement acquisition integrated with
// quasi-Monte-Carlo (Sobol) function draws, and the paper's backstop of
// returning S_min when no candidate set-point is predicted feasible.
//
// The optimizer minimizes the objective subject to constraint ≤ 0 over a
// scalar domain [Min, Max] (the ACU's allowable set-point range).
package bo

import (
	"fmt"
	"math"

	"tesla/internal/gp"
	"tesla/internal/mat"
	"tesla/internal/parallel"
	"tesla/internal/rng"
)

// Evaluation is one noisy probe of the black-box problem.
type Evaluation struct {
	X           float64 // set-point candidate
	Obj         float64 // noisy objective observation Ô
	Con         float64 // noisy constraint observation Ĉ
	ObjNoiseVar float64 // bootstrap variance of the objective error
	ConNoiseVar float64 // bootstrap variance of the constraint error
}

// Evaluator produces a noisy observation of the objective and constraint at
// x along with their noise variances (from the prediction-error monitor).
type Evaluator func(x float64) Evaluation

// Config controls the optimization budget.
type Config struct {
	Min, Max   float64 // domain (S_min, S_max)
	InitPoints int     // Sobol initial design size
	Iterations int     // NEI-driven evaluations after the initial design
	Candidates int     // acquisition grid resolution
	QMCSamples int     // Sobol posterior draws per acquisition evaluation
	// FeasProb is the posterior feasibility probability a candidate must
	// reach to be recommended — the "modeling-error-aware" margin.
	FeasProb float64
	Seed     uint64
	// Workers bounds the goroutines scoring the acquisition (<= 0 selects
	// GOMAXPROCS). The result is bit-identical for every worker count: the
	// QMC draws are generated serially from Seed and each posterior draw's
	// improvement contribution is reduced in draw order.
	Workers int
}

// DefaultConfig returns a budget suited to a per-minute control step.
func DefaultConfig(min, max float64) Config {
	return Config{
		Min: min, Max: max,
		InitPoints: 7,
		Iterations: 8,
		Candidates: 61,
		QMCSamples: 64,
		FeasProb:   0.975,
		Seed:       1,
	}
}

// Validate reports invalid configurations.
func (c Config) Validate() error {
	switch {
	case !(c.Max > c.Min):
		return fmt.Errorf("bo: empty domain [%g,%g]", c.Min, c.Max)
	case c.InitPoints < 2:
		return fmt.Errorf("bo: need at least 2 initial points, got %d", c.InitPoints)
	case c.Candidates < 2:
		return fmt.Errorf("bo: need at least 2 candidates, got %d", c.Candidates)
	case c.QMCSamples < 1:
		return fmt.Errorf("bo: need at least 1 QMC sample, got %d", c.QMCSamples)
	case c.FeasProb <= 0 || c.FeasProb >= 1:
		return fmt.Errorf("bo: FeasProb must lie in (0,1), got %g", c.FeasProb)
	}
	return nil
}

// Result reports the recommended set-point and the surrogate state.
type Result struct {
	X        float64 // recommended set-point (Min when infeasible)
	Feasible bool    // false means the S_min backstop fired
	Evals    []Evaluation
	ObjGP    *gp.GP // fitted objective surrogate (for introspection, Fig. 8b)
	ConGP    *gp.GP // fitted constraint surrogate
}

// Optimize runs the constrained NEI loop.
func Optimize(cfg Config, eval Evaluator) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)

	// Initial design: scrambled Sobol over the domain, plus the endpoints so
	// the surrogate always brackets the feasible region.
	var evals []Evaluation
	evals = append(evals, eval(cfg.Min), eval(cfg.Max))
	sob, err := rng.NewSobol(1)
	if err != nil {
		return nil, err
	}
	sob.Scramble(r)
	for i := 0; i < cfg.InitPoints-2; i++ {
		u := sob.Next(nil)[0]
		evals = append(evals, eval(cfg.Min+u*(cfg.Max-cfg.Min)))
	}

	cands := linspace(cfg.Min, cfg.Max, cfg.Candidates)

	var objGP, conGP *gp.GP
	for it := 0; it < cfg.Iterations; it++ {
		objGP, conGP, err = fitSurrogates(evals)
		if err != nil {
			return nil, err
		}
		acq := acquireNEI(objGP, conGP, evals, cands, cfg.QMCSamples, cfg.Workers, r)
		next, ok := pickNext(acq, cands, evals, (cfg.Max-cfg.Min)/float64(4*cfg.Candidates))
		if !ok {
			break // acquisition exhausted: every candidate already probed
		}
		evals = append(evals, eval(next))
	}
	objGP, conGP, err = fitSurrogates(evals)
	if err != nil {
		return nil, err
	}

	res := &Result{Evals: evals, ObjGP: objGP, ConGP: conGP}
	res.X, res.Feasible = recommend(conGP, evals, cfg.FeasProb)
	if !res.Feasible {
		res.X = cfg.Min // paper backstop: pick S_min and recalibrate later
	}
	return res, nil
}

func fitSurrogates(evals []Evaluation) (objGP, conGP *gp.GP, err error) {
	n := len(evals)
	xs := make([]float64, n)
	obj := make([]float64, n)
	objN := make([]float64, n)
	con := make([]float64, n)
	conN := make([]float64, n)
	for i, e := range evals {
		xs[i] = e.X
		obj[i] = e.Obj
		objN[i] = floorVar(e.ObjNoiseVar)
		con[i] = e.Con
		conN[i] = floorVar(e.ConNoiseVar)
	}
	if objGP, err = gp.Fit(xs, obj, objN); err != nil {
		return nil, nil, fmt.Errorf("bo: objective surrogate: %w", err)
	}
	if conGP, err = gp.Fit(xs, con, conN); err != nil {
		return nil, nil, fmt.Errorf("bo: constraint surrogate: %w", err)
	}
	return objGP, conGP, nil
}

// acqChunk is the number of posterior draws one pool task scores. It is a
// fixed constant — never derived from the worker count — so the work
// partition (and with it every floating-point grouping) is identical no
// matter how many workers run.
const acqChunk = 8

// acquireNEI estimates the constrained noisy-EI acquisition on the candidate
// grid: QMC draws of the joint posterior at [observed ∪ candidates]
// determine, per draw, the best feasible "true" objective among the observed
// points (the noisy incumbent) and the improvement each feasible candidate
// would deliver over it.
//
// The draw loop fans out over a bounded worker pool. Determinism: the QMC
// normals are generated serially from r before the fan-out (the PRNG is
// consumed exactly as in a serial run), each draw writes its improvement
// contributions into its own row of a draws×candidates matrix, and the rows
// are reduced serially in draw order — so the result is bit-identical to the
// single-threaded loop for any worker count.
func acquireNEI(objGP, conGP *gp.GP, evals []Evaluation, cands []float64, nSamples, workers int, r *rng.Rand) []float64 {
	nObs := len(evals)
	pts := make([]float64, 0, nObs+len(cands))
	for _, e := range evals {
		pts = append(pts, e.X)
	}
	pts = append(pts, cands...)

	objMean, objCov := objGP.JointPosterior(pts)
	conMean, conCov := conGP.JointPosterior(pts)
	objL := cholWithJitter(objCov)
	conL := cholWithJitter(conCov)

	m := len(pts)
	nc := len(cands)
	draws := newQMCNormals(2*m, nSamples, r)
	contrib := make([]float64, nSamples*nc)
	parallel.Chunks(workers, nSamples, acqChunk, func(_, lo, hi int) {
		fObj := make([]float64, m)
		fCon := make([]float64, m)
		for k := lo; k < hi; k++ {
			z := draws.row(k)
			sampleGaussian(objMean, objL, z[:m], fObj)
			sampleGaussian(conMean, conL, z[m:], fCon)

			// Noisy incumbent: best sampled objective among observed points
			// that the same draw deems feasible.
			incumbent := math.Inf(1)
			for i := 0; i < nObs; i++ {
				if fCon[i] <= 0 && fObj[i] < incumbent {
					incumbent = fObj[i]
				}
			}
			if math.IsInf(incumbent, 1) {
				// No feasible observation in this draw: reward candidates for
				// being feasible at all, scored by how good they look.
				worst := maxOf(fObj[:nObs])
				incumbent = worst
			}
			row := contrib[k*nc : (k+1)*nc]
			for j := range cands {
				f := fObj[nObs+j]
				if fCon[nObs+j] <= 0 && f < incumbent {
					row[j] = incumbent - f
				}
			}
		}
	})

	acq := make([]float64, nc)
	for k := 0; k < nSamples; k++ {
		row := contrib[k*nc : (k+1)*nc]
		for j, v := range row {
			if v != 0 {
				acq[j] += v
			}
		}
	}
	for j := range acq {
		acq[j] /= float64(nSamples)
	}
	return acq
}

// pickNext selects the acquisition maximizer that is not within tol of an
// existing evaluation.
func pickNext(acq, cands []float64, evals []Evaluation, tol float64) (float64, bool) {
	type scored struct {
		x, a float64
	}
	best := scored{a: math.Inf(-1)}
	found := false
	for j, x := range cands {
		dup := false
		for _, e := range evals {
			if math.Abs(e.X-x) < tol {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if acq[j] > best.a {
			best = scored{x, acq[j]}
			found = true
		}
	}
	return best.x, found
}

// recommend picks the best observed point whose posterior probability of
// satisfying the constraint exceeds feasProb. Recommending among evaluated
// points (rather than the posterior-mean minimizer over the whole grid)
// avoids GP interpolation error around the objective's narrow minimum, while
// the constraint GP still supplies the modeling-error-aware safety margin.
func recommend(conGP *gp.GP, evals []Evaluation, feasProb float64) (float64, bool) {
	bestX, bestObj := 0.0, math.Inf(1)
	found := false
	for _, e := range evals {
		cm, cv := conGP.Posterior(e.X)
		sd := math.Sqrt(cv)
		var pFeas float64
		if sd < 1e-12 {
			if cm <= 0 {
				pFeas = 1
			}
		} else {
			pFeas = rng.NormCDF(-cm / sd)
		}
		if pFeas < feasProb {
			continue
		}
		if e.Obj < bestObj {
			bestObj = e.Obj
			bestX = e.X
			found = true
		}
	}
	return bestX, found
}

// qmcNormals supplies rows of standard-normal variates: the first (at most)
// rng.MaxSobolDim coordinates come from a scrambled Sobol sequence through
// the inverse normal CDF, the remainder from the PRNG — a pragmatic hybrid
// for joint draws wider than the Sobol table.
type qmcNormals struct {
	data []float64
	dim  int
}

func newQMCNormals(dim, n int, r *rng.Rand) *qmcNormals {
	q := &qmcNormals{data: make([]float64, dim*n), dim: dim}
	sobDim := dim
	if sobDim > rng.MaxSobolDim {
		sobDim = rng.MaxSobolDim
	}
	sob, err := rng.NewSobol(sobDim)
	if err != nil {
		panic(err) // unreachable: sobDim validated above
	}
	sob.Scramble(r)
	sob.Skip(1) // skip the origin
	buf := make([]float64, sobDim)
	for k := 0; k < n; k++ {
		row := q.data[k*dim : (k+1)*dim]
		sob.Next(buf)
		for d := 0; d < sobDim; d++ {
			u := buf[d]
			if u <= 0 {
				u = 0.5 / float64(n)
			}
			row[d] = rng.InvNormCDF(u)
		}
		for d := sobDim; d < dim; d++ {
			row[d] = r.Norm()
		}
	}
	return q
}

func (q *qmcNormals) row(k int) []float64 { return q.data[k*q.dim : (k+1)*q.dim] }

// sampleGaussian computes out = mean + L·z.
func sampleGaussian(mean []float64, l *mat.Dense, z, out []float64) {
	n := len(mean)
	for i := 0; i < n; i++ {
		s := mean[i]
		row := l.Row(i)
		for j := 0; j <= i && j < n; j++ {
			s += row[j] * z[j]
		}
		out[i] = s
	}
}

// cholWithJitter factors a posterior covariance, escalating diagonal jitter
// until it succeeds (posterior covariances are often numerically singular
// when candidates coincide with observations).
func cholWithJitter(cov *mat.Dense) *mat.Dense {
	jitter := 0.0
	base := 1e-10 * (1 + meanDiag(cov))
	for attempt := 0; attempt < 12; attempt++ {
		work := cov
		if jitter > 0 {
			work = cov.Clone()
			for i := 0; i < work.Rows; i++ {
				work.Data[i*work.Cols+i] += jitter
			}
		}
		if ch, err := mat.NewCholesky(work); err == nil {
			return ch.L
		}
		if jitter == 0 {
			jitter = base
		} else {
			jitter *= 10
		}
	}
	// Degenerate fallback: diagonal standard deviations only.
	l := mat.New(cov.Rows, cov.Cols)
	for i := 0; i < cov.Rows; i++ {
		v := cov.Data[i*cov.Cols+i]
		if v < 0 {
			v = 0
		}
		l.Data[i*cov.Cols+i] = math.Sqrt(v)
	}
	return l
}

func meanDiag(a *mat.Dense) float64 {
	if a.Rows == 0 {
		return 0
	}
	var s float64
	for i := 0; i < a.Rows; i++ {
		s += math.Abs(a.Data[i*a.Cols+i])
	}
	return s / float64(a.Rows)
}

func floorVar(v float64) float64 {
	if v < 1e-8 {
		return 1e-8
	}
	return v
}

func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
