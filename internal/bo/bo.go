// Package bo implements TESLA's modeling-error-aware Bayesian optimizer
// (paper §3.3): separate fixed-noise Gaussian processes for the objective
// (cooling energy + interruption penalty) and the thermal-safety constraint,
// a constrained Noisy Expected Improvement acquisition integrated with
// quasi-Monte-Carlo (Sobol) function draws, and the paper's backstop of
// returning S_min when no candidate set-point is predicted feasible.
//
// The optimizer minimizes the objective subject to constraint ≤ 0 over a
// scalar domain [Min, Max] (the ACU's allowable set-point range).
package bo

import (
	"fmt"
	"math"

	"tesla/internal/gp"
	"tesla/internal/mat"
	"tesla/internal/parallel"
	"tesla/internal/rng"
)

// Evaluation is one noisy probe of the black-box problem.
type Evaluation struct {
	X           float64 // set-point candidate
	Obj         float64 // noisy objective observation Ô
	Con         float64 // noisy constraint observation Ĉ
	ObjNoiseVar float64 // bootstrap variance of the objective error
	ConNoiseVar float64 // bootstrap variance of the constraint error
}

// Evaluator produces a noisy observation of the objective and constraint at
// x along with their noise variances (from the prediction-error monitor).
type Evaluator func(x float64) Evaluation

// Config controls the optimization budget.
type Config struct {
	Min, Max   float64 // domain (S_min, S_max)
	InitPoints int     // Sobol initial design size
	Iterations int     // NEI-driven evaluations after the initial design
	Candidates int     // acquisition grid resolution
	QMCSamples int     // Sobol posterior draws per acquisition evaluation
	// FeasProb is the posterior feasibility probability a candidate must
	// reach to be recommended — the "modeling-error-aware" margin.
	FeasProb float64
	Seed     uint64
	// Workers bounds the goroutines scoring the acquisition (<= 0 selects
	// GOMAXPROCS). The result is bit-identical for every worker count: the
	// QMC draws are generated serially from Seed and each posterior draw's
	// improvement contribution is reduced in draw order.
	Workers int
}

// DefaultConfig returns a budget suited to a per-minute control step.
func DefaultConfig(min, max float64) Config {
	return Config{
		Min: min, Max: max,
		InitPoints: 7,
		Iterations: 8,
		Candidates: 61,
		QMCSamples: 64,
		FeasProb:   0.975,
		Seed:       1,
	}
}

// Validate reports invalid configurations.
func (c Config) Validate() error {
	switch {
	case !(c.Max > c.Min):
		return fmt.Errorf("bo: empty domain [%g,%g]", c.Min, c.Max)
	case c.InitPoints < 2:
		return fmt.Errorf("bo: need at least 2 initial points, got %d", c.InitPoints)
	case c.Candidates < 2:
		return fmt.Errorf("bo: need at least 2 candidates, got %d", c.Candidates)
	case c.QMCSamples < 1:
		return fmt.Errorf("bo: need at least 1 QMC sample, got %d", c.QMCSamples)
	case c.FeasProb <= 0 || c.FeasProb >= 1:
		return fmt.Errorf("bo: FeasProb must lie in (0,1), got %g", c.FeasProb)
	}
	return nil
}

// Result reports the recommended set-point and the surrogate state.
type Result struct {
	X        float64 // recommended set-point (Min when infeasible)
	Feasible bool    // false means the S_min backstop fired
	Evals    []Evaluation
	ObjGP    *gp.GP // fitted objective surrogate (for introspection, Fig. 8b)
	ConGP    *gp.GP // fitted constraint surrogate
}

// Optimize runs the constrained NEI loop.
func Optimize(cfg Config, eval Evaluator) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)

	// Incremental surrogates: each new evaluation is appended to the fitters,
	// which retain per-grid-cell Cholesky factors so the per-iteration refit
	// extends them in O(n²) instead of refactorizing from scratch.
	sur := newSurrogates()

	// Initial design: scrambled Sobol over the domain, plus the endpoints so
	// the surrogate always brackets the feasible region.
	var evals []Evaluation
	add := func(e Evaluation) error {
		evals = append(evals, e)
		return sur.observe(e)
	}
	if err := add(eval(cfg.Min)); err != nil {
		return nil, err
	}
	if err := add(eval(cfg.Max)); err != nil {
		return nil, err
	}
	sob, err := rng.NewSobol(1)
	if err != nil {
		return nil, err
	}
	sob.Scramble(r)
	for i := 0; i < cfg.InitPoints-2; i++ {
		u := sob.Next(nil)[0]
		if err := add(eval(cfg.Min + u*(cfg.Max-cfg.Min))); err != nil {
			return nil, err
		}
	}

	cands := linspace(cfg.Min, cfg.Max, cfg.Candidates)

	// QMC base draws are generated once, sized for the largest joint the loop
	// will ever sample, and reused by every acquisition evaluation (BoTorch's
	// fixed-base-samples strategy): regenerating them per iteration dominated
	// the acquisition cost, and reuse also smooths the acquisition surface
	// across iterations instead of adding fresh Monte-Carlo noise each time.
	draws := newAcqDraws(cfg.InitPoints+cfg.Iterations, cfg.Candidates, cfg.QMCSamples, r)

	var objGP, conGP *gp.GP
	for it := 0; it < cfg.Iterations; it++ {
		objGP, conGP, err = sur.fit()
		if err != nil {
			return nil, err
		}
		acq := acquireNEI(objGP, conGP, cands, draws, cfg.QMCSamples, cfg.Workers)
		next, ok := pickNext(acq, cands, evals, (cfg.Max-cfg.Min)/float64(4*cfg.Candidates))
		if !ok {
			break // acquisition exhausted: every candidate already probed
		}
		if err := add(eval(next)); err != nil {
			return nil, err
		}
	}
	objGP, conGP, err = sur.fit()
	if err != nil {
		return nil, err
	}

	res := &Result{Evals: evals, ObjGP: objGP, ConGP: conGP}
	res.X, res.Feasible = recommend(conGP, evals, cfg.FeasProb)
	if !res.Feasible {
		res.X = cfg.Min // paper backstop: pick S_min and recalibrate later
	}
	return res, nil
}

// surrogates pairs the incremental objective and constraint fitters.
type surrogates struct {
	obj, con *gp.Fitter
}

func newSurrogates() *surrogates {
	return &surrogates{obj: gp.NewFitter(), con: gp.NewFitter()}
}

// observe appends one evaluation to both fitters. Noise variances pass
// through floorVar, so only a non-finite X/Obj/Con can be rejected here.
func (s *surrogates) observe(e Evaluation) error {
	if err := s.obj.Observe(e.X, e.Obj, floorVar(e.ObjNoiseVar)); err != nil {
		return fmt.Errorf("bo: objective surrogate: %w", err)
	}
	if err := s.con.Observe(e.X, e.Con, floorVar(e.ConNoiseVar)); err != nil {
		return fmt.Errorf("bo: constraint surrogate: %w", err)
	}
	return nil
}

func (s *surrogates) fit() (objGP, conGP *gp.GP, err error) {
	if objGP, err = s.obj.Fit(); err != nil {
		return nil, nil, fmt.Errorf("bo: objective surrogate: %w", err)
	}
	if conGP, err = s.con.Fit(); err != nil {
		return nil, nil, fmt.Errorf("bo: constraint surrogate: %w", err)
	}
	return objGP, conGP, nil
}

// fitSurrogates is the one-shot form (tests and benchmarks).
func fitSurrogates(evals []Evaluation) (*gp.GP, *gp.GP, error) {
	s := newSurrogates()
	for _, e := range evals {
		if err := s.observe(e); err != nil {
			return nil, nil, err
		}
	}
	return s.fit()
}

// acqChunk is the number of posterior draws one pool task scores. It is a
// fixed constant — never derived from the worker count — so the work
// partition (and with it every floating-point grouping) is identical no
// matter how many workers run.
const acqChunk = 8

// acquireNEI estimates the constrained noisy-EI acquisition on the candidate
// grid: QMC draws of the joint posterior at [observed ∪ candidates]
// determine, per draw, the best feasible "true" objective among the observed
// points (the noisy incumbent) and the improvement each feasible candidate
// would deliver over it.
//
// Sampling is factored through the observed block: each draw realizes the
// observed points from the dense n×n posterior factor, then each candidate
// conditionally as f_j = μ_j + w_jᵀ·z_obs + s_j·z_j. Per-candidate
// improvement depends only on the candidate's joint law with the observed
// points, which this factorization reproduces exactly — only the
// candidate×candidate correlations (irrelevant to the NEI estimand) differ
// from a full joint draw, so the (n+nc)³ factorization and (n+nc)²
// per-draw multiply both collapse to O(n²+nc·n) work.
//
// The draw loop fans out over a bounded worker pool. Determinism: the QMC
// base draws were generated serially from the optimizer seed before any
// fan-out, each draw writes its improvement contributions into its own row of
// a draws×candidates matrix, and the rows are reduced serially in draw order
// — so the result is bit-identical to the single-threaded loop for any
// worker count.
func acquireNEI(objGP, conGP *gp.GP, cands []float64, draws *acqDraws, nSamples, workers int) []float64 {
	ob := newCondFactors(objGP, cands)
	cb := newCondFactors(conGP, cands)
	nObs := objGP.NumObs()
	nc := len(cands)
	contrib := make([]float64, nSamples*nc)
	parallel.Chunks(workers, nSamples, acqChunk, func(_, lo, hi int) {
		fObj := make([]float64, nObs)
		fCon := make([]float64, nObs)
		for k := lo; k < hi; k++ {
			zObjObs, zObjCand, zConObs, zConCand := draws.split(k, nObs)
			sampleGaussian(ob.meanObs, ob.l, zObjObs, fObj)
			sampleGaussian(cb.meanObs, cb.l, zConObs, fCon)

			// Noisy incumbent: best sampled objective among observed points
			// that the same draw deems feasible.
			incumbent := math.Inf(1)
			for i := 0; i < nObs; i++ {
				if fCon[i] <= 0 && fObj[i] < incumbent {
					incumbent = fObj[i]
				}
			}
			if math.IsInf(incumbent, 1) {
				// No feasible observation in this draw: reward candidates for
				// being feasible at all, scored by how good they look.
				incumbent = maxOf(fObj)
			}
			row := contrib[k*nc : (k+1)*nc]
			for j := range cands {
				fc := cb.meanCand[j] + mat.Dot(cb.w.Row(j), zConObs) + cb.s[j]*zConCand[j]
				if !(fc <= 0) { // NaN draws count as infeasible
					continue
				}
				f := ob.meanCand[j] + mat.Dot(ob.w.Row(j), zObjObs) + ob.s[j]*zObjCand[j]
				if f < incumbent {
					row[j] = incumbent - f
				}
			}
		}
	})

	acq := make([]float64, nc)
	for k := 0; k < nSamples; k++ {
		row := contrib[k*nc : (k+1)*nc]
		for j, v := range row {
			if v != 0 {
				acq[j] += v
			}
		}
	}
	for j := range acq {
		acq[j] /= float64(nSamples)
	}
	return acq
}

// condFactors holds one surrogate's sampling factors for acquireNEI: the
// jittered Cholesky factor of the observed-block posterior covariance, and
// per candidate the conditional-sampling weights w_j = L⁻¹·cov(cand_j, obs)
// and residual standard deviation s_j = √(var_j − ‖w_j‖²).
type condFactors struct {
	meanObs  []float64
	meanCand []float64
	l        *mat.Dense // Cholesky factor of the n×n observed posterior cov
	w        *mat.Dense // nc×n conditional weights
	s        []float64  // nc conditional standard deviations
}

func newCondFactors(g *gp.GP, cands []float64) *condFactors {
	b := g.JointPosteriorBlocks(cands)
	l := cholWithJitter(b.CovObs)
	ch := mat.Cholesky{L: l}
	s := make([]float64, len(cands))
	for j := range cands {
		row := b.Cross.Row(j)
		ch.ForwardSolveTo(row, row)
		v := b.VarCand[j] - mat.Dot(row, row)
		if v < 0 {
			// The jitter added to CovObs (and plain rounding) can push the
			// conditional variance a hair negative; the candidate is then
			// fully determined by the observed block.
			v = 0
		}
		s[j] = math.Sqrt(v)
	}
	return &condFactors{meanObs: b.MeanObs, meanCand: b.MeanCand, l: l, w: b.Cross, s: s}
}

// acqDraws holds the QMC base draws shared by every acquisition evaluation of
// one Optimize run. A row is laid out as
// [obj obs (maxObs) | obj cand (nc) | con obs (maxObs) | con cand (nc)];
// while the observed set is still growing, split hands out the leading nObs
// coordinates of each observed block, so a given observation keeps the same
// base coordinate across iterations.
type acqDraws struct {
	q      *qmcNormals
	maxObs int
	nc     int
}

func newAcqDraws(maxObs, nc, samples int, r *rng.Rand) *acqDraws {
	return &acqDraws{q: newQMCNormals(2*(maxObs+nc), samples, r), maxObs: maxObs, nc: nc}
}

func (a *acqDraws) split(k, nObs int) (zObjObs, zObjCand, zConObs, zConCand []float64) {
	if nObs > a.maxObs {
		panic(fmt.Sprintf("bo: %d observations exceed the %d the draws were sized for", nObs, a.maxObs))
	}
	row := a.q.row(k)
	conObs := a.maxObs + a.nc
	conCand := conObs + a.maxObs
	return row[:nObs], row[a.maxObs:conObs], row[conObs : conObs+nObs], row[conCand:]
}

// Acquire scores the NEI acquisition over cands from freshly generated QMC
// draws — the standalone form of the acquisition used inside Optimize,
// exported for benchmarks and tools (teslabench -bo).
func Acquire(objGP, conGP *gp.GP, cands []float64, nSamples, workers int, seed uint64) []float64 {
	r := rng.New(seed)
	draws := newAcqDraws(objGP.NumObs(), len(cands), nSamples, r)
	return acquireNEI(objGP, conGP, cands, draws, nSamples, workers)
}

// pickNext selects the acquisition maximizer that is not within tol of an
// existing evaluation.
func pickNext(acq, cands []float64, evals []Evaluation, tol float64) (float64, bool) {
	type scored struct {
		x, a float64
	}
	best := scored{a: math.Inf(-1)}
	found := false
	fallback, haveFallback := 0.0, false
	for j, x := range cands {
		dup := false
		for _, e := range evals {
			if math.Abs(e.X-x) < tol {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if !haveFallback {
			fallback, haveFallback = x, true
		}
		if math.IsNaN(acq[j]) {
			// A poisoned acquisition score must not win the argmax — and a
			// fully poisoned sweep must not end the optimization (see below).
			continue
		}
		if acq[j] > best.a {
			best = scored{x, acq[j]}
			found = true
		}
	}
	if !found && haveFallback {
		// Every unprobed candidate scored NaN: probing any of them still
		// teaches the surrogate more than aborting the loop would. Take the
		// first (deterministic) rather than silently reporting exhaustion.
		return fallback, true
	}
	return best.x, found
}

// recommend picks the best observed point whose posterior probability of
// satisfying the constraint exceeds feasProb. Recommending among evaluated
// points (rather than the posterior-mean minimizer over the whole grid)
// avoids GP interpolation error around the objective's narrow minimum, while
// the constraint GP still supplies the modeling-error-aware safety margin.
func recommend(conGP *gp.GP, evals []Evaluation, feasProb float64) (float64, bool) {
	bestX, bestObj := 0.0, math.Inf(1)
	found := false
	for _, e := range evals {
		cm, cv := conGP.Posterior(e.X)
		if !isFinite(cm) || !isFinite(cv) {
			// A degenerate posterior (NaN/Inf mean or variance) says nothing
			// about feasibility; without this guard the NaN flows through
			// NormCDF and the `pFeas < feasProb` comparison below is false for
			// NaN, so the candidate would be accepted as feasible with an
			// undefined probability. Treat it as infeasible instead.
			continue
		}
		sd := math.Sqrt(cv)
		var pFeas float64
		if sd < 1e-12 {
			if cm <= 0 {
				pFeas = 1
			}
		} else {
			pFeas = rng.NormCDF(-cm / sd)
		}
		if pFeas < feasProb {
			continue
		}
		if e.Obj < bestObj {
			bestObj = e.Obj
			bestX = e.X
			found = true
		}
	}
	return bestX, found
}

// qmcNormals supplies rows of standard-normal variates: the first (at most)
// rng.MaxSobolDim coordinates come from a scrambled Sobol sequence through
// the inverse normal CDF, the remainder from the PRNG — a pragmatic hybrid
// for joint draws wider than the Sobol table.
type qmcNormals struct {
	data []float64
	dim  int
}

func newQMCNormals(dim, n int, r *rng.Rand) *qmcNormals {
	q := &qmcNormals{data: make([]float64, dim*n), dim: dim}
	sobDim := dim
	if sobDim > rng.MaxSobolDim {
		sobDim = rng.MaxSobolDim
	}
	sob, err := rng.NewSobol(sobDim)
	if err != nil {
		panic(err) // unreachable: sobDim validated above
	}
	sob.Scramble(r)
	sob.Skip(1) // skip the origin
	buf := make([]float64, sobDim)
	for k := 0; k < n; k++ {
		row := q.data[k*dim : (k+1)*dim]
		sob.Next(buf)
		for d := 0; d < sobDim; d++ {
			u := buf[d]
			if u <= 0 {
				u = qmcFallbackU(k, d, sobDim, n)
			}
			row[d] = rng.InvNormCDF(u)
		}
		for d := sobDim; d < dim; d++ {
			row[d] = r.Norm()
		}
	}
	return q
}

// qmcFallbackU substitutes a strictly positive uniform for a Sobol coordinate
// that landed on 0 (InvNormCDF(0) = −Inf). The substitute is a deterministic
// stratified offset distinct per (draw, dim): using one shared constant here
// would collapse every patched coordinate into a point mass, correlating
// draws that the acquisition integral assumes are spread over the domain.
func qmcFallbackU(k, d, sobDim, n int) float64 {
	return (float64(k) + (float64(d)+0.5)/float64(sobDim)) / float64(n)
}

func (q *qmcNormals) row(k int) []float64 { return q.data[k*q.dim : (k+1)*q.dim] }

// sampleGaussian computes out = mean + L·z.
func sampleGaussian(mean []float64, l *mat.Dense, z, out []float64) {
	n := len(mean)
	for i := 0; i < n; i++ {
		s := mean[i]
		row := l.Row(i)
		for j := 0; j <= i && j < n; j++ {
			s += row[j] * z[j]
		}
		out[i] = s
	}
}

// cholWithJitter factors a posterior covariance, escalating diagonal jitter
// until it succeeds (posterior covariances are often numerically singular
// when candidates coincide with observations). One scratch clone is reused
// across all jitter attempts — each retry refills it from cov with a memcpy
// instead of allocating a fresh matrix.
func cholWithJitter(cov *mat.Dense) *mat.Dense {
	jitter := 0.0
	base := 1e-10 * (1 + meanDiag(cov))
	work := cov.Clone()
	for attempt := 0; attempt < 12; attempt++ {
		if attempt > 0 {
			copy(work.Data, cov.Data)
			for i := 0; i < work.Rows; i++ {
				work.Data[i*work.Cols+i] += jitter
			}
		}
		if ch, err := mat.CholeskyInPlace(work); err == nil {
			return ch.L
		}
		if jitter == 0 {
			jitter = base
		} else {
			jitter *= 10
		}
	}
	// Degenerate fallback: diagonal standard deviations only.
	l := mat.New(cov.Rows, cov.Cols)
	for i := 0; i < cov.Rows; i++ {
		v := cov.Data[i*cov.Cols+i]
		if v < 0 {
			v = 0
		}
		l.Data[i*cov.Cols+i] = math.Sqrt(v)
	}
	return l
}

func meanDiag(a *mat.Dense) float64 {
	if a.Rows == 0 {
		return 0
	}
	var s float64
	for i := 0; i < a.Rows; i++ {
		s += math.Abs(a.Data[i*a.Cols+i])
	}
	return s / float64(a.Rows)
}

// floorVar clamps a noise variance to the numerical floor. Non-finite values
// are clamped too: `NaN < 1e-8` is false, so a plain comparison would let a
// NaN noise variance through to the kernel diagonal, where it fails every
// hyperparameter grid cell and errors the whole control step.
func floorVar(v float64) float64 {
	if !isFinite(v) || v < 1e-8 {
		return 1e-8
	}
	return v
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
