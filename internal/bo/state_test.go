package bo

import (
	"math"
	"reflect"
	"testing"
)

// TestResultStateRoundTrip: a Result rebuilt from its state must carry the
// same recommendation and evaluations, and the refitted surrogates must agree
// with the originals at every probe point. Agreement is NOT bitwise: the
// refit anchors its hyperparameter grid to the final data (gp.Fit one-shot
// semantics) while the original fitter's anchor carries ×2/÷2 hysteresis
// from the incremental history, so posterior means agree tightly and
// variances only within the hysteresis band. Control decisions never read
// these surrogates (each Decide re-optimizes), so that is the full contract.
func TestResultStateRoundTrip(t *testing.T) {
	cfg := DefaultConfig(20, 35)
	cfg.Seed = 11
	res, err := Optimize(cfg, quadraticProblem(27, 100, 0, 11))
	if err != nil {
		t.Fatal(err)
	}
	st := res.State()
	got, err := ResultFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if got.X != res.X || got.Feasible != res.Feasible {
		t.Fatalf("recommendation diverged: %+v vs %+v", got, res)
	}
	if !reflect.DeepEqual(got.Evals, res.Evals) {
		t.Fatal("evaluations diverged across the round trip")
	}
	if got.ObjGP == nil || got.ConGP == nil {
		t.Fatal("surrogates not refitted")
	}
	meanClose := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-3*(1+math.Max(math.Abs(a), math.Abs(b)))
	}
	varClose := func(a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		return lo >= 0 && hi <= 4*lo+1e-12
	}
	for _, x := range linspace(cfg.Min, cfg.Max, 17) {
		m1, v1 := res.ObjGP.Posterior(x)
		m2, v2 := got.ObjGP.Posterior(x)
		if !meanClose(m1, m2) || !varClose(v1, v2) {
			t.Fatalf("objective posterior diverged at %g: (%g,%g) vs (%g,%g)", x, m1, v1, m2, v2)
		}
		m1, v1 = res.ConGP.Posterior(x)
		m2, v2 = got.ConGP.Posterior(x)
		if !meanClose(m1, m2) || !varClose(v1, v2) {
			t.Fatalf("constraint posterior diverged at %g: (%g,%g) vs (%g,%g)", x, m1, v1, m2, v2)
		}
	}
}

func TestResultFromEmptyState(t *testing.T) {
	got, err := ResultFromState(ResultState{X: 20, Feasible: false})
	if err != nil {
		t.Fatal(err)
	}
	if got.ObjGP != nil || got.ConGP != nil {
		t.Fatal("empty state should not fit surrogates")
	}
	if got.X != 20 || got.Feasible {
		t.Fatalf("recommendation diverged: %+v", got)
	}
}
