package bo

import (
	"math"
	"testing"
)

// Regression tests for the NaN leaks in the surrogate path. Each of these
// failed before its guard landed: NaN noise variances errored the whole
// control step, a NaN posterior was accepted as feasible, and NaN
// acquisition scores either won the argmax or silently ended the loop.

// TestFloorVarClampsNonFinite pins the floorVar contract: `NaN < 1e-8` is
// false, so the pre-fix comparison passed NaN straight to the kernel
// diagonal.
func TestFloorVarClampsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3, 0, 1e-12} {
		if got := floorVar(v); got != 1e-8 {
			t.Errorf("floorVar(%v) = %v, want the 1e-8 floor", v, got)
		}
	}
	if got := floorVar(0.5); got != 0.5 {
		t.Errorf("floorVar(0.5) = %v, want pass-through", got)
	}
}

// TestOptimizeSurvivesNaNNoiseVariance drives the full loop with an evaluator
// whose noise-variance estimates are poisoned — the exact failure mode of a
// prediction-error monitor with too few residuals. Before the fix every grid
// cell failed to factorize and Optimize errored mid-control-step.
func TestOptimizeSurvivesNaNNoiseVariance(t *testing.T) {
	cfg := DefaultConfig(20, 35)
	cfg.Seed = 9
	eval := func(x float64) Evaluation {
		return Evaluation{
			X: x, Obj: (x - 27) * (x - 27), Con: x - 100,
			ObjNoiseVar: math.NaN(), ConNoiseVar: math.Inf(1),
		}
	}
	res, err := Optimize(cfg, eval)
	if err != nil {
		t.Fatalf("NaN noise variance errored the optimization: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("problem is everywhere feasible")
	}
	if math.Abs(res.X-27) > 0.75 {
		t.Fatalf("optimum %g, want ~27", res.X)
	}
}

// TestRecommendRejectsDegeneratePosterior feeds recommend an evaluation at
// X = NaN: the constraint posterior there is NaN/NaN, and before the guard
// `pFeas < feasProb` was false for pFeas = NormCDF(NaN), so the point was
// accepted as feasible — and with the lowest objective it won the
// recommendation outright.
func TestRecommendRejectsDegeneratePosterior(t *testing.T) {
	eval := quadraticProblem(27, 100, 0, 9)
	var evals []Evaluation
	for _, x := range []float64{20, 25, 30, 35} {
		evals = append(evals, eval(x))
	}
	_, conGP, err := fitSurrogates(evals)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := append(evals[:len(evals):len(evals)],
		Evaluation{X: math.NaN(), Obj: -1e9, Con: -1})
	x, ok := recommend(conGP, poisoned, 0.975)
	if !ok {
		t.Fatalf("the finite evaluations are all feasible; recommend found nothing")
	}
	if math.IsNaN(x) {
		t.Fatalf("recommend returned the degenerate-posterior candidate")
	}
}

// TestQMCFallbackDistinctPerDrawDim pins the fallback for Sobol coordinates
// that land on 0: the substitute must be a valid open-interval uniform and
// distinct per (draw, dim) — the pre-fix constant 0.5/n collapsed every
// patched coordinate into a point mass.
func TestQMCFallbackDistinctPerDrawDim(t *testing.T) {
	const n, sobDim = 64, 32
	seen := make(map[float64]bool)
	for k := 0; k < n; k++ {
		for d := 0; d < sobDim; d++ {
			u := qmcFallbackU(k, d, sobDim, n)
			if !(u > 0 && u < 1) {
				t.Fatalf("fallback u(%d,%d) = %v outside (0,1)", k, d, u)
			}
			if seen[u] {
				t.Fatalf("fallback u(%d,%d) = %v repeats an earlier coordinate", k, d, u)
			}
			seen[u] = true
		}
	}
}

// TestPickNextSkipsNaNScores: a NaN acquisition score must not win the
// argmax (NaN > best is false, but a NaN already stored as best poisons the
// comparison), and a fully-NaN sweep must fall back to a deterministic
// unprobed candidate instead of reporting exhaustion.
func TestPickNextSkipsNaNScores(t *testing.T) {
	cands := []float64{1, 2, 3, 4}
	evals := []Evaluation{{X: 1}}
	acq := []float64{0, 0.5, math.NaN(), 0.25}
	x, ok := pickNext(acq, cands, evals, 0.1)
	if !ok || x != 2 {
		t.Fatalf("pickNext = (%v,%v), want the best finite score at x=2", x, ok)
	}

	allNaN := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	x, ok = pickNext(allNaN, cands, evals, 0.1)
	if !ok {
		t.Fatalf("all-NaN acquisition silently ended the loop")
	}
	if x != 2 {
		t.Fatalf("all-NaN fallback = %v, want the first unprobed candidate 2", x)
	}
}
