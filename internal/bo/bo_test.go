package bo

import (
	"math"
	"sync"
	"testing"

	"tesla/internal/rng"
)

// quadraticProblem builds a deterministic evaluator with objective
// (x−opt)² and constraint x − limit ≤ 0.
func quadraticProblem(opt, limit float64, noise float64, seed uint64) Evaluator {
	r := rng.New(seed)
	return func(x float64) Evaluation {
		obj := (x - opt) * (x - opt)
		if noise > 0 {
			obj += noise * r.Norm()
		}
		return Evaluation{
			X: x, Obj: obj, Con: x - limit,
			ObjNoiseVar: noise*noise + 1e-8, ConNoiseVar: 1e-6,
		}
	}
}

func TestFindsUnconstrainedOptimum(t *testing.T) {
	cfg := DefaultConfig(20, 35)
	cfg.Seed = 1
	res, err := Optimize(cfg, quadraticProblem(27, 100, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("problem is everywhere feasible")
	}
	if math.Abs(res.X-27) > 0.75 {
		t.Fatalf("optimum %g, want ~27", res.X)
	}
}

func TestRespectsConstraintBoundary(t *testing.T) {
	// Optimum at 30 but the constraint caps x at 25: the recommendation
	// must stay at or below the boundary.
	cfg := DefaultConfig(20, 35)
	cfg.Seed = 2
	res, err := Optimize(cfg, quadraticProblem(30, 25, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("feasible region exists")
	}
	if res.X > 25.01 {
		t.Fatalf("recommendation %g violates the constraint boundary 25", res.X)
	}
	if res.X < 22 {
		t.Fatalf("recommendation %g overly conservative", res.X)
	}
}

func TestInfeasibleEverywhereFallsBackToMin(t *testing.T) {
	cfg := DefaultConfig(20, 35)
	cfg.Seed = 3
	eval := func(x float64) Evaluation {
		return Evaluation{X: x, Obj: x, Con: 5, ObjNoiseVar: 1e-6, ConNoiseVar: 1e-6}
	}
	res, err := Optimize(cfg, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatalf("nothing is feasible")
	}
	if res.X != 20 {
		t.Fatalf("backstop must return S_min, got %g", res.X)
	}
}

func TestNoisyObjectiveStillLocatesOptimum(t *testing.T) {
	cfg := DefaultConfig(20, 35)
	cfg.Iterations = 12
	cfg.Seed = 4
	res, err := Optimize(cfg, quadraticProblem(28, 100, 2.0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-28) > 3 {
		t.Fatalf("noisy optimum %g too far from 28", res.X)
	}
}

func TestEvaluationBudgetRespected(t *testing.T) {
	cfg := DefaultConfig(20, 35)
	cfg.InitPoints = 5
	cfg.Iterations = 4
	calls := 0
	eval := func(x float64) Evaluation {
		calls++
		return Evaluation{X: x, Obj: x * x, Con: -1, ObjNoiseVar: 1e-6, ConNoiseVar: 1e-6}
	}
	res, err := Optimize(cfg, eval)
	if err != nil {
		t.Fatal(err)
	}
	if calls > cfg.InitPoints+cfg.Iterations {
		t.Fatalf("%d evaluations exceed budget %d", calls, cfg.InitPoints+cfg.Iterations)
	}
	if len(res.Evals) != calls {
		t.Fatalf("Evals misses evaluations: %d vs %d", len(res.Evals), calls)
	}
	if res.ObjGP == nil || res.ConGP == nil {
		t.Fatalf("surrogates not exposed")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Min, c.Max = 30, 20 },
		func(c *Config) { c.InitPoints = 1 },
		func(c *Config) { c.Candidates = 1 },
		func(c *Config) { c.QMCSamples = 0 },
		func(c *Config) { c.FeasProb = 0 },
		func(c *Config) { c.FeasProb = 1 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig(20, 35)
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Fatalf("case %d should be invalid", i)
		}
		if _, err := Optimize(cfg, quadraticProblem(27, 100, 0, 1)); err == nil {
			t.Fatalf("Optimize accepted invalid config %d", i)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig(20, 35)
		cfg.Seed = 9
		res, err := Optimize(cfg, quadraticProblem(26, 100, 0, 9))
		if err != nil {
			t.Fatal(err)
		}
		return res.X
	}
	if run() != run() {
		t.Fatalf("same seed gave different recommendations")
	}
}

func TestAcquisitionPrefersPromisingRegion(t *testing.T) {
	// After optimization most NEI-chosen points should cluster near the
	// optimum rather than spreading uniformly.
	cfg := DefaultConfig(20, 35)
	cfg.Iterations = 10
	cfg.Seed = 11
	res, err := Optimize(cfg, quadraticProblem(27, 100, 0, 11))
	if err != nil {
		t.Fatal(err)
	}
	near := 0
	for _, e := range res.Evals[cfg.InitPoints:] {
		if math.Abs(e.X-27) < 3 {
			near++
		}
	}
	// EI alternates between exploiting the basin and exploring uncertainty
	// elsewhere; a noiseless quadratic still deserves a couple of picks in
	// the basin plus an accurate recommendation.
	if near < 2 {
		t.Fatalf("only %d of %d NEI picks near the optimum", near, len(res.Evals)-cfg.InitPoints)
	}
	if math.Abs(res.X-27) > 1 {
		t.Fatalf("recommendation %g should sit near the optimum", res.X)
	}
}

// optimizeX runs a fixed noisy problem at the given worker count and returns
// the recommendation plus every evaluation (probe order is part of the
// contract: a single acquisition bit-flip would change the probe sequence).
func optimizeX(t *testing.T, workers int) (float64, []Evaluation) {
	t.Helper()
	cfg := DefaultConfig(20, 35)
	cfg.Seed = 21
	cfg.Workers = workers
	res, err := Optimize(cfg, quadraticProblem(27, 30, 0.5, 21))
	if err != nil {
		t.Fatal(err)
	}
	return res.X, res.Evals
}

// TestParallelMatchesSerial is the determinism guarantee of the parallel
// acquisition: for any worker count the optimizer output is bit-identical to
// the single-worker (serial) reference.
func TestParallelMatchesSerial(t *testing.T) {
	refX, refEvals := optimizeX(t, 1)
	for _, workers := range []int{2, 3, 4, 8, 16, 0} {
		x, evals := optimizeX(t, workers)
		if x != refX {
			t.Fatalf("workers=%d: recommendation %v != serial %v", workers, x, refX)
		}
		if len(evals) != len(refEvals) {
			t.Fatalf("workers=%d: %d evals != serial %d", workers, len(evals), len(refEvals))
		}
		for i := range evals {
			if evals[i] != refEvals[i] {
				t.Fatalf("workers=%d: eval %d = %+v != serial %+v", workers, i, evals[i], refEvals[i])
			}
		}
	}
}

// TestAcquireNEIParallelBitIdentical exercises the acquisition function
// directly: identical RNG state in, bit-identical scores out per worker count.
func TestAcquireNEIParallelBitIdentical(t *testing.T) {
	eval := quadraticProblem(26, 29, 0.3, 5)
	var evals []Evaluation
	for _, x := range []float64{20, 22.5, 25, 27.5, 30, 32.5, 35} {
		evals = append(evals, eval(x))
	}
	objGP, conGP, err := fitSurrogates(evals)
	if err != nil {
		t.Fatal(err)
	}
	cands := linspace(20, 35, 61)
	score := func(workers int) []float64 {
		return Acquire(objGP, conGP, cands, 64, workers, 77)
	}
	ref := score(1)
	for _, workers := range []int{2, 5, 8, 0} {
		got := score(workers)
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("workers=%d: acq[%d] = %v != serial %v", workers, j, got[j], ref[j])
			}
		}
	}
	nonzero := 0
	for _, v := range ref {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatalf("degenerate acquisition: every candidate scored zero")
	}
}

// TestOptimizeIdenticalAcrossCPU pins the GOMAXPROCS-independence the
// concurrency model promises: with Workers=0 (auto) the result must match
// the serial reference no matter what -cpu this test runs under.
func TestOptimizeIdenticalAcrossCPU(t *testing.T) {
	refX, _ := optimizeX(t, 1)
	autoX, _ := optimizeX(t, 0)
	if autoX != refX {
		t.Fatalf("auto workers gave %v, serial reference %v", autoX, refX)
	}
}

// TestOptimizeConcurrentCallers runs independent optimizations concurrently
// (the -race companion of the worker-pool conversion).
func TestOptimizeConcurrentCallers(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := DefaultConfig(20, 35)
			cfg.Seed = uint64(g + 1)
			if _, err := Optimize(cfg, quadraticProblem(27, 100, 0, uint64(g+1))); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
