package bo

import (
	"fmt"
	"testing"

	"tesla/internal/rng"
)

// BenchmarkOptimize measures one full constrained-NEI optimization — the
// per-control-step cost of the TESLA optimizer (§3.3) — at the default
// (auto) worker count.
func BenchmarkOptimize(b *testing.B) {
	cfg := DefaultConfig(20, 35)
	eval := quadraticProblem(27, 30, 0.1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := Optimize(cfg, eval); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeWorkers compares the serial reference against the
// parallel acquisition at increasing pool sizes (identical output by the
// determinism guarantee, so this measures pure scheduling cost/benefit).
func BenchmarkOptimizeWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig(20, 35)
			cfg.Workers = workers
			eval := quadraticProblem(27, 30, 0.1, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				if _, err := Optimize(cfg, eval); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAcquireNEI isolates the acquisition hot loop (61 candidates × 64
// QMC draws over two Cholesky-sampled GPs) that the worker pool fans out.
func BenchmarkAcquireNEI(b *testing.B) {
	eval := quadraticProblem(26, 29, 0.3, 5)
	var evals []Evaluation
	for _, x := range []float64{20, 22.5, 25, 27.5, 30, 32.5, 35} {
		evals = append(evals, eval(x))
	}
	objGP, conGP, err := fitSurrogates(evals)
	if err != nil {
		b.Fatal(err)
	}
	cands := linspace(20, 35, 61)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			draws := newAcqDraws(len(evals), len(cands), 64, rng.New(77))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acquireNEI(objGP, conGP, cands, draws, 64, workers)
			}
		})
	}
}
