package bo

import "testing"

// BenchmarkOptimize measures one full constrained-NEI optimization — the
// per-control-step cost of the TESLA optimizer (§3.3).
func BenchmarkOptimize(b *testing.B) {
	cfg := DefaultConfig(20, 35)
	eval := quadraticProblem(27, 30, 0.1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := Optimize(cfg, eval); err != nil {
			b.Fatal(err)
		}
	}
}
