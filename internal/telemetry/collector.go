package telemetry

import (
	"fmt"
	"strings"

	"tesla/internal/testbed"
)

// Collector converts testbed samples into line-protocol records — the
// Telegraf role in §4. It tracks per-server metrics, ACU metrics and every
// temperature sensor.
type Collector struct {
	tb *testbed.Testbed
}

// NewCollector scrapes the given testbed.
func NewCollector(tb *testbed.Testbed) *Collector {
	return &Collector{tb: tb}
}

// Scrape renders the current sample as line-protocol records.
func (c *Collector) Scrape(s testbed.Sample) string {
	var b strings.Builder
	// Per-server metrics (power, CPU, memory) as Telegraf would emit them.
	for _, srv := range c.tb.Cluster.Servers {
		fmt.Fprintln(&b, FormatLine("server",
			map[string]string{"host": srv.Name, "rack": fmt.Sprint(srv.Rack)},
			map[string]float64{
				"power_kw": srv.PowerKW,
				"cpu":      srv.Util,
				"mem":      srv.MemUtil,
			}, s.TimeS))
	}
	// ACU metrics via the Modbus path.
	fmt.Fprintln(&b, FormatLine("acu", nil, map[string]float64{
		"power_kw":   s.ACUPowerKW,
		"setpoint_c": s.SetpointC,
		"duty":       s.ACUDuty,
	}, s.TimeS))
	for i, v := range s.ACUTemps {
		fmt.Fprintln(&b, FormatLine("acu_temp",
			map[string]string{"sensor": fmt.Sprint(i)},
			map[string]float64{"c": v}, s.TimeS))
	}
	for i, v := range s.DCTemps {
		fmt.Fprintln(&b, FormatLine("dc_temp",
			map[string]string{"sensor": fmt.Sprint(i)},
			map[string]float64{"c": v}, s.TimeS))
	}
	return b.String()
}

// CollectInto advances the testbed one control period, pushes the scrape to
// the DB client, and returns the sample.
func (c *Collector) CollectInto(client *Client) (testbed.Sample, error) {
	s := c.tb.Advance()
	if err := client.WriteLines(c.Scrape(s)); err != nil {
		return s, err
	}
	return s, nil
}
