package telemetry

import (
	"math"
	"sort"
	"time"
)

// RetentionConfig describes the tiered downsampling policy:
//
//	raw points   — kept RawWindowS seconds, then folded into 1-min aggregates
//	1-min tier   — kept MinuteWindowS seconds, then folded into 1-hour
//	1-hour tier  — kept HourWindowS seconds, then dropped (0 = forever)
//
// Every fold is exact and accounted: a raw point is either live in its
// chunks or was folded into exactly one minute bucket (CompactedRaw); a
// minute bucket is either live or was folded into exactly one hour bucket.
// Aggregates carry min/max/sum/count, summed in time order, so recomputing a
// tier from the raw points it consumed reproduces it bit-identically.
type RetentionConfig struct {
	// RawWindowS is how long raw points stay queryable at full resolution
	// (default 1 hour). Compaction folds raw points older than this, aligned
	// down to a minute-bucket boundary so buckets are never split.
	RawWindowS float64
	// MinuteWindowS is how long 1-min aggregates stay before folding into
	// the hour tier (default 24 hours).
	MinuteWindowS float64
	// HourWindowS is how long 1-hour aggregates stay before being dropped.
	// 0 keeps them forever.
	HourWindowS float64
	// MinuteS and HourS are the bucket widths — configurable so tests can
	// compress time (defaults 60 and 3600; HourS must be a multiple of
	// MinuteS for buckets to nest).
	MinuteS float64
	HourS   float64
}

func (rc RetentionConfig) withDefaults() RetentionConfig {
	if rc.RawWindowS <= 0 {
		rc.RawWindowS = 3600
	}
	if rc.MinuteWindowS <= 0 {
		rc.MinuteWindowS = 24 * 3600
	}
	if rc.MinuteS <= 0 {
		rc.MinuteS = 60
	}
	if rc.HourS <= 0 {
		rc.HourS = 3600
	}
	return rc
}

// Tier selects a resolution for aggregate queries.
type Tier int

const (
	TierMinute Tier = iota + 1
	TierHour
)

// AggPoint is one downsampled bucket: min/max/sum/count over the points the
// bucket consumed, summed in time order. TimeS is the bucket's start.
type AggPoint struct {
	TimeS float64 `json:"time_s"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count uint64  `json:"count"`
}

// Mean is Sum/Count.
func (a AggPoint) Mean() float64 { return a.Sum / float64(a.Count) }

// addRaw folds one raw point into the bucket.
func (a *AggPoint) addRaw(p Point) {
	if a.Count == 0 {
		a.Min, a.Max = p.Value, p.Value
	} else {
		if p.Value < a.Min {
			a.Min = p.Value
		}
		if p.Value > a.Max {
			a.Max = p.Value
		}
	}
	a.Sum += p.Value
	a.Count++
}

// merge folds a finer-tier bucket into this one.
func (a *AggPoint) merge(o AggPoint) {
	if a.Count == 0 {
		a.Min, a.Max = o.Min, o.Max
	} else {
		if o.Min < a.Min {
			a.Min = o.Min
		}
		if o.Max > a.Max {
			a.Max = o.Max
		}
	}
	a.Sum += o.Sum
	a.Count += o.Count
}

// aggSeries is one tier of one series: bucket-start-sorted aggregates.
// Compaction appends strictly increasing buckets, so no sorting is ever
// needed.
type aggSeries struct {
	pts       []AggPoint
	created   uint64 // buckets ever created in this tier
	compacted uint64 // buckets folded out of this tier into the next
	dropped   uint64 // buckets aged out (terminal tier only)
}

// CompactStats is one compaction pass's (or the cumulative) exact ledger.
type CompactStats struct {
	RawCompacted    uint64 `json:"raw_compacted"`     // raw points folded into minute buckets
	MinuteCompacted uint64 `json:"minute_compacted"`  // minute buckets folded into hour buckets
	HourDropped     uint64 `json:"hour_dropped"`      // hour buckets aged out
	LateDropped     uint64 `json:"late_dropped"`      // raw inserts rejected below the watermark
}

// TSDBStats is the store's observability snapshot.
type TSDBStats struct {
	Series       int    `json:"series"`
	RawPoints    int    `json:"raw_points"`
	MinutePoints int    `json:"minute_points"`
	HourPoints   int    `json:"hour_points"`
	Inserted     uint64 `json:"inserted"` // raw points ever accepted
	CompactStats
	Rejected    uint64 `json:"rejected_lines"` // malformed line-protocol records
	Compactions uint64 `json:"compactions"`    // Compact passes run
}

// bucketStart aligns t down to a bucket boundary of width w.
func bucketStart(t, w float64) float64 { return math.Floor(t/w) * w }

// Compact runs one downsampling pass against the clock nowS. Raw points
// older than the raw window fold into minute buckets, minute buckets older
// than their window fold into hour buckets, hour buckets past theirs drop.
// It processes one series at a time under that series' lock, so memory and
// pause are bounded by a single series' eligible backlog, and ingest on
// other series never stalls. No-op (all zeros) on a DB without retention.
func (db *DB) Compact(nowS float64) CompactStats {
	if !db.hasRet {
		return CompactStats{}
	}
	rc := db.ret
	rawCut := bucketStart(nowS-rc.RawWindowS, rc.MinuteS)
	minCut := bucketStart(nowS-rc.MinuteWindowS, rc.HourS)
	var hourCut float64
	hasHourCut := rc.HourWindowS > 0
	if hasHourCut {
		hourCut = bucketStart(nowS-rc.HourWindowS, rc.HourS)
	}

	db.mu.RLock()
	series := make([]*memSeries, 0, len(db.series))
	for _, s := range db.series {
		series = append(series, s)
	}
	db.mu.RUnlock()

	var st CompactStats
	for _, s := range series {
		s.mu.Lock()
		st.RawCompacted += s.compactRaw(rawCut, rc.MinuteS)
		st.MinuteCompacted += s.compactMinute(minCut, rc.HourS)
		if hasHourCut {
			st.HourDropped += s.dropHour(hourCut)
		}
		s.mu.Unlock()
	}
	db.mu.Lock()
	db.compactions++
	db.mu.Unlock()
	return st
}

// compactRaw folds raw points strictly below cut into minute buckets and
// advances the series watermark. Caller holds s.mu.
func (s *memSeries) compactRaw(cut, minuteS float64) uint64 {
	if s.hasWatermark && cut <= s.watermarkS {
		return 0
	}
	var folded uint64
	for len(s.chunks) > 0 {
		c := s.chunks[0]
		if c.minT() >= cut {
			break
		}
		// Fold the prefix of this chunk below the cut.
		hi := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].TimeS >= cut })
		for _, p := range c.pts[:hi] {
			b := bucketStart(p.TimeS, minuteS)
			n := len(s.minute.pts)
			if n == 0 || s.minute.pts[n-1].TimeS != b {
				s.minute.pts = append(s.minute.pts, AggPoint{TimeS: b})
				s.minute.created++
				n++
			}
			s.minute.pts[n-1].addRaw(p)
		}
		folded += uint64(hi)
		if hi == len(c.pts) {
			s.chunks = s.chunks[1:]
		} else {
			c.pts = c.pts[hi:]
			break
		}
	}
	if cut > s.watermarkS || !s.hasWatermark {
		s.watermarkS = cut
		s.hasWatermark = true
	}
	s.compactedRaw += folded
	return folded
}

// compactMinute folds minute buckets strictly below cut into hour buckets.
// Caller holds s.mu.
func (s *memSeries) compactMinute(cut, hourS float64) uint64 {
	hi := sort.Search(len(s.minute.pts), func(i int) bool { return s.minute.pts[i].TimeS >= cut })
	if hi == 0 {
		return 0
	}
	for _, m := range s.minute.pts[:hi] {
		b := bucketStart(m.TimeS, hourS)
		n := len(s.hour.pts)
		if n == 0 || s.hour.pts[n-1].TimeS != b {
			s.hour.pts = append(s.hour.pts, AggPoint{TimeS: b})
			s.hour.created++
			n++
		}
		s.hour.pts[n-1].merge(m)
	}
	s.minute.pts = append(s.minute.pts[:0], s.minute.pts[hi:]...)
	s.minute.compacted += uint64(hi)
	return uint64(hi)
}

// dropHour ages out hour buckets strictly below cut. Caller holds s.mu.
func (s *memSeries) dropHour(cut float64) uint64 {
	hi := sort.Search(len(s.hour.pts), func(i int) bool { return s.hour.pts[i].TimeS >= cut })
	if hi == 0 {
		return 0
	}
	s.hour.pts = append(s.hour.pts[:0], s.hour.pts[hi:]...)
	s.hour.dropped += uint64(hi)
	return uint64(hi)
}

// QueryAgg returns one tier's buckets whose starts fall within [fromS, toS].
// The tiers hold only compacted history; points still in the raw window are
// answered by Query.
func (db *DB) QueryAgg(tier Tier, measurement string, tags map[string]string, fromS, toS float64) []AggPoint {
	key := seriesKey{measurement, canonTags(tags)}
	db.mu.RLock()
	s := db.series[key]
	db.mu.RUnlock()
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var pts []AggPoint
	switch tier {
	case TierMinute:
		pts = s.minute.pts
	case TierHour:
		pts = s.hour.pts
	default:
		return nil
	}
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].TimeS >= fromS })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].TimeS > toS })
	if hi <= lo {
		return nil
	}
	return append([]AggPoint(nil), pts[lo:hi]...)
}

// TSDBStats snapshots the store-wide ledger. The core invariant — every raw
// point ever accepted is live, compacted into exactly one minute bucket, or
// was rejected below the watermark — reads as:
//
//	Inserted == RawPoints + RawCompacted
func (db *DB) TSDBStats() TSDBStats {
	db.mu.RLock()
	series := make([]*memSeries, 0, len(db.series))
	for _, s := range db.series {
		series = append(series, s)
	}
	st := TSDBStats{Series: len(series), Rejected: db.rejected, Compactions: db.compactions}
	db.mu.RUnlock()
	for _, s := range series {
		s.mu.Lock()
		for _, c := range s.chunks {
			st.RawPoints += len(c.pts)
		}
		st.MinutePoints += len(s.minute.pts)
		st.HourPoints += len(s.hour.pts)
		st.Inserted += s.inserted
		st.RawCompacted += s.compactedRaw
		st.MinuteCompacted += s.minute.compacted
		st.HourDropped += s.hour.dropped
		st.LateDropped += s.lateDropped
		s.mu.Unlock()
	}
	return st
}

// RunCompactor drives Compact on the given interval until stop closes,
// stamping each pass with now() (seconds). A final pass runs on stop so a
// draining pipeline leaves the tiers caught up.
func (db *DB) RunCompactor(stop <-chan struct{}, interval time.Duration, now func() float64) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			db.Compact(now())
			return
		case <-t.C:
			db.Compact(now())
		}
	}
}
