package telemetry

import (
	"math"
	"strings"
	"testing"

	"tesla/internal/testbed"
	"tesla/internal/workload"
)

func TestInsertAndQuery(t *testing.T) {
	db := NewDB()
	tags := map[string]string{"sensor": "3"}
	for i := 0; i < 10; i++ {
		db.Insert("dc_temp", tags, Point{TimeS: float64(i), Value: 20 + float64(i)})
	}
	pts := db.Query("dc_temp", tags, 2, 5)
	if len(pts) != 4 {
		t.Fatalf("range query returned %d points, want 4", len(pts))
	}
	if pts[0].TimeS != 2 || pts[3].TimeS != 5 {
		t.Fatalf("range bounds wrong: %v", pts)
	}
	if got := db.Query("dc_temp", map[string]string{"sensor": "9"}, 0, 100); len(got) != 0 {
		t.Fatalf("unknown series returned points")
	}
	if db.Len() != 10 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestLatestAndOutOfOrder(t *testing.T) {
	db := NewDB()
	db.Insert("m", nil, Point{TimeS: 5, Value: 1})
	db.Insert("m", nil, Point{TimeS: 2, Value: 2})
	db.Insert("m", nil, Point{TimeS: 9, Value: 3})
	p, ok := db.Latest("m", nil)
	if !ok || p.Value != 3 {
		t.Fatalf("Latest = %+v", p)
	}
	pts := db.Query("m", nil, 0, 100)
	if pts[0].TimeS != 2 || pts[2].TimeS != 9 {
		t.Fatalf("query must sort out-of-order inserts: %v", pts)
	}
	if _, ok := db.Latest("missing", nil); ok {
		t.Fatalf("Latest on missing series should fail")
	}
}

func TestLineProtocolRoundTrip(t *testing.T) {
	db := NewDB()
	line := FormatLine("server", map[string]string{"host": "node-03"},
		map[string]float64{"power_kw": 0.21, "cpu": 0.4}, 120)
	if err := db.IngestLine(line); err != nil {
		t.Fatal(err)
	}
	pts := db.Query("server", map[string]string{"host": "node-03", "field": "power_kw"}, 0, 1000)
	if len(pts) != 1 || math.Abs(pts[0].Value-0.21) > 1e-12 {
		t.Fatalf("roundtrip failed: %v", pts)
	}
	// Comments and blanks are ignored.
	if err := db.IngestLine("# comment"); err != nil {
		t.Fatal(err)
	}
	if err := db.IngestLine("   "); err != nil {
		t.Fatal(err)
	}
}

func TestIngestLineErrors(t *testing.T) {
	db := NewDB()
	for _, bad := range []string{
		"only_measurement",
		"m bad_fields 12",
		"m f=notanumber 12",
		"m f=1 notatime",
		",tag=1 f=1 12",
		"m,badtag f=1 12",
	} {
		if err := db.IngestLine(bad); err == nil {
			t.Fatalf("malformed line accepted: %q", bad)
		}
	}
}

func TestSeriesListing(t *testing.T) {
	db := NewDB()
	db.Insert("b", nil, Point{})
	db.Insert("a", map[string]string{"x": "1"}, Point{})
	got := db.Series()
	if len(got) != 2 || got[0] != "a,x=1" || got[1] != "b" {
		t.Fatalf("Series = %v", got)
	}
}

func TestHTTPServerEndToEnd(t *testing.T) {
	db := NewDB()
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewClient(addr)
	lines := strings.Join([]string{
		FormatLine("acu", nil, map[string]float64{"power_kw": 1.5}, 60),
		FormatLine("acu", nil, map[string]float64{"power_kw": 1.7}, 120),
	}, "\n")
	if err := client.WriteLines(lines); err != nil {
		t.Fatal(err)
	}
	pts, err := client.Query("acu", map[string]string{"field": "power_kw"}, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].Value != 1.7 {
		t.Fatalf("query over HTTP returned %v", pts)
	}
	// Malformed writes are rejected with a client-visible error.
	if err := client.WriteLines("garbage line here extra"); err == nil {
		t.Fatalf("malformed write accepted")
	}
}

func TestCollectorScrapesFullTestbed(t *testing.T) {
	tb, err := testbed.New(testbed.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb.UseProfile(workload.Constant{Util: 0.2})
	col := NewCollector(tb)

	db := NewDB()
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient(addr)

	for i := 0; i < 3; i++ {
		if _, err := col.CollectInto(client); err != nil {
			t.Fatal(err)
		}
	}
	// 21 servers × 3 fields + acu 3 fields + 2 acu temps + 35 dc temps,
	// times 3 scrapes.
	wantSeries := 21*3 + 3 + 2 + 35
	if got := len(db.Series()); got != wantSeries {
		t.Fatalf("series count %d, want %d", got, wantSeries)
	}
	pts := db.Query("dc_temp", map[string]string{"sensor": "0", "field": "c"}, 0, 1e9)
	if len(pts) != 3 {
		t.Fatalf("dc_temp scrapes %d, want 3", len(pts))
	}
	if pts[0].Value < 5 || pts[0].Value > 40 {
		t.Fatalf("implausible scraped temperature %g", pts[0].Value)
	}
}
