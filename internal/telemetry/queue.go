package telemetry

import (
	"sync"

	"tesla/internal/testbed"
)

// RoomSample is the unit flowing through the fleet ingestion pipeline: one
// control-step telemetry sample tagged with its origin room, that room's
// monotone step sequence number, and the safety stage the step executed
// under. The sequence number lets the consumer detect samples evicted under
// backpressure (gaps) without any coordination with the producer.
type RoomSample struct {
	Room  int
	Seq   uint64
	Level int // safety.Level ordinal at this step (0 normal … 3 emergency)
	S     testbed.Sample
}

// Queue is the bounded per-room sample queue of the ingestion pipeline —
// the telegraf-style buffer between a room's control loop (producer) and
// the fleet aggregator (consumer). Push never blocks: when the consumer
// lags and the ring is full, the oldest sample is evicted and counted, so
// a slow or stalled aggregator costs observability, never control steps.
type Queue struct {
	mu      sync.Mutex
	buf     []RoomSample
	start   int // ring read position
	n       int // live entries
	pushed  uint64
	dropped uint64
}

// NewQueue returns an empty queue retaining at most capacity samples
// (minimum 1).
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{buf: make([]RoomSample, capacity)}
}

// Push enqueues one sample, evicting the oldest when full. It never blocks.
func (q *Queue) Push(s RoomSample) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == len(q.buf) {
		// Consumer lagging: evict the oldest so the freshest telemetry wins.
		q.start = (q.start + 1) % len(q.buf)
		q.n--
		q.dropped++
	}
	q.buf[(q.start+q.n)%len(q.buf)] = s
	q.n++
	q.pushed++
}

// Drain pops up to max samples, oldest first. max <= 0 drains everything
// currently queued.
func (q *Queue) Drain(max int) []RoomSample {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.n
	if max > 0 && max < n {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]RoomSample, n)
	for i := 0; i < n; i++ {
		out[i] = q.buf[(q.start+i)%len(q.buf)]
	}
	q.start = (q.start + n) % len(q.buf)
	q.n -= n
	return out
}

// Len returns the number of samples currently queued.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Stats returns the cumulative producer-side counters: samples ever pushed
// and samples evicted before the consumer saw them.
func (q *Queue) Stats() (pushed, dropped uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pushed, q.dropped
}
