package telemetry

import (
	"sync"
	"testing"

	"tesla/internal/testbed"
)

func rs(room int, seq uint64) RoomSample {
	return RoomSample{Room: room, Seq: seq, S: testbed.Sample{TimeS: float64(seq) * 60}}
}

func TestQueuePushDrainFIFO(t *testing.T) {
	q := NewQueue(8)
	for i := uint64(0); i < 5; i++ {
		q.Push(rs(0, i))
	}
	if q.Len() != 5 {
		t.Fatalf("len = %d, want 5", q.Len())
	}
	got := q.Drain(3)
	if len(got) != 3 || got[0].Seq != 0 || got[2].Seq != 2 {
		t.Fatalf("drain(3) = %+v, want seqs 0..2", got)
	}
	got = q.Drain(0)
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Fatalf("drain(0) = %+v, want seqs 3..4", got)
	}
	if q.Len() != 0 || q.Drain(0) != nil {
		t.Fatal("queue not empty after full drain")
	}
}

func TestQueueEvictsOldestAndCounts(t *testing.T) {
	q := NewQueue(4)
	for i := uint64(0); i < 10; i++ {
		q.Push(rs(0, i))
	}
	pushed, dropped := q.Stats()
	if pushed != 10 || dropped != 6 {
		t.Fatalf("stats = (%d pushed, %d dropped), want (10, 6)", pushed, dropped)
	}
	got := q.Drain(0)
	if len(got) != 4 || got[0].Seq != 6 || got[3].Seq != 9 {
		t.Fatalf("drain = %+v, want the 4 freshest (seqs 6..9)", got)
	}
}

func TestQueueWrapAroundOrder(t *testing.T) {
	q := NewQueue(3)
	q.Push(rs(0, 0))
	q.Push(rs(0, 1))
	if got := q.Drain(1); got[0].Seq != 0 {
		t.Fatalf("drain = %+v", got)
	}
	q.Push(rs(0, 2))
	q.Push(rs(0, 3)) // ring wraps here
	got := q.Drain(0)
	if len(got) != 3 || got[0].Seq != 1 || got[2].Seq != 3 {
		t.Fatalf("drain after wrap = %+v, want seqs 1..3", got)
	}
}

// TestQueueConcurrentPushDrain is the -race test for the pipeline's split:
// one producer (control loop) pushing while a consumer (ingestor) drains.
func TestQueueConcurrentPushDrain(t *testing.T) {
	q := NewQueue(32)
	const total = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; i++ {
			q.Push(rs(0, i))
		}
	}()
	var consumed uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for {
		for _, s := range q.Drain(16) {
			_ = s
			consumed++
		}
		select {
		case <-done:
			for _, s := range q.Drain(0) {
				_ = s
				consumed++
			}
			pushed, dropped := q.Stats()
			if pushed != total {
				t.Fatalf("pushed = %d, want %d", pushed, total)
			}
			if consumed+dropped != total {
				t.Fatalf("consumed %d + dropped %d != pushed %d", consumed, dropped, total)
			}
			return
		default:
		}
	}
}
