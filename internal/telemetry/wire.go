package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Batched wire decoding. The reference parser (ingestLine) allocates two
// maps per record; at production volume that is the entire ingest budget.
// batchDecoder parses the same protocol with zero steady-state allocations:
// tag key/values are collected into a reusable scratch slice, the canonical
// series key is rendered into a reusable buffer, and resolved series are
// cached per batch so every record after the first on a series is a pure
// append. A differential fuzz test (FuzzBatchMatchesLine) pins the decoder
// to the reference parser's accept/reject behavior and stored values.

type kvPair struct{ k, v string }

type batchDecoder struct {
	db   *DB
	refs map[string]*memSeries
	kvs  []kvPair
	key  []byte
}

func (db *DB) newBatchDecoder() *batchDecoder {
	return &batchDecoder{db: db, refs: make(map[string]*memSeries, 16)}
}

// splitLine3 splits s into exactly three whitespace-separated tokens, with
// strings.Fields' definition of whitespace (any Unicode space) so the fast
// and reference parsers tokenize identically.
func splitLine3(s string) (a, b, c string, ok bool) {
	fields := [3]string{}
	n := 0
	i := 0
	for i < len(s) {
		for i < len(s) {
			r, size := decodeRune(s[i:])
			if !unicode.IsSpace(r) {
				break
			}
			i += size
		}
		if i == len(s) {
			break
		}
		start := i
		for i < len(s) {
			r, size := decodeRune(s[i:])
			if unicode.IsSpace(r) {
				break
			}
			i += size
		}
		if n == 3 {
			return "", "", "", false
		}
		fields[n] = s[start:i]
		n++
	}
	if n != 3 {
		return "", "", "", false
	}
	return fields[0], fields[1], fields[2], true
}

// decodeRune is utf8.DecodeRuneInString with a single-byte ASCII fast path.
func decodeRune(s string) (rune, int) {
	if b := s[0]; b < utf8.RuneSelf {
		return rune(b), 1
	}
	return utf8.DecodeRuneInString(s)
}

// ingest decodes one record and appends its points. Mirrors ingestLine's
// semantics exactly, including atomic rejection of half-bad records and the
// tag-named-"field" override quirk.
func (d *batchDecoder) ingest(line string) error {
	s := strings.TrimSpace(line)
	if s == "" || s[0] == '#' {
		return nil
	}
	head, fieldTok, tsTok, ok := splitLine3(s)
	if !ok {
		return fmt.Errorf("telemetry: line needs 'series fields timestamp', got %q", s)
	}
	// Measurement and tags.
	measurement := head
	rest := ""
	if i := strings.IndexByte(head, ','); i >= 0 {
		measurement, rest = head[:i], head[i+1:]
	}
	if measurement == "" {
		return fmt.Errorf("telemetry: empty measurement in %q", s)
	}
	kvs := d.kvs[:0]
	if len(rest) > 0 || len(head) > len(measurement) {
		// head had a comma: every segment (including empty trailing ones,
		// which the reference parser also sees) must be a well-formed tag.
		for {
			kv := rest
			done := true
			if i := strings.IndexByte(rest, ','); i >= 0 {
				kv, rest, done = rest[:i], rest[i+1:], false
			}
			i := strings.IndexByte(kv, '=')
			if i <= 0 {
				d.kvs = kvs
				return fmt.Errorf("telemetry: malformed tag %q", kv)
			}
			kvs = append(kvs, kvPair{kv[:i], kv[i+1:]})
			if done {
				break
			}
		}
	}
	d.kvs = kvs
	// Sort tags (stable insertion sort: tag counts are tiny and
	// sort.SliceStable allocates) and dedupe keeping the LAST occurrence of
	// a repeated key — map-assignment semantics of the reference parser.
	for i := 1; i < len(kvs); i++ {
		for j := i; j > 0 && kvs[j].k < kvs[j-1].k; j-- {
			kvs[j], kvs[j-1] = kvs[j-1], kvs[j]
		}
	}
	w := 0
	for i := range kvs {
		if i+1 < len(kvs) && kvs[i+1].k == kvs[i].k {
			continue
		}
		kvs[w] = kvs[i]
		w++
	}
	kvs = kvs[:w]

	ts, err := strconv.ParseFloat(tsTok, 64)
	if err != nil {
		return fmt.Errorf("telemetry: bad timestamp in %q: %w", s, err)
	}

	// Parse every field before inserting any (atomic rejection). Scratch on
	// the stack for the common few-field case.
	var fvArr [8]kvPair
	fvs := fvArr[:0]
	rest = fieldTok
	for {
		fv := rest
		done := true
		if i := strings.IndexByte(rest, ','); i >= 0 {
			fv, rest, done = rest[:i], rest[i+1:], false
		}
		i := strings.IndexByte(fv, '=')
		if i <= 0 {
			return fmt.Errorf("telemetry: malformed field %q", fv)
		}
		if _, err := strconv.ParseFloat(fv[i+1:], 64); err != nil {
			return fmt.Errorf("telemetry: bad field value in %q: %w", fv, err)
		}
		fvs = append(fvs, kvPair{fv[:i], fv[i+1:]})
		if done {
			break
		}
	}

	// A literal tag named "field" overrides the implicit per-field tag, as
	// the reference parser's map ordering does.
	hasFieldTag := false
	for _, kv := range kvs {
		if kv.k == "field" {
			hasFieldTag = true
			break
		}
	}
	for _, f := range fvs {
		v, _ := strconv.ParseFloat(f.v, 64) // validated above
		ms := d.resolve(measurement, kvs, f.k, hasFieldTag)
		ms.insert(Point{TimeS: ts, Value: v})
	}
	return nil
}

// resolve returns the series for measurement + tags + the implicit field
// tag, consulting the per-batch cache first. The cache key renders the
// canonical form into a reusable buffer; a map lookup keyed by string(buf)
// does not allocate.
func (d *batchDecoder) resolve(measurement string, kvs []kvPair, field string, hasFieldTag bool) *memSeries {
	key := d.key[:0]
	key = append(key, measurement...)
	key = append(key, 0)
	wroteField := hasFieldTag
	first := true
	writeKV := func(k, v string) {
		if !first {
			key = append(key, ',')
		}
		first = false
		key = append(key, k...)
		key = append(key, '=')
		key = append(key, v...)
	}
	for _, kv := range kvs {
		if !wroteField && kv.k > "field" {
			writeKV("field", field)
			wroteField = true
		}
		writeKV(kv.k, kv.v)
	}
	if !wroteField {
		writeKV("field", field)
	}
	d.key = key
	if s, ok := d.refs[string(key)]; ok {
		return s
	}
	// Miss: materialize the canonical tag string (everything after the NUL).
	canon := string(key[len(measurement)+1:])
	s := d.db.getSeries(seriesKey{measurement, canon})
	d.refs[string(key)] = s
	return s
}
