package telemetry

import (
	"math"
	"strings"
	"testing"
)

// FuzzIngestLine round-trips FormatLine output through IngestLine and pokes
// the parser with arbitrary input. Properties:
//
//  1. A record rendered by FormatLine from protocol-safe names (no spaces,
//     commas or '=' — the documented no-escaping limits) always parses, and
//     the stored point matches the formatted value.
//  2. Arbitrary input never panics; it either parses or returns an error.
func FuzzIngestLine(f *testing.F) {
	f.Add("acu", "device", "d0", "power_kw", 1.5, 60.0)
	f.Add("m", "t", "v", "f", -0.0, 0.0)
	f.Add("dc_temp", "sensor", "17", "c", 21.25, 86400.5)
	f.Fuzz(func(t *testing.T, meas, tk, tv, fk string, val, ts float64) {
		if !safeName(meas) || !safeName(tk) || !safeName(tv) || !safeName(fk) {
			// Outside the documented limits: only require no panic.
			db := NewDB()
			_ = db.IngestLine(meas + "," + tk + "=" + tv + " " + fk + "=1 0")
			return
		}
		if math.IsNaN(val) || math.IsInf(val, 0) || math.IsNaN(ts) || math.IsInf(ts, 0) {
			return // %g of these round-trips via ParseFloat but breaks == checks
		}
		line := FormatLine(meas, map[string]string{tk: tv}, map[string]float64{fk: val}, ts)
		db := NewDB()
		if err := db.IngestLine(line); err != nil {
			t.Fatalf("FormatLine output rejected: %q: %v", line, err)
		}
		pts := db.Query(meas, map[string]string{tk: tv, "field": fk}, -math.MaxFloat64, math.MaxFloat64)
		if len(pts) != 1 {
			t.Fatalf("round-trip stored %d points for %q", len(pts), line)
		}
		// %g prints shortest-round-trip floats, so the parse is exact.
		if pts[0].Value != val {
			t.Fatalf("value %v -> %v through %q", val, pts[0].Value, line)
		}
		if pts[0].TimeS != ts {
			t.Fatalf("timestamp %v -> %v through %q", ts, pts[0].TimeS, line)
		}
	})
}

// safeName reports whether s is inside the protocol's documented limits:
// non-empty, no whitespace, commas, '=', '#' lead, and printable.
func safeName(s string) bool {
	if s == "" || strings.HasPrefix(s, "#") {
		return false
	}
	for _, r := range s {
		switch {
		case r == ',' || r == '=' || r == ' ' || r == '\t' || r == '\n' || r == '\r':
			return false
		case r < 0x20 || r == 0x7f:
			return false
		}
	}
	// Fields splits on any Unicode space, not just ASCII.
	return len(strings.Fields(s)) == 1
}

// TestIngestLineMalformedTable pins the rejection behavior for each
// malformed-input class, including the documented no-escaping limits.
func TestIngestLineMalformedTable(t *testing.T) {
	cases := []struct {
		name string
		line string
		ok   bool
	}{
		{"empty", "", true},      // ignored
		{"comment", "# hi", true}, // ignored
		{"whitespace", "   \t ", true},
		{"missing fields", "meas 12", false},
		{"extra token", "meas f=1 12 junk", false},
		{"empty measurement", ",tag=1 f=1 12", false},
		{"tag missing value", "m,badtag f=1 12", false},
		{"tag empty key", "m,=v f=1 12", false},
		{"field missing value", "m f 12", false},
		{"field empty key", "m =1 12", false},
		{"field bad number", "m f=one 12", false},
		{"bad timestamp", "m f=1 later", false},
		{"good multi-field", "m,a=1 x=1,y=2 3", true},
		{"trailing comma field", "m x=1, 3", false},
		{"nan value parses", "m f=NaN 3", true},       // ParseFloat accepts NaN
		{"inf timestamp parses", "m f=1 +Inf", true},  // documented: no range check
		// No-escaping limits: a space inside a would-be tag value splits the
		// record into four tokens and is rejected, not unescaped.
		{"space in tag value", "m,host=node 3 f=1 12", false},
	}
	for _, tc := range cases {
		db := NewDB()
		err := db.IngestLine(tc.line)
		if tc.ok && err != nil {
			t.Errorf("%s: %q rejected: %v", tc.name, tc.line, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: %q accepted", tc.name, tc.line)
		}
	}
}

// FuzzBatchMatchesLine differentially fuzzes the batched wire decoder
// against the reference parser: same accept/reject verdict, same stored
// series, same stored points.
func FuzzBatchMatchesLine(f *testing.F) {
	f.Add("m f=1 2")
	f.Add("m,a=1,b=2 x=1,y=2 3")
	f.Add("m,field=override x=1 3")
	f.Add("m,a=2,a=1 x=1 3")
	f.Add("m,")
	f.Add("m, f=1 2")
	f.Add("m,a=1, f=1 2")
	f.Add(" m\tf=1  2 ")
	f.Fuzz(func(t *testing.T, line string) {
		ref := NewDB()
		refErr := ref.ingestLine(line)
		fast := NewDB()
		fastErr := fast.newBatchDecoder().ingest(line)
		if (refErr == nil) != (fastErr == nil) {
			t.Fatalf("verdicts differ for %q: ref=%v fast=%v", line, refErr, fastErr)
		}
		refSeries, fastSeries := ref.Series(), fast.Series()
		if len(refSeries) != len(fastSeries) {
			t.Fatalf("series differ for %q: ref=%v fast=%v", line, refSeries, fastSeries)
		}
		for i := range refSeries {
			if refSeries[i] != fastSeries[i] {
				t.Fatalf("series differ for %q: ref=%v fast=%v", line, refSeries, fastSeries)
			}
		}
		if ref.Len() != fast.Len() {
			t.Fatalf("point counts differ for %q: ref=%d fast=%d", line, ref.Len(), fast.Len())
		}
	})
}

// TestIngestLineRejectsAtomically checks that a record with a malformed
// trailing field stores nothing — not a half-applied record.
func TestIngestLineRejectsAtomically(t *testing.T) {
	db := NewDB()
	if err := db.IngestLine("m good=1,bad=x 10"); err == nil {
		t.Fatal("malformed trailing field accepted")
	}
	if db.Len() != 0 {
		t.Fatalf("half-applied record: %d points stored", db.Len())
	}
}
