package telemetry

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"tesla/internal/rng"
)

// TestChunkedEngineMatchesSortedSemantics drives the chunked store with a
// mixed in-order/out-of-order stream and checks Query against a reference
// sort over every window.
func TestChunkedEngineMatchesSortedSemantics(t *testing.T) {
	db := NewDB()
	rnd := rng.New(7)
	var ref []Point
	for i := 0; i < 5000; i++ {
		ts := float64(i)
		if rnd.Float64() < 0.2 {
			ts = rnd.Float64() * 5000 // out-of-order, possibly duplicate times
		}
		p := Point{TimeS: ts, Value: float64(i)}
		db.Insert("m", nil, p)
		ref = append(ref, p)
	}
	for _, win := range [][2]float64{{0, 5000}, {100, 200}, {4999, 5000}, {250.5, 250.6}, {6000, 7000}} {
		got := db.Query("m", nil, win[0], win[1])
		want := 0
		for _, p := range ref {
			if p.TimeS >= win[0] && p.TimeS <= win[1] {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("window %v: %d points, want %d", win, len(got), want)
		}
		for i := 1; i < len(got); i++ {
			if got[i].TimeS < got[i-1].TimeS {
				t.Fatalf("window %v: unsorted at %d", win, i)
			}
		}
	}
	if db.Len() != 5000 {
		t.Fatalf("Len = %d", db.Len())
	}
	st := db.TSDBStats()
	if st.Inserted != 5000 || st.RawPoints != 5000 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestIngestLinesKeepsGoing pins the batch semantics the old store got
// wrong: a malformed line must not abort the batch. Before the fix the first
// bad line stopped ingestion, the two valid lines after it were lost, and
// the error carried no line numbers.
func TestIngestLinesKeepsGoing(t *testing.T) {
	db := NewDB()
	batch := strings.Join([]string{
		"m f=1 10",
		"m f=notanumber 20", // line 2: bad value
		"m f=3 30",
		"",
		"garbage",           // line 5: not a record
		"m f=6 60",
	}, "\n")
	err := db.IngestLines(batch)
	if err == nil {
		t.Fatalf("batch with malformed lines must return an error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BatchError", err)
	}
	if len(be.Errors) != 2 || be.Errors[0].Line != 2 || be.Errors[1].Line != 5 {
		t.Fatalf("line numbers = %+v, want lines 2 and 5", be.Errors)
	}
	if be.Errors[0].Err == nil || be.Errors[1].Err == nil {
		t.Fatalf("per-line causes missing: %+v", be.Errors)
	}
	// The lines after the failures were still ingested.
	pts := db.Query("m", map[string]string{"field": "f"}, 0, 100)
	if len(pts) != 3 {
		t.Fatalf("ingested %d valid lines, want 3 (batch must not abort)", len(pts))
	}
	if db.Rejected() != 2 {
		t.Fatalf("Rejected = %d, want 2", db.Rejected())
	}
	// IngestBatch exposes the counts directly.
	n, rej, err := db.IngestBatch("m f=9 90\nbroken\n# comment\n")
	if n != 1 || rej != 1 || err == nil {
		t.Fatalf("IngestBatch = (%d, %d, %v)", n, rej, err)
	}
}

// recomputeTiers rebuilds the minute and hour aggregates from a retained raw
// copy exactly the way compaction does: bucket in time order, hour sums as
// sums of minute sums. Used to prove bit-identity.
func recomputeTiers(raw []Point, minuteS, hourS float64) (minute, hour []AggPoint) {
	for _, p := range raw {
		b := bucketStart(p.TimeS, minuteS)
		n := len(minute)
		if n == 0 || minute[n-1].TimeS != b {
			minute = append(minute, AggPoint{TimeS: b})
			n++
		}
		minute[n-1].addRaw(p)
	}
	for _, m := range minute {
		b := bucketStart(m.TimeS, hourS)
		n := len(hour)
		if n == 0 || hour[n-1].TimeS != b {
			hour = append(hour, AggPoint{TimeS: b})
			n++
		}
		hour[n-1].merge(m)
	}
	return minute, hour
}

// TestDownsampleBitIdentical ingests a noisy stream, compacts in several
// passes, and requires the tier query results to be bit-identical to
// recomputing the aggregates from the retained raw copy.
func TestDownsampleBitIdentical(t *testing.T) {
	rc := RetentionConfig{RawWindowS: 100, MinuteWindowS: 300, MinuteS: 10, HourS: 60}
	db := NewDBWithRetention(rc)
	rnd := rng.New(23)
	var raw []Point
	tags := map[string]string{"sensor": "7"}
	now := 0.0
	for step := 0; step < 2000; step++ {
		now = float64(step)
		p := Point{TimeS: now, Value: 20 + 5*rnd.Float64()}
		db.Insert("dc_temp", tags, p)
		raw = append(raw, p)
		if step%250 == 249 {
			db.Compact(now)
		}
	}
	db.Compact(now)

	// Everything below the final watermark must be in the tiers.
	rawCut := bucketStart(now-rc.RawWindowS, rc.MinuteS)
	minCut := bucketStart(now-rc.MinuteWindowS, rc.HourS)
	var eligible []Point
	for _, p := range raw {
		if p.TimeS < rawCut {
			eligible = append(eligible, p)
		}
	}
	wantMinute, wantHour := recomputeTiers(eligible, rc.MinuteS, rc.HourS)
	// Split the recomputed minute tier the way compaction did: buckets below
	// the minute cut folded onward into hours.
	var wantLiveMinute []AggPoint
	for _, m := range wantMinute {
		if m.TimeS >= minCut {
			wantLiveMinute = append(wantLiveMinute, m)
		}
	}
	var wantLiveHour []AggPoint
	for _, h := range wantHour {
		if h.TimeS < minCut {
			wantLiveHour = append(wantLiveHour, h)
		}
	}

	gotMinute := db.QueryAgg(TierMinute, "dc_temp", tags, -1e18, 1e18)
	gotHour := db.QueryAgg(TierHour, "dc_temp", tags, -1e18, 1e18)
	assertAggEqual(t, "minute", gotMinute, wantLiveMinute)
	assertAggEqual(t, "hour", gotHour, wantLiveHour)

	// Exact ledger: every point accepted is live raw or compacted raw.
	st := db.TSDBStats()
	if st.Inserted != uint64(st.RawPoints)+st.RawCompacted {
		t.Fatalf("accounting broken: inserted %d != raw %d + compacted %d",
			st.Inserted, st.RawPoints, st.RawCompacted)
	}
	if st.Inserted != 2000 {
		t.Fatalf("inserted = %d", st.Inserted)
	}
}

func assertAggEqual(t *testing.T, tier string, got, want []AggPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s tier: %d buckets, want %d", tier, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		// Bit-identical: == on float64, not a tolerance.
		if g.TimeS != w.TimeS || g.Min != w.Min || g.Max != w.Max || g.Sum != w.Sum || g.Count != w.Count {
			t.Fatalf("%s bucket %d: got %+v want %+v", tier, i, g, w)
		}
	}
}

// TestLateInsertsRejectedExactly pins the out-of-order window policy: a
// point below the compaction watermark is dropped and counted, never folded
// into a closed bucket.
func TestLateInsertsRejectedExactly(t *testing.T) {
	db := NewDBWithRetention(RetentionConfig{RawWindowS: 10, MinuteS: 10, HourS: 60})
	for i := 0; i < 100; i++ {
		db.Insert("m", nil, Point{TimeS: float64(i), Value: 1})
	}
	db.Compact(100) // watermark = 90
	before := db.TSDBStats()
	db.Insert("m", nil, Point{TimeS: 50, Value: 99}) // below watermark
	db.Insert("m", nil, Point{TimeS: 95, Value: 2})  // inside raw window
	st := db.TSDBStats()
	if st.LateDropped != before.LateDropped+1 {
		t.Fatalf("LateDropped = %d, want %d", st.LateDropped, before.LateDropped+1)
	}
	if st.Inserted != before.Inserted+1 {
		t.Fatalf("Inserted = %d, want %d", st.Inserted, before.Inserted+1)
	}
	// The closed minute buckets are untouched by the late write.
	for _, b := range db.QueryAgg(TierMinute, "m", nil, 50, 59) {
		if b.Max != 1 || b.Count != 10 {
			t.Fatalf("late write leaked into closed bucket: %+v", b)
		}
	}
}

// TestHourTierAgesOut checks the terminal drop with exact accounting.
func TestHourTierAgesOut(t *testing.T) {
	db := NewDBWithRetention(RetentionConfig{RawWindowS: 10, MinuteWindowS: 20, HourWindowS: 120, MinuteS: 10, HourS: 60})
	for i := 0; i < 1000; i++ {
		db.Insert("m", nil, Point{TimeS: float64(i), Value: float64(i)})
		if i%100 == 99 {
			db.Compact(float64(i))
		}
	}
	db.Compact(1000)
	st := db.TSDBStats()
	if st.HourDropped == 0 {
		t.Fatalf("no hour buckets aged out: %+v", st)
	}
	// Ledger still exact through the drop.
	if st.Inserted != uint64(st.RawPoints)+st.RawCompacted {
		t.Fatalf("accounting broken after drop: %+v", st)
	}
}

// TestLatestConstantTime sanity-checks the cached Latest against ties (a
// later insert at an equal timestamp wins, matching the old linear scan).
func TestLatestConstantTime(t *testing.T) {
	db := NewDB()
	db.Insert("m", nil, Point{TimeS: 5, Value: 1})
	db.Insert("m", nil, Point{TimeS: 5, Value: 2})
	db.Insert("m", nil, Point{TimeS: 3, Value: 9})
	p, ok := db.Latest("m", nil)
	if !ok || p.Value != 2 {
		t.Fatalf("Latest = %+v, want the later tie (value 2)", p)
	}
}

// TestQueryAggOverHTTP exercises the tier parameter end to end.
func TestQueryAggOverHTTP(t *testing.T) {
	db := NewDBWithRetention(RetentionConfig{RawWindowS: 10, MinuteS: 10, HourS: 60})
	for i := 0; i < 100; i++ {
		db.Insert("m", nil, Point{TimeS: float64(i), Value: float64(i)})
	}
	db.Compact(100)
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := httpGet("http://" + addr + "/query?measurement=m&tier=1m&from=0&to=100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, `"count":10`) {
		t.Fatalf("tier query response missing buckets: %s", resp)
	}
	if _, err := httpGet("http://" + addr + "/query?measurement=m&tier=bogus"); err == nil {
		t.Fatalf("bogus tier accepted")
	}
}

// TestPartialWriteReportsLines checks the /write endpoint's keep-going
// semantics over the wire: good lines land, the 400 names the bad ones.
func TestPartialWriteReportsLines(t *testing.T) {
	db := NewDB()
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient(addr)
	err = client.WriteLines("m f=1 10\nbroken\nm f=2 20")
	if err == nil {
		t.Fatalf("write with a malformed line must fail")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the bad line: %v", err)
	}
	if got := db.Query("m", map[string]string{"field": "f"}, 0, 100); len(got) != 2 {
		t.Fatalf("good lines not ingested on partial failure: %d", len(got))
	}
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return string(body), nil
}
