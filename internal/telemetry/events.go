package telemetry

import "sync"

// Entry is one structured operational event: a safety-stage transition, a
// sensor quarantine, a policy override. The event log is the observability
// counterpart of the time-series store — discrete happenings instead of
// sampled series.
type Entry struct {
	TimeS  float64 `json:"time_s"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail"`
}

// EventLog is a bounded, thread-safe ring of operational events plus
// cumulative per-kind counters. Appends past the capacity evict the oldest
// entry; the counters never reset.
type EventLog struct {
	mu      sync.Mutex
	cap     int
	start   int // ring read position
	entries []Entry
	counts  map[string]uint64
	total   uint64
	dropped uint64 // entries overwritten by the ring before being read
}

// NewEventLog returns an empty log retaining at most capacity entries
// (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{cap: capacity, counts: map[string]uint64{}}
}

// Append records one event, evicting the oldest when full.
func (l *EventLog) Append(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
	} else {
		l.entries[l.start] = e
		l.start = (l.start + 1) % l.cap
		l.dropped++
	}
	l.counts[e.Kind]++
	l.total++
}

// Recent returns up to n retained events, oldest first. n <= 0 returns all
// retained entries.
func (l *EventLog) Recent(n int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := len(l.entries)
	if n <= 0 || n > m {
		n = m
	}
	out := make([]Entry, 0, n)
	for i := m - n; i < m; i++ {
		out = append(out, l.entries[(l.start+i)%len(l.entries)])
	}
	return out
}

// Counts returns a copy of the cumulative per-kind counters.
func (l *EventLog) Counts() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}

// Total returns how many events were ever appended.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped returns how many events the ring overwrote — the event-loss
// counter an escalation storm shows up on. The per-kind counters still count
// dropped events; only their Entry payloads are gone.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}
