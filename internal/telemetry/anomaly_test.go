package telemetry

import (
	"testing"

	"tesla/internal/rng"
	"tesla/internal/testbed"
	"tesla/internal/workload"
)

func healthySeries(db *DB, name string, n int, seed uint64) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		db.Insert(name, nil, Point{TimeS: float64(i) * 60, Value: 20 + 0.2*r.Norm()})
	}
}

func TestDetectorHealthySeriesIsClean(t *testing.T) {
	db := NewDB()
	healthySeries(db, "dc", 30, 1)
	d := NewDetector(db)
	if got := d.ScanSeries("dc", nil, 29*60); len(got) != 0 {
		t.Fatalf("healthy series flagged: %+v", got)
	}
}

func TestDetectorStuckSeries(t *testing.T) {
	db := NewDB()
	for i := 0; i < 30; i++ {
		db.Insert("stuck", nil, Point{TimeS: float64(i) * 60, Value: 21.5})
	}
	d := NewDetector(db)
	got := d.ScanSeries("stuck", nil, 29*60)
	if len(got) != 1 || got[0].Kind != AnomalyStuck {
		t.Fatalf("stuck series not detected: %+v", got)
	}
	if got[0].Value != 21.5 {
		t.Fatalf("stuck value %g", got[0].Value)
	}
}

func TestDetectorStaleSeries(t *testing.T) {
	db := NewDB()
	healthySeries(db, "stale", 10, 2)
	d := NewDetector(db)
	// Query far in the future: newest sample is very old.
	got := d.ScanSeries("stale", nil, 10*60+1000)
	found := false
	for _, a := range got {
		if a.Kind == AnomalyStale {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale series not detected: %+v", got)
	}
	// A series with no samples in the window at all is also stale.
	if got := d.ScanSeries("missing", nil, 100); len(got) != 1 || got[0].Kind != AnomalyStale {
		t.Fatalf("missing series not flagged stale: %+v", got)
	}
}

func TestDetectorSpike(t *testing.T) {
	db := NewDB()
	healthySeries(db, "spiky", 30, 3)
	db.Insert("spiky", nil, Point{TimeS: 15 * 60, Value: 95}) // electrical noise
	d := NewDetector(db)
	got := d.ScanSeries("spiky", nil, 29*60)
	found := false
	for _, a := range got {
		if a.Kind == AnomalySpike && a.Value == 95 {
			found = true
		}
	}
	if !found {
		t.Fatalf("spike not detected: %+v", got)
	}
}

func TestDetectorScanAllSortsAndParsesTags(t *testing.T) {
	db := NewDB()
	for i := 0; i < 30; i++ {
		db.Insert("dc_temp", map[string]string{"sensor": "4"}, Point{TimeS: float64(i) * 60, Value: 19})
	}
	healthySeries(db, "acu", 30, 4)
	d := NewDetector(db)
	got := d.ScanAll(29 * 60)
	if len(got) != 1 {
		t.Fatalf("want exactly the stuck tagged series flagged, got %+v", got)
	}
	if got[0].Series != "dc_temp,sensor=4" {
		t.Fatalf("series key %q", got[0].Series)
	}
}

func TestDetectorMinSamplesGate(t *testing.T) {
	db := NewDB()
	for i := 0; i < 3; i++ {
		db.Insert("short", nil, Point{TimeS: float64(i) * 60, Value: 21.5})
	}
	d := NewDetector(db)
	for _, a := range d.ScanSeries("short", nil, 2*60) {
		if a.Kind == AnomalyStuck {
			t.Fatalf("stuck check must wait for MinSamples: %+v", a)
		}
	}
}

func TestDetectorCatchesInjectedTestbedFault(t *testing.T) {
	// End-to-end: a frozen cold-aisle probe on the real collector path must
	// surface as a stuck anomaly on exactly that series.
	db := NewDB()
	tb, err := testbed.New(testbed.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb.UseProfile(workload.Constant{Util: 0.25})
	col := NewCollector(tb)
	tb.Sensors.FailDC(5, 21.5)
	for i := 0; i < 20; i++ {
		s := tb.Advance()
		if err := db.IngestLines(col.Scrape(s)); err != nil {
			t.Fatal(err)
		}
	}
	d := NewDetector(db)
	got := d.ScanAll(tb.TimeS())
	foundStuck := false
	for _, a := range got {
		if a.Kind == AnomalyStuck && a.Series == "dc_temp,field=c,sensor=5" {
			foundStuck = true
		}
		if a.Kind == AnomalyStuck && a.Series == "dc_temp,field=c,sensor=6" {
			t.Fatalf("healthy sensor flagged stuck")
		}
	}
	if !foundStuck {
		t.Fatalf("injected fault not detected; anomalies: %+v", got)
	}
}
