package telemetry

import (
	"sync"
	"time"
)

// Rollup is the fleet-wide aggregate the ingestion pipeline maintains — the
// numbers an estate operator watches instead of N per-room dashboards. It is
// computed from ingested samples only: under backpressure the per-room drop
// counters say exactly how much telemetry the rollup has NOT seen.
type Rollup struct {
	Rooms   int    `json:"rooms"`
	Samples uint64 `json:"samples"`  // samples folded into the rollup
	Dropped uint64 `json:"dropped"`  // samples evicted before ingestion
	Gaps    uint64 `json:"seq_gaps"` // sequence discontinuities observed

	MaxColdC        float64 `json:"max_cold_c"`        // worst cold-aisle reading ever ingested
	TotalCoolingKW  float64 `json:"total_cooling_kw"`  // sum of each room's latest ACU draw
	CoolingKWh      float64 `json:"cooling_kwh"`       // trapezoid-free energy integral over ingested steps
	ViolationMin    int     `json:"violation_minutes"` // ingested steps with delivered max cold > limit
	InterruptionMin int     `json:"interruption_minutes"`

	// SafetyLevels histograms ingested room-steps by the safety stage they
	// executed under (index = safety.Level ordinal).
	SafetyLevels [4]uint64 `json:"safety_levels"`
}

// Merge folds another rollup into r. Counters and integrals add, the
// cold-aisle maximum takes the worse reading, and the safety histogram sums
// bucket-wise — so a coordinator merging per-shard rollups reports the same
// fleet aggregate a single-process ingestor would have, as long as each
// sample was folded by exactly one shard.
func (r *Rollup) Merge(o Rollup) {
	r.Rooms += o.Rooms
	r.Samples += o.Samples
	r.Dropped += o.Dropped
	r.Gaps += o.Gaps
	if o.MaxColdC > r.MaxColdC {
		r.MaxColdC = o.MaxColdC
	}
	r.TotalCoolingKW += o.TotalCoolingKW
	r.CoolingKWh += o.CoolingKWh
	r.ViolationMin += o.ViolationMin
	r.InterruptionMin += o.InterruptionMin
	for i := range r.SafetyLevels {
		r.SafetyLevels[i] += o.SafetyLevels[i]
	}
}

// RoomAgg is the ingested view of one room: latest values plus accumulators.
// It lags the room's control loop by whatever sits in the queue — by design;
// the control loop's own metrics are the authoritative record.
type RoomAgg struct {
	Room    int    `json:"room"`
	Samples uint64 `json:"samples"`
	Gaps    uint64 `json:"seq_gaps"` // samples lost to queue eviction, from seq jumps
	Dropped uint64 `json:"dropped"`  // this room's queue evictions (live counter)

	LastSeq       uint64  `json:"last_seq"`
	LastTimeS     float64 `json:"last_time_s"`
	LastSetpointC float64 `json:"last_setpoint_c"`
	LastMaxColdC  float64 `json:"last_max_cold_c"`
	LastPowerKW   float64 `json:"last_power_kw"`
	LastLevel     int     `json:"last_level"`

	MaxColdC        float64 `json:"max_cold_c"`
	CoolingKWh      float64 `json:"cooling_kwh"`
	ViolationMin    int     `json:"violation_minutes"`
	InterruptionMin int     `json:"interruption_minutes"`
}

// Ingestor drains a set of per-room queues in bounded batches and folds the
// samples into per-room accumulators plus the fleet rollup. One ingestor
// serves the whole fleet: batching amortizes the lock traffic and the
// bounded batch size keeps any one room's backlog from starving its
// siblings' freshness (the telegraf model).
type Ingestor struct {
	queues  []*Queue
	limitC  float64
	periodS float64
	batch   int

	mu    sync.Mutex
	rooms []RoomAgg
	fleet Rollup
}

// NewIngestor builds an ingestor over the given room queues. coldLimitC is
// the violation threshold, samplePeriodS the control period (for energy and
// violation-minute accounting), batch the per-queue drain bound per sweep
// (<= 0 selects 64).
func NewIngestor(queues []*Queue, coldLimitC, samplePeriodS float64, batch int) *Ingestor {
	if batch <= 0 {
		batch = 64
	}
	in := &Ingestor{queues: queues, limitC: coldLimitC, periodS: samplePeriodS, batch: batch}
	in.rooms = make([]RoomAgg, len(queues))
	for i := range in.rooms {
		in.rooms[i] = RoomAgg{Room: i, LastSeq: ^uint64(0)}
	}
	in.fleet.Rooms = len(queues)
	return in
}

// DrainOnce performs one batched sweep over every queue and returns how many
// samples it ingested.
func (in *Ingestor) DrainOnce() int {
	total := 0
	for i, q := range in.queues {
		batch := q.Drain(in.batch)
		if len(batch) == 0 {
			continue
		}
		total += len(batch)
		in.fold(i, batch)
	}
	return total
}

// fold applies one room's batch under the lock.
func (in *Ingestor) fold(room int, batch []RoomSample) {
	in.mu.Lock()
	defer in.mu.Unlock()
	ra := &in.rooms[room]
	for _, rs := range batch {
		// LastSeq starts at ^0, so a stream that begins past seq 0 — its
		// head evicted before the first sweep — counts as a gap too.
		if rs.Seq != ra.LastSeq+1 {
			gap := rs.Seq - ra.LastSeq - 1
			ra.Gaps += gap
			in.fleet.Gaps += gap
		}
		ra.Samples++
		ra.LastSeq = rs.Seq
		ra.LastTimeS = rs.S.TimeS
		ra.LastSetpointC = rs.S.SetpointC
		ra.LastMaxColdC = rs.S.MaxColdAisle
		ra.LastPowerKW = rs.S.ACUPowerKW
		ra.LastLevel = rs.Level
		if rs.S.MaxColdAisle > ra.MaxColdC {
			ra.MaxColdC = rs.S.MaxColdAisle
		}
		ra.CoolingKWh += rs.S.ACUPowerKW * in.periodS / 3600
		if rs.S.MaxColdAisle > in.limitC {
			ra.ViolationMin++
			in.fleet.ViolationMin++
		}
		if rs.S.Interrupted {
			ra.InterruptionMin++
			in.fleet.InterruptionMin++
		}
		in.fleet.Samples++
		in.fleet.CoolingKWh += rs.S.ACUPowerKW * in.periodS / 3600
		if rs.S.MaxColdAisle > in.fleet.MaxColdC {
			in.fleet.MaxColdC = rs.S.MaxColdAisle
		}
		lvl := rs.Level
		if lvl < 0 {
			lvl = 0
		}
		if lvl >= len(in.fleet.SafetyLevels) {
			lvl = len(in.fleet.SafetyLevels) - 1
		}
		in.fleet.SafetyLevels[lvl]++
	}
}

// Rollup snapshots the fleet aggregate, folding in the queues' live drop
// counters so the exposed number is current even between sweeps.
func (in *Ingestor) Rollup() Rollup {
	in.mu.Lock()
	out := in.fleet
	var power float64
	for i := range in.rooms {
		power += in.rooms[i].LastPowerKW
	}
	out.TotalCoolingKW = power
	in.mu.Unlock()
	var dropped uint64
	for _, q := range in.queues {
		_, d := q.Stats()
		dropped += d
	}
	out.Dropped = dropped
	return out
}

// SeedSeq primes one room's sequence cursor so the next sample at sequence
// `next` continues a predecessor's stream seamlessly: the records the
// predecessor already accounted for (samples or gaps, seqs < next) are not
// re-counted as gaps here. next == 0 keeps the fresh-stream cursor. Call
// before the first sample for the room is folded — the hand-off path, where
// a successor ingestor resumes a Poller.Seqs() token.
func (in *Ingestor) SeedSeq(room int, next uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if room < 0 || room >= len(in.rooms) || next == 0 {
		return
	}
	in.rooms[room].LastSeq = next - 1
}

// RoomAggs snapshots the per-room ingested views, folding in each queue's
// live drop counter — so a single hot room's evictions are attributable
// instead of vanishing into the fleet total.
func (in *Ingestor) RoomAggs() []RoomAgg {
	in.mu.Lock()
	out := append([]RoomAgg(nil), in.rooms...)
	in.mu.Unlock()
	for i, q := range in.queues {
		_, out[i].Dropped = q.Stats()
	}
	return out
}

// Run drains on the given interval until stop closes, then performs final
// sweeps until every queue is empty — so a batch caller that stops the loop
// after its producers exit observes a fully drained pipeline.
func (in *Ingestor) Run(stop <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			for in.DrainOnce() > 0 {
			}
			return
		case <-tick.C:
			in.DrainOnce()
		}
	}
}
