// Package telemetry reproduces the paper's observability stack (§4) at
// production volume: a time-series store with InfluxDB-style line protocol
// ingestion, range queries served over HTTP, tiered downsampling retention
// (raw → 1-min → 1-hour), and a polling collector that scrapes the simulated
// testbed the way Telegraf scrapes servers and Modbus devices.
//
// The production TESLA deployment decouples data collection from control
// through this layer — producers push testbed telemetry into the store and
// the consumer (the controller) reads it back. The observability example and
// the integration tests wire the full loop over real TCP sockets using only
// the standard library.
//
// Storage engine. Each series stores its points in a list of time-ordered,
// non-overlapping chunks. In-order appends (the overwhelmingly common case —
// sensors emit monotone timestamps) are O(1): extend the last chunk, split
// when full. Out-of-order inserts binary-search the chunk list and shift
// within one bounded chunk, never the whole series. Range queries binary
// search the chunk boundaries and copy only the matching window; Latest is
// O(1) off a per-series cache. A global lock guards the series map; each
// series carries its own lock, so concurrent writers to different series do
// not serialize.
package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Point is one sample of one series.
type Point struct {
	TimeS float64
	Value float64
}

// chunkSize bounds one chunk: the shift cost of an out-of-order insert and
// the copy granularity of compaction.
const chunkSize = 512

// seriesKey identifies a series by measurement and canonicalized tag string.
type seriesKey struct {
	measurement string
	tags        string
}

// chunk is one sorted run of points. Chunks of a series are time-ordered and
// non-overlapping: chunk i's last timestamp <= chunk i+1's first.
type chunk struct {
	pts []Point
}

func (c *chunk) minT() float64 { return c.pts[0].TimeS }
func (c *chunk) maxT() float64 { return c.pts[len(c.pts)-1].TimeS }

// memSeries is one series' storage plus its slice of the retention state.
type memSeries struct {
	mu     sync.Mutex
	chunks []*chunk

	latest    Point
	hasLatest bool

	inserted uint64 // raw points accepted into chunks, ever

	// Retention state (zero-valued when the DB has no retention config).
	watermarkS   float64 // raw points strictly below this were compacted away
	hasWatermark bool
	lateDropped  uint64 // raw inserts below the watermark, rejected exactly
	compactedRaw uint64 // raw points folded into minute aggregates

	minute aggSeries // 1-min tier
	hour   aggSeries // 1-hour tier
}

// DB is a thread-safe time-series store.
type DB struct {
	mu     sync.RWMutex
	series map[seriesKey]*memSeries
	keys   []seriesKey // sorted lazily by Series()

	ret         RetentionConfig
	hasRet      bool
	rejected    uint64 // line-protocol records rejected by IngestLine(s)
	compactions uint64 // Compact passes run
}

// NewDB returns an empty store with no retention: every raw point is kept
// forever, exactly the pre-tiered behavior.
func NewDB() *DB {
	return &DB{series: map[seriesKey]*memSeries{}}
}

// NewDBWithRetention returns an empty store that downsamples raw points into
// 1-min and 1-hour aggregate tiers as they age past the configured windows.
// Compaction runs only when Compact is called (drive it from a loop or a
// test); memory stays bounded by the retention windows times the ingest rate.
func NewDBWithRetention(rc RetentionConfig) *DB {
	rc = rc.withDefaults()
	return &DB{series: map[seriesKey]*memSeries{}, ret: rc, hasRet: true}
}

// canonTags renders a tag map in sorted key=value form.
func canonTags(tags map[string]string) string {
	if len(tags) == 0 {
		return ""
	}
	keys := make([]string, 0, len(tags))
	for k := range tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(tags[k])
	}
	return b.String()
}

// getSeries returns the series for key, creating it if needed.
func (db *DB) getSeries(key seriesKey) *memSeries {
	db.mu.RLock()
	s := db.series[key]
	db.mu.RUnlock()
	if s != nil {
		return s
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if s = db.series[key]; s != nil {
		return s
	}
	s = &memSeries{}
	db.series[key] = s
	db.keys = append(db.keys, key)
	return s
}

// Insert appends one point to a series. Out-of-order timestamps are accepted
// down to the series' compaction watermark; points older than what has
// already been downsampled are rejected and counted (LateDropped), never
// silently folded into closed aggregates.
func (db *DB) Insert(measurement string, tags map[string]string, p Point) {
	db.getSeries(seriesKey{measurement, canonTags(tags)}).insert(p)
}

// Ref resolves a series once so hot paths can append without re-canonicalizing
// tags or re-hashing the map — the batched ingest fast path.
func (db *DB) Ref(measurement string, tags map[string]string) SeriesRef {
	return SeriesRef{s: db.getSeries(seriesKey{measurement, canonTags(tags)})}
}

// SeriesRef is a resolved handle onto one series.
type SeriesRef struct{ s *memSeries }

// Append inserts one point through the resolved handle.
func (r SeriesRef) Append(p Point) { r.s.insert(p) }

// AppendBatch inserts a batch under one lock acquisition.
func (r SeriesRef) AppendBatch(pts []Point) {
	r.s.mu.Lock()
	for _, p := range pts {
		r.s.insertLocked(p)
	}
	r.s.mu.Unlock()
}

func (s *memSeries) insert(p Point) {
	s.mu.Lock()
	s.insertLocked(p)
	s.mu.Unlock()
}

func (s *memSeries) insertLocked(p Point) {
	if s.hasWatermark && p.TimeS < s.watermarkS {
		s.lateDropped++
		return
	}
	s.inserted++
	if !s.hasLatest || p.TimeS >= s.latest.TimeS {
		s.latest = p
		s.hasLatest = true
	}
	n := len(s.chunks)
	// Fast path: in-order append onto the last chunk.
	if n > 0 {
		last := s.chunks[n-1]
		if p.TimeS >= last.maxT() {
			if len(last.pts) < chunkSize {
				last.pts = append(last.pts, p)
				return
			}
			s.chunks = append(s.chunks, &chunk{pts: append(make([]Point, 0, chunkSize/4), p)})
			return
		}
	} else {
		s.chunks = append(s.chunks, &chunk{pts: append(make([]Point, 0, chunkSize/4), p)})
		return
	}
	// Out-of-order: find the first chunk whose max >= p.TimeS and insert at
	// its sorted position. Equal timestamps insert after existing ones, so a
	// later write wins Latest ties exactly as the pre-chunked store did.
	ci := sort.Search(n, func(i int) bool { return s.chunks[i].maxT() >= p.TimeS })
	c := s.chunks[ci]
	pi := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].TimeS > p.TimeS })
	if len(c.pts) >= chunkSize {
		// Split the full chunk in half, then insert into the right half.
		mid := len(c.pts) / 2
		right := &chunk{pts: append(make([]Point, 0, chunkSize/2+1), c.pts[mid:]...)}
		c.pts = c.pts[:mid:mid]
		s.chunks = append(s.chunks, nil)
		copy(s.chunks[ci+2:], s.chunks[ci+1:])
		s.chunks[ci+1] = right
		if pi > mid {
			c, pi = right, pi-mid
		}
	}
	c.pts = append(c.pts, Point{})
	copy(c.pts[pi+1:], c.pts[pi:])
	c.pts[pi] = p
}

// Query returns the points of a series within [fromS, toS], sorted by time.
func (db *DB) Query(measurement string, tags map[string]string, fromS, toS float64) []Point {
	key := seriesKey{measurement, canonTags(tags)}
	db.mu.RLock()
	s := db.series[key]
	db.mu.RUnlock()
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Point
	n := len(s.chunks)
	// First chunk that can contain fromS, then walk forward copying windows.
	ci := sort.Search(n, func(i int) bool { return s.chunks[i].maxT() >= fromS })
	for ; ci < n; ci++ {
		c := s.chunks[ci]
		if c.minT() > toS {
			break
		}
		lo := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].TimeS >= fromS })
		hi := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].TimeS > toS })
		if hi > lo {
			out = append(out, c.pts[lo:hi]...)
		}
	}
	return out
}

// Latest returns the most recent point of a series in O(1).
func (db *DB) Latest(measurement string, tags map[string]string) (Point, bool) {
	key := seriesKey{measurement, canonTags(tags)}
	db.mu.RLock()
	s := db.series[key]
	db.mu.RUnlock()
	if s == nil {
		return Point{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest, s.hasLatest
}

// Series lists all stored series as "measurement,tags" strings.
func (db *DB) Series() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.series))
	for k := range db.series {
		if k.tags == "" {
			out = append(out, k.measurement)
		} else {
			out = append(out, k.measurement+","+k.tags)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of live raw points (compacted points have
// moved into the aggregate tiers and no longer count).
func (db *DB) Len() int {
	db.mu.RLock()
	series := make([]*memSeries, 0, len(db.series))
	for _, s := range db.series {
		series = append(series, s)
	}
	db.mu.RUnlock()
	n := 0
	for _, s := range series {
		s.mu.Lock()
		for _, c := range s.chunks {
			n += len(c.pts)
		}
		s.mu.Unlock()
	}
	return n
}

// LineError is one rejected record of a batch ingest: its 1-based position
// in the batch and the parse failure.
type LineError struct {
	Line int
	Err  error
}

// BatchError reports every rejected line of a batch ingest. The batch's
// remaining lines were ingested — rejection is per-line, not per-batch.
type BatchError struct {
	Errors []LineError
}

// Error summarizes the batch: the count and the first failure.
func (e *BatchError) Error() string {
	if len(e.Errors) == 0 {
		return "telemetry: batch error with no lines"
	}
	first := e.Errors[0]
	if len(e.Errors) == 1 {
		return fmt.Sprintf("telemetry: line %d: %v", first.Line, first.Err)
	}
	return fmt.Sprintf("telemetry: %d lines rejected (first: line %d: %v)", len(e.Errors), first.Line, first.Err)
}

// IngestLine parses one line-protocol record:
//
//	measurement[,tag=value...] field=value[,field=value...] timestampSeconds
//
// Each field becomes its own series tagged with field=<name>, matching how
// the collector stores multi-field scrapes.
//
// No-escaping limits: the protocol is whitespace- and comma-delimited with no
// escape syntax, so measurement names, tag keys/values and field keys must
// not contain spaces, commas or '='. Values violating this parse as
// malformed (or silently split) — the fuzz and table tests pin the behavior.
func (db *DB) IngestLine(line string) error {
	err := db.ingestLine(line)
	if err != nil {
		db.mu.Lock()
		db.rejected++
		db.mu.Unlock()
	}
	return err
}

func (db *DB) ingestLine(line string) error {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	parts := strings.Fields(line)
	if len(parts) != 3 {
		return fmt.Errorf("telemetry: line needs 'series fields timestamp', got %q", line)
	}
	head := strings.Split(parts[0], ",")
	measurement := head[0]
	if measurement == "" {
		return fmt.Errorf("telemetry: empty measurement in %q", line)
	}
	tags := map[string]string{}
	for _, kv := range head[1:] {
		i := strings.IndexByte(kv, '=')
		if i <= 0 {
			return fmt.Errorf("telemetry: malformed tag %q", kv)
		}
		tags[kv[:i]] = kv[i+1:]
	}
	ts, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("telemetry: bad timestamp in %q: %w", line, err)
	}
	// Parse every field before inserting any, so a malformed trailing field
	// rejects the whole record instead of half-applying it.
	type fv struct {
		name string
		v    float64
	}
	fvs := make([]fv, 0, 4)
	for _, f := range strings.Split(parts[1], ",") {
		i := strings.IndexByte(f, '=')
		if i <= 0 {
			return fmt.Errorf("telemetry: malformed field %q", f)
		}
		v, err := strconv.ParseFloat(f[i+1:], 64)
		if err != nil {
			return fmt.Errorf("telemetry: bad field value in %q: %w", f, err)
		}
		fvs = append(fvs, fv{f[:i], v})
	}
	for _, f := range fvs {
		withField := map[string]string{"field": f.name}
		for k, val := range tags {
			withField[k] = val
		}
		db.Insert(measurement, withField, Point{TimeS: ts, Value: f.v})
	}
	return nil
}

// IngestLines parses a batch of newline-separated line-protocol records.
// A malformed line does NOT abort the batch: every remaining line is still
// ingested, and the returned error (a *BatchError) carries the 1-based line
// number and cause of each rejection. Rejected lines are counted (Rejected).
func (db *DB) IngestLines(lines string) error {
	_, _, err := db.IngestBatch(lines)
	return err
}

// IngestBatch is IngestLines plus counts: records ingested and rejected.
// Blank lines and comments count as neither. Decoding goes through the
// batched wire path: per-batch series resolution is cached, so records
// after the first on a series are pure appends.
func (db *DB) IngestBatch(lines string) (ingested, rejectedN int, err error) {
	dec := db.newBatchDecoder()
	var be *BatchError
	lineNo := 0
	start := 0
	for i := 0; i <= len(lines); i++ {
		if i == len(lines) || lines[i] == '\n' {
			lineNo++
			raw := lines[start:i]
			start = i + 1
			trimmed := strings.TrimSpace(raw)
			if trimmed == "" || strings.HasPrefix(trimmed, "#") {
				continue
			}
			if lerr := dec.ingest(raw); lerr != nil {
				if be == nil {
					be = &BatchError{}
				}
				be.Errors = append(be.Errors, LineError{Line: lineNo, Err: lerr})
				rejectedN++
				continue
			}
			ingested++
		}
	}
	if rejectedN > 0 {
		db.mu.Lock()
		db.rejected += uint64(rejectedN)
		db.mu.Unlock()
	}
	if be != nil {
		return ingested, rejectedN, be
	}
	return ingested, rejectedN, nil
}

// Rejected returns the cumulative count of line-protocol records this store
// has rejected as malformed.
func (db *DB) Rejected() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.rejected
}

// FormatLine renders a record in the line protocol accepted by IngestLine.
// It performs no escaping (see IngestLine's documented limits); callers own
// keeping names free of spaces, commas and '='.
func FormatLine(measurement string, tags map[string]string, fields map[string]float64, timeS float64) string {
	var b strings.Builder
	b.WriteString(measurement)
	if t := canonTags(tags); t != "" {
		b.WriteByte(',')
		b.WriteString(t)
	}
	b.WriteByte(' ')
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%g", k, fields[k])
	}
	fmt.Fprintf(&b, " %g", timeS)
	return b.String()
}
