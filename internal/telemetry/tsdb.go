// Package telemetry reproduces the paper's observability stack (§4) in
// miniature: an in-memory time-series database with InfluxDB-style line
// protocol ingestion and range queries (served over HTTP), plus a polling
// collector that scrapes the simulated testbed the way Telegraf scrapes
// servers and Modbus devices.
//
// The production TESLA deployment decouples data collection from control
// through this layer — a producer pushes testbed telemetry into the store
// and the consumer (the controller) reads it back. The observability
// example and the integration tests wire the full loop over real TCP
// sockets using only the standard library.
package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Point is one sample of one series.
type Point struct {
	TimeS float64
	Value float64
}

// seriesKey identifies a series by measurement and canonicalized tag string.
type seriesKey struct {
	measurement string
	tags        string
}

// DB is a thread-safe in-memory time-series store.
type DB struct {
	mu     sync.RWMutex
	series map[seriesKey][]Point
}

// NewDB returns an empty store.
func NewDB() *DB {
	return &DB{series: map[seriesKey][]Point{}}
}

// canonTags renders a tag map in sorted key=value form.
func canonTags(tags map[string]string) string {
	if len(tags) == 0 {
		return ""
	}
	keys := make([]string, 0, len(tags))
	for k := range tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(tags[k])
	}
	return b.String()
}

// Insert appends one point to a series. Out-of-order timestamps are
// tolerated (they are sorted lazily at query time).
func (db *DB) Insert(measurement string, tags map[string]string, p Point) {
	key := seriesKey{measurement, canonTags(tags)}
	db.mu.Lock()
	db.series[key] = append(db.series[key], p)
	db.mu.Unlock()
}

// Query returns the points of a series within [fromS, toS], sorted by time.
func (db *DB) Query(measurement string, tags map[string]string, fromS, toS float64) []Point {
	key := seriesKey{measurement, canonTags(tags)}
	db.mu.RLock()
	pts := append([]Point(nil), db.series[key]...)
	db.mu.RUnlock()
	sort.Slice(pts, func(i, j int) bool { return pts[i].TimeS < pts[j].TimeS })
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].TimeS >= fromS })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].TimeS > toS })
	return pts[lo:hi]
}

// Latest returns the most recent point of a series.
func (db *DB) Latest(measurement string, tags map[string]string) (Point, bool) {
	key := seriesKey{measurement, canonTags(tags)}
	db.mu.RLock()
	defer db.mu.RUnlock()
	pts := db.series[key]
	if len(pts) == 0 {
		return Point{}, false
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if p.TimeS >= best.TimeS {
			best = p
		}
	}
	return best, true
}

// Series lists all stored series as "measurement,tags" strings.
func (db *DB) Series() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.series))
	for k := range db.series {
		if k.tags == "" {
			out = append(out, k.measurement)
		} else {
			out = append(out, k.measurement+","+k.tags)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of stored points.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, pts := range db.series {
		n += len(pts)
	}
	return n
}

// IngestLine parses one line-protocol record:
//
//	measurement[,tag=value...] field=value[,field=value...] timestampSeconds
//
// Each field becomes its own series tagged with field=<name>, matching how
// the collector stores multi-field scrapes.
func (db *DB) IngestLine(line string) error {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	parts := strings.Fields(line)
	if len(parts) != 3 {
		return fmt.Errorf("telemetry: line needs 'series fields timestamp', got %q", line)
	}
	head := strings.Split(parts[0], ",")
	measurement := head[0]
	if measurement == "" {
		return fmt.Errorf("telemetry: empty measurement in %q", line)
	}
	tags := map[string]string{}
	for _, kv := range head[1:] {
		i := strings.IndexByte(kv, '=')
		if i <= 0 {
			return fmt.Errorf("telemetry: malformed tag %q", kv)
		}
		tags[kv[:i]] = kv[i+1:]
	}
	ts, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("telemetry: bad timestamp in %q: %w", line, err)
	}
	for _, fv := range strings.Split(parts[1], ",") {
		i := strings.IndexByte(fv, '=')
		if i <= 0 {
			return fmt.Errorf("telemetry: malformed field %q", fv)
		}
		v, err := strconv.ParseFloat(fv[i+1:], 64)
		if err != nil {
			return fmt.Errorf("telemetry: bad field value in %q: %w", fv, err)
		}
		withField := map[string]string{"field": fv[:i]}
		for k, val := range tags {
			withField[k] = val
		}
		db.Insert(measurement, withField, Point{TimeS: ts, Value: v})
	}
	return nil
}

// IngestLines parses a batch of newline-separated line-protocol records.
func (db *DB) IngestLines(lines string) error {
	start := 0
	for i := 0; i <= len(lines); i++ {
		if i == len(lines) || lines[i] == '\n' {
			if err := db.IngestLine(lines[start:i]); err != nil {
				return err
			}
			start = i + 1
		}
	}
	return nil
}

// FormatLine renders a record in the line protocol accepted by IngestLine.
func FormatLine(measurement string, tags map[string]string, fields map[string]float64, timeS float64) string {
	var b strings.Builder
	b.WriteString(measurement)
	if t := canonTags(tags); t != "" {
		b.WriteByte(',')
		b.WriteString(t)
	}
	b.WriteByte(' ')
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%g", k, fields[k])
	}
	fmt.Fprintf(&b, " %g", timeS)
	return b.String()
}
