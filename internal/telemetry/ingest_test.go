package telemetry

import (
	"testing"
	"time"

	"tesla/internal/testbed"
)

func sampleAt(seq uint64, maxCold, powerKW float64, interrupted bool) testbed.Sample {
	return testbed.Sample{
		TimeS:        float64(seq) * 60,
		SetpointC:    23,
		MaxColdAisle: maxCold,
		ACUPowerKW:   powerKW,
		Interrupted:  interrupted,
	}
}

func TestIngestorRollupAccounting(t *testing.T) {
	q0, q1 := NewQueue(16), NewQueue(16)
	in := NewIngestor([]*Queue{q0, q1}, 22, 60, 8)

	// Room 0: 3 benign steps at 2 kW. Room 1: a violation and an interruption,
	// executing under the backstop stage (level 2).
	for i := uint64(0); i < 3; i++ {
		q0.Push(RoomSample{Room: 0, Seq: i, Level: 0, S: sampleAt(i, 21.0, 2.0, false)})
	}
	q1.Push(RoomSample{Room: 1, Seq: 0, Level: 2, S: sampleAt(0, 22.5, 3.0, false)})
	q1.Push(RoomSample{Room: 1, Seq: 1, Level: 2, S: sampleAt(1, 21.5, 0.0, true)})

	if n := in.DrainOnce(); n != 5 {
		t.Fatalf("ingested %d, want 5", n)
	}
	r := in.Rollup()
	if r.Samples != 5 || r.Dropped != 0 || r.Gaps != 0 {
		t.Fatalf("rollup counters = %+v", r)
	}
	if r.MaxColdC != 22.5 || r.ViolationMin != 1 || r.InterruptionMin != 1 {
		t.Fatalf("rollup aggregates = %+v", r)
	}
	// Total cooling: latest per room = 2.0 (room 0) + 0.0 (room 1).
	if r.TotalCoolingKW != 2.0 {
		t.Fatalf("total cooling = %g, want 2.0", r.TotalCoolingKW)
	}
	wantKWh := (3*2.0 + 3.0 + 0.0) * 60 / 3600
	if diff := r.CoolingKWh - wantKWh; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("cooling kWh = %g, want %g", r.CoolingKWh, wantKWh)
	}
	if r.SafetyLevels != [4]uint64{3, 0, 2, 0} {
		t.Fatalf("safety histogram = %v", r.SafetyLevels)
	}

	rooms := in.RoomAggs()
	if rooms[0].Samples != 3 || rooms[0].ViolationMin != 0 || rooms[0].LastSeq != 2 {
		t.Fatalf("room 0 agg = %+v", rooms[0])
	}
	if rooms[1].Samples != 2 || rooms[1].ViolationMin != 1 || rooms[1].InterruptionMin != 1 || rooms[1].LastLevel != 2 {
		t.Fatalf("room 1 agg = %+v", rooms[1])
	}
}

func TestIngestorDetectsGapsAndDrops(t *testing.T) {
	q := NewQueue(4)
	in := NewIngestor([]*Queue{q}, 22, 60, 0)
	// Push 8 into a capacity-4 queue: seqs 0..3 evicted before ingestion.
	for i := uint64(0); i < 8; i++ {
		q.Push(RoomSample{Room: 0, Seq: i, S: sampleAt(i, 20, 1, false)})
	}
	in.DrainOnce()
	r := in.Rollup()
	if r.Samples != 4 || r.Dropped != 4 {
		t.Fatalf("rollup = %+v, want 4 ingested / 4 dropped", r)
	}
	// Seqs 0..3 were evicted before the first sweep; the stream starting at
	// seq 4 must already read as a 4-sample gap.
	if r.Gaps != 4 {
		t.Fatalf("gaps = %d, want 4 (stream head evicted before first sweep)", r.Gaps)
	}
	// A second eviction burst after ingestion started surfaces the same way.
	for i := uint64(8); i < 16; i++ {
		q.Push(RoomSample{Room: 0, Seq: i, S: sampleAt(i, 20, 1, false)})
	}
	in.DrainOnce()
	r = in.Rollup()
	if r.Gaps != 8 {
		t.Fatalf("gaps = %d, want 8 (4 head + seqs 8..11 evicted between sweeps)", r.Gaps)
	}
	if in.RoomAggs()[0].Gaps != 8 {
		t.Fatalf("room gaps = %d, want 8", in.RoomAggs()[0].Gaps)
	}
	// Per-room drop attribution matches the queue's own counter.
	if agg := in.RoomAggs()[0]; agg.Dropped != 8 {
		t.Fatalf("room dropped = %d, want 8", agg.Dropped)
	}
}

func TestIngestorRunDrainsBacklogOnStop(t *testing.T) {
	q := NewQueue(128)
	in := NewIngestor([]*Queue{q}, 22, 60, 16)
	for i := uint64(0); i < 100; i++ {
		q.Push(RoomSample{Room: 0, Seq: i, S: sampleAt(i, 20, 1, false)})
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		in.Run(stop, 100*time.Microsecond)
	}()
	close(stop)
	<-done
	if r := in.Rollup(); r.Samples != 100 || q.Len() != 0 {
		t.Fatalf("stop did not drain the backlog: rollup %+v, queue len %d", r, q.Len())
	}
}
