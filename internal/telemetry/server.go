package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
)

// Server exposes a DB over HTTP with two endpoints:
//
//	POST /write          — body: line-protocol records, one per line
//	GET  /query?...      — q parameters: measurement, tags (k=v,k=v),
//	                       from, to (seconds); returns JSON points
//	GET  /series         — list stored series
//
// This mirrors the InfluxDB write/query split the paper's deployment uses.
type Server struct {
	DB       *DB
	listener net.Listener
	httpSrv  *http.Server
}

// NewServer wraps a DB.
func NewServer(db *DB) *Server {
	return &Server{DB: db}
}

// Start begins serving on addr (use "127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen: %w", err)
	}
	s.listener = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/write", s.handleWrite)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/series", s.handleSeries)
	s.httpSrv = &http.Server{Handler: mux}
	go func() {
		// Serve exits with ErrServerClosed on Close; other errors are
		// surfaced through failed client requests in tests.
		_ = s.httpSrv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	defer r.Body.Close()
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Batched wire decoding: one pass over the body, malformed lines are
	// rejected individually and everything else lands — the client learns
	// exactly which lines failed, and a retry of the full batch is safe for
	// the good lines (idempotent upsert semantics are the caller's concern).
	n, rejected, ierr := s.DB.IngestBatch(string(body))
	if rejected > 0 {
		http.Error(w, fmt.Sprintf("wrote %d lines, rejected %d: %v", n, rejected, ierr), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "wrote %d lines\n", n)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	measurement := q.Get("measurement")
	if measurement == "" {
		http.Error(w, "measurement required", http.StatusBadRequest)
		return
	}
	tags := map[string]string{}
	if tagStr := q.Get("tags"); tagStr != "" {
		for _, kv := range splitNonEmpty(tagStr, ',') {
			i := indexByte(kv, '=')
			if i <= 0 {
				http.Error(w, "malformed tags", http.StatusBadRequest)
				return
			}
			tags[kv[:i]] = kv[i+1:]
		}
	}
	from, err := parseOr(q.Get("from"), 0)
	if err != nil {
		http.Error(w, "bad from", http.StatusBadRequest)
		return
	}
	to, err := parseOr(q.Get("to"), 1e18)
	if err != nil {
		http.Error(w, "bad to", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// tier selects a downsampled resolution; absent or "raw" serves points.
	switch q.Get("tier") {
	case "", "raw":
		pts := s.DB.Query(measurement, tags, from, to)
		if err := json.NewEncoder(w).Encode(pts); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "1m":
		if err := json.NewEncoder(w).Encode(s.DB.QueryAgg(TierMinute, measurement, tags, from, to)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "1h":
		if err := json.NewEncoder(w).Encode(s.DB.QueryAgg(TierHour, measurement, tags, from, to)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, "bad tier (want raw, 1m or 1h)", http.StatusBadRequest)
	}
}

func (s *Server) handleSeries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.DB.Series()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func parseOr(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}

func splitNonEmpty(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Client is a minimal HTTP client for the server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient targets a server address ("host:port").
func NewClient(addr string) *Client {
	return &Client{BaseURL: "http://" + addr, HTTP: &http.Client{}}
}

// WriteLines posts line-protocol records.
func (c *Client) WriteLines(lines string) error {
	resp, err := c.HTTP.Post(c.BaseURL+"/write", "text/plain", stringsReader(lines))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("telemetry: write failed: %s: %s", resp.Status, body)
	}
	return nil
}

// Query fetches points of one series.
func (c *Client) Query(measurement string, tags map[string]string, fromS, toS float64) ([]Point, error) {
	url := fmt.Sprintf("%s/query?measurement=%s&from=%g&to=%g", c.BaseURL, measurement, fromS, toS)
	if t := canonTags(tags); t != "" {
		url += "&tags=" + t // canonical "k=v,k=v" form is URL-safe here
	}
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("telemetry: query failed: %s: %s", resp.Status, body)
	}
	var pts []Point
	if err := json.NewDecoder(resp.Body).Decode(&pts); err != nil {
		return nil, err
	}
	return pts, nil
}

// stringsReader avoids importing strings for a one-liner.
type sr struct {
	s string
	i int
}

func stringsReader(s string) io.Reader { return &sr{s: s} }

// Read implements io.Reader.
func (r *sr) Read(p []byte) (int, error) {
	if r.i >= len(r.s) {
		return 0, io.EOF
	}
	n := copy(p, r.s[r.i:])
	r.i += n
	return n, nil
}
