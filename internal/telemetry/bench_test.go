package telemetry

import (
	"fmt"
	"strings"
	"testing"
)

// benchDB builds a store with n in-order points on one series.
func benchDB(n int) *DB {
	db := NewDB()
	ref := db.Ref("m", map[string]string{"sensor": "0"})
	for i := 0; i < n; i++ {
		ref.Append(Point{TimeS: float64(i), Value: float64(i)})
	}
	return db
}

// BenchmarkQuery pins the range-query cost. The old engine copied and
// re-sorted the whole series per call (O(n log n) for any window); the
// chunked engine binary-searches and copies only the window.
func BenchmarkQuery(b *testing.B) {
	db := benchDB(100_000)
	tags := map[string]string{"sensor": "0"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts := db.Query("m", tags, 50_000, 50_100)
		if len(pts) != 101 {
			b.Fatalf("got %d points", len(pts))
		}
	}
}

// BenchmarkLatest pins the latest-point cost. The old engine scanned the
// whole series per call; the chunked engine answers from a cache.
func BenchmarkLatest(b *testing.B) {
	db := benchDB(100_000)
	tags := map[string]string{"sensor": "0"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, ok := db.Latest("m", tags)
		if !ok || p.TimeS != 99_999 {
			b.Fatalf("Latest = %+v", p)
		}
	}
}

// BenchmarkInsert pins the in-order append fast path through a SeriesRef.
func BenchmarkInsert(b *testing.B) {
	db := NewDB()
	ref := db.Ref("m", nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ref.Append(Point{TimeS: float64(i), Value: 1})
	}
}

// BenchmarkIngestBatch pins the wire-decode path: line-protocol batches the
// size an input plugin would post.
func BenchmarkIngestBatch(b *testing.B) {
	var sb strings.Builder
	const lines = 512
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&sb, "acu,device=d%d power_kw=%d.5 %d\n", i%16, i%7, i)
	}
	batch := sb.String()
	db := NewDB()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, rej, err := db.IngestBatch(batch); rej != 0 || err != nil {
			b.Fatalf("rejected %d: %v", rej, err)
		}
	}
	b.ReportMetric(float64(b.N*lines)/b.Elapsed().Seconds(), "lines/s")
}
