package telemetry

import (
	"fmt"
	"math"
	"sort"
)

// Anomaly detection for sensor telemetry: the §4 deployment depends on 37
// temperature probes, and the dominant field failures are stuck readings
// (a probe freezes at one value), stale series (a probe stops reporting)
// and spikes (electrical noise). Detector flags all three from the stored
// series so operators — or a supervisor around the controller — can mask
// bad inputs before they bias the thermal-safety constraint.

// AnomalyKind classifies a finding.
type AnomalyKind string

// The detected anomaly classes.
const (
	AnomalyStuck AnomalyKind = "stuck" // variance collapsed to ~0
	AnomalyStale AnomalyKind = "stale" // no samples within the window
	AnomalySpike AnomalyKind = "spike" // |x − median| beyond the threshold
)

// Anomaly is one finding on one series.
type Anomaly struct {
	Series string
	Kind   AnomalyKind
	// TimeS is the timestamp of the offending sample (spikes) or the last
	// seen sample (stale); for stuck series it is the window end.
	TimeS float64
	// Value is the offending reading (spike/stuck); 0 for stale.
	Value float64
	// Detail is a human-readable explanation.
	Detail string
}

// DetectorConfig tunes the checks.
type DetectorConfig struct {
	// WindowS is how far back to look.
	WindowS float64
	// StuckStd flags a series whose standard deviation over the window
	// falls below this while carrying at least MinSamples points. Healthy
	// temperature probes always show measurement noise.
	StuckStd float64
	// StaleAfterS flags a series whose newest sample is older than this.
	StaleAfterS float64
	// SpikeMAD flags samples more than SpikeMAD median-absolute-deviations
	// from the window median (a robust z-score).
	SpikeMAD float64
	// MinSamples gates the stuck/spike checks.
	MinSamples int
}

// DefaultDetectorConfig suits 1-minute telemetry.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		WindowS:     1800,
		StuckStd:    0.005,
		StaleAfterS: 300,
		SpikeMAD:    8,
		MinSamples:  10,
	}
}

// Detector scans a DB for anomalies.
type Detector struct {
	DB  *DB
	Cfg DetectorConfig
}

// NewDetector wraps a DB with the default configuration.
func NewDetector(db *DB) *Detector {
	return &Detector{DB: db, Cfg: DefaultDetectorConfig()}
}

// ScanSeries checks one series as of time nowS.
func (d *Detector) ScanSeries(measurement string, tags map[string]string, nowS float64) []Anomaly {
	key := measurement
	if t := canonTags(tags); t != "" {
		key += "," + t
	}
	pts := d.DB.Query(measurement, tags, nowS-d.Cfg.WindowS, nowS)
	var out []Anomaly

	if len(pts) == 0 {
		out = append(out, Anomaly{
			Series: key, Kind: AnomalyStale, TimeS: nowS,
			Detail: fmt.Sprintf("no samples within the last %.0f s", d.Cfg.WindowS),
		})
		return out
	}
	newest := pts[len(pts)-1]
	if nowS-newest.TimeS > d.Cfg.StaleAfterS {
		out = append(out, Anomaly{
			Series: key, Kind: AnomalyStale, TimeS: newest.TimeS, Value: newest.Value,
			Detail: fmt.Sprintf("last sample %.0f s old", nowS-newest.TimeS),
		})
	}
	if len(pts) < d.Cfg.MinSamples {
		return out
	}

	// Stuck: collapsed variance.
	var sum, sum2 float64
	for _, p := range pts {
		sum += p.Value
		sum2 += p.Value * p.Value
	}
	n := float64(len(pts))
	mean := sum / n
	std := math.Sqrt(math.Max(0, sum2/n-mean*mean))
	if std < d.Cfg.StuckStd {
		out = append(out, Anomaly{
			Series: key, Kind: AnomalyStuck, TimeS: newest.TimeS, Value: mean,
			Detail: fmt.Sprintf("std %.4f over %d samples", std, len(pts)),
		})
	}

	// Spikes: robust z-score against the window median.
	med, mad := medianMAD(pts)
	if mad > 1e-9 {
		for _, p := range pts {
			if math.Abs(p.Value-med)/mad > d.Cfg.SpikeMAD {
				out = append(out, Anomaly{
					Series: key, Kind: AnomalySpike, TimeS: p.TimeS, Value: p.Value,
					Detail: fmt.Sprintf("%.2f vs window median %.2f (MAD %.3f)", p.Value, med, mad),
				})
			}
		}
	}
	return out
}

// ScanAll checks every stored series as of nowS, sorted by series name.
func (d *Detector) ScanAll(nowS float64) []Anomaly {
	var out []Anomaly
	for _, s := range d.DB.Series() {
		measurement, tags := parseSeriesKey(s)
		out = append(out, d.ScanSeries(measurement, tags, nowS)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Series != out[j].Series {
			return out[i].Series < out[j].Series
		}
		return out[i].TimeS < out[j].TimeS
	})
	return out
}

// parseSeriesKey splits a Series() entry back into measurement and tags.
func parseSeriesKey(s string) (string, map[string]string) {
	i := indexByte(s, ',')
	if i < 0 {
		return s, nil
	}
	measurement := s[:i]
	tags := map[string]string{}
	for _, kv := range splitNonEmpty(s[i+1:], ',') {
		j := indexByte(kv, '=')
		if j > 0 {
			tags[kv[:j]] = kv[j+1:]
		}
	}
	return measurement, tags
}

// medianMAD returns the median and the median absolute deviation of the
// window values.
func medianMAD(pts []Point) (median, mad float64) {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.Value
	}
	sort.Float64s(vals)
	median = quantileSorted(vals, 0.5)
	devs := make([]float64, len(vals))
	for i, v := range vals {
		devs[i] = math.Abs(v - median)
	}
	sort.Float64s(devs)
	mad = quantileSorted(devs, 0.5)
	return median, mad
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
