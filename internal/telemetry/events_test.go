package telemetry

import (
	"reflect"
	"sync"
	"testing"
)

func TestEventLogRingAndCounts(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		kind := "escalate"
		if i%2 == 1 {
			kind = "sensor-quarantine"
		}
		l.Append(Entry{TimeS: float64(i), Kind: kind, Detail: "x"})
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	rec := l.Recent(0)
	if len(rec) != 3 || rec[0].TimeS != 2 || rec[2].TimeS != 4 {
		t.Fatalf("recent = %+v, want times 2..4", rec)
	}
	if got := l.Recent(2); len(got) != 2 || got[0].TimeS != 3 {
		t.Fatalf("recent(2) = %+v", got)
	}
	want := map[string]uint64{"escalate": 3, "sensor-quarantine": 2}
	if got := l.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
}

func TestEventLogConcurrentAppend(t *testing.T) {
	l := NewEventLog(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(Entry{Kind: "k"})
				l.Recent(4)
				l.Counts()
			}
		}()
	}
	wg.Wait()
	if l.Total() != 800 || l.Counts()["k"] != 800 {
		t.Fatalf("total = %d counts = %v", l.Total(), l.Counts())
	}
}
