package telemetry

import (
	"reflect"
	"sync"
	"testing"
)

func TestEventLogRingAndCounts(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		kind := "escalate"
		if i%2 == 1 {
			kind = "sensor-quarantine"
		}
		l.Append(Entry{TimeS: float64(i), Kind: kind, Detail: "x"})
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	rec := l.Recent(0)
	if len(rec) != 3 || rec[0].TimeS != 2 || rec[2].TimeS != 4 {
		t.Fatalf("recent = %+v, want times 2..4", rec)
	}
	if got := l.Recent(2); len(got) != 2 || got[0].TimeS != 3 {
		t.Fatalf("recent(2) = %+v", got)
	}
	want := map[string]uint64{"escalate": 3, "sensor-quarantine": 2}
	if got := l.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("counts = %v, want %v", got, want)
	}
}

func TestEventLogDroppedCountsOverwrites(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 4; i++ {
		l.Append(Entry{TimeS: float64(i), Kind: "k"})
	}
	if l.Dropped() != 0 {
		t.Fatalf("dropped = %d before the ring wrapped, want 0", l.Dropped())
	}
	for i := 0; i < 7; i++ {
		l.Append(Entry{TimeS: float64(4 + i), Kind: "k"})
	}
	if l.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", l.Dropped())
	}
	if l.Total() != 11 || l.Counts()["k"] != 11 {
		t.Fatalf("total = %d counts = %v — dropped entries must stay counted", l.Total(), l.Counts())
	}
}

// TestEventLogStress is the -race regression test for the daemon's usage
// pattern: the control loop appends from one goroutine while HTTP handlers
// call Recent/Counts/Total/Dropped from arbitrary others. A small capacity
// keeps the ring wrapping constantly so the eviction path is exercised too.
func TestEventLogStress(t *testing.T) {
	l := NewEventLog(8)
	const (
		writers = 6
		readers = 6
		perG    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kinds := [...]string{"escalate", "sensor-quarantine", "policy-override"}
			for i := 0; i < perG; i++ {
				l.Append(Entry{TimeS: float64(i), Kind: kinds[(w+i)%len(kinds)], Detail: "stress"})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if got := l.Recent(5); len(got) > 8 {
					t.Errorf("Recent returned %d entries from a capacity-8 ring", len(got))
					return
				}
				l.Counts()
				if l.Dropped() > l.Total() {
					t.Error("dropped exceeded total")
					return
				}
			}
		}()
	}
	wg.Wait()
	if want := uint64(writers * perG); l.Total() != want {
		t.Fatalf("total = %d, want %d", l.Total(), want)
	}
	if l.Dropped() != uint64(writers*perG)-8 {
		t.Fatalf("dropped = %d, want total-capacity = %d", l.Dropped(), writers*perG-8)
	}
}

func TestEventLogConcurrentAppend(t *testing.T) {
	l := NewEventLog(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(Entry{Kind: "k"})
				l.Recent(4)
				l.Counts()
			}
		}()
	}
	wg.Wait()
	if l.Total() != 800 || l.Counts()["k"] != 800 {
		t.Fatalf("total = %d counts = %v", l.Total(), l.Counts())
	}
}
