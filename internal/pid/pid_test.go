package pid

import (
	"math"
	"testing"
	"testing/quick"
)

// firstOrderPlant integrates dx/dt = (gain·u − x)/tau.
type firstOrderPlant struct {
	x, gain, tau float64
}

func (p *firstOrderPlant) step(u, dt float64) {
	p.x += (p.gain*u - p.x) / p.tau * dt
}

func TestConvergesToSetpoint(t *testing.T) {
	c := New(Config{Kp: 0.5, Ki: 0.05, OutMin: 0, OutMax: 10})
	plant := &firstOrderPlant{gain: 2, tau: 5}
	sp := 4.0
	for i := 0; i < 5000; i++ {
		u := c.Update(sp, plant.x, 0.1)
		plant.step(u, 0.1)
	}
	if math.Abs(plant.x-sp) > 0.05 {
		t.Fatalf("did not converge: x=%g want %g", plant.x, sp)
	}
}

func TestReverseActingCooling(t *testing.T) {
	// Reverse acting: process ABOVE set-point must push output UP.
	c := New(Config{Kp: 1, OutMin: 0, OutMax: 1, ReverseActing: true})
	out := c.Update(20, 25, 1) // 5 degrees too warm
	if out <= 0 {
		t.Fatalf("reverse-acting controller should actuate when too warm, got %g", out)
	}
	c.Reset()
	out = c.Update(25, 20, 1) // 5 degrees too cold
	if out != 0 {
		t.Fatalf("reverse-acting controller should idle when too cold, got %g", out)
	}
}

func TestOutputClamped(t *testing.T) {
	f := func(sp, pv float64) bool {
		if math.IsNaN(sp) || math.IsInf(sp, 0) || math.IsNaN(pv) || math.IsInf(pv, 0) {
			return true
		}
		c := New(Config{Kp: 100, Ki: 10, Kd: 1, OutMin: 0, OutMax: 1})
		for i := 0; i < 10; i++ {
			out := c.Update(sp, pv, 1)
			if out < 0 || out > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAntiWindupBoundsIntegral(t *testing.T) {
	c := New(Config{Kp: 1, Ki: 1, OutMin: 0, OutMax: 1})
	// Saturate hard for a long time: the integral must not keep growing.
	for i := 0; i < 1000; i++ {
		c.Update(100, 0, 1)
	}
	saturatedIntegral := c.Integral()
	for i := 0; i < 1000; i++ {
		c.Update(100, 0, 1)
	}
	if c.Integral() > saturatedIntegral+1e-9 {
		t.Fatalf("integral kept winding up: %g → %g", saturatedIntegral, c.Integral())
	}
	// After the error flips, recovery should be immediate rather than
	// delayed by a huge stored integral.
	out := c.Update(0, 100, 1)
	if out > 0.5 {
		t.Fatalf("windup residue: output %g after error reversal", out)
	}
}

func TestDerivativeFilterSmooths(t *testing.T) {
	raw := New(Config{Kp: 0, Kd: 10, OutMin: -100, OutMax: 100})
	filt := New(Config{Kp: 0, Kd: 10, OutMin: -100, OutMax: 100, DerivativeTau: 10})
	// Prime both, then apply a step in the process value.
	raw.Update(0, 0, 1)
	filt.Update(0, 0, 1)
	rawOut := raw.Update(0, 1, 1)
	filtOut := filt.Update(0, 1, 1)
	if math.Abs(filtOut) >= math.Abs(rawOut) {
		t.Fatalf("filtered derivative %g should be smaller than raw %g", filtOut, rawOut)
	}
}

func TestResetClearsState(t *testing.T) {
	c := New(Config{Kp: 1, Ki: 1, OutMin: -10, OutMax: 10})
	for i := 0; i < 10; i++ {
		c.Update(5, 0, 1)
	}
	if c.Integral() == 0 {
		t.Fatalf("integral should be nonzero before reset")
	}
	c.Reset()
	if c.Integral() != 0 {
		t.Fatalf("Reset did not clear integral")
	}
}

func TestUpdatePanicsOnBadDt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for dt <= 0")
		}
	}()
	New(Config{Kp: 1, OutMax: 1}).Update(1, 0, 0)
}

func TestNaNProcessValueDoesNotPoisonOutput(t *testing.T) {
	c := New(Config{Kp: 1, OutMin: 0, OutMax: 1})
	out := c.Update(1, math.NaN(), 1)
	if math.IsNaN(out) {
		t.Fatalf("NaN escaped the clamp")
	}
}

func TestConfigAccessor(t *testing.T) {
	cfg := Config{Kp: 2, Ki: 3, Kd: 4, OutMin: -1, OutMax: 1, ReverseActing: true}
	if got := New(cfg).Config(); got != cfg {
		t.Fatalf("Config() = %+v, want %+v", got, cfg)
	}
}
