// Package pid implements the proportional-integral-derivative controller
// that drives the ACU compressor in the TESLA testbed (paper §2.1).
//
// The controller is generic: it tracks a set-point against a process value
// and emits a clamped actuation signal. The ACU uses it in reverse-acting
// mode (process value above set-point ⇒ more cooling). Anti-windup is
// implemented by conditional integration: the integral term freezes whenever
// the output is saturated in the direction that would deepen saturation —
// this is what produces the slow recovery after a cooling interruption that
// the paper highlights in Figure 3.
package pid

import "math"

// Config holds the controller gains and output limits.
type Config struct {
	Kp, Ki, Kd float64 // proportional, integral, derivative gains
	OutMin     float64 // lower output clamp (e.g. compressor duty 0)
	OutMax     float64 // upper output clamp (e.g. compressor duty 1)
	// ReverseActing flips the error sign so that a process value above the
	// set-point drives the output up. Cooling loops are reverse acting.
	ReverseActing bool
	// DerivativeTau low-pass filters the derivative term (seconds); 0
	// disables filtering.
	DerivativeTau float64
}

// Controller is a discrete PID controller. The zero value is unusable; use
// New.
type Controller struct {
	cfg      Config
	integral float64
	lastErr  float64
	dFilt    float64
	primed   bool
}

// New returns a controller with the given configuration.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg}
}

// Reset clears the integral and derivative state.
func (c *Controller) Reset() {
	c.integral = 0
	c.lastErr = 0
	c.dFilt = 0
	c.primed = false
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Integral exposes the current integral accumulator (useful for tests and
// for diagnosing windup).
func (c *Controller) Integral() float64 { return c.integral }

// Update advances the controller by dt seconds given the current set-point
// and process value, returning the clamped output.
func (c *Controller) Update(setpoint, process, dt float64) float64 {
	if dt <= 0 {
		panic("pid: non-positive dt")
	}
	err := setpoint - process
	if c.cfg.ReverseActing {
		err = process - setpoint
	}

	// Derivative on error with optional first-order filter.
	var deriv float64
	if c.primed {
		raw := (err - c.lastErr) / dt
		if c.cfg.DerivativeTau > 0 {
			alpha := dt / (c.cfg.DerivativeTau + dt)
			c.dFilt += alpha * (raw - c.dFilt)
			deriv = c.dFilt
		} else {
			deriv = raw
		}
	}
	c.lastErr = err
	c.primed = true

	// Tentative output with the present integral.
	p := c.cfg.Kp * err
	d := c.cfg.Kd * deriv
	unsat := p + c.cfg.Ki*(c.integral+err*dt) + d

	// Conditional integration anti-windup: only integrate when doing so does
	// not push the output further past a saturated limit.
	if (unsat > c.cfg.OutMax && err > 0) || (unsat < c.cfg.OutMin && err < 0) {
		// hold integral
	} else {
		c.integral += err * dt
	}

	out := p + c.cfg.Ki*c.integral + d
	return clamp(out, c.cfg.OutMin, c.cfg.OutMax)
}

func clamp(v, lo, hi float64) float64 {
	if math.IsNaN(v) {
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
