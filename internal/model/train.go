package model

import (
	"fmt"

	"tesla/internal/dataset"
	"tesla/internal/linreg"
	"tesla/internal/mat"
	"tesla/internal/stats"
)

// Train fits all four sub-modules on a trace following the paper's
// methodology (§3.2): each sub-module is trained separately with true
// (teacher-forced) exogenous inputs, one regression per horizon step
// (direct strategy), targets and features min-max normalized.
func Train(tr *dataset.Trace, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	L := cfg.L
	if tr.Len() < 3*L+2 {
		return nil, fmt.Errorf("model: trace too short (%d samples) for horizon %d", tr.Len(), L)
	}
	for _, ci := range cfg.ColdIdx {
		if ci < 0 || ci >= tr.Nd() {
			return nil, fmt.Errorf("model: cold-aisle index %d outside [0,%d)", ci, tr.Nd())
		}
	}

	m := &Model{cfg: cfg, na: tr.Na(), nd: tr.Nd()}
	m.scale = fitScaler(tr, cfg.L)

	// Valid anchor steps t: need L past samples (t-L+1..t) and L future
	// samples (t+1..t+L).
	var anchors []int
	for t := L - 1; t+L < tr.Len(); t += cfg.Stride {
		anchors = append(anchors, t)
	}
	n := len(anchors)
	if n < 4 {
		return nil, fmt.Errorf("model: only %d training windows; reduce stride or extend trace", n)
	}

	var err error
	if m.asp, err = trainASP(tr, anchors, m.scale, cfg); err != nil {
		return nil, fmt.Errorf("model: ASP sub-module: %w", err)
	}
	if m.acu, err = trainACU(tr, anchors, m.scale, cfg); err != nil {
		return nil, fmt.Errorf("model: ACU sub-module: %w", err)
	}
	if m.dcs, err = trainDCS(tr, anchors, m.scale, cfg); err != nil {
		return nil, fmt.Errorf("model: DCS sub-module: %w", err)
	}
	if m.energy, err = trainEnergy(tr, anchors, m.scale, cfg); err != nil {
		return nil, fmt.Errorf("model: cooling-energy sub-module: %w", err)
	}
	return m, nil
}

func fitScaler(tr *dataset.Trace, horizon int) scaler {
	var s scaler
	s.SpMin, s.SpMax = stats.Min(tr.Setpoint), stats.Max(tr.Setpoint)
	s.PowMin, s.PowMax = stats.Min(tr.AvgPower), stats.Max(tr.AvgPower)
	s.TempMin, s.TempMax = stats.Min(tr.ACUTemps[0]), stats.Max(tr.ACUTemps[0])
	for _, series := range append(tr.ACUTemps, tr.DCTemps...) {
		if v := stats.Min(series); v < s.TempMin {
			s.TempMin = v
		}
		if v := stats.Max(series); v > s.TempMax {
			s.TempMax = v
		}
	}
	// Energy over an L-window is bounded by L·maxPower·Δt; use the power
	// trace to derive a stable range rather than enumerating windows.
	s.EMin = 0
	s.EMax = stats.Max(tr.ACUPower) * float64(horizon) * tr.PeriodS / 3600
	return s
}

// trainASP fits eq. (1): p̂_{t+l} from the L past average powers.
func trainASP(tr *dataset.Trace, anchors []int, sc scaler, cfg Config) (*linreg.Model, error) {
	L := cfg.L
	x := mat.New(len(anchors), L)
	y := mat.New(len(anchors), L)
	for i, t := range anchors {
		xr := x.Row(i)
		for j := 0; j < L; j++ {
			xr[j] = sc.pow(tr.AvgPower[t-j])
		}
		yr := y.Row(i)
		for l := 1; l <= L; l++ {
			yr[l-1] = sc.pow(tr.AvgPower[t+l])
		}
	}
	return linreg.Fit(x, y, cfg.AlphaASP)
}

// trainACU fits eq. (2) per horizon step l: â^{n_a}_{t+l} from
// [s_{t+l}, p_{t+l}, past ACU temps]. During training the true future
// set-point and the true future average power are used (teacher forcing).
func trainACU(tr *dataset.Trace, anchors []int, sc scaler, cfg Config) ([]*linreg.Model, error) {
	L, na := cfg.L, tr.Na()
	// Shared past-temperature block Z (n × Na·L): identical for every l.
	z := mat.New(len(anchors), na*L)
	for i, t := range anchors {
		zr := z.Row(i)
		for a := 0; a < na; a++ {
			for j := 0; j < L; j++ {
				zr[a*L+j] = sc.temp(tr.ACUTemps[a][t-j])
			}
		}
	}
	shared := newSharedBlock(z)

	models := make([]*linreg.Model, L)
	u := mat.New(len(anchors), 2)
	y := mat.New(len(anchors), na)
	for l := 1; l <= L; l++ {
		for i, t := range anchors {
			ur := u.Row(i)
			ur[0] = sc.sp(tr.Setpoint[t+l])
			ur[1] = sc.pow(tr.AvgPower[t+l])
			yr := y.Row(i)
			for a := 0; a < na; a++ {
				yr[a] = sc.temp(tr.ACUTemps[a][t+l])
			}
		}
		mdl, err := fitBlocked(u, shared, y, cfg.AlphaACU)
		if err != nil {
			return nil, fmt.Errorf("step %d: %w", l, err)
		}
		models[l-1] = mdl
	}
	return models, nil
}

// trainDCS fits eq. (3) per horizon step l: d̂^{n_d}_{t+l} from
// [p_{t+l}, a^{i}_{t+l} for each ACU sensor, past DC temps].
func trainDCS(tr *dataset.Trace, anchors []int, sc scaler, cfg Config) ([]*linreg.Model, error) {
	L, na, nd := cfg.L, tr.Na(), tr.Nd()
	z := mat.New(len(anchors), nd*L)
	for i, t := range anchors {
		zr := z.Row(i)
		for k := 0; k < nd; k++ {
			for j := 0; j < L; j++ {
				zr[k*L+j] = sc.temp(tr.DCTemps[k][t-j])
			}
		}
	}
	shared := newSharedBlock(z)

	models := make([]*linreg.Model, L)
	u := mat.New(len(anchors), 1+na)
	y := mat.New(len(anchors), nd)
	for l := 1; l <= L; l++ {
		for i, t := range anchors {
			ur := u.Row(i)
			ur[0] = sc.pow(tr.AvgPower[t+l])
			for a := 0; a < na; a++ {
				ur[1+a] = sc.temp(tr.ACUTemps[a][t+l])
			}
			yr := y.Row(i)
			for k := 0; k < nd; k++ {
				yr[k] = sc.temp(tr.DCTemps[k][t+l])
			}
		}
		mdl, err := fitBlocked(u, shared, y, cfg.AlphaDCS)
		if err != nil {
			return nil, fmt.Errorf("step %d: %w", l, err)
		}
		models[l-1] = mdl
	}
	return models, nil
}

// trainEnergy fits eq. (4): Ê^L_{t+1} from the L future set-points and the
// L·Na future ACU inlet temperatures (true values during training).
func trainEnergy(tr *dataset.Trace, anchors []int, sc scaler, cfg Config) (*linreg.Model, error) {
	L, na := cfg.L, tr.Na()
	x := mat.New(len(anchors), L+na*L)
	y := mat.New(len(anchors), 1)
	for i, t := range anchors {
		xr := x.Row(i)
		for j := 1; j <= L; j++ {
			xr[j-1] = sc.sp(tr.Setpoint[t+j])
		}
		for a := 0; a < na; a++ {
			for j := 1; j <= L; j++ {
				xr[L+a*L+j-1] = sc.temp(tr.ACUTemps[a][t+j])
			}
		}
		y.Row(i)[0] = sc.energy(tr.EnergyKWh(t+1, t+1+L))
	}
	return linreg.Fit(x, y, cfg.AlphaEnergy)
}

// sharedBlock caches the expensive cross products of the design-matrix block
// that is identical across horizon steps (the past-temperature lags), so the
// L per-step ridge problems of a sub-module share one Gram computation.
type sharedBlock struct {
	z     *mat.Dense
	zMean []float64
	ztzC  *mat.Dense // centered ZᵀZ
}

func newSharedBlock(z *mat.Dense) *sharedBlock {
	b := &sharedBlock{z: z}
	b.zMean = colMeans(z)
	ztz := mat.Gram(z)
	n := float64(z.Rows)
	q := z.Cols
	for a := 0; a < q; a++ {
		for c := 0; c < q; c++ {
			ztz.Data[a*q+c] -= n * b.zMean[a] * b.zMean[c]
		}
	}
	b.ztzC = ztz
	return b
}

// fitBlocked solves the ridge problem for design [U | Z] with the shared Z
// block pre-factored, producing a linreg.Model whose feature order is
// U-columns first then Z-columns.
func fitBlocked(u *mat.Dense, shared *sharedBlock, y *mat.Dense, alpha float64) (*linreg.Model, error) {
	n := u.Rows
	if n != shared.z.Rows || n != y.Rows {
		return nil, fmt.Errorf("model: blocked fit row mismatch %d/%d/%d", n, shared.z.Rows, y.Rows)
	}
	p, q, mOut := u.Cols, shared.z.Cols, y.Cols
	d := p + q
	nf := float64(n)

	uMean := colMeans(u)
	yMean := colMeans(y)

	// Raw cross products; centering is applied as a rank-1 correction.
	utu := mat.Gram(u)
	utz := mat.XtY(u, shared.z)
	uty := mat.XtY(u, y)
	zty := mat.XtY(shared.z, y)

	gram := mat.New(d, d)
	for a := 0; a < p; a++ {
		for c := 0; c < p; c++ {
			gram.Data[a*d+c] = utu.Data[a*p+c] - nf*uMean[a]*uMean[c]
		}
		for c := 0; c < q; c++ {
			v := utz.Data[a*q+c] - nf*uMean[a]*shared.zMean[c]
			gram.Data[a*d+p+c] = v
			gram.Data[(p+c)*d+a] = v
		}
	}
	for a := 0; a < q; a++ {
		copy(gram.Row(p + a)[p:], shared.ztzC.Row(a))
	}
	for j := 0; j < d; j++ {
		gram.Data[j*d+j] += alpha
	}

	xty := mat.New(d, mOut)
	for a := 0; a < p; a++ {
		for c := 0; c < mOut; c++ {
			xty.Data[a*mOut+c] = uty.Data[a*mOut+c] - nf*uMean[a]*yMean[c]
		}
	}
	for a := 0; a < q; a++ {
		for c := 0; c < mOut; c++ {
			xty.Data[(p+a)*mOut+c] = zty.Data[a*mOut+c] - nf*shared.zMean[a]*yMean[c]
		}
	}

	w, err := mat.SolveSPD(gram, xty)
	if err != nil {
		return nil, err
	}
	bias := make([]float64, mOut)
	for j := 0; j < mOut; j++ {
		b := yMean[j]
		for k := 0; k < p; k++ {
			b -= w.Data[k*mOut+j] * uMean[k]
		}
		for k := 0; k < q; k++ {
			b -= w.Data[(p+k)*mOut+j] * shared.zMean[k]
		}
		bias[j] = b
	}
	return &linreg.Model{Weights: w, Bias: bias, Alpha: alpha}, nil
}

func colMeans(a *mat.Dense) []float64 {
	out := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(a.Rows)
	}
	return out
}
