package model

import (
	"bytes"
	"math"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m, train, _ := trainSmall(t, 21)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.Na() != m.Na() || back.Nd() != m.Nd() || back.Config().L != m.Config().L {
		t.Fatalf("shape lost in roundtrip")
	}
	// Predictions must be bit-identical.
	L := m.Config().L
	h, err := HistoryAt(train, train.Len()-1, L)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range []float64{21, 24.5, 28} {
		a, err := m.Predict(h, sp)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Predict(h, sp)
		if err != nil {
			t.Fatal(err)
		}
		if a.EnergyKWh != b.EnergyKWh || a.Constraint != b.Constraint || a.Interruption != b.Interruption {
			t.Fatalf("roundtrip changed predictions at sp=%g", sp)
		}
		for i := range a.DCTemps.Data {
			if a.DCTemps.Data[i] != b.DCTemps.Data[i] {
				t.Fatalf("DC prediction drifted at %d", i)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatalf("garbage accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	m, _, _ := trainSmall(t, 22)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by round-tripping through the snapshot directly is
	// awkward with gob; instead corrupt bytes mid-stream and expect an error
	// (either decode failure or validation failure).
	data := buf.Bytes()
	if len(data) > 60 {
		for i := 40; i < 60; i++ {
			data[i] ^= 0xff
		}
	}
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatalf("corrupted stream accepted")
	}
}

func TestSaveLoadEmptyPrediction(t *testing.T) {
	// A loaded model must also validate history shapes.
	m, _, _ := trainSmall(t, 23)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bad := &History{AvgPower: make([]float64, 2)}
	if err := back.ValidateHistory(bad); err == nil {
		t.Fatalf("loaded model lost validation")
	}
	if math.Abs(back.TempRangeC()-m.TempRangeC()) > 1e-12 {
		t.Fatalf("scaler lost in roundtrip")
	}
}
