// Package model implements TESLA's DC time-series model (paper §3.2): four
// linear sub-modules trained with the direct strategy that together predict,
// for a candidate set-point held over the next L steps,
//
//   - the average server power trajectory (ASP sub-module, eq. 1),
//   - the ACU inlet temperatures per internal sensor (ACU sub-module, eq. 2),
//   - the DC temperatures per rack-installed sensor (DCS sub-module, eq. 3),
//   - the cooling energy over the horizon (cooling-energy sub-module, eq. 4),
//
// plus the derived optimization quantities: the cooling-interruption proxy
// D (eqs. 6–7), the objective O = E + D (eq. 8) and the thermal-safety
// constraint C (eq. 9).
//
// Each sub-module is a bank of ridge regressions solved analytically; the
// paper's Table 2 regularization (α_β=0 for ASP, α=1 for the rest, because
// those three see predicted rather than true inputs at inference time) is
// the default. All data is min-max normalized before fitting, mirroring the
// paper's preprocessing, with the scaler kept so callers deal only in
// physical units.
package model

import (
	"fmt"

	"tesla/internal/linreg"
	"tesla/internal/mat"
)

// Config parameterizes training.
type Config struct {
	// L is the prediction horizon in control steps (20 in the paper).
	L int
	// AlphaASP, AlphaACU, AlphaDCS, AlphaEnergy are the per-sub-module ridge
	// strengths (0, 1, 1, 1 in Table 2).
	AlphaASP, AlphaACU, AlphaDCS, AlphaEnergy float64
	// Stride subsamples training windows (1 = use every window).
	Stride int
	// ColdIdx lists the DC-sensor indices in the cold aisle (I_cold).
	ColdIdx []int
	// AllowedColdC is d_allowed, the cold-aisle limit (22 °C).
	AllowedColdC float64
	// KappaC is κ, the residual-error threshold beyond which cooling
	// interruption is penalized (0.5 °C).
	KappaC float64
}

// DefaultConfig returns the paper's Table 2 hyperparameters for a testbed
// with nColdAisle leading cold-aisle sensors.
func DefaultConfig(nColdAisle int) Config {
	cold := make([]int, nColdAisle)
	for i := range cold {
		cold[i] = i
	}
	return Config{
		L:        20,
		AlphaASP: 0, AlphaACU: 1, AlphaDCS: 1, AlphaEnergy: 1,
		Stride:       1,
		ColdIdx:      cold,
		AllowedColdC: 22,
		KappaC:       0.5,
	}
}

// Validate reports invalid configurations.
func (c Config) Validate() error {
	switch {
	case c.L < 1:
		return fmt.Errorf("model: horizon L must be >= 1, got %d", c.L)
	case c.AlphaASP < 0 || c.AlphaACU < 0 || c.AlphaDCS < 0 || c.AlphaEnergy < 0:
		return fmt.Errorf("model: ridge strengths must be non-negative")
	case c.Stride < 1:
		return fmt.Errorf("model: stride must be >= 1, got %d", c.Stride)
	case len(c.ColdIdx) == 0:
		return fmt.Errorf("model: need at least one cold-aisle sensor index")
	}
	return nil
}

// Model is the trained DC time-series model.
type Model struct {
	cfg    Config
	na, nd int

	scale scaler

	asp    *linreg.Model   // L past powers → L future powers
	acu    []*linreg.Model // per horizon step l: (2+Na·L) → Na
	dcs    []*linreg.Model // per horizon step l: (1+Na+Nd·L) → Nd
	energy *linreg.Model   // (L+Na·L) → 1
}

// Config returns the training configuration.
func (m *Model) Config() Config { return m.cfg }

// Na returns the number of ACU inlet sensors the model was trained with.
func (m *Model) Na() int { return m.na }

// Nd returns the number of DC sensors the model was trained with.
func (m *Model) Nd() int { return m.nd }

// History is the model's inference input: the last L samples of each series,
// ordered oldest→newest (index L-1 is time t, the current step).
type History struct {
	AvgPower []float64   // length L
	ACUTemps [][]float64 // [Na][L]
	DCTemps  [][]float64 // [Nd][L]
}

// Validate checks the history shape against the model.
func (m *Model) ValidateHistory(h *History) error {
	if len(h.AvgPower) != m.cfg.L {
		return fmt.Errorf("model: history power length %d, want L=%d", len(h.AvgPower), m.cfg.L)
	}
	if len(h.ACUTemps) != m.na {
		return fmt.Errorf("model: history has %d ACU series, want %d", len(h.ACUTemps), m.na)
	}
	if len(h.DCTemps) != m.nd {
		return fmt.Errorf("model: history has %d DC series, want %d", len(h.DCTemps), m.nd)
	}
	for i, s := range h.ACUTemps {
		if len(s) != m.cfg.L {
			return fmt.Errorf("model: ACU series %d has %d samples, want %d", i, len(s), m.cfg.L)
		}
	}
	for i, s := range h.DCTemps {
		if len(s) != m.cfg.L {
			return fmt.Errorf("model: DC series %d has %d samples, want %d", i, len(s), m.cfg.L)
		}
	}
	return nil
}

// Prediction bundles the model outputs for one candidate set-point.
type Prediction struct {
	Setpoint float64
	// AvgPower[l] is p̂_{t+l+1} (kW).
	AvgPower []float64
	// ACUTemps is L×Na: â per horizon step and inlet sensor (°C).
	ACUTemps *mat.Dense
	// DCTemps is L×Nd: d̂ per horizon step and DC sensor (°C).
	DCTemps *mat.Dense
	// EnergyKWh is Ê, the predicted cooling energy over the horizon.
	EnergyKWh float64
	// EnergyNorm is Ê on the min-max normalized scale the paper's
	// optimization objective is computed in.
	EnergyNorm float64
	// Interruption is D̂, the cooling-interruption proxy (°C·steps, eq. 6).
	Interruption float64
	// InterruptionNorm is D̂ with residuals on the normalized temperature
	// scale, commensurate with EnergyNorm.
	InterruptionNorm float64
	// Constraint is Ĉ = max cold-aisle prediction − d_allowed (eq. 9);
	// negative means predicted-safe.
	Constraint float64
}

// Objective returns Ô = Ê + D̂ (eq. 8) on the normalized scale, the quantity
// TESLA minimizes. Normalization makes the two terms commensurate, exactly
// as in the paper where all data is min-max normalized before modeling.
func (p *Prediction) Objective() float64 { return p.EnergyNorm + p.InterruptionNorm }

// scaler holds the min-max normalization ranges per physical quantity
// (temperatures share one range so sensor interdependencies keep their
// relative scale, as a per-column min-max on a temperature block would).
type scaler struct {
	TempMin, TempMax float64
	PowMin, PowMax   float64
	SpMin, SpMax     float64
	EMin, EMax       float64
}

func (s scaler) temp(v float64) float64   { return norm(v, s.TempMin, s.TempMax) }
func (s scaler) pow(v float64) float64    { return norm(v, s.PowMin, s.PowMax) }
func (s scaler) sp(v float64) float64     { return norm(v, s.SpMin, s.SpMax) }
func (s scaler) energy(v float64) float64 { return norm(v, s.EMin, s.EMax) }

func (s scaler) unTemp(v float64) float64   { return denorm(v, s.TempMin, s.TempMax) }
func (s scaler) unPow(v float64) float64    { return denorm(v, s.PowMin, s.PowMax) }
func (s scaler) unEnergy(v float64) float64 { return denorm(v, s.EMin, s.EMax) }

func norm(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0.5
	}
	return (v - lo) / (hi - lo)
}

func denorm(v, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + v*(hi-lo)
}
