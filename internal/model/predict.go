package model

import (
	"fmt"

	"tesla/internal/dataset"
	"tesla/internal/mat"
)

// Predict runs the full sub-module cascade for a candidate set-point held
// constant over the horizon (the optimizer's shared-set-point constraint,
// eq. 5): ASP → ACU → DCS → cooling energy, then derives the interruption
// proxy D̂ (eqs. 6–7) and the thermal-safety constraint Ĉ (eq. 9).
func (m *Model) Predict(h *History, setpoint float64) (*Prediction, error) {
	sps := make([]float64, m.cfg.L)
	for i := range sps {
		sps[i] = setpoint
	}
	return m.PredictSeq(h, sps)
}

// PredictSeq is Predict for an arbitrary set-point sequence s_{t+1..t+L};
// model-accuracy evaluation on historical traces uses it with the actually
// executed sequence.
func (m *Model) PredictSeq(h *History, setpoints []float64) (*Prediction, error) {
	if err := m.ValidateHistory(h); err != nil {
		return nil, err
	}
	if len(setpoints) != m.cfg.L {
		return nil, fmt.Errorf("model: %d set-points for horizon %d", len(setpoints), m.cfg.L)
	}
	L, na, nd := m.cfg.L, m.na, m.nd
	sc := m.scale

	// ASP (eq. 1): normalized past powers, newest first (j=0 → time t).
	xp := make([]float64, L)
	for j := 0; j < L; j++ {
		xp[j] = sc.pow(h.AvgPower[L-1-j])
	}
	pHatN := m.asp.Predict(xp) // normalized p̂_{t+1..t+L}

	// ACU (eq. 2) per step l.
	spN := make([]float64, L)
	for i, s := range setpoints {
		spN[i] = sc.sp(s)
	}
	zAcu := make([]float64, na*L)
	for a := 0; a < na; a++ {
		for j := 0; j < L; j++ {
			zAcu[a*L+j] = sc.temp(h.ACUTemps[a][L-1-j])
		}
	}
	aHatN := mat.New(L, na)
	xa := make([]float64, 2+na*L)
	copy(xa[2:], zAcu)
	for l := 1; l <= L; l++ {
		xa[0] = spN[l-1]
		xa[1] = pHatN[l-1]
		m.acu[l-1].PredictInto(xa, aHatN.Row(l-1))
	}

	// DCS (eq. 3) per step l, consuming the ACU predictions.
	zDC := make([]float64, nd*L)
	for k := 0; k < nd; k++ {
		for j := 0; j < L; j++ {
			zDC[k*L+j] = sc.temp(h.DCTemps[k][L-1-j])
		}
	}
	dHatN := mat.New(L, nd)
	xd := make([]float64, 1+na+nd*L)
	copy(xd[1+na:], zDC)
	for l := 1; l <= L; l++ {
		xd[0] = pHatN[l-1]
		copy(xd[1:1+na], aHatN.Row(l-1))
		m.dcs[l-1].PredictInto(xd, dHatN.Row(l-1))
	}

	// Cooling energy (eq. 4) from the shared set-point and the predicted
	// inlet temperatures.
	xe := make([]float64, L+na*L)
	copy(xe, spN)
	for a := 0; a < na; a++ {
		for j := 0; j < L; j++ {
			xe[L+a*L+j] = aHatN.At(j, a)
		}
	}
	eN := m.energy.Predict(xe)[0]

	// Denormalize into physical units.
	p := &Prediction{Setpoint: setpoints[len(setpoints)-1]}
	p.AvgPower = make([]float64, L)
	for l := 0; l < L; l++ {
		p.AvgPower[l] = sc.unPow(pHatN[l])
	}
	p.ACUTemps = mat.New(L, na)
	for l := 0; l < L; l++ {
		for a := 0; a < na; a++ {
			p.ACUTemps.Set(l, a, sc.unTemp(aHatN.At(l, a)))
		}
	}
	p.DCTemps = mat.New(L, nd)
	for l := 0; l < L; l++ {
		for k := 0; k < nd; k++ {
			p.DCTemps.Set(l, k, sc.unTemp(dHatN.At(l, k)))
		}
	}
	p.EnergyKWh = sc.unEnergy(eN)
	if p.EnergyKWh < 0 {
		p.EnergyKWh = 0
	}
	p.EnergyNorm = sc.energy(p.EnergyKWh)

	p.Interruption = m.interruption(setpoints, p.ACUTemps)
	p.InterruptionNorm = p.Interruption / m.TempRangeC()
	p.Constraint = m.constraint(p.DCTemps)
	return p, nil
}

// TempRangeC returns the min-max span of the temperature normalization.
func (m *Model) TempRangeC() float64 {
	r := m.scale.TempMax - m.scale.TempMin
	if r <= 0 {
		return 1
	}
	return r
}

// EnergyRangeKWh returns the span of the energy normalization.
func (m *Model) EnergyRangeKWh() float64 {
	r := m.scale.EMax - m.scale.EMin
	if r <= 0 {
		return 1
	}
	return r
}

// NormEnergy maps a physical energy (kWh over the horizon) onto the
// normalized objective scale (for the error monitor's realized values).
func (m *Model) NormEnergy(kwh float64) float64 { return m.scale.energy(kwh) }

// interruption computes D̂ (eqs. 6–7): per horizon step, the residual
// s − avg(â) counts when it exceeds κ, signalling the PID controller would
// deliver cold air at a reduced or zero rate.
func (m *Model) interruption(setpoints []float64, aHat *mat.Dense) float64 {
	var d float64
	for l := 0; l < m.cfg.L; l++ {
		row := aHat.Row(l)
		var avg float64
		for _, v := range row {
			avg += v
		}
		avg /= float64(len(row))
		if u := setpoints[l] - avg; u > m.cfg.KappaC {
			d += u
		}
	}
	return d
}

// constraint computes Ĉ (eq. 9): how far the maximum predicted cold-aisle
// temperature over the horizon sits above d_allowed.
func (m *Model) constraint(dHat *mat.Dense) float64 {
	maxCold := -1e30
	for l := 0; l < m.cfg.L; l++ {
		row := dHat.Row(l)
		for _, k := range m.cfg.ColdIdx {
			if row[k] > maxCold {
				maxCold = row[k]
			}
		}
	}
	return maxCold - m.cfg.AllowedColdC
}

// HistoryAt extracts the inference history ending at step t of a trace.
func HistoryAt(tr *dataset.Trace, t, L int) (*History, error) {
	if t-L+1 < 0 || t >= tr.Len() {
		return nil, fmt.Errorf("model: history window [%d,%d] outside trace of %d samples", t-L+1, t, tr.Len())
	}
	h := &History{AvgPower: append([]float64(nil), tr.AvgPower[t-L+1:t+1]...)}
	h.ACUTemps = make([][]float64, tr.Na())
	for a := range h.ACUTemps {
		h.ACUTemps[a] = append([]float64(nil), tr.ACUTemps[a][t-L+1:t+1]...)
	}
	h.DCTemps = make([][]float64, tr.Nd())
	for k := range h.DCTemps {
		h.DCTemps[k] = append([]float64(nil), tr.DCTemps[k][t-L+1:t+1]...)
	}
	return h, nil
}
