package model

import (
	"encoding/gob"
	"fmt"
	"io"

	"tesla/internal/linreg"
	"tesla/internal/mat"
)

// The on-disk representation: exported mirror structs encoded with gob.
// A version tag guards against silently decoding an incompatible layout.

const snapshotVersion = 1

type denseSnapshot struct {
	Rows, Cols int
	Data       []float64
}

type linregSnapshot struct {
	Weights denseSnapshot
	Bias    []float64
	Alpha   float64
}

type modelSnapshot struct {
	Version int
	Cfg     Config
	Na, Nd  int
	Scale   scalerSnapshot
	ASP     linregSnapshot
	ACU     []linregSnapshot
	DCS     []linregSnapshot
	Energy  linregSnapshot
}

type scalerSnapshot struct {
	TempMin, TempMax float64
	PowMin, PowMax   float64
	SpMin, SpMax     float64
	EMin, EMax       float64
}

func snapDense(d *mat.Dense) denseSnapshot {
	return denseSnapshot{Rows: d.Rows, Cols: d.Cols, Data: append([]float64(nil), d.Data...)}
}

func unsnapDense(s denseSnapshot) (*mat.Dense, error) {
	if s.Rows < 0 || s.Cols < 0 || len(s.Data) != s.Rows*s.Cols {
		return nil, fmt.Errorf("model: corrupt matrix snapshot %dx%d with %d values", s.Rows, s.Cols, len(s.Data))
	}
	return mat.NewFromSlice(s.Rows, s.Cols, s.Data), nil
}

func snapLinreg(m *linreg.Model) linregSnapshot {
	return linregSnapshot{
		Weights: snapDense(m.Weights),
		Bias:    append([]float64(nil), m.Bias...),
		Alpha:   m.Alpha,
	}
}

func unsnapLinreg(s linregSnapshot) (*linreg.Model, error) {
	w, err := unsnapDense(s.Weights)
	if err != nil {
		return nil, err
	}
	if len(s.Bias) != w.Cols {
		return nil, fmt.Errorf("model: bias length %d does not match %d outputs", len(s.Bias), w.Cols)
	}
	return &linreg.Model{Weights: w, Bias: s.Bias, Alpha: s.Alpha}, nil
}

// Save serializes the trained model (weights, biases, normalization ranges
// and configuration) so a deployment can train once and control forever.
func (m *Model) Save(w io.Writer) error {
	snap := modelSnapshot{
		Version: snapshotVersion,
		Cfg:     m.cfg,
		Na:      m.na, Nd: m.nd,
		Scale: scalerSnapshot{
			TempMin: m.scale.TempMin, TempMax: m.scale.TempMax,
			PowMin: m.scale.PowMin, PowMax: m.scale.PowMax,
			SpMin: m.scale.SpMin, SpMax: m.scale.SpMax,
			EMin: m.scale.EMin, EMax: m.scale.EMax,
		},
		ASP:    snapLinreg(m.asp),
		Energy: snapLinreg(m.energy),
	}
	for _, sub := range m.acu {
		snap.ACU = append(snap.ACU, snapLinreg(sub))
	}
	for _, sub := range m.dcs {
		snap.DCS = append(snap.DCS, snapLinreg(sub))
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load reconstructs a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("model: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("model: snapshot version %d, this build reads %d", snap.Version, snapshotVersion)
	}
	if err := snap.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("model: snapshot config: %w", err)
	}
	if len(snap.ACU) != snap.Cfg.L || len(snap.DCS) != snap.Cfg.L {
		return nil, fmt.Errorf("model: snapshot has %d/%d per-step banks for horizon %d",
			len(snap.ACU), len(snap.DCS), snap.Cfg.L)
	}
	m := &Model{
		cfg: snap.Cfg,
		na:  snap.Na, nd: snap.Nd,
		scale: scaler{
			TempMin: snap.Scale.TempMin, TempMax: snap.Scale.TempMax,
			PowMin: snap.Scale.PowMin, PowMax: snap.Scale.PowMax,
			SpMin: snap.Scale.SpMin, SpMax: snap.Scale.SpMax,
			EMin: snap.Scale.EMin, EMax: snap.Scale.EMax,
		},
	}
	var err error
	if m.asp, err = unsnapLinreg(snap.ASP); err != nil {
		return nil, fmt.Errorf("model: ASP bank: %w", err)
	}
	if m.energy, err = unsnapLinreg(snap.Energy); err != nil {
		return nil, fmt.Errorf("model: energy bank: %w", err)
	}
	for i, s := range snap.ACU {
		sub, err := unsnapLinreg(s)
		if err != nil {
			return nil, fmt.Errorf("model: ACU bank %d: %w", i, err)
		}
		m.acu = append(m.acu, sub)
	}
	for i, s := range snap.DCS {
		sub, err := unsnapLinreg(s)
		if err != nil {
			return nil, fmt.Errorf("model: DCS bank %d: %w", i, err)
		}
		m.dcs = append(m.dcs, sub)
	}
	return m, nil
}
