package model

import "testing"

// BenchmarkTrain measures fitting all four sub-modules on a small synthetic
// trace (the blocked-Gram path included).
func BenchmarkTrain(b *testing.B) {
	tr := syntheticTrace(700, 42)
	train, _ := tr.Split(0.8)
	cfg := smallConfigForBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures one cascade evaluation (ASP → ACU → DCS →
// energy) — called ~15 times per control step by the optimizer.
func BenchmarkPredict(b *testing.B) {
	tr := syntheticTrace(700, 42)
	train, _ := tr.Split(0.8)
	cfg := smallConfigForBench()
	m, err := Train(train, cfg)
	if err != nil {
		b.Fatal(err)
	}
	h, err := HistoryAt(train, train.Len()-1, cfg.L)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(h, 25); err != nil {
			b.Fatal(err)
		}
	}
}

func smallConfigForBench() Config {
	cfg := DefaultConfig(2)
	cfg.L = 6
	return cfg
}
