package model

import (
	"math"
	"testing"

	"tesla/internal/dataset"
	"tesla/internal/rng"
	"tesla/internal/stats"
	"tesla/internal/testbed"
)

// syntheticTrace generates a small trace with simple, learnable dynamics:
// the inlet temperature relaxes toward the set-point, DC sensors follow the
// inlet with per-sensor offsets influenced by server power, and ACU power
// falls linearly with the set-point/inlet residual.
func syntheticTrace(n int, seed uint64) *dataset.Trace {
	r := rng.New(seed)
	tr := dataset.NewTrace(60, 2, 4)
	a := []float64{24, 24}
	sp := 24.0
	p := 0.15
	for i := 0; i < n; i++ {
		if i%7 == 0 {
			sp = 21 + 8*r.Float64()
		}
		p = stats.Clamp(p+0.004*r.Norm(), 0.1, 0.3)
		for j := range a {
			a[j] = 0.85*a[j] + 0.15*sp + 0.8*(p-0.2) + 0.03*r.Norm()
		}
		dc := make([]float64, 4)
		for k := range dc {
			dc[k] = a[0] - 3 + 0.4*float64(k) + 2*p + 0.03*r.Norm()
		}
		power := math.Max(0.1, 1.8-0.45*(sp-a[0]))
		tr.Append(testbed.Sample{
			TimeS:        float64(i) * 60,
			SetpointC:    sp,
			AvgServerKW:  p,
			ACUPowerKW:   power,
			ACUTemps:     append([]float64(nil), a...),
			DCTemps:      dc,
			MaxColdAisle: dc[3],
		})
	}
	return tr
}

func smallConfig() Config {
	cfg := DefaultConfig(2)
	cfg.L = 6
	return cfg
}

func trainSmall(t *testing.T, seed uint64) (*Model, *dataset.Trace, *dataset.Trace) {
	t.Helper()
	tr := syntheticTrace(700, seed)
	train, test := tr.Split(0.7)
	m, err := Train(train, smallConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m, train, test
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(11)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.L = 0
	if bad.Validate() == nil {
		t.Fatalf("L=0 accepted")
	}
	bad = good
	bad.AlphaDCS = -1
	if bad.Validate() == nil {
		t.Fatalf("negative alpha accepted")
	}
	bad = good
	bad.Stride = 0
	if bad.Validate() == nil {
		t.Fatalf("stride 0 accepted")
	}
	bad = good
	bad.ColdIdx = nil
	if bad.Validate() == nil {
		t.Fatalf("empty cold set accepted")
	}
}

func TestTrainErrors(t *testing.T) {
	tiny := syntheticTrace(10, 1)
	if _, err := Train(tiny, smallConfig()); err == nil {
		t.Fatalf("too-short trace accepted")
	}
	tr := syntheticTrace(200, 1)
	cfg := smallConfig()
	cfg.ColdIdx = []int{99}
	if _, err := Train(tr, cfg); err == nil {
		t.Fatalf("out-of-range cold index accepted")
	}
}

func TestPredictionAccuracyOnSynthetic(t *testing.T) {
	m, _, test := trainSmall(t, 2)
	L := m.Config().L
	var predT, truthT, predE, truthE []float64
	for ti := L - 1; ti+L < test.Len(); ti += 3 {
		h, err := HistoryAt(test, ti, L)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.PredictSeq(h, test.Setpoint[ti+1:ti+1+L])
		if err != nil {
			t.Fatal(err)
		}
		for l := 1; l <= L; l++ {
			for k := 0; k < test.Nd(); k++ {
				predT = append(predT, p.DCTemps.At(l-1, k))
				truthT = append(truthT, test.DCTemps[k][ti+l])
			}
		}
		predE = append(predE, p.EnergyKWh)
		truthE = append(truthE, test.EnergyKWh(ti+1, ti+1+L))
	}
	mapeT, err := stats.MAPE(predT, truthT)
	if err != nil {
		t.Fatal(err)
	}
	if mapeT > 5 {
		t.Fatalf("temperature MAPE %g%% too high on learnable synthetic dynamics", mapeT)
	}
	mapeE, err := stats.MAPE(predE, truthE)
	if err != nil {
		t.Fatal(err)
	}
	if mapeE > 15 {
		t.Fatalf("energy MAPE %g%% too high", mapeE)
	}
}

func TestInterruptionProxyActivatesAboveInlet(t *testing.T) {
	m, train, _ := trainSmall(t, 3)
	L := m.Config().L
	h, err := HistoryAt(train, train.Len()-1, L)
	if err != nil {
		t.Fatal(err)
	}
	inletNow := h.ACUTemps[0][L-1]
	low, err := m.Predict(h, inletNow-3)
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.Predict(h, inletNow+6)
	if err != nil {
		t.Fatal(err)
	}
	if low.Interruption != 0 {
		t.Fatalf("set-point below inlet should carry no interruption, got %g", low.Interruption)
	}
	if high.Interruption <= 0 {
		t.Fatalf("set-point far above inlet should be penalized")
	}
	if high.InterruptionNorm <= 0 || high.InterruptionNorm != high.Interruption/m.TempRangeC() {
		t.Fatalf("normalized interruption inconsistent")
	}
}

func TestObjectiveIsNormalizedSum(t *testing.T) {
	m, train, _ := trainSmall(t, 4)
	h, _ := HistoryAt(train, train.Len()-1, m.Config().L)
	p, err := m.Predict(h, 26)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Objective()-(p.EnergyNorm+p.InterruptionNorm)) > 1e-12 {
		t.Fatalf("Objective != EnergyNorm + InterruptionNorm")
	}
	if math.Abs(m.NormEnergy(p.EnergyKWh)-p.EnergyNorm) > 1e-9 {
		t.Fatalf("NormEnergy inconsistent with prediction")
	}
}

func TestConstraintUsesOnlyColdSensors(t *testing.T) {
	// Train two models differing only in which sensors count as cold aisle;
	// with per-sensor offsets the constraint must differ.
	tr := syntheticTrace(700, 5)
	train, _ := tr.Split(0.7)
	cfgLow := smallConfig()
	cfgLow.ColdIdx = []int{0} // coolest sensor
	cfgHigh := smallConfig()
	cfgHigh.ColdIdx = []int{3} // warmest sensor
	mLow, err := Train(train, cfgLow)
	if err != nil {
		t.Fatal(err)
	}
	mHigh, err := Train(train, cfgHigh)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := HistoryAt(train, train.Len()-1, cfgLow.L)
	pLow, _ := mLow.Predict(h, 25)
	pHigh, _ := mHigh.Predict(h, 25)
	if pHigh.Constraint <= pLow.Constraint {
		t.Fatalf("warmer cold-aisle set should give a larger constraint: %g vs %g",
			pHigh.Constraint, pLow.Constraint)
	}
}

func TestHigherSetpointPredictsLessEnergy(t *testing.T) {
	m, train, _ := trainSmall(t, 6)
	h, _ := HistoryAt(train, train.Len()-1, m.Config().L)
	lo, _ := m.Predict(h, 22)
	hi, _ := m.Predict(h, 27)
	if hi.EnergyKWh >= lo.EnergyKWh {
		t.Fatalf("energy model lost the set-point slope: E(22)=%g E(27)=%g", lo.EnergyKWh, hi.EnergyKWh)
	}
}

func TestValidateHistoryErrors(t *testing.T) {
	m, train, _ := trainSmall(t, 7)
	L := m.Config().L
	h, _ := HistoryAt(train, train.Len()-1, L)

	bad := *h
	bad.AvgPower = bad.AvgPower[:L-1]
	if m.ValidateHistory(&bad) == nil {
		t.Fatalf("short power history accepted")
	}
	bad = *h
	bad.ACUTemps = bad.ACUTemps[:1]
	if m.ValidateHistory(&bad) == nil {
		t.Fatalf("missing ACU series accepted")
	}
	bad = *h
	bad.DCTemps = append([][]float64{}, bad.DCTemps...)
	bad.DCTemps[0] = bad.DCTemps[0][:2]
	if m.ValidateHistory(&bad) == nil {
		t.Fatalf("short DC series accepted")
	}
	if _, err := m.PredictSeq(h, []float64{25}); err == nil {
		t.Fatalf("wrong set-point sequence length accepted")
	}
}

func TestHistoryAtBounds(t *testing.T) {
	tr := syntheticTrace(50, 8)
	if _, err := HistoryAt(tr, 3, 6); err == nil {
		t.Fatalf("window before trace start accepted")
	}
	if _, err := HistoryAt(tr, 50, 6); err == nil {
		t.Fatalf("window past trace end accepted")
	}
	h, err := HistoryAt(tr, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if h.AvgPower[5] != tr.AvgPower[10] {
		t.Fatalf("history newest sample misaligned")
	}
}

func TestModelAccessors(t *testing.T) {
	m, _, _ := trainSmall(t, 9)
	if m.Na() != 2 || m.Nd() != 4 {
		t.Fatalf("Na/Nd = %d/%d", m.Na(), m.Nd())
	}
	if m.TempRangeC() <= 0 || m.EnergyRangeKWh() <= 0 {
		t.Fatalf("scale accessors must be positive")
	}
	if m.Config().L != 6 {
		t.Fatalf("Config roundtrip wrong")
	}
}
