package gateway

import (
	"tesla/internal/modbus"
	"tesla/internal/telemetry"
	"tesla/internal/testbed"
)

// PollerConfig tunes a telemetry poller over a gateway's devices.
type PollerConfig struct {
	// ColdLimitC is the cold-aisle violation threshold fed to the ingestor.
	ColdLimitC float64
	// PeriodS is the poll period in seconds (energy/violation accounting).
	PeriodS float64
	// QueueCap bounds each device's telemetry queue (default 64).
	QueueCap int
	// Batch is the ingestor's per-queue drain bound per sweep (default 64).
	Batch int
	// StartSeqs, when non-nil, seeds the per-device sequence counters
	// (index = device order) instead of starting at zero — the hand-off
	// path: a successor poller resuming a predecessor's Seqs() continues
	// the per-device streams without duplicate sequence numbers. The
	// ingestor's per-device cursors are seeded too, so the predecessor's
	// range is not re-counted as gaps here: merging both hosts' rollups
	// accounts every sequence number exactly once (sample or gap), and
	// only sweeps genuinely missed between the two surface as gaps.
	StartSeqs []uint64
}

// Poller sweeps every gateway device over Modbus and feeds the decoded
// samples into the existing telemetry pipeline — per-device bounded queues
// drained by one Ingestor into the fleet Rollup.
//
// Accounting is exact end to end: the per-device sequence number advances
// on every sweep, poll succeed or fail, so a failed poll surfaces as a
// sequence gap in the rollup (exactly like a sample lost to queue
// eviction) rather than silently narrowing the denominator.
type Poller struct {
	devs   []*Device
	queues []*telemetry.Queue
	ing    *telemetry.Ingestor
	seq    []uint64

	polls    uint64
	failures uint64
}

// NewPoller builds a poller over the gateway's current device set.
func NewPoller(gw *Gateway, cfg PollerConfig) *Poller {
	return NewPollerOver(gw.Devices(), cfg)
}

// NewPollerOver builds a poller over an explicit device subset — the
// per-room path: a shard hosting many rooms gives each room its own
// single-device poller on the shared gateway, so each room's sequence
// ledger migrates independently of its siblings.
func NewPollerOver(devs []*Device, cfg PollerConfig) *Poller {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	queues := make([]*telemetry.Queue, len(devs))
	for i := range queues {
		queues[i] = telemetry.NewQueue(cfg.QueueCap)
	}
	seq := make([]uint64, len(devs))
	copy(seq, cfg.StartSeqs)
	ing := telemetry.NewIngestor(queues, cfg.ColdLimitC, cfg.PeriodS, cfg.Batch)
	for i, s := range seq {
		ing.SeedSeq(i, s)
	}
	return &Poller{
		devs:   devs,
		queues: queues,
		ing:    ing,
		seq:    seq,
	}
}

// Seqs snapshots the per-device sequence counters (index = device order) —
// the hand-off token: feed it to a successor poller's StartSeqs so the
// per-device sample streams continue without duplicates. Call between
// sweeps, not concurrently with PollOnce.
func (p *Poller) Seqs() []uint64 {
	return append([]uint64(nil), p.seq...)
}

// PollOnce sweeps every device once: the ACU input block (inlet temps,
// power, duty) plus the set-point holding register, submitted together so
// the device loop coalesces them. timeS stamps the resulting samples.
// Returns how many devices answered and how many failed this sweep.
func (p *Poller) PollOnce(timeS float64) (ok, failed int) {
	type pending struct {
		inputs, setp <-chan opResult
	}
	reqs := make([]pending, len(p.devs))
	for i, d := range p.devs {
		// Async submits: all devices poll concurrently, each device's two
		// reads land in one batch drain.
		reqs[i] = pending{
			inputs: d.submit(&op{fn: modbus.FuncReadInput, addr: modbus.RegInletTemp0, count: 4, done: make(chan opResult, 1)}),
			setp:   d.submit(&op{fn: modbus.FuncReadHolding, addr: modbus.RegSetpoint, count: 1, done: make(chan opResult, 1)}),
		}
	}
	for i := range p.devs {
		in := <-reqs[i].inputs
		sp := <-reqs[i].setp
		p.polls++
		if in.err != nil || sp.err != nil {
			// Advance the sequence WITHOUT pushing: the miss is visible to
			// the rollup as a seq gap.
			p.seq[i]++
			p.failures++
			failed++
			continue
		}
		t0 := modbus.DecodeTempC(in.vals[0])
		t1 := modbus.DecodeTempC(in.vals[1])
		s := testbed.Sample{
			TimeS:        timeS,
			ACUTemps:     []float64{t0, t1},
			SetpointC:    modbus.DecodeTempC(sp.vals[0]),
			ACUPowerKW:   float64(in.vals[2]) / 1000,
			ACUDuty:      float64(in.vals[3]) / 1000,
			Interrupted:  in.vals[2] < 100,
			MaxColdAisle: max(t0, t1),
		}
		p.queues[i].Push(telemetry.RoomSample{Room: i, Seq: p.seq[i], S: s})
		p.seq[i]++
		ok++
	}
	return ok, failed
}

// DrainOnce runs one ingestor sweep; returns samples ingested.
func (p *Poller) DrainOnce() int { return p.ing.DrainOnce() }

// Rollup returns the fleet aggregate over everything polled so far.
func (p *Poller) Rollup() telemetry.Rollup { return p.ing.Rollup() }

// RoomAggs returns the per-device ingested views (index = device order).
func (p *Poller) RoomAggs() []telemetry.RoomAgg { return p.ing.RoomAggs() }

// Counts reports total polls attempted and failed.
func (p *Poller) Counts() (polls, failures uint64) { return p.polls, p.failures }
