package gateway

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tesla/internal/modbus"
	"tesla/internal/testbed"
)

// startACU runs a Modbus server over a fresh ACU-shaped register bank.
func startACU(t *testing.T) (*modbus.Server, string, *modbus.MapBank) {
	t.Helper()
	bank := modbus.NewMapBank()
	bank.SetHolding(modbus.RegSetpoint, modbus.EncodeTempC(23))
	bank.SetInput(modbus.RegInletTemp0, modbus.EncodeTempC(21.5))
	bank.SetInput(modbus.RegInletTemp1, modbus.EncodeTempC(22.5))
	bank.SetInput(modbus.RegPowerW, 4200)
	bank.SetInput(modbus.RegDuty, 500)
	srv := modbus.NewServer(bank)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, bank
}

// startStall listens and accepts but never responds — a hung device.
func startStall(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { // swallow requests, never answer
				buf := make([]byte, 256)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// deadAddr returns an address nothing listens on (fails fast with refused).
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestDeviceReadWriteRoundTrip(t *testing.T) {
	_, addr, _ := startACU(t)
	gw := New(Config{Timeout: time.Second})
	defer gw.Close()
	dev, err := gw.Add("acu-0", addr)
	if err != nil {
		t.Fatal(err)
	}

	vals, err := dev.ReadInput(modbus.RegInletTemp0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := modbus.DecodeTempC(vals[0]); got != 21.5 {
		t.Fatalf("inlet0 = %v", got)
	}
	if err := dev.WriteHolding(modbus.RegSetpoint, modbus.EncodeTempC(24)); err != nil {
		t.Fatal(err)
	}
	sp, err := dev.ReadHolding(modbus.RegSetpoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := modbus.DecodeTempC(sp[0]); got != 24 {
		t.Fatalf("setpoint after write = %v", got)
	}
	if dev.State() != StateConnected {
		t.Fatalf("state = %v", dev.State())
	}
	ds := dev.Stats()
	if ds.Submitted != 3 || ds.Completed != 3 || ds.Failed != 0 || ds.Dropped != 0 || ds.Writes != 1 {
		t.Fatalf("stats = %+v", ds)
	}
}

// TestProcessCoalescesAdjacentReads drives the executor directly with one
// batch: four adjacent single-register reads must cost one wire read.
func TestProcessCoalescesAdjacentReads(t *testing.T) {
	_, addr, _ := startACU(t)
	d := newDevice("acu", addr, Config{Timeout: time.Second}.withDefaults())
	defer d.close()

	batch := []*op{
		rdOp(modbus.FuncReadInput, 0, 1),
		rdOp(modbus.FuncReadInput, 1, 1),
		rdOp(modbus.FuncReadInput, 2, 1),
		rdOp(modbus.FuncReadInput, 3, 1),
	}
	d.process(batch)
	want := []uint16{modbus.EncodeTempC(21.5), modbus.EncodeTempC(22.5), 4200, 500}
	for i, o := range batch {
		r := <-o.done
		if r.err != nil {
			t.Fatalf("op %d: %v", i, r.err)
		}
		if len(r.vals) != 1 || r.vals[0] != want[i] {
			t.Fatalf("op %d vals = %v, want [%d]", i, r.vals, want[i])
		}
	}
	if ds := d.Stats(); ds.WireReads != 1 || ds.MergedReads != 3 {
		t.Fatalf("wire reads = %d, merged = %d, want 1, 3", ds.WireReads, ds.MergedReads)
	}
}

// TestProcessWriteBarrier: a write splits the surrounding reads into two
// wire reads, and only the read after the barrier observes the new value.
func TestProcessWriteBarrier(t *testing.T) {
	_, addr, _ := startACU(t)
	d := newDevice("acu", addr, Config{Timeout: time.Second}.withDefaults())
	defer d.close()

	before := rdOp(modbus.FuncReadHolding, modbus.RegSetpoint, 1)
	wr := &op{write: true, addr: modbus.RegSetpoint, value: modbus.EncodeTempC(25), done: make(chan opResult, 1)}
	after := rdOp(modbus.FuncReadHolding, modbus.RegSetpoint, 1)
	d.process([]*op{before, wr, after})

	if r := <-before.done; r.err != nil || r.vals[0] != modbus.EncodeTempC(23) {
		t.Fatalf("read before barrier = %v, %v", r.vals, r.err)
	}
	if r := <-wr.done; r.err != nil {
		t.Fatalf("write: %v", r.err)
	}
	if r := <-after.done; r.err != nil || r.vals[0] != modbus.EncodeTempC(25) {
		t.Fatalf("read after barrier = %v, %v", r.vals, r.err)
	}
	if ds := d.Stats(); ds.WireReads != 2 || ds.Writes != 1 {
		t.Fatalf("wire reads = %d, writes = %d, want 2, 1", ds.WireReads, ds.Writes)
	}
}

// TestMergedReadFallback: a gap-bridging merged read that the device refuses
// (hole in the register map) degrades to per-op reads — coalescing can never
// fail a request that was individually valid.
func TestMergedReadFallback(t *testing.T) {
	bank := modbus.NewMapBank()
	bank.SetInput(0, 10)
	bank.SetInput(2, 30) // hole at register 1
	srv := modbus.NewServer(bank)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	d := newDevice("acu", addr, Config{Timeout: time.Second, CoalesceGap: 1}.withDefaults())
	defer d.close()
	a, b := rdOp(modbus.FuncReadInput, 0, 1), rdOp(modbus.FuncReadInput, 2, 1)
	d.process([]*op{a, b})
	if r := <-a.done; r.err != nil || r.vals[0] != 10 {
		t.Fatalf("op a = %v, %v", r.vals, r.err)
	}
	if r := <-b.done; r.err != nil || r.vals[0] != 30 {
		t.Fatalf("op b = %v, %v", r.vals, r.err)
	}
	// One merged attempt plus two fallback singles.
	if ds := d.Stats(); ds.WireReads != 3 {
		t.Fatalf("wire reads = %d, want 3", ds.WireReads)
	}
}

// TestWindowBoundExactAccounting: with the window pinned full by a stalled
// device, further submissions are rejected immediately with ErrWindowFull
// and every rejection is counted — no queueing, no blocking.
func TestWindowBoundExactAccounting(t *testing.T) {
	addr := startStall(t)
	const window = 4
	gw := New(Config{Timeout: 500 * time.Millisecond, InFlight: window, BackoffMin: time.Millisecond})
	defer gw.Close()
	dev, err := gw.Add("stalled", addr)
	if err != nil {
		t.Fatal(err)
	}

	// Fill the window: these park inside the stalled exchange for ~Timeout.
	pending := make([]<-chan opResult, window)
	for i := range pending {
		pending[i] = dev.submit(rdOp(modbus.FuncReadInput, 0, 1))
	}
	time.Sleep(50 * time.Millisecond) // let the loop drain them into a batch

	const extra = 7
	for i := 0; i < extra; i++ {
		start := time.Now()
		_, err := dev.ReadInput(0, 1)
		if !errors.Is(err, ErrWindowFull) {
			t.Fatalf("overflow submit %d: err = %v", i, err)
		}
		if time.Since(start) > 100*time.Millisecond {
			t.Fatalf("overflow submit %d blocked", i)
		}
	}
	for _, ch := range pending {
		<-ch
	}
	ds := dev.Stats()
	if ds.Dropped != extra {
		t.Fatalf("dropped = %d, want %d", ds.Dropped, extra)
	}
	if ds.Submitted != window || ds.Submitted != ds.Completed+ds.Failed {
		t.Fatalf("accounting: %+v", ds)
	}
	if ds.InFlight != 0 {
		t.Fatalf("in-flight = %d after quiesce", ds.InFlight)
	}
}

// TestReconnectCountsAndRecovers: dropping the transport mid-stream fails
// the in-flight request, arms the backoff gate, and the next request redials
// — with the reconnect counted.
func TestReconnectCountsAndRecovers(t *testing.T) {
	srv, addr, _ := startACU(t)
	gw := New(Config{Timeout: time.Second, BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond})
	defer gw.Close()
	dev, err := gw.Add("acu", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.ReadInput(0, 1); err != nil {
		t.Fatal(err)
	}

	srv.DisconnectAll()
	// Until the device notices the dead conn and redials, requests may fail;
	// it must recover within the deadline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := dev.ReadInput(0, 1); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("device never recovered after DisconnectAll")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ds := dev.Stats(); ds.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want ≥ 1", ds.Reconnects)
	}
	if dev.State() != StateConnected {
		t.Fatalf("state = %v", dev.State())
	}
}

// TestCloseInterruptsStalledExchange: Gateway.Close must not wait out a
// 5-second exchange timeout against a hung device.
func TestCloseInterruptsStalledExchange(t *testing.T) {
	addr := startStall(t)
	gw := New(Config{Timeout: 5 * time.Second})
	dev, err := gw.Add("stalled", addr)
	if err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		_, err := dev.ReadInput(0, 1)
		res <- err
	}()
	time.Sleep(50 * time.Millisecond) // request is now parked in the exchange

	start := time.Now()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("Close blocked %v behind a stalled exchange", took)
	}
	select {
	case err := <-res:
		if err == nil {
			t.Fatal("stalled request reported success after Close")
		}
	case <-time.After(time.Second):
		t.Fatal("stalled request still running after Close")
	}
	if _, err := dev.ReadInput(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close submit: err = %v, want ErrClosed", err)
	}
}

// TestPollerFeedsRollup: the poller's samples land in the telemetry rollup,
// and a failed sweep surfaces as a sequence gap once the device recovers —
// exact accounting end to end.
func TestPollerFeedsRollup(t *testing.T) {
	srv, addr, _ := startACU(t)
	_, addr2, _ := startACU(t)
	gw := New(Config{Timeout: time.Second, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond})
	defer gw.Close()
	if _, err := gw.Add("acu-0", addr); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Add("acu-1", addr2); err != nil {
		t.Fatal(err)
	}
	p := NewPoller(gw, PollerConfig{ColdLimitC: 27, PeriodS: 60})

	if ok, failed := p.PollOnce(0); ok != 2 || failed != 0 {
		t.Fatalf("sweep 1: ok %d failed %d", ok, failed)
	}
	// Kill device 0's transport: sweep 2 fails for it, seq still advances.
	srv.DisconnectAll()
	_, failed := p.PollOnce(60)
	if failed != 1 {
		t.Fatalf("sweep 2 failed = %d, want 1", failed)
	}
	time.Sleep(20 * time.Millisecond) // let the backoff gate expire
	if ok, failed := p.PollOnce(120); ok != 2 || failed != 0 {
		t.Fatalf("sweep 3: ok %d failed %d", ok, failed)
	}
	p.DrainOnce()

	r := p.Rollup()
	if r.Samples != 5 {
		t.Fatalf("rollup samples = %d, want 5", r.Samples)
	}
	if r.Gaps != 1 {
		t.Fatalf("rollup gaps = %d, want 1 (the failed sweep)", r.Gaps)
	}
	if r.MaxColdC != 22.5 {
		t.Fatalf("rollup max cold = %v", r.MaxColdC)
	}
	aggs := p.RoomAggs()
	if aggs[0].Gaps != 1 || aggs[1].Gaps != 0 {
		t.Fatalf("per-device gaps = %d, %d", aggs[0].Gaps, aggs[1].Gaps)
	}
	if polls, failures := p.Counts(); polls != 6 || failures != 1 {
		t.Fatalf("counts = %d polls, %d failures", polls, failures)
	}
}

// TestGatewaySoak hammers a mixed fleet — healthy, hung, and dead devices —
// from many goroutines, injects a mass disconnect mid-flight, and then
// proves three invariants: windows stayed bounded, accounting is exact
// (submitted + dropped = attempts, submitted = completed + failed), and
// closing the gateway leaks no goroutines. Run under -race -cpu 1,4.
func TestGatewaySoak(t *testing.T) {
	srv, healthy, _ := startACU(t)
	stalled := startStall(t)
	dead := deadAddr(t)
	// Baseline after the fixture listeners are up: their accept loops live
	// until t.Cleanup, but per-connection goroutines on both sides must be
	// gone once the gateway closes its conns.
	baseline := runtime.NumGoroutine()

	const window = 4
	gw := New(Config{
		Timeout:    50 * time.Millisecond,
		InFlight:   window,
		BackoffMin: time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
	})
	addrs := []string{healthy, healthy, healthy, stalled, stalled, dead}
	devs := make([]*Device, len(addrs))
	for i, a := range addrs {
		d, err := gw.Add(string(rune('a'+i)), a)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}

	// Window-bound watchdog: sample every device's live in-flight count.
	var maxSeen atomic.Int64
	watchStop := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		for {
			select {
			case <-watchStop:
				return
			default:
				for _, d := range devs {
					if n := d.inflight.Load(); n > maxSeen.Load() {
						maxSeen.Store(n)
					}
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var attempts, drops atomic.Uint64
	var wg sync.WaitGroup
	for _, d := range devs {
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(d *Device, w int) {
				defer wg.Done()
				for j := 0; j < 25; j++ {
					attempts.Add(1)
					var err error
					if j%5 == 4 {
						err = d.WriteHolding(modbus.RegSetpoint, modbus.EncodeTempC(22))
					} else {
						_, err = d.ReadInput(uint16(j%4), 1)
					}
					if errors.Is(err, ErrWindowFull) {
						drops.Add(1)
					}
				}
			}(d, w)
		}
	}
	time.Sleep(30 * time.Millisecond)
	srv.DisconnectAll() // mass disconnect mid-soak
	wg.Wait()
	close(watchStop)
	watchWG.Wait()

	if m := maxSeen.Load(); m > window {
		t.Fatalf("observed %d in-flight, window is %d", m, window)
	}
	var submitted, completed, failed, dropped uint64
	for _, d := range devs {
		ds := d.Stats()
		if ds.Submitted != ds.Completed+ds.Failed {
			t.Fatalf("device %s: %+v", ds.ID, ds)
		}
		if ds.InFlight != 0 {
			t.Fatalf("device %s: %d in-flight after quiesce", ds.ID, ds.InFlight)
		}
		submitted += ds.Submitted
		completed += ds.Completed
		failed += ds.Failed
		dropped += ds.Dropped
	}
	if got := attempts.Load(); submitted+dropped != got {
		t.Fatalf("submitted %d + dropped %d != attempts %d", submitted, dropped, got)
	}
	if got := drops.Load(); dropped != got {
		t.Fatalf("stats dropped %d != callers' ErrWindowFull count %d", dropped, got)
	}
	agg := gw.Stats()
	if agg.Submitted != submitted || agg.Dropped != dropped {
		t.Fatalf("aggregate %+v disagrees with per-device sums", agg)
	}

	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	// Zero goroutine leaks: everything the gateway spawned must exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d > baseline %d after Close\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPollerSampleShape: decoded register values land in the right Sample
// fields (the gateway is the only producer the rollup sees in fleet mode).
func TestPollerSampleShape(t *testing.T) {
	tb, err := testbed.New(testbed.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bridge := modbus.NewACUBridge(tb)
	s := tb.Advance()
	bridge.Refresh(s)
	srv := modbus.NewServer(bridge.Bank)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	gw := New(Config{Timeout: time.Second})
	defer gw.Close()
	if _, err := gw.Add("acu", addr); err != nil {
		t.Fatal(err)
	}
	p := NewPoller(gw, PollerConfig{ColdLimitC: 27, PeriodS: 60})
	if ok, _ := p.PollOnce(s.TimeS); ok != 1 {
		t.Fatal("poll failed")
	}
	p.DrainOnce()
	agg := p.RoomAggs()[0]
	// Register encoding quantizes to 0.01 °C; compare at that tolerance.
	if diff := agg.LastSetpointC - s.SetpointC; diff > 0.01 || diff < -0.01 {
		t.Fatalf("setpoint %v vs testbed %v", agg.LastSetpointC, s.SetpointC)
	}
	if diff := agg.LastPowerKW - s.ACUPowerKW; diff > 0.001 || diff < -0.001 {
		t.Fatalf("power %v vs testbed %v", agg.LastPowerKW, s.ACUPowerKW)
	}
}

// TestRedialJitterSeededSpread: redial delays are scattered per device by a
// seeded stream — deterministic for a (Seed, id) pair, bounded by
// JitterFrac, and spread across devices so a fleet-wide disconnect does not
// produce a synchronized redial stampede.
func TestRedialJitterSeededSpread(t *testing.T) {
	cfg := Config{BackoffMin: 100 * time.Millisecond, BackoffMax: time.Second, Seed: 7}.withDefaults()

	mk := func(id string) []time.Duration {
		d := newDevice(id, "127.0.0.1:1", cfg)
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = d.redialDelay()
		}
		return out
	}

	// Determinism: same (Seed, id) reproduces the exact delay sequence.
	a1, a2 := mk("acu-0"), mk("acu-0")
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("delay %d: %v vs %v — jitter not deterministic per (seed, id)", i, a1[i], a2[i])
		}
	}

	// Bounds: every delay lies in [1-J, 1+J) x backoff.
	lo := time.Duration((1 - cfg.JitterFrac) * float64(cfg.BackoffMin))
	hi := time.Duration((1 + cfg.JitterFrac) * float64(cfg.BackoffMin))
	for i, d := range a1 {
		if d < lo || d >= hi {
			t.Fatalf("delay %d = %v outside [%v, %v)", i, d, lo, hi)
		}
	}

	// Spread: across a fleet cut off by the same event, first-redial delays
	// must not collapse onto one instant.
	firsts := map[time.Duration]bool{}
	for i := 0; i < 16; i++ {
		firsts[mk(fmt.Sprintf("acu-%d", i))[0]] = true
	}
	if len(firsts) < 8 {
		t.Fatalf("16 devices share only %d distinct first redial delays — no spread", len(firsts))
	}

	// JitterFrac < 0 disables scatter entirely.
	plain := Config{BackoffMin: 100 * time.Millisecond, JitterFrac: -1}.withDefaults()
	d := newDevice("acu-0", "127.0.0.1:1", plain)
	if got := d.redialDelay(); got != plain.BackoffMin {
		t.Fatalf("jitter disabled but delay %v != backoff %v", got, plain.BackoffMin)
	}
}

// TestPollerHandoffResumesSeqs simulates a room hand-off: the devices'
// polling moves to a new gateway + poller (a new host), seeded with the
// predecessor's sequence counters. The successor re-emits no sequence
// number (no duplicate samples) and charges no gaps for the range the
// predecessor already accounted for — merging both rollups accounts
// every sequence number exactly once across the hand-off.
func TestPollerHandoffResumesSeqs(t *testing.T) {
	_, addr0, _ := startACU(t)
	_, addr1, _ := startACU(t)

	gw1 := New(Config{Timeout: time.Second})
	for i, a := range []string{addr0, addr1} {
		if _, err := gw1.Add(fmt.Sprintf("acu-%d", i), a); err != nil {
			t.Fatal(err)
		}
	}
	p1 := NewPoller(gw1, PollerConfig{ColdLimitC: 27, PeriodS: 60})
	for i := 0; i < 2; i++ {
		if ok, failed := p1.PollOnce(float64(60 * i)); ok != 2 || failed != 0 {
			t.Fatalf("p1 sweep %d: ok %d failed %d", i, ok, failed)
		}
	}
	p1.DrainOnce()
	token := p1.Seqs()
	gw1.Close() // old host releases the devices

	if token[0] != 2 || token[1] != 2 {
		t.Fatalf("hand-off token %v, want [2 2]", token)
	}

	gw2 := New(Config{Timeout: time.Second})
	defer gw2.Close()
	for i, a := range []string{addr0, addr1} {
		if _, err := gw2.Add(fmt.Sprintf("acu-%d", i), a); err != nil {
			t.Fatal(err)
		}
	}
	p2 := NewPoller(gw2, PollerConfig{ColdLimitC: 27, PeriodS: 60, StartSeqs: token})
	for i := 2; i < 4; i++ {
		if ok, failed := p2.PollOnce(float64(60 * i)); ok != 2 || failed != 0 {
			t.Fatalf("p2 sweep %d: ok %d failed %d", i, ok, failed)
		}
	}
	p2.DrainOnce()

	// No duplicates: the successor's counters continue where the token ends.
	if s := p2.Seqs(); s[0] != 4 || s[1] != 4 {
		t.Fatalf("successor seqs %v, want [4 4]", s)
	}

	r1, r2 := p1.Rollup(), p2.Rollup()
	if r1.Samples != 4 || r1.Gaps != 0 {
		t.Fatalf("predecessor rollup: %d samples, %d gaps, want 4, 0", r1.Samples, r1.Gaps)
	}
	// The predecessor already accounted for seqs 0..1 — the seeded
	// successor must NOT re-count them as gaps, or a merged ledger would
	// double-charge the hand-off range.
	if r2.Samples != 4 || r2.Gaps != 0 {
		t.Fatalf("successor rollup: %d samples, %d gaps, want 4, 0", r2.Samples, r2.Gaps)
	}
	for i, agg := range p2.RoomAggs() {
		if agg.Samples != 2 || agg.Gaps != 0 || agg.LastSeq != 3 {
			t.Fatalf("device %d agg after hand-off: %+v", i, agg)
		}
	}
	// Merged stream accounting across both hosts: every sequence number
	// appears exactly once — samples + gaps == final sequence positions.
	merged := r1
	merged.Merge(r2)
	if got := merged.Samples + merged.Gaps; got != 8 {
		t.Fatalf("merged samples+gaps = %d, want 8 (= final seqs)", got)
	}
}
