// Package gateway multiplexes many Modbus/TCP ACU endpoints behind one
// fleet-facing front end — the actuation layer between the fleet
// orchestrator and thousands of devices.
//
// Three mechanisms define it:
//
// Connection state machines. Every device owns a tiny state machine
// (disconnected → connecting → connected) driven by a single goroutine.
// Transport failures drop the connection and schedule a redial behind
// exponential backoff; a dead device fails its callers fast instead of
// stalling them, and reconnects are counted, never silent.
//
// Request coalescing. Queued reads of adjacent registers are merged into
// Modbus block reads (the telegraf request-optimization idiom), so a poll
// sweep of N registers costs one wire round-trip instead of N. Writes are
// barriers: a read enqueued after a write always observes it.
//
// Bounded in-flight windows. Each device admits at most Config.InFlight
// outstanding requests. Excess submissions are rejected immediately with
// ErrWindowFull and counted — exact accounting, same discipline as the
// telemetry pipeline's bounded queues — so one stalled ACU can never eat
// the fleet's goroutines or memory.
package gateway

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrWindowFull rejects a submission that would exceed the device's
// in-flight window. The request was NOT sent; the caller may retry later.
var ErrWindowFull = errors.New("gateway: device in-flight window full")

// ErrClosed rejects requests issued against (or interrupted by) a closed
// gateway.
var ErrClosed = errors.New("gateway: closed")

// Config tunes every device of a gateway.
type Config struct {
	// Timeout bounds one wire exchange and each (re)dial. Default 2 s.
	Timeout time.Duration
	// InFlight bounds requests admitted per device (queued + executing).
	// Default 16.
	InFlight int
	// BackoffMin is the first redial delay after a transport failure; it
	// doubles per consecutive failure up to BackoffMax. Defaults 20 ms / 2 s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// CoalesceGap is the largest run of unrequested registers a merged
	// block read may bridge. 0 (default) merges only adjacent/overlapping
	// ranges, so a merged read never touches a register nobody asked for.
	CoalesceGap uint16
	// MaxBlock caps registers per merged block read (default and hard cap
	// 125, the Modbus limit).
	MaxBlock uint16
	// Unit is the Modbus unit identifier stamped on every request. Default 1.
	Unit byte
	// JitterFrac scatters each redial delay uniformly in
	// [1-JitterFrac, 1+JitterFrac) × backoff, so a fleet of devices cut off
	// by one network event does not redial in lockstep and hammer the ACUs
	// in synchronized waves. Default 0.2; negative disables jitter.
	JitterFrac float64
	// Seed seeds the per-device jitter streams (each device derives its own
	// substream from its id), keeping redial timing deterministic per
	// (Seed, device id) for reproducible tests and simulations.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.InFlight <= 0 {
		c.InFlight = 16
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 20 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = 2 * time.Second
	}
	if c.MaxBlock <= 0 || c.MaxBlock > 125 {
		c.MaxBlock = 125
	}
	if c.Unit == 0 {
		c.Unit = 1
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.2
	} else if c.JitterFrac < 0 {
		c.JitterFrac = 0
	}
	return c
}

// Gateway owns a set of devices and their connection goroutines.
type Gateway struct {
	cfg Config

	mu      sync.RWMutex
	devices map[string]*Device
	order   []*Device
	retired []*Device
	closed  bool

	wg sync.WaitGroup
}

// New builds an empty gateway.
func New(cfg Config) *Gateway {
	return &Gateway{cfg: cfg.withDefaults(), devices: map[string]*Device{}}
}

// Add registers a device by id at a Modbus/TCP address and starts its
// connection state machine. The first dial happens lazily on the first
// request, so adding thousands of devices is instant.
func (g *Gateway) Add(id, addr string) (*Device, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrClosed
	}
	if _, dup := g.devices[id]; dup {
		return nil, fmt.Errorf("gateway: duplicate device id %q", id)
	}
	d := newDevice(id, addr, g.cfg)
	g.devices[id] = d
	g.order = append(g.order, d)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		d.loop()
	}()
	return d, nil
}

// Remove stops a device and detaches it from the gateway: pending and
// in-flight requests fail with ErrClosed and the id becomes free for a
// later Add — the room hand-off path, where a migrated room's device
// leaves the source shard's gateway and may return after a fail-back.
// The device's cumulative counters stay in Stats() (its Devices/Connected
// gauges do not), so removal never makes completed work disappear from
// the ledgers. Returns false if no such device exists.
func (g *Gateway) Remove(id string) bool {
	g.mu.Lock()
	d, ok := g.devices[id]
	if ok {
		delete(g.devices, id)
		for i, o := range g.order {
			if o == d {
				g.order = append(g.order[:i], g.order[i+1:]...)
				break
			}
		}
		g.retired = append(g.retired, d)
	}
	g.mu.Unlock()
	if ok {
		d.close()
	}
	return ok
}

// Get returns a device by id.
func (g *Gateway) Get(id string) (*Device, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	d, ok := g.devices[id]
	return d, ok
}

// Devices snapshots the device list in Add order.
func (g *Gateway) Devices() []*Device {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]*Device(nil), g.order...)
}

// Close shuts every device down: pending requests fail with ErrClosed,
// in-flight exchanges are interrupted, and every device goroutine has
// exited when Close returns.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	devs := append([]*Device(nil), g.order...)
	g.mu.Unlock()
	for _, d := range devs {
		d.close()
	}
	g.wg.Wait()
	return nil
}

// Stats aggregates every device's counters, including devices since
// removed — their cumulative work stays on the ledger; only the live
// Devices/Connected gauges reflect the current set.
func (g *Gateway) Stats() Stats {
	g.mu.RLock()
	devs := append([]*Device(nil), g.order...)
	live := len(devs)
	devs = append(devs, g.retired...)
	g.mu.RUnlock()
	s := Stats{Devices: live}
	for i, d := range devs {
		ds := d.Stats()
		if i < live && ds.State == StateConnected.String() {
			s.Connected++
		}
		s.Submitted += ds.Submitted
		s.Completed += ds.Completed
		s.Failed += ds.Failed
		s.Dropped += ds.Dropped
		s.Reconnects += ds.Reconnects
		s.DialFailures += ds.DialFailures
		s.WireReads += ds.WireReads
		s.MergedReads += ds.MergedReads
		s.Writes += ds.Writes
		s.InFlight += ds.InFlight
	}
	return s
}

// Stats is the gateway-wide health view surfaced on /metrics and /status.
// Submitted = Completed + Failed + InFlight at every instant; Dropped
// counts window rejections that never entered the pipeline.
type Stats struct {
	Devices   int `json:"devices"`
	Connected int `json:"connected"`
	InFlight  int `json:"in_flight"`

	Submitted    uint64 `json:"submitted"`
	Completed    uint64 `json:"completed"`
	Failed       uint64 `json:"failed"`
	Dropped      uint64 `json:"dropped"`
	Reconnects   uint64 `json:"reconnects"`
	DialFailures uint64 `json:"dial_failures"`
	WireReads    uint64 `json:"wire_reads"`
	MergedReads  uint64 `json:"merged_reads"`
	Writes       uint64 `json:"writes"`
}
