package gateway

import (
	"testing"

	"tesla/internal/modbus"
)

func rdOp(fn byte, addr, count uint16) *op {
	return &op{fn: fn, addr: addr, count: count, done: make(chan opResult, 1)}
}

func spans(bs []block) [][3]int {
	out := make([][3]int, len(bs))
	for i, b := range bs {
		out[i] = [3]int{int(b.addr), int(b.count), len(b.ops)}
	}
	return out
}

func TestCoalesceAdjacentAndOverlapping(t *testing.T) {
	ops := []*op{
		rdOp(modbus.FuncReadInput, 0, 2),
		rdOp(modbus.FuncReadInput, 2, 2), // adjacent
		rdOp(modbus.FuncReadInput, 3, 3), // overlapping
	}
	bs := coalesceReads(ops, 0, 125)
	if len(bs) != 1 || bs[0].addr != 0 || bs[0].count != 6 || len(bs[0].ops) != 3 {
		t.Fatalf("blocks = %v", spans(bs))
	}
}

func TestCoalesceRespectsGapZero(t *testing.T) {
	ops := []*op{
		rdOp(modbus.FuncReadInput, 0, 2),
		rdOp(modbus.FuncReadInput, 3, 1), // one-register hole
	}
	if bs := coalesceReads(ops, 0, 125); len(bs) != 2 {
		t.Fatalf("gap 0 merged across a hole: %v", spans(bs))
	}
	// Allowing a gap of 1 bridges the hole.
	bs := coalesceReads(ops, 1, 125)
	if len(bs) != 1 || bs[0].addr != 0 || bs[0].count != 4 {
		t.Fatalf("gap 1 blocks = %v", spans(bs))
	}
}

func TestCoalesceRespectsMaxBlock(t *testing.T) {
	ops := []*op{
		rdOp(modbus.FuncReadInput, 0, 100),
		rdOp(modbus.FuncReadInput, 100, 26), // would make 126 > 125
	}
	bs := coalesceReads(ops, 0, 125)
	if len(bs) != 2 {
		t.Fatalf("exceeded max block: %v", spans(bs))
	}
}

func TestCoalesceSeparatesFunctions(t *testing.T) {
	ops := []*op{
		rdOp(modbus.FuncReadInput, 0, 2),
		rdOp(modbus.FuncReadHolding, 2, 2),
	}
	if bs := coalesceReads(ops, 0, 125); len(bs) != 2 {
		t.Fatalf("merged across function codes: %v", spans(bs))
	}
}

func TestCoalesceNeverWrapsAddressSpace(t *testing.T) {
	ops := []*op{
		rdOp(modbus.FuncReadInput, 0xFFFE, 2),
		rdOp(modbus.FuncReadInput, 0xFF00, 4),
	}
	bs := coalesceReads(ops, 0, 125)
	for _, b := range bs {
		if int(b.addr)+int(b.count) > 0x10000 {
			t.Fatalf("block [%d,+%d) wraps past 0xFFFF", b.addr, b.count)
		}
	}
	// Unsorted input comes back sorted: the 0xFF00 block first.
	if bs[0].addr != 0xFF00 || bs[1].addr != 0xFFFE {
		t.Fatalf("blocks = %v", spans(bs))
	}
}
