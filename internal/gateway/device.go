package gateway

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tesla/internal/modbus"
	"tesla/internal/rng"
)

// ConnState is a device's connection state machine position.
type ConnState int32

const (
	StateDisconnected ConnState = iota
	StateConnecting
	StateConnected
)

func (s ConnState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateConnected:
		return "connected"
	default:
		return "disconnected"
	}
}

// op is one queued register operation. Exactly one opResult is delivered
// on done for every op that enters the queue.
type op struct {
	write bool
	fn    byte // read function code (FuncReadInput / FuncReadHolding)
	addr  uint16
	count uint16
	value uint16
	done  chan opResult
}

type opResult struct {
	vals []uint16
	err  error
}

// Device is one ACU endpoint behind the gateway. All exported methods are
// safe for concurrent use; the wire is driven by a single loop goroutine.
type Device struct {
	id   string
	addr string
	cfg  Config

	queue chan *op
	stop  chan struct{}

	// closeMu orders submissions against close(): once closed is set no op
	// can enter the queue, so the loop's final drain leaves nothing behind.
	closeMu sync.Mutex
	closed  bool

	// connMu lets close() interrupt an in-flight exchange owned by the loop.
	connMu sync.Mutex
	client *modbus.Client

	state    atomic.Int32
	inflight atomic.Int64

	submitted   atomic.Uint64
	completed   atomic.Uint64
	failed      atomic.Uint64
	dropped     atomic.Uint64
	reconnects  atomic.Uint64
	dialFails   atomic.Uint64
	wireReads   atomic.Uint64
	mergedReads atomic.Uint64
	writes      atomic.Uint64

	// Loop-local reconnect pacing; no lock needed.
	everConnected bool
	backoff       time.Duration
	nextDial      time.Time
	lastDialErr   error
	jitter        *rng.Rand // per-device seeded stream scattering redials
}

func newDevice(id, addr string, cfg Config) *Device {
	d := &Device{
		id:   id,
		addr: addr,
		cfg:  cfg,
		// cap == InFlight makes every guarded send non-blocking: at most
		// InFlight ops are admitted and each leaves the queue before its
		// result is delivered.
		queue:   make(chan *op, cfg.InFlight),
		stop:    make(chan struct{}),
		backoff: cfg.BackoffMin,
		jitter:  rng.New(rng.SeedFor(cfg.Seed, idHash(id))),
	}
	return d
}

// idHash maps a device id onto a jitter substream index (FNV-1a).
func idHash(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// ID returns the device identifier.
func (d *Device) ID() string { return d.id }

// Addr returns the device's Modbus/TCP address.
func (d *Device) Addr() string { return d.addr }

// State reports the connection state machine's current position.
func (d *Device) State() ConnState { return ConnState(d.state.Load()) }

// DeviceStats is one device's counter snapshot.
type DeviceStats struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	State string `json:"state"`

	InFlight     int    `json:"in_flight"`
	Submitted    uint64 `json:"submitted"`
	Completed    uint64 `json:"completed"`
	Failed       uint64 `json:"failed"`
	Dropped      uint64 `json:"dropped"`
	Reconnects   uint64 `json:"reconnects"`
	DialFailures uint64 `json:"dial_failures"`
	WireReads    uint64 `json:"wire_reads"`
	MergedReads  uint64 `json:"merged_reads"`
	Writes       uint64 `json:"writes"`
}

// Stats snapshots the device's counters.
func (d *Device) Stats() DeviceStats {
	return DeviceStats{
		ID:           d.id,
		Addr:         d.addr,
		State:        d.State().String(),
		InFlight:     int(d.inflight.Load()),
		Submitted:    d.submitted.Load(),
		Completed:    d.completed.Load(),
		Failed:       d.failed.Load(),
		Dropped:      d.dropped.Load(),
		Reconnects:   d.reconnects.Load(),
		DialFailures: d.dialFails.Load(),
		WireReads:    d.wireReads.Load(),
		MergedReads:  d.mergedReads.Load(),
		Writes:       d.writes.Load(),
	}
}

// ReadInput reads count input registers starting at addr.
func (d *Device) ReadInput(addr, count uint16) ([]uint16, error) {
	r := <-d.submit(&op{fn: modbus.FuncReadInput, addr: addr, count: count, done: make(chan opResult, 1)})
	return r.vals, r.err
}

// ReadHolding reads count holding registers starting at addr.
func (d *Device) ReadHolding(addr, count uint16) ([]uint16, error) {
	r := <-d.submit(&op{fn: modbus.FuncReadHolding, addr: addr, count: count, done: make(chan opResult, 1)})
	return r.vals, r.err
}

// WriteHolding writes value to the holding register at addr. Writes are
// barriers: reads submitted afterwards observe the write.
func (d *Device) WriteHolding(addr, value uint16) error {
	r := <-d.submit(&op{write: true, addr: addr, value: value, done: make(chan opResult, 1)})
	return r.err
}

// submit admits o into the bounded in-flight window (or rejects it) and
// returns the channel its single result will arrive on.
func (d *Device) submit(o *op) <-chan opResult {
	if d.inflight.Add(1) > int64(d.cfg.InFlight) {
		d.inflight.Add(-1)
		d.dropped.Add(1)
		o.done <- opResult{err: fmt.Errorf("gateway: device %s: %w", d.id, ErrWindowFull)}
		return o.done
	}
	d.closeMu.Lock()
	if d.closed {
		d.closeMu.Unlock()
		d.inflight.Add(-1)
		o.done <- opResult{err: ErrClosed}
		return o.done
	}
	d.submitted.Add(1)
	d.queue <- o // never blocks: admitted ops ≤ InFlight == cap(queue)
	d.closeMu.Unlock()

	// Wrap delivery so window release and counters are settled before the
	// caller sees the result.
	out := make(chan opResult, 1)
	go func() {
		r := <-o.done
		if r.err != nil {
			d.failed.Add(1)
		} else {
			d.completed.Add(1)
		}
		d.inflight.Add(-1)
		out <- r
	}()
	return out
}

// close stops the device: no new submissions, queued ops fail with
// ErrClosed, and any in-flight exchange is interrupted via the client.
func (d *Device) close() {
	d.closeMu.Lock()
	if d.closed {
		d.closeMu.Unlock()
		return
	}
	d.closed = true
	d.closeMu.Unlock()
	close(d.stop)
	d.closeClient() // unblocks a read sitting inside an exchange
}

func (d *Device) isStopped() bool {
	select {
	case <-d.stop:
		return true
	default:
		return false
	}
}

func (d *Device) setClient(c *modbus.Client) {
	d.connMu.Lock()
	d.client = c
	d.connMu.Unlock()
}

func (d *Device) getClient() *modbus.Client {
	d.connMu.Lock()
	defer d.connMu.Unlock()
	return d.client
}

func (d *Device) closeClient() {
	d.connMu.Lock()
	if d.client != nil {
		d.client.Close()
		d.client = nil
	}
	d.connMu.Unlock()
}

// loop is the device's single wire goroutine: batch-drain the queue,
// coalesce, execute, deliver.
func (d *Device) loop() {
	defer func() {
		d.closeClient()
		d.state.Store(int32(StateDisconnected))
		for { // fail whatever close() stranded in the queue
			select {
			case o := <-d.queue:
				o.done <- opResult{err: ErrClosed}
			default:
				return
			}
		}
	}()
	batch := make([]*op, 0, d.cfg.InFlight)
	for {
		select {
		case <-d.stop:
			return
		case o := <-d.queue:
			batch = append(batch[:0], o)
		drain:
			for len(batch) < cap(batch) {
				select {
				case o2 := <-d.queue:
					batch = append(batch, o2)
				default:
					break drain
				}
			}
			d.process(batch)
		}
	}
}

// process executes one drained batch in order, treating writes as barriers
// and coalescing each maximal run of reads into block reads.
func (d *Device) process(batch []*op) {
	run := make([]*op, 0, len(batch))
	flush := func() {
		if len(run) == 0 {
			return
		}
		for _, b := range coalesceReads(run, d.cfg.CoalesceGap, d.cfg.MaxBlock) {
			d.execBlock(b)
		}
		run = run[:0]
	}
	for _, o := range batch {
		if o.write {
			flush()
			d.execWrite(o)
			continue
		}
		run = append(run, o)
	}
	flush()
}

// ensure returns a live client, dialing if the backoff gate allows. It
// never sleeps: inside the backoff window callers fail fast, keeping the
// loop responsive while a device is down.
func (d *Device) ensure() (*modbus.Client, error) {
	if c := d.getClient(); c != nil {
		return c, nil
	}
	if d.isStopped() {
		return nil, ErrClosed
	}
	if now := time.Now(); now.Before(d.nextDial) {
		return nil, fmt.Errorf("gateway: device %s down (redial in %v): %w",
			d.id, d.nextDial.Sub(now).Round(time.Millisecond), errOf(d.lastDialErr))
	}
	d.state.Store(int32(StateConnecting))
	c, err := modbus.DialOptions(d.addr, modbus.ClientOptions{
		Timeout: d.cfg.Timeout,
		Retries: 0, // the gateway owns retry/backoff policy, not the client
		Unit:    d.cfg.Unit,
	})
	if err != nil {
		d.dialFails.Add(1)
		d.lastDialErr = err
		d.scheduleRedial()
		d.state.Store(int32(StateDisconnected))
		return nil, fmt.Errorf("gateway: device %s dial: %w", d.id, err)
	}
	if d.isStopped() { // lost the race with close()
		c.Close()
		return nil, ErrClosed
	}
	if d.everConnected {
		d.reconnects.Add(1)
	}
	d.everConnected = true
	d.backoff = d.cfg.BackoffMin
	d.setClient(c)
	d.state.Store(int32(StateConnected))
	return c, nil
}

func errOf(err error) error {
	if err == nil {
		return fmt.Errorf("not yet dialed")
	}
	return err
}

func (d *Device) scheduleRedial() {
	d.nextDial = time.Now().Add(d.redialDelay())
	d.backoff *= 2
	if d.backoff > d.cfg.BackoffMax {
		d.backoff = d.cfg.BackoffMax
	}
}

// redialDelay is the next redial wait: the current exponential backoff
// scattered by the device's seeded jitter stream, so devices disconnected by
// the same event spread their redials instead of stampeding together.
func (d *Device) redialDelay() time.Duration {
	if d.cfg.JitterFrac <= 0 {
		return d.backoff
	}
	f := 1 - d.cfg.JitterFrac + 2*d.cfg.JitterFrac*d.jitter.Float64()
	return time.Duration(f * float64(d.backoff))
}

// call runs one wire exchange through the state machine. A protocol-level
// answer (Modbus exception, echo mismatch) leaves the connection up; a
// transport failure drops it and arms the backoff gate.
func (d *Device) call(fn func(c *modbus.Client) error) error {
	c, err := d.ensure()
	if err != nil {
		return err
	}
	err = fn(c)
	if err == nil {
		return nil
	}
	if isProtocolError(err) {
		return err
	}
	d.closeClient()
	d.state.Store(int32(StateDisconnected))
	d.scheduleRedial()
	if d.isStopped() {
		return ErrClosed
	}
	return fmt.Errorf("gateway: device %s: %w", d.id, err)
}

func isProtocolError(err error) bool {
	var exc *modbus.ExceptionError
	var echo *modbus.EchoMismatchError
	return errors.As(err, &exc) || errors.As(err, &echo)
}

// execBlock issues one coalesced block read and distributes sub-slices to
// the member ops. If a merged read of >1 ops is refused with a Modbus
// exception (e.g. a hole in the register map), it degrades to per-op reads
// so coalescing can never fail a request that was individually valid.
func (d *Device) execBlock(b block) {
	d.wireReads.Add(1)
	if n := len(b.ops); n > 1 {
		d.mergedReads.Add(uint64(n - 1))
	}
	var vals []uint16
	err := d.call(func(c *modbus.Client) error {
		var e error
		vals, e = readFn(c, b.fn)(b.addr, b.count)
		return e
	})
	if err != nil {
		var exc *modbus.ExceptionError
		if len(b.ops) > 1 && errors.As(err, &exc) {
			for _, o := range b.ops {
				d.execSingle(o)
			}
			return
		}
		for _, o := range b.ops {
			o.done <- opResult{err: err}
		}
		return
	}
	for _, o := range b.ops {
		off := int(o.addr) - int(b.addr)
		o.done <- opResult{vals: append([]uint16(nil), vals[off:off+int(o.count)]...)}
	}
}

func (d *Device) execSingle(o *op) {
	d.wireReads.Add(1)
	var vals []uint16
	err := d.call(func(c *modbus.Client) error {
		var e error
		vals, e = readFn(c, o.fn)(o.addr, o.count)
		return e
	})
	o.done <- opResult{vals: vals, err: err}
}

func (d *Device) execWrite(o *op) {
	d.writes.Add(1)
	err := d.call(func(c *modbus.Client) error {
		return c.WriteHolding(o.addr, o.value)
	})
	o.done <- opResult{err: err}
}

func readFn(c *modbus.Client, fn byte) func(addr, count uint16) ([]uint16, error) {
	if fn == modbus.FuncReadHolding {
		return c.ReadHolding
	}
	return c.ReadInput
}
