package gateway

import "sort"

// block is one wire block read serving one or more queued read ops. Every
// member op's [addr, addr+count) range lies inside [addr, addr+count) of
// the block.
type block struct {
	fn    byte
	addr  uint16
	count uint16
	ops   []*op
}

// coalesceReads merges a run of read ops into the fewest block reads that
// cover them, telegraf-style: group by function code, sort by address,
// then merge a range into the current block when the bridged gap of
// unrequested registers is ≤ gap and the total span stays ≤ maxBlock.
// All arithmetic is in int space — a merge can never wrap past 0xFFFF,
// which is exactly the server-side bug this package's transport fixed.
func coalesceReads(ops []*op, gap, maxBlock uint16) []block {
	if len(ops) == 0 {
		return nil
	}
	byFn := map[byte][]*op{}
	fns := make([]byte, 0, 2)
	for _, o := range ops {
		if _, seen := byFn[o.fn]; !seen {
			fns = append(fns, o.fn)
		}
		byFn[o.fn] = append(byFn[o.fn], o)
	}
	var out []block
	for _, fn := range fns {
		group := byFn[fn]
		sort.SliceStable(group, func(i, j int) bool {
			if group[i].addr != group[j].addr {
				return group[i].addr < group[j].addr
			}
			return group[i].count < group[j].count
		})
		cur := block{fn: fn, addr: group[0].addr, count: group[0].count, ops: []*op{group[0]}}
		for _, o := range group[1:] {
			start, end := int(cur.addr), int(cur.addr)+int(cur.count)
			a, b := int(o.addr), int(o.addr)+int(o.count)
			merged := b
			if end > merged {
				merged = end
			}
			if a <= end+int(gap) && merged-start <= int(maxBlock) {
				cur.count = uint16(merged - start)
				cur.ops = append(cur.ops, o)
				continue
			}
			out = append(out, cur)
			cur = block{fn: fn, addr: o.addr, count: o.count, ops: []*op{o}}
		}
		out = append(out, cur)
	}
	return out
}
