// Package dataset handles trace collection and windowing for TESLA's
// learning pipeline (paper §5.1): it records testbed telemetry in columnar
// form, implements the training-data protocol (set-point swept across the
// ACU range in 0.5 °C steps every 5 minutes while a random diurnal load
// setting plays per 12-hour block), splits train/test chronologically, and
// serializes traces to CSV for offline inspection.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tesla/internal/rng"
	"tesla/internal/testbed"
	"tesla/internal/workload"
)

// Trace is a columnar telemetry recording at the control granularity.
type Trace struct {
	PeriodS float64 // sampling period (60 s)

	TimeS    []float64
	Setpoint []float64
	AvgPower []float64   // fleet-average server power (kW)
	ACUPower []float64   // ACU instantaneous power (kW), period-averaged
	ACUTemps [][]float64 // [Na][n] ACU inlet sensor series
	DCTemps  [][]float64 // [Nd][n] DC sensor series
	MaxCold  []float64   // max cold-aisle reading per step
}

// NewTrace allocates an empty trace for the given sensor counts.
func NewTrace(periodS float64, na, nd int) *Trace {
	t := &Trace{PeriodS: periodS}
	t.ACUTemps = make([][]float64, na)
	t.DCTemps = make([][]float64, nd)
	return t
}

// Na returns the number of ACU inlet sensor series.
func (t *Trace) Na() int { return len(t.ACUTemps) }

// Nd returns the number of DC sensor series.
func (t *Trace) Nd() int { return len(t.DCTemps) }

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.TimeS) }

// Append records one telemetry sample.
func (t *Trace) Append(s testbed.Sample) {
	if len(s.ACUTemps) != t.Na() || len(s.DCTemps) != t.Nd() {
		panic(fmt.Sprintf("dataset: sample has %d/%d sensors, trace expects %d/%d",
			len(s.ACUTemps), len(s.DCTemps), t.Na(), t.Nd()))
	}
	t.TimeS = append(t.TimeS, s.TimeS)
	t.Setpoint = append(t.Setpoint, s.SetpointC)
	t.AvgPower = append(t.AvgPower, s.AvgServerKW)
	t.ACUPower = append(t.ACUPower, s.ACUPowerKW)
	for i, v := range s.ACUTemps {
		t.ACUTemps[i] = append(t.ACUTemps[i], v)
	}
	for i, v := range s.DCTemps {
		t.DCTemps[i] = append(t.DCTemps[i], v)
	}
	t.MaxCold = append(t.MaxCold, s.MaxColdAisle)
}

// Slice returns the sub-trace [lo, hi) sharing backing arrays.
func (t *Trace) Slice(lo, hi int) *Trace {
	out := &Trace{
		PeriodS:  t.PeriodS,
		TimeS:    t.TimeS[lo:hi],
		Setpoint: t.Setpoint[lo:hi],
		AvgPower: t.AvgPower[lo:hi],
		ACUPower: t.ACUPower[lo:hi],
		MaxCold:  t.MaxCold[lo:hi],
	}
	out.ACUTemps = make([][]float64, t.Na())
	for i := range t.ACUTemps {
		out.ACUTemps[i] = t.ACUTemps[i][lo:hi]
	}
	out.DCTemps = make([][]float64, t.Nd())
	for i := range t.DCTemps {
		out.DCTemps[i] = t.DCTemps[i][lo:hi]
	}
	return out
}

// Split divides the trace chronologically: the first frac goes to train,
// the remainder to test (the paper trains on one month and tests on the
// following two weeks, i.e. frac ≈ 0.68).
func (t *Trace) Split(frac float64) (train, test *Trace) {
	cut := int(frac * float64(t.Len()))
	if cut < 1 {
		cut = 1
	}
	if cut >= t.Len() {
		cut = t.Len() - 1
	}
	return t.Slice(0, cut), t.Slice(cut, t.Len())
}

// EnergyKWh integrates ACU power over the window of steps [lo, hi) into
// kilowatt-hours — the target of the cooling-energy sub-module (eq. 4).
func (t *Trace) EnergyKWh(lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += t.ACUPower[i]
	}
	return s * t.PeriodS / 3600
}

// SweepConfig parameterizes training-trace collection.
type SweepConfig struct {
	Days float64 // total duration in days
	// StepC is the sweep increment (0.5 °C in the paper) and HoldS the hold
	// time per value (5 min in the paper).
	StepC float64
	HoldS float64
	Seed  uint64
}

// DefaultSweep mirrors §5.1 at a configurable duration.
func DefaultSweep(days float64, seed uint64) SweepConfig {
	return SweepConfig{Days: days, StepC: 0.5, HoldS: 300, Seed: seed}
}

// CollectSweep runs the §5.1 protocol on a fresh testbed: the load setting
// is redrawn every 12 hours (random diurnal), and the set-point sweeps the
// ACU range as a triangle wave in StepC increments held for HoldS seconds.
func CollectSweep(tbCfg testbed.Config, sc SweepConfig) (*Trace, error) {
	tbCfg.Seed = sc.Seed
	tb, err := testbed.New(tbCfg)
	if err != nil {
		return nil, err
	}
	r := rng.New(sc.Seed ^ 0x5eed)
	totalS := sc.Days * 86400
	tb.UseProfile(workload.NewRandomDiurnalSchedule(totalS, 43200, r))

	lo := tb.ACU.Config().SetpointMinC
	hi := tb.ACU.Config().SetpointMaxC
	sp := lo
	dir := 1.0
	tb.SetSetpoint(sp)
	tb.Warmup(1800)

	tr := NewTrace(tbCfg.SamplePeriodS, len(tb.Sensors.ACU), len(tb.Sensors.DC))
	steps := int(totalS / tbCfg.SamplePeriodS)
	holdSteps := int(sc.HoldS / tbCfg.SamplePeriodS)
	if holdSteps < 1 {
		holdSteps = 1
	}
	for i := 0; i < steps; i++ {
		if i%holdSteps == 0 && i > 0 {
			sp += dir * sc.StepC
			if sp > hi {
				sp = hi - sc.StepC
				dir = -1
			} else if sp < lo {
				sp = lo + sc.StepC
				dir = 1
			}
			tb.SetSetpoint(sp)
		}
		tr.Append(tb.Advance())
	}
	return tr, nil
}

// WriteCSV serializes the trace with one row per sample.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cols := []string{"time_s", "setpoint_c", "avg_server_kw", "acu_power_kw", "max_cold_c"}
	for i := range t.ACUTemps {
		cols = append(cols, fmt.Sprintf("acu_temp_%d", i))
	}
	for i := range t.DCTemps {
		cols = append(cols, fmt.Sprintf("dc_temp_%d", i))
	}
	if _, err := fmt.Fprintln(bw, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := 0; i < t.Len(); i++ {
		row := make([]string, 0, len(cols))
		row = append(row,
			format(t.TimeS[i]), format(t.Setpoint[i]), format(t.AvgPower[i]),
			format(t.ACUPower[i]), format(t.MaxCold[i]))
		for _, s := range t.ACUTemps {
			row = append(row, format(s[i]))
		}
		for _, s := range t.DCTemps {
			row = append(row, format(s[i]))
		}
		if _, err := fmt.Fprintln(bw, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader, periodS float64) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	na, nd := 0, 0
	for _, h := range header {
		if strings.HasPrefix(h, "acu_temp_") {
			na++
		}
		if strings.HasPrefix(h, "dc_temp_") {
			nd++
		}
	}
	if len(header) != 5+na+nd {
		return nil, fmt.Errorf("dataset: unexpected header %q", header)
	}
	t := NewTrace(periodS, na, nd)
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(strings.TrimSpace(sc.Text()), ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(fields), len(header))
		}
		vals := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %w", line, i, err)
			}
			vals[i] = v
		}
		t.TimeS = append(t.TimeS, vals[0])
		t.Setpoint = append(t.Setpoint, vals[1])
		t.AvgPower = append(t.AvgPower, vals[2])
		t.ACUPower = append(t.ACUPower, vals[3])
		t.MaxCold = append(t.MaxCold, vals[4])
		for i := 0; i < na; i++ {
			t.ACUTemps[i] = append(t.ACUTemps[i], vals[5+i])
		}
		for i := 0; i < nd; i++ {
			t.DCTemps[i] = append(t.DCTemps[i], vals[5+na+i])
		}
	}
	return t, sc.Err()
}

func format(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
