package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tesla/internal/rng"
	"tesla/internal/testbed"
)

func syntheticTrace(n int, seed uint64) *Trace {
	r := rng.New(seed)
	tr := NewTrace(60, 2, 3)
	for i := 0; i < n; i++ {
		s := testbed.Sample{
			TimeS:        float64(i) * 60,
			SetpointC:    20 + 10*r.Float64(),
			AvgServerKW:  0.1 + 0.2*r.Float64(),
			ACUPowerKW:   0.5 + 2*r.Float64(),
			ACUTemps:     []float64{20 + 5*r.Float64(), 20 + 5*r.Float64()},
			DCTemps:      []float64{15 + 5*r.Float64(), 16 + 5*r.Float64(), 17 + 5*r.Float64()},
			MaxColdAisle: 18 + 3*r.Float64(),
		}
		tr.Append(s)
	}
	return tr
}

func TestAppendAndAccessors(t *testing.T) {
	tr := syntheticTrace(10, 1)
	if tr.Len() != 10 || tr.Na() != 2 || tr.Nd() != 3 {
		t.Fatalf("shape wrong: %d/%d/%d", tr.Len(), tr.Na(), tr.Nd())
	}
}

func TestAppendPanicsOnShapeMismatch(t *testing.T) {
	tr := NewTrace(60, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	tr.Append(testbed.Sample{ACUTemps: []float64{1}, DCTemps: []float64{1, 2, 3}})
}

func TestSliceSharesData(t *testing.T) {
	tr := syntheticTrace(10, 2)
	sub := tr.Slice(2, 5)
	if sub.Len() != 3 {
		t.Fatalf("slice length %d", sub.Len())
	}
	if sub.Setpoint[0] != tr.Setpoint[2] {
		t.Fatalf("slice misaligned")
	}
	if sub.DCTemps[1][2] != tr.DCTemps[1][4] {
		t.Fatalf("slice sensor series misaligned")
	}
}

func TestSplitChronological(t *testing.T) {
	tr := syntheticTrace(100, 3)
	train, test := tr.Split(0.7)
	if train.Len() != 70 || test.Len() != 30 {
		t.Fatalf("split %d/%d", train.Len(), test.Len())
	}
	if test.TimeS[0] <= train.TimeS[train.Len()-1] {
		t.Fatalf("test should follow train in time")
	}
	// Degenerate fractions still leave both sides non-empty.
	a, b := tr.Split(0)
	if a.Len() == 0 || b.Len() == 0 {
		t.Fatalf("degenerate split emptied a side")
	}
	a, b = tr.Split(1)
	if a.Len() == 0 || b.Len() == 0 {
		t.Fatalf("degenerate split emptied a side")
	}
}

func TestEnergyKWh(t *testing.T) {
	tr := NewTrace(60, 1, 1)
	for i := 0; i < 10; i++ {
		tr.Append(testbed.Sample{
			TimeS: float64(i) * 60, ACUPowerKW: 3,
			ACUTemps: []float64{20}, DCTemps: []float64{20},
		})
	}
	// 3 kW for 5 minutes = 0.25 kWh.
	if got := tr.EnergyKWh(0, 5); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("EnergyKWh = %g, want 0.25", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := syntheticTrace(25, 4)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 60)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.Na() != tr.Na() || back.Nd() != tr.Nd() {
		t.Fatalf("roundtrip shape mismatch")
	}
	for i := 0; i < tr.Len(); i++ {
		if math.Abs(back.Setpoint[i]-tr.Setpoint[i]) > 1e-6 {
			t.Fatalf("setpoint roundtrip at %d", i)
		}
		for k := range tr.DCTemps {
			if math.Abs(back.DCTemps[k][i]-tr.DCTemps[k][i]) > 1e-6 {
				t.Fatalf("dc temp roundtrip at sensor %d step %d", k, i)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), 60); err == nil {
		t.Fatalf("empty CSV accepted")
	}
	bad := "time_s,setpoint_c,avg_server_kw,acu_power_kw,max_cold_c,acu_temp_0,dc_temp_0\n1,2,3\n"
	if _, err := ReadCSV(strings.NewReader(bad), 60); err == nil {
		t.Fatalf("short row accepted")
	}
	bad2 := "time_s,setpoint_c,avg_server_kw,acu_power_kw,max_cold_c,acu_temp_0,dc_temp_0\n1,2,3,4,5,notanumber,7\n"
	if _, err := ReadCSV(strings.NewReader(bad2), 60); err == nil {
		t.Fatalf("non-numeric field accepted")
	}
}

func TestCollectSweepProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep collection is a multi-second simulation")
	}
	tr, err := CollectSweep(testbed.DefaultConfig(), DefaultSweep(0.5, 5))
	if err != nil {
		t.Fatal(err)
	}
	wantSamples := int(0.5 * 86400 / 60)
	if tr.Len() != wantSamples {
		t.Fatalf("collected %d samples, want %d", tr.Len(), wantSamples)
	}
	// The sweep must move in 0.5 °C steps within [20, 35] and hold each
	// value for 5 samples.
	lo, hi := 100.0, -100.0
	changes := 0
	for i := 1; i < tr.Len(); i++ {
		if tr.Setpoint[i] < lo {
			lo = tr.Setpoint[i]
		}
		if tr.Setpoint[i] > hi {
			hi = tr.Setpoint[i]
		}
		d := math.Abs(tr.Setpoint[i] - tr.Setpoint[i-1])
		if d > 0 {
			changes++
			if math.Abs(d-0.5) > 1e-9 {
				t.Fatalf("sweep step %g, want 0.5", d)
			}
		}
	}
	if lo < 20 || hi > 35 {
		t.Fatalf("sweep range [%g,%g] outside the ACU limits", lo, hi)
	}
	if changes < tr.Len()/10 {
		t.Fatalf("sweep barely moved: %d changes", changes)
	}
}
