package experiment

import (
	"fmt"
	"strings"

	"tesla/internal/faults"
	"tesla/internal/parallel"
	"tesla/internal/rng"
	"tesla/internal/safety"
	"tesla/internal/testbed"
	"tesla/internal/workload"
)

// FaultRow is one scenario's outcome under the supervised controller.
type FaultRow struct {
	Scenario string
	Class    string // sensor / actuator / telemetry
	Metrics         // measured from the *delivered* (possibly corrupted) telemetry

	// TrueTSVFrac is the fraction of evaluation steps whose ground-truth
	// cold-aisle maximum exceeded the limit — the physical violation rate,
	// immune to the injected telemetry corruption. For sensor and telemetry
	// faults a correct supervisor keeps this at zero; actuator faults remove
	// real cooling, so there it measures the physical exposure instead.
	TrueTSVFrac float64
	// RecoverySteps counts control steps from the fault clearing until the
	// supervisor is back at its normal stage with the true cold-aisle maximum
	// inside the limit; -1 if that never happens within the window.
	RecoverySteps int
	// EnergyDeltaKWh is the cooling-energy cost of surviving the fault,
	// relative to the healthy supervised baseline of the same seed.
	EnergyDeltaKWh float64

	Escalations uint64
	Quarantines uint64
	MaxLevel    safety.Level
}

// FaultMatrix is the full sweep: one healthy baseline plus one row per
// faults.Matrix scenario, all under the supervised TESLA controller.
type FaultMatrix struct {
	Load    workload.Setting
	Healthy Metrics
	// HealthyTrueTSV is the ground-truth violation fraction of the fault-free
	// baseline — the floor against which the per-scenario true(%) column is
	// judged: only the excess over it is attributable to the fault.
	HealthyTrueTSV float64
	Rows           []FaultRow
}

// String renders the matrix as a fixed-width table.
func (fm FaultMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault matrix (%s load, supervised tesla; healthy CE=%.2f kWh, true TSV=%.2f%%)\n",
		fm.Load, fm.Healthy.CEkWh, 100*fm.HealthyTrueTSV)
	fmt.Fprintf(&b, "  %-18s %-9s %8s %8s %8s %9s %5s %-14s\n",
		"scenario", "class", "TSV(%)", "true(%)", "ΔCE", "recovery", "esc", "max level")
	for _, r := range fm.Rows {
		rec := "—"
		if r.RecoverySteps >= 0 {
			rec = fmt.Sprintf("%d min", r.RecoverySteps)
		}
		fmt.Fprintf(&b, "  %-18s %-9s %8.2f %8.2f %+8.2f %9s %5d %-14s\n",
			r.Scenario, r.Class, 100*r.TSVFrac, 100*r.TrueTSVFrac, r.EnergyDeltaKWh,
			rec, r.Escalations, r.MaxLevel)
	}
	return b.String()
}

// supervisedRun is the closed loop of runLoopWithTrace with three additions:
// the policy is wrapped in a safety.Supervisor, an optional fault engine is
// attached to the testbed, and ground-truth violation / recovery bookkeeping
// rides along. sc == nil runs the healthy baseline.
func supervisedRun(a *Artifacts, load workload.Setting, evalS float64, seed uint64, teslaSeed uint64, sc *faults.Scenario) (FaultRow, error) {
	p, err := a.NewTESLAPolicy(teslaSeed)
	if err != nil {
		return FaultRow{}, err
	}
	rc := DefaultRunConfig(p, load, seed)
	rc.EvalS = evalS
	supCfg := safety.DefaultConfig(rc.ColdLimC, a.TBConf.ACU.SetpointMinC, a.TBConf.ACU.SetpointMaxC)
	sup, err := safety.Wrap(p, supCfg)
	if err != nil {
		return FaultRow{}, err
	}
	rc.Policy = sup

	tb, err := testbed.New(rc.Testbed)
	if err != nil {
		return FaultRow{}, err
	}
	tb.UseProfile(rc.Profile)
	tb.SetSetpoint(rc.InitSpC)
	row := FaultRow{Scenario: "healthy", RecoverySteps: -1}
	if sc != nil {
		eng, err := faults.NewEngine(*sc)
		if err != nil {
			return FaultRow{}, err
		}
		tb.AddStepHook(eng)
		row.Scenario = sc.Name
		row.Class = sc.Events[0].Kind.Class()
	}

	tr := newTraceFor(tb, rc)
	warmSteps := int(rc.WarmupS / rc.Testbed.SamplePeriodS)
	evalSteps := int(rc.EvalS / rc.Testbed.SamplePeriodS)
	if evalSteps < 1 {
		return FaultRow{}, fmt.Errorf("experiment: evaluation window shorter than one step")
	}
	for i := 0; i < warmSteps; i++ {
		tr.Append(tb.Advance())
	}

	m := Metrics{Policy: rc.Policy.Name(), Load: load, HoursH: rc.EvalS / 3600}
	clearStep := -1 // eval-step index at which the fault schedule has cleared
	for i := 0; i < evalSteps; i++ {
		t := tr.Len() - 1
		sp := rc.Policy.Decide(tr, t)
		tb.SetSetpoint(sp)
		s := tb.Advance()
		tr.Append(s)

		m.Steps++
		m.CEkWh += s.ACUPowerKW * rc.Testbed.SamplePeriodS / 3600
		if s.MaxColdAisle > rc.ColdLimC {
			m.TSVFrac++
		}
		if s.Interrupted {
			m.CIFrac++
		}
		m.MeanSp += s.SetpointC
		if s.MaxColdAisle > m.MaxCold {
			m.MaxCold = s.MaxColdAisle
		}
		if s.TrueMaxColdC > rc.ColdLimC {
			row.TrueTSVFrac++
		}
		if sc != nil && s.TimeS >= sc.EndS() {
			if clearStep < 0 {
				clearStep = i
			}
			if row.RecoverySteps < 0 && sup.Level() == safety.LevelNormal && s.TrueMaxColdC <= rc.ColdLimC {
				row.RecoverySteps = i - clearStep
			}
		}
	}
	m.TSVFrac /= float64(m.Steps)
	m.CIFrac /= float64(m.Steps)
	m.MeanSp /= float64(m.Steps)
	row.Metrics = m
	row.TrueTSVFrac /= float64(m.Steps)

	st := sup.Stats()
	row.Escalations = st.Escalations
	row.Quarantines = st.QuarantineEvents
	row.MaxLevel = sup.MaxLevel()
	return row, nil
}

// RunFaultMatrix sweeps every faults.Matrix scenario — plus a healthy
// baseline — with the supervised TESLA controller under one load setting.
// Every run shares both the testbed seed and the controller seed: the
// injected fault is the ONLY difference between a row and the healthy
// baseline, so the true-violation excess and EnergyDeltaKWh are attributable
// to the fault rather than to seed jitter. Runs fan out over the worker pool
// and the result is identical for any worker count.
func RunFaultMatrix(a *Artifacts, load workload.Setting, evalS float64, seed uint64) (FaultMatrix, error) {
	fm := FaultMatrix{Load: load}
	warmup := DefaultRunConfig(nil, load, seed).WarmupS
	scs := faults.Matrix(warmup, evalS, seed)
	teslaSeed := rng.SeedFor(seed, 0xba5e)

	rows, err := parallel.MapErr(0, len(scs)+1, func(i int) (FaultRow, error) {
		if i == 0 {
			return supervisedRun(a, load, evalS, seed, teslaSeed, nil)
		}
		sc := scs[i-1]
		row, err := supervisedRun(a, load, evalS, seed, teslaSeed, &sc)
		if err != nil {
			return FaultRow{}, fmt.Errorf("experiment: fault scenario %q: %w", sc.Name, err)
		}
		return row, nil
	})
	if err != nil {
		return fm, err
	}
	fm.Healthy = rows[0].Metrics
	fm.HealthyTrueTSV = rows[0].TrueTSVFrac
	fm.Rows = rows[1:]
	for i := range fm.Rows {
		fm.Rows[i].EnergyDeltaKWh = fm.Rows[i].CEkWh - fm.Healthy.CEkWh
	}
	return fm, nil
}
