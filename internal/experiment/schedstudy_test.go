package experiment

import (
	"strings"
	"testing"
)

func TestNewPolicyKnowsNewBaselines(t *testing.T) {
	a := sharedArtifacts(t)
	for name, want := range map[string]string{"mpc": "mpc", "modelfree": "modelfree"} {
		p, err := a.NewPolicy(name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
}

func TestHeterogeneousSpecsValidate(t *testing.T) {
	specs := HeterogeneousSpecs(11)
	if len(specs) != 3 {
		t.Fatalf("%d rooms", len(specs))
	}
	weak := specs[1]
	if weak.ACUCoolKW >= 13 || weak.ThermalMass >= 1 {
		t.Fatalf("weak room is not weak: %+v", weak)
	}
	if specs[2].Servers <= 21 {
		t.Fatalf("big room is not big: %+v", specs[2])
	}
}

// TestFleetSchedulingStudy is the PR's acceptance gate: the full
// place+defer+migrate scheduler under TESLA must strictly improve the joint
// (cooling energy + violation) score over the scheduler-less cell on the
// heterogeneous fleet, and the MPC and model-free columns must be present
// in the rendered report.
func TestFleetSchedulingStudy(t *testing.T) {
	a := sharedArtifacts(t)
	study, err := RunFleetSchedulingStudy(a, 3, 1800, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Cells) != len(SchedModes)*len(SchedPolicies) {
		t.Fatalf("%d cells", len(study.Cells))
	}

	none := study.Cell("none", "tesla")
	full := study.Cell("full", "tesla")
	if none == nil || full == nil {
		t.Fatalf("missing TESLA cells")
	}
	if full.JointScore >= none.JointScore {
		t.Fatalf("full×tesla joint %.3f not strictly better than none×tesla %.3f",
			full.JointScore, none.JointScore)
	}
	if full.Placements == 0 || none.Placements == 0 {
		t.Fatalf("jobs were not placed: none=%d full=%d", none.Placements, full.Placements)
	}
	// Every policy column exists and every cell actually ran its horizon.
	for _, policy := range SchedPolicies {
		for _, mode := range []string{"none", "defer", "full"} {
			c := study.Cell(mode, policy)
			if c == nil {
				t.Fatalf("missing cell %s×%s", mode, policy)
			}
			if c.CoolingKWh <= 0 || c.TrajectoryHash == 0 {
				t.Fatalf("cell %s×%s looks unrun: %+v", mode, policy, c)
			}
		}
	}

	var b strings.Builder
	rep := Report{ScaleName: "ci", Sched: study}
	if err := rep.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	md := b.String()
	for _, want := range []string{"Fleet scheduling study", "| mpc |", "| modelfree |", "| tesla |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("report lacks %q:\n%s", want, md)
		}
	}
}
