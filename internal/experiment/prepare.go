package experiment

import (
	"fmt"

	"tesla/internal/baselines"
	"tesla/internal/control"
	"tesla/internal/dataset"
	"tesla/internal/mlp"
	"tesla/internal/model"
	"tesla/internal/testbed"
)

// Scale trades experiment fidelity for wall-clock time. The paper collects
// one month of training traces and two weeks of test traces; PaperScale
// reproduces that, while CIScale keeps every pipeline stage identical but
// shrinks the trace so the full suite runs in seconds.
type Scale struct {
	Name        string
	SweepDays   float64 // training+test trace duration
	TrainFrac   float64 // chronological train/test split
	ModelStride int     // window subsampling for TESLA's model
	RecursiveW  int     // AR window of the Lazic/Wang baselines
	MLP         mlp.Config
	Seed        uint64
}

// CIScale runs the full pipeline on a two-day trace.
func CIScale() Scale {
	cfg := mlp.DefaultConfig()
	cfg.Epochs = 25
	return Scale{
		Name:        "ci",
		SweepDays:   3,
		TrainFrac:   0.67,
		ModelStride: 1,
		RecursiveW:  1,
		MLP:         cfg,
		Seed:        11,
	}
}

// PaperScale mirrors §5.1: one month of training data, two weeks of test.
func PaperScale() Scale {
	return Scale{
		Name:        "paper",
		SweepDays:   44,
		TrainFrac:   30.0 / 44.0,
		ModelStride: 7, // coprime with the 5-step set-point hold

		RecursiveW: 1,
		MLP:        mlp.DefaultConfig(),
		Seed:       11,
	}
}

// Artifacts bundles everything trained from the sweep trace.
type Artifacts struct {
	Scale  Scale
	Sweep  *dataset.Trace
	Train  *dataset.Trace
	Test   *dataset.Trace
	Model  *model.Model         // TESLA's DC time-series model
	Lazic  *baselines.Recursive // recursive OLS baseline (Table 3 + MPC)
	Wang   *baselines.Recursive // recursive MLP baseline (Table 3)
	TSRL   *control.TSRL        // offline-RL policy (Table 5)
	TBConf testbed.Config
}

// Prepare collects the training sweep and fits every model the evaluation
// needs. Pass wantWang=false to skip the (slow) MLP baseline when only the
// end-to-end experiments are required.
func Prepare(sc Scale, wantWang bool) (*Artifacts, error) {
	tbCfg := testbed.DefaultConfig()
	sweep, err := dataset.CollectSweep(tbCfg, dataset.DefaultSweep(sc.SweepDays, sc.Seed))
	if err != nil {
		return nil, fmt.Errorf("experiment: collecting sweep: %w", err)
	}
	train, test := sweep.Split(sc.TrainFrac)

	a := &Artifacts{Scale: sc, Sweep: sweep, Train: train, Test: test, TBConf: tbCfg}

	mCfg := model.DefaultConfig(11)
	mCfg.Stride = sc.ModelStride
	if a.Model, err = model.Train(train, mCfg); err != nil {
		return nil, fmt.Errorf("experiment: training TESLA model: %w", err)
	}
	if a.Lazic, err = baselines.TrainLazic(train, sc.RecursiveW, sc.ModelStride); err != nil {
		return nil, fmt.Errorf("experiment: training Lazic baseline: %w", err)
	}
	if wantWang {
		if a.Wang, err = baselines.TrainWangMLP(train, sc.RecursiveW, sc.ModelStride, sc.MLP); err != nil {
			return nil, fmt.Errorf("experiment: training Wang baseline: %w", err)
		}
	}
	tsrlCfg := control.DefaultTSRLConfig(tbCfg.ACU.SetpointMinC, tbCfg.ACU.SetpointMaxC)
	if a.TSRL, err = control.TrainTSRL(train, tsrlCfg); err != nil {
		return nil, fmt.Errorf("experiment: training TSRL baseline: %w", err)
	}
	return a, nil
}

// NewTESLAPolicy builds the full TESLA controller from the artifacts.
func (a *Artifacts) NewTESLAPolicy(seed uint64) (*control.TESLA, error) {
	cfg := control.DefaultTESLAConfig(a.TBConf.ACU.SetpointMinC, a.TBConf.ACU.SetpointMaxC)
	cfg.Seed = seed
	return control.NewTESLA(a.Model, cfg)
}

// NewPolicy builds a fresh policy instance by table name ("fixed", "tesla",
// "lazic", "tsrl", "mpc", "modelfree"). Sweeps that fan runs out in parallel
// call it once per run: tesla, lazic, mpc and modelfree controllers carry
// per-run state so each run needs its own instance, while the returned TSRL
// policy is the shared trained table (its Decide only reads) and Fixed is a
// value.
func (a *Artifacts) NewPolicy(name string, seed uint64) (control.Policy, error) {
	switch name {
	case "fixed":
		return control.Fixed{SetpointC: 23}, nil
	case "tesla":
		return a.NewTESLAPolicy(seed)
	case "lazic":
		return a.NewLazicPolicy()
	case "tsrl":
		return a.TSRL, nil
	case "mpc":
		return a.NewMPCPolicy()
	case "modelfree":
		return a.NewModelFreePolicy()
	}
	return nil, fmt.Errorf("experiment: unknown policy %q", name)
}

// NewLazicPolicy builds the Lazic MPC controller from the artifacts.
func (a *Artifacts) NewLazicPolicy() (*control.Lazic, error) {
	coldIdx := make([]int, 11)
	for i := range coldIdx {
		coldIdx[i] = i
	}
	cfg := control.DefaultLazicConfig(a.TBConf.ACU.SetpointMinC, a.TBConf.ACU.SetpointMaxC, coldIdx)
	return control.NewLazic(a.Lazic, cfg)
}
