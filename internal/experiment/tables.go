package experiment

import (
	"fmt"
	"strings"

	"tesla/internal/baselines"
	"tesla/internal/forest"
	"tesla/internal/gbt"
	"tesla/internal/model"
	"tesla/internal/parallel"
	"tesla/internal/stats"
	"tesla/internal/workload"
)

// Table3Result reports DC-temperature MAPE per model (paper Table 3).
type Table3Result struct {
	TESLAMape float64
	LazicMape float64
	WangMape  float64 // NaN-free only when the Wang baseline was trained
	Windows   int
}

// String renders the table.
func (t Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: DC temperature MAPE (%d test windows)\n", t.Windows)
	fmt.Fprintf(&b, "  %-22s %8s\n", "Model", "MAPE(%)")
	fmt.Fprintf(&b, "  %-22s %8.2f\n", "TESLA (ours)", t.TESLAMape)
	fmt.Fprintf(&b, "  %-22s %8.2f\n", "Lazic et al. [20]", t.LazicMape)
	fmt.Fprintf(&b, "  %-22s %8.2f\n", "Wang et al. [42]", t.WangMape)
	return b.String()
}

// Table3 evaluates multi-horizon DC-temperature prediction on the test trace
// under the actually executed set-point sequence.
func Table3(a *Artifacts, stride int) (Table3Result, error) {
	if a.Wang == nil {
		return Table3Result{}, fmt.Errorf("experiment: Table 3 needs the Wang baseline (Prepare with wantWang=true)")
	}
	if stride < 1 {
		stride = 1
	}
	L := a.Model.Config().L
	test := a.Test

	var teslaP, lazicP, wangP, truth []float64
	windows := 0
	w := a.Lazic.W
	if a.Wang.W > w {
		w = a.Wang.W
	}
	start := L - 1
	if w-1 > start {
		start = w - 1
	}
	for t := start; t+L < test.Len(); t += stride {
		h, err := model.HistoryAt(test, t, L)
		if err != nil {
			return Table3Result{}, err
		}
		sps := test.Setpoint[t+1 : t+1+L]
		p, err := a.Model.PredictSeq(h, sps)
		if err != nil {
			return Table3Result{}, err
		}
		inL, err := baselines.RolloutInputAt(test, t, a.Lazic.W)
		if err != nil {
			return Table3Result{}, err
		}
		_, dcLazic, err := a.Lazic.Rollout(inL, sps)
		if err != nil {
			return Table3Result{}, err
		}
		inW, err := baselines.RolloutInputAt(test, t, a.Wang.W)
		if err != nil {
			return Table3Result{}, err
		}
		_, dcWang, err := a.Wang.Rollout(inW, sps)
		if err != nil {
			return Table3Result{}, err
		}
		for l := 1; l <= L; l++ {
			for k := 0; k < test.Nd(); k++ {
				teslaP = append(teslaP, p.DCTemps.At(l-1, k))
				lazicP = append(lazicP, dcLazic.At(l-1, k))
				wangP = append(wangP, dcWang.At(l-1, k))
				truth = append(truth, test.DCTemps[k][t+l])
			}
		}
		windows++
	}
	res := Table3Result{Windows: windows}
	var err error
	if res.TESLAMape, err = stats.MAPE(teslaP, truth); err != nil {
		return res, err
	}
	if res.LazicMape, err = stats.MAPE(lazicP, truth); err != nil {
		return res, err
	}
	if res.WangMape, err = stats.MAPE(wangP, truth); err != nil {
		return res, err
	}
	return res, nil
}

// Table4Result reports cooling-energy MAPE per model (paper Table 4).
type Table4Result struct {
	TESLAMape  float64
	MLPMape    float64
	GBTMape    float64
	ForestMape float64
	Windows    int
}

// String renders the table.
func (t Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: cooling energy MAPE (%d test windows)\n", t.Windows)
	fmt.Fprintf(&b, "  %-22s %8s\n", "Model", "MAPE(%)")
	fmt.Fprintf(&b, "  %-22s %8.2f\n", "TESLA (ours)", t.TESLAMape)
	fmt.Fprintf(&b, "  %-22s %8.2f\n", "MLP [38]", t.MLPMape)
	fmt.Fprintf(&b, "  %-22s %8.2f\n", "XGBoost [7]", t.GBTMape)
	fmt.Fprintf(&b, "  %-22s %8.2f\n", "Random Forest [26]", t.ForestMape)
	return b.String()
}

// Table4 trains the non-linear energy baselines on the training trace and
// benchmarks everything on the test trace.
func Table4(a *Artifacts, stride int) (Table4Result, error) {
	if stride < 1 {
		stride = 1
	}
	L := a.Model.Config().L

	xTrain, yTrain, err := baselines.BuildEnergyDataset(a.Train, L, stride)
	if err != nil {
		return Table4Result{}, err
	}
	mlpCfg := a.Scale.MLP
	mlpModel, err := baselines.TrainEnergyMLP(xTrain, yTrain, mlpCfg)
	if err != nil {
		return Table4Result{}, err
	}
	gbtModel, err := baselines.TrainEnergyGBT(xTrain, yTrain, gbt.DefaultConfig())
	if err != nil {
		return Table4Result{}, err
	}
	rfModel, err := baselines.TrainEnergyForest(xTrain, yTrain, forest.DefaultConfig())
	if err != nil {
		return Table4Result{}, err
	}

	xTest, yTest, err := baselines.BuildEnergyDataset(a.Test, L, stride)
	if err != nil {
		return Table4Result{}, err
	}
	var teslaP, mlpP, gbtP, rfP []float64
	// TESLA's predictions need the model's full history cascade.
	i := 0
	usable := make([]bool, len(yTest))
	for t := 0; t+L < a.Test.Len(); t += stride {
		if t >= L-1 {
			h, err := model.HistoryAt(a.Test, t, L)
			if err != nil {
				return Table4Result{}, err
			}
			p, err := a.Model.PredictSeq(h, a.Test.Setpoint[t+1:t+1+L])
			if err != nil {
				return Table4Result{}, err
			}
			teslaP = append(teslaP, p.EnergyKWh)
			usable[i] = true
		}
		i++
	}
	var truth []float64
	for i := 0; i < xTest.Rows; i++ {
		if !usable[i] {
			continue
		}
		row := xTest.Row(i)
		mlpP = append(mlpP, mlpModel.PredictEnergy(row))
		gbtP = append(gbtP, gbtModel.PredictEnergy(row))
		rfP = append(rfP, rfModel.PredictEnergy(row))
		truth = append(truth, yTest[i])
	}
	res := Table4Result{Windows: len(truth)}
	if res.TESLAMape, err = stats.MAPE(teslaP, truth); err != nil {
		return res, err
	}
	if res.MLPMape, err = stats.MAPE(mlpP, truth); err != nil {
		return res, err
	}
	if res.GBTMape, err = stats.MAPE(gbtP, truth); err != nil {
		return res, err
	}
	if res.ForestMape, err = stats.MAPE(rfP, truth); err != nil {
		return res, err
	}
	return res, nil
}

// Table5Row is one policy×load cell group of the end-to-end benchmark.
type Table5Row struct {
	Metrics
	SavingPct float64 // CE saving relative to the fixed 23 °C policy
}

// Table5Result is the full end-to-end benchmark (paper Table 5).
type Table5Result struct {
	Rows []Table5Row
}

// String renders the table grouped by load setting.
func (t Table5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: end-to-end performance (CE, CE saving, TSV, CI)\n")
	fmt.Fprintf(&b, "  %-7s %-7s %9s %10s %7s %7s\n", "Load", "Policy", "CE(kWh)", "Saving(%)", "TSV(%)", "CI(%)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-7s %-7s %9.2f %10.2f %7.2f %7.2f\n",
			r.Load, r.Policy, r.CEkWh, r.SavingPct, 100*r.TSVFrac, 100*r.CIFrac)
	}
	return b.String()
}

// Table5Config controls the end-to-end benchmark.
type Table5Config struct {
	EvalS   float64 // 43200 = the paper's 12 h
	WarmupS float64
	Seed    uint64
}

// DefaultTable5Config is the paper's 12-hour setup.
func DefaultTable5Config() Table5Config {
	return Table5Config{EvalS: 43200, WarmupS: 3600, Seed: 100}
}

// Table5 runs the four policies under the three load settings. The twelve
// policy×load cells are independent closed-loop simulations (each gets its
// own testbed, workload profile and policy instance from its cell seed), so
// they fan out over the worker pool; the CE-saving column is derived from
// the collected rows afterwards. Row order and values match the serial
// sweep exactly.
func Table5(a *Artifacts, cfg Table5Config) (Table5Result, error) {
	loads := []workload.Setting{workload.Idle, workload.Medium, workload.High}
	policies := []string{"fixed", "tesla", "lazic", "tsrl"}
	type cell struct {
		load   workload.Setting
		policy string
		seed   uint64
	}
	var cells []cell
	for _, load := range loads {
		for _, name := range policies {
			cells = append(cells, cell{load: load, policy: name, seed: cfg.Seed + uint64(load)})
		}
	}
	rows, err := parallel.MapErr(0, len(cells), func(i int) (Table5Row, error) {
		c := cells[i]
		p, err := a.NewPolicy(c.policy, c.seed)
		if err != nil {
			return Table5Row{}, err
		}
		rc := DefaultRunConfig(p, c.load, c.seed)
		rc.EvalS = cfg.EvalS
		rc.WarmupS = cfg.WarmupS
		_, m, err := Run(rc)
		if err != nil {
			return Table5Row{}, fmt.Errorf("experiment: Table 5 %s/%s: %w", c.policy, c.load, err)
		}
		return Table5Row{Metrics: m}, nil
	})
	if err != nil {
		return Table5Result{}, err
	}
	for li := range loads {
		fixCE := rows[li*len(policies)].CEkWh
		if fixCE <= 0 {
			continue
		}
		for pi := range policies {
			r := &rows[li*len(policies)+pi]
			r.SavingPct = 100 * (fixCE - r.CEkWh) / fixCE
		}
	}
	return Table5Result{Rows: rows}, nil
}
