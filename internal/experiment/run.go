// Package experiment is the evaluation harness: it runs closed-loop control
// experiments on the simulated testbed, computes the paper's end-to-end
// metrics (cooling energy, thermal-safety violation, cooling interruption),
// and regenerates every table and figure of the evaluation section (§5–6).
package experiment

import (
	"fmt"

	"tesla/internal/control"
	"tesla/internal/dataset"
	"tesla/internal/testbed"
	"tesla/internal/workload"
)

// Metrics are the end-to-end quantities of Table 5 for one 12-hour run.
type Metrics struct {
	Policy  string
	Load    workload.Setting
	Steps   int
	HoursH  float64
	CEkWh   float64 // cooling energy over the evaluation window
	TSVFrac float64 // fraction of steps with max cold-aisle > limit
	CIFrac  float64 // fraction of steps with ACU power < 100 W
	MeanSp  float64 // mean executed set-point
	MaxCold float64 // worst cold-aisle reading observed
}

// String renders the metrics like a Table 5 row.
func (m Metrics) String() string {
	return fmt.Sprintf("%-6s %-7s CE=%6.2f kWh TSV=%5.1f%% CI=%5.1f%% meanSp=%5.2f°C maxCold=%5.2f°C",
		m.Policy, m.Load, m.CEkWh, 100*m.TSVFrac, 100*m.CIFrac, m.MeanSp, m.MaxCold)
}

// RunConfig describes one closed-loop experiment.
type RunConfig struct {
	Testbed  testbed.Config
	Profile  workload.Profile
	Policy   control.Policy
	WarmupS  float64 // recorded warm-up under the initial set-point
	EvalS    float64 // evaluation window (43200 s = 12 h in the paper)
	InitSpC  float64 // set-point during warm-up
	ColdLimC float64 // TSV threshold (22 °C)
}

// DefaultRunConfig assembles the paper's 12-hour evaluation for one policy
// and load setting.
func DefaultRunConfig(p control.Policy, load workload.Setting, seed uint64) RunConfig {
	cfg := testbed.DefaultConfig()
	cfg.Seed = seed
	return RunConfig{
		Testbed:  cfg,
		Profile:  workload.NewDiurnal(load, 43200, seed),
		Policy:   p,
		WarmupS:  3600,
		EvalS:    43200,
		InitSpC:  23,
		ColdLimC: 22,
	}
}

// Run executes the closed loop and returns the recorded trace (warm-up
// included; Metrics cover only the evaluation window) plus the metrics.
func Run(rc RunConfig) (*dataset.Trace, Metrics, error) {
	tb, err := testbed.New(rc.Testbed)
	if err != nil {
		return nil, Metrics{}, err
	}
	tb.UseProfile(rc.Profile)
	tb.SetSetpoint(rc.InitSpC)
	return runLoopWithTrace(tb, rc)
}

// runLoopWithTrace drives a pre-built testbed (fault-injection experiments
// configure the sensor array before entering the loop).
func runLoopWithTrace(tb *testbed.Testbed, rc RunConfig) (*dataset.Trace, Metrics, error) {
	tr := newTraceFor(tb, rc)
	warmSteps := int(rc.WarmupS / rc.Testbed.SamplePeriodS)
	evalSteps := int(rc.EvalS / rc.Testbed.SamplePeriodS)
	if evalSteps < 1 {
		return nil, Metrics{}, fmt.Errorf("experiment: evaluation window shorter than one step")
	}

	// Warm-up: record telemetry under the initial set-point so policies have
	// history from the first evaluated step.
	for i := 0; i < warmSteps; i++ {
		tr.Append(tb.Advance())
	}

	m := Metrics{Policy: rc.Policy.Name(), HoursH: rc.EvalS / 3600}
	if d, ok := rc.Profile.(*workload.Diurnal); ok {
		m.Load = d.Setting
	}
	for i := 0; i < evalSteps; i++ {
		t := tr.Len() - 1
		sp := rc.Policy.Decide(tr, t)
		tb.SetSetpoint(sp)
		s := tb.Advance()
		tr.Append(s)

		m.Steps++
		m.CEkWh += s.ACUPowerKW * rc.Testbed.SamplePeriodS / 3600
		if s.MaxColdAisle > rc.ColdLimC {
			m.TSVFrac++
		}
		if s.Interrupted {
			m.CIFrac++
		}
		m.MeanSp += s.SetpointC
		if s.MaxColdAisle > m.MaxCold {
			m.MaxCold = s.MaxColdAisle
		}
	}
	m.TSVFrac /= float64(m.Steps)
	m.CIFrac /= float64(m.Steps)
	m.MeanSp /= float64(m.Steps)
	return tr, m, nil
}
