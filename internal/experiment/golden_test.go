package experiment

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"

	"tesla/internal/workload"
)

// goldenTrajectoryHash is the FNV-1a digest of the executed set-point
// sequence of a 60-step CI-scale TESLA run (seed 5, medium load). It pins the
// controller's end-to-end decisions: any change to the surrogate stack (gp,
// bo, mat) that moves a single control decision by a single bit changes this
// value.
//
// Re-pinning procedure (only for deliberate, reviewed numeric changes): run
// the test with TESLA_GOLDEN_DUMP=/tmp/golden.txt on the old and new code,
// compare the two trajectories (the test prints the max absolute set-point
// delta), document the delta in DESIGN.md, then update this constant to the
// printed hash.
//
// History: pinned for the cached/incremental-Cholesky surrogate overhaul.
// That PR replaced the acquisition's full joint posterior draw with an
// exact-in-law conditional factorization plus reused QMC base samples, which
// legitimately moves which candidates NEI probes: against the pre-overhaul
// trajectory 51/60 set-points moved, max |Δ| = 1.55 °C, with the
// thermal-safety and energy metrics tests unchanged (see DESIGN.md
// "Surrogate hot path").
const goldenTrajectoryHash uint64 = 0xd61807f343ba200c

// goldenSetpoints runs the pinned scenario and returns the executed
// set-points of the evaluation window.
func goldenSetpoints(t *testing.T) []float64 {
	t.Helper()
	art := sharedArtifacts(t)
	pol, err := art.NewPolicy("tesla", 5)
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig(pol, workload.Medium, 5)
	rc.WarmupS = 3600
	rc.EvalS = 3600
	tr, m, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Steps != 60 {
		t.Fatalf("golden scenario ran %d steps, want 60", m.Steps)
	}
	return tr.Setpoint[tr.Len()-m.Steps:]
}

// fnv1a folds float64 bit patterns into an FNV-1a digest (same construction
// as fleet.RoomResult.TrajectoryHash).
func fnv1a(vals []float64) uint64 {
	const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211
	hash := uint64(fnvOffset)
	for _, v := range vals {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			hash = (hash ^ (bits >> s & 0xff)) * fnvPrime
		}
	}
	return hash
}

// TestTESLATrajectoryGolden proves the control trajectory is bit-stable: the
// same seed and scenario must reproduce the pinned set-point sequence
// exactly, across machines and worker counts.
func TestTESLATrajectoryGolden(t *testing.T) {
	sps := goldenSetpoints(t)

	if path := os.Getenv("TESLA_GOLDEN_DUMP"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		for _, v := range sps {
			fmt.Fprintf(w, "%.17g\n", v)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		t.Logf("dumped %d set-points to %s (hash %#x)", len(sps), path, fnv1a(sps))
		return
	}

	// When a reference dump from another build is supplied, report the
	// trajectory delta instead of failing on the hash — this is the re-pinning
	// aid described on goldenTrajectoryHash.
	if path := os.Getenv("TESLA_GOLDEN_COMPARE"); path != "" {
		ref := readSetpoints(t, path)
		if len(ref) != len(sps) {
			t.Fatalf("reference has %d steps, run has %d", len(ref), len(sps))
		}
		var maxD float64
		moved := 0
		for i := range ref {
			d := math.Abs(ref[i] - sps[i])
			if d > 0 {
				moved++
			}
			if d > maxD {
				maxD = d
			}
		}
		t.Logf("trajectory delta vs %s: %d/%d steps moved, max |Δ| = %.6g °C; current hash %#x",
			path, moved, len(ref), maxD, fnv1a(sps))
		return
	}

	if h := fnv1a(sps); h != goldenTrajectoryHash {
		t.Fatalf("trajectory hash %#x != pinned %#x — a surrogate-stack change moved control decisions; "+
			"see goldenTrajectoryHash for the re-pinning procedure", h, goldenTrajectoryHash)
	}
}

func readSetpoints(t *testing.T, path string) []float64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
