package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure bundles the data behind one paper figure.
type Figure struct {
	ID      string // e.g. "fig3a"
	Caption string
	XLabel  string
	YLabel  string
	Series  []Series
}

// RenderASCII draws the figure as a fixed-size ASCII chart — enough to
// eyeball the shapes the paper's figures show without a plotting stack.
func (f *Figure) RenderASCII(w io.Writer, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("experiment: figure %s has no data", f.ID)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	if _, err := fmt.Fprintf(w, "%s: %s\n", f.ID, f.Caption); err != nil {
		return err
	}
	for si, s := range f.Series {
		if _, err := fmt.Fprintf(w, "  [%c] %s\n", marks[si%len(marks)], s.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  %8.3g ┤\n", ymax); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "           │%s\n", string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  %8.3g └%s\n", ymin, strings.Repeat("─", width)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "            %-12.4g %s %12.4g\n", xmin, center(f.XLabel, width-26), xmax)
	return err
}

// WriteCSV emits the figure data in long format (series,x,y).
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "series,%s,%s\n", safeCSV(f.XLabel), safeCSV(f.YLabel)); err != nil {
		return err
	}
	for _, s := range f.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", safeCSV(s.Name), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func safeCSV(s string) string {
	s = strings.ReplaceAll(s, ",", ";")
	if s == "" {
		return "value"
	}
	return s
}

func center(s string, width int) string {
	if width < len(s) {
		return s
	}
	pad := (width - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}
