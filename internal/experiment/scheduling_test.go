package experiment

import "testing"

func TestDeferralStudyMechanics(t *testing.T) {
	a := sharedArtifacts(t)
	study, err := RunDeferralStudy(a, 4, 51)
	if err != nil {
		t.Fatal(err)
	}
	// Both legs must finish every batch job (the window is sized so
	// deferral shifts work in time without dropping it).
	if study.Immediate.Completed != study.Jobs {
		t.Fatalf("immediate leg completed %d/%d jobs", study.Immediate.Completed, study.Jobs)
	}
	if study.Deferred.Completed != study.Jobs {
		t.Fatalf("deferred leg completed %d/%d jobs", study.Deferred.Completed, study.Jobs)
	}
	// Power-budget admission must strictly flatten the heat burst the
	// cooling system has to chase.
	if study.Deferred.PeakITKW >= study.Immediate.PeakITKW {
		t.Fatalf("deferral should lower peak IT power: %.2f vs %.2f",
			study.Deferred.PeakITKW, study.Immediate.PeakITKW)
	}
	if study.Immediate.CoolingKWh <= 0 || study.Deferred.CoolingKWh <= 0 {
		t.Fatalf("missing cooling energy accounting")
	}
	if study.String() == "" {
		t.Fatalf("study must render")
	}
}
