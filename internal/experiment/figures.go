package experiment

import (
	"fmt"

	"tesla/internal/control"
	"tesla/internal/dataset"
	"tesla/internal/testbed"
	"tesla/internal/workload"
)

// Figure2 reproduces the paper's Figure 2: the ACU power time series under a
// fixed 27 °C set-point, showing the variance induced by server-load and
// compressor-cycle noise even though the set-point never moves.
func Figure2(seed uint64) (*Figure, error) {
	cfg := testbed.DefaultConfig()
	cfg.Seed = seed
	tb, err := testbed.New(cfg)
	if err != nil {
		return nil, err
	}
	tb.UseProfile(workload.NewDiurnal(workload.Medium, 43200, seed))
	tb.SetSetpoint(27)
	tb.Warmup(4 * 3600)

	f := &Figure{
		ID:      "fig2",
		Caption: "ACU power time series with set-point fixed at 27°C",
		XLabel:  "elapsed minutes", YLabel: "ACU power (kW)",
	}
	s := Series{Name: "ACU power"}
	for i := 0; i < 90; i++ {
		sample := tb.Advance()
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, sample.ACUPowerKW)
	}
	f.Series = []Series{s}
	return f, nil
}

// Figure3 reproduces Figure 3: a forced cooling interruption (set-point
// jumped far above the inlet temperature) drives the max cold-aisle
// temperature up rapidly, and recovery after the set-point drops back takes
// roughly twice as long.
func Figure3(seed uint64) (*Figure, *Figure, error) {
	cfg := testbed.DefaultConfig()
	cfg.Seed = seed
	tb, err := testbed.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	tb.UseProfile(workload.Constant{Util: 0.35, Label: "fig3-load"})
	tb.SetSetpoint(22)
	tb.Warmup(4 * 3600)

	power := Series{Name: "ACU power"}
	cold := Series{Name: "max cold aisle"}
	for i := 0; i < 30; i++ {
		switch i {
		case 0:
			tb.SetSetpoint(34) // interruption: set-point far above inlet
		case 10:
			tb.SetSetpoint(20) // recovery
		}
		s := tb.Advance()
		power.X = append(power.X, float64(i))
		power.Y = append(power.Y, s.ACUPowerKW)
		cold.X = append(cold.X, float64(i))
		cold.Y = append(cold.Y, s.MaxColdAisle)
	}
	fa := &Figure{ID: "fig3a", Caption: "ACU power under cooling interruption (first 10 min)",
		XLabel: "elapsed minutes", YLabel: "ACU power (kW)", Series: []Series{power}}
	fb := &Figure{ID: "fig3b", Caption: "max cold aisle temperature: fast rise, slow recovery",
		XLabel: "elapsed minutes", YLabel: "temperature (°C)", Series: []Series{cold}}
	return fa, fb, nil
}

// Figure4 reproduces Figure 4: a set-point dip (28.5 → 27.5 → 28.6 over four
// minutes) costs extra ACU power even though the lower set-point is never
// reached.
func Figure4(seed uint64) (*Figure, *Figure, error) {
	cfg := testbed.DefaultConfig()
	cfg.PhysicsDtS = 1
	cfg.SamplePeriodS = 10 // finer sampling to resolve the 4-minute episode
	cfg.Seed = seed
	tb, err := testbed.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	tb.UseProfile(workload.Constant{Util: 0.3, Label: "fig4-load"})
	tb.SetSetpoint(28.5)
	tb.Warmup(4 * 3600)

	sp := Series{Name: "set-point"}
	inlet := Series{Name: "actual inlet temperature"}
	power := Series{Name: "ACU power"}
	steps := 5 * 60 / int(cfg.SamplePeriodS)
	for i := 0; i < steps; i++ {
		tMin := float64(i) * cfg.SamplePeriodS / 60
		switch {
		case tMin < 2:
			tb.SetSetpoint(28.5)
		case tMin < 4:
			tb.SetSetpoint(27.5)
		default:
			tb.SetSetpoint(28.6)
		}
		s := tb.Advance()
		sp.X = append(sp.X, tMin)
		sp.Y = append(sp.Y, s.SetpointC)
		inlet.X = append(inlet.X, tMin)
		inlet.Y = append(inlet.Y, mean(s.ACUTemps))
		power.X = append(power.X, tMin)
		power.Y = append(power.Y, s.ACUPowerKW)
	}
	fa := &Figure{ID: "fig4a", Caption: "set-point dip and actual inlet temperature",
		XLabel: "elapsed minutes", YLabel: "temperature (°C)", Series: []Series{sp, inlet}}
	fb := &Figure{ID: "fig4b", Caption: "ACU power responding to the never-achieved set-point",
		XLabel: "elapsed minutes", YLabel: "ACU power (kW)", Series: []Series{power}}
	return fa, fb, nil
}

// PolicyFigures reproduces Figures 9–12: a 12-hour medium-load run of the
// given policy, reporting (a) the computed set-point and actual inlet
// temperature, (b) ACU power, and (c) the max cold-aisle temperature against
// the 22 °C limit.
func PolicyFigures(p control.Policy, idPrefix string, evalS float64, seed uint64) ([]*Figure, Metrics, error) {
	rc := DefaultRunConfig(p, workload.Medium, seed)
	rc.EvalS = evalS
	tr, m, err := Run(rc)
	if err != nil {
		return nil, m, err
	}
	start := tr.Len() - m.Steps
	sp := Series{Name: "computed set-point"}
	inlet := Series{Name: "actual inlet temperature"}
	power := Series{Name: "ACU power"}
	cold := Series{Name: "max cold aisle temperature"}
	limit := Series{Name: "cold aisle limit"}
	for i := start; i < tr.Len(); i++ {
		h := (tr.TimeS[i] - tr.TimeS[start]) / 3600
		sp.X = append(sp.X, h)
		sp.Y = append(sp.Y, tr.Setpoint[i])
		var a float64
		for _, s := range tr.ACUTemps {
			a += s[i]
		}
		inlet.X = append(inlet.X, h)
		inlet.Y = append(inlet.Y, a/float64(tr.Na()))
		power.X = append(power.X, h)
		power.Y = append(power.Y, tr.ACUPower[i])
		cold.X = append(cold.X, h)
		cold.Y = append(cold.Y, tr.MaxCold[i])
		limit.X = append(limit.X, h)
		limit.Y = append(limit.Y, 22)
	}
	figs := []*Figure{
		{ID: idPrefix + "a", Caption: p.Name() + ": set-point and actual inlet temperature",
			XLabel: "elapsed hours", YLabel: "temperature (°C)", Series: []Series{sp, inlet}},
		{ID: idPrefix + "b", Caption: p.Name() + ": ACU power",
			XLabel: "elapsed hours", YLabel: "ACU power (kW)", Series: []Series{power}},
		{ID: idPrefix + "c", Caption: p.Name() + ": max cold aisle temperature vs limit",
			XLabel: "elapsed hours", YLabel: "temperature (°C)", Series: []Series{cold, limit}},
	}
	return figs, m, nil
}

// Figure8 reproduces Figure 8: the average server power over a TESLA-driven
// medium-load run, and snapshots of the Bayesian optimizer's mean objective
// and constraint functions at two time instants.
func Figure8(a *Artifacts, evalS float64, seed uint64) ([]*Figure, error) {
	tesla, err := a.NewTESLAPolicy(seed)
	if err != nil {
		return nil, err
	}
	rc := DefaultRunConfig(tesla, workload.Medium, seed)
	rc.EvalS = evalS

	tb, err := testbed.New(rc.Testbed)
	if err != nil {
		return nil, err
	}
	tb.UseProfile(rc.Profile)
	tb.SetSetpoint(rc.InitSpC)
	tr := dataset.NewTrace(rc.Testbed.SamplePeriodS, len(tb.Sensors.ACU), len(tb.Sensors.DC))
	for i := 0; i < int(rc.WarmupS/rc.Testbed.SamplePeriodS); i++ {
		tr.Append(tb.Advance())
	}

	evalSteps := int(rc.EvalS / rc.Testbed.SamplePeriodS)
	snapAt := map[int]bool{evalSteps / 3: true, 2 * evalSteps / 3: true}
	powerSeries := Series{Name: "average server power"}
	var snaps []*Figure
	for i := 0; i < evalSteps; i++ {
		t := tr.Len() - 1
		sp := tesla.Decide(tr, t)
		if snapAt[i] {
			if res := tesla.LastResult(); res != nil {
				hours := float64(i) * rc.Testbed.SamplePeriodS / 3600
				obj := Series{Name: fmt.Sprintf("objective @%.1fh", hours)}
				con := Series{Name: fmt.Sprintf("constraint @%.1fh", hours)}
				lo, hi := rc.Testbed.ACU.SetpointMinC, rc.Testbed.ACU.SetpointMaxC
				for x := lo; x <= hi+1e-9; x += 0.25 {
					om, _ := res.ObjGP.Posterior(x)
					cm, _ := res.ConGP.Posterior(x)
					obj.X = append(obj.X, x)
					obj.Y = append(obj.Y, -om) // paper plots the maximized (negated) objective
					con.X = append(con.X, x)
					con.Y = append(con.Y, cm)
				}
				snaps = append(snaps, &Figure{
					ID:      fmt.Sprintf("fig8b-%d", len(snaps)+1),
					Caption: fmt.Sprintf("GP mean objective and constraint at %.1f h (chosen %.2f°C)", hours, res.X),
					XLabel:  "set-point (°C)", YLabel: "GP mean",
					Series: []Series{obj, con},
				})
			}
		}
		tb.SetSetpoint(sp)
		s := tb.Advance()
		tr.Append(s)
		powerSeries.X = append(powerSeries.X, float64(i)*rc.Testbed.SamplePeriodS/3600)
		powerSeries.Y = append(powerSeries.Y, s.AvgServerKW)
	}
	figs := []*Figure{{
		ID:      "fig8a",
		Caption: "average server power over the testing period (medium load)",
		XLabel:  "elapsed hours", YLabel: "average server power (kW)",
		Series: []Series{powerSeries},
	}}
	figs = append(figs, snaps...)
	return figs, nil
}

func mean(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}
