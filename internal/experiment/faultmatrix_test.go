package experiment

import (
	"reflect"
	"strings"
	"testing"

	"tesla/internal/faults"
	"tesla/internal/safety"
	"tesla/internal/workload"
)

func TestFaultMatrixCoverageAndSafety(t *testing.T) {
	a := sharedArtifacts(t)
	fm, err := RunFaultMatrix(a, workload.Medium, 5400, 17)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(faults.Matrix(0, 5400, 17)); len(fm.Rows) != want {
		t.Fatalf("%d rows, want %d", len(fm.Rows), want)
	}
	if fm.Healthy.CEkWh <= 0 || fm.Healthy.Steps == 0 {
		t.Fatalf("healthy baseline empty: %+v", fm.Healthy)
	}
	if fm.HealthyTrueTSV != 0 {
		t.Fatalf("healthy supervised baseline has %.2f%% true violations", 100*fm.HealthyTrueTSV)
	}

	classes := map[string]bool{}
	for _, r := range fm.Rows {
		classes[r.Class] = true
		if r.Steps != fm.Healthy.Steps {
			t.Fatalf("%s ran %d steps, healthy ran %d", r.Scenario, r.Steps, fm.Healthy.Steps)
		}
		// The acceptance bar: no physical ASHRAE violation may be
		// attributable to faulty telemetry. Sensor and telemetry faults leave
		// the plant untouched, so the ground-truth violation fraction must be
		// exactly zero there.
		if (r.Class == "sensor" || r.Class == "telemetry") && r.TrueTSVFrac > 0 {
			t.Errorf("%s (%s): %.2f%% true violations on corrupted telemetry",
				r.Scenario, r.Class, 100*r.TrueTSVFrac)
		}
	}
	for _, c := range []string{"sensor", "actuator", "telemetry"} {
		if !classes[c] {
			t.Errorf("fault class %q missing from the matrix", c)
		}
	}

	byName := map[string]FaultRow{}
	for _, r := range fm.Rows {
		byName[r.Scenario] = r
	}
	// The compressor cutout physically removes cooling: the supervisor must
	// notice (escalate at least to the backstop) and then recover within the
	// second half of the window.
	cut, ok := byName["compressor-cutout"]
	if !ok {
		t.Fatal("compressor-cutout scenario missing")
	}
	if cut.MaxLevel < safety.LevelBackstop {
		t.Errorf("cutout peaked at %v, want at least backstop", cut.MaxLevel)
	}
	if cut.RecoverySteps < 0 {
		t.Error("supervisor never recovered from the compressor cutout")
	}
	// A frozen telemetry feed must be detected (escalation) even though the
	// plant itself is healthy.
	if gap, ok := byName["telemetry-gap"]; !ok || gap.Escalations == 0 {
		t.Errorf("telemetry gap went unnoticed: %+v", gap)
	}
	if !strings.Contains(fm.String(), "compressor-cutout") {
		t.Error("String() must render every scenario")
	}
}

// TestFaultMatrixDeterministic asserts bit-identical sweeps across runs; CI
// executes this under -cpu 1,4 so the comparison also spans worker counts.
func TestFaultMatrixDeterministic(t *testing.T) {
	a := sharedArtifacts(t)
	run := func() FaultMatrix {
		fm, err := RunFaultMatrix(a, workload.Medium, 3600, 23)
		if err != nil {
			t.Fatal(err)
		}
		return fm
	}
	fm1, fm2 := run(), run()
	if !reflect.DeepEqual(fm1, fm2) {
		t.Fatalf("fault matrix not reproducible:\n%v\nvs\n%v", fm1, fm2)
	}
}
