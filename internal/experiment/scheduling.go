package experiment

import (
	"fmt"

	"tesla/internal/dataset"
	"tesla/internal/testbed"
	"tesla/internal/workload"
)

// The paper's §8 future-work direction: integrate TESLA with server-side
// energy-aware workload management (§7 discusses Thunderbolt-style power
// capping as the complementary mechanism). DeferralStudy runs the TESLA
// controller twice over the same bursty batch workload — once admitting
// every job immediately and once gating deferrable jobs on an IT power
// budget — and compares peak IT power, cooling energy and job completion.
// The deferring scheduler's signal is generic headroom; here it is the
// remaining power budget in kW-equivalents.

// DeferralOutcome is one leg of the study.
type DeferralOutcome struct {
	CoolingKWh float64
	PeakITKW   float64
	Completed  int
	TSVFrac    float64
	MeanSp     float64
}

// DeferralStudy is the paired comparison.
type DeferralStudy struct {
	Immediate DeferralOutcome // all jobs admitted at submission time
	Deferred  DeferralOutcome // deferrable jobs gated on thermal headroom
	Jobs      int
}

// String summarizes the study.
func (s DeferralStudy) String() string {
	return fmt.Sprintf(
		"deferral study (%d jobs): immediate CE=%.2f kWh peakIT=%.2f kW done=%d | deferred CE=%.2f kWh peakIT=%.2f kW done=%d",
		s.Jobs, s.Immediate.CoolingKWh, s.Immediate.PeakITKW, s.Immediate.Completed,
		s.Deferred.CoolingKWh, s.Deferred.PeakITKW, s.Deferred.Completed)
}

// RunDeferralStudy executes both legs. The workload is a base load plus a
// burst of deferrable batch jobs submitted together at one hour in; the
// window is long enough for every job to complete in both legs, so the IT
// work done is identical and only its *timing* differs.
func RunDeferralStudy(a *Artifacts, hours float64, seed uint64) (DeferralStudy, error) {
	study := DeferralStudy{Jobs: 6}
	runLeg := func(gate bool) (DeferralOutcome, error) {
		var out DeferralOutcome
		cfg := testbed.DefaultConfig()
		cfg.Seed = seed
		tb, err := testbed.New(cfg)
		if err != nil {
			return out, err
		}
		orch := workload.NewOrchestrator(tb.Cluster)

		// Admission signal: remaining IT power budget (kW). The scheduler's
		// HeadroomC threshold gates admission at 1 kW of remaining budget.
		const powerBudgetKW = 5.2
		latestHeadroom := powerBudgetKW
		sched := workload.NewDeferringScheduler(orch, func() float64 {
			if !gate {
				return 100 // never defer
			}
			return latestHeadroom
		})
		tb.UseOrchestrator(orch)

		controller, err := a.NewTESLAPolicy(seed)
		if err != nil {
			return out, err
		}

		tr := dataset.NewTrace(cfg.SamplePeriodS, len(tb.Sensors.ACU), len(tb.Sensors.DC))
		tb.SetSetpoint(23)
		// Baseline interactive load on every node.
		if err := sched.Submit(workload.DeferredJob{
			Job: workload.Job{Name: "interactive", Level: 0.15, DurationS: hours*3600 + 7200, Parallelism: 21},
		}, 0); err != nil {
			return out, err
		}
		warm := 60
		steps := int(hours * 3600 / cfg.SamplePeriodS)
		for i := 0; i < warm+steps; i++ {
			now := tb.TimeS()
			if i == warm+60 {
				// The burst: six heavy batch jobs land at once.
				for j := 0; j < study.Jobs; j++ {
					if err := sched.Submit(workload.DeferredJob{
						Job: workload.Job{
							Name:        fmt.Sprintf("batch-%d", j),
							Level:       0.55,
							DurationS:   2400,
							Parallelism: 3,
						},
						Deferrable: true,
						MaxDeferS:  2.5 * 3600,
					}, now); err != nil {
						return out, err
					}
				}
			}
			if err := sched.Tick(now); err != nil {
				return out, err
			}
			if i >= warm {
				sp := controller.Decide(tr, tr.Len()-1)
				tb.SetSetpoint(sp)
			}
			s := tb.Advance()
			tr.Append(s)
			latestHeadroom = powerBudgetKW - s.TotalIT
			if i >= warm {
				out.CoolingKWh += s.ACUPowerKW * cfg.SamplePeriodS / 3600
				out.MeanSp += s.SetpointC
				if s.TotalIT > out.PeakITKW {
					out.PeakITKW = s.TotalIT
				}
				if s.MaxColdAisle > 22 {
					out.TSVFrac++
				}
			}
		}
		out.TSVFrac /= float64(steps)
		out.MeanSp /= float64(steps)
		for j := 0; j < study.Jobs; j++ {
			out.Completed += orch.Completed[fmt.Sprintf("batch-%d", j)] / 3 // pods per job
		}
		return out, nil
	}

	var err error
	if study.Immediate, err = runLeg(false); err != nil {
		return study, fmt.Errorf("experiment: immediate leg: %w", err)
	}
	if study.Deferred, err = runLeg(true); err != nil {
		return study, fmt.Errorf("experiment: deferred leg: %w", err)
	}
	return study, nil
}
