package experiment

import (
	"strings"
	"testing"

	"tesla/internal/workload"
)

func TestNewAblatedTESLAVariants(t *testing.T) {
	a := sharedArtifacts(t)
	for _, ab := range AllAblations() {
		if _, err := a.NewAblatedTESLA(ab, 1); err != nil {
			t.Fatalf("%s: %v", ab, err)
		}
	}
	if _, err := a.NewAblatedTESLA(Ablation("bogus"), 1); err == nil {
		t.Fatalf("unknown ablation accepted")
	}
}

func TestRunAblationsShape(t *testing.T) {
	a := sharedArtifacts(t)
	study, err := RunAblations(a, workload.Medium, 5400, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Results) != len(AllAblations()) {
		t.Fatalf("%d results, want %d", len(study.Results), len(AllAblations()))
	}
	byName := map[Ablation]AblationResult{}
	for _, r := range study.Results {
		byName[r.Ablation] = r
		if r.CEkWh <= 0 || r.Steps == 0 {
			t.Fatalf("%s produced empty metrics", r.Ablation)
		}
	}
	// Every variant must report a churn value (the closed-loop comparison
	// itself is seed-dependent: the buffer reshapes the raw sequence, so the
	// low-pass guarantee is asserted on the buffer directly in
	// control.TestSmoothingBufferReducesChurn).
	for _, r := range study.Results {
		if r.SetpointChurnC < 0 {
			t.Fatalf("%s churn negative", r.Ablation)
		}
	}
	if _, ok := byName[AblationNoSmoothing]; !ok {
		t.Fatalf("no-smoothing variant missing")
	}
	if !strings.Contains(study.String(), "no-smoothing") {
		t.Fatalf("study must render all variants")
	}
}

func TestFaultInjectionStuckHighSensorStaysSafe(t *testing.T) {
	a := sharedArtifacts(t)
	res, err := RunFaultInjection(a, workload.Medium, 5400, 17)
	if err != nil {
		t.Fatal(err)
	}
	// A cold-aisle probe stuck near the limit makes the measured constraint
	// pessimistic: the controller must remain thermally safe.
	if res.Faulty.TSVFrac > 0 {
		t.Fatalf("stuck-high sensor must not cause violations: %.2f%%", 100*res.Faulty.TSVFrac)
	}
	// And it should respond by cooling at least as hard as the healthy run
	// (the conservative direction).
	if res.Faulty.MeanSp > res.Healthy.MeanSp+0.5 {
		t.Fatalf("stuck-high probe should push the set-point down, not up: %.2f vs %.2f",
			res.Faulty.MeanSp, res.Healthy.MeanSp)
	}
}
