package experiment

import (
	"fmt"
	"math"
	"strings"

	"tesla/internal/control"
	"tesla/internal/dataset"
	"tesla/internal/parallel"
	"tesla/internal/testbed"
	"tesla/internal/workload"
)

// Ablation names one of the design-choice studies listed in DESIGN.md.
type Ablation string

// The ablations: each removes one ingredient of the TESLA controller.
const (
	// AblationNone is the full controller (reference).
	AblationNone Ablation = "full"
	// AblationNoInterruptionPenalty drops D̂ from the objective (eq. 8
	// reduced to cooling energy only — the Lazic/TSRL objective).
	AblationNoInterruptionPenalty Ablation = "no-interruption-penalty"
	// AblationNoSmoothing shrinks the §3.4 buffer to length 1.
	AblationNoSmoothing Ablation = "no-smoothing"
	// AblationNoErrorAwareness trusts the model's point predictions:
	// feasibility margin and constraint margin off.
	AblationNoErrorAwareness Ablation = "no-error-awareness"
)

// AllAblations lists every variant including the reference.
func AllAblations() []Ablation {
	return []Ablation{
		AblationNone,
		AblationNoInterruptionPenalty,
		AblationNoSmoothing,
		AblationNoErrorAwareness,
	}
}

// NewAblatedTESLA builds a TESLA controller with one ingredient removed.
func (a *Artifacts) NewAblatedTESLA(ab Ablation, seed uint64) (*control.TESLA, error) {
	cfg := control.DefaultTESLAConfig(a.TBConf.ACU.SetpointMinC, a.TBConf.ACU.SetpointMaxC)
	cfg.Seed = seed
	switch ab {
	case AblationNone:
	case AblationNoInterruptionPenalty:
		cfg.InterruptionWeight = 0
	case AblationNoSmoothing:
		cfg.SmoothN = 1
	case AblationNoErrorAwareness:
		cfg.BO.FeasProb = 0.5
		cfg.ConstraintMarginC = 0
	default:
		return nil, fmt.Errorf("experiment: unknown ablation %q", ab)
	}
	return control.NewTESLA(a.Model, cfg)
}

// AblationResult is one variant's end-to-end outcome.
type AblationResult struct {
	Ablation Ablation
	Metrics
	// SetpointChurnC is the mean absolute step-to-step set-point change —
	// the churn the smoothing buffer exists to suppress (§3.4).
	SetpointChurnC float64
}

// AblationStudy runs every variant under the same load and seed.
type AblationStudy struct {
	Load    workload.Setting
	Results []AblationResult
}

// String renders the study as a table.
func (s AblationStudy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation study (%s load)\n", s.Load)
	fmt.Fprintf(&b, "  %-26s %9s %7s %7s %11s\n", "variant", "CE(kWh)", "TSV(%)", "CI(%)", "churn(°C/m)")
	for _, r := range s.Results {
		fmt.Fprintf(&b, "  %-26s %9.2f %7.2f %7.2f %11.3f\n",
			r.Ablation, r.CEkWh, 100*r.TSVFrac, 100*r.CIFrac, r.SetpointChurnC)
	}
	return b.String()
}

// RunAblations executes the study with identical testbeds per variant. The
// variants are independent closed-loop runs off the same seed, so they fan
// out over the worker pool; results come back in AllAblations order.
func RunAblations(a *Artifacts, load workload.Setting, evalS float64, seed uint64) (AblationStudy, error) {
	study := AblationStudy{Load: load}
	abs := AllAblations()
	results, err := parallel.MapErr(0, len(abs), func(i int) (AblationResult, error) {
		ab := abs[i]
		p, err := a.NewAblatedTESLA(ab, seed)
		if err != nil {
			return AblationResult{}, err
		}
		rc := DefaultRunConfig(p, load, seed)
		rc.EvalS = evalS
		tr, m, err := Run(rc)
		if err != nil {
			return AblationResult{}, fmt.Errorf("experiment: ablation %q: %w", ab, err)
		}
		res := AblationResult{Ablation: ab, Metrics: m}
		// Set-point churn: mean absolute step-to-step change over the
		// evaluation window (the trend cancels out of first differences).
		start := tr.Len() - m.Steps
		var churn float64
		for i := start + 1; i < tr.Len(); i++ {
			churn += math.Abs(tr.Setpoint[i] - tr.Setpoint[i-1])
		}
		if m.Steps > 1 {
			churn /= float64(m.Steps - 1)
		}
		res.SetpointChurnC = churn
		return res, nil
	})
	if err != nil {
		return study, err
	}
	study.Results = results
	return study, nil
}

// FaultInjectionResult reports controller behaviour with a failed sensor.
type FaultInjectionResult struct {
	Healthy Metrics
	Faulty  Metrics
	// StuckSensor is the failed cold-aisle DC sensor index; StuckAtC its
	// frozen reading.
	StuckSensor int
	StuckAtC    float64
}

// RunFaultInjection runs TESLA twice under the same load: once healthy and
// once with a cold-aisle sensor stuck at a high reading. A stuck-high probe
// makes the measured constraint pessimistic, so a robust controller must
// stay safe (possibly at an energy cost) rather than destabilize.
func RunFaultInjection(a *Artifacts, load workload.Setting, evalS float64, seed uint64) (FaultInjectionResult, error) {
	out := FaultInjectionResult{StuckSensor: 5, StuckAtC: 21.5}

	runOnce := func(inject bool) (Metrics, error) {
		p, err := a.NewTESLAPolicy(seed)
		if err != nil {
			return Metrics{}, err
		}
		rc := DefaultRunConfig(p, load, seed)
		rc.EvalS = evalS
		tb, err := testbed.New(rc.Testbed)
		if err != nil {
			return Metrics{}, err
		}
		tb.UseProfile(rc.Profile)
		tb.SetSetpoint(rc.InitSpC)
		if inject {
			tb.Sensors.FailDC(out.StuckSensor, out.StuckAtC)
		}
		_, m, err := runLoopWithTrace(tb, rc)
		return m, err
	}

	// The healthy and faulty runs share nothing but the (immutable) trained
	// artifacts, so they run concurrently.
	ms, err := parallel.MapErr(0, 2, func(i int) (Metrics, error) {
		return runOnce(i == 1)
	})
	if err != nil {
		return out, err
	}
	out.Healthy, out.Faulty = ms[0], ms[1]
	return out, nil
}

// newTraceFor allocates a trace sized to a testbed's sensor deployment.
func newTraceFor(tb *testbed.Testbed, rc RunConfig) *dataset.Trace {
	return dataset.NewTrace(rc.Testbed.SamplePeriodS, len(tb.Sensors.ACU), len(tb.Sensors.DC))
}
