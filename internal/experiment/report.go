package experiment

import (
	"fmt"
	"io"
	"time"
)

// Report renders a full evaluation (tables + figure summaries) as markdown,
// so a run of the harness leaves a reviewable artifact behind. teslabench
// writes it with -report.
type Report struct {
	Title     string
	ScaleName string
	Generated time.Time

	Table3 *Table3Result
	Table4 *Table4Result
	Table5 *Table5Result
	Study  *AblationStudy
	Fault  *FaultInjectionResult
	Matrix *FaultMatrix
	Sched  *FleetSchedulingStudy
}

// WriteMarkdown renders every populated section.
func (r *Report) WriteMarkdown(w io.Writer) error {
	title := r.Title
	if title == "" {
		title = "TESLA evaluation report"
	}
	if _, err := fmt.Fprintf(w, "# %s\n\nscale: %s", title, r.ScaleName); err != nil {
		return err
	}
	if !r.Generated.IsZero() {
		if _, err := fmt.Fprintf(w, " · generated %s", r.Generated.Format(time.RFC3339)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	if r.Table3 != nil {
		if _, err := fmt.Fprintf(w, "\n## Table 3 — DC temperature MAPE (%d windows)\n\n", r.Table3.Windows); err != nil {
			return err
		}
		if err := writeMDTable(w,
			[]string{"Model", "MAPE (%)"},
			[][]string{
				{"TESLA (ours)", fmt.Sprintf("%.2f", r.Table3.TESLAMape)},
				{"Lazic et al. [20]", fmt.Sprintf("%.2f", r.Table3.LazicMape)},
				{"Wang et al. [42]", fmt.Sprintf("%.2f", r.Table3.WangMape)},
			}); err != nil {
			return err
		}
	}
	if r.Table4 != nil {
		if _, err := fmt.Fprintf(w, "\n## Table 4 — cooling energy MAPE (%d windows)\n\n", r.Table4.Windows); err != nil {
			return err
		}
		if err := writeMDTable(w,
			[]string{"Model", "MAPE (%)"},
			[][]string{
				{"TESLA (ours)", fmt.Sprintf("%.2f", r.Table4.TESLAMape)},
				{"MLP [38]", fmt.Sprintf("%.2f", r.Table4.MLPMape)},
				{"XGBoost [7]", fmt.Sprintf("%.2f", r.Table4.GBTMape)},
				{"Random Forest [26]", fmt.Sprintf("%.2f", r.Table4.ForestMape)},
			}); err != nil {
			return err
		}
	}
	if r.Table5 != nil {
		if _, err := fmt.Fprintf(w, "\n## Table 5 — end-to-end performance\n\n"); err != nil {
			return err
		}
		rows := make([][]string, 0, len(r.Table5.Rows))
		for _, row := range r.Table5.Rows {
			rows = append(rows, []string{
				row.Load.String(), row.Policy,
				fmt.Sprintf("%.2f", row.CEkWh),
				fmt.Sprintf("%.2f", row.SavingPct),
				fmt.Sprintf("%.2f", 100*row.TSVFrac),
				fmt.Sprintf("%.2f", 100*row.CIFrac),
			})
		}
		if err := writeMDTable(w,
			[]string{"Load", "Policy", "CE (kWh)", "Saving (%)", "TSV (%)", "CI (%)"}, rows); err != nil {
			return err
		}
	}
	if r.Study != nil {
		if _, err := fmt.Fprintf(w, "\n## Ablations (%s load)\n\n", r.Study.Load); err != nil {
			return err
		}
		rows := make([][]string, 0, len(r.Study.Results))
		for _, res := range r.Study.Results {
			rows = append(rows, []string{
				string(res.Ablation),
				fmt.Sprintf("%.2f", res.CEkWh),
				fmt.Sprintf("%.2f", 100*res.TSVFrac),
				fmt.Sprintf("%.2f", 100*res.CIFrac),
				fmt.Sprintf("%.3f", res.SetpointChurnC),
			})
		}
		if err := writeMDTable(w,
			[]string{"Variant", "CE (kWh)", "TSV (%)", "CI (%)", "Churn (°C/min)"}, rows); err != nil {
			return err
		}
	}
	if r.Fault != nil {
		if _, err := fmt.Fprintf(w, "\n## Fault injection — cold-aisle sensor %d stuck at %.1f °C\n\n",
			r.Fault.StuckSensor, r.Fault.StuckAtC); err != nil {
			return err
		}
		if err := writeMDTable(w,
			[]string{"Run", "CE (kWh)", "TSV (%)", "Mean set-point (°C)"},
			[][]string{
				{"healthy", fmt.Sprintf("%.2f", r.Fault.Healthy.CEkWh),
					fmt.Sprintf("%.2f", 100*r.Fault.Healthy.TSVFrac),
					fmt.Sprintf("%.2f", r.Fault.Healthy.MeanSp)},
				{"faulty", fmt.Sprintf("%.2f", r.Fault.Faulty.CEkWh),
					fmt.Sprintf("%.2f", 100*r.Fault.Faulty.TSVFrac),
					fmt.Sprintf("%.2f", r.Fault.Faulty.MeanSp)},
			}); err != nil {
			return err
		}
	}
	if r.Matrix != nil {
		if _, err := fmt.Fprintf(w, "\n## Fault matrix — supervised TESLA (%s load)\n\n"+
			"Healthy supervised baseline: CE %.2f kWh, true TSV %.2f%%. \"True TSV\" scores\n"+
			"the ground-truth cold-aisle maximum, immune to the injected telemetry\n"+
			"corruption — only the excess over the healthy baseline is attributable to a\n"+
			"fault; recovery is the time from the fault clearing until the supervisor\n"+
			"returns to its normal stage with the plant inside the limit.\n\n",
			r.Matrix.Load, r.Matrix.Healthy.CEkWh, 100*r.Matrix.HealthyTrueTSV); err != nil {
			return err
		}
		rows := make([][]string, 0, len(r.Matrix.Rows))
		for _, row := range r.Matrix.Rows {
			rec := "never"
			if row.RecoverySteps >= 0 {
				rec = fmt.Sprintf("%d min", row.RecoverySteps)
			}
			rows = append(rows, []string{
				row.Scenario, row.Class,
				fmt.Sprintf("%.2f", 100*row.TSVFrac),
				fmt.Sprintf("%.2f", 100*row.TrueTSVFrac),
				fmt.Sprintf("%+.2f", row.EnergyDeltaKWh),
				rec,
				fmt.Sprintf("%d", row.Escalations),
				row.MaxLevel.String(),
			})
		}
		if err := writeMDTable(w,
			[]string{"Scenario", "Class", "TSV (%)", "True TSV (%)", "ΔCE (kWh)", "Recovery", "Escalations", "Max level"},
			rows); err != nil {
			return err
		}
	}
	if r.Sched != nil {
		if _, err := fmt.Fprintf(w, "\n## Fleet scheduling study — %d heterogeneous rooms × %d batch jobs\n\n"+
			"Joint score = cooling energy (kWh) + 0.25 × true-violation room-steps: the\n"+
			"co-optimization objective. Scheduler modes: none = immediate round-robin\n"+
			"placement, defer = round-robin + thermal deferral, full = headroom-aware\n"+
			"placement + deferral + migration off stressed rooms. Under TESLA the full\n"+
			"scheduler improves the joint score by %.1f%% over no scheduler.\n\n",
			r.Sched.Rooms, r.Sched.Jobs, r.Sched.JointImprovementPct("tesla")); err != nil {
			return err
		}
		rows := make([][]string, 0, len(r.Sched.Cells))
		for _, c := range r.Sched.Cells {
			rows = append(rows, []string{
				c.Policy, c.Mode,
				fmt.Sprintf("%.2f", c.CoolingKWh),
				fmt.Sprintf("%.2f", c.PeakITKW),
				fmt.Sprintf("%.2f", 100*c.TrueTSVFrac),
				fmt.Sprintf("%.2f", c.JointScore),
				fmt.Sprintf("%d", c.Completed),
				fmt.Sprintf("%.0f", c.MeanWaitS),
				fmt.Sprintf("%d", c.Migrations),
			})
		}
		if err := writeMDTable(w,
			[]string{"Policy", "Scheduler", "CE (kWh)", "Peak IT (kW)", "True TSV (%)", "Joint", "Done", "Wait (s)", "Migr"},
			rows); err != nil {
			return err
		}
	}
	return nil
}

func writeMDTable(w io.Writer, header []string, rows [][]string) error {
	line := "|"
	sep := "|"
	for _, h := range header {
		line += " " + h + " |"
		sep += "---|"
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, sep); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("experiment: report row has %d cells, header has %d", len(row), len(header))
		}
		out := "|"
		for _, c := range row {
			out += " " + c + " |"
		}
		if _, err := fmt.Fprintln(w, out); err != nil {
			return err
		}
	}
	return nil
}
