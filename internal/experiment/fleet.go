package experiment

import (
	"fmt"
	"time"

	"tesla/internal/control"
	"tesla/internal/faults"
	"tesla/internal/fleet"
	"tesla/internal/workload"
)

// FleetConfig assembles the multi-room demo scenario: rooms-1 healthy rooms
// driven by staggered Fig. 5-style load steps — every room cycles the same
// utilization levels but phase-shifted, so some room is always mid-transient
// and the fleet aggregate never settles — plus one faulty room that loses
// telemetry for a quarter of the evaluation window while its device path
// lags. All rooms run the full TESLA controller under their own safety
// supervisors, side by side, the way an estate operator would watch them.
func (a *Artifacts) FleetConfig(rooms, workers int, evalS float64, seed uint64) (fleet.Config, error) {
	if rooms < 2 {
		return fleet.Config{}, fmt.Errorf("experiment: fleet scenario needs at least 2 rooms (healthy + faulty), got %d", rooms)
	}
	cfg := fleet.DefaultConfig(rooms, seed, func(room int, policySeed uint64) (control.Policy, error) {
		return a.NewTESLAPolicy(policySeed)
	})
	cfg.Testbed = a.TBConf
	cfg.Workers = workers
	cfg.EvalS = evalS
	for i := range cfg.Rooms {
		cfg.Rooms[i].Profile = fleetSteps(i, rooms, cfg.WarmupS, evalS)
	}
	faulty := rooms - 1
	cfg.Rooms[faulty].Name = fmt.Sprintf("room-%d-faulty", faulty)
	cfg.Rooms[faulty].Scenario = &faults.Scenario{
		Name: "fleet-telemetry-gap",
		Seed: seed,
		Events: []faults.Event{{
			Kind:   faults.TelemetryGap,
			StartS: cfg.WarmupS + 0.25*evalS,
			EndS:   cfg.WarmupS + 0.50*evalS,
		}},
	}
	cfg.Rooms[faulty].StallPerStep = 200 * time.Microsecond
	return cfg, nil
}

// RunFleetScenario runs the fleet demo end to end: configure, execute, and
// return the per-room results plus the ingested rollup.
func RunFleetScenario(a *Artifacts, rooms, workers int, evalS float64, seed uint64) (*fleet.Result, error) {
	cfg, err := a.FleetConfig(rooms, workers, evalS, seed)
	if err != nil {
		return nil, err
	}
	return fleet.Run(cfg)
}

// fleetSteps builds room i's load-step schedule: the shared level rotation,
// phase-shifted by the room's slot within one segment so no two rooms step at
// the same moment.
func fleetSteps(room, rooms int, warmupS, evalS float64) workload.Steps {
	levels := []float64{0.15, 0.45, 0.25, 0.60}
	seg := evalS / float64(len(levels))
	stagger := seg * float64(room) / float64(rooms)
	s := workload.Steps{
		BoundariesS: []float64{0},
		Utils:       []float64{levels[room%len(levels)]},
		Label:       fmt.Sprintf("fleet-steps-%d", room),
	}
	for k := 1; k <= len(levels); k++ {
		s.BoundariesS = append(s.BoundariesS, warmupS+stagger+float64(k-1)*seg)
		s.Utils = append(s.Utils, levels[(room+k)%len(levels)])
	}
	return s
}
