package experiment

import (
	"testing"

	"tesla/internal/control"
	"tesla/internal/testbed"
	"tesla/internal/workload"
)

func mustTESLA(t *testing.T, art *Artifacts) *control.TESLA {
	t.Helper()
	p, err := art.NewPolicy("tesla", 5)
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := p.(*control.TESLA)
	if !ok {
		t.Fatalf("tesla policy is %T", p)
	}
	return ts
}

// teslaRunWithSwap drives the golden scenario, and at evaluation step k
// snapshots the TESLA controller and swaps in a freshly constructed one
// restored from the blob (k < 0 never swaps). Returns the executed set-points.
func teslaRunWithSwap(t *testing.T, k int) []float64 {
	t.Helper()
	art := sharedArtifacts(t)
	pol := mustTESLA(t, art)
	rc := DefaultRunConfig(pol, workload.Medium, 5)
	rc.WarmupS = 3600
	rc.EvalS = 3600

	tb, err := testbed.New(rc.Testbed)
	if err != nil {
		t.Fatal(err)
	}
	tb.UseProfile(rc.Profile)
	tb.SetSetpoint(rc.InitSpC)
	tr := newTraceFor(tb, rc)
	warm := int(rc.WarmupS / rc.Testbed.SamplePeriodS)
	evalSteps := int(rc.EvalS / rc.Testbed.SamplePeriodS)
	for i := 0; i < warm; i++ {
		tr.Append(tb.Advance())
	}
	sps := make([]float64, 0, evalSteps)
	for i := 0; i < evalSteps; i++ {
		if i == k {
			blob, err := pol.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot at step %d: %v", i, err)
			}
			pol = mustTESLA(t, art)
			if err := pol.Restore(blob); err != nil {
				t.Fatalf("Restore at step %d: %v", i, err)
			}
		}
		sp := pol.Decide(tr, tr.Len()-1)
		tb.SetSetpoint(sp)
		tr.Append(tb.Advance())
		sps = append(sps, sp)
	}
	return sps
}

// TestTESLASnapshotContinuation is the controller-level bit-identity check:
// a TESLA rebuilt from its snapshot mid-run — error-monitor windows and RNG,
// smoothing buffer, pending maturations, BO seed counter — must finish the
// run with exactly the set-points the uninterrupted controller produces.
// Swap points cover the pre-maturation phase (the monitor is still empty),
// the first matured windows, and the late run.
func TestTESLASnapshotContinuation(t *testing.T) {
	ref := teslaRunWithSwap(t, -1)
	for _, k := range []int{3, 17, 41} {
		got := teslaRunWithSwap(t, k)
		if len(got) != len(ref) {
			t.Fatalf("k=%d: %d steps, want %d", k, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("k=%d: set-point at step %d diverged after restore: %.17g != %.17g",
					k, i, got[i], ref[i])
			}
		}
	}
}
