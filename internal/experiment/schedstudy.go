package experiment

import (
	"fmt"

	"tesla/internal/control"
	"tesla/internal/fleet"
	"tesla/internal/rng"
	"tesla/internal/scheduler"
	"tesla/internal/workload"
)

// The paper's §8 names fleet-level workload management as TESLA's next step:
// the cooling controller shapes the supply of cold air, a scheduler shapes
// the demand for it. RunFleetSchedulingStudy crosses the two axes — the
// scheduler ablation {none, defer, full} against the cooling policy
// {tesla, mpc, modelfree} — on one deliberately heterogeneous fleet, so the
// report answers both "what does thermal-aware placement buy" and "under
// which controller".

// SchedModes and SchedPolicies are the study's two axes.
var (
	SchedModes    = []scheduler.Mode{scheduler.ModeNone, scheduler.ModeDefer, scheduler.ModeFull}
	SchedPolicies = []string{"tesla", "mpc", "modelfree"}
)

// HeterogeneousSpecs builds the study's three-room fleet: a template room, a
// thermally weak room (under-provisioned ACU, light thermal mass, high base
// load — the room naive placement keeps hurting), and a large cool room with
// spare capacity.
func HeterogeneousSpecs(seed uint64) []fleet.RoomSpec {
	return []fleet.RoomSpec{
		{
			Name:    "room-std",
			Stream:  1,
			Profile: workload.NewDiurnal(workload.Medium, 43200, rng.SeedFor(seed, 102)),
		},
		{
			Name:    "room-weak",
			Stream:  2,
			Profile: workload.NewDiurnal(workload.High, 43200, rng.SeedFor(seed, 106)),
			// Calibrated so the room's base load alone stays (barely) inside
			// the limit but any batch placement tips it over: the cell naive
			// round-robin keeps violating and thermal-aware placement avoids.
			ACUCoolKW:   6.5,
			ThermalMass: 0.5,
		},
		{
			Name:    "room-big",
			Stream:  3,
			Profile: workload.NewDiurnal(workload.Medium, 43200, rng.SeedFor(seed, 110)),
			Servers: 28,
		},
	}
}

// TiledSpecs tiles the study's room archetypes (standard / weak / large) out
// to n rooms with distinct seed streams — the same shapes as
// HeterogeneousSpecs, at arbitrary scale. teslabench -scheduler and
// teslad -scheduler both build their fleets from this.
func TiledSpecs(n int, seed uint64) []fleet.RoomSpec {
	loads := []workload.Setting{workload.Medium, workload.High, workload.Medium}
	specs := make([]fleet.RoomSpec, n)
	for i := range specs {
		specs[i] = fleet.RoomSpec{
			Name:    fmt.Sprintf("room-%d", i),
			Stream:  uint64(i + 1),
			Profile: workload.NewDiurnal(loads[i%3], 43200, rng.SeedFor(seed, uint64(100+4*i))),
		}
		switch i % 3 {
		case 1: // thermally weak: base load barely fits, batch load tips it over
			specs[i].ACUCoolKW = 6.5
			specs[i].ThermalMass = 0.5
		case 2: // large and cool
			specs[i].Servers = 28
		}
	}
	return specs
}

// ScaledSchedJobs scales the batch queue with the fleet: two heavy deferrable
// jobs per room, staggered through the first half of the window.
func ScaledSchedJobs(rooms int, evalS float64) []scheduler.Job {
	n := 2 * rooms
	jobs := make([]scheduler.Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, scheduler.Job{
			Name:        fmt.Sprintf("batch-%02d", i),
			SubmitS:     float64(i) * evalS / float64(5*n),
			Level:       0.5,
			DurationS:   5 * evalS / 6,
			Parallelism: 12,
			Deferrable:  true,
			MaxDeferS:   2 * evalS / 3,
		})
	}
	return jobs
}

// SchedStudyJobs is the study's batch queue: heavy long-running deferrable
// jobs arriving early in the window, sized so round-robin placement keeps
// re-loading the weak room while headroom-aware placement can absorb them on
// the big one.
func SchedStudyJobs(evalS float64) []scheduler.Job {
	jobs := make([]scheduler.Job, 0, 6)
	for i := 0; i < 6; i++ {
		jobs = append(jobs, scheduler.Job{
			Name:        fmt.Sprintf("batch-%c", 'a'+i),
			SubmitS:     float64(i) * evalS / 30,
			Level:       0.5,
			DurationS:   5 * evalS / 6,
			Parallelism: 12,
			Deferrable:  true,
			MaxDeferS:   2 * evalS / 3,
		})
	}
	return jobs
}

// NewMPCPolicy builds the receding-horizon MPC baseline over the trained
// recursive model (same plant model and cold-sensor set as the Lazic
// baseline — the two differ only in what they optimize).
func (a *Artifacts) NewMPCPolicy() (*control.MPC, error) {
	coldIdx := make([]int, 11)
	for i := range coldIdx {
		coldIdx[i] = i
	}
	cfg := control.DefaultMPCConfig(a.TBConf.ACU.SetpointMinC, a.TBConf.ACU.SetpointMaxC, coldIdx)
	return control.NewMPC(a.Lazic, cfg)
}

// NewModelFreePolicy builds the training-free intelligent-P baseline. It
// needs no artifacts beyond the testbed's set-point range, which is what
// makes it deployable on a cold fleet (teslad -policy modelfree).
func (a *Artifacts) NewModelFreePolicy() (*control.ModelFree, error) {
	return NewModelFreePolicy(a.TBConf.ACU.SetpointMinC, a.TBConf.ACU.SetpointMaxC)
}

// NewModelFreePolicy is the artifact-less constructor behind -policy
// modelfree.
func NewModelFreePolicy(spMin, spMax float64) (*control.ModelFree, error) {
	coldIdx := make([]int, 11)
	for i := range coldIdx {
		coldIdx[i] = i
	}
	return control.NewModelFree(control.DefaultModelFreeConfig(spMin, spMax, coldIdx))
}

// SchedFleetConfig assembles one cell's scheduled-fleet configuration.
func (a *Artifacts) SchedFleetConfig(mode scheduler.Mode, policy string, workers int, evalS float64, seed uint64) (scheduler.FleetConfig, error) {
	fc := fleet.Config{
		Testbed:    a.TBConf,
		Rooms:      HeterogeneousSpecs(seed),
		Seed:       seed,
		Workers:    workers,
		WarmupS:    600,
		EvalS:      evalS,
		InitSpC:    23,
		ColdLimitC: 22,
		NewPolicy: func(room int, policySeed uint64) (control.Policy, error) {
			return a.NewPolicy(policy, policySeed)
		},
	}
	return scheduler.FleetConfig{
		Fleet: fc,
		Sched: scheduler.DefaultConfig(mode),
		Jobs:  SchedStudyJobs(evalS),
	}, nil
}

// SchedCell is one (mode, policy) outcome.
type SchedCell struct {
	Mode   string `json:"mode"`
	Policy string `json:"policy"`

	CoolingKWh  float64 `json:"cooling_kwh"`
	PeakITKW    float64 `json:"peak_it_kw"`
	TrueTSVFrac float64 `json:"true_tsv_frac"`
	JointScore  float64 `json:"joint_score"`

	Completed    int     `json:"completed"`
	MeanWaitS    float64 `json:"mean_wait_s"`
	MeanLatencyS float64 `json:"mean_latency_s"`
	Placements   uint64  `json:"placements"`
	Deferrals    uint64  `json:"deferrals"`
	Migrations   uint64  `json:"migrations"`

	TrajectoryHash uint64 `json:"trajectory_hash"`
}

// FleetSchedulingStudy is the full cross.
type FleetSchedulingStudy struct {
	Rooms int         `json:"rooms"`
	Jobs  int         `json:"jobs"`
	EvalS float64     `json:"eval_s"`
	Cells []SchedCell `json:"cells"`
}

// Cell finds one outcome by coordinates.
func (s *FleetSchedulingStudy) Cell(mode, policy string) *SchedCell {
	for i := range s.Cells {
		if s.Cells[i].Mode == mode && s.Cells[i].Policy == policy {
			return &s.Cells[i]
		}
	}
	return nil
}

// JointImprovementPct is the headline number: the joint-score reduction of
// the full scheduler against no scheduler under the same policy.
func (s *FleetSchedulingStudy) JointImprovementPct(policy string) float64 {
	none, full := s.Cell("none", policy), s.Cell("full", policy)
	if none == nil || full == nil || none.JointScore == 0 {
		return 0
	}
	return 100 * (none.JointScore - full.JointScore) / none.JointScore
}

// RunFleetSchedulingStudy executes every (mode, policy) cell on the same
// heterogeneous fleet and job queue. Cells run sequentially (each fans its
// rooms over the worker pool); each cell's trajectories are deterministic in
// (seed, mode, policy) and independent of workers.
func RunFleetSchedulingStudy(a *Artifacts, workers int, evalS float64, seed uint64) (*FleetSchedulingStudy, error) {
	study := &FleetSchedulingStudy{Rooms: len(HeterogeneousSpecs(seed)), Jobs: len(SchedStudyJobs(evalS)), EvalS: evalS}
	for _, policy := range SchedPolicies {
		for _, mode := range SchedModes {
			cfg, err := a.SchedFleetConfig(mode, policy, workers, evalS, seed)
			if err != nil {
				return nil, err
			}
			res, err := scheduler.RunFleet(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: scheduling cell %s×%s: %w", mode, policy, err)
			}
			study.Cells = append(study.Cells, SchedCell{
				Mode:           mode.String(),
				Policy:         policy,
				CoolingKWh:     res.CoolingKWh,
				PeakITKW:       res.PeakITKW,
				TrueTSVFrac:    res.TrueTSVFrac,
				JointScore:     res.JointScore,
				Completed:      res.Jobs.Completed,
				MeanWaitS:      res.Jobs.MeanWaitS,
				MeanLatencyS:   res.Jobs.MeanLatencyS,
				Placements:     res.Sched.Placements,
				Deferrals:      res.Sched.Deferrals,
				Migrations:     res.Sched.MigrationsTotal(),
				TrajectoryHash: res.TrajectoryHash,
			})
		}
	}
	return study, nil
}
