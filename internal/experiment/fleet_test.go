package experiment

import (
	"strings"
	"testing"

	"tesla/internal/workload"
)

func TestFleetScenarioRejectsTinyFleet(t *testing.T) {
	a := sharedArtifacts(t)
	if _, err := a.FleetConfig(1, 1, 1800, 21); err == nil {
		t.Fatal("a 1-room fleet has no faulty/healthy split and must be rejected")
	}
}

func TestFleetScenarioProfilesAreStaggered(t *testing.T) {
	a := sharedArtifacts(t)
	cfg, err := a.FleetConfig(4, 2, 7200, 21)
	if err != nil {
		t.Fatal(err)
	}
	// Every room steps at its own moments: boundary sets are pairwise
	// disjoint past the shared t=0 anchor.
	seen := map[float64]int{}
	for i, spec := range cfg.Rooms {
		st, ok := spec.Profile.(workload.Steps)
		if !ok {
			t.Fatalf("room %d profile %T, want workload.Steps", i, spec.Profile)
		}
		for _, b := range st.BoundariesS[1:] {
			if prev, dup := seen[b]; dup {
				t.Fatalf("rooms %d and %d both step at t=%gs — staggering is broken", prev, i, b)
			}
			seen[b] = i
		}
	}
	if cfg.Rooms[3].Scenario == nil || cfg.Rooms[3].StallPerStep == 0 {
		t.Fatal("last room must carry the fault scenario and the slow device")
	}
	if cfg.Rooms[0].Scenario != nil {
		t.Fatal("healthy rooms must not inherit the fault scenario")
	}
	if !strings.Contains(cfg.Rooms[3].Name, "faulty") {
		t.Fatalf("faulty room name %q should say so", cfg.Rooms[3].Name)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("scenario config does not validate: %v", err)
	}
}

func TestFleetScenarioEndToEnd(t *testing.T) {
	a := sharedArtifacts(t)
	res, err := RunFleetScenario(a, 3, 2, 1800, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rooms) != 3 {
		t.Fatalf("got %d rooms", len(res.Rooms))
	}
	var total uint64
	for i, rr := range res.Rooms {
		if rr.Steps != rr.PlannedSteps || rr.Steps != 30 {
			t.Errorf("room %d executed %d/%d steps, want 30", i, rr.Steps, rr.PlannedSteps)
		}
		total += uint64(rr.Steps)
	}
	faulty := res.Rooms[2]
	if !faulty.Degraded {
		t.Error("the telemetry-gap room must trip its safety supervisor")
	}
	if got := res.Rollup.Samples + res.Rollup.Dropped; got != total {
		t.Errorf("pipeline accounting: %d ingested + %d dropped != %d steps",
			res.Rollup.Samples, res.Rollup.Dropped, total)
	}
	if res.String() == "" {
		t.Error("empty operator table")
	}
}
