package experiment

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"tesla/internal/control"
	"tesla/internal/workload"
)

// sharedArtifacts trains the CI-scale pipeline once for the whole package.
var (
	artOnce sync.Once
	artVal  *Artifacts
	artErr  error
)

func sharedArtifacts(t *testing.T) *Artifacts {
	t.Helper()
	artOnce.Do(func() {
		artVal, artErr = Prepare(CIScale(), true)
	})
	if artErr != nil {
		t.Fatalf("Prepare: %v", artErr)
	}
	return artVal
}

func TestRunMetricsAccounting(t *testing.T) {
	rc := DefaultRunConfig(control.Fixed{SetpointC: 23}, workload.Medium, 1)
	rc.WarmupS = 600
	rc.EvalS = 1800
	tr, m, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Steps != 30 {
		t.Fatalf("steps %d, want 30", m.Steps)
	}
	if tr.Len() != 10+30 {
		t.Fatalf("trace %d samples, want warmup+eval", tr.Len())
	}
	if m.CEkWh <= 0 {
		t.Fatalf("no energy recorded")
	}
	// Manual re-integration over the evaluation window must match.
	var ce float64
	for i := 10; i < tr.Len(); i++ {
		ce += tr.ACUPower[i] / 60
	}
	if math.Abs(ce-m.CEkWh) > 1e-9 {
		t.Fatalf("CE mismatch: %g vs %g", ce, m.CEkWh)
	}
	if m.Policy != "fixed" || m.Load != workload.Medium {
		t.Fatalf("labels wrong: %+v", m)
	}
	if m.String() == "" {
		t.Fatalf("metrics must render")
	}
}

func TestRunRejectsEmptyWindow(t *testing.T) {
	rc := DefaultRunConfig(control.Fixed{SetpointC: 23}, workload.Idle, 1)
	rc.EvalS = 0
	if _, _, err := Run(rc); err == nil {
		t.Fatalf("empty window accepted")
	}
}

func TestFigureASCIIAndCSV(t *testing.T) {
	f := &Figure{
		ID: "test", Caption: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 3, 2}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{2, 2, 2}},
		},
	}
	var buf bytes.Buffer
	if err := f.RenderASCII(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "[*] a") {
		t.Fatalf("ASCII render missing parts:\n%s", out)
	}
	buf.Reset()
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+6 {
		t.Fatalf("CSV rows %d, want header+6", len(lines))
	}
	if lines[0] != "series,x,y" {
		t.Fatalf("CSV header %q", lines[0])
	}
}

func TestFigureRenderEmptyErrors(t *testing.T) {
	f := &Figure{ID: "empty"}
	if err := f.RenderASCII(&bytes.Buffer{}, 40, 10); err == nil {
		t.Fatalf("empty figure rendered")
	}
}

func TestFigure2Shape(t *testing.T) {
	f, err := Figure2(3)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	if len(s.Y) != 90 {
		t.Fatalf("Figure 2 should span 90 minutes, got %d", len(s.Y))
	}
	// Power must vary (the point of the figure) but stay physical.
	lo, hi := s.Y[0], s.Y[0]
	for _, v := range s.Y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		if v < 0 || v > 6 {
			t.Fatalf("implausible ACU power %g", v)
		}
	}
	if hi-lo < 0.05 {
		t.Fatalf("constant set-point power should still fluctuate, spread %g", hi-lo)
	}
}

func TestFigure3InterruptionDynamics(t *testing.T) {
	fa, fb, err := Figure3(4)
	if err != nil {
		t.Fatal(err)
	}
	power := fa.Series[0].Y
	cold := fb.Series[0].Y
	// During the interruption (minutes 1–9) power sits at the fan floor.
	if power[5] > 0.2 {
		t.Fatalf("interruption power %g, want near the 100 W floor", power[5])
	}
	// Cold aisle rises during interruption...
	riseRate := (cold[9] - cold[0]) / 9
	if riseRate < 0.2 {
		t.Fatalf("cold aisle rise %g °C/min too slow", riseRate)
	}
	// ...and recovery (after minute 10) proceeds more slowly than the rise.
	peak := cold[10]
	recovery := (peak - cold[len(cold)-1]) / float64(len(cold)-11)
	if recovery <= 0 {
		t.Fatalf("no recovery observed")
	}
	if recovery >= riseRate {
		t.Fatalf("recovery %g should be slower than rise %g (paper Figure 3)", recovery, riseRate)
	}
}

func TestFigure4EnergyImplication(t *testing.T) {
	fa, fb, err := Figure4(5)
	if err != nil {
		t.Fatal(err)
	}
	sp := fa.Series[0].Y
	inlet := fa.Series[1].Y
	power := fb.Series[0].Y
	// The set-point dips by ~1 °C and comes back.
	if math.Abs(sp[0]-28.5) > 1e-9 || math.Abs(sp[len(sp)-1]-28.6) > 1e-9 {
		t.Fatalf("set-point schedule wrong: %g..%g", sp[0], sp[len(sp)-1])
	}
	// The inlet never actually reaches the dipped set-point...
	minInlet := inlet[0]
	for _, v := range inlet {
		minInlet = math.Min(minInlet, v)
	}
	if minInlet <= 27.5 {
		t.Fatalf("inlet reached the dipped set-point — the episode should be too short")
	}
	// ...yet power rises during the dip (minutes 2–4) versus before it.
	before := mean(power[:12])   // minutes 0–2
	during := mean(power[12:24]) // minutes 2–4
	if during <= before {
		t.Fatalf("the dip should cost power: before %g, during %g", before, during)
	}
}

func TestPolicyFiguresFixed(t *testing.T) {
	figs, m, err := PolicyFigures(control.Fixed{SetpointC: 23}, "fig10", 3600, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("want 3 figures, got %d", len(figs))
	}
	if m.Steps != 60 {
		t.Fatalf("steps %d", m.Steps)
	}
	for _, f := range figs {
		if len(f.Series) == 0 || len(f.Series[0].Y) != 60 {
			t.Fatalf("figure %s series malformed", f.ID)
		}
	}
	// The fixed policy's set-point series must be constant 23.
	for _, v := range figs[0].Series[0].Y {
		if v != 23 {
			t.Fatalf("fixed policy moved: %g", v)
		}
	}
}

func TestTable3OrderingTESLAWins(t *testing.T) {
	a := sharedArtifacts(t)
	res, err := Table3(a, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows < 10 {
		t.Fatalf("too few evaluation windows: %d", res.Windows)
	}
	// The simulated room's 1-minute dynamics are close to linear, so the
	// recursive OLS baseline is far stronger here than on the paper's
	// physical room; TESLA must still be at least on par with it (and the
	// paper's ordering strictly holds against the MLP).
	if res.TESLAMape > res.LazicMape*1.05 {
		t.Fatalf("TESLA (%.2f%%) should not trail recursive OLS (%.2f%%) on temperature MAPE",
			res.TESLAMape, res.LazicMape)
	}
	if !(res.TESLAMape < res.WangMape) {
		t.Fatalf("TESLA (%.2f%%) should beat the recursive MLP (%.2f%%)",
			res.TESLAMape, res.WangMape)
	}
	if res.String() == "" {
		t.Fatalf("table must render")
	}
}

func TestTable4OrderingTESLAWins(t *testing.T) {
	a := sharedArtifacts(t)
	res, err := Table4(a, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows < 10 {
		t.Fatalf("too few windows: %d", res.Windows)
	}
	for name, mape := range map[string]float64{
		"MLP": res.MLPMape, "GBT": res.GBTMape, "forest": res.ForestMape,
	} {
		if res.TESLAMape >= mape {
			t.Fatalf("TESLA (%.2f%%) should beat %s (%.2f%%) on energy MAPE",
				res.TESLAMape, name, mape)
		}
	}
	if res.String() == "" {
		t.Fatalf("table must render")
	}
}

func TestTable5ShortRunShape(t *testing.T) {
	a := sharedArtifacts(t)
	cfg := DefaultTable5Config()
	cfg.EvalS = 5400 // 1.5 h keeps the test quick; the bench runs 12 h
	cfg.WarmupS = 1800
	res, err := Table5(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("want 4 policies × 3 loads = 12 rows, got %d", len(res.Rows))
	}
	byKey := map[string]Table5Row{}
	for _, r := range res.Rows {
		byKey[r.Load.String()+"/"+r.Policy] = r
	}
	// TESLA must never violate thermal safety.
	for _, load := range []string{"idle", "medium", "high"} {
		if r := byKey[load+"/tesla"]; r.TSVFrac > 0 {
			t.Fatalf("TESLA violated thermal safety at %s: %.2f%%", load, 100*r.TSVFrac)
		}
	}
	if res.String() == "" {
		t.Fatalf("table must render")
	}
}

func TestFigure8SnapshotsExist(t *testing.T) {
	a := sharedArtifacts(t)
	figs, err := Figure8(a, 3600, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) < 3 {
		t.Fatalf("want power series + 2 snapshots, got %d figures", len(figs))
	}
	for _, f := range figs[1:] {
		if len(f.Series) != 2 {
			t.Fatalf("snapshot %s needs objective+constraint series", f.ID)
		}
		if len(f.Series[0].X) < 30 {
			t.Fatalf("snapshot %s grid too sparse", f.ID)
		}
	}
}

func TestScalesAreDistinct(t *testing.T) {
	ci, paper := CIScale(), PaperScale()
	if ci.SweepDays >= paper.SweepDays {
		t.Fatalf("CI scale should be smaller than paper scale")
	}
	if ci.Name == paper.Name {
		t.Fatalf("scales need distinct names")
	}
}
