package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tesla/internal/workload"
)

func TestReportRendersAllSections(t *testing.T) {
	r := &Report{
		Title:     "test report",
		ScaleName: "ci",
		Generated: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
		Table3:    &Table3Result{TESLAMape: 1, LazicMape: 2, WangMape: 3, Windows: 10},
		Table4:    &Table4Result{TESLAMape: 4, MLPMape: 5, GBTMape: 6, ForestMape: 7, Windows: 11},
		Table5: &Table5Result{Rows: []Table5Row{
			{Metrics: Metrics{Policy: "fixed", Load: workload.Idle, CEkWh: 20}, SavingPct: 0},
			{Metrics: Metrics{Policy: "tesla", Load: workload.Idle, CEkWh: 18, TSVFrac: 0}, SavingPct: 10},
		}},
		Study: &AblationStudy{Load: workload.Medium, Results: []AblationResult{
			{Ablation: AblationNone, Metrics: Metrics{CEkWh: 15}, SetpointChurnC: 0.2},
		}},
		Fault: &FaultInjectionResult{
			Healthy: Metrics{CEkWh: 15, MeanSp: 25}, Faulty: Metrics{CEkWh: 16, MeanSp: 24},
			StuckSensor: 5, StuckAtC: 21.5,
		},
	}
	var buf bytes.Buffer
	if err := r.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# test report", "Table 3", "Table 4", "Table 5",
		"Ablations (medium load)", "Fault injection",
		"| TESLA (ours) | 1.00 |", "| tesla | 18.00 | 10.00 | 0.00 | 0.00 |",
		"generated 2026-07-06",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportEmptySectionsSkipped(t *testing.T) {
	r := &Report{ScaleName: "ci"}
	var buf bytes.Buffer
	if err := r.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "Table 3") || strings.Contains(out, "Fault") {
		t.Fatalf("empty sections rendered:\n%s", out)
	}
	if !strings.Contains(out, "TESLA evaluation report") {
		t.Fatalf("default title missing")
	}
}

func TestWriteMDTableRowMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := writeMDTable(&buf, []string{"a", "b"}, [][]string{{"1"}}); err == nil {
		t.Fatalf("mismatched row accepted")
	}
}
