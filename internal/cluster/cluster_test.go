package cluster

import (
	"math"
	"testing"

	"tesla/internal/rng"
	"tesla/internal/thermo"
)

func TestTestbedMatchesPaperFleet(t *testing.T) {
	c := NewTestbed()
	if len(c.Servers) != 21 {
		t.Fatalf("fleet size %d, want 21", len(c.Servers))
	}
	gold, e5 := 0, 0
	racks := map[int]int{}
	for _, s := range c.Servers {
		switch s.Class.Name {
		case ClassGold6330.Name:
			gold++
		case ClassE52699.Name:
			e5++
		default:
			t.Fatalf("unknown class %q", s.Class.Name)
		}
		racks[s.Rack]++
	}
	if gold != 11 || e5 != 10 {
		t.Fatalf("SKU split %d/%d, want 11/10", gold, e5)
	}
	if len(racks) != thermo.NumRacks {
		t.Fatalf("%d racks, want %d", len(racks), thermo.NumRacks)
	}
	for rack, n := range racks {
		if n < 5 || n > 6 {
			t.Fatalf("rack %d has %d servers", rack, n)
		}
	}
}

func TestPowerConvergesToTarget(t *testing.T) {
	c := NewTestbed()
	c.SetUniformTarget(0.5)
	for i := 0; i < 600; i++ {
		c.Step(1, nil)
	}
	for _, s := range c.Servers {
		want := s.Class.IdleKW + 0.5*(s.Class.PeakKW-s.Class.IdleKW)
		if math.Abs(s.PowerKW-want) > 0.01 {
			t.Fatalf("%s power %g, want %g", s.Name, s.PowerKW, want)
		}
		if math.Abs(s.Util-0.5) > 0.01 {
			t.Fatalf("%s util %g, want 0.5", s.Name, s.Util)
		}
	}
}

func TestPowerStaysWithinEnvelope(t *testing.T) {
	c := NewTestbed()
	r := rng.New(7)
	for i := 0; i < 2000; i++ {
		if i%100 == 0 {
			c.SetUniformTarget(r.Float64())
		}
		c.Step(1, r)
		for _, s := range c.Servers {
			if s.PowerKW < s.Class.IdleKW-0.02 || s.PowerKW > s.Class.PeakKW+0.02 {
				t.Fatalf("%s power %g outside [%g,%g]", s.Name, s.PowerKW, s.Class.IdleKW, s.Class.PeakKW)
			}
		}
	}
}

func TestRackPowerSumsToTotal(t *testing.T) {
	c := NewTestbed()
	c.SetUniformTarget(0.3)
	for i := 0; i < 300; i++ {
		c.Step(1, nil)
	}
	rack := c.RackPowerKW()
	var sum float64
	for _, v := range rack {
		sum += v
	}
	if math.Abs(sum-c.TotalPowerKW()) > 1e-9 {
		t.Fatalf("rack sum %g != total %g", sum, c.TotalPowerKW())
	}
	if math.Abs(c.AveragePowerKW()*21-c.TotalPowerKW()) > 1e-9 {
		t.Fatalf("average inconsistent with total")
	}
}

func TestTargetClamping(t *testing.T) {
	s := &Server{Class: ClassGold6330}
	s.SetTargetUtil(1.7)
	if s.TargetUtil() != 1 {
		t.Fatalf("target should clamp to 1, got %g", s.TargetUtil())
	}
	s.SetTargetUtil(-0.5)
	if s.TargetUtil() != 0 {
		t.Fatalf("target should clamp to 0, got %g", s.TargetUtil())
	}
}

func TestAverageUtilTracksTargets(t *testing.T) {
	c := NewTestbed()
	c.SetUniformTarget(0.25)
	for i := 0; i < 600; i++ {
		c.Step(1, nil)
	}
	if math.Abs(c.AverageUtil()-0.25) > 0.01 {
		t.Fatalf("average util %g, want 0.25", c.AverageUtil())
	}
}

func TestMemUtilTracksCPU(t *testing.T) {
	c := NewTestbed()
	c.SetUniformTarget(0.8)
	for i := 0; i < 600; i++ {
		c.Step(1, nil)
	}
	for _, s := range c.Servers {
		if s.MemUtil < 0.25 || s.MemUtil > 0.75 {
			t.Fatalf("memory util %g implausible", s.MemUtil)
		}
	}
}

func TestEmptyClusterAverages(t *testing.T) {
	c := &Cluster{}
	if c.AveragePowerKW() != 0 || c.AverageUtil() != 0 {
		t.Fatalf("empty cluster should average to zero")
	}
}
