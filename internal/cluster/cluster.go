// Package cluster models the 21-server / 4-rack compute cluster of the TESLA
// testbed (paper Table 1): eleven 112-core Xeon Gold 6330 machines and ten
// 88-core Xeon E5-2699 machines, each with an idle→peak power curve linear
// in CPU utilization plus a first-order electrical lag and measurement
// noise. The cluster exposes per-rack heat output (for the room model) and
// per-server telemetry (for the observability stack).
package cluster

import (
	"fmt"

	"tesla/internal/rng"
	"tesla/internal/thermo"
)

// ServerClass describes a hardware SKU.
type ServerClass struct {
	Name     string
	Cores    int
	IdleKW   float64
	PeakKW   float64
	PowerTau float64 // electrical/thermal power lag in seconds
}

// Paper SKUs (power envelopes chosen to match dual-socket machines of those
// generations; the paper does not publish per-server wattage).
var (
	ClassGold6330 = ServerClass{Name: "xeon-gold-6330", Cores: 112, IdleKW: 0.125, PeakKW: 0.46, PowerTau: 25}
	ClassE52699   = ServerClass{Name: "xeon-e5-2699", Cores: 88, IdleKW: 0.105, PeakKW: 0.37, PowerTau: 25}
)

// Server is one machine: target utilization is set by the workload layer and
// actual utilization/power follow with a lag.
type Server struct {
	Name  string
	Class ServerClass
	Rack  int

	targetUtil float64
	Util       float64 // achieved CPU utilization in [0,1]
	MemUtil    float64 // memory utilization in [0,1] (telemetry only)
	PowerKW    float64 // instantaneous power draw
}

// SetTargetUtil commands the load actuator (Gaetano-style controller).
func (s *Server) SetTargetUtil(u float64) {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	s.targetUtil = u
}

// TargetUtil returns the commanded utilization.
func (s *Server) TargetUtil() float64 { return s.targetUtil }

// Step advances the server by dt seconds. Utilization slews toward the
// target with a short time constant plus scheduling jitter; power follows
// utilization through the electrical lag.
func (s *Server) Step(dt float64, r *rng.Rand) {
	const utilTau = 8.0 // seconds for the load generator to settle
	s.Util += (s.targetUtil - s.Util) / utilTau * dt
	jitter := 0.0
	if r != nil {
		jitter = 0.015 * r.Norm()
	}
	u := s.Util + jitter
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	s.MemUtil = 0.25 + 0.5*u // memory roughly tracks CPU in these workloads

	want := s.Class.IdleKW + u*(s.Class.PeakKW-s.Class.IdleKW)
	tau := s.Class.PowerTau
	if tau <= 0 {
		tau = 1
	}
	s.PowerKW += (want - s.PowerKW) / tau * dt
}

// Cluster is the full testbed fleet.
type Cluster struct {
	Servers []*Server
}

// NewTestbed builds the paper's fleet: 21 servers over 4 racks
// (6+5+5+5), interleaving the two SKUs the way a real deployment racks them.
func NewTestbed() *Cluster {
	return New(21)
}

// New builds a cluster of n servers by scaling the paper's racking scheme:
// the servers spread over the room's 4 racks as evenly as possible (earlier
// racks absorb the remainder) and the two SKUs keep the testbed's 11:10
// Gold-6330:E5-2699 mix. New(21) is bit-identical to the paper testbed.
func New(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	c := &Cluster{}
	base, rem := n/thermo.NumRacks, n%thermo.NumRacks
	goldCount := (11*n + 20) / 21 // ceil(11n/21): 11 of 21 at paper scale
	idx := 0
	for rack := 0; rack < thermo.NumRacks; rack++ {
		size := base
		if rack < rem {
			size++
		}
		for k := 0; k < size; k++ {
			class := ClassGold6330
			if idx >= goldCount {
				class = ClassE52699
			}
			srv := &Server{
				Name:  fmt.Sprintf("node-%02d", idx),
				Class: class,
				Rack:  rack,
			}
			srv.PowerKW = class.IdleKW
			c.Servers = append(c.Servers, srv)
			idx++
		}
	}
	return c
}

// Step advances every server.
func (c *Cluster) Step(dt float64, r *rng.Rand) {
	for _, s := range c.Servers {
		s.Step(dt, r)
	}
}

// RackPowerKW sums instantaneous power per rack — the heat source vector for
// the room model.
func (c *Cluster) RackPowerKW() [thermo.NumRacks]float64 {
	var out [thermo.NumRacks]float64
	for _, s := range c.Servers {
		out[s.Rack] += s.PowerKW
	}
	return out
}

// TotalPowerKW sums the whole fleet.
func (c *Cluster) TotalPowerKW() float64 {
	var t float64
	for _, s := range c.Servers {
		t += s.PowerKW
	}
	return t
}

// AveragePowerKW is the per-server average — the quantity TESLA's ASP
// sub-module predicts (paper §3.2, eq. 1).
func (c *Cluster) AveragePowerKW() float64 {
	if len(c.Servers) == 0 {
		return 0
	}
	return c.TotalPowerKW() / float64(len(c.Servers))
}

// AverageUtil is fleet-average CPU utilization.
func (c *Cluster) AverageUtil() float64 {
	if len(c.Servers) == 0 {
		return 0
	}
	var t float64
	for _, s := range c.Servers {
		t += s.Util
	}
	return t / float64(len(c.Servers))
}

// SetUniformTarget commands the same target utilization on every server.
func (c *Cluster) SetUniformTarget(u float64) {
	for _, s := range c.Servers {
		s.SetTargetUtil(u)
	}
}
