package thermo

import (
	"math"
	"testing"
	"testing/quick"

	"tesla/internal/rng"
)

func steadyRack(totalKW float64) [NumRacks]float64 {
	var out [NumRacks]float64
	for i := range out {
		out[i] = totalKW / NumRacks
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	good := DefaultRoomConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.AirLoopKWPerK = 0
	if bad.Validate() == nil {
		t.Fatalf("zero air loop should be invalid")
	}
	bad = good
	bad.ColdCapKJPerK = -1
	if bad.Validate() == nil {
		t.Fatalf("negative capacitance should be invalid")
	}
	bad = good
	bad.ReturnTauS = 0
	if bad.Validate() == nil {
		t.Fatalf("zero duct lag should be invalid")
	}
	bad = good
	bad.LeakKWPerK = -0.1
	if bad.Validate() == nil {
		t.Fatalf("negative conductance should be invalid")
	}
	if _, err := NewRoom(bad); err == nil {
		t.Fatalf("NewRoom should propagate validation errors")
	}
}

// settle integrates until the room reaches an approximate steady state under
// constant inputs (cooling tracks a fixed return target via a simple P loop).
func settle(t *testing.T, room *Room, itKW float64, coolKW float64, seconds int) {
	t.Helper()
	for i := 0; i < seconds; i++ {
		room.Step(1, steadyRack(itKW), coolKW)
	}
}

func TestSteadyStateEnergyBalance(t *testing.T) {
	cfg := DefaultRoomConfig()
	room, err := NewRoom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	itKW := 4.0
	// Find the cooling that holds the room steady by letting a slow
	// integral loop trim it, then verify the heat balance.
	cool := itKW
	for i := 0; i < 40000; i++ {
		room.Step(1, steadyRack(itKW), cool)
		// trim cooling to hold the return temperature at 24 °C
		cool += 0.0005 * (room.ReturnC - 24)
		if cool < 0 {
			cool = 0
		}
	}
	// At steady state: cooling = IT + misc + envelope gains.
	envelope := cfg.EnvelopeKWPerK * ((cfg.AmbientC - room.ColdC) + (cfg.AmbientC - room.HotC))
	want := itKW + cfg.MiscHeatKW + envelope
	if math.Abs(cool-want) > 0.15 {
		t.Fatalf("steady-state cooling %g kW, heat balance wants %g kW", cool, want)
	}
	if math.Abs(room.ReturnC-24) > 0.2 {
		t.Fatalf("trim loop failed: return %g", room.ReturnC)
	}
	// Hot aisle must be warmer than cold aisle whenever IT heat flows.
	if room.HotC <= room.ColdC {
		t.Fatalf("aisle inversion: hot %g <= cold %g", room.HotC, room.ColdC)
	}
}

func TestInterruptionRiseRate(t *testing.T) {
	room, err := NewRoom(DefaultRoomConfig())
	if err != nil {
		t.Fatal(err)
	}
	itKW := 5.0
	// Settle near a realistic operating point first.
	cool := itKW + 2
	for i := 0; i < 30000; i++ {
		room.Step(1, steadyRack(itKW), cool)
		cool += 0.0005 * (room.ReturnC - 24)
		if cool < 0 {
			cool = 0
		}
	}
	before := room.ColdC
	// Cooling interruption: no cold air for 5 minutes.
	for i := 0; i < 300; i++ {
		room.Step(1, steadyRack(itKW), 0)
	}
	risePerMin := (room.ColdC - before) / 5
	// The paper reports ≈1 °C/min; the calibrated model must land in a
	// credible band around it.
	if risePerMin < 0.3 || risePerMin > 2.0 {
		t.Fatalf("interruption rise %g °C/min outside [0.3, 2.0]", risePerMin)
	}
}

func TestRecoverySlowerThanRise(t *testing.T) {
	room, err := NewRoom(DefaultRoomConfig())
	if err != nil {
		t.Fatal(err)
	}
	itKW := 5.0
	cool := itKW + 2
	for i := 0; i < 30000; i++ {
		room.Step(1, steadyRack(itKW), cool)
		cool += 0.0005 * (room.ReturnC - 24)
		if cool < 0 {
			cool = 0
		}
	}
	base := room.ColdC
	for i := 0; i < 600; i++ {
		room.Step(1, steadyRack(itKW), 0)
	}
	riseRate := (room.ColdC - base) / 10
	peak := room.ColdC
	// Recovery at the steady cooling level (the PID ramps up slowly in the
	// real loop; here the heat-balance cooling is restored directly).
	recoverCool := cool
	steps := 0
	for room.ColdC > base+0.2 && steps < 36000 {
		room.Step(1, steadyRack(itKW), recoverCool)
		steps++
	}
	if steps == 36000 {
		t.Fatalf("never recovered from interruption")
	}
	recoveryRate := (peak - room.ColdC) / (float64(steps) / 60)
	if recoveryRate >= riseRate {
		t.Fatalf("recovery (%g °C/min) should be slower than the rise (%g °C/min)", recoveryRate, riseRate)
	}
}

func TestSupplySaturationReportsAchieved(t *testing.T) {
	cfg := DefaultRoomConfig()
	room, err := NewRoom(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Demand far beyond what the air loop can carry at this return temp.
	achieved := room.Step(1, steadyRack(3), 100)
	maxPossible := (room.ReturnC - cfg.SupplyMinC + 1) * cfg.AirLoopKWPerK
	if achieved > maxPossible {
		t.Fatalf("achieved %g exceeds the physical limit %g", achieved, maxPossible)
	}
	if room.SupplyC < cfg.SupplyMinC-1e-9 {
		t.Fatalf("supply %g below evaporator limit", room.SupplyC)
	}
}

func TestStepPanicsOnBadDt(t *testing.T) {
	room, _ := NewRoom(DefaultRoomConfig())
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for dt <= 0")
		}
	}()
	room.Step(0, steadyRack(1), 1)
}

func TestTemperaturesBoundedProperty(t *testing.T) {
	// Property: for bounded random inputs the network stays bounded —
	// the RC network is dissipative.
	f := func(seed uint64) bool {
		room, err := NewRoom(DefaultRoomConfig())
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < 5000; i++ {
			it := 8 * r.Float64()
			cool := 13 * r.Float64()
			room.Step(1, steadyRack(it), cool)
			for _, temp := range []float64{room.ColdC, room.HotC, room.ReturnC} {
				if math.IsNaN(temp) || temp < -30 || temp > 120 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAchievableReturn(t *testing.T) {
	room, _ := NewRoom(DefaultRoomConfig())
	cfg := room.Config()
	got := room.MaxAchievableReturnC(3)
	want := cfg.AmbientC + 3/(2*cfg.EnvelopeKWPerK)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MaxAchievableReturnC = %g, want %g", got, want)
	}
}
