package thermo

import (
	"math"
	"testing"

	"tesla/internal/rng"
)

func TestDefaultArrayMatchesPaperDeployment(t *testing.T) {
	a := DefaultArray()
	if len(a.DC) != 35 {
		t.Fatalf("N_d = %d, want 35", len(a.DC))
	}
	if len(a.ACU) != 2 {
		t.Fatalf("N_a = %d, want 2", len(a.ACU))
	}
	if a.NumColdAisle != 11 {
		t.Fatalf("cold aisle sensors = %d, want 11", a.NumColdAisle)
	}
	for i := 0; i < a.NumColdAisle; i++ {
		if a.DC[i].Node != NodeColdAisle {
			t.Fatalf("sensor %d should be cold-aisle, got %v", i, a.DC[i].Node)
		}
	}
	idx := a.ColdAisleIndices()
	if len(idx) != 11 || idx[0] != 0 || idx[10] != 10 {
		t.Fatalf("ColdAisleIndices wrong: %v", idx)
	}
}

func TestSensorReadsNodePlusOffset(t *testing.T) {
	room, _ := NewRoom(DefaultRoomConfig())
	room.ColdC = 18
	room.HotC = 26
	room.ReturnC = 25
	room.RackC[2] = 21

	cases := []struct {
		s    Sensor
		want float64
	}{
		{Sensor{Node: NodeColdAisle, OffsetC: 1.5}, 19.5},
		{Sensor{Node: NodeHotAisle, OffsetC: -1}, 25},
		{Sensor{Node: NodeReturn}, 25},
		{Sensor{Node: NodeRack, Rack: 2, OffsetC: 0.5}, 21.5},
	}
	for _, c := range cases {
		if got := c.s.Read(room, nil); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%v reads %g, want %g", c.s.Node, got, c.want)
		}
	}
}

func TestSensorNoiseIsZeroMean(t *testing.T) {
	room, _ := NewRoom(DefaultRoomConfig())
	room.ColdC = 20
	s := Sensor{Node: NodeColdAisle, NoiseStd: 0.2}
	r := rng.New(3)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += s.Read(room, r)
	}
	if math.Abs(sum/float64(n)-20) > 0.01 {
		t.Fatalf("noisy sensor mean %g, want ~20", sum/float64(n))
	}
}

func TestReadDCAndACUShapes(t *testing.T) {
	a := DefaultArray()
	room, _ := NewRoom(DefaultRoomConfig())
	dc := a.ReadDC(room, nil, nil)
	if len(dc) != 35 {
		t.Fatalf("ReadDC length %d", len(dc))
	}
	acu := a.ReadACU(room, nil, nil)
	if len(acu) != 2 {
		t.Fatalf("ReadACU length %d", len(acu))
	}
	// Buffer reuse must not reallocate.
	buf := make([]float64, 40)
	dc2 := a.ReadDC(room, nil, buf)
	if &dc2[0] != &buf[0] {
		t.Fatalf("ReadDC ignored the provided buffer")
	}
}

func TestMaxColdAisle(t *testing.T) {
	a := DefaultArray()
	readings := make([]float64, len(a.DC))
	for i := range readings {
		readings[i] = 15
	}
	readings[7] = 21.5  // cold-aisle sensor
	readings[20] = 30.0 // hot-aisle sensor must NOT count
	if got := a.MaxColdAisle(readings); got != 21.5 {
		t.Fatalf("MaxColdAisle = %g, want 21.5 (hot-aisle readings must be excluded)", got)
	}
}

func TestUnknownNodePanics(t *testing.T) {
	room, _ := NewRoom(DefaultRoomConfig())
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for unknown node")
		}
	}()
	Sensor{Node: Node(99)}.Read(room, nil)
}

func TestNodeString(t *testing.T) {
	if NodeColdAisle.String() != "cold-aisle" || NodeReturn.String() != "return" {
		t.Fatalf("Node.String wrong")
	}
	if Node(42).String() == "" {
		t.Fatalf("unknown node should stringify")
	}
}
