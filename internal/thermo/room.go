// Package thermo simulates the thermal behaviour of the air-contained data
// center room used as the TESLA testbed (paper §2, Figure 1): a cold aisle
// fed by the ACU, a hot aisle heated by the servers, four rack thermal
// nodes, and a return duct that introduces the sensing lag the PID
// controller acts on.
//
// The model is a lumped-parameter (zonal) RC network integrated with forward
// Euler at a sub-second to second time step. It is calibrated to reproduce
// the phenomena that motivate TESLA rather than absolute testbed numbers:
//
//   - cooling interruption drives the cold aisle up at ≈1 °C/min while
//     recovery proceeds at roughly half that rate (Figure 3);
//   - the air loop couples cold-aisle temperature to the set-point through
//     the supply temperature, so higher set-points erode the thermal-safety
//     margin;
//   - containment leakage and envelope gains keep the network strictly
//     dissipative, so temperatures stay bounded for bounded inputs.
package thermo

import "fmt"

// NumRacks is the number of rack thermal nodes (the paper's testbed has 4).
const NumRacks = 4

// RoomConfig parameterizes the zonal network. DefaultRoomConfig returns the
// calibrated values used by all experiments.
type RoomConfig struct {
	// AirLoopKWPerK is ṁ·c_p of the main containment air loop (kW/K): the
	// ACU moves this much heat per kelvin of supply/return difference.
	AirLoopKWPerK float64
	// LeakKWPerK is the containment leakage conductance between aisles.
	LeakKWPerK float64
	// BuoyancyKWPerK2 adds natural-convection leakage proportional to the
	// aisle temperature difference (effective conductance = LeakKWPerK +
	// BuoyancyKWPerK2·|ΔT|). This is the mild nonlinearity real rooms show:
	// hotter hot aisles drive more recirculation over the containment.
	BuoyancyKWPerK2 float64
	// EnvelopeKWPerK couples each aisle to the building ambient.
	EnvelopeKWPerK float64
	// AmbientC is the building temperature outside the containment.
	AmbientC float64
	// ColdCapKJPerK and HotCapKJPerK are aisle air+structure capacitances.
	ColdCapKJPerK float64
	HotCapKJPerK  float64
	// RackCapKJPerK is the per-rack node capacitance.
	RackCapKJPerK float64
	// RackCoupleKWPerK couples each rack node to the aisle air stream.
	RackCoupleKWPerK float64
	// ReturnTauS is the return-duct first-order lag (seconds); it is the lag
	// the ACU inlet sensors see.
	ReturnTauS float64
	// SupplyMinC is the lowest achievable supply temperature (evaporator
	// limit); cooling beyond it is wasted.
	SupplyMinC float64
	// MiscHeatKW is the constant non-IT heat load released into the hot
	// aisle (UPS losses, lighting, switch gear, server fans at idle). It
	// keeps the hot/cold split open even when the servers idle.
	MiscHeatKW float64
}

// DefaultRoomConfig returns the calibrated room used throughout the
// reproduction.
func DefaultRoomConfig() RoomConfig {
	return RoomConfig{
		AirLoopKWPerK:    0.70,
		LeakKWPerK:       0.05,
		BuoyancyKWPerK2:  0.008,
		EnvelopeKWPerK:   0.175,
		AmbientC:         29.0,
		ColdCapKJPerK:    300,
		HotCapKJPerK:     560,
		RackCapKJPerK:    900,
		RackCoupleKWPerK: 0.35,
		ReturnTauS:       35,
		SupplyMinC:       7,
		MiscHeatKW:       1.5,
	}
}

// Validate reports configuration errors that would make the network
// non-physical (zero capacitances or a non-dissipative loop).
func (c RoomConfig) Validate() error {
	switch {
	case c.AirLoopKWPerK <= 0:
		return fmt.Errorf("thermo: AirLoopKWPerK must be positive, got %g", c.AirLoopKWPerK)
	case c.ColdCapKJPerK <= 0 || c.HotCapKJPerK <= 0 || c.RackCapKJPerK <= 0:
		return fmt.Errorf("thermo: capacitances must be positive")
	case c.LeakKWPerK < 0 || c.EnvelopeKWPerK < 0 || c.RackCoupleKWPerK < 0 || c.BuoyancyKWPerK2 < 0:
		return fmt.Errorf("thermo: conductances must be non-negative")
	case c.ReturnTauS <= 0:
		return fmt.Errorf("thermo: ReturnTauS must be positive, got %g", c.ReturnTauS)
	}
	return nil
}

// Room is the zonal thermal state. Construct with NewRoom.
type Room struct {
	cfg RoomConfig

	ColdC   float64           // cold aisle air temperature (°C)
	HotC    float64           // hot aisle air temperature (°C)
	ReturnC float64           // ACU return/inlet air temperature (°C)
	SupplyC float64           // ACU supply air temperature (°C, algebraic)
	RackC   [NumRacks]float64 // rack node temperatures (°C)
}

// NewRoom returns a room initialized to a mild equilibrium-like state.
func NewRoom(cfg RoomConfig) (*Room, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Room{cfg: cfg}
	r.ColdC = 18
	r.HotC = 24
	r.ReturnC = 24
	r.SupplyC = 16
	for i := range r.RackC {
		r.RackC[i] = 20
	}
	return r, nil
}

// Config returns the room configuration.
func (r *Room) Config() RoomConfig { return r.cfg }

// Step advances the network by dt seconds.
//
// rackKW is the IT heat injected per rack (kW); coolKW is the heat the ACU
// currently extracts from the return air stream (kW). The achieved cooling
// may be less than requested when the supply temperature saturates at the
// evaporator limit; the achieved value is returned so the ACU can bill
// energy for what was actually delivered.
func (r *Room) Step(dt float64, rackKW [NumRacks]float64, coolKW float64) (achievedKW float64) {
	if dt <= 0 {
		panic("thermo: non-positive dt")
	}
	c := r.cfg

	// Supply temperature follows from an energy balance across the ACU coil.
	supply := r.ReturnC - coolKW/c.AirLoopKWPerK
	achievedKW = coolKW
	if supply < c.SupplyMinC {
		supply = c.SupplyMinC
		achievedKW = (r.ReturnC - supply) * c.AirLoopKWPerK
		if achievedKW < 0 {
			achievedKW = 0
		}
	}
	r.SupplyC = supply

	var totalIT float64
	for _, q := range rackKW {
		totalIT += q
	}

	// Rack nodes: heated by their share of IT power, cooled by cold-aisle
	// air moving across them.
	var rackToAir float64
	for i := range r.RackC {
		toAir := c.RackCoupleKWPerK * (r.RackC[i] - r.ColdC)
		rackToAir += toAir
		dT := (rackKW[i] - toAir) / c.RackCapKJPerK
		r.RackC[i] += dT * dt
	}

	// Containment leakage grows with the aisle split (buoyancy-driven
	// recirculation over the containment).
	dT := r.HotC - r.ColdC
	if dT < 0 {
		dT = -dT
	}
	leak := c.LeakKWPerK + c.BuoyancyKWPerK2*dT

	// Cold aisle: supply air in, server intake out, leakage and envelope.
	qCold := c.AirLoopKWPerK*(r.SupplyC-r.ColdC) +
		leak*(r.HotC-r.ColdC) +
		c.EnvelopeKWPerK*(c.AmbientC-r.ColdC) +
		rackToAir*0.25 // a quarter of rack surface heat spills to the cold side
	r.ColdC += qCold / c.ColdCapKJPerK * dt

	// Hot aisle: receives server exhaust (cold-aisle air plus the remaining
	// rack heat), loses return air to the ACU, leaks back to the cold aisle.
	qHot := c.AirLoopKWPerK*(r.ColdC-r.HotC) + rackToAir*0.75 +
		(totalIT - rackToAir) + // heat carried directly by server exhaust air
		c.MiscHeatKW +
		leak*(r.ColdC-r.HotC) +
		c.EnvelopeKWPerK*(c.AmbientC-r.HotC)
	r.HotC += qHot / c.HotCapKJPerK * dt

	// Return duct lag: what the ACU inlet sensors eventually see.
	r.ReturnC += (r.HotC - r.ReturnC) / c.ReturnTauS * dt

	return achievedKW
}

// MaxAchievableReturnC estimates the steady-state return temperature if the
// ACU delivered zero cooling forever given the present IT load — the
// float-up asymptote used by tests.
func (r *Room) MaxAchievableReturnC(totalITKW float64) float64 {
	// With no cooling the whole room converges to ambient + Q/UA_total.
	ua := 2 * r.cfg.EnvelopeKWPerK
	if ua <= 0 {
		return r.cfg.AmbientC + 1000
	}
	return r.cfg.AmbientC + totalITKW/ua
}
