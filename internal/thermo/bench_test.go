package thermo

import "testing"

// BenchmarkRoomStep measures one physics step of the zonal network — the
// inner loop of every simulation second.
func BenchmarkRoomStep(b *testing.B) {
	room, err := NewRoom(DefaultRoomConfig())
	if err != nil {
		b.Fatal(err)
	}
	rack := [NumRacks]float64{1, 1, 1, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		room.Step(1, rack, 5)
	}
}

// BenchmarkSensorSweep measures a full 37-sensor read.
func BenchmarkSensorSweep(b *testing.B) {
	room, err := NewRoom(DefaultRoomConfig())
	if err != nil {
		b.Fatal(err)
	}
	a := DefaultArray()
	buf := make([]float64, len(a.DC))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ReadDC(room, nil, buf)
	}
}
