package thermo

import (
	"fmt"
	"math"

	"tesla/internal/rng"
)

// Node identifies which thermal node a sensor samples.
type Node int

// Thermal node kinds a sensor can be attached to.
const (
	NodeColdAisle Node = iota
	NodeHotAisle
	NodeRack // uses Sensor.Rack to pick the rack index
	NodeReturn
)

// String implements fmt.Stringer.
func (n Node) String() string {
	switch n {
	case NodeColdAisle:
		return "cold-aisle"
	case NodeHotAisle:
		return "hot-aisle"
	case NodeRack:
		return "rack"
	case NodeReturn:
		return "return"
	default:
		return fmt.Sprintf("node(%d)", int(n))
	}
}

// FaultMode selects how a faulty probe misreports. FaultNone is the healthy
// default; the other modes are the field-failure taxonomy the fault-injection
// engine exercises (see internal/faults).
type FaultMode int

// Sensor fault modes.
const (
	// FaultNone reads normally.
	FaultNone FaultMode = iota
	// FaultStuck freezes the reading at StuckAt (dead probe, the dominant
	// failure mode of cheap rack probes).
	FaultStuck
	// FaultDrift adds the accumulated DriftC bias to the reading (thermistor
	// aging / detached probe slowly equalizing with ambient).
	FaultDrift
	// FaultDropout reports NaN (probe unplugged / bus CRC failure).
	FaultDropout
	// FaultNoise adds ExtraNoiseStd on top of the healthy measurement noise
	// (electrical interference burst).
	FaultNoise
)

// String implements fmt.Stringer.
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultStuck:
		return "stuck"
	case FaultDrift:
		return "drift"
	case FaultDropout:
		return "dropout"
	case FaultNoise:
		return "noise"
	default:
		return fmt.Sprintf("fault(%d)", int(m))
	}
}

// Sensor models one physical temperature probe: it reads a node temperature
// plus a fixed spatial offset (stratification along rack height) and
// zero-mean Gaussian measurement noise. A faulty sensor misreports according
// to its FaultMode — the failure taxonomy the controller-robustness tests
// and the fault-injection engine exercise.
type Sensor struct {
	Name     string
	Node     Node
	Rack     int     // rack index when Node == NodeRack
	OffsetC  float64 // systematic spatial offset
	NoiseStd float64 // measurement noise (°C)

	Failed  bool    // legacy flag: equivalent to Mode == FaultStuck
	StuckAt float64 // the frozen reading while stuck

	Mode          FaultMode
	DriftC        float64 // accumulated drift bias (FaultDrift); the engine integrates it
	ExtraNoiseStd float64 // extra measurement noise while FaultNoise is active
}

// Read samples the sensor against the current room state.
func (s Sensor) Read(room *Room, r *rng.Rand) float64 {
	if s.Failed || s.Mode == FaultStuck {
		return s.StuckAt
	}
	if s.Mode == FaultDropout {
		return math.NaN()
	}
	v := s.TrueRead(room)
	if s.Mode == FaultDrift {
		v += s.DriftC
	}
	std := s.NoiseStd
	if s.Mode == FaultNoise {
		std += s.ExtraNoiseStd
	}
	if std > 0 && r != nil {
		v += r.NormScaled(0, std)
	}
	return v
}

// TrueRead returns the physical temperature at the probe location (node
// temperature plus spatial offset) with no measurement noise and no fault —
// the ground truth the safety experiments score violations against.
func (s Sensor) TrueRead(room *Room) float64 {
	var base float64
	switch s.Node {
	case NodeColdAisle:
		base = room.ColdC
	case NodeHotAisle:
		base = room.HotC
	case NodeRack:
		base = room.RackC[s.Rack]
	case NodeReturn:
		base = room.ReturnC
	default:
		panic(fmt.Sprintf("thermo: unknown sensor node %d", s.Node))
	}
	return base + s.OffsetC
}

// ClearFault restores the sensor to healthy operation.
func (s *Sensor) ClearFault() {
	s.Failed = false
	s.Mode = FaultNone
	s.DriftC = 0
	s.ExtraNoiseStd = 0
}

// Array is the testbed sensor deployment: Nd rack-installed DC sensors of
// which the first NumColdAisle monitor the cold aisle (the thermal-safety
// constraint set, paper §3.3 eq. 9), plus Na ACU-internal inlet sensors.
type Array struct {
	DC  []Sensor // rack-installed DC sensors (N_d = 35 in the paper)
	ACU []Sensor // ACU internal inlet sensors (N_a = 2 in the paper)
	// NumColdAisle is the count of leading DC sensors located in the cold
	// aisle (11 in the paper); their indices form I_cold.
	NumColdAisle int
}

// DefaultArray builds the paper's deployment: 11 cold-aisle probes at
// different heights, 12 hot-aisle probes, 12 rack probes (3 per rack), and 2
// ACU inlet sensors.
func DefaultArray() *Array {
	a := &Array{NumColdAisle: 11}
	for i := 0; i < 11; i++ {
		// Stratification: probes higher on the rack read warmer; spread the
		// offsets over [0, 1.5] °C so the max cold-aisle sensor is ~1.5 °C
		// above the bulk cold-aisle temperature.
		off := 1.5 * float64(i) / 10
		a.DC = append(a.DC, Sensor{
			Name:    fmt.Sprintf("cold-%02d", i),
			Node:    NodeColdAisle,
			OffsetC: off, NoiseStd: 0.08,
		})
	}
	for i := 0; i < 12; i++ {
		off := -1.0 + 2.0*float64(i)/11
		a.DC = append(a.DC, Sensor{
			Name:    fmt.Sprintf("hot-%02d", i),
			Node:    NodeHotAisle,
			OffsetC: off, NoiseStd: 0.1,
		})
	}
	for i := 0; i < 12; i++ {
		a.DC = append(a.DC, Sensor{
			Name: fmt.Sprintf("rack-%d-%d", i%NumRacks, i/NumRacks),
			Node: NodeRack, Rack: i % NumRacks,
			OffsetC: 0.4 * float64(i/NumRacks), NoiseStd: 0.1,
		})
	}
	for i := 0; i < 2; i++ {
		a.ACU = append(a.ACU, Sensor{
			Name: fmt.Sprintf("acu-inlet-%d", i),
			Node: NodeReturn,
			// The two inlet probes sit at opposite corners of the intake.
			OffsetC: -0.15 + 0.3*float64(i), NoiseStd: 0.06,
		})
	}
	return a
}

// ReadDC samples every DC sensor into dst (reused if large enough).
func (a *Array) ReadDC(room *Room, r *rng.Rand, dst []float64) []float64 {
	if cap(dst) < len(a.DC) {
		dst = make([]float64, len(a.DC))
	}
	dst = dst[:len(a.DC)]
	for i, s := range a.DC {
		dst[i] = s.Read(room, r)
	}
	return dst
}

// ReadACU samples every ACU inlet sensor into dst.
func (a *Array) ReadACU(room *Room, r *rng.Rand, dst []float64) []float64 {
	if cap(dst) < len(a.ACU) {
		dst = make([]float64, len(a.ACU))
	}
	dst = dst[:len(a.ACU)]
	for i, s := range a.ACU {
		dst[i] = s.Read(room, r)
	}
	return dst
}

// ColdAisleIndices returns I_cold, the DC-sensor indices that participate in
// the thermal-safety constraint.
func (a *Array) ColdAisleIndices() []int {
	idx := make([]int, a.NumColdAisle)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// FailDC freezes DC sensor i at the given reading (fault injection).
func (a *Array) FailDC(i int, stuckAtC float64) {
	a.DC[i].Failed = true
	a.DC[i].StuckAt = stuckAtC
}

// RestoreDC clears a DC sensor fault.
func (a *Array) RestoreDC(i int) { a.DC[i].ClearFault() }

// MaxColdAisle returns the maximum reading among cold-aisle sensors. NaN
// readings (dropped-out probes) are skipped; if every cold-aisle probe is
// out, the result is NaN.
func (a *Array) MaxColdAisle(readings []float64) float64 {
	m := math.NaN()
	for _, v := range readings[:a.NumColdAisle] {
		if math.IsNaN(v) {
			continue
		}
		if math.IsNaN(m) || v > m {
			m = v
		}
	}
	return m
}

// TrueMaxColdAisle returns the ground-truth maximum cold-aisle temperature:
// the physical reading of every cold-aisle probe location, ignoring
// measurement noise and any injected fault.
func (a *Array) TrueMaxColdAisle(room *Room) float64 {
	m := math.Inf(-1)
	for _, s := range a.DC[:a.NumColdAisle] {
		if v := s.TrueRead(room); v > m {
			m = v
		}
	}
	return m
}
