package thermo

import (
	"fmt"

	"tesla/internal/rng"
)

// Node identifies which thermal node a sensor samples.
type Node int

// Thermal node kinds a sensor can be attached to.
const (
	NodeColdAisle Node = iota
	NodeHotAisle
	NodeRack // uses Sensor.Rack to pick the rack index
	NodeReturn
)

// String implements fmt.Stringer.
func (n Node) String() string {
	switch n {
	case NodeColdAisle:
		return "cold-aisle"
	case NodeHotAisle:
		return "hot-aisle"
	case NodeRack:
		return "rack"
	case NodeReturn:
		return "return"
	default:
		return fmt.Sprintf("node(%d)", int(n))
	}
}

// Sensor models one physical temperature probe: it reads a node temperature
// plus a fixed spatial offset (stratification along rack height) and
// zero-mean Gaussian measurement noise. A failed sensor reports a stuck
// value — the dominant failure mode of cheap rack probes, and the fault the
// controller-robustness tests inject.
type Sensor struct {
	Name     string
	Node     Node
	Rack     int     // rack index when Node == NodeRack
	OffsetC  float64 // systematic spatial offset
	NoiseStd float64 // measurement noise (°C)

	Failed  bool    // true: the probe reports StuckAtC regardless of state
	StuckAt float64 // the frozen reading while Failed
}

// Read samples the sensor against the current room state.
func (s Sensor) Read(room *Room, r *rng.Rand) float64 {
	if s.Failed {
		return s.StuckAt
	}
	var base float64
	switch s.Node {
	case NodeColdAisle:
		base = room.ColdC
	case NodeHotAisle:
		base = room.HotC
	case NodeRack:
		base = room.RackC[s.Rack]
	case NodeReturn:
		base = room.ReturnC
	default:
		panic(fmt.Sprintf("thermo: unknown sensor node %d", s.Node))
	}
	v := base + s.OffsetC
	if s.NoiseStd > 0 && r != nil {
		v += r.NormScaled(0, s.NoiseStd)
	}
	return v
}

// Array is the testbed sensor deployment: Nd rack-installed DC sensors of
// which the first NumColdAisle monitor the cold aisle (the thermal-safety
// constraint set, paper §3.3 eq. 9), plus Na ACU-internal inlet sensors.
type Array struct {
	DC  []Sensor // rack-installed DC sensors (N_d = 35 in the paper)
	ACU []Sensor // ACU internal inlet sensors (N_a = 2 in the paper)
	// NumColdAisle is the count of leading DC sensors located in the cold
	// aisle (11 in the paper); their indices form I_cold.
	NumColdAisle int
}

// DefaultArray builds the paper's deployment: 11 cold-aisle probes at
// different heights, 12 hot-aisle probes, 12 rack probes (3 per rack), and 2
// ACU inlet sensors.
func DefaultArray() *Array {
	a := &Array{NumColdAisle: 11}
	for i := 0; i < 11; i++ {
		// Stratification: probes higher on the rack read warmer; spread the
		// offsets over [0, 1.5] °C so the max cold-aisle sensor is ~1.5 °C
		// above the bulk cold-aisle temperature.
		off := 1.5 * float64(i) / 10
		a.DC = append(a.DC, Sensor{
			Name:    fmt.Sprintf("cold-%02d", i),
			Node:    NodeColdAisle,
			OffsetC: off, NoiseStd: 0.08,
		})
	}
	for i := 0; i < 12; i++ {
		off := -1.0 + 2.0*float64(i)/11
		a.DC = append(a.DC, Sensor{
			Name:    fmt.Sprintf("hot-%02d", i),
			Node:    NodeHotAisle,
			OffsetC: off, NoiseStd: 0.1,
		})
	}
	for i := 0; i < 12; i++ {
		a.DC = append(a.DC, Sensor{
			Name: fmt.Sprintf("rack-%d-%d", i%NumRacks, i/NumRacks),
			Node: NodeRack, Rack: i % NumRacks,
			OffsetC: 0.4 * float64(i/NumRacks), NoiseStd: 0.1,
		})
	}
	for i := 0; i < 2; i++ {
		a.ACU = append(a.ACU, Sensor{
			Name: fmt.Sprintf("acu-inlet-%d", i),
			Node: NodeReturn,
			// The two inlet probes sit at opposite corners of the intake.
			OffsetC: -0.15 + 0.3*float64(i), NoiseStd: 0.06,
		})
	}
	return a
}

// ReadDC samples every DC sensor into dst (reused if large enough).
func (a *Array) ReadDC(room *Room, r *rng.Rand, dst []float64) []float64 {
	if cap(dst) < len(a.DC) {
		dst = make([]float64, len(a.DC))
	}
	dst = dst[:len(a.DC)]
	for i, s := range a.DC {
		dst[i] = s.Read(room, r)
	}
	return dst
}

// ReadACU samples every ACU inlet sensor into dst.
func (a *Array) ReadACU(room *Room, r *rng.Rand, dst []float64) []float64 {
	if cap(dst) < len(a.ACU) {
		dst = make([]float64, len(a.ACU))
	}
	dst = dst[:len(a.ACU)]
	for i, s := range a.ACU {
		dst[i] = s.Read(room, r)
	}
	return dst
}

// ColdAisleIndices returns I_cold, the DC-sensor indices that participate in
// the thermal-safety constraint.
func (a *Array) ColdAisleIndices() []int {
	idx := make([]int, a.NumColdAisle)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// FailDC freezes DC sensor i at the given reading (fault injection).
func (a *Array) FailDC(i int, stuckAtC float64) {
	a.DC[i].Failed = true
	a.DC[i].StuckAt = stuckAtC
}

// RestoreDC clears a DC sensor fault.
func (a *Array) RestoreDC(i int) { a.DC[i].Failed = false }

// MaxColdAisle returns the maximum reading among cold-aisle sensors.
func (a *Array) MaxColdAisle(readings []float64) float64 {
	m := readings[0]
	for _, v := range readings[1:a.NumColdAisle] {
		if v > m {
			m = v
		}
	}
	return m
}
