// Package acu models the air-cooling unit of the TESLA testbed (an
// Envicool XR023A in the paper): a PID controller tracks the inlet (return
// air) temperature against the commanded set-point and modulates a
// compressor whose duty determines both the delivered cooling capacity and
// the electrical power draw.
//
// The power model reproduces the paper's observations:
//
//   - ≈100 W floor (fans/controls) when the compressor idles — the paper's
//     operational definition of a cooling interruption (§5.3);
//   - ≈5 kW peak draw when the set-point sits far below the inlet
//     temperature (§2.1);
//   - high variance at a constant set-point due to load-following and
//     compressor efficiency noise (Figure 2);
//   - efficiency (COP) improving with warmer return air, which is the
//     physical source of the energy saved by raising the set-point.
package acu

import (
	"fmt"

	"tesla/internal/pid"
	"tesla/internal/rng"
)

// Config parameterizes the ACU device.
type Config struct {
	// SetpointMinC and SetpointMaxC bound the commanded set-point
	// (20–35 °C for the paper's unit, Table 1).
	SetpointMinC, SetpointMaxC float64
	// MaxCoolKW is the peak cooling capacity at duty 1.
	MaxCoolKW float64
	// FanKW is the constant fan/controls draw, present even when the
	// compressor is off.
	FanKW float64
	// COPBase is the coefficient of performance at ReferenceReturnC.
	COPBase float64
	// COPSlopePerK improves COP per kelvin of return air above the
	// reference (evaporator approach effect).
	COPSlopePerK float64
	// ReferenceReturnC anchors the COP curve.
	ReferenceReturnC float64
	// PowerNoiseFrac is the multiplicative 1-sigma noise on compressor
	// power, modeling refrigerant-cycle variability.
	PowerNoiseFrac float64
	// PID holds the inlet-temperature loop gains.
	PID pid.Config
}

// DefaultConfig returns the calibrated unit used in all experiments.
func DefaultConfig() Config {
	return Config{
		SetpointMinC:     20,
		SetpointMaxC:     35,
		MaxCoolKW:        13,
		FanKW:            0.095,
		COPBase:          3.3,
		COPSlopePerK:     0.05,
		ReferenceReturnC: 23,
		PowerNoiseFrac:   0.05,
		PID: pid.Config{
			Kp: 0.30, Ki: 0.00006, Kd: 6,
			OutMin: 0, OutMax: 1,
			ReverseActing: true,
			DerivativeTau: 30,
		},
	}
}

// Validate reports non-physical configurations.
func (c Config) Validate() error {
	switch {
	case c.SetpointMinC >= c.SetpointMaxC:
		return fmt.Errorf("acu: set-point range [%g,%g] is empty", c.SetpointMinC, c.SetpointMaxC)
	case c.MaxCoolKW <= 0:
		return fmt.Errorf("acu: MaxCoolKW must be positive")
	case c.FanKW < 0:
		return fmt.Errorf("acu: FanKW must be non-negative")
	case c.COPBase <= 0:
		return fmt.Errorf("acu: COPBase must be positive")
	}
	return nil
}

// ACU is the simulated air-cooling unit.
type ACU struct {
	cfg  Config
	ctrl *pid.Controller

	setpointC float64
	duty      float64
	powerKW   float64
	coolKW    float64
}

// New returns an ACU with the commanded set-point initialized to 23 °C (the
// paper's fixed-policy value).
func New(cfg Config) (*ACU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &ACU{cfg: cfg, ctrl: pid.New(cfg.PID)}
	a.setpointC = clamp(23, cfg.SetpointMinC, cfg.SetpointMaxC)
	a.powerKW = cfg.FanKW
	return a, nil
}

// Config returns the device configuration.
func (a *ACU) Config() Config { return a.cfg }

// SetSetpoint commands a new inlet-temperature set-point, clamped to the
// unit's allowable range, and returns the value actually latched.
func (a *ACU) SetSetpoint(c float64) float64 {
	a.setpointC = clamp(c, a.cfg.SetpointMinC, a.cfg.SetpointMaxC)
	return a.setpointC
}

// Setpoint returns the currently latched set-point.
func (a *ACU) Setpoint() float64 { return a.setpointC }

// Duty returns the last compressor duty in [0, 1].
func (a *ACU) Duty() float64 { return a.duty }

// PowerKW returns the last instantaneous electrical draw.
func (a *ACU) PowerKW() float64 { return a.powerKW }

// CoolKW returns the last requested cooling output.
func (a *ACU) CoolKW() float64 { return a.coolKW }

// Interrupted reports whether the unit is currently in cooling interruption
// per the paper's operational definition (power below 100 W).
func (a *ACU) Interrupted() bool { return a.powerKW < 0.100 }

// COPAt returns the coefficient of performance for a given return-air
// temperature.
func (a *ACU) COPAt(returnC float64) float64 {
	cop := a.cfg.COPBase + a.cfg.COPSlopePerK*(returnC-a.cfg.ReferenceReturnC)
	if cop < 0.8 {
		cop = 0.8
	}
	return cop
}

// Step advances the control loop by dt seconds given the measured inlet
// temperature (average of the unit's internal sensors), returning the
// cooling power (kW) to inject into the room model.
//
// The electrical power is computed from the delivered cooling and the
// temperature-dependent COP, with multiplicative cycle noise; pass nil r for
// a noise-free device.
func (a *ACU) Step(dt float64, measuredInletC float64, r *rng.Rand) (coolKW float64) {
	a.duty = a.ctrl.Update(a.setpointC, measuredInletC, dt)
	a.coolKW = a.duty * a.cfg.MaxCoolKW

	comp := a.coolKW / a.COPAt(measuredInletC)
	if a.cfg.PowerNoiseFrac > 0 && r != nil && comp > 0 {
		comp *= 1 + a.cfg.PowerNoiseFrac*r.Norm()
		if comp < 0 {
			comp = 0
		}
	}
	a.powerKW = a.cfg.FanKW + comp
	return a.coolKW
}

// BillAchieved lets the room model report the cooling actually delivered
// (less than requested when the supply temperature saturates); the ACU
// re-bills its power draw accordingly so energy accounting stays consistent.
func (a *ACU) BillAchieved(achievedKW, measuredInletC float64) {
	if achievedKW >= a.coolKW {
		return
	}
	frac := 0.0
	if a.coolKW > 0 {
		frac = achievedKW / a.coolKW
	}
	comp := (a.powerKW - a.cfg.FanKW) * frac
	a.powerKW = a.cfg.FanKW + comp
	a.coolKW = achievedKW
}

// Reset restores the PID state (used between experiments).
func (a *ACU) Reset() {
	a.ctrl.Reset()
	a.duty = 0
	a.coolKW = 0
	a.powerKW = a.cfg.FanKW
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
