// Package acu models the air-cooling unit of the TESLA testbed (an
// Envicool XR023A in the paper): a PID controller tracks the inlet (return
// air) temperature against the commanded set-point and modulates a
// compressor whose duty determines both the delivered cooling capacity and
// the electrical power draw.
//
// The power model reproduces the paper's observations:
//
//   - ≈100 W floor (fans/controls) when the compressor idles — the paper's
//     operational definition of a cooling interruption (§5.3);
//   - ≈5 kW peak draw when the set-point sits far below the inlet
//     temperature (§2.1);
//   - high variance at a constant set-point due to load-following and
//     compressor efficiency noise (Figure 2);
//   - efficiency (COP) improving with warmer return air, which is the
//     physical source of the energy saved by raising the set-point.
package acu

import (
	"fmt"

	"tesla/internal/pid"
	"tesla/internal/rng"
)

// Config parameterizes the ACU device.
type Config struct {
	// SetpointMinC and SetpointMaxC bound the commanded set-point
	// (20–35 °C for the paper's unit, Table 1).
	SetpointMinC, SetpointMaxC float64
	// MaxCoolKW is the peak cooling capacity at duty 1.
	MaxCoolKW float64
	// FanKW is the constant fan/controls draw, present even when the
	// compressor is off.
	FanKW float64
	// COPBase is the coefficient of performance at ReferenceReturnC.
	COPBase float64
	// COPSlopePerK improves COP per kelvin of return air above the
	// reference (evaporator approach effect).
	COPSlopePerK float64
	// ReferenceReturnC anchors the COP curve.
	ReferenceReturnC float64
	// PowerNoiseFrac is the multiplicative 1-sigma noise on compressor
	// power, modeling refrigerant-cycle variability.
	PowerNoiseFrac float64
	// PID holds the inlet-temperature loop gains.
	PID pid.Config
}

// DefaultConfig returns the calibrated unit used in all experiments.
func DefaultConfig() Config {
	return Config{
		SetpointMinC:     20,
		SetpointMaxC:     35,
		MaxCoolKW:        13,
		FanKW:            0.095,
		COPBase:          3.3,
		COPSlopePerK:     0.05,
		ReferenceReturnC: 23,
		PowerNoiseFrac:   0.05,
		PID: pid.Config{
			Kp: 0.30, Ki: 0.00006, Kd: 6,
			OutMin: 0, OutMax: 1,
			ReverseActing: true,
			DerivativeTau: 30,
		},
	}
}

// Validate reports non-physical configurations.
func (c Config) Validate() error {
	switch {
	case c.SetpointMinC >= c.SetpointMaxC:
		return fmt.Errorf("acu: set-point range [%g,%g] is empty", c.SetpointMinC, c.SetpointMaxC)
	case c.MaxCoolKW <= 0:
		return fmt.Errorf("acu: MaxCoolKW must be positive")
	case c.FanKW < 0:
		return fmt.Errorf("acu: FanKW must be non-negative")
	case c.COPBase <= 0:
		return fmt.Errorf("acu: COPBase must be positive")
	}
	return nil
}

// ACU is the simulated air-cooling unit.
type ACU struct {
	cfg  Config
	ctrl *pid.Controller

	setpointC float64
	duty      float64
	powerKW   float64
	coolKW    float64

	// Fault-injection state (see internal/faults): a forced interruption cuts
	// the compressor, a failed latch ignores set-point commands, and a
	// capacity factor below 1 derates delivered cooling at full electrical
	// draw (degraded refrigerant cycle).
	forcedOff      bool
	latchFailed    bool
	capacityFactor float64
}

// New returns an ACU with the commanded set-point initialized to 23 °C (the
// paper's fixed-policy value).
func New(cfg Config) (*ACU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &ACU{cfg: cfg, ctrl: pid.New(cfg.PID), capacityFactor: 1}
	a.setpointC = clamp(23, cfg.SetpointMinC, cfg.SetpointMaxC)
	a.powerKW = cfg.FanKW
	return a, nil
}

// Config returns the device configuration.
func (a *ACU) Config() Config { return a.cfg }

// SetSetpoint commands a new inlet-temperature set-point, clamped to the
// unit's allowable range, and returns the value actually latched. While the
// set-point latch is failed the command is ignored and the previously latched
// value is returned — exactly what a wedged Modbus register looks like.
func (a *ACU) SetSetpoint(c float64) float64 {
	if a.latchFailed {
		return a.setpointC
	}
	a.setpointC = clamp(c, a.cfg.SetpointMinC, a.cfg.SetpointMaxC)
	return a.setpointC
}

// ForceInterruption cuts (or restores) the compressor regardless of the PID
// demand, reproducing the paper's cooling-interruption windows (Fig. 3) on
// command. The fan floor keeps drawing, so the unit reports Interrupted.
func (a *ACU) ForceInterruption(on bool) { a.forcedOff = on }

// ForcedInterruption reports whether a forced interruption is active.
func (a *ACU) ForcedInterruption() bool { return a.forcedOff }

// SetLatchFailed wedges (or frees) the set-point latch.
func (a *ACU) SetLatchFailed(on bool) { a.latchFailed = on }

// LatchFailed reports whether the set-point latch is wedged.
func (a *ACU) LatchFailed() bool { return a.latchFailed }

// SetCapacityFactor derates delivered cooling to f in (0, 1] while the
// compressor keeps drawing its commanded power — a degraded refrigerant
// cycle. Passing 1 restores the healthy unit; values outside (0, 1] clamp.
func (a *ACU) SetCapacityFactor(f float64) {
	if f <= 0 {
		f = 0.01
	}
	if f > 1 {
		f = 1
	}
	a.capacityFactor = f
}

// CapacityFactor returns the current cooling derating factor.
func (a *ACU) CapacityFactor() float64 { return a.capacityFactor }

// Setpoint returns the currently latched set-point.
func (a *ACU) Setpoint() float64 { return a.setpointC }

// Duty returns the last compressor duty in [0, 1].
func (a *ACU) Duty() float64 { return a.duty }

// PowerKW returns the last instantaneous electrical draw.
func (a *ACU) PowerKW() float64 { return a.powerKW }

// CoolKW returns the last requested cooling output.
func (a *ACU) CoolKW() float64 { return a.coolKW }

// Interrupted reports whether the unit is currently in cooling interruption
// per the paper's operational definition (power below 100 W).
func (a *ACU) Interrupted() bool { return a.powerKW < 0.100 }

// COPAt returns the coefficient of performance for a given return-air
// temperature.
func (a *ACU) COPAt(returnC float64) float64 {
	cop := a.cfg.COPBase + a.cfg.COPSlopePerK*(returnC-a.cfg.ReferenceReturnC)
	if cop < 0.8 {
		cop = 0.8
	}
	return cop
}

// Step advances the control loop by dt seconds given the measured inlet
// temperature (average of the unit's internal sensors), returning the
// cooling power (kW) to inject into the room model.
//
// The electrical power is computed from the delivered cooling and the
// temperature-dependent COP, with multiplicative cycle noise; pass nil r for
// a noise-free device.
func (a *ACU) Step(dt float64, measuredInletC float64, r *rng.Rand) (coolKW float64) {
	// The PID keeps running even through a forced interruption (the
	// controller board stays powered; only the compressor contactor is open),
	// so its state on restart is realistic.
	a.duty = a.ctrl.Update(a.setpointC, measuredInletC, dt)
	if a.forcedOff {
		a.duty = 0
		a.coolKW = 0
		a.powerKW = a.cfg.FanKW
		return 0
	}
	commandedKW := a.duty * a.cfg.MaxCoolKW
	a.coolKW = commandedKW * a.capacityFactor

	// Electrical draw follows the commanded (undegraded) duty: a derated
	// cycle wastes the shortfall, which is what makes degradation an
	// efficiency fault rather than a free capacity cut.
	comp := commandedKW / a.COPAt(measuredInletC)
	if a.cfg.PowerNoiseFrac > 0 && r != nil && comp > 0 {
		comp *= 1 + a.cfg.PowerNoiseFrac*r.Norm()
		if comp < 0 {
			comp = 0
		}
	}
	a.powerKW = a.cfg.FanKW + comp
	return a.coolKW
}

// BillAchieved lets the room model report the cooling actually delivered
// (less than requested when the supply temperature saturates); the ACU
// re-bills its power draw accordingly so energy accounting stays consistent.
func (a *ACU) BillAchieved(achievedKW, measuredInletC float64) {
	if achievedKW >= a.coolKW {
		return
	}
	frac := 0.0
	if a.coolKW > 0 {
		frac = achievedKW / a.coolKW
	}
	comp := (a.powerKW - a.cfg.FanKW) * frac
	a.powerKW = a.cfg.FanKW + comp
	a.coolKW = achievedKW
}

// Reset restores the PID state and clears any injected fault (used between
// experiments).
func (a *ACU) Reset() {
	a.ctrl.Reset()
	a.duty = 0
	a.coolKW = 0
	a.powerKW = a.cfg.FanKW
	a.forcedOff = false
	a.latchFailed = false
	a.capacityFactor = 1
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
