package acu

import (
	"math"
	"testing"

	"tesla/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.SetpointMinC, bad.SetpointMaxC = 30, 20
	if bad.Validate() == nil {
		t.Fatalf("inverted set-point range should fail")
	}
	bad = good
	bad.MaxCoolKW = 0
	if bad.Validate() == nil {
		t.Fatalf("zero capacity should fail")
	}
	bad = good
	bad.COPBase = -1
	if bad.Validate() == nil {
		t.Fatalf("negative COP should fail")
	}
	if _, err := New(bad); err == nil {
		t.Fatalf("New should propagate validation")
	}
}

func TestSetpointClampedToPaperRange(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.SetSetpoint(10); got != 20 {
		t.Fatalf("below-range set-point latched %g, want 20", got)
	}
	if got := a.SetSetpoint(40); got != 35 {
		t.Fatalf("above-range set-point latched %g, want 35", got)
	}
	if got := a.SetSetpoint(27.5); got != 27.5 {
		t.Fatalf("in-range set-point latched %g", got)
	}
	if a.Setpoint() != 27.5 {
		t.Fatalf("Setpoint() = %g", a.Setpoint())
	}
}

func TestPowerFloorAndInterruption(t *testing.T) {
	a, _ := New(DefaultConfig())
	a.SetSetpoint(35)
	// Inlet far below the set-point: the PID idles the compressor.
	for i := 0; i < 600; i++ {
		a.Step(1, 20, nil)
	}
	if a.Duty() != 0 {
		t.Fatalf("duty should be 0 when far below set-point, got %g", a.Duty())
	}
	if math.Abs(a.PowerKW()-DefaultConfig().FanKW) > 1e-9 {
		t.Fatalf("idle power %g, want fan floor %g", a.PowerKW(), DefaultConfig().FanKW)
	}
	if !a.Interrupted() {
		t.Fatalf("power below 100 W must register as cooling interruption")
	}
}

func TestHighDemandApproachesPeakPower(t *testing.T) {
	a, _ := New(DefaultConfig())
	a.SetSetpoint(20)
	// Inlet far above the set-point: duty saturates.
	for i := 0; i < 3600; i++ {
		a.Step(1, 32, nil)
	}
	if a.Duty() < 0.999 {
		t.Fatalf("duty should saturate at 1, got %g", a.Duty())
	}
	// Peak power ≈ fan + MaxCool/COP(32) — the ~5 kW regime of §2.1.
	cfg := DefaultConfig()
	want := cfg.FanKW + cfg.MaxCoolKW/a.COPAt(32)
	if math.Abs(a.PowerKW()-want) > 1e-6 {
		t.Fatalf("peak power %g, want %g", a.PowerKW(), want)
	}
	if a.PowerKW() < 2.5 {
		t.Fatalf("peak power %g kW implausibly low", a.PowerKW())
	}
}

func TestCOPImprovesWithWarmerReturn(t *testing.T) {
	a, _ := New(DefaultConfig())
	if a.COPAt(28) <= a.COPAt(22) {
		t.Fatalf("COP must improve with warmer return air: %g vs %g", a.COPAt(28), a.COPAt(22))
	}
	if a.COPAt(-100) < 0.8 {
		t.Fatalf("COP floor violated")
	}
}

func TestPowerNoiseVariesButStaysPositive(t *testing.T) {
	a, _ := New(DefaultConfig())
	a.SetSetpoint(20)
	r := rng.New(5)
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		a.Step(1, 30, r)
		if a.PowerKW() < 0 {
			t.Fatalf("negative power")
		}
		seen[a.PowerKW()] = true
	}
	if len(seen) < 50 {
		t.Fatalf("power noise produced only %d distinct values", len(seen))
	}
}

func TestBillAchievedReducesPowerProportionally(t *testing.T) {
	a, _ := New(DefaultConfig())
	a.SetSetpoint(20)
	cool := 0.0
	for i := 0; i < 600; i++ {
		cool = a.Step(1, 30, nil)
	}
	full := a.PowerKW()
	a.BillAchieved(cool/2, 30)
	rebilled := a.PowerKW()
	wantComp := (full - a.Config().FanKW) / 2
	if math.Abs(rebilled-a.Config().FanKW-wantComp) > 1e-9 {
		t.Fatalf("rebilled %g, want fan+%g", rebilled, wantComp)
	}
	if a.CoolKW() != cool/2 {
		t.Fatalf("CoolKW not updated: %g", a.CoolKW())
	}
	// Achieving MORE than requested must be a no-op.
	before := a.PowerKW()
	a.BillAchieved(cool*2, 30)
	if a.PowerKW() != before {
		t.Fatalf("over-achievement should not change billing")
	}
}

func TestResetRestoresIdle(t *testing.T) {
	a, _ := New(DefaultConfig())
	a.SetSetpoint(20)
	for i := 0; i < 100; i++ {
		a.Step(1, 30, nil)
	}
	a.Reset()
	if a.Duty() != 0 || a.CoolKW() != 0 {
		t.Fatalf("Reset left duty %g cool %g", a.Duty(), a.CoolKW())
	}
	if a.PowerKW() != a.Config().FanKW {
		t.Fatalf("Reset power %g", a.PowerKW())
	}
}
