package store

import (
	"fmt"
	"testing"
)

func BenchmarkWALAppend(b *testing.B) {
	for _, bc := range []struct {
		name string
		sync int
	}{
		{"sync-every", 0},
		{"sync-batch32", 32},
		{"sync-never", -1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w, _, err := OpenWAL(b.TempDir(), WALOptions{SyncEvery: bc.sync}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			r := testRecord(7)
			payload := r.Encode(nil)
			b.SetBytes(int64(frameHeaderLen + len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.AppendRecord(&r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRecover(b *testing.B) {
	for _, n := range []int{1000, 5000, 20000} {
		b.Run(fmt.Sprintf("records%d", n), func(b *testing.B) {
			dir := b.TempDir()
			w, _, err := OpenWAL(dir, WALOptions{SyncEvery: -1}, nil)
			if err != nil {
				b.Fatal(err)
			}
			r := testRecord(7)
			for i := 0; i < n; i++ {
				if err := w.AppendRecord(&r); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := 0
				w, rec, err := OpenWAL(dir, WALOptions{SyncEvery: -1}, func(p []byte) error {
					if _, err := DecodeRecord(p); err != nil {
						return err
					}
					got++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if rec.Records != n || got != n {
					b.Fatalf("recovered %d/%d", rec.Records, got)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
