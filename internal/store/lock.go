package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ErrStoreLocked is the sentinel every LockedError wraps: the data directory
// is already open for writing by another store instance. Two control loops
// appending to one WAL would interleave frames and corrupt the trajectory —
// exactly the race a botched migration or failover would hit — so Open
// refuses loudly instead.
var ErrStoreLocked = errors.New("store: data directory locked")

// LockedError reports a refused Open with the identity the current holder
// recorded when it took the lock. errors.Is(err, ErrStoreLocked) matches it.
type LockedError struct {
	// Dir is the data directory that was refused.
	Dir string
	// Holder is the identity string the current owner wrote into the lock
	// file ("<pid>" by default, or Options.LockHolder).
	Holder string
}

func (e *LockedError) Error() string {
	holder := e.Holder
	if holder == "" {
		holder = "unknown holder"
	}
	return fmt.Sprintf("store: %s locked by %s", e.Dir, holder)
}

func (e *LockedError) Unwrap() error { return ErrStoreLocked }

// lockFileName is the advisory lock file kept in every store directory. The
// file itself is just a mailbox for the holder's identity; mutual exclusion
// comes from the OS lock on its descriptor, which dies with the process — a
// kill -9 never leaves a stale lock behind.
const lockFileName = "LOCK"

// dirLock is one acquired store-directory lock.
type dirLock struct {
	f *os.File
}

// acquireDirLock takes the single-writer lock for dir, recording holder in
// the lock file. It never blocks: a held lock returns *LockedError.
func acquireDirLock(dir, holder string) (*dirLock, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockExclusive(f); err != nil {
		// Read whoever holds it for the error message, then bail.
		buf := make([]byte, 256)
		n, _ := f.ReadAt(buf, 0)
		f.Close()
		return nil, &LockedError{Dir: dir, Holder: strings.TrimSpace(string(buf[:n]))}
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.WriteAt([]byte(holder), 0); err != nil {
		f.Close()
		return nil, err
	}
	return &dirLock{f: f}, nil
}

// release drops the lock. The lock file stays behind (removing it would race
// a concurrent acquirer onto a dead inode); only the descriptor's OS lock
// matters, and closing releases it.
func (l *dirLock) release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	_ = f.Truncate(0)
	return f.Close()
}
