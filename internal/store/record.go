package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"tesla/internal/dataset"
	"tesla/internal/testbed"
)

// Kind classifies a WAL record.
type Kind uint8

// The record kinds a control loop logs.
const (
	// KindWarmup is a warm-up telemetry sample recorded before the policy
	// started deciding (no commanded set-point of its own).
	KindWarmup Kind = 1
	// KindStep is one control step: the commanded set-point plus the
	// telemetry sample the plant returned for it.
	KindStep Kind = 2
)

// Record is one durable control-loop entry: the step's inputs (the telemetry
// sample appended to the trace) and, for KindStep, the decision that produced
// it. The sequence of records is the trace — recovery rebuilds the in-memory
// dataset.Trace by replaying them in order.
type Record struct {
	Kind Kind
	// Step is the warm-up index for KindWarmup and the evaluation-step index
	// for KindStep (each numbered from 0).
	Step uint32
	// Setpoint is the commanded set-point (KindStep only; the supervisor's
	// output, which recovery re-derives and cross-checks).
	Setpoint float64
	// Level is the safety-supervisor stage the step executed under.
	Level uint8
	// Sample is the telemetry the plant delivered for the step.
	Sample testbed.Sample
}

// The codec is hand-rolled little-endian binary rather than gob: records are
// written once per control step on the hot path, floats must round-trip
// bit-exactly, and a fixed layout keeps the framing self-describing enough
// for the torn-tail scanner to re-synchronize by length alone.

// recordHeaderLen is the fixed prefix: kind(1) + level(1) + step(4) +
// setpoint(8) + 9 float64 sample scalars + interrupted(1) + two u16 counts.
const recordHeaderLen = 1 + 1 + 4 + 8 + 9*8 + 1 + 2 + 2

// maxSensors bounds the per-record slice counts a decoder will accept —
// far above any plausible plant, low enough that a corrupt length cannot
// drive an allocation into gigabytes.
const maxSensors = 1 << 14

func putF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Encode appends the record's wire form to buf and returns the result.
func (r *Record) Encode(buf []byte) []byte {
	buf = append(buf, byte(r.Kind), r.Level)
	buf = binary.LittleEndian.AppendUint32(buf, r.Step)
	buf = putF64(buf, r.Setpoint)
	s := &r.Sample
	buf = putF64(buf, s.TimeS)
	buf = putF64(buf, s.SetpointC)
	buf = putF64(buf, s.ACUPowerKW)
	buf = putF64(buf, s.ACUDuty)
	buf = putF64(buf, s.SupplyC)
	buf = putF64(buf, s.AvgServerKW)
	buf = putF64(buf, s.TotalIT)
	buf = putF64(buf, s.AvgUtil)
	buf = putF64(buf, s.MaxColdAisle)
	if s.Interrupted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.ACUTemps)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.DCTemps)))
	for _, v := range s.ACUTemps {
		buf = putF64(buf, v)
	}
	for _, v := range s.DCTemps {
		buf = putF64(buf, v)
	}
	buf = putF64(buf, s.TrueMaxColdC)
	return buf
}

// DecodeRecord parses one record payload produced by Encode.
func DecodeRecord(b []byte) (Record, error) {
	var r Record
	if len(b) < recordHeaderLen {
		return r, fmt.Errorf("store: record payload %d bytes, header needs %d", len(b), recordHeaderLen)
	}
	r.Kind = Kind(b[0])
	if r.Kind != KindWarmup && r.Kind != KindStep {
		return r, fmt.Errorf("store: unknown record kind %d", b[0])
	}
	r.Level = b[1]
	r.Step = binary.LittleEndian.Uint32(b[2:])
	r.Setpoint = getF64(b[6:])
	s := &r.Sample
	off := 14
	scalars := []*float64{
		&s.TimeS, &s.SetpointC, &s.ACUPowerKW, &s.ACUDuty, &s.SupplyC,
		&s.AvgServerKW, &s.TotalIT, &s.AvgUtil, &s.MaxColdAisle,
	}
	for _, p := range scalars {
		*p = getF64(b[off:])
		off += 8
	}
	s.Interrupted = b[off] != 0
	off++
	na := int(binary.LittleEndian.Uint16(b[off:]))
	nd := int(binary.LittleEndian.Uint16(b[off+2:]))
	off += 4
	if na > maxSensors || nd > maxSensors {
		return r, fmt.Errorf("store: implausible sensor counts %d/%d", na, nd)
	}
	want := off + 8*(na+nd) + 8
	if len(b) != want {
		return r, fmt.Errorf("store: record payload %d bytes, layout needs %d", len(b), want)
	}
	s.ACUTemps = make([]float64, na)
	for i := range s.ACUTemps {
		s.ACUTemps[i] = getF64(b[off:])
		off += 8
	}
	s.DCTemps = make([]float64, nd)
	for i := range s.DCTemps {
		s.DCTemps[i] = getF64(b[off:])
		off += 8
	}
	s.TrueMaxColdC = getF64(b[off:])
	return r, nil
}

// Partition splits a recovered record sequence into its warm-up prefix and
// evaluation steps, validating that each group's step indices are dense and
// in order (a WAL whose indices jump has lost interior records and cannot be
// replayed).
func Partition(recs []Record) (warmup, steps []Record, err error) {
	i := 0
	for ; i < len(recs) && recs[i].Kind == KindWarmup; i++ {
		if int(recs[i].Step) != i {
			return nil, nil, fmt.Errorf("store: warm-up record %d carries index %d", i, recs[i].Step)
		}
	}
	warmup = recs[:i]
	steps = recs[i:]
	for j, r := range steps {
		if r.Kind != KindStep {
			return nil, nil, fmt.Errorf("store: record %d: warm-up record after the first control step", i+j)
		}
		if int(r.Step) != j {
			return nil, nil, fmt.Errorf("store: step record %d carries index %d", j, r.Step)
		}
	}
	return warmup, steps, nil
}

// BuildTrace reconstructs the in-memory telemetry trace from a recovered
// record sequence. Sensor counts are taken from the first record; a record
// that disagrees fails rather than panicking inside the trace append.
func BuildTrace(periodS float64, recs []Record) (*dataset.Trace, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("store: no records to rebuild a trace from")
	}
	na, nd := len(recs[0].Sample.ACUTemps), len(recs[0].Sample.DCTemps)
	tr := dataset.NewTrace(periodS, na, nd)
	for i, r := range recs {
		if len(r.Sample.ACUTemps) != na || len(r.Sample.DCTemps) != nd {
			return nil, fmt.Errorf("store: record %d has %d/%d sensors, trace expects %d/%d",
				i, len(r.Sample.ACUTemps), len(r.Sample.DCTemps), na, nd)
		}
		tr.Append(r.Sample)
	}
	return tr, nil
}
