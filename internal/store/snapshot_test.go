package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("controller state at step 42")
	if _, err := writeSnapshot(dir, 42, payload); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}
	got, step, invalid, ok := loadSnapshot(dir)
	if !ok || invalid != 0 {
		t.Fatalf("loadSnapshot ok=%v invalid=%d", ok, invalid)
	}
	if step != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("loaded step %d payload %q", step, got)
	}
}

func TestSnapshotNewestWinsAndPrunes(t *testing.T) {
	dir := t.TempDir()
	for _, step := range []uint64{10, 20, 30, 40} {
		if _, err := writeSnapshot(dir, step, []byte{byte(step)}); err != nil {
			t.Fatal(err)
		}
	}
	names := snapshotFiles(dir)
	if len(names) != keepSnapshots {
		t.Fatalf("%d snapshot files on disk, want %d", len(names), keepSnapshots)
	}
	payload, step, _, ok := loadSnapshot(dir)
	if !ok || step != 40 || payload[0] != 40 {
		t.Fatalf("newest snapshot: step=%d ok=%v", step, ok)
	}
}

func TestSnapshotCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	if _, err := writeSnapshot(dir, 10, []byte("older")); err != nil {
		t.Fatal(err)
	}
	if _, err := writeSnapshot(dir, 20, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot's payload.
	newest := filepath.Join(dir, snapshotName(20))
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(newest, b, 0o644); err != nil {
		t.Fatal(err)
	}
	payload, step, invalid, ok := loadSnapshot(dir)
	if !ok || step != 10 || string(payload) != "older" {
		t.Fatalf("fallback failed: ok=%v step=%d payload=%q", ok, step, payload)
	}
	if invalid != 1 {
		t.Fatalf("invalid=%d, want 1", invalid)
	}
	// Truncate the older one too: nothing valid remains.
	if err := os.Truncate(filepath.Join(dir, snapshotName(10)), 5); err != nil {
		t.Fatal(err)
	}
	if _, _, invalid, ok := loadSnapshot(dir); ok || invalid != 2 {
		t.Fatalf("all-corrupt load: ok=%v invalid=%d", ok, invalid)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := Checkpoint{
		Step:       123,
		Policy:     []byte{1, 2, 3},
		Supervisor: []byte{4, 5},
		Harness:    []byte{6},
	}
	payload, err := EncodeCheckpoint(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != checkpointVersion || got.Step != 123 ||
		!bytes.Equal(got.Policy, c.Policy) || !bytes.Equal(got.Supervisor, c.Supervisor) ||
		!bytes.Equal(got.Harness, c.Harness) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := DecodeCheckpoint([]byte("not a checkpoint")); err == nil {
		t.Fatal("garbage payload decoded")
	}
}
