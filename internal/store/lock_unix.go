//go:build unix

package store

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive lock on f's descriptor.
// flock locks belong to the open file description, so two Opens of the same
// directory conflict even inside one process — which is how the tests
// simulate two shards racing for a room — and the lock evaporates the moment
// the descriptor closes, including on process death.
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
