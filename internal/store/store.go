// Package store is the per-room durability subsystem: an append-only,
// segmented, CRC32C-framed write-ahead log of every control step's inputs
// and decision, plus periodic versioned-gob snapshots of full controller
// state. Together they make a control loop restartable without a cold
// re-maturation window — exactly when a cooling-control outage is most
// dangerous (the cold aisle rises at ~1 °C/min while control is down,
// paper Fig. 3).
//
// The contract recovery relies on:
//
//   - The WAL is the trace. Every telemetry sample appended to the in-memory
//     dataset.Trace is logged (warm-up included), so the trace the policy saw
//     is rebuilt bit-exactly from the records.
//
//   - Snapshots bound replay, never replace it. A checkpoint captures the
//     controller's learned state (GP observation history, error-monitor
//     residual windows and RNG, smoothing buffer, safety-supervisor
//     quarantine/hysteresis state) after step S; recovery restores it and
//     re-runs the real Decide path over WAL steps S..K. Because every layer
//     is deterministic given (state, trace), the replayed decisions are
//     bit-identical to the logged ones — recovery cross-checks and counts
//     any mismatch.
//
//   - Torn tails are expected, not fatal. fsync batching trades the last
//     few records for throughput; Open truncates the torn tail to the
//     longest valid prefix and reports what it discarded. The steps whose
//     records were lost are simply re-executed by the recovered controller,
//     which lands on the same trajectory.
package store

import (
	"fmt"
	"os"
)

// Options assemble a store.
type Options struct {
	WAL WALOptions
	// LockHolder is the identity recorded in the directory's single-writer
	// lock file — what a refused Open reports as the current owner. Empty
	// selects "pid <pid>".
	LockHolder string
}

// Recovered reports everything Open found: the decoded WAL records, the
// newest valid checkpoint, and the corruption accounting.
type Recovered struct {
	// Records are the valid WAL records in append order.
	Records []Record
	// Checkpoint is the newest valid checkpoint; HaveCheckpoint is false on
	// a fresh store (or when every snapshot file was corrupt — replay then
	// starts from step 0).
	Checkpoint     Checkpoint
	HaveCheckpoint bool
	// InvalidSnapshots counts snapshot files that failed validation.
	InvalidSnapshots int
	// WAL is the log scanner's report (torn-tail truncation, dropped
	// segments).
	WAL WALRecovery
}

// Stats is the store's cumulative observability view.
type Stats struct {
	Records    uint64 `json:"wal_records"` // appended by this process
	Bytes      uint64 `json:"wal_bytes"`   // appended by this process, framing included
	Syncs      uint64 `json:"wal_syncs"`
	Segments   int    `json:"wal_segments"`
	Snapshots  uint64 `json:"snapshots_written"`
	LastStep   int    `json:"last_snapshot_step"`
	LastBytes  int64  `json:"last_snapshot_bytes"`
	RecoveredN int    `json:"recovered_records"`
}

// Store couples one room's WAL and snapshot directory.
type Store struct {
	dir  string
	wal  *WAL
	lock *dirLock

	snapshots uint64
	lastStep  int
	lastBytes int64
	recovered int
}

// Open opens (or creates) the store rooted at dir, recovering whatever a
// previous process left behind. The directory is locked single-writer for
// the life of the store: a second Open — another shard taking the room mid
// failover, a zombie racing its replacement — fails with a LockedError
// naming the current holder instead of interleaving WAL frames. The
// returned Recovered is never nil.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	holder := opts.LockHolder
	if holder == "" {
		holder = fmt.Sprintf("pid %d", os.Getpid())
	}
	lock, err := acquireDirLock(dir, holder)
	if err != nil {
		return nil, nil, err
	}
	rec := &Recovered{}
	var decodeErr error
	wal, wrec, err := OpenWAL(dir, opts.WAL, func(payload []byte) error {
		r, err := DecodeRecord(payload)
		if err != nil {
			// A frame that passes its CRC but fails the codec means a
			// foreign or newer-schema record; surface it rather than
			// replaying garbage.
			decodeErr = err
			return err
		}
		rec.Records = append(rec.Records, r)
		return nil
	})
	if err != nil {
		lock.release()
		if decodeErr != nil {
			return nil, nil, fmt.Errorf("store: %s: %w", dir, decodeErr)
		}
		return nil, nil, err
	}
	rec.WAL = *wrec

	payload, step, invalid, ok := loadSnapshot(dir)
	rec.InvalidSnapshots = invalid
	if ok {
		c, err := DecodeCheckpoint(payload)
		if err != nil {
			// Checkpoint schema drift: treat as no checkpoint (full replay)
			// rather than failing the boot.
			rec.InvalidSnapshots++
		} else if uint64(c.Step) != step {
			rec.InvalidSnapshots++
		} else {
			rec.Checkpoint = c
			rec.HaveCheckpoint = true
		}
	}

	s := &Store{dir: dir, wal: wal, lock: lock, recovered: len(rec.Records), lastStep: -1}
	if rec.HaveCheckpoint {
		s.lastStep = rec.Checkpoint.Step
	}
	return s, rec, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// AppendRecord logs one control-loop record.
func (s *Store) AppendRecord(r *Record) error { return s.wal.AppendRecord(r) }

// Sync forces the WAL to durable storage.
func (s *Store) Sync() error { return s.wal.Sync() }

// WriteCheckpoint syncs the WAL (a checkpoint must never be newer than the
// log it bounds) and atomically persists the checkpoint.
func (s *Store) WriteCheckpoint(c Checkpoint) error {
	if err := s.wal.Sync(); err != nil {
		return err
	}
	payload, err := EncodeCheckpoint(c)
	if err != nil {
		return err
	}
	n, err := writeSnapshot(s.dir, uint64(c.Step), payload)
	if err != nil {
		return err
	}
	s.snapshots++
	s.lastStep = c.Step
	s.lastBytes = n
	return nil
}

// Stats returns the cumulative counters.
func (s *Store) Stats() Stats {
	return Stats{
		Records:    s.wal.records,
		Bytes:      s.wal.bytes,
		Syncs:      s.wal.syncs,
		Segments:   s.wal.segments,
		Snapshots:  s.snapshots,
		LastStep:   s.lastStep,
		LastBytes:  s.lastBytes,
		RecoveredN: s.recovered,
	}
}

// Close flushes and fsyncs the WAL and releases the directory lock. It does
// not write a checkpoint — callers decide whether the shutdown deserves one.
func (s *Store) Close() error {
	err := s.wal.Close()
	if lerr := s.lock.release(); err == nil {
		err = lerr
	}
	return err
}

// Abandon simulates process death: the WAL descriptor closes WITHOUT
// flushing its userspace buffer (buffered records are lost, exactly what a
// kill -9 loses) and the directory lock is released the way a dying
// process's descriptors would release it. The store is unusable afterwards.
func (s *Store) Abandon() {
	s.wal.Abandon()
	_ = s.lock.release()
}
