package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testPayload builds a deterministic payload for record index i, sized so a
// handful of records exercises multi-byte frames without being trivial.
func testPayload(i int) []byte {
	n := 24 + (i*13)%40
	p := make([]byte, n)
	for j := range p {
		p[j] = byte(i*31 + j*7 + 1)
	}
	return p
}

func writeTestWAL(t *testing.T, dir string, opts WALOptions, n int) {
	t.Helper()
	w, rec, err := OpenWAL(dir, opts, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if rec.Records != 0 || rec.Corruptions != 0 {
		t.Fatalf("fresh WAL recovered %+v", rec)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(testPayload(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// readBack reopens the WAL and returns the recovered payloads and report.
func readBack(t *testing.T, dir string, opts WALOptions) ([][]byte, *WALRecovery) {
	t.Helper()
	var got [][]byte
	w, rec, err := OpenWAL(dir, opts, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close reopened: %v", err)
	}
	return got, rec
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const n = 57
	writeTestWAL(t, dir, WALOptions{}, n)
	got, rec := readBack(t, dir, WALOptions{})
	if rec.Records != n || rec.Corruptions != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery report %+v, want %d clean records", rec, n)
	}
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	for i, p := range got {
		if !bytes.Equal(p, testPayload(i)) {
			t.Fatalf("record %d corrupted on round trip", i)
		}
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	const n = 200
	opts := WALOptions{SegmentBytes: 512, SyncEvery: -1}
	writeTestWAL(t, dir, opts, n)
	names, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 4 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(names))
	}
	got, rec := readBack(t, dir, opts)
	if rec.Records != n || rec.Corruptions != 0 {
		t.Fatalf("recovery report %+v, want %d clean records", rec, n)
	}
	for i, p := range got {
		if !bytes.Equal(p, testPayload(i)) {
			t.Fatalf("record %d corrupted across rotation", i)
		}
	}
	// Appends resume with the segment naming continuous.
	w, _, err := OpenWAL(dir, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testPayload(n)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = readBack(t, dir, opts)
	if len(got) != n+1 || !bytes.Equal(got[n], testPayload(n)) {
		t.Fatalf("resumed append lost data: %d records", len(got))
	}
}

func TestWALSyncBatching(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALOptions{SyncEvery: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Append(testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.syncs != 2 {
		t.Fatalf("20 appends with SyncEvery=8: %d syncs, want 2", w.syncs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.syncs != 3 {
		t.Fatalf("close should add the final sync: %d", w.syncs)
	}
	// SyncEvery: 0 syncs every record.
	dir2 := t.TempDir()
	w2, _, err := OpenWAL(dir2, WALOptions{SyncEvery: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w2.Append(testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w2.syncs != 5 {
		t.Fatalf("5 appends with SyncEvery=0: %d syncs, want 5", w2.syncs)
	}
	w2.Close()
}

// cloneDir copies every regular file in src into a fresh temp dir.
func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestWALTornTailEveryOffset is the torn-write robustness satellite: the final
// record is truncated at every byte offset, and separately corrupted by a bit
// flip at every byte offset, and recovery must come back with exactly the
// valid prefix each time — no panic, corruption counted.
func TestWALTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	const n = 9
	writeTestWAL(t, master, WALOptions{}, n)
	names, err := segmentFiles(master)
	if err != nil || len(names) != 1 {
		t.Fatalf("want a single segment, got %v (%v)", names, err)
	}
	seg := names[0]
	full, err := os.ReadFile(filepath.Join(master, seg))
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := frameHeaderLen + len(testPayload(n-1))
	prefixEnd := len(full) - lastFrame

	check := func(t *testing.T, dir string, cut int) {
		got, rec := readBack(t, dir, WALOptions{})
		if len(got) != n-1 {
			t.Fatalf("recovered %d records, want %d", len(got), n-1)
		}
		for i, p := range got {
			if !bytes.Equal(p, testPayload(i)) {
				t.Fatalf("surviving record %d corrupted", i)
			}
		}
		if rec.Corruptions != 1 {
			t.Fatalf("recovery report %+v, want 1 corruption", rec)
		}
		if cut >= 0 && rec.TruncatedBytes != int64(cut) {
			t.Fatalf("TruncatedBytes=%d, want %d", rec.TruncatedBytes, cut)
		}
		// Recovery must leave the log appendable and the torn record gone for
		// good: append a replacement and read it back.
		w, _, err := OpenWAL(dir, WALOptions{}, nil)
		if err != nil {
			t.Fatalf("post-recovery open: %v", err)
		}
		if err := w.Append(testPayload(n - 1)); err != nil {
			t.Fatalf("post-recovery append: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, rec2 := readBack(t, dir, WALOptions{})
		if len(got) != n || rec2.Corruptions != 0 {
			t.Fatalf("after repair: %d records, report %+v", len(got), rec2)
		}
	}

	t.Run("truncate", func(t *testing.T) {
		for off := 1; off < lastFrame; off++ {
			dir := cloneDir(t, master)
			if err := os.Truncate(filepath.Join(dir, seg), int64(prefixEnd+off)); err != nil {
				t.Fatal(err)
			}
			t.Run(fmt.Sprintf("offset%03d", off), func(t *testing.T) { check(t, dir, off) })
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		for off := 0; off < lastFrame; off++ {
			dir := cloneDir(t, master)
			mut := append([]byte(nil), full...)
			mut[prefixEnd+off] ^= 0x40
			if err := os.WriteFile(filepath.Join(dir, seg), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			// A flipped length byte changes how many trailing bytes are cut,
			// so only the corruption count is asserted, not TruncatedBytes.
			t.Run(fmt.Sprintf("offset%03d", off), func(t *testing.T) { check(t, dir, -1) })
		}
	})
}

// TestWALMidLogCorruption: a corrupt frame in an early segment poisons the
// rest of the log — later segments are dropped, not resynchronized.
func TestWALMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	const n = 200
	opts := WALOptions{SegmentBytes: 512, SyncEvery: -1}
	writeTestWAL(t, dir, opts, n)
	names, err := segmentFiles(dir)
	if err != nil || len(names) < 3 {
		t.Fatalf("need >=3 segments, got %v", names)
	}
	// Count records in segment 0, then corrupt its second record's payload.
	seg0 := filepath.Join(dir, names[0])
	n0, _, _, err := scanSegment(seg0, nil)
	if err != nil || n0 < 2 {
		t.Fatalf("segment 0 has %d records (%v)", n0, err)
	}
	b, err := os.ReadFile(seg0)
	if err != nil {
		t.Fatal(err)
	}
	firstFrame := frameHeaderLen + len(testPayload(0))
	b[firstFrame+frameHeaderLen+3] ^= 0xFF
	if err := os.WriteFile(seg0, b, 0o644); err != nil {
		t.Fatal(err)
	}

	got, rec := readBack(t, dir, opts)
	if len(got) != 1 {
		t.Fatalf("recovered %d records, want only the one before the corruption", len(got))
	}
	if rec.DroppedSegments != len(names)-1 {
		t.Fatalf("dropped %d segments, want %d", rec.DroppedSegments, len(names)-1)
	}
	if rec.Corruptions != len(names) {
		t.Fatalf("Corruptions=%d, want %d (tail + each dropped segment)", rec.Corruptions, len(names))
	}
	left, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The truncated segment survives; readBack's reopen may have rotated a
	// fresh one after it.
	for _, name := range left {
		if name > names[0] && name < names[len(names)-1] {
			t.Fatalf("dropped segment %s still on disk", name)
		}
	}
}

func TestWALRejectsOversizePayload(t *testing.T) {
	w, _, err := OpenWAL(t.TempDir(), WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := w.Append(make([]byte, maxPayload+1)); err == nil {
		t.Fatal("oversize payload accepted")
	}
}
