//go:build !unix

package store

import (
	"fmt"
	"os"
)

// flockExclusive has no OS-level advisory lock on this platform; refuse any
// lock file that already holds content so the single-writer invariant still
// fails closed (a crashed process may require removing the LOCK file by
// hand here — the unix build has no such failure mode).
func flockExclusive(f *os.File) error {
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if info.Size() > 0 {
		return fmt.Errorf("lock file not empty")
	}
	return nil
}
