package store

import (
	"errors"
	"testing"
)

// TestStoreSingleWriterLock is the failover-race regression test: while one
// store instance owns a room's data directory, a second Open — the exact
// double-host a botched migration or a zombie shard would attempt — must be
// refused with a typed LockedError naming the holder. Before the lock
// existed this succeeded silently and the two writers interleaved WAL
// frames.
func TestStoreSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	s1, _, err := Open(dir, Options{LockHolder: "shard-a"})
	if err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, Options{LockHolder: "shard-b"})
	if err == nil {
		t.Fatal("second Open of a held store succeeded — single-writer invariant broken")
	}
	if !errors.Is(err, ErrStoreLocked) {
		t.Fatalf("second Open failed with %v, want ErrStoreLocked", err)
	}
	var lerr *LockedError
	if !errors.As(err, &lerr) {
		t.Fatalf("second Open error %T is not a *LockedError", err)
	}
	if lerr.Holder != "shard-a" {
		t.Fatalf("lock holder reported as %q, want shard-a", lerr.Holder)
	}

	// Graceful close releases the lock; the next host takes over.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Open(dir, Options{LockHolder: "shard-b"})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	s2.Close()
}

// TestStoreLockReleasedOnAbandon: a crashed holder must not wedge the room —
// Abandon releases the lock the way a dead process's descriptors would, and
// the failover host opens the (possibly torn) store normally.
func TestStoreLockReleasedOnAbandon(t *testing.T) {
	dir := t.TempDir()
	s1, _, err := Open(dir, Options{LockHolder: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	r := testRecord(0)
	if err := s1.AppendRecord(&r); err != nil {
		t.Fatal(err)
	}
	s1.Abandon()

	s2, rec, err := Open(dir, Options{LockHolder: "survivor"})
	if err != nil {
		t.Fatalf("Open after Abandon: %v", err)
	}
	defer s2.Close()
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records after abandon, want 1 (SyncEvery=0 synced it)", len(rec.Records))
	}
}
