package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The write-ahead log is a directory of append-only segment files named
// wal-<firstRecordIndex>.seg. Each record is framed as
//
//	[payload length: uint32 LE][CRC32C(payload): uint32 LE][payload]
//
// A crash can leave the final segment with a torn tail — a partial frame, a
// partial payload, or garbage bytes from a dropped buffer. Open scans every
// segment, keeps the longest valid prefix, truncates the torn tail of the
// last readable segment in place, and reports exactly what it discarded. A
// frame that fails its CRC mid-log (not at the tail) poisons everything after
// it: the scanner stops there, truncates, and counts the later segments as
// dropped rather than guessing at resynchronization.

// frameHeaderLen is the per-record framing overhead.
const frameHeaderLen = 8

// maxPayload bounds a frame the reader will believe. A torn length prefix is
// random bytes; without the bound it could demand a multi-gigabyte read.
const maxPayload = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WALOptions tune the log.
type WALOptions struct {
	// SegmentBytes rotates to a fresh segment once the current one reaches
	// this size (<= 0 selects 4 MiB).
	SegmentBytes int64
	// SyncEvery fsyncs after this many appended records. 0 syncs every
	// record; negative never syncs (the OS flushes on its own schedule —
	// fastest, weakest durability).
	SyncEvery int
}

// WALRecovery reports what Open found on disk.
type WALRecovery struct {
	// Records is how many valid records were read back.
	Records int
	// Segments is how many segment files survive.
	Segments int
	// TruncatedBytes counts bytes cut from the torn tail (partial frames,
	// CRC-failed frames and everything after them in that segment).
	TruncatedBytes int64
	// DroppedSegments counts whole segments discarded because an earlier
	// segment's tail was corrupt.
	DroppedSegments int
	// Corruptions counts distinct corruption sites (0 on a clean open; a torn
	// tail and each dropped segment count one each).
	Corruptions int
}

// WAL is the append side of the log. Not safe for concurrent use — one WAL
// per control loop, like the policies whose steps it records.
type WAL struct {
	dir  string
	opts WALOptions

	f         *os.File
	bw        *bufio.Writer
	segBytes  int64
	nextIndex uint64 // index the next appended record will get

	records    uint64 // appended this process
	bytes      uint64 // appended this process (framing included)
	syncs      uint64
	segments   int
	sinceSync  int
	frame      [frameHeaderLen]byte
	scratchBuf []byte
}

func segmentName(firstIndex uint64) string {
	return fmt.Sprintf("wal-%016d.seg", firstIndex)
}

// OpenWAL opens (or creates) the log in dir, scans existing segments,
// truncates any torn tail and positions the writer after the last valid
// record. The decoded payloads are returned through the visit callback in
// order (nil to skip).
func OpenWAL(dir string, opts WALOptions, visit func(payload []byte) error) (*WAL, *WALRecovery, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	names, err := segmentFiles(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &WALRecovery{}
	w := &WAL{dir: dir, opts: opts}
	var lastSeg string
	var lastSegValid int64
	for i, name := range names {
		path := filepath.Join(dir, name)
		n, valid, clean, err := scanSegment(path, func(p []byte) error {
			if visit != nil {
				return visit(p)
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		rec.Records += n
		w.nextIndex += uint64(n)
		lastSeg, lastSegValid = path, valid
		if !clean {
			rec.Corruptions++
			info, err := os.Stat(path)
			if err != nil {
				return nil, nil, err
			}
			rec.TruncatedBytes += info.Size() - valid
			if err := os.Truncate(path, valid); err != nil {
				return nil, nil, err
			}
			// Everything after a corrupt frame is unreachable; drop the
			// later segments outright.
			for _, later := range names[i+1:] {
				rec.DroppedSegments++
				rec.Corruptions++
				if err := os.Remove(filepath.Join(dir, later)); err != nil {
					return nil, nil, err
				}
			}
			break
		}
	}

	// Resume the last segment if it has room, else start a fresh one.
	switch {
	case lastSeg != "" && lastSegValid < opts.SegmentBytes:
		f, err := os.OpenFile(lastSeg, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		w.f, w.segBytes = f, lastSegValid
	default:
		if err := w.rotate(); err != nil {
			return nil, nil, err
		}
	}
	w.bw = bufio.NewWriterSize(w.f, 1<<16)
	w.segments = countSegments(dir)
	rec.Segments = w.segments
	return w, rec, nil
}

func segmentFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".seg" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func countSegments(dir string) int {
	names, err := segmentFiles(dir)
	if err != nil {
		return 0
	}
	return len(names)
}

// scanSegment reads records until EOF or the first invalid frame. It returns
// the record count, the byte offset of the end of the last valid record, and
// whether the segment ended cleanly at EOF.
func scanSegment(path string, visit func([]byte) error) (n int, validEnd int64, clean bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var header [frameHeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			// EOF exactly at a frame boundary is the clean case; anything
			// else (partial header) is a torn tail.
			return n, validEnd, err == io.EOF, nil
		}
		length := binary.LittleEndian.Uint32(header[0:])
		want := binary.LittleEndian.Uint32(header[4:])
		if length == 0 || length > maxPayload {
			return n, validEnd, false, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return n, validEnd, false, nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return n, validEnd, false, nil
		}
		if visit != nil {
			if verr := visit(payload); verr != nil {
				return n, validEnd, false, verr
			}
		}
		n++
		validEnd += frameHeaderLen + int64(length)
	}
}

// rotate closes the current segment (fsynced) and opens the next.
func (w *WAL) rotate() error {
	if w.f != nil {
		if err := w.bw.Flush(); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(w.nextIndex)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.segBytes = 0
	w.segments++
	if w.bw == nil {
		w.bw = bufio.NewWriterSize(f, 1<<16)
	} else {
		w.bw.Reset(f)
	}
	// Make the new name durable so recovery after a crash sees the segment.
	if d, err := os.Open(w.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Append frames and writes one record payload, rotating and fsyncing per the
// options.
func (w *WAL) Append(payload []byte) error {
	if len(payload) == 0 || len(payload) > maxPayload {
		return fmt.Errorf("store: record payload %d bytes outside (0, %d]", len(payload), maxPayload)
	}
	if w.segBytes >= w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(w.frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.frame[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.bw.Write(w.frame[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.segBytes += frameHeaderLen + int64(len(payload))
	w.bytes += frameHeaderLen + uint64(len(payload))
	w.records++
	w.nextIndex++
	w.sinceSync++
	if w.opts.SyncEvery >= 0 && w.sinceSync >= w.opts.SyncEvery {
		return w.Sync()
	}
	return nil
}

// AppendRecord encodes and appends a typed record.
func (w *WAL) AppendRecord(r *Record) error {
	w.scratchBuf = r.Encode(w.scratchBuf[:0])
	return w.Append(w.scratchBuf)
}

// Sync flushes the userspace buffer and fsyncs the current segment.
func (w *WAL) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.syncs++
	w.sinceSync = 0
	return nil
}

// Close flushes, fsyncs and closes the log.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// Abandon closes the segment descriptor without flushing the userspace
// buffer — the write-path state a killed process leaves. Whatever the last
// Sync did not cover is gone, which is the torn tail recovery is built for.
func (w *WAL) Abandon() {
	_ = w.f.Close()
}
