package store

import (
	"math"
	"reflect"
	"testing"

	"tesla/internal/testbed"
)

// testSample builds a deterministic sample for record index i, with awkward
// float values (negative zero, subnormals-adjacent) to prove bit-exactness.
func testSample(i int, na, nd int) testbed.Sample {
	f := func(k int) float64 { return float64(i)*1.25 + float64(k)*0.0625 + 0.1 }
	s := testbed.Sample{
		TimeS:        float64(i) * 30,
		SetpointC:    20 + math.Mod(f(1), 5),
		ACUPowerKW:   f(2),
		ACUDuty:      f(3) / 100,
		SupplyC:      f(4),
		AvgServerKW:  f(5),
		TotalIT:      f(6),
		AvgUtil:      f(7) / 10,
		MaxColdAisle: f(8),
		TrueMaxColdC: f(9),
		Interrupted:  i%7 == 3,
		ACUTemps:     make([]float64, na),
		DCTemps:      make([]float64, nd),
	}
	for j := range s.ACUTemps {
		s.ACUTemps[j] = f(10 + j)
	}
	for j := range s.DCTemps {
		s.DCTemps[j] = f(100 + j)
	}
	if i == 0 {
		s.ACUPowerKW = math.Copysign(0, -1) // -0.0 must survive
	}
	return s
}

func testRecord(i int) Record {
	kind := KindStep
	step := uint32(i)
	if i < 3 {
		kind = KindWarmup
	} else {
		step = uint32(i - 3)
	}
	return Record{
		Kind:     kind,
		Step:     step,
		Setpoint: 21.5 + float64(i)*0.125,
		Level:    uint8(i % 4),
		Sample:   testSample(i, 4, 6),
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	for i := 0; i < 20; i++ {
		r := testRecord(i)
		payload := r.Encode(nil)
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("record %d round trip:\n  in:  %+v\n  out: %+v", i, r, got)
		}
		// -0.0 must round-trip as -0.0, which DeepEqual alone cannot prove.
		if i == 0 && math.Signbit(r.Sample.ACUPowerKW) != math.Signbit(got.Sample.ACUPowerKW) {
			t.Fatal("negative zero lost its sign")
		}
	}
}

func TestRecordDecodeRejectsGarbage(t *testing.T) {
	r := testRecord(5)
	payload := r.Encode(nil)
	if _, err := DecodeRecord(payload[:recordHeaderLen-1]); err == nil {
		t.Fatal("short payload decoded")
	}
	if _, err := DecodeRecord(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated sensor block decoded")
	}
	bad := append([]byte(nil), payload...)
	bad[0] = 99
	if _, err := DecodeRecord(bad); err == nil {
		t.Fatal("unknown kind decoded")
	}
}

func TestPartition(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i] = testRecord(i)
	}
	warm, steps, err := Partition(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != 3 || len(steps) != 7 {
		t.Fatalf("partitioned %d/%d, want 3/7", len(warm), len(steps))
	}

	// A gap in the step indices must fail.
	gap := append([]Record(nil), recs...)
	gap[5].Step = 7
	if _, _, err := Partition(gap); err == nil {
		t.Fatal("index gap accepted")
	}
	// Warm-up after the first step must fail.
	late := append([]Record(nil), recs...)
	late[6].Kind = KindWarmup
	if _, _, err := Partition(late); err == nil {
		t.Fatal("late warm-up accepted")
	}
}

func TestBuildTrace(t *testing.T) {
	recs := make([]Record, 12)
	for i := range recs {
		recs[i] = testRecord(i)
	}
	tr, err := BuildTrace(30, recs)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(recs) {
		t.Fatalf("trace length %d, want %d", tr.Len(), len(recs))
	}
	for i, r := range recs {
		if tr.MaxCold[i] != r.Sample.MaxColdAisle || tr.Setpoint[i] != r.Sample.SetpointC {
			t.Fatalf("trace row %d diverges from record", i)
		}
	}
	// Sensor-count mismatch must fail, not panic.
	recs[7].Sample.DCTemps = recs[7].Sample.DCTemps[:3]
	if _, err := BuildTrace(30, recs); err == nil {
		t.Fatal("sensor-count mismatch accepted")
	}
	if _, err := BuildTrace(30, nil); err == nil {
		t.Fatal("empty record set accepted")
	}
}

func TestStoreRecoversRecordsAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.HaveCheckpoint || len(rec.Records) != 0 {
		t.Fatalf("fresh store recovered %+v", rec)
	}
	const n = 15
	for i := 0; i < n; i++ {
		r := testRecord(i)
		if err := s.AppendRecord(&r); err != nil {
			t.Fatal(err)
		}
	}
	ck := Checkpoint{Step: 9, Policy: []byte("p"), Supervisor: []byte("s"), Harness: []byte("h")}
	if err := s.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Records != n || st.Snapshots != 1 || st.LastStep != 9 || st.LastBytes <= 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rec2.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), n)
	}
	for i := range rec2.Records {
		want := testRecord(i)
		if !reflect.DeepEqual(rec2.Records[i], want) {
			t.Fatalf("record %d diverged across restart", i)
		}
	}
	if !rec2.HaveCheckpoint || rec2.Checkpoint.Step != 9 || string(rec2.Checkpoint.Policy) != "p" {
		t.Fatalf("checkpoint not recovered: %+v", rec2.Checkpoint)
	}
	if st2 := s2.Stats(); st2.RecoveredN != n || st2.LastStep != 9 {
		t.Fatalf("reopened stats %+v", st2)
	}
}

func TestStoreCheckpointSurvivesTornWAL(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{WAL: WALOptions{SyncEvery: -1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		r := testRecord(i)
		if err := s.AppendRecord(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteCheckpoint(Checkpoint{Step: 4}); err != nil {
		t.Fatal(err)
	}
	// Crash without Close: appends after the checkpoint stay in the bufio
	// buffer and are simply gone — the checkpoint must still load and the
	// durable prefix must cover it.
	for i := 8; i < 12; i++ {
		r := testRecord(i)
		if err := s.AppendRecord(&r); err != nil {
			t.Fatal(err)
		}
	}
	s.Abandon()
	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !rec.HaveCheckpoint || rec.Checkpoint.Step != 4 {
		t.Fatalf("checkpoint lost: %+v", rec)
	}
	if len(rec.Records) != 8 {
		t.Fatalf("durable prefix has %d records, want the 8 synced by the checkpoint", len(rec.Records))
	}
}
