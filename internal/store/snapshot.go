package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Snapshots are full-state checkpoints written beside the WAL as
// ckpt-<step>.snap. Each file is
//
//	magic "TSLASNP1" | container version u32 | step u64 | payload len u64 |
//	CRC32C(payload) u32 | payload
//
// written to a temp file, fsynced and renamed into place, so a crash during
// a checkpoint can never damage the previous one. Load walks the files
// newest-first and returns the first that validates; the keep-count bounds
// disk usage while always retaining a fallback behind the newest.

var snapMagic = [8]byte{'T', 'S', 'L', 'A', 'S', 'N', 'P', '1'}

// snapContainerVersion guards the file layout; the payload carries its own
// schema version (Checkpoint.Version).
const snapContainerVersion = 1

const snapHeaderLen = 8 + 4 + 8 + 8 + 4

// keepSnapshots is how many newest snapshot files survive a checkpoint.
const keepSnapshots = 2

func snapshotName(step uint64) string {
	return fmt.Sprintf("ckpt-%012d.snap", step)
}

// writeSnapshot atomically persists one checkpoint payload for the given
// step and prunes snapshots beyond the keep-count. It returns the encoded
// file size.
func writeSnapshot(dir string, step uint64, payload []byte) (int64, error) {
	var header [snapHeaderLen]byte
	copy(header[:8], snapMagic[:])
	binary.LittleEndian.PutUint32(header[8:], snapContainerVersion)
	binary.LittleEndian.PutUint64(header[12:], step)
	binary.LittleEndian.PutUint64(header[20:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(header[28:], crc32.Checksum(payload, castagnoli))

	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(header[:]); err != nil {
		tmp.Close()
		return 0, err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	final := filepath.Join(dir, snapshotName(step))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return 0, err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	pruneSnapshots(dir)
	return int64(snapHeaderLen + len(payload)), nil
}

func snapshotFiles(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".snap" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func pruneSnapshots(dir string) {
	names := snapshotFiles(dir)
	for len(names) > keepSnapshots {
		_ = os.Remove(filepath.Join(dir, names[0]))
		names = names[1:]
	}
}

// loadSnapshot returns the newest valid snapshot payload, its step, and how
// many snapshot files failed validation on the way. ok is false when no valid
// snapshot exists (a fresh store, or every candidate was corrupt).
func loadSnapshot(dir string) (payload []byte, step uint64, invalid int, ok bool) {
	names := snapshotFiles(dir)
	for i := len(names) - 1; i >= 0; i-- {
		p, s, err := readSnapshotFile(filepath.Join(dir, names[i]))
		if err != nil {
			invalid++
			continue
		}
		return p, s, invalid, true
	}
	return nil, 0, invalid, false
}

func readSnapshotFile(path string) ([]byte, uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(b) < snapHeaderLen || !bytes.Equal(b[:8], snapMagic[:]) {
		return nil, 0, fmt.Errorf("store: %s: not a snapshot", path)
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != snapContainerVersion {
		return nil, 0, fmt.Errorf("store: %s: container version %d, this build reads %d", path, v, snapContainerVersion)
	}
	step := binary.LittleEndian.Uint64(b[12:])
	n := binary.LittleEndian.Uint64(b[20:])
	want := binary.LittleEndian.Uint32(b[28:])
	payload := b[snapHeaderLen:]
	if uint64(len(payload)) != n {
		return nil, 0, fmt.Errorf("store: %s: payload %d bytes, header says %d", path, len(payload), n)
	}
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, 0, fmt.Errorf("store: %s: payload CRC mismatch", path)
	}
	return payload, step, nil
}

// Checkpoint is the versioned-gob controller checkpoint the harnesses write:
// opaque per-layer state blobs so the store stays ignorant of controller
// internals (each layer versions its own schema behind Snapshot/Restore).
type Checkpoint struct {
	// Version is the checkpoint schema version.
	Version int
	// Step is the evaluation-step count the checkpoint was taken after: the
	// first WAL step record that still needs replay is Step.
	Step int
	// Policy is the control policy's Snapshot() blob (empty when the policy
	// is stateless or not durable).
	Policy []byte
	// Supervisor is the safety supervisor's Snapshot() blob.
	Supervisor []byte
	// Harness is the embedding run's own accumulator state (trajectory hash,
	// energy integral, counters) — schema owned by the caller.
	Harness []byte
}

// checkpointVersion is the current Checkpoint schema.
const checkpointVersion = 1

// EncodeCheckpoint serializes a checkpoint for writeSnapshot.
func EncodeCheckpoint(c Checkpoint) ([]byte, error) {
	c.Version = checkpointVersion
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses a payload written by EncodeCheckpoint.
func DecodeCheckpoint(payload []byte) (Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&c); err != nil {
		return c, fmt.Errorf("store: decoding checkpoint: %w", err)
	}
	if c.Version != checkpointVersion {
		return c, fmt.Errorf("store: checkpoint version %d, this build reads %d", c.Version, checkpointVersion)
	}
	return c, nil
}
