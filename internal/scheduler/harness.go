package scheduler

import (
	"fmt"
	"time"

	"tesla/internal/fleet"
	"tesla/internal/parallel"
	"tesla/internal/testbed"
	"tesla/internal/workload"
)

// FleetConfig assembles a scheduled fleet run: a fleet of rooms (each with
// its own plant, profile base load, control policy and safety supervisor)
// plus a global batch-job queue the scheduler places across them.
type FleetConfig struct {
	// Fleet is the underlying room fleet. All rooms share the template's
	// SamplePeriodS and WarmupS, so the fleet steps in lockstep.
	Fleet fleet.Config
	// Sched tunes the placement/deferral/migration thresholds.
	Sched Config
	// Jobs is the batch queue; SubmitS is relative to evaluation start.
	Jobs []Job
	// ViolationKWh prices one room-step of true (ground-truth) cold-aisle
	// violation in kWh-equivalents for the joint objective
	// (<= 0 selects 0.25). The joint score is what the co-optimization is
	// judged on: cooling energy alone would reward parking every job on the
	// hottest room and letting it burn.
	ViolationKWh float64
}

// FleetResult is a scheduled fleet run's outcome.
type FleetResult struct {
	// Rooms are the per-room authoritative results (bit-identical to the
	// same rooms in an unscheduled fleet run when no jobs are submitted).
	Rooms []fleet.RoomResult `json:"rooms"`
	// Sched and Jobs summarize the scheduler's decisions and the queue's
	// outcome.
	Sched Counters `json:"sched"`
	Jobs  JobStats `json:"jobs"`

	// CoolingKWh sums per-room cooling energy; PeakITKW is the maximum
	// fleet-total IT power observed at any step barrier — the demand-charge
	// proxy placement smooths.
	CoolingKWh float64 `json:"cooling_kwh"`
	PeakITKW   float64 `json:"peak_it_kw"`
	// TrueTSVFrac is the fleet mean ground-truth violation fraction;
	// TrueViolationSteps the total violating room-steps behind it.
	TrueTSVFrac        float64 `json:"true_tsv_frac"`
	TrueViolationSteps float64 `json:"true_violation_steps"`
	// JointScore = CoolingKWh + ViolationKWh × TrueViolationSteps: the
	// single number the scheduling study compares across cells.
	JointScore float64 `json:"joint_score"`

	// TrajectoryHash folds the per-room trajectory hashes in room order —
	// the fleet-level bit-identity witness for the determinism tests.
	TrajectoryHash uint64 `json:"trajectory_hash"`

	TotalSteps  int     `json:"total_steps"`
	WallSeconds float64 `json:"wall_seconds"`
	StepsPerSec float64 `json:"steps_per_sec"`
}

// Harness steps a fleet of rooms in lockstep with a scheduler deciding at
// every step barrier. Between barriers the rooms advance concurrently over
// the worker pool; at the barrier the scheduler reads every room's delivered
// telemetry (in room-index order) and mutates the per-room orchestrators.
// Because per-room steps are independent given the committed batch loads,
// and the scheduler's decisions are a pure function of the gathered states,
// the whole run is bit-identical for any worker count.
type Harness struct {
	cfg     FleetConfig
	runners []*fleet.Runner
	sched   *Scheduler
	step    int
	t0      float64
	peakIT  float64
	start   time.Time
	stepped int
}

// NewHarness builds and warms up every room (concurrently), attaches an
// additive job orchestrator to each plant, and queues the configured jobs.
// Orchestrators attach after warm-up and start empty, so a run with no jobs
// is bit-identical to the same fleet without a scheduler.
func NewHarness(cfg FleetConfig) (*Harness, error) {
	if err := cfg.Fleet.Validate(); err != nil {
		return nil, err
	}
	if cfg.ViolationKWh <= 0 {
		cfg.ViolationKWh = 0.25
	}
	runners, err := parallel.MapErr(cfg.Fleet.Workers, len(cfg.Fleet.Rooms), func(i int) (*fleet.Runner, error) {
		return fleet.NewRunner(cfg.Fleet, i, nil, "scheduler")
	})
	if err != nil {
		for _, r := range runners {
			if r != nil {
				r.Abandon()
			}
		}
		return nil, err
	}

	orchs := make([]*workload.Orchestrator, len(runners))
	names := make([]string, len(runners))
	for i, r := range runners {
		o := workload.NewOrchestrator(r.Plant().Cluster)
		o.Additive = true
		r.Plant().AttachOrchestrator(o)
		orchs[i] = o
		names[i] = cfg.Fleet.RoomName(i)
	}

	sched, err := New(cfg.Sched, orchs, names)
	if err != nil {
		for _, r := range runners {
			r.Abandon()
		}
		return nil, err
	}

	h := &Harness{
		cfg:     cfg,
		runners: runners,
		sched:   sched,
		t0:      runners[0].Plant().TimeS(),
		start:   time.Now(),
	}
	for _, j := range cfg.Jobs {
		if err := sched.Submit(j, h.t0+j.SubmitS); err != nil {
			for _, r := range runners {
				r.Abandon()
			}
			return nil, err
		}
	}
	return h, nil
}

// Done reports whether every room's horizon is complete.
func (h *Harness) Done() bool {
	for _, r := range h.runners {
		if !r.Done() {
			return false
		}
	}
	return true
}

// Scheduler exposes the harness's scheduler for live counters.
func (h *Harness) Scheduler() *Scheduler { return h.sched }

// Now is the simulation time of the next step barrier.
func (h *Harness) Now() float64 { return h.runners[0].Plant().TimeS() }

// LastSample exposes room i's delivered telemetry at the current barrier —
// the same view the scheduler decides on — for operator endpoints.
func (h *Harness) LastSample(i int) testbed.Sample { return h.runners[i].LastSample() }

// states gathers the per-room observations for the scheduler, in room-index
// order, from each room's delivered telemetry.
func (h *Harness) states() []RoomState {
	out := make([]RoomState, len(h.runners))
	for i, r := range h.runners {
		s := r.LastSample()
		out[i] = RoomState{
			HeadroomC: h.cfg.Sched.ColdLimitC - s.MaxColdAisle,
			Duty:      s.ACUDuty,
			ITPowerKW: s.TotalIT,
		}
	}
	return out
}

// Step runs one fleet step: scheduler decisions at the barrier, then every
// room advances one control step over the worker pool.
func (h *Harness) Step() error {
	if h.Done() {
		return fmt.Errorf("scheduler: fleet horizon complete")
	}
	now := h.Now()
	if err := h.sched.Step(h.step, now, h.states()); err != nil {
		return err
	}
	_, err := parallel.MapErr(h.cfg.Fleet.Workers, len(h.runners), func(i int) (struct{}, error) {
		return struct{}{}, h.runners[i].Step()
	})
	if err != nil {
		return err
	}
	h.step++
	h.stepped++

	var it float64
	for _, r := range h.runners {
		it += r.LastSample().TotalIT
	}
	if it > h.peakIT {
		h.peakIT = it
	}
	return nil
}

// Finish completes every room and aggregates the fleet result.
func (h *Harness) Finish() (*FleetResult, error) {
	if !h.Done() {
		return nil, fmt.Errorf("scheduler: finish before the horizon is complete")
	}
	wall := time.Since(h.start)
	rooms, err := parallel.MapErr(h.cfg.Fleet.Workers, len(h.runners), func(i int) (fleet.RoomResult, error) {
		return h.runners[i].Finish()
	})
	if err != nil {
		return nil, err
	}

	res := &FleetResult{
		Rooms:       rooms,
		Sched:       h.sched.Counters(),
		Jobs:        h.sched.Stats(h.Now()),
		PeakITKW:    h.peakIT,
		WallSeconds: wall.Seconds(),
	}
	const fnvOffset, fnvPrime = uint64(14695981039346656037), uint64(1099511628211)
	hash := fnvOffset
	var tsvSum float64
	for _, rr := range rooms {
		res.CoolingKWh += rr.CEkWh
		res.TotalSteps += rr.Steps
		res.TrueViolationSteps += rr.TrueTSVFrac * float64(rr.Steps)
		tsvSum += rr.TrueTSVFrac
		for shift := 0; shift < 64; shift += 8 {
			hash = (hash ^ (rr.TrajectoryHash >> shift & 0xff)) * fnvPrime
		}
	}
	res.TrajectoryHash = hash
	if len(rooms) > 0 {
		res.TrueTSVFrac = tsvSum / float64(len(rooms))
	}
	res.JointScore = res.CoolingKWh + h.cfg.ViolationKWh*res.TrueViolationSteps
	if res.WallSeconds > 0 {
		res.StepsPerSec = float64(res.TotalSteps) / res.WallSeconds
	}
	return res, nil
}

// Abandon releases every room without finishing (error paths).
func (h *Harness) Abandon() {
	for _, r := range h.runners {
		r.Abandon()
	}
}

// RunFleet executes a scheduled fleet run end to end.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	h, err := NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	for !h.Done() {
		if err := h.Step(); err != nil {
			h.Abandon()
			return nil, err
		}
	}
	return h.Finish()
}
