package scheduler

import (
	"testing"

	"tesla/internal/cluster"
	"tesla/internal/workload"
)

// testRooms builds n real (but plant-less) orchestrators over small clusters
// so placement/eviction behavior is exercised without any physics.
func testRooms(n int) ([]*workload.Orchestrator, []string) {
	orchs := make([]*workload.Orchestrator, n)
	names := make([]string, n)
	for i := range orchs {
		orchs[i] = workload.NewOrchestrator(cluster.New(4))
		names[i] = []string{"alpha", "bravo", "charlie", "delta"}[i%4]
	}
	return orchs, names
}

// coolStates returns n rooms with ample headroom and idle compressors.
func coolStates(n int) []RoomState {
	out := make([]RoomState, n)
	for i := range out {
		out[i] = RoomState{HeadroomC: 3, Duty: 0.3}
	}
	return out
}

func mustSched(t *testing.T, mode Mode, n int) (*Scheduler, []*workload.Orchestrator) {
	t.Helper()
	orchs, names := testRooms(n)
	s, err := New(DefaultConfig(mode), orchs, names)
	if err != nil {
		t.Fatal(err)
	}
	return s, orchs
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{"": ModeNone, "none": ModeNone, "defer": ModeDefer, "full": ModeFull} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Fatalf("Mode(%q).String() = %q", in, got)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatalf("bogus mode accepted")
	}
}

func TestConfigAndJobValidation(t *testing.T) {
	cfg := DefaultConfig(ModeFull)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.DutyMax = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatalf("duty ceiling 1.5 accepted")
	}
	bad = cfg
	bad.CooldownSteps = -1
	if err := bad.Validate(); err == nil {
		t.Fatalf("negative cooldown accepted")
	}
	bad = cfg
	bad.AdmitHeadroomC = -1
	if err := bad.Validate(); err == nil {
		t.Fatalf("negative headroom accepted")
	}

	good := Job{Name: "j", Level: 0.3, DurationS: 60, Parallelism: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	badJob := good
	badJob.SubmitS = -1
	if err := badJob.Validate(); err == nil {
		t.Fatalf("negative submit time accepted")
	}
	badJob = good
	badJob.MaxDeferS = -1
	if err := badJob.Validate(); err == nil {
		t.Fatalf("negative defer bound accepted")
	}
	badJob = good
	badJob.Level = 2
	if err := badJob.Validate(); err == nil {
		t.Fatalf("level 2 accepted")
	}

	orchs, names := testRooms(2)
	if _, err := New(DefaultConfig(ModeNone), nil, nil); err == nil {
		t.Fatalf("no rooms accepted")
	}
	if _, err := New(DefaultConfig(ModeNone), orchs, names[:1]); err == nil {
		t.Fatalf("name/room mismatch accepted")
	}
}

func TestCountersCloneAndMerge(t *testing.T) {
	a := Counters{
		Placements: 3, Deferrals: 2, Waiting: 1, RunningJobs: 2, CompletedJobs: 4,
		Migrations: map[string]uint64{ReasonThermal: 1},
		RoomQueue:  map[string]int{"alpha": 2},
	}
	b := Counters{
		Placements: 1, Deferrals: 1,
		Migrations: map[string]uint64{ReasonThermal: 2, ReasonCapacity: 1},
		RoomQueue:  map[string]int{"alpha": 1, "bravo": 3},
	}
	c := a.Clone()
	c.Merge(b)
	if a.Migrations[ReasonThermal] != 1 || a.RoomQueue["alpha"] != 2 {
		t.Fatalf("merge mutated the clone source: %+v", a)
	}
	if c.Placements != 4 || c.Deferrals != 3 || c.Migrations[ReasonThermal] != 3 ||
		c.Migrations[ReasonCapacity] != 1 || c.RoomQueue["alpha"] != 3 || c.RoomQueue["bravo"] != 3 {
		t.Fatalf("bad merge: %+v", c)
	}
	if c.MigrationsTotal() != 4 {
		t.Fatalf("migrations total %d", c.MigrationsTotal())
	}
}

func TestModeNonePlacesRoundRobin(t *testing.T) {
	s, orchs := mustSched(t, ModeNone, 3)
	for i := 0; i < 6; i++ {
		job := Job{Name: "j", Level: 0.3, DurationS: 600, Parallelism: 2, Deferrable: true}
		job.Name = string(rune('a' + i))
		if err := s.Submit(job, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Even with every room scorching, ModeNone places everything immediately.
	states := make([]RoomState, 3)
	for i := range states {
		states[i] = RoomState{HeadroomC: -2, Duty: 1}
	}
	if err := s.Step(0, 0, states); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Placements != 6 || c.Deferrals != 0 || c.Waiting != 0 {
		t.Fatalf("counters %+v", c)
	}
	for i, o := range orchs {
		if o.Running() != 4 { // 2 jobs × 2 pods round-robin
			t.Fatalf("room %d has %d pods, want 4", i, o.Running())
		}
	}
}

func TestModeDeferHoldsUntilHeadroom(t *testing.T) {
	s, orchs := mustSched(t, ModeDefer, 2)
	// seq 0 → room 0. Deferrable, so a hot room 0 defers it.
	if err := s.Submit(Job{Name: "d", Level: 0.3, DurationS: 600, Parallelism: 2, Deferrable: true}, 0); err != nil {
		t.Fatal(err)
	}
	// seq 1 → room 1. NOT deferrable: places even though room 1 is hot too.
	if err := s.Submit(Job{Name: "n", Level: 0.3, DurationS: 600, Parallelism: 2}, 0); err != nil {
		t.Fatal(err)
	}
	hot := []RoomState{{HeadroomC: 0.2, Duty: 0.9}, {HeadroomC: 0.2, Duty: 0.9}}
	if err := s.Step(0, 0, hot); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Placements != 1 || c.Deferrals != 1 || c.Waiting != 1 {
		t.Fatalf("after hot step: %+v", c)
	}
	if orchs[0].Running() != 0 || orchs[1].Running() != 2 {
		t.Fatalf("pods: %d / %d", orchs[0].Running(), orchs[1].Running())
	}
	// Room 0 cools: the deferred job lands there (placement stays naive).
	cool := []RoomState{{HeadroomC: 2.5, Duty: 0.5}, {HeadroomC: 0.2, Duty: 0.9}}
	if err := s.Step(1, 60, cool); err != nil {
		t.Fatal(err)
	}
	if c := s.Counters(); c.Placements != 2 || c.Waiting != 0 {
		t.Fatalf("after cool step: %+v", c)
	}
	if orchs[0].Running() != 2 {
		t.Fatalf("deferred job not placed on its round-robin room")
	}
}

func TestDeferralStarvationBound(t *testing.T) {
	s, orchs := mustSched(t, ModeFull, 2)
	if err := s.Submit(Job{Name: "starved", Level: 0.3, DurationS: 600, Parallelism: 2, Deferrable: true, MaxDeferS: 120}, 0); err != nil {
		t.Fatal(err)
	}
	hot := func() []RoomState {
		return []RoomState{{HeadroomC: -0.5, Duty: 1}, {HeadroomC: -0.2, Duty: 1}}
	}
	// Two barriers of sustained stress: deferred both times.
	for step, now := 0, 0.0; step < 2; step, now = step+1, now+60 {
		if err := s.Step(step, now, hot()); err != nil {
			t.Fatal(err)
		}
		if got := s.Counters().Placements; got != 0 {
			t.Fatalf("step %d: placed under stress before the deadline", step)
		}
	}
	if got := s.Counters().Deferrals; got != 2 {
		t.Fatalf("deferral counter %d, want 2", got)
	}
	// now-submit == MaxDeferS: the bound fires and the job runs
	// unconditionally on the least-bad room (room 1: headroom −0.2 > −0.5).
	if err := s.Step(2, 120, hot()); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Placements != 1 || c.Waiting != 0 {
		t.Fatalf("starvation bound did not fire: %+v", c)
	}
	if orchs[1].Running() != 2 || orchs[0].Running() != 0 {
		t.Fatalf("overdue job on room 0 (headroom −0.5) instead of the least-bad room 1")
	}
	st := s.Stats(120)
	if st.MaxWaitS != 120 || st.Submitted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestModeFullPlacesMostHeadroomAndDebits(t *testing.T) {
	s, orchs := mustSched(t, ModeFull, 3)
	for _, name := range []string{"a", "b"} {
		if err := s.Submit(Job{Name: name, Level: 0.5, DurationS: 600, Parallelism: 4}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Room 1 has the most headroom; after job a's debit
	// (0.2 × 0.5 × 4 = 0.4 °C) it still beats room 0's 1.6 — so both jobs
	// land on room 1. A third job would then see 1.8−0.8 = 1.0 < room 0.
	states := []RoomState{{HeadroomC: 1.6, Duty: 0.4}, {HeadroomC: 2.4, Duty: 0.4}, {HeadroomC: 1.2, Duty: 0.4}}
	if err := s.Step(0, 0, states); err != nil {
		t.Fatal(err)
	}
	if orchs[1].Running() != 8 {
		t.Fatalf("room 1 has %d pods, want 8", orchs[1].Running())
	}
	if err := s.Submit(Job{Name: "c", Level: 0.5, DurationS: 600, Parallelism: 4}, 60); err != nil {
		t.Fatal(err)
	}
	// Fresh states at the next barrier: room 1 now genuinely hotter.
	states = []RoomState{{HeadroomC: 1.6, Duty: 0.4}, {HeadroomC: 1.0, Duty: 0.4}, {HeadroomC: 1.2, Duty: 0.4}}
	if err := s.Step(1, 60, states); err != nil {
		t.Fatal(err)
	}
	if orchs[0].Running() != 4 {
		t.Fatalf("job c on room %v, want room 0", orchs[0].Running())
	}
	// Saturated-duty rooms are ineligible even with headroom.
	if err := s.Submit(Job{Name: "d", Level: 0.5, DurationS: 600, Parallelism: 4}, 120); err != nil {
		t.Fatal(err)
	}
	states = []RoomState{{HeadroomC: 3, Duty: 0.99}, {HeadroomC: 1.4, Duty: 0.4}, {HeadroomC: 1.2, Duty: 0.4}}
	if err := s.Step(2, 120, states); err != nil {
		t.Fatal(err)
	}
	if orchs[1].Running() != 8+4 {
		t.Fatalf("job d dodged the saturated room poorly: room1=%d", orchs[1].Running())
	}
}

func TestMigrationShedsStressedRoom(t *testing.T) {
	cfg := DefaultConfig(ModeFull)
	cfg.CooldownSteps = 3
	orchs, names := testRooms(2)
	s, err := New(cfg, orchs, names)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(Job{Name: "batch", Level: 0.4, DurationS: 6000, Parallelism: 3, Deferrable: true}, 0); err != nil {
		t.Fatal(err)
	}
	// Placement at step 0: room 0 is the coolest.
	if err := s.Step(0, 0, []RoomState{{HeadroomC: 3, Duty: 0.5}, {HeadroomC: 2, Duty: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if orchs[0].Running() != 3 {
		t.Fatalf("placement went to room %d", 1)
	}

	stress := []RoomState{{HeadroomC: 0.1, Duty: 0.9}, {HeadroomC: 2.0, Duty: 0.5}}
	// Step 1: inside the cooldown window — no migration yet.
	if err := s.Step(1, 60, cloneStates(stress)); err != nil {
		t.Fatal(err)
	}
	if s.Counters().MigrationsTotal() != 0 {
		t.Fatalf("migrated inside the cooldown window")
	}
	// Step 3 (≥ cooldown since the placement at step 0): migrate.
	if err := s.Step(3, 180, cloneStates(stress)); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Migrations[ReasonThermal] != 1 {
		t.Fatalf("migrations %+v", c.Migrations)
	}
	if orchs[0].Running() != 0 || orchs[1].Running() != 3 {
		t.Fatalf("pods after migration: %d / %d", orchs[0].Running(), orchs[1].Running())
	}
	if st := s.Stats(180); st.MigratedJobs != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Room 1 stressed too, but room 0 lacks MigrateHeadroomC: the job stays
	// put rather than bouncing onto a lukewarm room.
	lukewarm := []RoomState{{HeadroomC: 1.0, Duty: 0.5}, {HeadroomC: 0.1, Duty: 0.9}}
	if err := s.Step(7, 420, cloneStates(lukewarm)); err != nil {
		t.Fatal(err)
	}
	if got := s.Counters().MigrationsTotal(); got != 1 {
		t.Fatalf("ping-pong migration happened: %d", got)
	}

	// Compressor saturation (duty above the ceiling) migrates with the
	// capacity reason even when the cold aisle still has headroom.
	saturated := []RoomState{{HeadroomC: 2.0, Duty: 0.9}, {HeadroomC: 2.0, Duty: 0.97}}
	if err := s.Step(8, 480, cloneStates(saturated)); err != nil {
		t.Fatal(err)
	}
	c = s.Counters()
	if c.Migrations[ReasonCapacity] != 1 {
		t.Fatalf("capacity migration missing: %+v", c.Migrations)
	}
	if orchs[0].Running() != 3 {
		t.Fatalf("job did not return to room 0")
	}
}

func cloneStates(in []RoomState) []RoomState {
	return append([]RoomState(nil), in...)
}

func TestCompletedJobsAreReaped(t *testing.T) {
	s, orchs := mustSched(t, ModeFull, 2)
	if err := s.Submit(Job{Name: "quick", Level: 0.3, DurationS: 120, Parallelism: 2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(0, 0, coolStates(2)); err != nil {
		t.Fatal(err)
	}
	if s.Counters().RunningJobs != 1 {
		t.Fatalf("not running after placement")
	}
	// Past the job's end: the orchestrator reaps at Tick; the scheduler's
	// completion pass mirrors it.
	orchs[0].Tick(150)
	orchs[1].Tick(150)
	if err := s.Step(3, 180, coolStates(2)); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.CompletedJobs != 1 || c.RunningJobs != 0 {
		t.Fatalf("completion not tracked: %+v", c)
	}
	st := s.Stats(180)
	if st.Completed != 1 || st.MeanLatencyS != 120 {
		t.Fatalf("stats %+v", st)
	}
}
