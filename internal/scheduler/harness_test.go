package scheduler

import (
	"reflect"
	"testing"

	"tesla/internal/control"
	"tesla/internal/fleet"
	"tesla/internal/rng"
	"tesla/internal/workload"
)

// testFleet builds a small heterogeneous fleet: one template room, one
// thermally light room with a weak ACU (the stressed room batch work must
// avoid), one large cool room.
func testFleet(workers int) fleet.Config {
	cfg := fleet.DefaultConfig(3, 77, func(room int, seed uint64) (control.Policy, error) {
		return control.Fixed{SetpointC: 23}, nil
	})
	cfg.Workers = workers
	cfg.WarmupS = 600
	cfg.EvalS = 1800
	cfg.Rooms[1].ACUCoolKW = 8
	cfg.Rooms[1].ThermalMass = 0.6
	cfg.Rooms[2].Servers = 28
	return cfg
}

func testJobs() []Job {
	return []Job{
		{Name: "batch-a", SubmitS: 0, Level: 0.3, DurationS: 900, Parallelism: 6, Deferrable: true, MaxDeferS: 600},
		{Name: "batch-b", SubmitS: 120, Level: 0.25, DurationS: 600, Parallelism: 4, Deferrable: true, MaxDeferS: 900},
		{Name: "urgent", SubmitS: 300, Level: 0.2, DurationS: 300, Parallelism: 3},
		{Name: "batch-c", SubmitS: 600, Level: 0.3, DurationS: 600, Parallelism: 5, Deferrable: true},
	}
}

// TestFleetDeterministicAcrossWorkers is the tentpole contract: the whole
// scheduled fleet — trajectories, scheduler counters, job stats, joint
// score — is bit-identical for any worker count.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *FleetResult {
		res, err := RunFleet(FleetConfig{
			Fleet: testFleet(workers),
			Sched: DefaultConfig(ModeFull),
			Jobs:  testJobs(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)

	if one.TrajectoryHash != four.TrajectoryHash {
		t.Fatalf("fleet hash differs across workers: %x vs %x", one.TrajectoryHash, four.TrajectoryHash)
	}
	for i := range one.Rooms {
		if one.Rooms[i].TrajectoryHash != four.Rooms[i].TrajectoryHash {
			t.Fatalf("room %d hash differs across workers", i)
		}
	}
	if !reflect.DeepEqual(one.Sched, four.Sched) {
		t.Fatalf("scheduler counters differ:\n1 worker: %+v\n4 workers: %+v", one.Sched, four.Sched)
	}
	if !reflect.DeepEqual(one.Jobs, four.Jobs) {
		t.Fatalf("job stats differ:\n1 worker: %+v\n4 workers: %+v", one.Jobs, four.Jobs)
	}
	if one.JointScore != four.JointScore || one.CoolingKWh != four.CoolingKWh || one.PeakITKW != four.PeakITKW {
		t.Fatalf("scores differ: %+v vs %+v", one, four)
	}

	// The jobs actually ran: every placement happened and the batch load
	// showed up in the plant (peak IT above the no-job fleet's).
	if one.Sched.Placements != uint64(len(testJobs())) {
		t.Fatalf("placements %d, want %d", one.Sched.Placements, len(testJobs()))
	}
	if one.Jobs.Completed == 0 {
		t.Fatalf("no job completed inside the horizon: %+v", one.Jobs)
	}
}

// TestNoJobsMatchesPlainFleet is the golden-preservation proof: a scheduled
// fleet with an empty queue reproduces, bit for bit, the same fleet run
// through the batch path — the attached (empty, additive) orchestrators and
// the barrier synchronization change nothing.
func TestNoJobsMatchesPlainFleet(t *testing.T) {
	cfg := testFleet(2)
	plain, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := RunFleet(FleetConfig{Fleet: testFleet(2), Sched: DefaultConfig(ModeFull)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Rooms {
		if plain.Rooms[i].TrajectoryHash != sched.Rooms[i].TrajectoryHash {
			t.Fatalf("room %d: scheduled-but-empty hash %x, plain fleet %x",
				i, sched.Rooms[i].TrajectoryHash, plain.Rooms[i].TrajectoryHash)
		}
	}
	if c := sched.Sched; c.Placements != 0 || c.Deferrals != 0 || c.MigrationsTotal() != 0 {
		t.Fatalf("phantom scheduler activity: %+v", c)
	}
}

// TestRoomSpecOverridesChangeTrajectory pins the heterogeneity satellite:
// each override changes the room's physics (distinct hash), and zero values
// leave the template room untouched.
func TestRoomSpecOverridesChangeTrajectory(t *testing.T) {
	base := func() fleet.Config {
		cfg := fleet.DefaultConfig(1, 42, func(room int, seed uint64) (control.Policy, error) {
			return control.Fixed{SetpointC: 23}, nil
		})
		cfg.WarmupS = 600
		cfg.EvalS = 1200
		return cfg
	}
	ref, err := fleet.Run(base())
	if err != nil {
		t.Fatal(err)
	}
	again, err := fleet.Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rooms[0].TrajectoryHash != again.Rooms[0].TrajectoryHash {
		t.Fatalf("baseline not reproducible")
	}
	for name, mutate := range map[string]func(*fleet.RoomSpec){
		"servers":      func(s *fleet.RoomSpec) { s.Servers = 30 },
		"acu":          func(s *fleet.RoomSpec) { s.ACUCoolKW = 8 },
		"thermal-mass": func(s *fleet.RoomSpec) { s.ThermalMass = 0.5 },
	} {
		cfg := base()
		mutate(&cfg.Rooms[0])
		got, err := fleet.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Rooms[0].TrajectoryHash == ref.Rooms[0].TrajectoryHash {
			t.Fatalf("%s override did not change the trajectory", name)
		}
	}
	// Explicit template values are the same as zero values.
	cfg := base()
	cfg.Rooms[0].ThermalMass = 1
	got, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rooms[0].TrajectoryHash != ref.Rooms[0].TrajectoryHash {
		t.Fatalf("thermal-mass 1 is not the template room")
	}
}

// TestSchedulerMovesLoadOffWeakRoom drives the heterogeneous fleet hot
// enough that the weak room stresses, and checks ModeFull actually routes
// batch work away from it compared to round-robin placement.
func TestSchedulerMovesLoadOffWeakRoom(t *testing.T) {
	heavy := []Job{}
	for i := 0; i < 6; i++ {
		heavy = append(heavy, Job{
			Name: "load-" + string(rune('a'+i)), SubmitS: float64(60 * i),
			Level: 0.5, DurationS: 1500, Parallelism: 12, Deferrable: true, MaxDeferS: 1200,
		})
	}
	hot := func() fleet.Config {
		cfg := testFleet(2)
		for i := range cfg.Rooms {
			cfg.Rooms[i].Profile = workload.NewDiurnal(workload.High, 43200, rng.SeedFor(77, uint64(100+i)))
			cfg.Rooms[i].Stream = uint64(i + 1) // keep streams distinct from zero-default
		}
		// Calibrated weak room: base load barely fits; any batch placement
		// tips it over the limit.
		cfg.Rooms[1].ACUCoolKW = 6.5
		cfg.Rooms[1].ThermalMass = 0.5
		return cfg
	}
	naive, err := RunFleet(FleetConfig{Fleet: hot(), Sched: DefaultConfig(ModeNone), Jobs: heavy})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunFleet(FleetConfig{Fleet: hot(), Sched: DefaultConfig(ModeFull), Jobs: heavy})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin necessarily lands 1/3 of the heavy jobs on the weak room
	// and keeps it violating; thermal-aware placement+migration must cut the
	// true violations substantially, and that must show in the joint score.
	if full.JointScore >= naive.JointScore {
		t.Fatalf("full scheduler joint score %.3f not better than round-robin %.3f",
			full.JointScore, naive.JointScore)
	}
	if naive.TrueViolationSteps == 0 {
		t.Fatalf("scenario is not thermally stressed under round-robin — the comparison is vacuous")
	}
	if full.TrueViolationSteps >= naive.TrueViolationSteps {
		t.Fatalf("full scheduler violations %.0f not below round-robin %.0f",
			full.TrueViolationSteps, naive.TrueViolationSteps)
	}
}
