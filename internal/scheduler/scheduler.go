// Package scheduler is the fleet-level thermal-aware job placement layer:
// one global batch-job queue above N per-room cooling-control loops. Each
// fleet control step it decides, per job, WHICH room runs it (placement onto
// the room with the most cold-aisle headroom), WHEN deferrable work waits
// (deferral while no room has headroom — the fleet generalization of
// workload.DeferringScheduler's single-room signal — with a hard starvation
// bound), and when running batch load MIGRATES off a thermally stressed
// room onto one with slack. The cooling side stays with the per-room
// control.Policy; the scheduler shapes the heat those policies must chase —
// the co-optimization the paper's §8 names as TESLA's next step.
//
// Determinism: the scheduler itself is plain sequential code. It runs at the
// harness's step barrier, reads per-room states in room-index order, and
// mutates per-room orchestrators that no other goroutine touches between
// barriers. Given the same job list and the same per-room trajectories, its
// decisions are a pure function of step index — so the whole fleet stays
// bit-identical for any worker count.
package scheduler

import (
	"fmt"
	"sort"

	"tesla/internal/workload"
)

// Mode selects how much of the scheduler is active — the ablation axis of
// the fleet scheduling study.
type Mode int

const (
	// ModeNone places jobs immediately, round-robin over rooms — the
	// scheduler-less baseline every cell is scored against.
	ModeNone Mode = iota
	// ModeDefer keeps round-robin placement but defers deferrable work
	// while the target room lacks thermal headroom.
	ModeDefer
	// ModeFull adds headroom-greedy placement and migration of running
	// batch load off thermally stressed rooms.
	ModeFull
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeDefer:
		return "defer"
	case ModeFull:
		return "full"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode resolves a mode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "none", "":
		return ModeNone, nil
	case "defer":
		return ModeDefer, nil
	case "full":
		return ModeFull, nil
	}
	return ModeNone, fmt.Errorf("scheduler: unknown mode %q (none|defer|full)", s)
}

// Migration reasons (the label values of
// tesla_sched_migrations_total{reason}).
const (
	// ReasonThermal: the source room's cold-aisle headroom collapsed.
	ReasonThermal = "thermal"
	// ReasonCapacity: the source room's ACU compressor is saturated.
	ReasonCapacity = "capacity"
)

// Job is one batch job in the fleet queue: the workload spec plus submission
// time and deferral policy.
type Job struct {
	Name string `json:"name"`
	// SubmitS is the submission time in seconds from evaluation start.
	SubmitS float64 `json:"submit_s"`
	// Level is the per-pod CPU utilization contribution, Parallelism the
	// pod count, DurationS the pod runtime (workload.Job semantics).
	Level       float64 `json:"level"`
	DurationS   float64 `json:"duration_s"`
	Parallelism int     `json:"parallelism"`
	// Deferrable jobs wait while the fleet is thermally stressed; others
	// place at submission.
	Deferrable bool `json:"deferrable"`
	// MaxDeferS bounds starvation: the job places unconditionally once it
	// has waited this long (0 = may wait forever).
	MaxDeferS float64 `json:"max_defer_s"`
}

// Validate reports malformed jobs.
func (j Job) Validate() error {
	if err := (workload.Job{Name: j.Name, Level: j.Level, DurationS: j.DurationS, Parallelism: j.Parallelism}).Validate(); err != nil {
		return err
	}
	if j.SubmitS < 0 {
		return fmt.Errorf("scheduler: job %q submit time %g must be non-negative", j.Name, j.SubmitS)
	}
	if j.MaxDeferS < 0 {
		return fmt.Errorf("scheduler: job %q max defer %g must be non-negative", j.Name, j.MaxDeferS)
	}
	return nil
}

// Config tunes the decision thresholds. The zero value is NOT usable; start
// from DefaultConfig.
type Config struct {
	Mode Mode `json:"mode"`
	// ColdLimitC is the cold-aisle limit headroom is measured against.
	ColdLimitC float64 `json:"cold_limit_c"`
	// AdmitHeadroomC is the minimum cold-aisle headroom a room must have to
	// admit deferrable work (the DeferringScheduler signal, per room).
	AdmitHeadroomC float64 `json:"admit_headroom_c"`
	// StressHeadroomC is the migration trigger: a room below it is
	// thermally stressed and sheds batch load.
	StressHeadroomC float64 `json:"stress_headroom_c"`
	// DutyMax marks a room's ACU as saturated: no placements, and running
	// batch load migrates away.
	DutyMax float64 `json:"duty_max"`
	// MigrateHeadroomC is the minimum headroom a migration TARGET must
	// have — deliberately above AdmitHeadroomC so jobs don't ping-pong.
	MigrateHeadroomC float64 `json:"migrate_headroom_c"`
	// CooldownSteps is the minimum number of fleet steps between two
	// migrations of the same job.
	CooldownSteps int `json:"cooldown_steps"`
	// HeadroomPerLevel debits a room's headroom estimate when a job lands
	// on it within one barrier (°C per unit of Level×Parallelism) — the
	// same conservative flood guard DeferringScheduler uses.
	HeadroomPerLevel float64 `json:"headroom_per_level"`
}

// DefaultConfig returns the deployment-default thresholds for a given mode.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:             mode,
		ColdLimitC:       22,
		AdmitHeadroomC:   1.0,
		StressHeadroomC:  0.25,
		DutyMax:          0.95,
		MigrateHeadroomC: 1.5,
		CooldownSteps:    10,
		HeadroomPerLevel: 0.2,
	}
}

// Validate reports unusable configurations.
func (c *Config) Validate() error {
	switch {
	case c.Mode < ModeNone || c.Mode > ModeFull:
		return fmt.Errorf("scheduler: unknown mode %d", c.Mode)
	case c.AdmitHeadroomC < 0 || c.StressHeadroomC < 0 || c.MigrateHeadroomC < 0:
		return fmt.Errorf("scheduler: headroom thresholds must be non-negative")
	case c.DutyMax <= 0 || c.DutyMax > 1:
		return fmt.Errorf("scheduler: duty ceiling %g outside (0,1]", c.DutyMax)
	case c.CooldownSteps < 0:
		return fmt.Errorf("scheduler: cooldown %d must be non-negative", c.CooldownSteps)
	case c.HeadroomPerLevel < 0:
		return fmt.Errorf("scheduler: headroom debit %g must be non-negative", c.HeadroomPerLevel)
	}
	return nil
}

// RoomState is one room's observation at the step barrier — derived from the
// room's delivered telemetry, which is exactly what a production scheduler
// would see.
type RoomState struct {
	// HeadroomC is ColdLimitC − max cold-aisle reading.
	HeadroomC float64
	// Duty is the ACU compressor duty in [0,1].
	Duty float64
	// ITPowerKW is the room's total IT power.
	ITPowerKW float64
}

// Counters is the scheduler's observability surface: placement/deferral/
// migration totals plus queue depths, mergeable across shards for the
// coordinator's fleet rollup.
type Counters struct {
	// Placements counts jobs bound to a room (initial placements only;
	// migrations count separately).
	Placements uint64 `json:"placements"`
	// Deferrals counts job-steps spent waiting: a job held back for five
	// fleet steps adds five.
	Deferrals uint64 `json:"deferrals"`
	// Migrations counts completed migrations by reason ("thermal",
	// "capacity").
	Migrations map[string]uint64 `json:"migrations,omitempty"`
	// Waiting is the current global queue depth (submitted, not yet
	// placed).
	Waiting int `json:"waiting"`
	// RoomQueue is the per-room queue depth, keyed by room name: waiting
	// jobs attributed to the room they would currently place on, plus jobs
	// running there.
	RoomQueue map[string]int `json:"room_queue,omitempty"`
	// RunningJobs and CompletedJobs count whole jobs (not pods).
	RunningJobs   int `json:"running_jobs"`
	CompletedJobs int `json:"completed_jobs"`
}

// Clone deep-copies the counters (maps included).
func (c Counters) Clone() Counters {
	out := c
	if c.Migrations != nil {
		out.Migrations = make(map[string]uint64, len(c.Migrations))
		for k, v := range c.Migrations {
			out.Migrations[k] = v
		}
	}
	if c.RoomQueue != nil {
		out.RoomQueue = make(map[string]int, len(c.RoomQueue))
		for k, v := range c.RoomQueue {
			out.RoomQueue[k] = v
		}
	}
	return out
}

// Merge folds another shard's counters into c (sums everywhere — rooms on
// distinct shards are disjoint).
func (c *Counters) Merge(o Counters) {
	c.Placements += o.Placements
	c.Deferrals += o.Deferrals
	for k, v := range o.Migrations {
		if c.Migrations == nil {
			c.Migrations = map[string]uint64{}
		}
		c.Migrations[k] += v
	}
	c.Waiting += o.Waiting
	for k, v := range o.RoomQueue {
		if c.RoomQueue == nil {
			c.RoomQueue = map[string]int{}
		}
		c.RoomQueue[k] += v
	}
	c.RunningJobs += o.RunningJobs
	c.CompletedJobs += o.CompletedJobs
}

// MigrationsTotal sums migrations across reasons.
func (c Counters) MigrationsTotal() uint64 {
	var t uint64
	for _, v := range c.Migrations {
		t += v
	}
	return t
}

// track is one job's lifecycle record.
type track struct {
	job Job
	seq int
	// submitAtS is the job's absolute submission time.
	submitAtS float64
	// placed is true once the job's pods are bound to a room.
	placed bool
	room   int
	// admitAtS / doneAtS are absolute placement and expected completion
	// times (doneAtS moves when the job migrates).
	admitAtS, doneAtS float64
	// deferSteps counts barriers this job spent waiting.
	deferSteps int
	// lastMoveStep is the fleet step of the last placement or migration.
	lastMoveStep int
	migrations   int
	done         bool
}

// Scheduler holds the fleet queue and drives per-room orchestrators. It is
// NOT safe for concurrent use: the harness calls it single-threaded at the
// step barrier.
type Scheduler struct {
	cfg   Config
	rooms []*workload.Orchestrator
	names []string

	tracks []*track
	seq    int

	counters Counters
}

// New wires the scheduler to one orchestrator per room. names label rooms in
// the per-room queue-depth counters.
func New(cfg Config, rooms []*workload.Orchestrator, names []string) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(rooms) == 0 {
		return nil, fmt.Errorf("scheduler: no rooms")
	}
	if len(names) != len(rooms) {
		return nil, fmt.Errorf("scheduler: %d names for %d rooms", len(names), len(rooms))
	}
	return &Scheduler{
		cfg:   cfg,
		rooms: rooms,
		names: names,
		counters: Counters{
			Migrations: map[string]uint64{},
			RoomQueue:  map[string]int{},
		},
	}, nil
}

// Submit queues a job; SubmitS here must already be in absolute simulation
// seconds (the harness converts from evaluation-relative time).
func (s *Scheduler) Submit(j Job, submitAtS float64) error {
	if err := j.Validate(); err != nil {
		return err
	}
	s.tracks = append(s.tracks, &track{job: j, seq: s.seq, submitAtS: submitAtS})
	s.seq++
	return nil
}

// eligible reports whether a room can accept new deferrable work given the
// current (debited) state estimates.
func (s *Scheduler) eligible(st *RoomState) bool {
	return st.HeadroomC >= s.cfg.AdmitHeadroomC && st.Duty <= s.cfg.DutyMax
}

// bestRoom returns the eligible room with the most headroom (ties to the
// lowest index), or -1 when no room is eligible.
func (s *Scheduler) bestRoom(states []RoomState, exclude int) int {
	best, bestHead := -1, -1e30
	for i := range states {
		if i == exclude || !s.eligible(&states[i]) {
			continue
		}
		if states[i].HeadroomC > bestHead {
			best, bestHead = i, states[i].HeadroomC
		}
	}
	return best
}

// coolestRoom is the unconditional fallback (starvation deadline, no
// eligible room): the room with the most headroom regardless of thresholds.
func coolestRoom(states []RoomState, exclude int) int {
	best, bestHead := -1, -1e30
	for i := range states {
		if i == exclude {
			continue
		}
		if states[i].HeadroomC > bestHead {
			best, bestHead = i, states[i].HeadroomC
		}
	}
	return best
}

// place binds a job's pods to room r with the given remaining duration and
// debits the room's state estimate.
func (s *Scheduler) place(t *track, r int, now, durS float64, states []RoomState) error {
	err := s.rooms[r].Submit(workload.Job{
		Name: t.job.Name, Level: t.job.Level, DurationS: durS, Parallelism: t.job.Parallelism,
	}, now)
	if err != nil {
		return fmt.Errorf("scheduler: placing job %q on %s: %w", t.job.Name, s.names[r], err)
	}
	t.placed, t.room = true, r
	t.doneAtS = now + durS
	states[r].HeadroomC -= s.cfg.HeadroomPerLevel * t.job.Level * float64(t.job.Parallelism)
	return nil
}

// Step runs one barrier's worth of decisions: reap completions, migrate off
// stressed rooms (ModeFull), then admit/place queued jobs in submission
// order. states must be indexed like the rooms slice; Step mutates the
// entries as it debits estimated headroom.
func (s *Scheduler) Step(step int, now float64, states []RoomState) error {
	if len(states) != len(s.rooms) {
		return fmt.Errorf("scheduler: %d states for %d rooms", len(states), len(s.rooms))
	}

	// Completions first: the orchestrators have already reaped pods whose
	// endsAt passed; mirror that in the job tracks.
	for _, t := range s.tracks {
		if t.placed && !t.done && now >= t.doneAtS {
			t.done = true
		}
	}

	// Migration pass (ModeFull): shed batch load from stressed rooms, in
	// admission order so the decision sequence is deterministic.
	if s.cfg.Mode == ModeFull {
		for _, t := range s.tracks {
			if !t.placed || t.done {
				continue
			}
			src := &states[t.room]
			stressed := src.HeadroomC < s.cfg.StressHeadroomC
			saturated := src.Duty > s.cfg.DutyMax
			if !stressed && !saturated {
				continue
			}
			if step-t.lastMoveStep < s.cfg.CooldownSteps {
				continue
			}
			// The target needs real slack — MigrateHeadroomC, above the
			// admission bar — or the job would bounce between rooms.
			dst, dstHead := -1, s.cfg.MigrateHeadroomC
			for i := range states {
				if i == t.room || states[i].Duty > s.cfg.DutyMax {
					continue
				}
				if states[i].HeadroomC >= dstHead {
					if dst == -1 || states[i].HeadroomC > states[dst].HeadroomC {
						dst = i
					}
				}
			}
			if dst < 0 {
				continue
			}
			pods, remainS := s.rooms[t.room].Evict(t.job.Name, now)
			if pods == 0 || remainS <= 0 {
				// The job finished between barriers; the completion pass
				// will catch it next step.
				continue
			}
			if err := s.place(t, dst, now, remainS, states); err != nil {
				return err
			}
			t.lastMoveStep = step
			t.migrations++
			reason := ReasonThermal
			if !stressed {
				reason = ReasonCapacity
			}
			s.counters.Migrations[reason]++
		}
	}

	// Admission/placement pass, in submission order (stable: seq breaks
	// ties).
	pending := make([]*track, 0, 8)
	for _, t := range s.tracks {
		if !t.placed && !t.done && now >= t.submitAtS-1e-9 {
			pending = append(pending, t)
		}
	}
	sort.Slice(pending, func(a, b int) bool { return pending[a].seq < pending[b].seq })

	clear(s.counters.RoomQueue)
	for _, t := range pending {
		overdue := t.job.MaxDeferS > 0 && now-t.submitAtS >= t.job.MaxDeferS

		var target int
		admit := true
		switch s.cfg.Mode {
		case ModeNone:
			// Scheduler-less baseline: round-robin by submission order,
			// placed the barrier it arrives.
			target = t.seq % len(s.rooms)
		case ModeDefer:
			// Placement stays naive; only the WHEN is controlled, per the
			// target room's own headroom.
			target = t.seq % len(s.rooms)
			if t.job.Deferrable && !overdue && !s.eligible(&states[target]) {
				admit = false
			}
		case ModeFull:
			target = s.bestRoom(states, -1)
			if target < 0 {
				if t.job.Deferrable && !overdue {
					admit = false
				} else {
					// Must run now: least-bad room.
					target = coolestRoom(states, -1)
				}
			} else if t.job.Deferrable && !overdue && states[target].HeadroomC < s.cfg.AdmitHeadroomC {
				admit = false
			}
		}

		if !admit {
			t.deferSteps++
			s.counters.Deferrals++
			name := s.names[t.seq%len(s.rooms)]
			if s.cfg.Mode == ModeFull {
				// Attribute the waiting job to the room it would land on
				// right now (the coolest one) for queue-depth telemetry.
				if r := coolestRoom(states, -1); r >= 0 {
					name = s.names[r]
				}
			}
			s.counters.RoomQueue[name]++
			continue
		}

		t.admitAtS = now
		t.lastMoveStep = step
		if err := s.place(t, target, now, t.job.DurationS, states); err != nil {
			return err
		}
		s.counters.Placements++
	}

	// Refresh the gauges.
	s.counters.Waiting = 0
	s.counters.RunningJobs = 0
	s.counters.CompletedJobs = 0
	for _, t := range s.tracks {
		switch {
		case t.done:
			s.counters.CompletedJobs++
		case t.placed:
			s.counters.RunningJobs++
			s.counters.RoomQueue[s.names[t.room]]++
		case now >= t.submitAtS-1e-9:
			s.counters.Waiting++
		}
	}
	return nil
}

// Counters snapshots the scheduler's counters (deep copy; safe to publish).
func (s *Scheduler) Counters() Counters { return s.counters.Clone() }

// JobStats summarize the fleet queue's outcome.
type JobStats struct {
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	// MigratedJobs counts distinct jobs that moved at least once.
	MigratedJobs int `json:"migrated_jobs"`
	// MeanWaitS / MaxWaitS are queueing delays (placement − submission)
	// over placed jobs.
	MeanWaitS float64 `json:"mean_wait_s"`
	MaxWaitS  float64 `json:"max_wait_s"`
	// MeanLatencyS is completion − submission over completed jobs.
	MeanLatencyS float64 `json:"mean_latency_s"`
}

// Stats computes the job outcome as of time now.
func (s *Scheduler) Stats(now float64) JobStats {
	var st JobStats
	var waitN, latN int
	for _, t := range s.tracks {
		st.Submitted++
		if t.migrations > 0 {
			st.MigratedJobs++
		}
		if t.placed {
			w := t.admitAtS - t.submitAtS
			st.MeanWaitS += w
			if w > st.MaxWaitS {
				st.MaxWaitS = w
			}
			waitN++
		}
		if t.placed && now >= t.doneAtS {
			st.Completed++
			st.MeanLatencyS += t.doneAtS - t.submitAtS
			latN++
		}
	}
	if waitN > 0 {
		st.MeanWaitS /= float64(waitN)
	}
	if latN > 0 {
		st.MeanLatencyS /= float64(latN)
	}
	return st
}
