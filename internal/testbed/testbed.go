// Package testbed assembles the simulated equivalent of the paper's physical
// deployment (§4): the 21-server cluster, the zonal room model, the
// PID-driven ACU and the sensor array, advanced together on a fine physics
// time step and sampled at the 1-minute control granularity (Δt in Table 2).
//
// Everything above this package — trace collection, the TESLA controller,
// the baselines, the experiment harness — interacts with the testbed only
// through set-point commands and sampled telemetry, mirroring how the real
// system is driven through Modbus registers and InfluxDB queries.
package testbed

import (
	"fmt"
	"math"

	"tesla/internal/acu"
	"tesla/internal/cluster"
	"tesla/internal/rng"
	"tesla/internal/thermo"
	"tesla/internal/workload"
)

// Config assembles a testbed.
type Config struct {
	Room acu1Room
	ACU  acu.Config
	// PhysicsDtS is the integration step in seconds.
	PhysicsDtS float64
	// SamplePeriodS is the telemetry/control period (60 s in the paper).
	SamplePeriodS float64
	// Seed drives all stochastic components (sensor noise, power noise,
	// load jitter).
	Seed uint64
	// Servers sizes the compute cluster; 0 selects the paper's 21-server
	// testbed. Heterogeneous fleets override it per room.
	Servers int
}

// acu1Room aliases the room config to keep the struct literal readable.
type acu1Room = thermo.RoomConfig

// DefaultConfig returns the calibrated testbed used by every experiment.
func DefaultConfig() Config {
	return Config{
		Room:          thermo.DefaultRoomConfig(),
		ACU:           acu.DefaultConfig(),
		PhysicsDtS:    1.0,
		SamplePeriodS: 60.0,
		Seed:          1,
	}
}

// Sample is one telemetry row at the control granularity — the union of the
// metrics the paper collects through Telegraf (§4).
type Sample struct {
	TimeS float64 // simulation time in seconds

	DCTemps  []float64 // N_d rack-installed sensor readings (°C)
	ACUTemps []float64 // N_a ACU inlet sensor readings (°C)

	SetpointC    float64 // latched ACU set-point
	ACUPowerKW   float64 // instantaneous ACU draw
	ACUDuty      float64 // compressor duty [0,1]
	Interrupted  bool    // power < 100 W (paper's CI definition)
	SupplyC      float64 // ACU supply air temperature
	AvgServerKW  float64 // fleet-average server power (ASP input)
	TotalIT      float64 // total IT power (kW)
	AvgUtil      float64 // fleet-average CPU utilization
	MaxColdAisle float64 // max cold-aisle sensor reading (constraint, eq. 9)

	// TrueMaxColdC is the ground-truth maximum cold-aisle temperature at the
	// probe locations — no measurement noise, no injected fault. Step hooks
	// never touch it, so safety experiments can score real (physical) ASHRAE
	// violations even while the delivered telemetry is being corrupted.
	TrueMaxColdC float64
}

// Clone deep-copies the sample (slices included).
func (s Sample) Clone() Sample {
	out := s
	out.DCTemps = append([]float64(nil), s.DCTemps...)
	out.ACUTemps = append([]float64(nil), s.ACUTemps...)
	return out
}

// StepHook lets external components — the fault-injection engine in
// internal/faults — intervene in the sampling loop. Hooks run synchronously
// on the simulation goroutine, once per control period.
type StepHook interface {
	// BeforeStep runs before the physics integration of a sample period; it
	// may mutate plant state (sensor fault modes, ACU fault switches).
	BeforeStep(tb *Testbed)
	// AfterSample may mutate the telemetry sample before it is delivered
	// (telemetry-layer faults: gaps, delays). Ground-truth fields must be
	// left alone.
	AfterSample(tb *Testbed, s *Sample)
}

// Testbed is the live simulation.
type Testbed struct {
	cfg     Config
	Cluster *cluster.Cluster
	Room    *thermo.Room
	ACU     *acu.ACU
	Sensors *thermo.Array

	rand      *rng.Rand
	timeS     float64
	driver    *workload.Driver
	orch      *workload.Orchestrator
	hooks     []StepHook
	lastInlet float64
}

// New builds a testbed.
func New(cfg Config) (*Testbed, error) {
	if cfg.PhysicsDtS <= 0 || cfg.SamplePeriodS <= 0 {
		return nil, fmt.Errorf("testbed: time steps must be positive")
	}
	if cfg.SamplePeriodS < cfg.PhysicsDtS {
		return nil, fmt.Errorf("testbed: sample period %gs below physics step %gs", cfg.SamplePeriodS, cfg.PhysicsDtS)
	}
	if cfg.Servers < 0 {
		return nil, fmt.Errorf("testbed: server count %d must be non-negative", cfg.Servers)
	}
	room, err := thermo.NewRoom(cfg.Room)
	if err != nil {
		return nil, err
	}
	unit, err := acu.New(cfg.ACU)
	if err != nil {
		return nil, err
	}
	servers := cfg.Servers
	if servers == 0 {
		servers = 21
	}
	tb := &Testbed{
		cfg:       cfg,
		Cluster:   cluster.New(servers),
		Room:      room,
		ACU:       unit,
		Sensors:   thermo.DefaultArray(),
		rand:      rng.New(cfg.Seed),
		lastInlet: room.ReturnC,
	}
	return tb, nil
}

// Config returns the testbed configuration.
func (t *Testbed) Config() Config { return t.cfg }

// Rand exposes the testbed RNG for components that must share its stream.
func (t *Testbed) Rand() *rng.Rand { return t.rand }

// TimeS returns the current simulation time.
func (t *Testbed) TimeS() float64 { return t.timeS }

// UseProfile drives the cluster from a workload profile (with per-server
// skew). It replaces any previously installed driver or orchestrator.
func (t *Testbed) UseProfile(p workload.Profile) {
	t.driver = workload.NewDriver(p, t.Cluster, t.rand.Split())
	t.orch = nil
}

// UseOrchestrator drives the cluster from a job orchestrator instead of a
// profile.
func (t *Testbed) UseOrchestrator(o *workload.Orchestrator) {
	t.orch = o
	t.driver = nil
}

// AttachOrchestrator runs a job orchestrator ALONGSIDE the installed profile
// driver: each physics step the driver applies the profile's base targets
// first and the orchestrator then layers its committed pod load on top. The
// orchestrator must be in Additive mode — a replacing orchestrator would
// overwrite the driver's targets — and with no pods bound the trajectory is
// bit-identical to the profile-only run, which is what lets the fleet
// scheduler attach to rooms after warm-up without perturbing golden hashes.
func (t *Testbed) AttachOrchestrator(o *workload.Orchestrator) {
	t.orch = o
}

// SetSetpoint commands the ACU set-point (clamped to the unit's range) and
// returns the latched value.
func (t *Testbed) SetSetpoint(c float64) float64 { return t.ACU.SetSetpoint(c) }

// AddStepHook registers a step hook; hooks run in registration order.
func (t *Testbed) AddStepHook(h StepHook) { t.hooks = append(t.hooks, h) }

// Advance runs the physics for one sample period and returns the telemetry
// sample observed at its end. Power-integrating quantities (mean ACU power
// over the period) are folded into the sample so trapezoidal energy
// integration at the sample granularity stays accurate.
func (t *Testbed) Advance() Sample {
	for _, h := range t.hooks {
		h.BeforeStep(t)
	}
	steps := int(t.cfg.SamplePeriodS/t.cfg.PhysicsDtS + 0.5)
	var powerAcc float64
	for i := 0; i < steps; i++ {
		t.stepOnce()
		powerAcc += t.ACU.PowerKW()
	}
	s := t.sampleNow()
	s.ACUPowerKW = powerAcc / float64(steps)
	s.Interrupted = s.ACUPowerKW < 0.100
	for _, h := range t.hooks {
		h.AfterSample(t, &s)
	}
	return s
}

// stepOnce advances one physics step.
func (t *Testbed) stepOnce() {
	dt := t.cfg.PhysicsDtS
	if t.driver != nil {
		t.driver.Apply(t.Cluster, t.timeS)
	}
	if t.orch != nil {
		t.orch.Tick(t.timeS)
	}
	t.Cluster.Step(dt, t.rand)

	inlet := mean(t.Sensors.ReadACU(t.Room, t.rand, nil))
	// A dropped-out inlet probe yields NaN; the real unit's firmware holds
	// the last valid measurement rather than feeding NaN into its PID.
	if math.IsNaN(inlet) {
		inlet = t.lastInlet
	} else {
		t.lastInlet = inlet
	}
	cool := t.ACU.Step(dt, inlet, t.rand)
	achieved := t.Room.Step(dt, t.Cluster.RackPowerKW(), cool)
	t.ACU.BillAchieved(achieved, inlet)

	t.timeS += dt
}

// sampleNow reads all sensors into a fresh Sample.
func (t *Testbed) sampleNow() Sample {
	s := Sample{TimeS: t.timeS}
	s.DCTemps = t.Sensors.ReadDC(t.Room, t.rand, nil)
	s.ACUTemps = t.Sensors.ReadACU(t.Room, t.rand, nil)
	s.SetpointC = t.ACU.Setpoint()
	s.ACUPowerKW = t.ACU.PowerKW()
	s.ACUDuty = t.ACU.Duty()
	s.Interrupted = t.ACU.Interrupted()
	s.SupplyC = t.Room.SupplyC
	s.AvgServerKW = t.Cluster.AveragePowerKW()
	s.TotalIT = t.Cluster.TotalPowerKW()
	s.AvgUtil = t.Cluster.AverageUtil()
	s.MaxColdAisle = t.Sensors.MaxColdAisle(s.DCTemps)
	s.TrueMaxColdC = t.Sensors.TrueMaxColdAisle(t.Room)
	return s
}

// Warmup runs the testbed for the given duration (discarding samples) so
// experiments start from a settled thermal state.
func (t *Testbed) Warmup(seconds float64) {
	n := int(seconds / t.cfg.SamplePeriodS)
	for i := 0; i < n; i++ {
		t.Advance()
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}
