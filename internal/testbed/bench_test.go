package testbed

import (
	"testing"

	"tesla/internal/workload"
)

// BenchmarkAdvance measures one control period (60 physics steps, full
// sensor sweep) — the simulation side of every control step.
func BenchmarkAdvance(b *testing.B) {
	tb, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	tb.UseProfile(workload.Constant{Util: 0.3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Advance()
	}
}

// BenchmarkTwelveHourRun measures a full fixed-policy 12-hour evaluation —
// the plant-side cost of one Table 5 cell.
func BenchmarkTwelveHourRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := New(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		tb.UseProfile(workload.NewDiurnal(workload.Medium, 43200, 1))
		tb.SetSetpoint(23)
		for s := 0; s < 720; s++ {
			tb.Advance()
		}
	}
}
