package testbed

import (
	"math"
	"testing"

	"tesla/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PhysicsDtS = 0
	if _, err := New(cfg); err == nil {
		t.Fatalf("zero physics step accepted")
	}
	cfg = DefaultConfig()
	cfg.SamplePeriodS = 0.5 // below the physics step
	if _, err := New(cfg); err == nil {
		t.Fatalf("sample period below physics step accepted")
	}
}

func TestAdvanceProducesFullTelemetry(t *testing.T) {
	tb, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb.UseProfile(workload.Constant{Util: 0.3})
	s := tb.Advance()
	if len(s.DCTemps) != 35 || len(s.ACUTemps) != 2 {
		t.Fatalf("sensor counts %d/%d, want 35/2", len(s.DCTemps), len(s.ACUTemps))
	}
	if s.TimeS != 60 {
		t.Fatalf("one advance should move 60 s, got %g", s.TimeS)
	}
	if s.ACUPowerKW <= 0 {
		t.Fatalf("ACU power %g", s.ACUPowerKW)
	}
	if s.AvgServerKW <= 0 || s.TotalIT <= 0 {
		t.Fatalf("server power missing: %g %g", s.AvgServerKW, s.TotalIT)
	}
	if s.MaxColdAisle == 0 {
		t.Fatalf("max cold aisle not computed")
	}
}

func TestPIDTracksSetpointClosedLoop(t *testing.T) {
	tb, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb.UseProfile(workload.Constant{Util: 0.25})
	tb.SetSetpoint(24)
	tb.Warmup(4 * 3600)
	s := tb.Advance()
	inlet := (s.ACUTemps[0] + s.ACUTemps[1]) / 2
	if math.Abs(inlet-24) > 0.5 {
		t.Fatalf("PID failed to track: inlet %g, set-point 24", inlet)
	}
	// No interruption and no limit cycling at a comfortably trackable point.
	if s.Interrupted {
		t.Fatalf("unexpected interruption at steady state")
	}
}

func TestHigherSetpointUsesLessPower(t *testing.T) {
	measure := func(sp float64) float64 {
		tb, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		tb.UseProfile(workload.Constant{Util: 0.3})
		tb.SetSetpoint(sp)
		tb.Warmup(4 * 3600)
		var sum float64
		for i := 0; i < 60; i++ {
			sum += tb.Advance().ACUPowerKW
		}
		return sum / 60
	}
	p22 := measure(22)
	p27 := measure(27)
	if p27 >= p22 {
		t.Fatalf("raising the set-point must save power: P(22)=%g P(27)=%g", p22, p27)
	}
}

func TestHigherLoadNeedsMorePower(t *testing.T) {
	measure := func(util float64) float64 {
		tb, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		tb.UseProfile(workload.Constant{Util: util})
		tb.SetSetpoint(23)
		tb.Warmup(4 * 3600)
		var sum float64
		for i := 0; i < 60; i++ {
			sum += tb.Advance().ACUPowerKW
		}
		return sum / 60
	}
	if lo, hi := measure(0.05), measure(0.6); hi <= lo {
		t.Fatalf("more IT heat must need more cooling power: %g vs %g", lo, hi)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []float64 {
		cfg := DefaultConfig()
		cfg.Seed = 77
		tb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tb.UseProfile(workload.NewDiurnal(workload.Medium, 43200, 3))
		var out []float64
		for i := 0; i < 30; i++ {
			s := tb.Advance()
			out = append(out, s.ACUPowerKW, s.MaxColdAisle)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestSampleClone(t *testing.T) {
	tb, _ := New(DefaultConfig())
	s := tb.Advance()
	c := s.Clone()
	c.DCTemps[0] = -100
	if s.DCTemps[0] == -100 {
		t.Fatalf("Clone shares slices")
	}
}

func TestOrchestratorDrivesLoad(t *testing.T) {
	tb, _ := New(DefaultConfig())
	orch := workload.NewOrchestrator(tb.Cluster)
	if err := orch.Submit(workload.Job{Name: "j", Level: 0.5, DurationS: 3600, Parallelism: 21}, 0); err != nil {
		t.Fatal(err)
	}
	tb.UseOrchestrator(orch)
	var s Sample
	for i := 0; i < 10; i++ {
		s = tb.Advance()
	}
	if s.AvgUtil < 0.3 {
		t.Fatalf("orchestrated load not applied: util %g", s.AvgUtil)
	}
}
