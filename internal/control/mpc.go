package control

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"tesla/internal/baselines"
	"tesla/internal/dataset"
)

// MPCConfig parameterizes the receding-horizon MPC baseline (Ogura et al.
// style: model-predictive set-point optimization for a cold-aisle-contained
// room, with an explicit safety margin under the thermal limit).
type MPCConfig struct {
	// L is the prediction horizon in control steps; the optimizer searches a
	// full set-point sequence of this length and executes only its head.
	L int
	// SpMin and SpMax bound the set-point sequence.
	SpMin, SpMax float64
	// ColdLimitC is the cold-aisle constraint.
	ColdLimitC float64
	// MarginC is the modeling-error margin: the optimizer constrains the
	// predicted maximum to ColdLimitC − MarginC, the hedge whose absence the
	// paper blames for Lazic's violations.
	MarginC float64
	// ColdIdx are the cold-aisle sensor indices within the DC series.
	ColdIdx []int
	// Passes is the number of cyclic coordinate-descent sweeps over the
	// sequence; StepC is the initial search step (halved every pass).
	Passes int
	StepC  float64
	// PenaltyWeight scales the quadratic constraint penalty against the
	// linear energy term (SpMax − s_l).
	PenaltyWeight float64
	// InitialSetpointC is used before the model has enough history.
	InitialSetpointC float64
}

// DefaultMPCConfig mirrors the reference formulation: a 12-step horizon, a
// 0.3 °C containment margin under the 22 °C limit, three descent sweeps.
func DefaultMPCConfig(spMin, spMax float64, coldIdx []int) MPCConfig {
	return MPCConfig{
		L:     12,
		SpMin: spMin, SpMax: spMax,
		ColdLimitC:       22,
		MarginC:          0.3,
		ColdIdx:          coldIdx,
		Passes:           3,
		StepC:            0.5,
		PenaltyWeight:    6,
		InitialSetpointC: 23,
	}
}

// MPC is the receding-horizon controller: at every step it optimizes a full
// set-point sequence over the recursive plant model (not the single constant
// set-point Lazic searches), executes the head, and warm-starts the next
// step from the shifted remainder — the classic receding-horizon loop.
type MPC struct {
	cfg   MPCConfig
	model *baselines.Recursive
	plan  []float64 // warm-start sequence carried between steps
}

// NewMPC wires a trained recursive model into the controller.
func NewMPC(m *baselines.Recursive, cfg MPCConfig) (*MPC, error) {
	if m == nil {
		return nil, fmt.Errorf("control: MPC needs a trained recursive model")
	}
	if cfg.L < 1 || cfg.Passes < 1 || cfg.StepC <= 0 || cfg.PenaltyWeight <= 0 {
		return nil, fmt.Errorf("control: invalid MPC config %+v", cfg)
	}
	if cfg.SpMin >= cfg.SpMax {
		return nil, fmt.Errorf("control: MPC set-point range [%g,%g] is empty", cfg.SpMin, cfg.SpMax)
	}
	if len(cfg.ColdIdx) == 0 {
		return nil, fmt.Errorf("control: MPC needs cold-aisle sensor indices")
	}
	return &MPC{cfg: cfg, model: m}, nil
}

// Name implements Policy.
func (m *MPC) Name() string { return "mpc" }

// Decide implements Policy.
func (m *MPC) Decide(tr *dataset.Trace, step int) float64 {
	if step < m.model.W-1 {
		return m.cfg.InitialSetpointC
	}
	in, err := baselines.RolloutInputAt(tr, step, m.model.W)
	if err != nil {
		return m.cfg.InitialSetpointC
	}

	// Seed: the highest constant set-point the margin-tightened constraint
	// admits (bisection over the rollout) — a globally sensible starting
	// sequence the local descent then shapes step by step. Warm-starting
	// from last step's shifted plan keeps the refinement, but only when it
	// actually scores better than the fresh seed, so the plan can never
	// drift away from feasibility.
	seed := m.feasibleConstant(in)
	if len(m.plan) != m.cfg.L {
		m.plan = make([]float64, m.cfg.L)
		for i := range m.plan {
			m.plan[i] = seed
		}
	} else {
		copy(m.plan, m.plan[1:])
		m.plan[m.cfg.L-1] = m.plan[m.cfg.L-2]
		warm := m.objective(in, m.plan)
		constant := make([]float64, m.cfg.L)
		for i := range constant {
			constant[i] = seed
		}
		if m.objective(in, constant) < warm {
			copy(m.plan, constant)
		}
	}

	// Cyclic coordinate descent over the sequence: perturb each element up
	// and down by the (annealed) search step, keep the best of the three.
	h := m.cfg.StepC
	best := m.objective(in, m.plan)
	for pass := 0; pass < m.cfg.Passes; pass++ {
		for l := 0; l < m.cfg.L; l++ {
			cur := m.plan[l]
			for _, cand := range [2]float64{cur + h, cur - h} {
				cand = clampF(cand, m.cfg.SpMin, m.cfg.SpMax)
				if cand == m.plan[l] {
					continue
				}
				prev := m.plan[l]
				m.plan[l] = cand
				if j := m.objective(in, m.plan); j < best {
					best = j
				} else {
					m.plan[l] = prev
				}
			}
		}
		h /= 2
	}

	// Feasibility gate: the descent trades penalty against energy, so it may
	// settle marginally past the hard limit (horizon-tail effects
	// especially). Fall back to the bisection seed then — feasible by
	// construction whenever any constant is — and only to S_min when not
	// even maximum cooling clears the predicted transient (the reference
	// controllers' re-calibration behavior).
	if m.predictedMax(in, m.plan) > m.cfg.ColdLimitC {
		for i := range m.plan {
			m.plan[i] = seed
		}
		if m.predictedMax(in, m.plan) > m.cfg.ColdLimitC {
			return m.cfg.SpMin
		}
	}
	return clampF(m.plan[0], m.cfg.SpMin, m.cfg.SpMax)
}

// feasibleConstant bisects for the highest constant set-point whose
// predicted horizon maximum respects the margin-tightened limit.
func (m *MPC) feasibleConstant(in *baselines.RolloutInput) float64 {
	lim := m.cfg.ColdLimitC - m.cfg.MarginC
	constant := make([]float64, m.cfg.L)
	eval := func(s float64) float64 {
		for i := range constant {
			constant[i] = s
		}
		return m.predictedMax(in, constant)
	}
	if eval(m.cfg.SpMax) <= lim {
		return m.cfg.SpMax
	}
	if eval(m.cfg.SpMin) > lim {
		return m.cfg.SpMin
	}
	lo, hi := m.cfg.SpMin, m.cfg.SpMax
	for i := 0; i < 20; i++ {
		mid := (lo + hi) / 2
		if eval(mid) <= lim {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// objective scores a candidate sequence: linear energy cost (distance of
// each set-point below SpMax — higher set-points spend less cooling energy)
// plus a quadratic penalty on predicted excursions above the margin-tightened
// limit.
func (m *MPC) objective(in *baselines.RolloutInput, plan []float64) float64 {
	_, dc, err := m.model.Rollout(in, plan)
	if err != nil {
		return 1e18
	}
	lim := m.cfg.ColdLimitC - m.cfg.MarginC
	var j float64
	for l := 0; l < len(plan); l++ {
		j += m.cfg.SpMax - plan[l]
		row := dc.Row(l)
		for _, k := range m.cfg.ColdIdx {
			if g := row[k] - lim; g > 0 {
				j += m.cfg.PenaltyWeight * g * g
			}
		}
	}
	return j
}

// predictedMax is the predicted maximum cold-aisle temperature over the
// horizon under the given sequence.
func (m *MPC) predictedMax(in *baselines.RolloutInput, plan []float64) float64 {
	_, dc, err := m.model.Rollout(in, plan)
	if err != nil {
		return 1e9
	}
	maxCold := -1e30
	for l := 0; l < len(plan); l++ {
		row := dc.Row(l)
		for _, k := range m.cfg.ColdIdx {
			if row[k] > maxCold {
				maxCold = row[k]
			}
		}
	}
	return maxCold
}

// mpcState is the controller's mutable state for checkpointing.
type mpcState struct {
	Version int
	Plan    []float64
}

// Snapshot implements Durable.
func (m *MPC) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(mpcState{Version: 1, Plan: m.plan}); err != nil {
		return nil, fmt.Errorf("control: MPC snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements Durable.
func (m *MPC) Restore(blob []byte) error {
	var st mpcState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return fmt.Errorf("control: MPC restore: %w", err)
	}
	if st.Version != 1 {
		return fmt.Errorf("control: MPC snapshot version %d unsupported", st.Version)
	}
	if len(st.Plan) != 0 && len(st.Plan) != m.cfg.L {
		return fmt.Errorf("control: MPC snapshot plan length %d, horizon %d", len(st.Plan), m.cfg.L)
	}
	m.plan = st.Plan
	return nil
}
