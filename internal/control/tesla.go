package control

import (
	"fmt"
	"math"

	"tesla/internal/bo"
	"tesla/internal/dataset"
	"tesla/internal/errmon"
	"tesla/internal/model"
)

// TESLAConfig assembles the full controller.
type TESLAConfig struct {
	// BO is the Bayesian-optimizer budget over [S_min, S_max].
	BO bo.Config
	// SmoothN is the smoothing-buffer length (N=5 in Table 2).
	SmoothN int
	// MonitorCapacity is the prediction-error window (one day = 1440 steps).
	MonitorCapacity int
	// Bootstrap is N_b, the bootstrap sample count (500 in Table 2).
	Bootstrap int
	// InterruptionWeight scales D̂ in the objective; 1 reproduces eq. 8 and
	// 0 is the "no interruption penalty" ablation.
	InterruptionWeight float64
	// ConstraintMarginC tightens the internal cold-aisle limit below
	// d_allowed. The paper notes the thermal-safety constraint can be
	// adjusted at deployment time without retraining (§8); the margin
	// absorbs model extrapolation error at the edges of the training
	// distribution.
	ConstraintMarginC float64
	// DefaultObjVar / DefaultConVar seed the GP noise before the monitor has
	// matured any predictions.
	DefaultObjVar, DefaultConVar float64
	// InitialSetpointC is executed until the model has enough history.
	InitialSetpointC float64
	Seed             uint64
}

// DefaultTESLAConfig returns the paper's Table 2 configuration for the given
// set-point range.
func DefaultTESLAConfig(spMin, spMax float64) TESLAConfig {
	return TESLAConfig{
		BO:                 bo.DefaultConfig(spMin, spMax),
		SmoothN:            5,
		MonitorCapacity:    1440,
		Bootstrap:          500,
		InterruptionWeight: 1,
		ConstraintMarginC:  0.45,
		DefaultObjVar:      0.02 * 0.02,
		DefaultConVar:      0.25 * 0.25,
		InitialSetpointC:   23,
		Seed:               1,
	}
}

// Diagnostics are TESLA's cumulative decision counters, exported so operators
// can see how often the controller ran on its fallbacks instead of the
// optimizer (surfaced through teslad's status endpoint).
type Diagnostics struct {
	// Decisions counts every Decide call, warmup included.
	Decisions uint64
	// HistoryFallbacks counts decisions that returned InitialSetpointC
	// because the trace could not supply a valid model history window.
	HistoryFallbacks uint64
	// OptimizerFallbacks counts decisions that returned the S_min backstop
	// because the Bayesian optimizer failed.
	OptimizerFallbacks uint64
	// InvalidMaturations counts matured prediction windows dropped because
	// the realized telemetry was unusable (no ACU series, or non-finite
	// realizations) — windows that would otherwise have poisoned the error
	// monitor with NaN.
	InvalidMaturations uint64
}

// pendingPrediction is a decision awaiting maturation: once its horizon has
// elapsed the realized objective/constraint are compared against what the
// model predicted and the errors land in the monitor.
type pendingPrediction struct {
	decidedAt   int
	predObj     float64 // predicted normalized objective Ê_norm + w·D̂_norm
	predMaxCold float64
}

// TESLA is the full controller of §3.
type TESLA struct {
	cfg     TESLAConfig
	model   *model.Model
	monitor *errmon.Monitor
	smooth  *SmoothingBuffer
	pending []pendingPrediction

	lastResult *bo.Result
	lastRaw    float64
	step       uint64
	diag       Diagnostics
}

// NewTESLA wires a trained DC time-series model into a controller.
func NewTESLA(m *model.Model, cfg TESLAConfig) (*TESLA, error) {
	if m == nil {
		return nil, fmt.Errorf("control: TESLA needs a trained model")
	}
	if cfg.SmoothN < 1 {
		return nil, fmt.Errorf("control: smoothing buffer must have positive length")
	}
	if cfg.InterruptionWeight < 0 {
		return nil, fmt.Errorf("control: negative interruption weight")
	}
	if err := cfg.BO.Validate(); err != nil {
		return nil, err
	}
	mon, err := errmon.New(cfg.MonitorCapacity, cfg.Bootstrap, cfg.Seed^0xe44)
	if err != nil {
		return nil, err
	}
	return &TESLA{
		cfg:     cfg,
		model:   m,
		monitor: mon,
		smooth:  NewSmoothingBuffer(cfg.SmoothN),
	}, nil
}

// Name implements Policy.
func (t *TESLA) Name() string { return "tesla" }

// LastResult exposes the most recent optimizer state (objective/constraint
// surrogates and evaluations) for introspection — the paper's Figure 8b.
func (t *TESLA) LastResult() *bo.Result { return t.lastResult }

// Monitor exposes the prediction-error monitor (for diagnostics and tests).
func (t *TESLA) Monitor() *errmon.Monitor { return t.monitor }

// Diagnostics returns the cumulative decision counters.
func (t *TESLA) Diagnostics() Diagnostics { return t.diag }

// Decide implements Policy: mature pending predictions, run the
// model-error-aware BO, and smooth the computed set-point (Figure 7).
func (t *TESLA) Decide(tr *dataset.Trace, step int) float64 {
	t.diag.Decisions++
	L := t.model.Config().L
	if step < L-1 {
		return t.smooth.Push(t.cfg.InitialSetpointC)
	}
	t.mature(tr, step)

	h, err := model.HistoryAt(tr, step, L)
	if err != nil {
		t.diag.HistoryFallbacks++
		return t.smooth.Push(t.cfg.InitialSetpointC)
	}

	objU := t.monitor.Objective()
	conU := t.monitor.Constraint()
	objVar := objU.Variance
	if !objU.Reliable {
		objVar = t.cfg.DefaultObjVar
	}
	conVar := conU.Variance
	if !conU.Reliable {
		conVar = t.cfg.DefaultConVar
	}

	eval := func(x float64) bo.Evaluation {
		p, perr := t.model.Predict(h, x)
		if perr != nil {
			// Should be impossible after ValidateHistory; degrade to an
			// evaluation the optimizer will treat as infeasible.
			return bo.Evaluation{X: x, Obj: 1e6, Con: 1e6, ObjNoiseVar: objVar, ConNoiseVar: conVar}
		}
		obj := p.EnergyNorm + t.cfg.InterruptionWeight*p.InterruptionNorm
		con := p.Constraint + t.cfg.ConstraintMarginC
		// Modeling-error awareness (Figure 7): the bootstrap over the
		// monitor's error window yields the distribution of Ô and Ĉ around
		// the truth; its mean recenters the observation (prediction error is
		// predicted − realized) and its variance rides along as the fixed GP
		// observation noise. Injecting a single random draw here instead
		// would add a random walk on top of the recommendation — the GP
		// already accounts for the spread through the noise variance.
		if objU.Reliable {
			obj -= objU.Bias
		}
		if conU.Reliable {
			con -= conU.Bias
		}
		return bo.Evaluation{X: x, Obj: obj, Con: con, ObjNoiseVar: objVar, ConNoiseVar: conVar}
	}

	boCfg := t.cfg.BO
	boCfg.Seed = t.cfg.Seed ^ (t.step * 0x9e37)
	t.step++
	res, err := bo.Optimize(boCfg, eval)
	if err != nil {
		// Optimizer failure: fall back to the paper's S_min backstop.
		t.diag.OptimizerFallbacks++
		t.lastResult = nil
		return t.smooth.Push(boCfg.Min)
	}
	t.lastResult = res
	t.lastRaw = res.X

	// Log the prediction made for the chosen set-point so its error can be
	// measured once the horizon elapses.
	if p, perr := t.model.Predict(h, res.X); perr == nil {
		maxCold := p.Constraint + t.model.Config().AllowedColdC
		t.pending = append(t.pending, pendingPrediction{
			decidedAt:   step,
			predObj:     p.EnergyNorm + t.cfg.InterruptionWeight*p.InterruptionNorm,
			predMaxCold: maxCold,
		})
	}
	return t.smooth.Push(res.X)
}

// LastComputed returns the optimizer's raw (pre-smoothing) set-point.
func (t *TESLA) LastComputed() float64 { return t.lastRaw }

// mature feeds completed prediction windows into the error monitor.
func (t *TESLA) mature(tr *dataset.Trace, step int) {
	L := t.model.Config().L
	kappa := t.model.Config().KappaC
	kept := t.pending[:0]
	for _, p := range t.pending {
		if p.decidedAt+L > step {
			kept = append(kept, p)
			continue
		}
		// A trace with no ACU series cannot realize the interruption proxy:
		// the average below would divide by zero and feed NaN into the error
		// monitor, silently disabling modeling-error awareness for the rest
		// of the run. Drop the window instead.
		if tr.Na() == 0 {
			t.diag.InvalidMaturations++
			continue
		}
		lo, hi := p.decidedAt+1, p.decidedAt+1+L
		realizedE := tr.EnergyKWh(lo, hi)
		// Realized interruption proxy from executed set-points and inlets.
		var realizedD float64
		for i := lo; i < hi; i++ {
			var avg float64
			for _, s := range tr.ACUTemps {
				avg += s[i]
			}
			avg /= float64(len(tr.ACUTemps))
			if u := tr.Setpoint[i] - avg; u > kappa {
				realizedD += u
			}
		}
		realizedObj := t.model.NormEnergy(realizedE) +
			t.cfg.InterruptionWeight*realizedD/t.model.TempRangeC()
		var realizedMaxCold float64
		for i := lo; i < hi; i++ {
			if tr.MaxCold[i] > realizedMaxCold {
				realizedMaxCold = tr.MaxCold[i]
			}
		}
		// Corrupted telemetry (dropout gaps) can surface as NaN realizations;
		// those windows carry no usable error signal.
		objErr := p.predObj - realizedObj
		conErr := p.predMaxCold - realizedMaxCold
		if math.IsNaN(objErr) || math.IsInf(objErr, 0) || math.IsNaN(conErr) || math.IsInf(conErr, 0) {
			t.diag.InvalidMaturations++
			continue
		}
		t.monitor.RecordObjective(objErr)
		t.monitor.RecordConstraint(conErr)
	}
	t.pending = kept
}
