package control

import (
	"math"
	"testing"
	"testing/quick"

	"tesla/internal/dataset"
	"tesla/internal/rng"
	"tesla/internal/stats"
	"tesla/internal/testbed"
)

func TestFixedPolicy(t *testing.T) {
	p := Fixed{SetpointC: 23}
	if p.Name() != "fixed" {
		t.Fatalf("name %q", p.Name())
	}
	if p.Decide(nil, 0) != 23 || p.Decide(nil, 999) != 23 {
		t.Fatalf("fixed policy moved")
	}
}

func TestSmoothingBufferRunningAverage(t *testing.T) {
	b := NewSmoothingBuffer(3)
	if got := b.Push(3); got != 3 {
		t.Fatalf("first push %g", got)
	}
	if got := b.Push(6); got != 4.5 {
		t.Fatalf("second push %g", got)
	}
	if got := b.Push(9); got != 6 {
		t.Fatalf("third push %g", got)
	}
	// Buffer full: oldest (3) drops out.
	if got := b.Push(12); got != 9 {
		t.Fatalf("fourth push %g, want (6+9+12)/3", got)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Reset did not clear")
	}
	if got := b.Push(5); got != 5 {
		t.Fatalf("post-reset push %g", got)
	}
}

func TestSmoothingBufferMinimumLength(t *testing.T) {
	b := NewSmoothingBuffer(0) // coerced to 1: pass-through
	if got := b.Push(7); got != 7 {
		t.Fatalf("length-1 buffer should pass through, got %g", got)
	}
	if got := b.Push(9); got != 9 {
		t.Fatalf("length-1 buffer should pass through, got %g", got)
	}
}

func TestSmoothingBufferReducesChurn(t *testing.T) {
	// Low-pass property: for any input sequence, the mean absolute
	// step-to-step change of the output is no larger than the input's.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		b := NewSmoothingBuffer(2 + int(seed%6))
		var prevIn, prevOut float64
		var churnIn, churnOut float64
		for i := 0; i < 200; i++ {
			v := 20 + 15*r.Float64()
			out := b.Push(v)
			if i > 0 {
				churnIn += math.Abs(v - prevIn)
				churnOut += math.Abs(out - prevOut)
			}
			prevIn, prevOut = v, out
		}
		return churnOut <= churnIn+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothingBufferBoundedProperty(t *testing.T) {
	// Property: the output always lies within [min, max] of the inputs so
	// far (it is a convex combination).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		b := NewSmoothingBuffer(1 + int(seed%8))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50; i++ {
			v := 20 + 15*r.Float64()
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			out := b.Push(v)
			if out < lo-1e-9 || out > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// flatTrace builds a minimal trace for policy-level tests.
func flatTrace(n int, sp, inlet, cold, power float64) *dataset.Trace {
	tr := dataset.NewTrace(60, 2, 3)
	for i := 0; i < n; i++ {
		tr.Append(testbed.Sample{
			TimeS: float64(i) * 60, SetpointC: sp, AvgServerKW: power,
			ACUPowerKW: 1.5, ACUTemps: []float64{inlet, inlet},
			DCTemps: []float64{cold, cold + 0.2, cold + 0.4}, MaxColdAisle: cold + 0.4,
		})
	}
	return tr
}

func TestTSRLTrainingValidation(t *testing.T) {
	tr := flatTrace(50, 23, 23, 19, 0.2)
	good := DefaultTSRLConfig(20, 35)
	if _, err := TrainTSRL(tr, good); err != nil {
		t.Fatalf("valid training failed: %v", err)
	}
	bad := good
	bad.SpStep = 0
	if _, err := TrainTSRL(tr, bad); err == nil {
		t.Fatalf("zero action step accepted")
	}
	bad = good
	bad.Gamma = 1
	if _, err := TrainTSRL(tr, bad); err == nil {
		t.Fatalf("gamma=1 accepted")
	}
	if _, err := TrainTSRL(flatTrace(5, 23, 23, 19, 0.2), good); err == nil {
		t.Fatalf("tiny trace accepted")
	}
}

func TestTSRLPrefersCheaperAction(t *testing.T) {
	// Build a trace where, from the same state bin, raising the set-point
	// leads to much lower ACU power than lowering it: Q must prefer up.
	tr := dataset.NewTrace(60, 2, 3)
	r := rng.New(5)
	sp := 24.0
	for i := 0; i < 1200; i++ {
		// Alternate 24 ↔ 25 so both actions are observed from similar bins.
		if i%4 == 0 {
			if r.Float64() < 0.5 {
				sp = 24
			} else {
				sp = 25
			}
		}
		power := 2.0
		if sp > 24.5 {
			power = 1.0
		}
		tr.Append(testbed.Sample{
			TimeS: float64(i) * 60, SetpointC: sp, AvgServerKW: 0.2,
			ACUPowerKW: power, ACUTemps: []float64{24, 24},
			DCTemps: []float64{19, 19.2, 19.4}, MaxColdAisle: 19.4,
		})
	}
	cfg := DefaultTSRLConfig(20, 35)
	policy, err := TrainTSRL(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := policy.Decide(tr, tr.Len()-1)
	if got < 24.4 {
		t.Fatalf("TSRL should prefer the cheaper higher set-point, chose %g", got)
	}
	if policy.NumStates() == 0 {
		t.Fatalf("no states learned")
	}
}

func TestTSRLMoveConstraint(t *testing.T) {
	tr := flatTrace(100, 23, 23, 19, 0.2)
	cfg := DefaultTSRLConfig(20, 35)
	cfg.MaxMoveC = 1.0
	policy, err := TrainTSRL(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := policy.Decide(tr, tr.Len()-1)
	if math.Abs(got-23) > 1.0+1e-9 {
		t.Fatalf("move constraint violated: from 23 to %g", got)
	}
}

func TestTSRLRetreatsWhenFarOutOfDistribution(t *testing.T) {
	tr := flatTrace(100, 23, 23, 19, 0.2)
	cfg := DefaultTSRLConfig(20, 35)
	policy, err := TrainTSRL(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Overheated, never-seen state at a high current set-point: the policy
	// must step back toward its default rather than stay put.
	hot := flatTrace(5, 33, 33, 31, 0.2)
	got := policy.Decide(hot, hot.Len()-1)
	if got >= 33 {
		t.Fatalf("policy should retreat from an unseen overheated state, chose %g", got)
	}
	if got < 33-cfg.MaxMoveC-1e-9 {
		t.Fatalf("retreat exceeded the move constraint: %g", got)
	}
	// Out-of-range step index falls back to the initial set-point.
	if policy.Decide(hot, 99) != cfg.InitialSetpointC {
		t.Fatalf("out-of-range step should return the initial set-point")
	}
}

func TestTSRLExplain(t *testing.T) {
	tr := flatTrace(100, 23, 23, 19, 0.2)
	policy, err := TrainTSRL(tr, DefaultTSRLConfig(20, 35))
	if err != nil {
		t.Fatal(err)
	}
	if policy.Explain(tr, tr.Len()-1) == "" {
		t.Fatalf("Explain returned nothing")
	}
	hot := flatTrace(5, 33, 40, 39, 0.2)
	if s := policy.Explain(hot, 4); s == "" {
		t.Fatalf("Explain for unseen state returned nothing")
	}
}

func TestStatsClampHelper(t *testing.T) {
	// Regression guard for the shared clamp helper used by Lazic.
	if clampF(36, 20, 35) != 35 || clampF(10, 20, 35) != 20 || clampF(25, 20, 35) != 25 {
		t.Fatalf("clampF wrong")
	}
	_ = stats.Clamp // keep the stats import alive for the helpers above
}
