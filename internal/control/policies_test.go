package control

import (
	"math"
	"testing"

	"tesla/internal/baselines"
	"tesla/internal/dataset"
	"tesla/internal/model"
	"tesla/internal/rng"
	"tesla/internal/stats"
	"tesla/internal/testbed"
)

// learnableTrace mirrors the synthetic dynamics of the model tests: the
// inlet relaxes toward the set-point, DC sensors follow the inlet, ACU
// power falls with the set-point/inlet residual.
func learnableTrace(n int, seed uint64) *dataset.Trace {
	r := rng.New(seed)
	tr := dataset.NewTrace(60, 2, 3)
	a := []float64{24, 24}
	sp := 24.0
	p := 0.15
	for i := 0; i < n; i++ {
		if i%6 == 0 {
			sp = 21 + 8*r.Float64()
		}
		p = stats.Clamp(p+0.004*r.Norm(), 0.1, 0.3)
		for j := range a {
			a[j] = 0.85*a[j] + 0.15*sp + 0.5*(p-0.2) + 0.02*r.Norm()
		}
		dc := make([]float64, 3)
		for k := range dc {
			dc[k] = a[0] - 4 + 0.3*float64(k) + p + 0.02*r.Norm()
		}
		power := math.Max(0.1, 1.8-0.45*(sp-a[0]))
		tr.Append(testbed.Sample{
			TimeS: float64(i) * 60, SetpointC: sp, AvgServerKW: p,
			ACUPowerKW: power, ACUTemps: append([]float64(nil), a...),
			DCTemps: dc, MaxColdAisle: dc[2],
		})
	}
	return tr
}

func smallModel(t *testing.T, seed uint64) *model.Model {
	t.Helper()
	tr := learnableTrace(700, seed)
	train, _ := tr.Split(0.8)
	cfg := model.DefaultConfig(3) // all three DC sensors are "cold aisle"
	cfg.L = 6
	m, err := model.Train(train, cfg)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return m
}

func fastTESLAConfig() TESLAConfig {
	cfg := DefaultTESLAConfig(20, 35)
	cfg.BO.InitPoints = 5
	cfg.BO.Iterations = 3
	cfg.BO.QMCSamples = 16
	cfg.BO.Candidates = 31
	return cfg
}

func TestNewTESLAValidation(t *testing.T) {
	m := smallModel(t, 1)
	if _, err := NewTESLA(nil, fastTESLAConfig()); err == nil {
		t.Fatalf("nil model accepted")
	}
	bad := fastTESLAConfig()
	bad.SmoothN = 0
	if _, err := NewTESLA(m, bad); err == nil {
		t.Fatalf("zero smoothing accepted")
	}
	bad = fastTESLAConfig()
	bad.InterruptionWeight = -1
	if _, err := NewTESLA(m, bad); err == nil {
		t.Fatalf("negative weight accepted")
	}
	bad = fastTESLAConfig()
	bad.BO.InitPoints = 0
	if _, err := NewTESLA(m, bad); err == nil {
		t.Fatalf("invalid BO config accepted")
	}
}

func TestTESLADecideStaysInRangeAndMatures(t *testing.T) {
	m := smallModel(t, 2)
	ctrl, err := NewTESLA(m, fastTESLAConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Name() != "tesla" {
		t.Fatalf("name %q", ctrl.Name())
	}
	tr := learnableTrace(40, 3)
	// Early steps (not enough history) must return the smoothed initial
	// set-point, not crash.
	if got := ctrl.Decide(tr, 2); math.Abs(got-23) > 1e-9 {
		t.Fatalf("pre-history decision %g, want 23", got)
	}
	for step := 6; step < 39; step++ {
		got := ctrl.Decide(tr, step)
		if got < 20 || got > 35 {
			t.Fatalf("decision %g outside the ACU range", got)
		}
	}
	if ctrl.LastResult() == nil {
		t.Fatalf("optimizer state not exposed")
	}
	// With >L decided steps on a 40-step trace, some predictions matured.
	if ctrl.Monitor().ObjectiveCount() == 0 || ctrl.Monitor().ConstraintCount() == 0 {
		t.Fatalf("error monitor never fed: %d/%d",
			ctrl.Monitor().ObjectiveCount(), ctrl.Monitor().ConstraintCount())
	}
	if ctrl.LastComputed() < 20 || ctrl.LastComputed() > 35 {
		t.Fatalf("raw computed set-point %g out of range", ctrl.LastComputed())
	}
}

func TestTESLAInterruptionWeightZeroAllowsHigherSetpoints(t *testing.T) {
	// Ablation mechanics: without the D̂ penalty the optimizer should pick
	// set-points at least as high (it only removes a monotone penalty on
	// high candidates).
	m := smallModel(t, 4)
	tr := learnableTrace(60, 5)

	withD, err := NewTESLA(m, fastTESLAConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfgNoD := fastTESLAConfig()
	cfgNoD.InterruptionWeight = 0
	withoutD, err := NewTESLA(m, cfgNoD)
	if err != nil {
		t.Fatal(err)
	}
	var sumD, sumNoD float64
	n := 0
	for step := 6; step < 59; step++ {
		sumD += withD.Decide(tr, step)
		sumNoD += withoutD.Decide(tr, step)
		n++
	}
	if sumNoD/float64(n) < sumD/float64(n)-0.5 {
		t.Fatalf("removing the interruption penalty should not lower set-points: %g vs %g",
			sumNoD/float64(n), sumD/float64(n))
	}
}

func TestLazicValidation(t *testing.T) {
	tr := learnableTrace(500, 6)
	train, _ := tr.Split(0.8)
	rec, err := baselines.TrainLazic(train, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLazic(nil, DefaultLazicConfig(20, 35, []int{0})); err == nil {
		t.Fatalf("nil model accepted")
	}
	bad := DefaultLazicConfig(20, 35, []int{0})
	bad.GradIters = 0
	if _, err := NewLazic(rec, bad); err == nil {
		t.Fatalf("zero iterations accepted")
	}
	bad = DefaultLazicConfig(20, 35, nil)
	if _, err := NewLazic(rec, bad); err == nil {
		t.Fatalf("empty cold set accepted")
	}
}

func TestLazicPicksBoundaryAndBacksOff(t *testing.T) {
	tr := learnableTrace(700, 7)
	train, test := tr.Split(0.8)
	rec, err := baselines.TrainLazic(train, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultLazicConfig(20, 35, []int{0, 1, 2})
	cfg.L = 6
	// In the synthetic dynamics cold ≈ inlet − 4 + …, so limit 22 puts the
	// boundary around set-point 25–26.
	lz, err := NewLazic(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lz.Name() != "lazic" {
		t.Fatalf("name %q", lz.Name())
	}
	got := lz.Decide(test, test.Len()-1)
	if got < 23 || got > 28 {
		t.Fatalf("Lazic decision %g outside the plausible boundary band [23,28]", got)
	}
	// With an impossible limit the S_min backup must fire.
	cfgHard := cfg
	cfgHard.ColdLimitC = 5
	lzHard, err := NewLazic(rec, cfgHard)
	if err != nil {
		t.Fatal(err)
	}
	if got := lzHard.Decide(test, test.Len()-1); got != 20 {
		t.Fatalf("infeasible limit should trigger S_min, got %g", got)
	}
	// Too little history: falls back to the initial set-point.
	short := learnableTrace(2, 8)
	if got := lz.Decide(short, 0); got != cfg.InitialSetpointC {
		t.Fatalf("pre-history Lazic decision %g", got)
	}
}
