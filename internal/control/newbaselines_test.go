package control

import (
	"math"
	"testing"

	"tesla/internal/baselines"
	"tesla/internal/dataset"
	"tesla/internal/testbed"
)

func TestMPCValidation(t *testing.T) {
	tr := learnableTrace(500, 11)
	train, _ := tr.Split(0.8)
	rec, err := baselines.TrainLazic(train, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMPC(nil, DefaultMPCConfig(20, 35, []int{0})); err == nil {
		t.Fatalf("nil model accepted")
	}
	bad := DefaultMPCConfig(20, 35, []int{0})
	bad.Passes = 0
	if _, err := NewMPC(rec, bad); err == nil {
		t.Fatalf("zero passes accepted")
	}
	bad = DefaultMPCConfig(20, 35, nil)
	if _, err := NewMPC(rec, bad); err == nil {
		t.Fatalf("empty cold set accepted")
	}
	bad = DefaultMPCConfig(35, 20, []int{0})
	if _, err := NewMPC(rec, bad); err == nil {
		t.Fatalf("empty set-point range accepted")
	}
}

func TestMPCTracksBoundaryWithMargin(t *testing.T) {
	tr := learnableTrace(700, 12)
	train, test := tr.Split(0.8)
	rec, err := baselines.TrainLazic(train, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMPCConfig(20, 35, []int{0, 1, 2})
	cfg.L = 6
	m, err := NewMPC(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "mpc" {
		t.Fatalf("name %q", m.Name())
	}
	// Decide from a cool plant state (a hot state legitimately triggers the
	// S_min backstop, because not even maximum cooling clears the predicted
	// transient). In the synthetic dynamics cold ≈ inlet − 4 + …, so limit
	// 22 puts the feasibility boundary around set-point 25–26; the margin
	// keeps MPC at or below it.
	cool := -1
	for s := rec.W; s < test.Len(); s++ {
		if test.MaxCold[s] < 20.5 {
			cool = s
		}
	}
	if cool < 0 {
		t.Fatalf("no cool step in the synthetic test trace")
	}
	got := m.Decide(test, cool)
	if got < 22 || got > 27.5 {
		t.Fatalf("MPC decision %g outside the plausible band [22,27.5]", got)
	}

	// A larger safety margin must not pick a higher (riskier) set-point.
	tight := cfg
	tight.MarginC = 1.2
	mt, err := NewMPC(rec, tight)
	if err != nil {
		t.Fatal(err)
	}
	if tighter := mt.Decide(test, cool); tighter > got+1e-9 {
		t.Fatalf("margin 1.2 picked %g, above margin %g pick %g", tighter, cfg.MarginC, got)
	}

	// Infeasible limit: the S_min backstop must fire.
	hard := cfg
	hard.ColdLimitC = 5
	mh, err := NewMPC(rec, hard)
	if err != nil {
		t.Fatal(err)
	}
	if got := mh.Decide(test, cool); got != 20 {
		t.Fatalf("infeasible limit should trigger S_min, got %g", got)
	}

	// Too little history: the initial set-point.
	short := learnableTrace(2, 13)
	if got := m.Decide(short, 0); got != cfg.InitialSetpointC {
		t.Fatalf("pre-history MPC decision %g", got)
	}
}

func TestMPCDurableRoundTrip(t *testing.T) {
	tr := learnableTrace(700, 14)
	train, test := tr.Split(0.8)
	rec, err := baselines.TrainLazic(train, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMPCConfig(20, 35, []int{0, 1, 2})
	cfg.L = 6
	ref, err := NewMPC(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewMPC(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 10; step < 20; step++ {
		ref.Decide(test, step)
		live.Decide(test, step)
	}
	blob, err := live.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewMPC(rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(blob); err != nil {
		t.Fatal(err)
	}
	for step := 20; step < 30; step++ {
		want := ref.Decide(test, step)
		if got := restored.Decide(test, step); got != want {
			t.Fatalf("step %d: restored MPC decided %g, uninterrupted %g", step, got, want)
		}
	}
	if err := restored.Restore([]byte("garbage")); err == nil {
		t.Fatalf("garbage snapshot accepted")
	}
}

func TestModelFreeValidation(t *testing.T) {
	if _, err := NewModelFree(DefaultModelFreeConfig(35, 20, []int{0})); err == nil {
		t.Fatalf("empty set-point range accepted")
	}
	bad := DefaultModelFreeConfig(20, 35, []int{0})
	bad.GainPerC = 0
	if _, err := NewModelFree(bad); err == nil {
		t.Fatalf("zero gain accepted")
	}
	bad = DefaultModelFreeConfig(20, 35, []int{0})
	bad.Alpha = 1.5
	if _, err := NewModelFree(bad); err == nil {
		t.Fatalf("alpha > 1 accepted")
	}
	if _, err := NewModelFree(DefaultModelFreeConfig(20, 35, nil)); err == nil {
		t.Fatalf("empty cold set accepted")
	}
}

// modelFreeLoop closes the intelligent-P controller over a toy first-order
// plant (cold-aisle temperature relaxes toward set-point − offset + load)
// and returns the trace it produced.
func modelFreeLoop(mf *ModelFree, steps int, load func(i int) float64) *dataset.Trace {
	tr := dataset.NewTrace(60, 1, 1)
	y, sp := 21.0, 23.0
	for i := 0; i < steps; i++ {
		y = 0.7*y + 0.3*(sp-4+load(i))
		tr.Append(testbed.Sample{
			TimeS: float64(i) * 60, SetpointC: sp,
			ACUTemps: []float64{sp}, DCTemps: []float64{y}, MaxColdAisle: y,
		})
		sp = mf.Decide(tr, tr.Len()-1)
	}
	return tr
}

func TestModelFreeRegulatesTowardReference(t *testing.T) {
	cfg := DefaultModelFreeConfig(20, 35, []int{0})
	mf, err := NewModelFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Name() != "modelfree" {
		t.Fatalf("name %q", mf.Name())
	}
	tr := modelFreeLoop(mf, 80, func(int) float64 { return 0.5 })
	ref := cfg.ColdLimitC - cfg.MarginC
	tail := tr.MaxCold[tr.Len()-10:]
	for i, y := range tail {
		if math.Abs(y-ref) > 0.6 {
			t.Fatalf("settled cold-aisle %g at tail step %d, want within 0.6 of reference %g", y, i, ref)
		}
	}
	// The settled max stays under the hard limit — the margin is the hedge.
	for _, y := range tail {
		if y > cfg.ColdLimitC {
			t.Fatalf("settled cold-aisle %g above the %g limit", y, cfg.ColdLimitC)
		}
	}
}

func TestModelFreeRejectsLoadDisturbance(t *testing.T) {
	cfg := DefaultModelFreeConfig(20, 35, []int{0})
	mf, err := NewModelFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A load step of +1.5 °C equivalent at step 60: F̂ must absorb it and
	// the loop re-settle at the reference.
	tr := modelFreeLoop(mf, 160, func(i int) float64 {
		if i >= 60 {
			return 2.0
		}
		return 0.5
	})
	ref := cfg.ColdLimitC - cfg.MarginC
	for i := tr.Len() - 10; i < tr.Len(); i++ {
		if math.Abs(tr.MaxCold[i]-ref) > 0.6 {
			t.Fatalf("post-disturbance cold-aisle %g at step %d, want near %g", tr.MaxCold[i], i, ref)
		}
	}
	// Slew limit: consecutive executed set-points never jump more than
	// MaxStepC.
	for i := 1; i < tr.Len(); i++ {
		if d := math.Abs(tr.Setpoint[i] - tr.Setpoint[i-1]); d > cfg.MaxStepC+1e-9 {
			t.Fatalf("set-point slew %g at step %d exceeds %g", d, i, cfg.MaxStepC)
		}
	}
}

func TestModelFreeDurableRoundTrip(t *testing.T) {
	cfg := DefaultModelFreeConfig(20, 35, []int{0})
	ref, _ := NewModelFree(cfg)
	live, _ := NewModelFree(cfg)
	tr := modelFreeLoop(ref, 40, func(int) float64 { return 0.5 })
	for step := 0; step < 30; step++ {
		live.Decide(tr, step)
	}
	refDup, _ := NewModelFree(cfg)
	for step := 0; step < 30; step++ {
		refDup.Decide(tr, step)
	}
	blob, err := live.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, _ := NewModelFree(cfg)
	if err := restored.Restore(blob); err != nil {
		t.Fatal(err)
	}
	for step := 30; step < 40; step++ {
		want := refDup.Decide(tr, step)
		if got := restored.Decide(tr, step); got != want {
			t.Fatalf("step %d: restored model-free decided %g, uninterrupted %g", step, got, want)
		}
	}
	if err := restored.Restore([]byte{0x01}); err == nil {
		t.Fatalf("garbage snapshot accepted")
	}
}
