package control

import (
	"testing"
)

// TestSmoothingStateContinuation: a buffer restored mid-wrap must return the
// same running averages as one that never stopped.
func TestSmoothingStateContinuation(t *testing.T) {
	ref := NewSmoothingBuffer(5)
	for i := 0; i < 7; i++ { // past capacity, so the ring has wrapped
		ref.Push(20 + float64(i)*0.25)
	}
	st := ref.State()

	clone := NewSmoothingBuffer(5)
	if err := clone.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if clone.Len() != ref.Len() {
		t.Fatalf("restored length %d, want %d", clone.Len(), ref.Len())
	}
	for i := 0; i < 12; i++ {
		v := 22 + float64(i%3)*0.5
		if a, b := ref.Push(v), clone.Push(v); a != b {
			t.Fatalf("push %d diverged: %g != %g", i, a, b)
		}
	}
}

func TestSmoothingStateRejectsMismatch(t *testing.T) {
	b := NewSmoothingBuffer(5)
	if err := b.RestoreState(SmoothingState{Buf: make([]float64, 3)}); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
	if err := b.RestoreState(SmoothingState{Buf: make([]float64, 5), Next: 9}); err == nil {
		t.Fatal("out-of-range cursor accepted")
	}
	if err := b.RestoreState(SmoothingState{Buf: make([]float64, 5), N: 6}); err == nil {
		t.Fatal("overfull count accepted")
	}
}
