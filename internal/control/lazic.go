package control

import (
	"fmt"

	"tesla/internal/baselines"
	"tesla/internal/dataset"
)

// LazicConfig parameterizes the Lazic et al. [20] MPC baseline.
type LazicConfig struct {
	// L is the look-ahead horizon (matched to TESLA's for fairness).
	L int
	// SpMin and SpMax bound the search.
	SpMin, SpMax float64
	// ColdLimitC is the cold-aisle limit the predicted maximum must respect.
	ColdLimitC float64
	// ColdIdx are the cold-aisle sensor indices within the DC series.
	ColdIdx []int
	// GradIters and GradStep drive the gradient-descent set-point search the
	// paper attributes to Lazic et al.
	GradIters int
	GradStep  float64
	// InitialSetpointC is used before the model has enough history.
	InitialSetpointC float64
}

// DefaultLazicConfig mirrors the paper's description: highest set-point such
// that the predicted max cold-aisle temperature stays below 22 °C, S_min
// backup when infeasible.
func DefaultLazicConfig(spMin, spMax float64, coldIdx []int) LazicConfig {
	return LazicConfig{
		L:     20,
		SpMin: spMin, SpMax: spMax,
		ColdLimitC:       22,
		ColdIdx:          coldIdx,
		GradIters:        25,
		GradStep:         0.8,
		InitialSetpointC: 23,
	}
}

// Lazic is the MPC controller: an autoregressive OLS plant model rolled out
// recursively, and a gradient-descent search for the highest feasible
// set-point. It has no interruption penalty and no modeling-error margin —
// the two omissions §6.3 blames for its thermal-safety violations.
type Lazic struct {
	cfg   LazicConfig
	model *baselines.Recursive
}

// NewLazic wires a trained recursive model into the controller.
func NewLazic(m *baselines.Recursive, cfg LazicConfig) (*Lazic, error) {
	if m == nil {
		return nil, fmt.Errorf("control: Lazic needs a trained recursive model")
	}
	if cfg.L < 1 || cfg.GradIters < 1 || cfg.GradStep <= 0 {
		return nil, fmt.Errorf("control: invalid Lazic config %+v", cfg)
	}
	if len(cfg.ColdIdx) == 0 {
		return nil, fmt.Errorf("control: Lazic needs cold-aisle sensor indices")
	}
	return &Lazic{cfg: cfg, model: m}, nil
}

// Name implements Policy.
func (lz *Lazic) Name() string { return "lazic" }

// Decide implements Policy.
func (lz *Lazic) Decide(tr *dataset.Trace, step int) float64 {
	if step < lz.model.W-1 {
		return lz.cfg.InitialSetpointC
	}
	in, err := baselines.RolloutInputAt(tr, step, lz.model.W)
	if err != nil {
		return lz.cfg.InitialSetpointC
	}

	// Gradient descent on J(s) = −s + μ·max(0, g(s))², i.e. climb toward the
	// highest set-point while a quadratic penalty enforces the predicted
	// cold-aisle constraint g(s) = maxCold(s) − limit ≤ 0.
	const mu = 4.0
	const h = 0.25 // finite-difference step
	s := clampF(tr.Setpoint[step], lz.cfg.SpMin, lz.cfg.SpMax)
	for it := 0; it < lz.cfg.GradIters; it++ {
		gPlus := lz.penalty(in, s+h, mu)
		gMinus := lz.penalty(in, s-h, mu)
		grad := (gPlus - gMinus) / (2 * h)
		s = clampF(s-lz.cfg.GradStep*grad, lz.cfg.SpMin, lz.cfg.SpMax)
	}
	// The quadratic penalty settles marginally above the limit; project back
	// to the highest feasible set-point with a short backtracking walk.
	for i := 0; i < 40 && s > lz.cfg.SpMin; i++ {
		if lz.maxCold(in, s) <= lz.cfg.ColdLimitC {
			return s
		}
		s = clampF(s-0.25, lz.cfg.SpMin, lz.cfg.SpMax)
	}
	// Paper behaviour: if no feasible set-point is found, fall back to
	// S_min for re-calibration.
	if lz.maxCold(in, s) > lz.cfg.ColdLimitC {
		return lz.cfg.SpMin
	}
	return s
}

func (lz *Lazic) penalty(in *baselines.RolloutInput, s, mu float64) float64 {
	g := lz.maxCold(in, s) - lz.cfg.ColdLimitC
	j := -s
	if g > 0 {
		j += mu * g * g
	}
	return j
}

// maxCold predicts the maximum cold-aisle temperature over the horizon under
// a constant set-point.
func (lz *Lazic) maxCold(in *baselines.RolloutInput, s float64) float64 {
	sps := make([]float64, lz.cfg.L)
	for i := range sps {
		sps[i] = s
	}
	_, dc, err := lz.model.Rollout(in, sps)
	if err != nil {
		return 1e9 // treat a broken rollout as infeasible
	}
	maxCold := -1e30
	for l := 0; l < lz.cfg.L; l++ {
		row := dc.Row(l)
		for _, k := range lz.cfg.ColdIdx {
			if row[k] > maxCold {
				maxCold = row[k]
			}
		}
	}
	return maxCold
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
