package control

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"tesla/internal/bo"
	"tesla/internal/errmon"
)

// teslaStateVersion guards the TESLA snapshot schema (the versioned-gob
// pattern of internal/model/serialize.go).
const teslaStateVersion = 1

// pendingState mirrors pendingPrediction with exported fields for gob.
type pendingState struct {
	DecidedAt   int
	PredObj     float64
	PredMaxCold float64
}

// teslaState is the controller's full mutable state. Configuration (the
// TESLAConfig and the trained model) is NOT serialized: a restored controller
// is built by NewTESLA with the same inputs, then handed this blob.
type teslaState struct {
	Version    int
	Monitor    errmon.State
	Smooth     SmoothingState
	Pending    []pendingState
	LastRaw    float64
	Step       uint64
	Diag       Diagnostics
	HaveResult bool
	Result     bo.ResultState
}

// Snapshot implements Durable: everything Decide mutates, gob-encoded. The
// error-monitor RNG rides along so the bootstrap draw stream continues
// bit-identically, and the step counter so the per-decision BO seed
// derivation does too.
func (t *TESLA) Snapshot() ([]byte, error) {
	st := teslaState{
		Version: teslaStateVersion,
		Monitor: t.monitor.State(),
		Smooth:  t.smooth.State(),
		LastRaw: t.lastRaw,
		Step:    t.step,
		Diag:    t.diag,
	}
	for _, p := range t.pending {
		st.Pending = append(st.Pending, pendingState{DecidedAt: p.decidedAt, PredObj: p.predObj, PredMaxCold: p.predMaxCold})
	}
	if t.lastResult != nil {
		st.HaveResult = true
		st.Result = t.lastResult.State()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("control: encoding TESLA snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements Durable.
func (t *TESLA) Restore(blob []byte) error {
	var st teslaState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return fmt.Errorf("control: decoding TESLA snapshot: %w", err)
	}
	if st.Version != teslaStateVersion {
		return fmt.Errorf("control: TESLA snapshot version %d, this build reads %d", st.Version, teslaStateVersion)
	}
	if err := t.monitor.Restore(st.Monitor); err != nil {
		return err
	}
	if err := t.smooth.RestoreState(st.Smooth); err != nil {
		return err
	}
	t.pending = t.pending[:0]
	for _, p := range st.Pending {
		t.pending = append(t.pending, pendingPrediction{decidedAt: p.DecidedAt, predObj: p.PredObj, predMaxCold: p.PredMaxCold})
	}
	t.lastRaw = st.LastRaw
	t.step = st.Step
	t.diag = st.Diag
	t.lastResult = nil
	if st.HaveResult {
		res, err := bo.ResultFromState(st.Result)
		if err != nil {
			return err
		}
		t.lastResult = res
	}
	return nil
}
