package control

import (
	"math"
	"testing"

	"tesla/internal/dataset"
	"tesla/internal/testbed"
)

// emptyACUTrace builds a trace with DC series but no ACU inlet series — what
// a mis-provisioned collector (or a total ACU sensor outage) delivers.
func emptyACUTrace(n int) *dataset.Trace {
	tr := dataset.NewTrace(60, 0, 3)
	for i := 0; i < n; i++ {
		tr.Append(testbed.Sample{
			TimeS: float64(i) * 60, SetpointC: 24, AvgServerKW: 0.2,
			ACUPowerKW: 1.2, ACUTemps: nil,
			DCTemps: []float64{20, 20.3, 20.6}, MaxColdAisle: 20.6,
		})
	}
	return tr
}

// TestMatureGuardsEmptyACUSeries is the regression test for the divide-by-
// zero in mature: a trace with no ACU series used to mature windows into
// NaN errors, poisoning the error monitor for the rest of the run.
func TestMatureGuardsEmptyACUSeries(t *testing.T) {
	m := smallModel(t, 11)
	ctrl, err := NewTESLA(m, fastTESLAConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Populate pending predictions on a healthy trace.
	tr := learnableTrace(40, 12)
	for step := 6; step < 20; step++ {
		ctrl.Decide(tr, step)
	}
	if len(ctrl.pending) == 0 {
		t.Fatal("no pending predictions to mature")
	}

	objBefore := ctrl.Monitor().ObjectiveCount()
	conBefore := ctrl.Monitor().ConstraintCount()

	// Mature every pending window against a trace with no ACU series.
	bad := emptyACUTrace(60)
	ctrl.mature(bad, 59)

	if len(ctrl.pending) != 0 {
		t.Fatalf("%d windows still pending; the guard must drop them", len(ctrl.pending))
	}
	if ctrl.Monitor().ObjectiveCount() != objBefore || ctrl.Monitor().ConstraintCount() != conBefore {
		t.Fatalf("invalid windows reached the monitor: obj %d→%d con %d→%d",
			objBefore, ctrl.Monitor().ObjectiveCount(), conBefore, ctrl.Monitor().ConstraintCount())
	}
	if ctrl.Diagnostics().InvalidMaturations == 0 {
		t.Fatal("dropped windows not counted in diagnostics")
	}
	// The monitor must still report finite statistics.
	if u := ctrl.Monitor().Objective(); math.IsNaN(u.Bias) || math.IsNaN(u.Variance) {
		t.Fatalf("monitor poisoned: bias=%g var=%g", u.Bias, u.Variance)
	}
}

func TestDiagnosticsCountFallbacks(t *testing.T) {
	m := smallModel(t, 13)
	ctrl, err := NewTESLA(m, fastTESLAConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := learnableTrace(20, 14)

	ctrl.Decide(tr, 2) // warmup: counted as a decision, not a fallback
	d := ctrl.Diagnostics()
	if d.Decisions != 1 || d.HistoryFallbacks != 0 {
		t.Fatalf("warmup counters wrong: %+v", d)
	}

	// A step beyond the trace makes HistoryAt fail → initial-set-point
	// fallback, counted.
	got := ctrl.Decide(tr, tr.Len()+5)
	if d = ctrl.Diagnostics(); d.Decisions != 2 || d.HistoryFallbacks != 1 {
		t.Fatalf("history-fallback counters wrong: %+v", d)
	}
	if math.IsNaN(got) {
		t.Fatalf("fallback decision is NaN")
	}

	// A normal decision leaves the fallback counters alone.
	ctrl.Decide(tr, 10)
	if d = ctrl.Diagnostics(); d.Decisions != 3 || d.HistoryFallbacks != 1 || d.OptimizerFallbacks != 0 {
		t.Fatalf("normal-decision counters wrong: %+v", d)
	}
}
