// Package control implements the cooling-control policies evaluated in the
// paper (§5.3): the fixed-set-point industry baseline, the full TESLA
// controller (DC time-series model + error monitor + constrained-NEI
// Bayesian optimizer + smoothing buffer, §3.3–3.4), the Lazic et al. MPC
// baseline (recursive AR model + gradient-descent set-point search), and the
// TSRL offline-RL baseline (fitted Q-iteration on logged traces).
//
// Every policy sees the same interface: the telemetry trace recorded so far
// and the index of the current step, and returns the set-point to execute —
// exactly the information the real deployments draw from InfluxDB.
package control

import (
	"fmt"

	"tesla/internal/dataset"
)

// Policy decides the ACU set-point at each control step.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Decide returns the set-point to execute given telemetry up to and
	// including step t.
	Decide(tr *dataset.Trace, t int) float64
}

// Durable is the optional interface a policy implements to participate in
// checkpoint/restore: Snapshot returns an opaque self-versioned blob of the
// policy's mutable state, Restore resets a freshly constructed policy (same
// configuration) to it. A policy restored from a snapshot must continue
// bit-identically to one that never stopped.
type Durable interface {
	Snapshot() ([]byte, error)
	Restore([]byte) error
}

// Fixed is the industry-practice baseline: a constant set-point (23 °C in
// the paper's evaluation).
type Fixed struct {
	SetpointC float64
}

// Name implements Policy.
func (f Fixed) Name() string { return "fixed" }

// Decide implements Policy.
func (f Fixed) Decide(*dataset.Trace, int) float64 { return f.SetpointC }

// SmoothingBuffer is TESLA's set-point post-processor (§3.4): a length-N
// running average acting as a low-pass filter over the optimizer's outputs,
// suppressing the power peaks caused by executing set-points before the ACU
// has settled (Figure 4).
type SmoothingBuffer struct {
	buf  []float64
	next int
	n    int
}

// NewSmoothingBuffer returns a buffer of capacity n (N=5 in Table 2).
func NewSmoothingBuffer(n int) *SmoothingBuffer {
	if n < 1 {
		n = 1
	}
	return &SmoothingBuffer{buf: make([]float64, n)}
}

// Push inserts a computed set-point and returns the running average that
// should actually be executed.
func (s *SmoothingBuffer) Push(v float64) float64 {
	s.buf[s.next] = v
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	var sum float64
	for i := 0; i < s.n; i++ {
		sum += s.buf[(s.next-1-i+2*len(s.buf))%len(s.buf)]
	}
	return sum / float64(s.n)
}

// Len returns the number of values currently buffered.
func (s *SmoothingBuffer) Len() int { return s.n }

// SmoothingState is a SmoothingBuffer's mutable state for checkpointing.
type SmoothingState struct {
	Buf  []float64
	Next int
	N    int
}

// State captures the buffer contents and cursor.
func (s *SmoothingBuffer) State() SmoothingState {
	return SmoothingState{Buf: append([]float64(nil), s.buf...), Next: s.next, N: s.n}
}

// RestoreState resets the buffer to a captured state. The capacity must match
// the buffer's construction — it is configuration, not state.
func (s *SmoothingBuffer) RestoreState(st SmoothingState) error {
	if len(st.Buf) != len(s.buf) {
		return fmt.Errorf("control: smoothing state holds %d slots, buffer has %d", len(st.Buf), len(s.buf))
	}
	if st.Next < 0 || st.Next >= len(s.buf) || st.N < 0 || st.N > len(s.buf) {
		return fmt.Errorf("control: smoothing cursor %d/%d outside capacity %d", st.Next, st.N, len(s.buf))
	}
	copy(s.buf, st.Buf)
	s.next, s.n = st.Next, st.N
	return nil
}

// Reset empties the buffer.
func (s *SmoothingBuffer) Reset() {
	s.n = 0
	s.next = 0
}
