package control

import (
	"fmt"
	"math"

	"tesla/internal/dataset"
)

// TSRLConfig parameterizes the offline-RL baseline (Cheng et al. [8] as
// evaluated in §5.3): batch Q-learning over discretized DC state with
// cooling-energy saving as reward and thermal-safety violation as cost.
type TSRLConfig struct {
	// Action grid over the set-point range.
	SpMin, SpMax, SpStep float64
	// State discretization: bin widths.
	ColdBinC  float64 // max cold-aisle temperature bin (°C)
	InletBinC float64 // ACU inlet temperature bin (°C)
	PowerBin  float64 // average server power bin (kW)
	// Reward shaping: energy term is −power·Δt (kWh); ViolationCost is
	// subtracted whenever the next step breaches the limit.
	ColdLimitC    float64
	ViolationCost float64
	// Q-learning schedule.
	Gamma  float64
	Alpha  float64
	Sweeps int // passes over the logged transitions
	// MaxMoveC constrains the per-step set-point change to the data support
	// (TSRL is a conservative offline-RL method; unconstrained action
	// extrapolation would leave the logged distribution entirely).
	MaxMoveC float64
	// InitialSetpointC is used for unseen states.
	InitialSetpointC float64
}

// DefaultTSRLConfig mirrors the evaluation setup.
func DefaultTSRLConfig(spMin, spMax float64) TSRLConfig {
	return TSRLConfig{
		SpMin: spMin, SpMax: spMax, SpStep: 0.5,
		ColdBinC:         0.5,
		InletBinC:        1.0,
		PowerBin:         0.03,
		ColdLimitC:       22,
		ViolationCost:    0.30,
		Gamma:            0.95,
		Alpha:            0.2,
		Sweeps:           50,
		MaxMoveC:         1.0,
		InitialSetpointC: 23,
	}
}

// TSRL is the trained offline-RL policy: it maps the discretized current
// state directly to a set-point without modeling temperature or energy —
// and, like Lazic, carries no interruption awareness, which is why it rides
// the constraint boundary (§6.3).
type TSRL struct {
	cfg     TSRLConfig
	actions []float64
	q       map[stateKey][]float64
	visits  map[stateKey][]int
}

type stateKey struct {
	cold, inlet, power int
}

// TrainTSRL runs batch Q-learning on the logged trace.
func TrainTSRL(tr *dataset.Trace, cfg TSRLConfig) (*TSRL, error) {
	if tr.Len() < 10 {
		return nil, fmt.Errorf("control: TSRL needs a longer trace (%d samples)", tr.Len())
	}
	if cfg.SpStep <= 0 || cfg.SpMax <= cfg.SpMin {
		return nil, fmt.Errorf("control: invalid TSRL action grid")
	}
	if cfg.Gamma < 0 || cfg.Gamma >= 1 || cfg.Alpha <= 0 || cfg.Alpha > 1 || cfg.Sweeps < 1 {
		return nil, fmt.Errorf("control: invalid TSRL learning schedule")
	}
	t := &TSRL{
		cfg:    cfg,
		q:      map[stateKey][]float64{},
		visits: map[stateKey][]int{},
	}
	for s := cfg.SpMin; s <= cfg.SpMax+1e-9; s += cfg.SpStep {
		t.actions = append(t.actions, s)
	}

	type transition struct {
		s     stateKey
		a     int
		r     float64
		sNext stateKey
	}
	var txs []transition
	dtH := tr.PeriodS / 3600
	for i := 0; i+1 < tr.Len(); i++ {
		r := -tr.ACUPower[i+1] * dtH
		if tr.MaxCold[i+1] > cfg.ColdLimitC {
			r -= cfg.ViolationCost
		}
		txs = append(txs, transition{
			s:     t.discretize(tr, i),
			a:     t.actionIndex(tr.Setpoint[i+1]),
			r:     r,
			sNext: t.discretize(tr, i+1),
		})
	}

	for sweep := 0; sweep < cfg.Sweeps; sweep++ {
		for _, tx := range txs {
			qs := t.row(tx.s)
			next := t.row(tx.sNext)
			best := math.Inf(-1)
			for a, visited := range t.visits[tx.sNext] {
				if visited > 0 && next[a] > best {
					best = next[a]
				}
			}
			if math.IsInf(best, -1) {
				best = 0
			}
			target := tx.r + cfg.Gamma*best
			qs[tx.a] += cfg.Alpha * (target - qs[tx.a])
			t.visits[tx.s][tx.a]++
		}
	}
	return t, nil
}

// Name implements Policy.
func (t *TSRL) Name() string { return "tsrl" }

// Decide implements Policy: greedy action over visited Q-values, preferring
// the higher set-point on ties (the energy-saving incentive).
func (t *TSRL) Decide(tr *dataset.Trace, step int) float64 {
	if step < 0 || step >= tr.Len() {
		return t.cfg.InitialSetpointC
	}
	s := t.discretize(tr, step)
	cur := tr.Setpoint[step]
	if qs, ok := t.q[s]; ok {
		if a := t.greedy(qs, t.visits[s], cur); a >= 0 {
			return t.actions[a]
		}
	}
	return t.nearestKnown(tr, step)
}

// greedy returns the best visited action index within the move constraint,
// preferring the higher set-point on ties; -1 when none qualifies.
func (t *TSRL) greedy(qs []float64, visits []int, cur float64) int {
	best, bestA := math.Inf(-1), -1
	for a := range qs {
		if visits[a] == 0 {
			continue
		}
		if t.cfg.MaxMoveC > 0 && math.Abs(t.actions[a]-cur) > t.cfg.MaxMoveC+1e-9 {
			continue
		}
		if qs[a] > best || (qs[a] == best && bestA >= 0 && t.actions[a] > t.actions[bestA]) {
			best = qs[a]
			bestA = a
		}
	}
	return bestA
}

// nearestKnown falls back to a neighbouring cold bin when the exact state
// was never logged (offline RL's distribution-shift problem).
func (t *TSRL) nearestKnown(tr *dataset.Trace, step int) float64 {
	base := t.discretize(tr, step)
	cur := tr.Setpoint[step]
	for d := 1; d <= 4; d++ {
		for _, delta := range []int{-d, d} {
			s := base
			s.cold += delta
			if qs, ok := t.q[s]; ok {
				if a := t.greedy(qs, t.visits[s], cur); a >= 0 {
					return t.actions[a]
				}
			}
		}
	}
	// Far outside the logged distribution (e.g. overheated): retreat toward
	// the training policy's default at the allowed rate.
	if cur > t.cfg.InitialSetpointC {
		return math.Max(cur-t.cfg.MaxMoveC, t.cfg.InitialSetpointC)
	}
	return math.Min(cur+t.cfg.MaxMoveC, t.cfg.InitialSetpointC)
}

func (t *TSRL) discretize(tr *dataset.Trace, i int) stateKey {
	var inlet float64
	for _, s := range tr.ACUTemps {
		inlet += s[i]
	}
	inlet /= float64(len(tr.ACUTemps))
	return stateKey{
		cold:  int(math.Floor(tr.MaxCold[i] / t.cfg.ColdBinC)),
		inlet: int(math.Floor(inlet / t.cfg.InletBinC)),
		power: int(math.Floor(tr.AvgPower[i] / t.cfg.PowerBin)),
	}
}

func (t *TSRL) actionIndex(sp float64) int {
	i := int(math.Round((sp - t.cfg.SpMin) / t.cfg.SpStep))
	if i < 0 {
		i = 0
	}
	if i >= len(t.actions) {
		i = len(t.actions) - 1
	}
	return i
}

func (t *TSRL) row(s stateKey) []float64 {
	if q, ok := t.q[s]; ok {
		return q
	}
	q := make([]float64, len(t.actions))
	t.q[s] = q
	t.visits[s] = make([]int, len(t.actions))
	return q
}

// NumStates reports the visited state count (diagnostics).
func (t *TSRL) NumStates() int { return len(t.q) }

// Explain renders the Q-row for the current state (diagnostics).
func (t *TSRL) Explain(tr *dataset.Trace, step int) string {
	s := t.discretize(tr, step)
	qs, ok := t.q[s]
	if !ok {
		return fmt.Sprintf("state %v UNSEEN -> fallback", s)
	}
	out := fmt.Sprintf("state %v:", s)
	for a := range qs {
		if t.visits[s][a] > 0 {
			out += fmt.Sprintf(" %.1f:%.2f(n%d)", t.actions[a], qs[a], t.visits[s][a])
		}
	}
	return out
}
