package control

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"tesla/internal/dataset"
)

// ModelFreeConfig parameterizes the model-free intelligent-P baseline
// (Fliess & Join style): control built on an ultra-local model
//
//	Δy ≈ F + b·Δu
//
// where y is the maximum cold-aisle temperature, u the ACU set-point, b a
// single assumed gain, and F everything else (load, weather, dynamics),
// re-estimated from the last measurement at every step. No plant model is
// trained — the controller is usable on a cold deployment.
type ModelFreeConfig struct {
	// SpMin and SpMax bound the set-point.
	SpMin, SpMax float64
	// ColdLimitC is the cold-aisle constraint; the controller regulates the
	// measured maximum toward ColdLimitC − MarginC, riding as close to the
	// limit (and therefore as energy-lean) as the margin allows.
	ColdLimitC float64
	MarginC    float64
	// GainPerC is b: the assumed steady response of the max cold-aisle
	// temperature to a 1 °C set-point move over one control step.
	GainPerC float64
	// Kp is the proportional gain on the tracking error.
	Kp float64
	// Alpha smooths the F estimate (1 = use only the newest residual).
	Alpha float64
	// MaxStepC slew-limits the set-point between steps.
	MaxStepC float64
	// InitialSetpointC is commanded until one measurement pair is available.
	InitialSetpointC float64
	// ColdIdx are the cold-aisle sensor indices within the DC series.
	ColdIdx []int
}

// DefaultModelFreeConfig returns the deployment-default tuning.
func DefaultModelFreeConfig(spMin, spMax float64, coldIdx []int) ModelFreeConfig {
	return ModelFreeConfig{
		SpMin: spMin, SpMax: spMax,
		ColdLimitC:       22,
		MarginC:          0.5,
		GainPerC:         0.35,
		Kp:               0.6,
		Alpha:            0.5,
		MaxStepC:         1.0,
		InitialSetpointC: 23,
		ColdIdx:          coldIdx,
	}
}

// ModelFree is the intelligent-P controller on the ultra-local model: each
// step it measures the realized temperature delta, attributes the part its
// assumed gain explains to its own last move and the rest to the disturbance
// estimate F̂, then commands the move that cancels F̂ and closes a fraction
// Kp of the remaining tracking error.
type ModelFree struct {
	cfg ModelFreeConfig

	have  bool // one (y, u) pair recorded
	prevY float64
	prevU float64
	fHat  float64
}

// NewModelFree validates the configuration.
func NewModelFree(cfg ModelFreeConfig) (*ModelFree, error) {
	if cfg.SpMin >= cfg.SpMax {
		return nil, fmt.Errorf("control: model-free set-point range [%g,%g] is empty", cfg.SpMin, cfg.SpMax)
	}
	if cfg.GainPerC <= 0 || cfg.Kp <= 0 || cfg.MaxStepC <= 0 {
		return nil, fmt.Errorf("control: invalid model-free config %+v", cfg)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("control: model-free alpha %g outside (0,1]", cfg.Alpha)
	}
	if len(cfg.ColdIdx) == 0 {
		return nil, fmt.Errorf("control: model-free needs cold-aisle sensor indices")
	}
	return &ModelFree{cfg: cfg}, nil
}

// Name implements Policy.
func (mf *ModelFree) Name() string { return "modelfree" }

// maxColdAt reads the maximum cold-aisle measurement at step t.
func (mf *ModelFree) maxColdAt(tr *dataset.Trace, t int) float64 {
	maxCold := -1e30
	for _, k := range mf.cfg.ColdIdx {
		if v := tr.DCTemps[k][t]; v > maxCold {
			maxCold = v
		}
	}
	return maxCold
}

// Decide implements Policy.
func (mf *ModelFree) Decide(tr *dataset.Trace, t int) float64 {
	if t < 0 || t >= tr.Len() {
		return mf.cfg.InitialSetpointC
	}
	y := mf.maxColdAt(tr, t)
	u := clampF(tr.Setpoint[t], mf.cfg.SpMin, mf.cfg.SpMax)
	if !mf.have {
		mf.have, mf.prevY, mf.prevU = true, y, u
		return clampF(mf.cfg.InitialSetpointC, mf.cfg.SpMin, mf.cfg.SpMax)
	}

	// Ultra-local model update: the realized Δy minus what our own last
	// set-point move explains is the disturbance estimate.
	residual := (y - mf.prevY) - mf.cfg.GainPerC*(u-mf.prevU)
	mf.fHat = mf.cfg.Alpha*residual + (1-mf.cfg.Alpha)*mf.fHat

	// Intelligent-P law: pick Δu so that F̂ + b·Δu = Kp·(ref − y), i.e. the
	// disturbance is cancelled and a fraction of the error closed per step.
	ref := mf.cfg.ColdLimitC - mf.cfg.MarginC
	du := (mf.cfg.Kp*(ref-y) - mf.fHat) / mf.cfg.GainPerC
	du = clampF(du, -mf.cfg.MaxStepC, mf.cfg.MaxStepC)
	next := clampF(u+du, mf.cfg.SpMin, mf.cfg.SpMax)

	mf.prevY, mf.prevU = y, u
	return next
}

// modelFreeState is the controller's mutable state for checkpointing.
type modelFreeState struct {
	Version      int
	Have         bool
	PrevY, PrevU float64
	FHat         float64
}

// Snapshot implements Durable.
func (mf *ModelFree) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	st := modelFreeState{Version: 1, Have: mf.have, PrevY: mf.prevY, PrevU: mf.prevU, FHat: mf.fHat}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("control: model-free snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements Durable.
func (mf *ModelFree) Restore(blob []byte) error {
	var st modelFreeState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return fmt.Errorf("control: model-free restore: %w", err)
	}
	if st.Version != 1 {
		return fmt.Errorf("control: model-free snapshot version %d unsupported", st.Version)
	}
	mf.have, mf.prevY, mf.prevU, mf.fHat = st.Have, st.PrevY, st.PrevU, st.FHat
	return nil
}
