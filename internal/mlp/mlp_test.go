package mlp

import (
	"math"
	"testing"

	"tesla/internal/mat"
	"tesla/internal/rng"
)

func TestLearnsLinearFunction(t *testing.T) {
	r := rng.New(1)
	n := 400
	x := mat.New(n, 2)
	y := mat.New(n, 1)
	for i := 0; i < n; i++ {
		a, b := r.Norm(), r.Norm()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, 2*a-3*b+1)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 80
	net, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sse, sst float64
	for i := 0; i < n; i++ {
		p := net.Predict(x.Row(i))[0]
		d := p - y.At(i, 0)
		sse += d * d
		sst += y.At(i, 0) * y.At(i, 0)
	}
	if r2 := 1 - sse/sst; r2 < 0.98 {
		t.Fatalf("linear fit R² = %g, want > 0.98", r2)
	}
}

func TestLearnsNonlinearFunction(t *testing.T) {
	// |x| is not representable by a linear model; a ReLU net nails it.
	r := rng.New(2)
	n := 600
	x := mat.New(n, 1)
	y := mat.New(n, 1)
	for i := 0; i < n; i++ {
		v := 4*r.Float64() - 2
		x.Set(i, 0, v)
		y.Set(i, 0, math.Abs(v))
	}
	cfg := DefaultConfig()
	cfg.Hidden = []int{32}
	cfg.Epochs = 120
	net, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i := 0; i < n; i++ {
		mae += math.Abs(net.Predict(x.Row(i))[0] - y.At(i, 0))
	}
	mae /= float64(n)
	if mae > 0.1 {
		t.Fatalf("|x| fit MAE = %g, want < 0.1", mae)
	}
}

func TestMultiOutput(t *testing.T) {
	r := rng.New(3)
	n := 200
	x := mat.New(n, 1)
	y := mat.New(n, 2)
	for i := 0; i < n; i++ {
		v := r.Norm()
		x.Set(i, 0, v)
		y.Set(i, 0, v)
		y.Set(i, 1, -v)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 60
	net, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := net.Predict([]float64{1})
	if len(p) != 2 {
		t.Fatalf("output length %d", len(p))
	}
	if math.Abs(p[0]-1) > 0.2 || math.Abs(p[1]+1) > 0.2 {
		t.Fatalf("multi-output predictions wrong: %v", p)
	}
	if net.NumInputs() != 1 || net.NumOutputs() != 2 {
		t.Fatalf("accessors wrong")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	r := rng.New(4)
	x := mat.New(50, 2)
	y := mat.New(50, 1)
	for i := 0; i < 50; i++ {
		x.Set(i, 0, r.Norm())
		x.Set(i, 1, r.Norm())
		y.Set(i, 0, x.At(i, 0)+x.At(i, 1))
	}
	cfg := DefaultConfig()
	cfg.Epochs = 10
	a, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.3, -0.7}
	if a.Predict(in)[0] != b.Predict(in)[0] {
		t.Fatalf("same seed, different networks")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(mat.New(3, 1), mat.New(4, 1), DefaultConfig()); err == nil {
		t.Fatalf("row mismatch accepted")
	}
	if _, err := Train(mat.New(0, 1), mat.New(0, 1), DefaultConfig()); err == nil {
		t.Fatalf("empty set accepted")
	}
	bad := DefaultConfig()
	bad.Epochs = 0
	if _, err := Train(mat.New(3, 1), mat.New(3, 1), bad); err == nil {
		t.Fatalf("zero epochs accepted")
	}
}

func TestPredictPanicsOnWrongLength(t *testing.T) {
	x := mat.NewFromSlice(4, 2, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	y := mat.NewFromSlice(4, 1, []float64{1, 2, 3, 4})
	cfg := DefaultConfig()
	cfg.Epochs = 1
	net, err := Train(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	net.Predict([]float64{1})
}
