// Package mlp implements the multi-layer perceptron regressor used by the
// paper's baselines: Wang et al.'s DC-temperature model (Table 3) and the
// MLP cooling-energy predictor (Table 4). It is a plain fully-connected
// network with ReLU hidden activations and a linear output head, trained by
// mini-batch Adam on mean squared error. Inputs and targets are
// standardized internally so callers can train on raw physical units.
package mlp

import (
	"fmt"
	"math"

	"tesla/internal/mat"
	"tesla/internal/rng"
)

// Config describes the network and the training run.
type Config struct {
	Hidden      []int   // hidden layer widths, e.g. {64, 64}
	LearnRate   float64 // Adam step size
	Epochs      int
	BatchSize   int
	WeightDecay float64 // L2 penalty coupled into the gradient
	Seed        uint64
}

// DefaultConfig is a small network adequate for the testbed's feature sizes.
func DefaultConfig() Config {
	return Config{
		Hidden:      []int{64, 64},
		LearnRate:   1e-3,
		Epochs:      60,
		BatchSize:   64,
		WeightDecay: 1e-5,
		Seed:        1,
	}
}

// Network is a trained MLP.
type Network struct {
	cfg         Config
	sizes       []int // layer widths including input and output
	w           []*mat.Dense
	b           [][]float64
	xMean, xStd []float64
	yMean, yStd []float64
}

type adamState struct {
	mw, vw []*mat.Dense
	mb, vb [][]float64
	t      int
}

// Train fits the network on X (n×d) → Y (n×m).
func Train(x, y *mat.Dense, cfg Config) (*Network, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("mlp: X has %d rows, Y has %d", x.Rows, y.Rows)
	}
	if x.Rows == 0 {
		return nil, fmt.Errorf("mlp: empty training set")
	}
	if cfg.Epochs < 1 || cfg.BatchSize < 1 || cfg.LearnRate <= 0 {
		return nil, fmt.Errorf("mlp: invalid training budget %+v", cfg)
	}
	n := &Network{cfg: cfg}
	n.sizes = append([]int{x.Cols}, cfg.Hidden...)
	n.sizes = append(n.sizes, y.Cols)

	n.xMean, n.xStd = colStats(x)
	n.yMean, n.yStd = colStats(y)
	xs := standardize(x, n.xMean, n.xStd)
	ys := standardize(y, n.yMean, n.yStd)

	r := rng.New(cfg.Seed)
	n.w = make([]*mat.Dense, len(n.sizes)-1)
	n.b = make([][]float64, len(n.sizes)-1)
	st := &adamState{}
	for l := 0; l < len(n.w); l++ {
		in, out := n.sizes[l], n.sizes[l+1]
		n.w[l] = mat.New(in, out)
		// He initialization for ReLU layers.
		scale := math.Sqrt(2 / float64(in))
		for i := range n.w[l].Data {
			n.w[l].Data[i] = r.Norm() * scale
		}
		n.b[l] = make([]float64, out)
		st.mw = append(st.mw, mat.New(in, out))
		st.vw = append(st.vw, mat.New(in, out))
		st.mb = append(st.mb, make([]float64, out))
		st.vb = append(st.vb, make([]float64, out))
	}

	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	acts := n.newActivations()
	grads := n.newGradients()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(idx)
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			n.zeroGradients(grads)
			for _, i := range idx[start:end] {
				n.backprop(xs.Row(i), ys.Row(i), acts, grads)
			}
			n.adamStep(st, grads, end-start)
		}
	}
	return n, nil
}

// Predict evaluates the network for one raw feature vector.
func (n *Network) Predict(x []float64) []float64 {
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("mlp: feature length %d, want %d", len(x), n.sizes[0]))
	}
	h := make([]float64, len(x))
	for j, v := range x {
		h[j] = (v - n.xMean[j]) / n.xStd[j]
	}
	for l := 0; l < len(n.w); l++ {
		out := make([]float64, n.sizes[l+1])
		copy(out, n.b[l])
		for i, hv := range h {
			if hv == 0 {
				continue
			}
			row := n.w[l].Row(i)
			for j, wv := range row {
				out[j] += hv * wv
			}
		}
		if l < len(n.w)-1 {
			for j, v := range out {
				if v < 0 {
					out[j] = 0
				}
			}
		}
		h = out
	}
	for j := range h {
		h[j] = h[j]*n.yStd[j] + n.yMean[j]
	}
	return h
}

// NumInputs returns the expected feature dimensionality.
func (n *Network) NumInputs() int { return n.sizes[0] }

// NumOutputs returns the output dimensionality.
func (n *Network) NumOutputs() int { return n.sizes[len(n.sizes)-1] }

type activations struct {
	pre  [][]float64 // pre-activation per layer
	post [][]float64 // post-activation (input is post[0])
}

func (n *Network) newActivations() *activations {
	a := &activations{}
	a.post = append(a.post, make([]float64, n.sizes[0]))
	for l := 1; l < len(n.sizes); l++ {
		a.pre = append(a.pre, make([]float64, n.sizes[l]))
		a.post = append(a.post, make([]float64, n.sizes[l]))
	}
	return a
}

type gradients struct {
	w []*mat.Dense
	b [][]float64
}

func (n *Network) newGradients() *gradients {
	g := &gradients{}
	for l := 0; l < len(n.w); l++ {
		g.w = append(g.w, mat.New(n.sizes[l], n.sizes[l+1]))
		g.b = append(g.b, make([]float64, n.sizes[l+1]))
	}
	return g
}

func (n *Network) zeroGradients(g *gradients) {
	for l := range g.w {
		for i := range g.w[l].Data {
			g.w[l].Data[i] = 0
		}
		for i := range g.b[l] {
			g.b[l][i] = 0
		}
	}
}

// backprop accumulates gradients of the squared error for one sample.
func (n *Network) backprop(x, y []float64, a *activations, g *gradients) {
	copy(a.post[0], x)
	for l := 0; l < len(n.w); l++ {
		pre := a.pre[l]
		copy(pre, n.b[l])
		for i, hv := range a.post[l] {
			if hv == 0 {
				continue
			}
			row := n.w[l].Row(i)
			for j, wv := range row {
				pre[j] += hv * wv
			}
		}
		post := a.post[l+1]
		if l < len(n.w)-1 {
			for j, v := range pre {
				if v > 0 {
					post[j] = v
				} else {
					post[j] = 0
				}
			}
		} else {
			copy(post, pre)
		}
	}

	// Output delta: d(0.5·(ŷ−y)²)/dŷ.
	last := len(n.w) - 1
	delta := make([]float64, n.sizes[len(n.sizes)-1])
	out := a.post[len(a.post)-1]
	for j := range delta {
		delta[j] = out[j] - y[j]
	}
	for l := last; l >= 0; l-- {
		for i, hv := range a.post[l] {
			if hv == 0 {
				continue
			}
			grow := g.w[l].Row(i)
			for j, dv := range delta {
				grow[j] += hv * dv
			}
		}
		for j, dv := range delta {
			g.b[l][j] += dv
		}
		if l == 0 {
			break
		}
		next := make([]float64, n.sizes[l])
		for i := range next {
			row := n.w[l].Row(i)
			var s float64
			for j, dv := range delta {
				s += row[j] * dv
			}
			if a.pre[l-1][i] > 0 {
				next[i] = s
			}
		}
		delta = next
	}
}

func (n *Network) adamStep(st *adamState, g *gradients, batch int) {
	st.t++
	lr := n.cfg.LearnRate
	b1, b2, eps := 0.9, 0.999, 1e-8
	c1 := 1 - math.Pow(b1, float64(st.t))
	c2 := 1 - math.Pow(b2, float64(st.t))
	inv := 1 / float64(batch)
	for l := range n.w {
		wd := n.cfg.WeightDecay
		for i, grad := range g.w[l].Data {
			gr := grad*inv + wd*n.w[l].Data[i]
			st.mw[l].Data[i] = b1*st.mw[l].Data[i] + (1-b1)*gr
			st.vw[l].Data[i] = b2*st.vw[l].Data[i] + (1-b2)*gr*gr
			n.w[l].Data[i] -= lr * (st.mw[l].Data[i] / c1) / (math.Sqrt(st.vw[l].Data[i]/c2) + eps)
		}
		for i, grad := range g.b[l] {
			gr := grad * inv
			st.mb[l][i] = b1*st.mb[l][i] + (1-b1)*gr
			st.vb[l][i] = b2*st.vb[l][i] + (1-b2)*gr*gr
			n.b[l][i] -= lr * (st.mb[l][i] / c1) / (math.Sqrt(st.vb[l][i]/c2) + eps)
		}
	}
}

func colStats(a *mat.Dense) (mean, std []float64) {
	mean = make([]float64, a.Cols)
	std = make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(a.Rows)
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(a.Rows))
		if std[j] < 1e-9 {
			std[j] = 1
		}
	}
	return mean, std
}

func standardize(a *mat.Dense, mean, std []float64) *mat.Dense {
	out := a.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - mean[j]) / std[j]
		}
	}
	return out
}
