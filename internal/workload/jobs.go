package workload

import (
	"fmt"
	"sort"

	"tesla/internal/cluster"
)

// Job is a batch load-generation job in the style of the Kubernetes Job
// resource the paper deploys (§4): Parallelism pods, each running a
// Gaetano-style CPU load controller that holds Level utilization on its node
// for DurationS seconds.
type Job struct {
	Name        string
	Level       float64 // target CPU utilization contribution per pod, [0,1]
	DurationS   float64
	Parallelism int
}

// Validate reports malformed job specs.
func (j Job) Validate() error {
	switch {
	case j.Name == "":
		return fmt.Errorf("workload: job needs a name")
	case j.Level < 0 || j.Level > 1:
		return fmt.Errorf("workload: job %q level %g outside [0,1]", j.Name, j.Level)
	case j.DurationS <= 0:
		return fmt.Errorf("workload: job %q duration must be positive", j.Name)
	case j.Parallelism <= 0:
		return fmt.Errorf("workload: job %q parallelism must be positive", j.Name)
	}
	return nil
}

// pod is one running load-controller instance bound to a node.
type pod struct {
	job    string
	node   int
	level  float64
	endsAt float64
}

// Orchestrator is a minimal scheduler: pods are bound to the nodes with the
// lowest current committed load (spreading), run for their duration and are
// then reaped. It owns the servers' target utilization while in use —
// unless Additive is set, in which case it layers on top of whatever the
// profile driver already commanded.
type Orchestrator struct {
	cluster *cluster.Cluster
	pods    []pod
	// Additive makes Tick add the committed pod load to each server's
	// current target utilization instead of replacing it. That composes
	// batch jobs with a profile-driven base load, but it requires something
	// (a workload.Driver) to re-set the base targets before every Tick —
	// standalone additive use would compound its own contribution.
	Additive bool
	// Completed counts pods that ran to completion, per job name.
	Completed map[string]int
}

// NewOrchestrator wires an orchestrator to a cluster.
func NewOrchestrator(c *cluster.Cluster) *Orchestrator {
	return &Orchestrator{cluster: c, Completed: map[string]int{}}
}

// committed returns the total level currently bound to each node.
func (o *Orchestrator) committed() []float64 {
	out := make([]float64, len(o.cluster.Servers))
	for _, p := range o.pods {
		out[p.node] += p.level
	}
	return out
}

// Submit schedules all pods of a job at time now. It returns an error if the
// spec is invalid; scheduling itself always succeeds (load levels above 1
// are clamped at apply time, like an oversubscribed node).
func (o *Orchestrator) Submit(j Job, now float64) error {
	if err := j.Validate(); err != nil {
		return err
	}
	load := o.committed()
	// Bind each pod to the currently least-committed node.
	type nodeLoad struct {
		idx  int
		load float64
	}
	for p := 0; p < j.Parallelism; p++ {
		nodes := make([]nodeLoad, len(load))
		for i, l := range load {
			nodes[i] = nodeLoad{i, l}
		}
		sort.Slice(nodes, func(a, b int) bool {
			if nodes[a].load != nodes[b].load {
				return nodes[a].load < nodes[b].load
			}
			return nodes[a].idx < nodes[b].idx
		})
		pick := nodes[0].idx
		o.pods = append(o.pods, pod{job: j.Name, node: pick, level: j.Level, endsAt: now + j.DurationS})
		load[pick] += j.Level
	}
	return nil
}

// Tick reaps finished pods and applies the committed load to the cluster.
// Call once per control step with the current simulation time.
func (o *Orchestrator) Tick(now float64) {
	kept := o.pods[:0]
	for _, p := range o.pods {
		if now >= p.endsAt {
			o.Completed[p.job]++
			continue
		}
		kept = append(kept, p)
	}
	o.pods = kept

	committed := o.committed()
	for i, s := range o.cluster.Servers {
		u := committed[i]
		if o.Additive {
			u += s.TargetUtil()
		}
		if u > 0.98 {
			u = 0.98
		}
		s.SetTargetUtil(u)
	}
}

// Evict removes every live pod of the named job — the migration primitive:
// the caller re-submits the job elsewhere with the remaining duration. It
// returns the number of pods evicted and the longest remaining runtime among
// them (0 when the job has no live pods). The freed capacity takes effect at
// the next Tick.
func (o *Orchestrator) Evict(name string, now float64) (pods int, remainS float64) {
	kept := o.pods[:0]
	for _, p := range o.pods {
		if p.job == name {
			pods++
			if r := p.endsAt - now; r > remainS {
				remainS = r
			}
			continue
		}
		kept = append(kept, p)
	}
	for i := len(kept); i < len(o.pods); i++ {
		o.pods[i] = pod{}
	}
	o.pods = kept
	return pods, remainS
}

// Running returns the number of live pods.
func (o *Orchestrator) Running() int { return len(o.pods) }

// NodePods returns the number of live pods per node (for tests and the
// observability example).
func (o *Orchestrator) NodePods() []int {
	out := make([]int, len(o.cluster.Servers))
	for _, p := range o.pods {
		out[p.node]++
	}
	return out
}
