// Package workload generates the server load used in the TESLA evaluation
// (paper §4–5.1): a Gaetano-style CPU load controller that holds a target
// utilization on a server for a duration, a mini job orchestrator that
// schedules those controllers across the cluster the way the paper uses
// Kubernetes Jobs, and diurnal load profiles shaped after production cluster
// traces (rise-and-fall over the 12-hour testing period) for the idle,
// medium (20 % average CPU) and high (40 % average CPU) settings.
package workload

import (
	"fmt"
	"math"

	"tesla/internal/cluster"
	"tesla/internal/rng"
)

// Setting names one of the three evaluation load settings.
type Setting int

// The three server-load settings of §5.1.
const (
	Idle Setting = iota
	Medium
	High
)

// String implements fmt.Stringer.
func (s Setting) String() string {
	switch s {
	case Idle:
		return "idle"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return fmt.Sprintf("setting(%d)", int(s))
	}
}

// MeanUtil returns the 12-hour average CPU utilization the setting targets.
func (s Setting) MeanUtil() float64 {
	switch s {
	case Medium:
		return 0.20
	case High:
		return 0.40
	default:
		return 0
	}
}

// Profile produces a target fleet utilization as a function of time. All
// profiles are deterministic given their seed so experiments are repeatable.
type Profile interface {
	// UtilAt returns the fleet-average target utilization at t seconds.
	UtilAt(tSeconds float64) float64
	// Name labels the profile for telemetry and reports.
	Name() string
}

// Diurnal is the paper's evaluation profile: the load rises and falls once
// over the period (emulating a day compressed into 12 hours), with
// low-frequency wander and short bursts layered on top, normalized so the
// period average matches the setting.
type Diurnal struct {
	Setting Setting
	// PeriodS is the full rise-and-fall duration (43200 s = 12 h).
	PeriodS float64
	// burst/wander state, deterministic per seed
	seed uint64
}

// NewDiurnal builds a diurnal profile for a setting. Seed varies the burst
// pattern between runs while keeping each run reproducible.
func NewDiurnal(s Setting, periodS float64, seed uint64) *Diurnal {
	return &Diurnal{Setting: s, PeriodS: periodS, seed: seed}
}

// Name implements Profile.
func (d *Diurnal) Name() string { return "diurnal-" + d.Setting.String() }

// UtilAt implements Profile. The base shape is the raised cosine
// (1-cos(2πt/T))/2 whose period average is exactly 1/2, so scaling by twice
// the target mean hits the setting's average utilization.
func (d *Diurnal) UtilAt(t float64) float64 {
	mean := d.Setting.MeanUtil()
	if mean == 0 {
		return 0
	}
	base := (1 - math.Cos(2*math.Pi*t/d.PeriodS)) / 2
	// Low-frequency wander (±12 %) and bursty spikes every ~20 min; the
	// hash-based phase keeps everything deterministic in t.
	wander := 0.12 * math.Sin(2*math.Pi*t/3100+float64(d.seed%97))
	burstPhase := math.Mod(t+float64(d.seed%1201), 1200)
	burst := 0.0
	if burstPhase < 180 {
		burst = 0.15 * math.Sin(math.Pi*burstPhase/180)
	}
	u := 2 * mean * (base*(1+wander) + burst*base)
	if u < 0 {
		u = 0
	}
	if u > 0.95 {
		u = 0.95
	}
	return u
}

// Constant is a flat profile, used for the model-training sweep and the
// figure micro-experiments.
type Constant struct {
	Util  float64
	Label string
}

// UtilAt implements Profile.
func (c Constant) UtilAt(float64) float64 { return c.Util }

// Name implements Profile.
func (c Constant) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return fmt.Sprintf("constant-%.0f%%", c.Util*100)
}

// Steps plays back a piecewise-constant utilization schedule; the training
// sweep uses it to randomize the load every 12 hours (paper §5.1).
type Steps struct {
	// BoundariesS[i] is the start time of segment i; Utils[i] its level.
	BoundariesS []float64
	Utils       []float64
	Label       string
}

// UtilAt implements Profile.
func (s Steps) UtilAt(t float64) float64 {
	u := 0.0
	for i, b := range s.BoundariesS {
		if t >= b {
			u = s.Utils[i]
		} else {
			break
		}
	}
	return u
}

// Name implements Profile.
func (s Steps) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "steps"
}

// RandomDiurnalSchedule builds the training-data load schedule of §5.1: for
// every 12-hour block a load setting is drawn at random, and within the
// block the corresponding diurnal shape plays.
type RandomDiurnalSchedule struct {
	BlockS   float64
	profiles []Profile
}

// NewRandomDiurnalSchedule draws one setting per 12-hour block for the given
// total duration. The draw is stratified: each consecutive group of three
// blocks contains idle, medium and high in random order, so even short
// schedules expose the full load range (a purely independent draw can leave
// a two-day trace without any high-load block, starving the models of
// dynamic-load training signal).
func NewRandomDiurnalSchedule(totalS, blockS float64, r *rng.Rand) *RandomDiurnalSchedule {
	s := &RandomDiurnalSchedule{BlockS: blockS}
	n := int(math.Ceil(totalS / blockS))
	var group []Setting
	for i := 0; i < n; i++ {
		if len(group) == 0 {
			group = []Setting{Idle, Medium, High}
			for j := len(group) - 1; j > 0; j-- {
				k := r.Intn(j + 1)
				group[j], group[k] = group[k], group[j]
			}
		}
		set := group[0]
		group = group[1:]
		s.profiles = append(s.profiles, NewDiurnal(set, blockS, r.Uint64()))
	}
	return s
}

// UtilAt implements Profile.
func (s *RandomDiurnalSchedule) UtilAt(t float64) float64 {
	i := int(t / s.BlockS)
	if i < 0 {
		i = 0
	}
	if i >= len(s.profiles) {
		i = len(s.profiles) - 1
	}
	return s.profiles[i].UtilAt(math.Mod(t, s.BlockS))
}

// Name implements Profile.
func (s *RandomDiurnalSchedule) Name() string { return "random-diurnal" }

// Blocks returns the per-block profile names (for trace provenance).
func (s *RandomDiurnalSchedule) Blocks() []string {
	out := make([]string, len(s.profiles))
	for i, p := range s.profiles {
		out[i] = p.Name()
	}
	return out
}

// Driver applies a Profile to a cluster with per-server skew, emulating the
// orchestrator spreading load-generator jobs unevenly across nodes.
type Driver struct {
	Profile Profile
	skew    []float64 // multiplicative per-server factor, mean 1
}

// NewDriver builds a driver with deterministic per-server skew drawn from r.
func NewDriver(p Profile, c *cluster.Cluster, r *rng.Rand) *Driver {
	d := &Driver{Profile: p}
	d.skew = make([]float64, len(c.Servers))
	var sum float64
	for i := range d.skew {
		d.skew[i] = 0.7 + 0.6*r.Float64()
		sum += d.skew[i]
	}
	// Normalize so fleet-average utilization matches the profile exactly.
	mean := sum / float64(len(d.skew))
	for i := range d.skew {
		d.skew[i] /= mean
	}
	return d
}

// Apply sets each server's target utilization for time t.
func (d *Driver) Apply(c *cluster.Cluster, t float64) {
	u := d.Profile.UtilAt(t)
	for i, s := range c.Servers {
		target := u * d.skew[i]
		if target > 0.98 {
			target = 0.98
		}
		s.SetTargetUtil(target)
	}
}
