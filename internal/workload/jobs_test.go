package workload

import (
	"testing"

	"tesla/internal/cluster"
)

func TestJobValidation(t *testing.T) {
	good := Job{Name: "load", Level: 0.5, DurationS: 60, Parallelism: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []Job{
		{Level: 0.5, DurationS: 60, Parallelism: 1},             // no name
		{Name: "x", Level: 1.5, DurationS: 60, Parallelism: 1},  // bad level
		{Name: "x", Level: 0.5, DurationS: 0, Parallelism: 1},   // bad duration
		{Name: "x", Level: 0.5, DurationS: 60, Parallelism: 0},  // bad parallelism
		{Name: "x", Level: -0.1, DurationS: 60, Parallelism: 1}, // negative level
	}
	for i, j := range cases {
		if j.Validate() == nil {
			t.Fatalf("case %d should be invalid: %+v", i, j)
		}
	}
}

func TestSubmitSpreadsPods(t *testing.T) {
	c := cluster.NewTestbed()
	o := NewOrchestrator(c)
	if err := o.Submit(Job{Name: "spread", Level: 0.4, DurationS: 100, Parallelism: 21}, 0); err != nil {
		t.Fatal(err)
	}
	pods := o.NodePods()
	for i, n := range pods {
		if n != 1 {
			t.Fatalf("node %d has %d pods, spreading should give exactly 1", i, n)
		}
	}
	if o.Running() != 21 {
		t.Fatalf("Running() = %d", o.Running())
	}
}

func TestTickAppliesAndReaps(t *testing.T) {
	c := cluster.NewTestbed()
	o := NewOrchestrator(c)
	if err := o.Submit(Job{Name: "short", Level: 0.6, DurationS: 50, Parallelism: 3}, 0); err != nil {
		t.Fatal(err)
	}
	o.Tick(10)
	var loaded int
	for _, s := range c.Servers {
		if s.TargetUtil() > 0 {
			loaded++
		}
	}
	if loaded != 3 {
		t.Fatalf("%d servers loaded, want 3", loaded)
	}
	// After the duration, pods complete and the load clears.
	o.Tick(60)
	if o.Running() != 0 {
		t.Fatalf("pods not reaped: %d running", o.Running())
	}
	if o.Completed["short"] != 3 {
		t.Fatalf("Completed = %d, want 3", o.Completed["short"])
	}
	for _, s := range c.Servers {
		if s.TargetUtil() != 0 {
			t.Fatalf("target not cleared on %s", s.Name)
		}
	}
}

func TestOversubscriptionClamped(t *testing.T) {
	c := cluster.NewTestbed()
	o := NewOrchestrator(c)
	// 63 pods of 0.5 on 21 nodes = 1.5 per node — must clamp at apply time.
	if err := o.Submit(Job{Name: "big", Level: 0.5, DurationS: 100, Parallelism: 63}, 0); err != nil {
		t.Fatal(err)
	}
	o.Tick(1)
	for _, s := range c.Servers {
		if s.TargetUtil() > 0.98 {
			t.Fatalf("oversubscribed target %g not clamped", s.TargetUtil())
		}
	}
}

func TestSubmitRejectsInvalid(t *testing.T) {
	o := NewOrchestrator(cluster.NewTestbed())
	if err := o.Submit(Job{}, 0); err == nil {
		t.Fatalf("invalid job accepted")
	}
}

func TestLeastLoadedBinding(t *testing.T) {
	c := cluster.NewTestbed()
	o := NewOrchestrator(c)
	// First job occupies node 0 (deterministic tie-break by index).
	if err := o.Submit(Job{Name: "a", Level: 0.9, DurationS: 100, Parallelism: 1}, 0); err != nil {
		t.Fatal(err)
	}
	// Second pod must avoid the loaded node.
	if err := o.Submit(Job{Name: "b", Level: 0.9, DurationS: 100, Parallelism: 1}, 0); err != nil {
		t.Fatal(err)
	}
	pods := o.NodePods()
	if pods[0] != 1 {
		t.Fatalf("first pod not on node 0: %v", pods)
	}
	total := 0
	for _, n := range pods {
		if n > 1 {
			t.Fatalf("scheduler stacked pods: %v", pods)
		}
		total += n
	}
	if total != 2 {
		t.Fatalf("pod count %d", total)
	}
}
