package workload

import (
	"math"
	"strings"
	"testing"
)

func TestReplayInterpolation(t *testing.T) {
	p, err := NewReplay([]float64{0, 100, 200}, []float64{0, 0.5, 0.1}, false)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{-10, 0}, {0, 0}, {50, 0.25}, {100, 0.5}, {150, 0.3}, {200, 0.1}, {500, 0.1},
	}
	for _, c := range cases {
		if got := p.UtilAt(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("UtilAt(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if p.Name() != "replay" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestReplayLooping(t *testing.T) {
	p, err := NewReplay([]float64{0, 100}, []float64{0, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.UtilAt(150); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("looped UtilAt(150) = %g, want 0.5", got)
	}
	if got := p.UtilAt(250); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("looped UtilAt(250) = %g, want 0.5", got)
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplay([]float64{0}, []float64{0}, false); err == nil {
		t.Fatalf("single sample accepted")
	}
	if _, err := NewReplay([]float64{0, 0}, []float64{0, 1}, false); err == nil {
		t.Fatalf("non-increasing times accepted")
	}
	if _, err := NewReplay([]float64{0, 1}, []float64{0, 2}, false); err == nil {
		t.Fatalf("util > 1 accepted")
	}
	if _, err := NewReplay([]float64{0, 1, 2}, []float64{0, 1}, false); err == nil {
		t.Fatalf("length mismatch accepted")
	}
}

func TestReadReplayCSV(t *testing.T) {
	csv := "time_s,util\n0,0.1\n60,0.3\n# comment\n120,0.2\n"
	p, err := ReadReplayCSV(strings.NewReader(csv), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TimesS) != 3 {
		t.Fatalf("parsed %d samples", len(p.TimesS))
	}
	if got := p.UtilAt(30); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("UtilAt(30) = %g", got)
	}
	if _, err := ReadReplayCSV(strings.NewReader("a,b,c\n1,2,3\n"), false); err == nil {
		t.Fatalf("3-column CSV accepted")
	}
	if _, err := ReadReplayCSV(strings.NewReader("0,0.1\nbad,row\n"), false); err == nil {
		t.Fatalf("non-numeric row accepted")
	}
}
