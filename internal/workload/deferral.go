package workload

import (
	"fmt"
	"sort"
)

// The paper's stated next step (§8) is integrating TESLA with server-side
// optimization such as energy-aware workload scheduling. DeferringScheduler
// implements that extension: batch jobs marked deferrable are held back
// while the cooling system is thermally stressed (little cold-aisle
// headroom), flattening the heat-generation peaks the cooling system must
// chase. Interactive (non-deferrable) jobs always run immediately.

// ThermalSignal reports the current cold-aisle headroom in °C (limit −
// max cold-aisle reading). The scheduler treats small or negative headroom
// as stress.
type ThermalSignal func() (headroomC float64)

// DeferredJob wraps a Job with deferral policy.
type DeferredJob struct {
	Job
	// Deferrable jobs wait while the room is stressed; others run at once.
	Deferrable bool
	// MaxDeferS bounds starvation: the job runs unconditionally once it has
	// waited this long (0 = may wait forever).
	MaxDeferS float64
}

// queued tracks a waiting job.
type queued struct {
	job         DeferredJob
	submittedAt float64
	seq         int
}

// DeferringScheduler gates job admission on a thermal signal and delegates
// running jobs to an Orchestrator.
type DeferringScheduler struct {
	orch   *Orchestrator
	signal ThermalSignal
	// HeadroomC is the minimum cold-aisle headroom required to admit
	// deferrable work (default 1 °C).
	HeadroomC float64

	queue    []queued
	seq      int
	admitted map[string]int
	deferred map[string]int
}

// NewDeferringScheduler wires the scheduler to an orchestrator and a
// thermal signal.
func NewDeferringScheduler(orch *Orchestrator, signal ThermalSignal) *DeferringScheduler {
	return &DeferringScheduler{
		orch:      orch,
		signal:    signal,
		HeadroomC: 1.0,
		admitted:  map[string]int{},
		deferred:  map[string]int{},
	}
}

// Submit queues or admits a job at time now.
func (s *DeferringScheduler) Submit(j DeferredJob, now float64) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if !j.Deferrable {
		s.admitted[j.Name]++
		return s.orch.Submit(j.Job, now)
	}
	s.queue = append(s.queue, queued{job: j, submittedAt: now, seq: s.seq})
	s.seq++
	return nil
}

// Tick admits eligible deferred jobs (oldest first), then drives the
// orchestrator. Call once per control step.
func (s *DeferringScheduler) Tick(now float64) error {
	headroom := s.signal()
	sort.Slice(s.queue, func(a, b int) bool { return s.queue[a].seq < s.queue[b].seq })
	kept := s.queue[:0]
	for _, q := range s.queue {
		overdue := q.job.MaxDeferS > 0 && now-q.submittedAt >= q.job.MaxDeferS
		if headroom >= s.HeadroomC || overdue {
			if err := s.orch.Submit(q.job.Job, now); err != nil {
				return fmt.Errorf("workload: admitting deferred job %q: %w", q.job.Name, err)
			}
			s.admitted[q.job.Name]++
			// Admitting a job consumes headroom; be conservative about
			// flooding the room in a single tick.
			headroom -= 0.2 * q.job.Level * float64(q.job.Parallelism)
			continue
		}
		s.deferred[q.job.Name]++
		kept = append(kept, q)
	}
	s.queue = kept
	s.orch.Tick(now)
	return nil
}

// Waiting returns the number of queued (not yet admitted) jobs.
func (s *DeferringScheduler) Waiting() int { return len(s.queue) }

// Admitted returns how many submissions of the named job have been admitted.
func (s *DeferringScheduler) Admitted(name string) int { return s.admitted[name] }

// DeferTicks returns how many ticks submissions of the named job spent
// waiting in total (a starvation diagnostic).
func (s *DeferringScheduler) DeferTicks(name string) int { return s.deferred[name] }
