package workload

import (
	"testing"

	"tesla/internal/cluster"
)

func TestDeferringSchedulerAdmitsImmediatelyWhenCool(t *testing.T) {
	c := cluster.NewTestbed()
	s := NewDeferringScheduler(NewOrchestrator(c), func() float64 { return 3.0 })
	job := DeferredJob{Job: Job{Name: "batch", Level: 0.3, DurationS: 100, Parallelism: 2}, Deferrable: true}
	if err := s.Submit(job, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	if s.Waiting() != 0 {
		t.Fatalf("cool room should admit immediately, %d waiting", s.Waiting())
	}
	if s.Admitted("batch") != 1 {
		t.Fatalf("Admitted = %d", s.Admitted("batch"))
	}
}

func TestDeferringSchedulerHoldsUnderStress(t *testing.T) {
	c := cluster.NewTestbed()
	headroom := 0.2 // stressed
	s := NewDeferringScheduler(NewOrchestrator(c), func() float64 { return headroom })
	job := DeferredJob{Job: Job{Name: "batch", Level: 0.3, DurationS: 100, Parallelism: 2}, Deferrable: true}
	if err := s.Submit(job, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Tick(float64(i) * 60); err != nil {
			t.Fatal(err)
		}
	}
	if s.Waiting() != 1 {
		t.Fatalf("stressed room should hold the job, %d waiting", s.Waiting())
	}
	if s.DeferTicks("batch") != 5 {
		t.Fatalf("DeferTicks = %d", s.DeferTicks("batch"))
	}
	// Stress clears → admitted on the next tick.
	headroom = 2.5
	if err := s.Tick(300); err != nil {
		t.Fatal(err)
	}
	if s.Waiting() != 0 || s.Admitted("batch") != 1 {
		t.Fatalf("job not admitted after stress cleared")
	}
}

func TestNonDeferrableAlwaysRuns(t *testing.T) {
	c := cluster.NewTestbed()
	s := NewDeferringScheduler(NewOrchestrator(c), func() float64 { return -5 })
	job := DeferredJob{Job: Job{Name: "interactive", Level: 0.4, DurationS: 100, Parallelism: 1}}
	if err := s.Submit(job, 0); err != nil {
		t.Fatal(err)
	}
	if s.Admitted("interactive") != 1 {
		t.Fatalf("non-deferrable job held back")
	}
}

func TestMaxDeferBoundsStarvation(t *testing.T) {
	c := cluster.NewTestbed()
	s := NewDeferringScheduler(NewOrchestrator(c), func() float64 { return -5 })
	job := DeferredJob{
		Job:        Job{Name: "bounded", Level: 0.3, DurationS: 100, Parallelism: 1},
		Deferrable: true, MaxDeferS: 120,
	}
	if err := s.Submit(job, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Tick(60); err != nil {
		t.Fatal(err)
	}
	if s.Waiting() != 1 {
		t.Fatalf("job should still wait at 60 s")
	}
	if err := s.Tick(120); err != nil {
		t.Fatal(err)
	}
	if s.Waiting() != 0 {
		t.Fatalf("MaxDeferS must force admission")
	}
}

// TestStarvationBoundUnderSustainedStress pins the MaxDeferS contract
// exactly: under permanent thermal stress every bounded job is admitted at
// the first tick at or past its bound — no earlier, no later — with the
// deferral counters accounting for every waiting tick, while an unbounded
// job waits forever.
func TestStarvationBoundUnderSustainedStress(t *testing.T) {
	c := cluster.NewTestbed()
	s := NewDeferringScheduler(NewOrchestrator(c), func() float64 { return -2 }) // never clears
	jobs := []DeferredJob{
		{Job: Job{Name: "tight", Level: 0.2, DurationS: 3000, Parallelism: 1}, Deferrable: true, MaxDeferS: 120},
		{Job: Job{Name: "loose", Level: 0.2, DurationS: 3000, Parallelism: 1}, Deferrable: true, MaxDeferS: 300},
		{Job: Job{Name: "unbounded", Level: 0.2, DurationS: 3000, Parallelism: 1}, Deferrable: true},
	}
	for _, j := range jobs {
		if err := s.Submit(j, 0); err != nil {
			t.Fatal(err)
		}
	}
	admittedAt := map[string]float64{}
	for step := 1; step <= 10; step++ {
		now := float64(step) * 60
		if err := s.Tick(now); err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if _, seen := admittedAt[j.Name]; !seen && s.Admitted(j.Name) == 1 {
				admittedAt[j.Name] = now
			}
		}
	}
	// Bounds bind exactly: first tick with now − submittedAt ≥ MaxDeferS.
	if admittedAt["tight"] != 120 {
		t.Fatalf("tight admitted at %gs, want exactly 120", admittedAt["tight"])
	}
	if admittedAt["loose"] != 300 {
		t.Fatalf("loose admitted at %gs, want exactly 300", admittedAt["loose"])
	}
	if _, ok := admittedAt["unbounded"]; ok {
		t.Fatalf("unbounded job admitted under permanent stress at %gs", admittedAt["unbounded"])
	}
	// Exact counter accounting: tight waited ticks 60s (1), loose waited
	// 60..240s (4), unbounded waited all 10 ticks; exactly one job remains.
	if got := s.DeferTicks("tight"); got != 1 {
		t.Fatalf("tight DeferTicks = %d, want 1", got)
	}
	if got := s.DeferTicks("loose"); got != 4 {
		t.Fatalf("loose DeferTicks = %d, want 4", got)
	}
	if got := s.DeferTicks("unbounded"); got != 10 {
		t.Fatalf("unbounded DeferTicks = %d, want 10", got)
	}
	if s.Waiting() != 1 {
		t.Fatalf("queue = %d jobs, want only the unbounded one", s.Waiting())
	}
	if s.Admitted("tight")+s.Admitted("loose") != 2 {
		t.Fatalf("admitted: tight=%d loose=%d, want one each", s.Admitted("tight"), s.Admitted("loose"))
	}
}

func TestAdmissionOrderFIFO(t *testing.T) {
	c := cluster.NewTestbed()
	headroom := 0.0
	s := NewDeferringScheduler(NewOrchestrator(c), func() float64 { return headroom })
	for i, name := range []string{"first", "second"} {
		job := DeferredJob{Job: Job{Name: name, Level: 0.2, DurationS: 100, Parallelism: 1}, Deferrable: true}
		if err := s.Submit(job, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Enough headroom for exactly one admission this tick (each admission
	// consumes 0.2·level·parallelism = 0.04 of headroom).
	headroom = 1.02
	if err := s.Tick(10); err != nil {
		t.Fatal(err)
	}
	if s.Admitted("first") != 1 || s.Admitted("second") != 0 {
		t.Fatalf("FIFO violated: first=%d second=%d", s.Admitted("first"), s.Admitted("second"))
	}
}

func TestDeferringSchedulerRejectsInvalidJob(t *testing.T) {
	c := cluster.NewTestbed()
	s := NewDeferringScheduler(NewOrchestrator(c), func() float64 { return 3 })
	if err := s.Submit(DeferredJob{}, 0); err == nil {
		t.Fatalf("invalid job accepted")
	}
}
