package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Replay plays back a recorded utilization trace (e.g. exported from a
// production cluster the way the paper draws on the Alibaba cluster data),
// linearly interpolating between samples and optionally looping.
type Replay struct {
	TimesS []float64
	Utils  []float64
	Loop   bool
	Label  string
}

// NewReplay validates and wraps a (time, util) trace. Times must be
// strictly increasing and utilizations within [0, 1].
func NewReplay(timesS, utils []float64, loop bool) (*Replay, error) {
	if len(timesS) != len(utils) {
		return nil, fmt.Errorf("workload: replay has %d times but %d utils", len(timesS), len(utils))
	}
	if len(timesS) < 2 {
		return nil, fmt.Errorf("workload: replay needs at least 2 samples")
	}
	for i := range timesS {
		if i > 0 && timesS[i] <= timesS[i-1] {
			return nil, fmt.Errorf("workload: replay times not increasing at %d", i)
		}
		if utils[i] < 0 || utils[i] > 1 {
			return nil, fmt.Errorf("workload: replay util %g outside [0,1] at %d", utils[i], i)
		}
	}
	return &Replay{TimesS: timesS, Utils: utils, Loop: loop}, nil
}

// ReadReplayCSV parses "time_s,util" rows (a header row is allowed).
func ReadReplayCSV(r io.Reader, loop bool) (*Replay, error) {
	sc := bufio.NewScanner(r)
	var times, utils []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("workload: replay line %d needs 'time_s,util'", line)
		}
		t, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		u, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("workload: replay line %d is not numeric", line)
		}
		times = append(times, t)
		utils = append(utils, u)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewReplay(times, utils, loop)
}

// UtilAt implements Profile with linear interpolation.
func (p *Replay) UtilAt(t float64) float64 {
	t0, t1 := p.TimesS[0], p.TimesS[len(p.TimesS)-1]
	if p.Loop {
		span := t1 - t0
		t = t0 + mod(t-t0, span)
	}
	if t <= t0 {
		return p.Utils[0]
	}
	if t >= t1 {
		return p.Utils[len(p.Utils)-1]
	}
	i := sort.SearchFloat64s(p.TimesS, t)
	// p.TimesS[i-1] < t <= p.TimesS[i]
	lo, hi := p.TimesS[i-1], p.TimesS[i]
	frac := (t - lo) / (hi - lo)
	return p.Utils[i-1]*(1-frac) + p.Utils[i]*frac
}

// Name implements Profile.
func (p *Replay) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "replay"
}

func mod(a, b float64) float64 {
	m := a - float64(int(a/b))*b
	if m < 0 {
		m += b
	}
	return m
}
