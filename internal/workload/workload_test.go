package workload

import (
	"math"
	"testing"

	"tesla/internal/cluster"
	"tesla/internal/rng"
)

func TestSettingStringsAndMeans(t *testing.T) {
	if Idle.String() != "idle" || Medium.String() != "medium" || High.String() != "high" {
		t.Fatalf("setting names wrong")
	}
	if Idle.MeanUtil() != 0 || Medium.MeanUtil() != 0.20 || High.MeanUtil() != 0.40 {
		t.Fatalf("setting means wrong")
	}
	if Setting(9).String() == "" {
		t.Fatalf("unknown setting should stringify")
	}
}

func TestDiurnalAverageMatchesSetting(t *testing.T) {
	for _, set := range []Setting{Medium, High} {
		d := NewDiurnal(set, 43200, 3)
		var sum float64
		n := 720
		for i := 0; i < n; i++ {
			u := d.UtilAt(float64(i) * 60)
			if u < 0 || u > 0.95 {
				t.Fatalf("util %g out of range", u)
			}
			sum += u
		}
		mean := sum / float64(n)
		if math.Abs(mean-set.MeanUtil()) > 0.05 {
			t.Fatalf("%s diurnal mean %g, want ~%g", set, mean, set.MeanUtil())
		}
	}
}

func TestDiurnalIdleIsZero(t *testing.T) {
	d := NewDiurnal(Idle, 43200, 1)
	for i := 0; i < 100; i++ {
		if d.UtilAt(float64(i)*432) != 0 {
			t.Fatalf("idle profile must stay at zero")
		}
	}
}

func TestDiurnalRisesAndFalls(t *testing.T) {
	d := NewDiurnal(High, 43200, 5)
	start := d.UtilAt(0)
	mid := d.UtilAt(21600)
	end := d.UtilAt(43100)
	if !(mid > start && mid > end) {
		t.Fatalf("diurnal shape wrong: start %g mid %g end %g", start, mid, end)
	}
}

func TestConstantAndStepsProfiles(t *testing.T) {
	c := Constant{Util: 0.4}
	if c.UtilAt(0) != 0.4 || c.UtilAt(1e6) != 0.4 {
		t.Fatalf("constant profile not constant")
	}
	if c.Name() == "" {
		t.Fatalf("constant profile needs a name")
	}
	s := Steps{BoundariesS: []float64{0, 100, 200}, Utils: []float64{0.1, 0.5, 0.2}}
	cases := []struct{ t, want float64 }{{0, 0.1}, {99, 0.1}, {100, 0.5}, {150, 0.5}, {250, 0.2}}
	for _, cse := range cases {
		if got := s.UtilAt(cse.t); got != cse.want {
			t.Fatalf("steps at %g = %g, want %g", cse.t, got, cse.want)
		}
	}
	if s.Name() != "steps" {
		t.Fatalf("steps default name wrong")
	}
}

func TestStratifiedScheduleCoversAllSettings(t *testing.T) {
	r := rng.New(9)
	s := NewRandomDiurnalSchedule(3*43200, 43200, r)
	blocks := s.Blocks()
	if len(blocks) != 3 {
		t.Fatalf("%d blocks, want 3", len(blocks))
	}
	seen := map[string]bool{}
	for _, b := range blocks {
		seen[b] = true
	}
	for _, want := range []string{"diurnal-idle", "diurnal-medium", "diurnal-high"} {
		if !seen[want] {
			t.Fatalf("stratified schedule missing %s: %v", want, blocks)
		}
	}
}

func TestScheduleUtilClampsOutOfRangeTime(t *testing.T) {
	r := rng.New(10)
	s := NewRandomDiurnalSchedule(2*43200, 43200, r)
	// Asking past the end must not panic and should use the last block.
	_ = s.UtilAt(10 * 43200)
	_ = s.UtilAt(-5)
	if s.Name() != "random-diurnal" {
		t.Fatalf("schedule name wrong")
	}
}

func TestDriverSkewIsMeanOne(t *testing.T) {
	c := cluster.NewTestbed()
	d := NewDriver(Constant{Util: 0.5}, c, rng.New(4))
	d.Apply(c, 0)
	var sum float64
	for _, s := range c.Servers {
		sum += s.TargetUtil()
	}
	mean := sum / float64(len(c.Servers))
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("driver mean target %g, want ~0.5", mean)
	}
	// Skew must differentiate servers.
	if c.Servers[0].TargetUtil() == c.Servers[1].TargetUtil() {
		t.Fatalf("expected per-server skew")
	}
}

func TestDriverClampsHighSkew(t *testing.T) {
	c := cluster.NewTestbed()
	d := NewDriver(Constant{Util: 0.95}, c, rng.New(5))
	d.Apply(c, 0)
	for _, s := range c.Servers {
		if s.TargetUtil() > 0.98 {
			t.Fatalf("target %g exceeds clamp", s.TargetUtil())
		}
	}
}
