package gp

import (
	"math"
	"testing"

	"tesla/internal/mat"
	"tesla/internal/rng"
)

func TestMatern52Properties(t *testing.T) {
	if Matern52(0, 1) != 1 {
		t.Fatalf("k(0) = %g, want 1", Matern52(0, 1))
	}
	// Monotone decreasing in |r|.
	prev := 1.0
	for r := 0.1; r < 5; r += 0.1 {
		v := Matern52(r, 1)
		if v >= prev {
			t.Fatalf("kernel not decreasing at r=%g", r)
		}
		prev = v
	}
	// Symmetric.
	if Matern52(1.5, 2) != Matern52(-1.5, 2) {
		t.Fatalf("kernel not symmetric")
	}
}

func TestMatern52PanicsOnBadLengthscale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Matern52(1, 0)
}

func TestPosteriorInterpolatesLowNoise(t *testing.T) {
	x := []float64{20, 23, 26, 29, 32, 35}
	y := make([]float64, len(x))
	noise := make([]float64, len(x))
	for i, v := range x {
		y[i] = 0.1 * (v - 27) * (v - 27)
		noise[i] = 1e-8
	}
	g, err := Fit(x, y, noise)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		m, variance := g.Posterior(v)
		if math.Abs(m-y[i]) > 0.05 {
			t.Fatalf("posterior at observed x=%g is %g, want %g", v, m, y[i])
		}
		if variance > 0.01 {
			t.Fatalf("posterior variance %g too large at an observed point", variance)
		}
	}
	// Interpolation between points should roughly follow the parabola.
	m, _ := g.Posterior(27.5)
	want := 0.1 * 0.5 * 0.5
	if math.Abs(m-want) > 0.3 {
		t.Fatalf("interpolated mean %g, want ~%g", m, want)
	}
}

func TestVarianceGrowsAwayFromData(t *testing.T) {
	x := []float64{24, 25, 26}
	y := []float64{1, 1.1, 0.9}
	noise := []float64{1e-6, 1e-6, 1e-6}
	g, err := Fit(x, y, noise)
	if err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Posterior(25)
	_, vFar := g.Posterior(35)
	if vFar <= vNear {
		t.Fatalf("variance should grow away from data: near %g, far %g", vNear, vFar)
	}
}

func TestHighNoiseShrinksTowardMean(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{10, -10, 10, -10}
	lowN := []float64{1e-6, 1e-6, 1e-6, 1e-6}
	highN := []float64{1e4, 1e4, 1e4, 1e4}
	gLow, err := Fit(x, y, lowN)
	if err != nil {
		t.Fatal(err)
	}
	gHigh, err := Fit(x, y, highN)
	if err != nil {
		t.Fatal(err)
	}
	mLow, _ := gLow.Posterior(1)
	mHigh, _ := gHigh.Posterior(1)
	if math.Abs(mHigh-gHigh.Mean) > math.Abs(mLow-gLow.Mean) {
		t.Fatalf("high noise should pull the posterior toward the mean")
	}
}

func TestJointPosteriorConsistentWithMarginal(t *testing.T) {
	x := []float64{20, 25, 30}
	y := []float64{1, 2, 1.5}
	noise := []float64{1e-4, 1e-4, 1e-4}
	g, err := Fit(x, y, noise)
	if err != nil {
		t.Fatal(err)
	}
	pts := []float64{22, 27, 33}
	mean, cov := g.JointPosterior(pts)
	for i, p := range pts {
		m, v := g.Posterior(p)
		if math.Abs(mean[i]-m) > 1e-9 {
			t.Fatalf("joint mean[%d] = %g, marginal %g", i, mean[i], m)
		}
		if math.Abs(cov.At(i, i)-v) > 1e-6 {
			t.Fatalf("joint var[%d] = %g, marginal %g", i, cov.At(i, i), v)
		}
	}
	// Joint covariance must be (numerically) PSD: Cholesky with jitter works.
	for i := 0; i < len(pts); i++ {
		cov.Set(i, i, cov.At(i, i)+1e-9)
	}
	if _, err := mat.NewCholesky(cov); err != nil {
		t.Fatalf("joint covariance not PSD: %v", err)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1}, []float64{1}); err == nil {
		t.Fatalf("single observation accepted")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}, []float64{1, 1}); err == nil {
		t.Fatalf("length mismatch accepted")
	}
}

func TestFitHandlesConstantTargets(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{5, 5, 5}
	noise := []float64{1e-6, 1e-6, 1e-6}
	g, err := Fit(x, y, noise)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := g.Posterior(2.5)
	if math.Abs(m-5) > 0.01 {
		t.Fatalf("constant function posterior %g", m)
	}
	if g.NumObs() != 3 {
		t.Fatalf("NumObs = %d", g.NumObs())
	}
}

func TestFitRecoversSmoothFunctionUnderNoise(t *testing.T) {
	r := rng.New(7)
	var x, y, noise []float64
	f := func(v float64) float64 { return math.Sin(v / 2) }
	for v := 0.0; v <= 12; v += 0.5 {
		x = append(x, v)
		y = append(y, f(v)+0.05*r.Norm())
		noise = append(noise, 0.05*0.05)
	}
	g, err := Fit(x, y, noise)
	if err != nil {
		t.Fatal(err)
	}
	var mae float64
	n := 0
	for v := 1.0; v <= 11; v += 0.25 {
		m, _ := g.Posterior(v)
		mae += math.Abs(m - f(v))
		n++
	}
	if mae/float64(n) > 0.08 {
		t.Fatalf("posterior MAE %g too high", mae/float64(n))
	}
}
