package gp

import (
	"math"
	"strings"
	"testing"

	"tesla/internal/mat"
	"tesla/internal/rng"
)

// TestFitterIncrementalMatchesFullRefit: appending observations one at a time
// (exercising the O(n²) factor-extension path) must produce the same GP a
// from-scratch fit over the same grid produces — factors, alpha and selected
// hyperparameters bit-identical.
func TestFitterIncrementalMatchesFullRefit(t *testing.T) {
	xs := []float64{20, 35, 23, 29, 26, 31.5, 21.7, 27.3, 33.1, 24.9}
	f1 := NewFitter()
	for i, x := range xs[:6] {
		if err := f1.Observe(x, 0.05*(x-27)*(x-27)+0.1*float64(i%3), 1e-4); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f1.Fit(); err != nil {
		t.Fatal(err)
	}
	var g1 *GP
	for i, x := range xs[6:] {
		if err := f1.Observe(x, 0.05*(x-27)*(x-27)+0.1*float64(i%3), 1e-4); err != nil {
			t.Fatal(err)
		}
		var err error
		if g1, err = f1.Fit(); err != nil {
			t.Fatal(err)
		}
	}
	if f1.stats.Extends == 0 {
		t.Fatalf("extension fast path never fired: %+v", f1.stats)
	}

	// Reference: a fresh fitter over the same data, forced onto the same
	// output-scale anchor so both use the same hyperparameter grid.
	f2 := NewFitter()
	for i := range f1.x {
		if err := f2.Observe(f1.x[i], f1.y[i], f1.noise[i]); err != nil {
			t.Fatal(err)
		}
	}
	f2.anchor = f1.anchor
	f2.osGrid = f1.osGrid
	g2, err := f2.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if f2.stats.FullRefits != 1 || f2.stats.Extends != 0 {
		t.Fatalf("reference fitter should have done one full refit: %+v", f2.stats)
	}

	if g1.Lengthscale != g2.Lengthscale || g1.OutputScale != g2.OutputScale || g1.Mean != g2.Mean {
		t.Fatalf("hyperparameters diverge: incremental (%g,%g,%g) vs full (%g,%g,%g)",
			g1.Lengthscale, g1.OutputScale, g1.Mean, g2.Lengthscale, g2.OutputScale, g2.Mean)
	}
	for i := range g1.alpha {
		if g1.alpha[i] != g2.alpha[i] {
			t.Fatalf("alpha[%d]: incremental %g vs full %g", i, g1.alpha[i], g2.alpha[i])
		}
	}
	l1, l2 := g1.chol.L, g2.chol.L
	for i := range l1.Data {
		if d := math.Abs(l1.Data[i] - l2.Data[i]); d > 1e-12 {
			t.Fatalf("factor entry %d: incremental %g vs full %g (|Δ|=%g)", i, l1.Data[i], l2.Data[i], d)
		}
	}
}

// TestFitterSpanGrowthInvalidatesBases: when a new observation widens the data
// span, the lengthscale grid moves and every cached base matrix must be
// rebuilt from scratch. A regression here left stale packed rows in front of
// the rebuilt ones, so kernels were assembled from entries computed with the
// old grid — failing with "no hyperparameter setting produced a
// positive-definite kernel" (or, worse, fitting silently wrong).
func TestFitterSpanGrowthInvalidatesBases(t *testing.T) {
	f := NewFitter()
	for _, x := range []float64{20, 25, 23} {
		if err := f.Observe(x, 0.1*(x-22)*(x-22), 1e-4); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Fit(); err != nil {
		t.Fatal(err)
	}
	// Extends the span (and again on the next round) so the grid rebuilds.
	for _, x := range []float64{35, 18} {
		if err := f.Observe(x, 0.1*(x-22)*(x-22), 1e-4); err != nil {
			t.Fatal(err)
		}
		g1, err := f.Fit()
		if err != nil {
			t.Fatalf("fit after span growth: %v", err)
		}
		// Must match a fresh fit over the same data on the same grid.
		f2 := NewFitter()
		for i := range f.x {
			if err := f2.Observe(f.x[i], f.y[i], f.noise[i]); err != nil {
				t.Fatal(err)
			}
		}
		f2.anchor = f.anchor
		f2.osGrid = f.osGrid
		g2, err := f2.Fit()
		if err != nil {
			t.Fatal(err)
		}
		if g1.Lengthscale != g2.Lengthscale || g1.OutputScale != g2.OutputScale || g1.Mean != g2.Mean {
			t.Fatalf("hyperparameters diverge after span growth: (%g,%g,%g) vs fresh (%g,%g,%g)",
				g1.Lengthscale, g1.OutputScale, g1.Mean, g2.Lengthscale, g2.OutputScale, g2.Mean)
		}
		for i := range g1.alpha {
			if g1.alpha[i] != g2.alpha[i] {
				t.Fatalf("alpha[%d]: %g vs fresh %g", i, g1.alpha[i], g2.alpha[i])
			}
		}
	}
}

// TestFitterExtensionPathOnStableVariance mirrors the optimizer's pattern
// (initial design, then one observation per iteration) and checks the fast
// path dominates when the target variance is stable.
func TestFitterExtensionPathOnStableVariance(t *testing.T) {
	f := NewFitter()
	for _, x := range []float64{20, 35, 24, 28, 31} {
		if err := f.Observe(x, 3, 1e-6); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Fit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := f.Observe(21+2*float64(i), 3, 1e-6); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Fit(); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Fits != 7 {
		t.Fatalf("fits %d, want 7", st.Fits)
	}
	if st.Extends != 6 || st.FullRefits != 1 {
		t.Fatalf("constant targets should extend on every refit: %+v", st)
	}
}

// TestJointPosteriorMatchesPerRowReference: the blocked triangular solve must
// agree exactly (bitwise) with an independent per-row implementation of the
// same math on fixed inputs.
func TestJointPosteriorMatchesPerRowReference(t *testing.T) {
	xs, ys, noise := []float64{}, []float64{}, []float64{}
	for i := 0; i < 12; i++ {
		x := 20 + 15*float64(i)/11
		xs = append(xs, x)
		ys = append(ys, 0.05*(x-27)*(x-27)+math.Sin(float64(i)))
		noise = append(noise, 1e-4+1e-5*float64(i))
	}
	g, err := Fit(xs, ys, noise)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]float64, 61)
	for i := range pts {
		pts[i] = 20 + 15*float64(i)/60
	}
	mean, cov := g.JointPosterior(pts)

	// Per-row reference: fresh slices per point, no shared workspace.
	n := len(xs)
	m := len(pts)
	vs := make([][]float64, m)
	refMean := make([]float64, m)
	for a := 0; a < m; a++ {
		k := make([]float64, n)
		for i := 0; i < n; i++ {
			k[i] = g.OutputScale * Matern52(pts[a]-g.x[i], g.Lengthscale)
		}
		refMean[a] = g.Mean + mat.Dot(k, g.alpha)
		v := make([]float64, n)
		g.chol.ForwardSolveTo(v, k)
		vs[a] = v
	}
	for a := 0; a < m; a++ {
		if mean[a] != refMean[a] {
			t.Fatalf("mean[%d] = %g, reference %g", a, mean[a], refMean[a])
		}
		for b := a; b < m; b++ {
			val := g.OutputScale*Matern52(pts[a]-pts[b], g.Lengthscale) - mat.Dot(vs[a], vs[b])
			if floor := 1e-10 * g.OutputScale; a == b && val < floor {
				val = floor
			}
			if cov.At(a, b) != val {
				t.Fatalf("cov[%d,%d] = %g, reference %g", a, b, cov.At(a, b), val)
			}
		}
	}
}

// TestPosteriorMeanRecoversObservation: with near-zero observation noise the
// posterior mean at an observed input must reproduce the target.
func TestPosteriorMeanRecoversObservation(t *testing.T) {
	xs := []float64{20, 23, 26, 29, 32, 35}
	ys := make([]float64, len(xs))
	noise := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + math.Sin(x/3)
		noise[i] = 1e-10
	}
	g, err := Fit(xs, ys, noise)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		m, v := g.Posterior(x)
		if math.Abs(m-ys[i]) > 1e-4 {
			t.Fatalf("posterior mean at observed x=%g is %.9g, want %.9g", x, m, ys[i])
		}
		if v > 1e-4 {
			t.Fatalf("posterior variance %g at an observed near-noiseless point", v)
		}
	}
}

func TestFitRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name        string
		x, y, noise []float64
	}{
		{"nan-x", []float64{1, math.NaN(), 3}, []float64{1, 2, 3}, []float64{1e-6, 1e-6, 1e-6}},
		{"inf-y", []float64{1, 2, 3}, []float64{1, math.Inf(1), 3}, []float64{1e-6, 1e-6, 1e-6}},
		{"nan-noise", []float64{1, 2, 3}, []float64{1, 2, 3}, []float64{1e-6, math.NaN(), 1e-6}},
	}
	for _, c := range cases {
		_, err := Fit(c.x, c.y, c.noise)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Fatalf("%s: error %q does not name the cause", c.name, err)
		}
	}
}

func TestObserveRejectsNonFinite(t *testing.T) {
	f := NewFitter()
	if err := f.Observe(math.Inf(-1), 0, 1e-6); err == nil {
		t.Fatalf("-Inf input accepted")
	}
	if f.NumObs() != 0 {
		t.Fatalf("rejected observation was stored")
	}
}

// TestJointPosteriorBlocksMatchesJoint checks the block-form posterior
// against the full JointPosterior over [training inputs ∪ cands]: the means,
// the obs×obs block, the cand→obs cross block, and the candidate marginal
// variances must agree to tight tolerance (the two paths share the blocked
// forward-solve core but order some reductions differently).
func TestJointPosteriorBlocksMatchesJoint(t *testing.T) {
	r := rng.New(31)
	var x, y, noise []float64
	for i := 0; i < 9; i++ {
		x = append(x, 20+float64(i)*1.7)
		y = append(y, math.Sin(x[i]/3)+0.05*r.Norm())
		noise = append(noise, 1e-4)
	}
	g, err := Fit(x, y, noise)
	if err != nil {
		t.Fatal(err)
	}
	cands := []float64{19.5, 23.3, 28, 31.1, 36}
	n, nc := len(x), len(cands)

	pts := append(append([]float64{}, x...), cands...)
	mean, cov := g.JointPosterior(pts)
	b := g.JointPosteriorBlocks(cands)

	const tol = 1e-11
	for a := 0; a < n; a++ {
		if d := math.Abs(b.MeanObs[a] - mean[a]); d > tol {
			t.Fatalf("MeanObs[%d] off by %g", a, d)
		}
		for i := 0; i < n; i++ {
			if d := math.Abs(b.CovObs.Data[a*n+i] - cov.Data[a*(n+nc)+i]); d > tol {
				t.Fatalf("CovObs[%d,%d] off by %g", a, i, d)
			}
		}
	}
	for j := 0; j < nc; j++ {
		if d := math.Abs(b.MeanCand[j] - mean[n+j]); d > tol {
			t.Fatalf("MeanCand[%d] off by %g", j, d)
		}
		if d := math.Abs(b.VarCand[j] - cov.Data[(n+j)*(n+nc)+n+j]); d > tol {
			t.Fatalf("VarCand[%d] off by %g", j, d)
		}
		for a := 0; a < n; a++ {
			if d := math.Abs(b.Cross.Data[j*n+a] - cov.Data[(n+j)*(n+nc)+a]); d > tol {
				t.Fatalf("Cross[%d,%d] off by %g", j, a, d)
			}
		}
	}
}
