package gp

import "testing"

func benchData(n int) (xs, ys, noise []float64) {
	for i := 0; i < n; i++ {
		x := 20 + 15*float64(i)/float64(n-1)
		xs = append(xs, x)
		ys = append(ys, 0.05*(x-27)*(x-27))
		noise = append(noise, 1e-4)
	}
	return
}

func BenchmarkFit16(b *testing.B) {
	xs, ys, noise := benchData(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(xs, ys, noise); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPosterior(b *testing.B) {
	xs, ys, noise := benchData(16)
	g, err := Fit(xs, ys, noise)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Posterior(26.3)
	}
}

func BenchmarkJointPosterior61(b *testing.B) {
	xs, ys, noise := benchData(16)
	g, err := Fit(xs, ys, noise)
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]float64, 61)
	for i := range pts {
		pts[i] = 20 + 15*float64(i)/60
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.JointPosterior(pts)
	}
}
