// Package gp implements the fixed-noise Gaussian-process regression that
// TESLA's modeling-error-aware Bayesian optimizer uses as its surrogate
// (paper §3.3): a GP with a Matérn-5/2 covariance kernel and per-observation
// noise variances supplied by the bootstrap-based prediction-error monitor.
// Objective and constraint get separate GPs, mirroring the paper's use of
// BoTorch's FixedNoiseGP.
//
// Hyperparameters (length scale, output scale, constant mean) are selected
// by maximizing the exact log marginal likelihood over a small log-spaced
// grid — ample for the optimizer's one-dimensional set-point domain and
// deterministic, which keeps control decisions reproducible.
package gp

import (
	"fmt"
	"math"

	"tesla/internal/mat"
)

// Matern52 evaluates the Matérn-5/2 kernel for distance r, unit variance.
func Matern52(r, lengthscale float64) float64 {
	if lengthscale <= 0 {
		panic("gp: non-positive lengthscale")
	}
	s := math.Sqrt(5) * math.Abs(r) / lengthscale
	return (1 + s + s*s/3) * math.Exp(-s)
}

// GP is a fitted fixed-noise Gaussian process over scalar inputs.
type GP struct {
	x     []float64 // observed inputs
	y     []float64 // observed targets
	noise []float64 // per-point noise variances

	// Hyperparameters.
	Lengthscale float64
	OutputScale float64 // kernel variance σ²
	Mean        float64 // constant mean

	chol  *mat.Cholesky // factor of K + diag(noise)
	alpha []float64     // (K+Σ)⁻¹ (y − mean)
}

// Fit trains a fixed-noise GP on (x, y) with per-point noise variances.
// Hyperparameters are picked by marginal likelihood over a grid scaled to
// the data span. At least two observations are required.
func Fit(x, y, noise []float64) (*GP, error) {
	n := len(x)
	if n < 2 {
		return nil, fmt.Errorf("gp: need at least 2 observations, got %d", n)
	}
	if len(y) != n || len(noise) != n {
		return nil, fmt.Errorf("gp: length mismatch x=%d y=%d noise=%d", n, len(y), len(noise))
	}
	span := spread(x)
	if span <= 0 {
		span = 1
	}
	yVar := variance(y)
	if yVar <= 1e-12 {
		yVar = 1e-12
	}

	mean := meanOf(y)
	best := math.Inf(-1)
	var bestGP *GP
	for _, ls := range []float64{span / 24, span / 12, span / 6, span / 3, span} {
		for _, os := range []float64{yVar / 4, yVar, 4 * yVar} {
			g := &GP{x: x, y: y, noise: noise, Lengthscale: ls, OutputScale: os, Mean: mean}
			ll, err := g.factorize()
			if err != nil {
				continue
			}
			if ll > best {
				best = ll
				bestGP = g
			}
		}
	}
	if bestGP == nil {
		return nil, fmt.Errorf("gp: no hyperparameter setting produced a positive-definite kernel")
	}
	return bestGP, nil
}

// factorize builds and factors K + Σ and returns the log marginal
// likelihood.
func (g *GP) factorize() (float64, error) {
	n := len(g.x)
	k := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.OutputScale * Matern52(g.x[i]-g.x[j], g.Lengthscale)
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		k.Data[i*n+i] += g.noise[i] + 1e-9*g.OutputScale
	}
	ch, err := mat.NewCholesky(k)
	if err != nil {
		return 0, err
	}
	g.chol = ch
	resid := make([]float64, n)
	for i := range resid {
		resid[i] = g.y[i] - g.Mean
	}
	g.alpha = ch.SolveVec(resid)

	ll := -0.5*mat.Dot(resid, g.alpha) - 0.5*ch.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
	return ll, nil
}

// Posterior returns the posterior mean and variance at a single input.
func (g *GP) Posterior(x float64) (mean, variance float64) {
	n := len(g.x)
	kStar := make([]float64, n)
	for i := 0; i < n; i++ {
		kStar[i] = g.OutputScale * Matern52(x-g.x[i], g.Lengthscale)
	}
	mean = g.Mean + mat.Dot(kStar, g.alpha)
	v := g.chol.SolveVec(kStar)
	variance = g.OutputScale - mat.Dot(kStar, v)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// JointPosterior returns the posterior mean vector and covariance matrix at
// the given inputs, for coherent function draws inside the QMC NEI
// acquisition.
func (g *GP) JointPosterior(xs []float64) (mean []float64, cov *mat.Dense) {
	n := len(g.x)
	m := len(xs)
	kStar := mat.New(m, n) // cross-covariances
	for a := 0; a < m; a++ {
		row := kStar.Row(a)
		for i := 0; i < n; i++ {
			row[i] = g.OutputScale * Matern52(xs[a]-g.x[i], g.Lengthscale)
		}
	}
	mean = make([]float64, m)
	sol := mat.New(m, n) // rows: (K+Σ)⁻¹ kStar_a
	for a := 0; a < m; a++ {
		mean[a] = g.Mean + mat.Dot(kStar.Row(a), g.alpha)
		copy(sol.Row(a), g.chol.SolveVec(kStar.Row(a)))
	}
	cov = mat.New(m, m)
	for a := 0; a < m; a++ {
		for b := a; b < m; b++ {
			v := g.OutputScale*Matern52(xs[a]-xs[b], g.Lengthscale) - mat.Dot(kStar.Row(a), sol.Row(b))
			if a == b && v < 1e-10*g.OutputScale {
				v = 1e-10 * g.OutputScale
			}
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return mean, cov
}

// NumObs returns the number of observations in the GP.
func (g *GP) NumObs() int { return len(g.x) }

func meanOf(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func variance(xs []float64) float64 {
	m := meanOf(xs)
	var s float64
	for _, v := range xs {
		s += (v - m) * (v - m)
	}
	return s / float64(len(xs))
}

func spread(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
