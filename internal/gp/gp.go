// Package gp implements the fixed-noise Gaussian-process regression that
// TESLA's modeling-error-aware Bayesian optimizer uses as its surrogate
// (paper §3.3): a GP with a Matérn-5/2 covariance kernel and per-observation
// noise variances supplied by the bootstrap-based prediction-error monitor.
// Objective and constraint get separate GPs, mirroring the paper's use of
// BoTorch's FixedNoiseGP.
//
// Hyperparameters (length scale, output scale, constant mean) are selected
// by maximizing the exact log marginal likelihood over a small log-spaced
// grid — ample for the optimizer's one-dimensional set-point domain and
// deterministic, which keeps control decisions reproducible.
//
// The linear algebra is organized for the optimizer's hot loop, where one
// evaluation is appended per iteration and the surrogate is refit each time
// (the same bottleneck BoTorch attacks with cached Cholesky factors):
//
//   - the unit-variance Matérn base matrix is built once per lengthscale and
//     every output-scale grid cell derives its kernel by scaling it, so a
//     5×3 grid costs 5 kernel builds instead of 15;
//   - each grid cell retains its Cholesky factor between fits; when one
//     observation arrives and the grid is unchanged, the factor is extended
//     with one new row in O(n²) (bit-identical to a full refactorization)
//     instead of being rebuilt in O(n³);
//   - the output-scale grid anchors to the target variance with ×2/÷2
//     hysteresis rather than tracking it exactly, so the grid — and with it
//     the cached factors — stays stable while new observations only nudge
//     the sample variance.
package gp

import (
	"fmt"
	"math"

	"tesla/internal/mat"
)

// Matern52 evaluates the Matérn-5/2 kernel for distance r, unit variance.
func Matern52(r, lengthscale float64) float64 {
	if lengthscale <= 0 {
		panic("gp: non-positive lengthscale")
	}
	s := math.Sqrt(5) * math.Abs(r) / lengthscale
	return (1 + s + s*s/3) * math.Exp(-s)
}

// GP is a fitted fixed-noise Gaussian process over scalar inputs. It is an
// immutable snapshot: further Fitter.Observe/Fit calls do not affect it.
type GP struct {
	x []float64 // observed inputs

	// Hyperparameters.
	Lengthscale float64
	OutputScale float64 // kernel variance σ²
	Mean        float64 // constant mean

	chol  *mat.Cholesky // factor of K + diag(noise)
	alpha []float64     // (K+Σ)⁻¹ (y − mean)
}

// Fit trains a fixed-noise GP on (x, y) with per-point noise variances.
// Hyperparameters are picked by marginal likelihood over a grid scaled to
// the data span. At least two observations are required; non-finite inputs
// are rejected. One-shot fits are unaffected by the incremental machinery:
// a fresh Fitter anchors its grid to the data exactly as the original
// implementation did.
func Fit(x, y, noise []float64) (*GP, error) {
	n := len(x)
	if len(y) != n || len(noise) != n {
		return nil, fmt.Errorf("gp: length mismatch x=%d y=%d noise=%d", n, len(y), len(noise))
	}
	f := NewFitter()
	for i := range x {
		if err := f.Observe(x[i], y[i], noise[i]); err != nil {
			return nil, fmt.Errorf("gp: observation %d: %w", i, err)
		}
	}
	return f.Fit()
}

const (
	numLS    = 5
	numOS    = 3
	numCells = numLS * numOS
)

// FitterStats counts how the fitter resolved each Fit call — the
// observability hook for the incremental-factor fast path.
type FitterStats struct {
	Fits         uint64 // Fit calls that produced a GP
	FullRefits   uint64 // fits that rebuilt every grid cell from scratch
	Extends      uint64 // fits served by O(n²) one-row factor extensions
	CellFailures uint64 // grid cells lost to non-SPD kernels (cumulative)
}

// fitCell is one (lengthscale, outputscale) grid cell with its retained
// factorization.
type fitCell struct {
	chol  *mat.Cholesky
	alive bool // false once the cell's kernel failed to factor at this grid
}

// Fitter incrementally fits fixed-noise GPs over a growing observation set.
// It retains per-cell Cholesky factors and per-lengthscale kernel bases
// across fits so that the append-one-observation-then-refit pattern of the
// Bayesian optimizer costs O(grid·n²) instead of O(grid·n³).
//
// A Fitter is not safe for concurrent use. The GP values it returns are
// independent snapshots and remain valid indefinitely.
type Fitter struct {
	x, y, noise []float64

	lsGrid [numLS]float64
	osGrid [numOS]float64
	span   float64 // data span the lengthscale grid was built for
	anchor float64 // sticky output-scale anchor (see Fit)

	// bases[l] is the unit-variance Matérn matrix for lsGrid[l] over x,
	// stored as a packed lower triangle: row i occupies entries
	// [i(i+1)/2, i(i+1)/2+i]. Appending an observation appends one row.
	bases [numLS][]float64
	baseN int // observations covered by bases

	cells [numCells]fitCell
	cellN int // observations covered by the cell factors (0 = invalid)

	resid, alpha, bestAlpha []float64
	stats                   FitterStats
}

// NewFitter returns an empty incremental fitter.
func NewFitter() *Fitter { return &Fitter{} }

// Observe appends one observation. Non-finite values are rejected: a NaN fed
// into the kernel matrix would poison every grid cell and surface only as an
// unexplained "not positive definite" failure at the next fit.
func (f *Fitter) Observe(x, y, noise float64) error {
	if !isFinite(x) || !isFinite(y) || !isFinite(noise) {
		return fmt.Errorf("gp: non-finite observation x=%g y=%g noise=%g", x, y, noise)
	}
	f.x = append(f.x, x)
	f.y = append(f.y, y)
	f.noise = append(f.noise, noise)
	return nil
}

// NumObs returns the number of observations accumulated so far.
func (f *Fitter) NumObs() int { return len(f.x) }

// Stats reports how fits were resolved so far.
func (f *Fitter) Stats() FitterStats { return f.stats }

// Fit selects hyperparameters by exact log marginal likelihood over the grid
// and returns the winning GP. Successive calls reuse the cached kernel bases
// and extend the retained factors when exactly one observation arrived and
// the grid is unchanged.
func (f *Fitter) Fit() (*GP, error) {
	n := len(f.x)
	if n < 2 {
		return nil, fmt.Errorf("gp: need at least 2 observations, got %d", n)
	}
	span := spread(f.x)
	if span <= 0 {
		span = 1
	}
	yVar := variance(f.y)
	if yVar <= 1e-12 {
		yVar = 1e-12
	}
	// Output-scale anchor with hysteresis: refresh only when the sample
	// variance leaves [anchor/2, 2·anchor]. The grid spans anchor/4..4·anchor,
	// so within the hysteresis band some grid point is always within a factor
	// of two of the true variance — the same coverage an exact anchor gives —
	// while the grid (and the cached factors keyed on it) stays stable as
	// observations accumulate.
	anchor := f.anchor
	if anchor == 0 || yVar > 2*anchor || yVar < anchor/2 {
		anchor = yVar
	}

	if span != f.span {
		f.span = span
		f.lsGrid = [numLS]float64{span / 24, span / 12, span / 6, span / 3, span}
		f.baseN = 0 // bases are per-lengthscale; a new grid invalidates them
		for li := range f.bases {
			f.bases[li] = f.bases[li][:0] // extendBases appends; stale rows must go
		}
		f.cellN = 0
	}
	if anchor != f.anchor {
		f.anchor = anchor
		f.osGrid = [numOS]float64{anchor / 4, anchor, 4 * anchor}
		f.cellN = 0 // factors embed the output scale; bases survive
	}
	f.extendBases(n)

	mean := meanOf(f.y)
	f.resid = resize(f.resid, n)
	for i, v := range f.y {
		f.resid[i] = v - mean
	}
	f.alpha = resize(f.alpha, n)
	f.bestAlpha = resize(f.bestAlpha, n)

	switch {
	case f.cellN == n:
		// Fit without new observations: factors are already current.
	case f.cellN == n-1:
		f.extendCells(n)
		f.stats.Extends++
	default:
		f.refitCells(n)
		f.stats.FullRefits++
	}
	f.cellN = n

	best := math.Inf(-1)
	bestIdx := -1
	logNorm := 0.5 * float64(n) * math.Log(2*math.Pi)
	for li := 0; li < numLS; li++ {
		for oi := 0; oi < numOS; oi++ {
			c := &f.cells[li*numOS+oi]
			if !c.alive {
				continue
			}
			c.chol.SolveVecTo(f.alpha, f.resid)
			ll := -0.5*mat.Dot(f.resid, f.alpha) - 0.5*c.chol.LogDet() - logNorm
			if ll > best {
				best = ll
				bestIdx = li*numOS + oi
				copy(f.bestAlpha, f.alpha)
			}
		}
	}
	if bestIdx < 0 {
		return nil, fmt.Errorf("gp: no hyperparameter setting produced a positive-definite kernel")
	}
	f.stats.Fits++
	win := &f.cells[bestIdx]
	return &GP{
		x:           f.x[:n:n],
		Lengthscale: f.lsGrid[bestIdx/numOS],
		OutputScale: f.osGrid[bestIdx%numOS],
		Mean:        mean,
		chol:        &mat.Cholesky{L: win.chol.L.Clone()},
		alpha:       append([]float64(nil), f.bestAlpha...),
	}, nil
}

// extendBases appends rows baseN..n-1 to every per-lengthscale base matrix:
// n−baseN rows of Matérn evaluations per lengthscale instead of a full n²
// rebuild per grid cell.
func (f *Fitter) extendBases(n int) {
	if f.baseN >= n {
		return
	}
	for li, ls := range f.lsGrid {
		b := f.bases[li]
		for i := f.baseN; i < n; i++ {
			for j := 0; j <= i; j++ {
				b = append(b, Matern52(f.x[i]-f.x[j], ls))
			}
		}
		f.bases[li] = b
	}
	f.baseN = n
}

// baseRow returns row i (length i+1) of the packed base for lengthscale li.
func (f *Fitter) baseRow(li, i int) []float64 {
	off := i * (i + 1) / 2
	return f.bases[li][off : off+i+1]
}

// refitCells rebuilds every grid cell's factorization at size n by scaling
// the cached base into the cell's (reused) storage and factoring in place.
func (f *Fitter) refitCells(n int) {
	for li := range f.lsGrid {
		for oi, os := range f.osGrid {
			c := &f.cells[li*numOS+oi]
			k := cellMatrix(c, n)
			for i := 0; i < n; i++ {
				row := f.baseRow(li, i)
				dst := k.Row(i)[:i+1]
				for j, v := range row {
					dst[j] = os * v
				}
				dst[i] += f.noise[i] + 1e-9*os
			}
			ch, err := mat.CholeskyInPlace(k)
			if err != nil {
				c.alive = false
				f.stats.CellFailures++
				continue
			}
			c.chol = ch
			c.alive = true
		}
	}
}

// extendCells grows every live cell's factor by the newest observation's row.
// A cell whose extension fails would also fail a full refactorization at the
// same pivot (the arithmetic is identical), so it is retired rather than
// rebuilt.
func (f *Fitter) extendCells(n int) {
	i := n - 1
	row := make([]float64, i)
	for li := range f.lsGrid {
		base := f.baseRow(li, i)
		for oi, os := range f.osGrid {
			c := &f.cells[li*numOS+oi]
			if !c.alive {
				continue
			}
			for j := 0; j < i; j++ {
				row[j] = os * base[j]
			}
			d := os*base[i] + (f.noise[i] + 1e-9*os)
			if err := c.chol.Extend(row, d); err != nil {
				c.alive = false
				f.stats.CellFailures++
			}
		}
	}
}

// cellMatrix returns an n×n matrix backed by the cell's reusable storage.
func cellMatrix(c *fitCell, n int) *mat.Dense {
	if c.chol != nil && cap(c.chol.L.Data) >= n*n {
		return &mat.Dense{Rows: n, Cols: n, Data: c.chol.L.Data[:n*n]}
	}
	return &mat.Dense{Rows: n, Cols: n, Data: make([]float64, n*n, 2*n*n)}
}

// Posterior returns the posterior mean and variance at a single input. The
// variance uses the half-solve identity k*ᵀ(K+Σ)⁻¹k* = ‖L⁻¹k*‖², one
// forward substitution instead of a full solve.
func (g *GP) Posterior(x float64) (mean, variance float64) {
	n := len(g.x)
	kStar := make([]float64, n)
	for i := 0; i < n; i++ {
		kStar[i] = g.OutputScale * Matern52(x-g.x[i], g.Lengthscale)
	}
	mean = g.Mean + mat.Dot(kStar, g.alpha)
	g.chol.ForwardSolveTo(kStar, kStar)
	variance = g.OutputScale - mat.Dot(kStar, kStar)
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// JointPosterior returns the posterior mean vector and covariance matrix at
// the given inputs, for coherent function draws inside the QMC NEI
// acquisition.
//
// The cross-covariance block is solved as one blocked triangular solve
// V = L⁻¹·K*ᵀ and the covariance formed as K** − VᵀV — half the floating
// point work of the former per-row full solves (m forward substitutions
// instead of m forward+backward pairs) and a constant number of allocations
// instead of two per row.
func (g *GP) JointPosterior(xs []float64) (mean []float64, cov *mat.Dense) {
	n := len(g.x)
	m := len(xs)
	mean = make([]float64, m)
	v := mat.New(m, n) // row a: k*_a, then overwritten in place by L⁻¹k*_a
	for a := 0; a < m; a++ {
		row := v.Row(a)
		for i := 0; i < n; i++ {
			row[i] = g.OutputScale * Matern52(xs[a]-g.x[i], g.Lengthscale)
		}
		mean[a] = g.Mean + mat.Dot(row, g.alpha)
		g.chol.ForwardSolveTo(row, row)
	}
	cov = mat.New(m, m)
	floor := 1e-10 * g.OutputScale
	for a := 0; a < m; a++ {
		va := v.Row(a)
		for b := a; b < m; b++ {
			val := g.OutputScale*Matern52(xs[a]-xs[b], g.Lengthscale) - mat.Dot(va, v.Row(b))
			if a == b && val < floor {
				val = floor
			}
			cov.Set(a, b, val)
			cov.Set(b, a, val)
		}
	}
	return mean, cov
}

// PosteriorBlocks is the joint posterior over [training inputs ∪ cands] in
// the block form the NEI acquisition samples from: the dense covariance over
// the (few) training inputs, the cross-covariance from each candidate to the
// training inputs, and each candidate's marginal variance. The
// candidate×candidate covariance block — the bulk of the full joint matrix —
// is never formed: a draw of the candidates conditioned on the training-input
// draw (f_j = μ_j + w_jᵀ·z_obs + s_j·z_j with w_j = L⁻¹·cross_j) has exactly
// the right per-candidate joint law with the observations, which is all a
// per-candidate improvement integrand can depend on.
type PosteriorBlocks struct {
	MeanObs  []float64  // posterior mean at the training inputs (n)
	MeanCand []float64  // posterior mean at the candidates (nc)
	CovObs   *mat.Dense // posterior covariance over the training inputs (n×n)
	Cross    *mat.Dense // nc×n: row j = posterior cov(cand_j, training inputs)
	VarCand  []float64  // posterior marginal variance per candidate (nc)
}

// JointPosteriorBlocks computes PosteriorBlocks for the training inputs plus
// the given candidates. It shares JointPosterior's blocked-solve core but
// does O((n+nc)·n) kernel work instead of O((n+nc)²).
func (g *GP) JointPosteriorBlocks(cands []float64) *PosteriorBlocks {
	n := len(g.x)
	nc := len(cands)
	b := &PosteriorBlocks{
		MeanObs:  make([]float64, n),
		MeanCand: make([]float64, nc),
		CovObs:   mat.New(n, n),
		Cross:    mat.New(nc, n),
		VarCand:  make([]float64, nc),
	}
	floor := 1e-10 * g.OutputScale

	// Raw prior covariance over the training inputs, kept in CovObs until the
	// posterior correction below overwrites it in place.
	for a := 0; a < n; a++ {
		row := b.CovObs.Row(a)
		for i := a; i < n; i++ {
			v := g.OutputScale * Matern52(g.x[a]-g.x[i], g.Lengthscale)
			row[i] = v
			b.CovObs.Data[i*n+a] = v
		}
	}
	vObs := b.CovObs.Clone() // rows become L⁻¹·k*_a
	for a := 0; a < n; a++ {
		b.MeanObs[a] = g.Mean + mat.Dot(b.CovObs.Row(a), g.alpha)
		g.chol.ForwardSolveTo(vObs.Row(a), vObs.Row(a))
	}
	for a := 0; a < n; a++ {
		va := vObs.Row(a)
		row := b.CovObs.Row(a)
		for i := a; i < n; i++ {
			v := row[i] - mat.Dot(va, vObs.Row(i))
			if a == i && v < floor {
				v = floor
			}
			row[i] = v
			b.CovObs.Data[i*n+a] = v
		}
	}

	vj := make([]float64, n)
	for j := 0; j < nc; j++ {
		kc := b.Cross.Row(j) // raw k(cand_j, x_i), finalized in place below
		for i := 0; i < n; i++ {
			kc[i] = g.OutputScale * Matern52(cands[j]-g.x[i], g.Lengthscale)
		}
		b.MeanCand[j] = g.Mean + mat.Dot(kc, g.alpha)
		g.chol.ForwardSolveTo(vj, kc)
		v := g.OutputScale - mat.Dot(vj, vj)
		if v < floor {
			v = floor
		}
		b.VarCand[j] = v
		for a := 0; a < n; a++ {
			kc[a] -= mat.Dot(vj, vObs.Row(a))
		}
	}
	return b
}

// NumObs returns the number of observations in the GP.
func (g *GP) NumObs() int { return len(g.x) }

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n, 2*n)
	}
	return s[:n]
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func variance(xs []float64) float64 {
	m := meanOf(xs)
	var s float64
	for _, v := range xs {
		s += (v - m) * (v - m)
	}
	return s / float64(len(xs))
}

func spread(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
