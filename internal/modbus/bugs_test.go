package modbus

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestServerCloseWithIdleConn: Close must not wait for idle peers to hang
// up. Before the fix the `closed` flag was never checked and live conns were
// not closed, so Close blocked on wg.Wait forever.
func TestServerCloseWithIdleConn(t *testing.T) {
	srv := NewServer(NewMapBank())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Let the accept loop register the connection, then stay silent.
	time.Sleep(50 * time.Millisecond)

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Server.Close did not return while a peer stayed idle")
	}
	// The handler's side of the conn is closed: the peer observes EOF.
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still alive after Close")
	}
}

// fakeServer runs a raw TCP responder for one connection: respond receives
// the request frame and returns the response frame (nil closes the conn).
func fakeServer(t *testing.T, respond func(req []byte) []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					header := make([]byte, 7)
					if _, err := io.ReadFull(conn, header); err != nil {
						return
					}
					pdu := make([]byte, binary.BigEndian.Uint16(header[4:6])-1)
					if _, err := io.ReadFull(conn, pdu); err != nil {
						return
					}
					resp := respond(append(header, pdu...))
					if resp == nil {
						return
					}
					if _, err := conn.Write(resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// frameFor wraps a response PDU in an MBAP header copied from the request.
func frameFor(req, pdu []byte) []byte {
	out := make([]byte, 7+len(pdu))
	copy(out[0:2], req[0:2])
	binary.BigEndian.PutUint16(out[4:6], uint16(len(pdu)+1))
	out[6] = req[6]
	copy(out[7:], pdu)
	return out
}

// TestWriteEchoMismatch: a write echo naming a different register or value
// must surface as *EchoMismatchError. Before the fix only length and
// function code were checked, so a reordered or corrupted echo passed as a
// confirmed actuation.
func TestWriteEchoMismatch(t *testing.T) {
	addr := fakeServer(t, func(req []byte) []byte {
		// Echo the write with the value corrupted by one bit.
		pdu := append([]byte(nil), req[7:]...)
		pdu[4] ^= 0x01
		return frameFor(req, pdu)
	})
	client, err := DialOptions(addr, ClientOptions{Timeout: time.Second, Unit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	err = client.WriteHolding(0, 2300)
	var mismatch *EchoMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("corrupted echo accepted: err = %v", err)
	}
	if mismatch.Addr != 0 || mismatch.Value != 2300 || mismatch.EchoValue != 2301 {
		t.Fatalf("mismatch fields = %+v", mismatch)
	}

	// A faithful echo still succeeds.
	addrOK := fakeServer(t, func(req []byte) []byte { return frameFor(req, req[7:]) })
	clientOK, err := DialOptions(addrOK, ClientOptions{Timeout: time.Second, Unit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer clientOK.Close()
	if err := clientOK.WriteHolding(0, 2300); err != nil {
		t.Fatalf("faithful echo rejected: %v", err)
	}
}

// TestBlockReadNoWraparound: a block read crossing 0xFFFF must be rejected,
// not silently wrapped onto register 0. The bank maps 0xFFFE, 0xFFFF and 0,
// so before the fix the wraparound read succeeded and returned register 0's
// value as the third register.
func TestBlockReadNoWraparound(t *testing.T) {
	bank := NewMapBank()
	bank.SetInput(0xFFFE, 11)
	bank.SetInput(0xFFFF, 22)
	bank.SetInput(0, 33)
	_, client := startServer(t, bank)

	_, err := client.ReadInput(0xFFFE, 3)
	var exc *ExceptionError
	if !errors.As(err, &exc) || exc.Code != ExcIllegalAddress {
		t.Fatalf("wraparound read not rejected: err = %v", err)
	}
	// The non-wrapping tail of the space still reads fine.
	vals, err := client.ReadInput(0xFFFE, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 11 || vals[1] != 22 {
		t.Fatalf("tail read = %v", vals)
	}
}

// TestServerRejectsNonzeroProtocolID: MBAP protocol id must be zero; a
// frame claiming any other protocol drops the connection.
func TestServerRejectsNonzeroProtocolID(t *testing.T) {
	srv := NewServer(NewMapBank())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame := []byte{0, 1, 0, 1 /* protocol id 1 */, 0, 6, 1, FuncReadInput, 0, 0, 0, 1}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, err = conn.Read(make([]byte, 1))
	var nerr net.Error
	if err == nil || (errors.As(err, &nerr) && nerr.Timeout()) {
		t.Fatalf("want connection dropped, got %v", err)
	}
}

// TestClientRejectsWrongUnitID: a response stamped with a different unit id
// belongs to some other device behind a gateway and must not be accepted.
func TestClientRejectsWrongUnitID(t *testing.T) {
	addr := fakeServer(t, func(req []byte) []byte {
		// A well-formed single-register read response — wrong unit id only.
		resp := frameFor(req, []byte{req[7], 2, 0x08, 0xfc})
		resp[6] = req[6] + 1
		return resp
	})
	client, err := DialOptions(addr, ClientOptions{Timeout: 300 * time.Millisecond, Unit: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.ReadHolding(0, 1); err == nil {
		t.Fatal("response with wrong unit id accepted")
	}
}

// TestCloseDuringBackoffPrompt: Close must interrupt a request sleeping in
// its retry backoff. Before the fix the client mutex was held across the
// whole ladder, so Close blocked until every backoff elapsed.
func TestCloseDuringBackoffPrompt(t *testing.T) {
	addr := startStallProxy(t, "", 1000)
	opts := ClientOptions{Timeout: 100 * time.Millisecond, Retries: 5, Backoff: 2 * time.Second, Unit: 1}
	client, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}

	reqErr := make(chan error, 1)
	go func() {
		_, err := client.ReadInput(0, 1)
		reqErr <- err
	}()
	// Let the first attempt time out and the 2 s backoff begin.
	time.Sleep(250 * time.Millisecond)
	start := time.Now()
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("Close blocked %v behind a retrying request", took)
	}
	select {
	case err := <-reqErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("interrupted request returned %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("request still running after Close")
	}
}

// TestConcurrentRequestsInterleaveBackoff: two callers retrying against a
// dead endpoint must serve their backoff sleeps concurrently. Before the
// fix the ladders serialized behind one mutex (~N × ladder wall time).
func TestConcurrentRequestsInterleaveBackoff(t *testing.T) {
	// A live listener to dial through, closed before the requests start, so
	// every attempt fails fast (RST/refused) and wall time ≈ backoff only.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	opts := ClientOptions{Timeout: 200 * time.Millisecond, Retries: 2, Backoff: 200 * time.Millisecond, Unit: 1}
	client, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ln.Close()

	// Each request: fail, sleep 200 ms, fail, sleep 400 ms, fail ≈ 600 ms.
	// Four in parallel must take ~one ladder, not four.
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.ReadInput(0, 1); err == nil {
				t.Error("request against dead endpoint succeeded")
			}
		}()
	}
	wg.Wait()
	if wall := time.Since(start); wall > 1500*time.Millisecond {
		t.Fatalf("4 concurrent ladders took %v — backoff sleeps are serialized", wall)
	}
}

// TestCloseRaceUnderLoad hammers a flaky endpoint from several goroutines
// and closes the client mid-flight; everything must return promptly with no
// deadlock (run under -race).
func TestCloseRaceUnderLoad(t *testing.T) {
	bank := NewMapBank()
	bank.SetInput(0, 7)
	srv := NewServer(bank)
	backend, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := startStallProxy(t, backend, 2)

	opts := ClientOptions{Timeout: 50 * time.Millisecond, Retries: 3, Backoff: 20 * time.Millisecond, Unit: 1}
	client, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				client.ReadInput(0, 1) // errors are expected after Close
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("requests still in flight long after Close")
	}
}
