package modbus

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tesla/internal/testbed"
	"tesla/internal/workload"
)

func startServer(t *testing.T, bank RegisterBank) (*Server, *Client) {
	t.Helper()
	srv := NewServer(bank)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func TestReadWriteRegisters(t *testing.T) {
	bank := NewMapBank()
	bank.SetHolding(0, 2300)
	bank.SetInput(0, 2412)
	bank.SetInput(1, 2398)
	_, client := startServer(t, bank)

	vals, err := client.ReadInput(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 2412 || vals[1] != 2398 {
		t.Fatalf("ReadInput = %v", vals)
	}
	hold, err := client.ReadHolding(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hold[0] != 2300 {
		t.Fatalf("ReadHolding = %v", hold)
	}
	if err := client.WriteHolding(0, 2550); err != nil {
		t.Fatal(err)
	}
	if v, _ := bank.Holding(0); v != 2550 {
		t.Fatalf("write did not land: %d", v)
	}
}

func TestExceptions(t *testing.T) {
	bank := NewMapBank()
	bank.SetHolding(0, 1)
	_, client := startServer(t, bank)

	if _, err := client.ReadInput(50, 1); err == nil {
		t.Fatalf("unmapped input register accepted")
	}
	if err := client.WriteHolding(99, 1); err == nil {
		t.Fatalf("unmapped holding register accepted")
	}
	if _, err := client.ReadHolding(0, 0); err == nil {
		t.Fatalf("zero-count read accepted")
	}
}

func TestOnWriteCallback(t *testing.T) {
	bank := NewMapBank()
	bank.SetHolding(0, 100)
	var mu sync.Mutex
	var got []uint16
	bank.OnWrite = func(addr, value uint16) {
		mu.Lock()
		got = append(got, value)
		mu.Unlock()
	}
	_, client := startServer(t, bank)
	if err := client.WriteHolding(0, 777); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != 777 {
		t.Fatalf("OnWrite observed %v", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	bank := NewMapBank()
	for i := uint16(0); i < 8; i++ {
		bank.SetInput(i, i*10)
	}
	srv := NewServer(bank)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 50; i++ {
				vals, err := client.ReadInput(0, 8)
				if err != nil {
					errs <- err
					return
				}
				if vals[3] != 30 {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// startStallProxy listens on a fresh port and black-holes the first `stall`
// connections (bytes read and discarded, nothing written back). Later
// connections are proxied byte-for-byte to backend.
func startStallProxy(t *testing.T, backend string, stall int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var n int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if int(atomic.AddInt32(&n, 1)) <= stall {
				go func() {
					io.Copy(io.Discard, conn)
					conn.Close()
				}()
				continue
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				conn.Close()
				continue
			}
			go func() { io.Copy(up, conn); up.Close() }()
			go func() { io.Copy(conn, up); conn.Close() }()
		}
	}()
	return ln.Addr().String()
}

func TestStalledServerTimesOut(t *testing.T) {
	// A server that accepts and reads but never answers must not hang the
	// control loop: every attempt has a deadline, and the attempts are
	// bounded, so the request fails in bounded time.
	addr := startStallProxy(t, "", 1000)
	opts := ClientOptions{Timeout: 80 * time.Millisecond, Retries: 1, Backoff: 5 * time.Millisecond, Unit: 1}
	client, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	start := time.Now()
	_, err = client.ReadInput(0, 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("request against a stalled server succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
	// 2 attempts x 80ms + 5ms backoff, with slack for a slow CI box.
	if elapsed > 2*time.Second {
		t.Fatalf("bounded retries took %v", elapsed)
	}
}

func TestRetryReconnectsAfterStall(t *testing.T) {
	// First connection stalls mid-request; the retry must drop it, redial
	// through the proxy and complete against the live server.
	bank := NewMapBank()
	bank.SetInput(0, 4242)
	srv := NewServer(bank)
	backend, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	addr := startStallProxy(t, backend, 1)
	opts := ClientOptions{Timeout: 80 * time.Millisecond, Retries: 2, Backoff: 5 * time.Millisecond, Unit: 1}
	client, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	vals, err := client.ReadInput(0, 1)
	if err != nil {
		t.Fatalf("retry over a fresh connection failed: %v", err)
	}
	if vals[0] != 4242 {
		t.Fatalf("ReadInput = %v, want [4242]", vals)
	}
}

func TestExceptionNotRetried(t *testing.T) {
	// Exceptions are answers, not transport failures: exactly one request
	// must reach the server and the typed error must surface.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var reqs int32
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			header := make([]byte, 7)
			if _, err := io.ReadFull(conn, header); err != nil {
				return
			}
			pdu := make([]byte, binary.BigEndian.Uint16(header[4:6])-1)
			if _, err := io.ReadFull(conn, pdu); err != nil {
				return
			}
			atomic.AddInt32(&reqs, 1)
			resp := []byte{pdu[0] | 0x80, 0x02} // illegal data address
			out := make([]byte, 7+len(resp))
			copy(out[0:2], header[0:2])
			binary.BigEndian.PutUint16(out[4:6], uint16(len(resp)+1))
			out[6] = header[6]
			copy(out[7:], resp)
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
	}()

	opts := ClientOptions{Timeout: time.Second, Retries: 3, Backoff: time.Millisecond, Unit: 1}
	client, err := DialOptions(ln.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	_, err = client.ReadInput(7, 1)
	var exc *ExceptionError
	if !errors.As(err, &exc) {
		t.Fatalf("want *ExceptionError, got %v", err)
	}
	if exc.Code != 0x02 || exc.Function != 0x04 {
		t.Fatalf("exception = %+v", exc)
	}
	if got := atomic.LoadInt32(&reqs); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry on exceptions)", got)
	}
}

func TestTempEncoding(t *testing.T) {
	for _, c := range []float64{20, 23.47, 35} {
		if got := DecodeTempC(EncodeTempC(c)); math.Abs(got-c) > 0.005 {
			t.Fatalf("encode/decode %g -> %g", c, got)
		}
	}
	if EncodeTempC(-5) != 0 {
		t.Fatalf("negative temperatures should clamp to 0")
	}
}

func TestACUBridgeEndToEnd(t *testing.T) {
	tb, err := testbed.New(testbed.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb.UseProfile(workload.Constant{Util: 0.2})
	bridge := NewACUBridge(tb)
	_, client := startServer(t, bridge.Bank)

	// Controller writes the set-point through Modbus...
	if err := client.WriteHolding(RegSetpoint, EncodeTempC(26.5)); err != nil {
		t.Fatal(err)
	}
	if got := tb.ACU.Setpoint(); math.Abs(got-26.5) > 0.01 {
		t.Fatalf("set-point write did not reach the device: %g", got)
	}
	// ...out-of-range values are clamped by the device and read back.
	if err := client.WriteHolding(RegSetpoint, EncodeTempC(60)); err != nil {
		t.Fatal(err)
	}
	hold, err := client.ReadHolding(RegSetpoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeTempC(hold[0]); math.Abs(got-35) > 0.01 {
		t.Fatalf("clamped set-point reads back %g, want 35", got)
	}

	// Telemetry flows into input registers.
	s := tb.Advance()
	bridge.Refresh(s)
	vals, err := client.ReadInput(RegInletTemp0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeTempC(vals[0]); math.Abs(got-s.ACUTemps[0]) > 0.01 {
		t.Fatalf("inlet register %g, sample %g", got, s.ACUTemps[0])
	}
	if got := float64(vals[2]) / 1000; math.Abs(got-s.ACUPowerKW) > 0.01 {
		t.Fatalf("power register %g kW, sample %g", got, s.ACUPowerKW)
	}
}
