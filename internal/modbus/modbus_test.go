package modbus

import (
	"math"
	"sync"
	"testing"

	"tesla/internal/testbed"
	"tesla/internal/workload"
)

func startServer(t *testing.T, bank RegisterBank) (*Server, *Client) {
	t.Helper()
	srv := NewServer(bank)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func TestReadWriteRegisters(t *testing.T) {
	bank := NewMapBank()
	bank.SetHolding(0, 2300)
	bank.SetInput(0, 2412)
	bank.SetInput(1, 2398)
	_, client := startServer(t, bank)

	vals, err := client.ReadInput(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 2412 || vals[1] != 2398 {
		t.Fatalf("ReadInput = %v", vals)
	}
	hold, err := client.ReadHolding(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hold[0] != 2300 {
		t.Fatalf("ReadHolding = %v", hold)
	}
	if err := client.WriteHolding(0, 2550); err != nil {
		t.Fatal(err)
	}
	if v, _ := bank.Holding(0); v != 2550 {
		t.Fatalf("write did not land: %d", v)
	}
}

func TestExceptions(t *testing.T) {
	bank := NewMapBank()
	bank.SetHolding(0, 1)
	_, client := startServer(t, bank)

	if _, err := client.ReadInput(50, 1); err == nil {
		t.Fatalf("unmapped input register accepted")
	}
	if err := client.WriteHolding(99, 1); err == nil {
		t.Fatalf("unmapped holding register accepted")
	}
	if _, err := client.ReadHolding(0, 0); err == nil {
		t.Fatalf("zero-count read accepted")
	}
}

func TestOnWriteCallback(t *testing.T) {
	bank := NewMapBank()
	bank.SetHolding(0, 100)
	var mu sync.Mutex
	var got []uint16
	bank.OnWrite = func(addr, value uint16) {
		mu.Lock()
		got = append(got, value)
		mu.Unlock()
	}
	_, client := startServer(t, bank)
	if err := client.WriteHolding(0, 777); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != 777 {
		t.Fatalf("OnWrite observed %v", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	bank := NewMapBank()
	for i := uint16(0); i < 8; i++ {
		bank.SetInput(i, i*10)
	}
	srv := NewServer(bank)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 50; i++ {
				vals, err := client.ReadInput(0, 8)
				if err != nil {
					errs <- err
					return
				}
				if vals[3] != 30 {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTempEncoding(t *testing.T) {
	for _, c := range []float64{20, 23.47, 35} {
		if got := DecodeTempC(EncodeTempC(c)); math.Abs(got-c) > 0.005 {
			t.Fatalf("encode/decode %g -> %g", c, got)
		}
	}
	if EncodeTempC(-5) != 0 {
		t.Fatalf("negative temperatures should clamp to 0")
	}
}

func TestACUBridgeEndToEnd(t *testing.T) {
	tb, err := testbed.New(testbed.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb.UseProfile(workload.Constant{Util: 0.2})
	bridge := NewACUBridge(tb)
	_, client := startServer(t, bridge.Bank)

	// Controller writes the set-point through Modbus...
	if err := client.WriteHolding(RegSetpoint, EncodeTempC(26.5)); err != nil {
		t.Fatal(err)
	}
	if got := tb.ACU.Setpoint(); math.Abs(got-26.5) > 0.01 {
		t.Fatalf("set-point write did not reach the device: %g", got)
	}
	// ...out-of-range values are clamped by the device and read back.
	if err := client.WriteHolding(RegSetpoint, EncodeTempC(60)); err != nil {
		t.Fatal(err)
	}
	hold, err := client.ReadHolding(RegSetpoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeTempC(hold[0]); math.Abs(got-35) > 0.01 {
		t.Fatalf("clamped set-point reads back %g, want 35", got)
	}

	// Telemetry flows into input registers.
	s := tb.Advance()
	bridge.Refresh(s)
	vals, err := client.ReadInput(RegInletTemp0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeTempC(vals[0]); math.Abs(got-s.ACUTemps[0]) > 0.01 {
		t.Fatalf("inlet register %g, sample %g", got, s.ACUTemps[0])
	}
	if got := float64(vals[2]) / 1000; math.Abs(got-s.ACUPowerKW) > 0.01 {
		t.Fatalf("power register %g kW, sample %g", got, s.ACUPowerKW)
	}
}
