// Package modbus implements the subset of Modbus/TCP the TESLA deployment
// uses to talk to the ACU (paper §4): reading input registers (sensor
// telemetry), reading holding registers, and writing a single holding
// register (the set-point). Frames follow the standard MBAP header; the
// server dispatches registers through pluggable handlers so the simulated
// ACU can be mapped exactly like the vendor unit.
package modbus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Function codes implemented.
const (
	FuncReadHolding = 0x03
	FuncReadInput   = 0x04
	FuncWriteSingle = 0x06
)

// Exception codes.
const (
	ExcIllegalFunction = 0x01
	ExcIllegalAddress  = 0x02
)

// RegisterBank is the server-side register model.
type RegisterBank interface {
	// ReadInput returns the value of input register addr.
	ReadInput(addr uint16) (uint16, bool)
	// ReadHolding returns the value of holding register addr.
	ReadHolding(addr uint16) (uint16, bool)
	// WriteHolding stores value into holding register addr.
	WriteHolding(addr, value uint16) bool
}

// MapBank is a simple RegisterBank over maps, safe for concurrent use.
type MapBank struct {
	mu      sync.RWMutex
	input   map[uint16]uint16
	holding map[uint16]uint16
	// OnWrite, if set, observes successful holding-register writes.
	OnWrite func(addr, value uint16)
}

// NewMapBank returns an empty bank.
func NewMapBank() *MapBank {
	return &MapBank{input: map[uint16]uint16{}, holding: map[uint16]uint16{}}
}

// SetInput updates an input register (device side).
func (b *MapBank) SetInput(addr, value uint16) {
	b.mu.Lock()
	b.input[addr] = value
	b.mu.Unlock()
}

// SetHolding updates a holding register (device side).
func (b *MapBank) SetHolding(addr, value uint16) {
	b.mu.Lock()
	b.holding[addr] = value
	b.mu.Unlock()
}

// Holding reads back a holding register (device side).
func (b *MapBank) Holding(addr uint16) (uint16, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.holding[addr]
	return v, ok
}

// ReadInput implements RegisterBank.
func (b *MapBank) ReadInput(addr uint16) (uint16, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.input[addr]
	return v, ok
}

// ReadHolding implements RegisterBank.
func (b *MapBank) ReadHolding(addr uint16) (uint16, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.holding[addr]
	return v, ok
}

// WriteHolding implements RegisterBank.
func (b *MapBank) WriteHolding(addr, value uint16) bool {
	b.mu.Lock()
	_, exists := b.holding[addr]
	if exists {
		b.holding[addr] = value
	}
	onWrite := b.OnWrite
	b.mu.Unlock()
	if exists && onWrite != nil {
		onWrite(addr, value)
	}
	return exists
}

// Server accepts Modbus/TCP connections and serves a RegisterBank.
type Server struct {
	bank     RegisterBank
	listener net.Listener
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
}

// NewServer wraps a bank.
func NewServer(bank RegisterBank) *Server {
	return &Server{bank: bank}
}

// Start listens on addr and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("modbus: listen: %w", err)
	}
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the server and waits for connection handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn processes request frames until the peer disconnects.
func (s *Server) serveConn(conn net.Conn) {
	header := make([]byte, 7)
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		txID := binary.BigEndian.Uint16(header[0:2])
		length := binary.BigEndian.Uint16(header[4:6])
		unit := header[6]
		if length < 2 || length > 260 {
			return // malformed frame; drop the connection
		}
		pdu := make([]byte, length-1)
		if _, err := io.ReadFull(conn, pdu); err != nil {
			return
		}
		resp := s.handlePDU(pdu)
		frame := make([]byte, 7+len(resp))
		binary.BigEndian.PutUint16(frame[0:2], txID)
		binary.BigEndian.PutUint16(frame[2:4], 0) // protocol id
		binary.BigEndian.PutUint16(frame[4:6], uint16(len(resp)+1))
		frame[6] = unit
		copy(frame[7:], resp)
		if _, err := conn.Write(frame); err != nil {
			return
		}
	}
}

func exception(fn, code byte) []byte { return []byte{fn | 0x80, code} }

// handlePDU executes one request PDU and returns the response PDU.
func (s *Server) handlePDU(pdu []byte) []byte {
	if len(pdu) < 1 {
		return exception(0, ExcIllegalFunction)
	}
	fn := pdu[0]
	switch fn {
	case FuncReadHolding, FuncReadInput:
		if len(pdu) != 5 {
			return exception(fn, ExcIllegalAddress)
		}
		addr := binary.BigEndian.Uint16(pdu[1:3])
		count := binary.BigEndian.Uint16(pdu[3:5])
		if count == 0 || count > 125 {
			return exception(fn, ExcIllegalAddress)
		}
		out := make([]byte, 2+2*int(count))
		out[0] = fn
		out[1] = byte(2 * count)
		for i := uint16(0); i < count; i++ {
			var v uint16
			var ok bool
			if fn == FuncReadInput {
				v, ok = s.bank.ReadInput(addr + i)
			} else {
				v, ok = s.bank.ReadHolding(addr + i)
			}
			if !ok {
				return exception(fn, ExcIllegalAddress)
			}
			binary.BigEndian.PutUint16(out[2+2*i:], v)
		}
		return out
	case FuncWriteSingle:
		if len(pdu) != 5 {
			return exception(fn, ExcIllegalAddress)
		}
		addr := binary.BigEndian.Uint16(pdu[1:3])
		value := binary.BigEndian.Uint16(pdu[3:5])
		if !s.bank.WriteHolding(addr, value) {
			return exception(fn, ExcIllegalAddress)
		}
		return append([]byte(nil), pdu...) // echo on success
	default:
		return exception(fn, ExcIllegalFunction)
	}
}

// ExceptionError is a Modbus exception response — a well-formed answer from
// the device, not a transport failure, so the client never retries it.
type ExceptionError struct {
	Function byte
	Code     byte
}

func (e *ExceptionError) Error() string {
	return fmt.Sprintf("modbus: exception 0x%02x for function 0x%02x", e.Code, e.Function)
}

// ClientOptions configure the master's robustness behavior. A control loop
// polling an ACU bridge over a flaky network must never hang forever on a
// stalled peer: every request gets an I/O deadline, and transient transport
// failures are retried over a fresh connection with exponential backoff.
type ClientOptions struct {
	// Timeout bounds one request round-trip (write + response read) and the
	// TCP (re)connect. 0 disables deadlines — only suitable for tests.
	Timeout time.Duration
	// Retries is how many additional attempts a transient failure gets.
	// Exception responses are never retried.
	Retries int
	// Backoff is the sleep before the first retry; it doubles per attempt.
	Backoff time.Duration
	// Unit is the Modbus unit identifier stamped on every request.
	Unit byte
}

// DefaultClientOptions suit a one-minute control step talking to an ACU
// bridge on the local network.
func DefaultClientOptions() ClientOptions {
	return ClientOptions{
		Timeout: 2 * time.Second,
		Retries: 2,
		Backoff: 50 * time.Millisecond,
		Unit:    1,
	}
}

// Client is a Modbus/TCP master.
type Client struct {
	mu   sync.Mutex
	addr string
	opts ClientOptions
	conn net.Conn // nil after a transport failure until the next redial
	txID uint16
}

// Dial connects to a Modbus server with DefaultClientOptions.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, DefaultClientOptions())
}

// DialOptions connects to a Modbus server with explicit options.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, fmt.Errorf("modbus: dial: %w", err)
	}
	return &Client{addr: addr, opts: opts, conn: conn}, nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// roundTrip sends a PDU and returns the response PDU, retrying transient
// transport failures over a fresh connection. After a mid-frame timeout the
// TCP stream may hold a stale half-response, so the failed connection is
// always dropped rather than reused.
func (c *Client) roundTrip(pdu []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	backoff := c.opts.Backoff
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 && backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if c.conn == nil {
			conn, err := net.DialTimeout("tcp", c.addr, c.opts.Timeout)
			if err != nil {
				lastErr = fmt.Errorf("redial: %w", err)
				continue
			}
			c.conn = conn
		}
		resp, err := c.exchange(pdu)
		if err == nil {
			return resp, nil
		}
		var exc *ExceptionError
		if errors.As(err, &exc) {
			return nil, err
		}
		lastErr = err
		c.conn.Close()
		c.conn = nil
	}
	return nil, fmt.Errorf("modbus: request failed after %d attempt(s): %w", c.opts.Retries+1, lastErr)
}

// exchange performs one framed request/response on the live connection.
func (c *Client) exchange(pdu []byte) ([]byte, error) {
	c.txID++
	frame := make([]byte, 7+len(pdu))
	binary.BigEndian.PutUint16(frame[0:2], c.txID)
	binary.BigEndian.PutUint16(frame[2:4], 0)
	binary.BigEndian.PutUint16(frame[4:6], uint16(len(pdu)+1))
	frame[6] = c.opts.Unit
	copy(frame[7:], pdu)
	if c.opts.Timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.opts.Timeout)); err != nil {
			return nil, err
		}
	}
	if _, err := c.conn.Write(frame); err != nil {
		return nil, err
	}
	header := make([]byte, 7)
	if _, err := io.ReadFull(c.conn, header); err != nil {
		return nil, err
	}
	if got := binary.BigEndian.Uint16(header[0:2]); got != c.txID {
		return nil, fmt.Errorf("modbus: transaction id mismatch: %d != %d", got, c.txID)
	}
	length := binary.BigEndian.Uint16(header[4:6])
	if length < 2 || length > 260 {
		return nil, fmt.Errorf("modbus: bad response length %d", length)
	}
	resp := make([]byte, length-1)
	if _, err := io.ReadFull(c.conn, resp); err != nil {
		return nil, err
	}
	if len(resp) >= 2 && resp[0]&0x80 != 0 {
		return nil, &ExceptionError{Function: resp[0] & 0x7f, Code: resp[1]}
	}
	return resp, nil
}

func (c *Client) readRegisters(fn byte, addr, count uint16) ([]uint16, error) {
	pdu := make([]byte, 5)
	pdu[0] = fn
	binary.BigEndian.PutUint16(pdu[1:3], addr)
	binary.BigEndian.PutUint16(pdu[3:5], count)
	resp, err := c.roundTrip(pdu)
	if err != nil {
		return nil, err
	}
	if len(resp) < 2 || resp[0] != fn || int(resp[1]) != 2*int(count) || len(resp) != 2+2*int(count) {
		return nil, fmt.Errorf("modbus: malformed read response")
	}
	out := make([]uint16, count)
	for i := range out {
		out[i] = binary.BigEndian.Uint16(resp[2+2*i:])
	}
	return out, nil
}

// ReadInput reads count input registers starting at addr.
func (c *Client) ReadInput(addr, count uint16) ([]uint16, error) {
	return c.readRegisters(FuncReadInput, addr, count)
}

// ReadHolding reads count holding registers starting at addr.
func (c *Client) ReadHolding(addr, count uint16) ([]uint16, error) {
	return c.readRegisters(FuncReadHolding, addr, count)
}

// WriteHolding writes one holding register.
func (c *Client) WriteHolding(addr, value uint16) error {
	pdu := make([]byte, 5)
	pdu[0] = FuncWriteSingle
	binary.BigEndian.PutUint16(pdu[1:3], addr)
	binary.BigEndian.PutUint16(pdu[3:5], value)
	resp, err := c.roundTrip(pdu)
	if err != nil {
		return err
	}
	if len(resp) != 5 || resp[0] != FuncWriteSingle {
		return fmt.Errorf("modbus: malformed write response")
	}
	return nil
}
