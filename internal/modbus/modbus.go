// Package modbus implements the subset of Modbus/TCP the TESLA deployment
// uses to talk to the ACU (paper §4): reading input registers (sensor
// telemetry), reading holding registers, and writing a single holding
// register (the set-point). Frames follow the standard MBAP header; the
// server dispatches registers through pluggable handlers so the simulated
// ACU can be mapped exactly like the vendor unit.
package modbus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Function codes implemented.
const (
	FuncReadHolding = 0x03
	FuncReadInput   = 0x04
	FuncWriteSingle = 0x06
)

// Exception codes.
const (
	ExcIllegalFunction = 0x01
	ExcIllegalAddress  = 0x02
)

// ErrClosed is returned by client requests issued against (or interrupted
// by) a closed client.
var ErrClosed = errors.New("modbus: client closed")

// RegisterBank is the server-side register model.
type RegisterBank interface {
	// ReadInput returns the value of input register addr.
	ReadInput(addr uint16) (uint16, bool)
	// ReadHolding returns the value of holding register addr.
	ReadHolding(addr uint16) (uint16, bool)
	// WriteHolding stores value into holding register addr.
	WriteHolding(addr, value uint16) bool
}

// MapBank is a simple RegisterBank over maps, safe for concurrent use.
type MapBank struct {
	mu      sync.RWMutex
	input   map[uint16]uint16
	holding map[uint16]uint16
	// OnWrite, if set, observes successful holding-register writes.
	OnWrite func(addr, value uint16)
}

// NewMapBank returns an empty bank.
func NewMapBank() *MapBank {
	return &MapBank{input: map[uint16]uint16{}, holding: map[uint16]uint16{}}
}

// SetInput updates an input register (device side).
func (b *MapBank) SetInput(addr, value uint16) {
	b.mu.Lock()
	b.input[addr] = value
	b.mu.Unlock()
}

// SetHolding updates a holding register (device side).
func (b *MapBank) SetHolding(addr, value uint16) {
	b.mu.Lock()
	b.holding[addr] = value
	b.mu.Unlock()
}

// Holding reads back a holding register (device side).
func (b *MapBank) Holding(addr uint16) (uint16, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.holding[addr]
	return v, ok
}

// ReadInput implements RegisterBank.
func (b *MapBank) ReadInput(addr uint16) (uint16, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.input[addr]
	return v, ok
}

// ReadHolding implements RegisterBank.
func (b *MapBank) ReadHolding(addr uint16) (uint16, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.holding[addr]
	return v, ok
}

// WriteHolding implements RegisterBank.
func (b *MapBank) WriteHolding(addr, value uint16) bool {
	b.mu.Lock()
	_, exists := b.holding[addr]
	if exists {
		b.holding[addr] = value
	}
	onWrite := b.OnWrite
	b.mu.Unlock()
	if exists && onWrite != nil {
		onWrite(addr, value)
	}
	return exists
}

// Server accepts Modbus/TCP connections and serves a RegisterBank.
type Server struct {
	bank     RegisterBank
	listener net.Listener
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
}

// NewServer wraps a bank.
func NewServer(bank RegisterBank) *Server {
	return &Server{bank: bank, conns: map[net.Conn]struct{}{}}
}

// Start listens on addr and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("modbus: listen: %w", err)
	}
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the server: no new connections are accepted, live connections
// are closed (unblocking their handlers mid-read), and every handler has
// exited by the time Close returns — even if the peers stay silent forever.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	s.wg.Wait()
	return err
}

// DisconnectAll drops every live connection while continuing to listen — a
// chaos hook for exercising client reconnect paths under load.
func (s *Server) DisconnectAll() {
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
}

// track registers a live connection; it reports false (and closes the
// connection) when the server is already shutting down, so a conn accepted
// in the Close race can never outlive Close.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		conn.Close()
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn processes request frames until the peer disconnects or the
// server closes the connection under it.
func (s *Server) serveConn(conn net.Conn) {
	header := make([]byte, 7)
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		if s.isClosed() {
			return
		}
		txID := binary.BigEndian.Uint16(header[0:2])
		proto := binary.BigEndian.Uint16(header[2:4])
		length := binary.BigEndian.Uint16(header[4:6])
		unit := header[6]
		if proto != 0 {
			return // not Modbus/TCP; drop the connection
		}
		if length < 2 || length > 260 {
			return // malformed frame; drop the connection
		}
		pdu := make([]byte, length-1)
		if _, err := io.ReadFull(conn, pdu); err != nil {
			return
		}
		resp := s.handlePDU(pdu)
		frame := make([]byte, 7+len(resp))
		binary.BigEndian.PutUint16(frame[0:2], txID)
		binary.BigEndian.PutUint16(frame[2:4], 0) // protocol id
		binary.BigEndian.PutUint16(frame[4:6], uint16(len(resp)+1))
		frame[6] = unit
		copy(frame[7:], resp)
		if _, err := conn.Write(frame); err != nil {
			return
		}
	}
}

func exception(fn, code byte) []byte { return []byte{fn | 0x80, code} }

// handlePDU executes one request PDU and returns the response PDU.
func (s *Server) handlePDU(pdu []byte) []byte {
	if len(pdu) < 1 {
		return exception(0, ExcIllegalFunction)
	}
	fn := pdu[0]
	switch fn {
	case FuncReadHolding, FuncReadInput:
		if len(pdu) != 5 {
			return exception(fn, ExcIllegalAddress)
		}
		addr := binary.BigEndian.Uint16(pdu[1:3])
		count := binary.BigEndian.Uint16(pdu[3:5])
		if count == 0 || count > 125 {
			return exception(fn, ExcIllegalAddress)
		}
		// addr+i would wrap past 0xFFFF in uint16 arithmetic and silently
		// read register 0; the register space simply ends at 0xFFFF.
		if int(addr)+int(count) > 0x10000 {
			return exception(fn, ExcIllegalAddress)
		}
		out := make([]byte, 2+2*int(count))
		out[0] = fn
		out[1] = byte(2 * count)
		for i := uint16(0); i < count; i++ {
			var v uint16
			var ok bool
			if fn == FuncReadInput {
				v, ok = s.bank.ReadInput(addr + i)
			} else {
				v, ok = s.bank.ReadHolding(addr + i)
			}
			if !ok {
				return exception(fn, ExcIllegalAddress)
			}
			binary.BigEndian.PutUint16(out[2+2*i:], v)
		}
		return out
	case FuncWriteSingle:
		if len(pdu) != 5 {
			return exception(fn, ExcIllegalAddress)
		}
		addr := binary.BigEndian.Uint16(pdu[1:3])
		value := binary.BigEndian.Uint16(pdu[3:5])
		if !s.bank.WriteHolding(addr, value) {
			return exception(fn, ExcIllegalAddress)
		}
		return append([]byte(nil), pdu...) // echo on success
	default:
		return exception(fn, ExcIllegalFunction)
	}
}

// ExceptionError is a Modbus exception response — a well-formed answer from
// the device, not a transport failure, so the client never retries it.
type ExceptionError struct {
	Function byte
	Code     byte
}

func (e *ExceptionError) Error() string {
	return fmt.Sprintf("modbus: exception 0x%02x for function 0x%02x", e.Code, e.Function)
}

// ClientOptions configure the master's robustness behavior. A control loop
// polling an ACU bridge over a flaky network must never hang forever on a
// stalled peer: every request gets an I/O deadline, and transient transport
// failures are retried over a fresh connection with exponential backoff.
type ClientOptions struct {
	// Timeout bounds one request round-trip (write + response read) and the
	// TCP (re)connect. 0 disables deadlines — only suitable for tests.
	Timeout time.Duration
	// Retries is how many additional attempts a transient failure gets.
	// Exception responses are never retried.
	Retries int
	// Backoff is the sleep before the first retry; it doubles per attempt.
	Backoff time.Duration
	// Unit is the Modbus unit identifier stamped on every request.
	Unit byte
}

// DefaultClientOptions suit a one-minute control step talking to an ACU
// bridge on the local network.
func DefaultClientOptions() ClientOptions {
	return ClientOptions{
		Timeout: 2 * time.Second,
		Retries: 2,
		Backoff: 50 * time.Millisecond,
		Unit:    1,
	}
}

// Client is a Modbus/TCP master, safe for concurrent use.
type Client struct {
	addr string
	opts ClientOptions

	// exMu serializes wire exchanges: exactly one request owns the TCP
	// stream at a time. It is held only for the exchange itself — never
	// across backoff sleeps or redials — so concurrent callers interleave
	// between a retrying request's attempts instead of queueing behind its
	// whole backoff ladder.
	exMu sync.Mutex
	txID uint16 // guarded by exMu

	// mu guards the connection pointer and lifecycle flag. Close takes only
	// this lock, so it returns promptly even while an exchange is blocked in
	// I/O — closing the conn unblocks that I/O with an error.
	mu     sync.Mutex
	conn   net.Conn // nil after a transport failure until the next redial
	closed bool
	done   chan struct{} // closed by Close; aborts backoff sleeps
}

// Dial connects to a Modbus server with DefaultClientOptions.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, DefaultClientOptions())
}

// DialOptions connects to a Modbus server with explicit options.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, fmt.Errorf("modbus: dial: %w", err)
	}
	return &Client{addr: addr, opts: opts, conn: conn, done: make(chan struct{})}, nil
}

// Close terminates the connection and aborts in-flight requests: blocked
// I/O errors out when the conn closes, and retry backoffs are interrupted.
// Close never waits for a retry ladder to finish.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	close(c.done)
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// ensureConn returns the live connection, redialing if the last attempt
// dropped it. The dial happens with no lock held; if a concurrent caller
// won the redial race, its connection is kept and ours discarded.
func (c *Client) ensureConn() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if conn := c.conn; conn != nil {
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.Timeout)
	if err != nil {
		return nil, fmt.Errorf("redial: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if c.conn == nil {
		c.conn = conn
		return conn, nil
	}
	conn.Close()
	return c.conn, nil
}

// dropConn discards a failed connection. After a mid-frame timeout the TCP
// stream may hold a stale half-response, so a failed connection is never
// reused.
func (c *Client) dropConn(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
}

// roundTrip sends a PDU and returns the response PDU, retrying transient
// transport failures over a fresh connection. No lock is held across the
// backoff sleeps or redials — only the exchange itself is serialized — so a
// retrying request never blocks its siblings or Close.
func (c *Client) roundTrip(pdu []byte) ([]byte, error) {
	var lastErr error
	backoff := c.opts.Backoff
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 && backoff > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-c.done:
				t.Stop()
				return nil, ErrClosed
			case <-t.C:
			}
			backoff *= 2
		}
		conn, err := c.ensureConn()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		resp, err := c.exchange(conn, pdu)
		if err == nil {
			return resp, nil
		}
		var exc *ExceptionError
		if errors.As(err, &exc) {
			return nil, err
		}
		c.dropConn(conn)
		if c.isClosed() {
			return nil, ErrClosed
		}
		lastErr = err
	}
	return nil, fmt.Errorf("modbus: request failed after %d attempt(s): %w", c.opts.Retries+1, lastErr)
}

// exchange performs one framed request/response on conn. The exchange lock
// guarantees the response read belongs to the request written, so the
// transaction and unit identifiers must both match ours.
func (c *Client) exchange(conn net.Conn, pdu []byte) ([]byte, error) {
	c.exMu.Lock()
	defer c.exMu.Unlock()
	c.txID++
	txID := c.txID
	frame := make([]byte, 7+len(pdu))
	binary.BigEndian.PutUint16(frame[0:2], txID)
	binary.BigEndian.PutUint16(frame[2:4], 0)
	binary.BigEndian.PutUint16(frame[4:6], uint16(len(pdu)+1))
	frame[6] = c.opts.Unit
	copy(frame[7:], pdu)
	if c.opts.Timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(c.opts.Timeout)); err != nil {
			return nil, err
		}
	}
	if _, err := conn.Write(frame); err != nil {
		return nil, err
	}
	header := make([]byte, 7)
	if _, err := io.ReadFull(conn, header); err != nil {
		return nil, err
	}
	if got := binary.BigEndian.Uint16(header[0:2]); got != txID {
		return nil, fmt.Errorf("modbus: transaction id mismatch: %d != %d", got, txID)
	}
	length := binary.BigEndian.Uint16(header[4:6])
	if length < 2 || length > 260 {
		return nil, fmt.Errorf("modbus: bad response length %d", length)
	}
	if header[6] != c.opts.Unit {
		return nil, fmt.Errorf("modbus: response unit id %d, want %d", header[6], c.opts.Unit)
	}
	resp := make([]byte, length-1)
	if _, err := io.ReadFull(conn, resp); err != nil {
		return nil, err
	}
	if len(resp) >= 2 && resp[0]&0x80 != 0 {
		return nil, &ExceptionError{Function: resp[0] & 0x7f, Code: resp[1]}
	}
	return resp, nil
}

func (c *Client) readRegisters(fn byte, addr, count uint16) ([]uint16, error) {
	pdu := make([]byte, 5)
	pdu[0] = fn
	binary.BigEndian.PutUint16(pdu[1:3], addr)
	binary.BigEndian.PutUint16(pdu[3:5], count)
	resp, err := c.roundTrip(pdu)
	if err != nil {
		return nil, err
	}
	if len(resp) < 2 || resp[0] != fn || int(resp[1]) != 2*int(count) || len(resp) != 2+2*int(count) {
		return nil, fmt.Errorf("modbus: malformed read response")
	}
	out := make([]uint16, count)
	for i := range out {
		out[i] = binary.BigEndian.Uint16(resp[2+2*i:])
	}
	return out, nil
}

// ReadInput reads count input registers starting at addr.
func (c *Client) ReadInput(addr, count uint16) ([]uint16, error) {
	return c.readRegisters(FuncReadInput, addr, count)
}

// ReadHolding reads count holding registers starting at addr.
func (c *Client) ReadHolding(addr, count uint16) ([]uint16, error) {
	return c.readRegisters(FuncReadHolding, addr, count)
}

// EchoMismatchError reports a write whose echoed address or value differs
// from the request — a reordered or corrupted response that must not be
// treated as a confirmed actuation. The safety supervisor's
// command-echo-mismatch rule consumes this as a failed set-point write.
type EchoMismatchError struct {
	Addr, Value         uint16 // requested
	EchoAddr, EchoValue uint16 // echoed by the device
}

func (e *EchoMismatchError) Error() string {
	return fmt.Sprintf("modbus: write echo mismatch: wrote %d=%d, device echoed %d=%d",
		e.Addr, e.Value, e.EchoAddr, e.EchoValue)
}

// WriteHolding writes one holding register. The device confirms a write by
// echoing the request; an echo naming a different register or value is a
// mismatch error, never a silent success.
func (c *Client) WriteHolding(addr, value uint16) error {
	pdu := make([]byte, 5)
	pdu[0] = FuncWriteSingle
	binary.BigEndian.PutUint16(pdu[1:3], addr)
	binary.BigEndian.PutUint16(pdu[3:5], value)
	resp, err := c.roundTrip(pdu)
	if err != nil {
		return err
	}
	if len(resp) != 5 || resp[0] != FuncWriteSingle {
		return fmt.Errorf("modbus: malformed write response")
	}
	echoAddr := binary.BigEndian.Uint16(resp[1:3])
	echoValue := binary.BigEndian.Uint16(resp[3:5])
	if echoAddr != addr || echoValue != value {
		return &EchoMismatchError{Addr: addr, Value: value, EchoAddr: echoAddr, EchoValue: echoValue}
	}
	return nil
}
