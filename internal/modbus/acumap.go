package modbus

import "tesla/internal/testbed"

// ACU register map, scaled the way industrial units encode floats in
// 16-bit registers (×100 for temperatures, watts for power).
const (
	// Holding registers.
	RegSetpoint uint16 = 0 // set-point °C × 100

	// Input registers.
	RegInletTemp0 uint16 = 0 // inlet sensor 0, °C × 100
	RegInletTemp1 uint16 = 1 // inlet sensor 1, °C × 100
	RegPowerW     uint16 = 2 // instantaneous draw, W
	RegDuty       uint16 = 3 // compressor duty × 1000
)

// ACUBridge exposes a simulated testbed's ACU through a Modbus register
// bank: controller writes to the set-point holding register are latched
// into the device, and each telemetry sample refreshes the input registers.
type ACUBridge struct {
	Bank *MapBank
	tb   *testbed.Testbed
}

// NewACUBridge wires a testbed to a fresh register bank.
func NewACUBridge(tb *testbed.Testbed) *ACUBridge {
	b := &ACUBridge{Bank: NewMapBank(), tb: tb}
	b.Bank.SetHolding(RegSetpoint, encodeTempC(tb.ACU.Setpoint()))
	for _, reg := range []uint16{RegInletTemp0, RegInletTemp1, RegPowerW, RegDuty} {
		b.Bank.SetInput(reg, 0)
	}
	b.Bank.OnWrite = func(addr, value uint16) {
		if addr == RegSetpoint {
			latched := tb.SetSetpoint(decodeTempC(value))
			// Reflect the clamped value so masters read back reality.
			b.Bank.SetHolding(RegSetpoint, encodeTempC(latched))
		}
	}
	return b
}

// Refresh publishes a telemetry sample into the input registers.
func (b *ACUBridge) Refresh(s testbed.Sample) {
	if len(s.ACUTemps) > 0 {
		b.Bank.SetInput(RegInletTemp0, encodeTempC(s.ACUTemps[0]))
	}
	if len(s.ACUTemps) > 1 {
		b.Bank.SetInput(RegInletTemp1, encodeTempC(s.ACUTemps[1]))
	}
	b.Bank.SetInput(RegPowerW, clampU16(s.ACUPowerKW*1000))
	b.Bank.SetInput(RegDuty, clampU16(s.ACUDuty*1000))
}

func encodeTempC(c float64) uint16 { return clampU16(c * 100) }

func decodeTempC(v uint16) float64 { return float64(v) / 100 }

// DecodeTempC converts a ×100 register value to °C (for masters).
func DecodeTempC(v uint16) float64 { return decodeTempC(v) }

// EncodeTempC converts °C to the ×100 register encoding (for masters).
func EncodeTempC(c float64) uint16 { return encodeTempC(c) }

// QuantizeTempC is the centidegree rounding a temperature suffers when it
// crosses the ACU register map (°C → ×100 register → °C). It is pure and
// idempotent: Encode(Quantize(x)) == Encode(x), so a value quantized once
// survives any number of further register round-trips bit-exactly. Hosts
// that actuate through Modbus hand this to the control loop's set-point
// quantizer so replayed, migrated and reference trajectories apply the
// exact same field-bus rounding as the live gateway write path.
func QuantizeTempC(c float64) float64 { return decodeTempC(encodeTempC(c)) }

func clampU16(v float64) uint16 {
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return uint16(v + 0.5)
}
