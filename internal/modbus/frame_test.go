package modbus

import (
	"encoding/binary"
	"testing"
	"time"
)

// TestHandlePDUTable drives the server's PDU dispatcher with well-formed,
// truncated and out-of-range requests. Every malformed PDU must come back
// as an exception — never a panic, never a silent wrong answer.
func TestHandlePDUTable(t *testing.T) {
	bank := NewMapBank()
	bank.SetInput(0, 100)
	bank.SetInput(1, 101)
	bank.SetHolding(5, 500)
	bank.SetInput(0xFFFF, 9)
	srv := NewServer(bank)

	rd := func(fn byte, addr, count uint16) []byte {
		pdu := make([]byte, 5)
		pdu[0] = fn
		binary.BigEndian.PutUint16(pdu[1:3], addr)
		binary.BigEndian.PutUint16(pdu[3:5], count)
		return pdu
	}
	cases := []struct {
		name    string
		pdu     []byte
		excCode byte   // 0 = expect success
		want    []byte // non-nil: exact expected response
	}{
		{name: "empty pdu", pdu: nil, excCode: ExcIllegalFunction},
		{name: "unknown function", pdu: []byte{0x2b, 0, 0}, excCode: ExcIllegalFunction},
		{name: "read input ok", pdu: rd(FuncReadInput, 0, 2), want: []byte{FuncReadInput, 4, 0, 100, 0, 101}},
		{name: "read holding ok", pdu: rd(FuncReadHolding, 5, 1), want: []byte{FuncReadHolding, 2, 0x01, 0xf4}},
		{name: "read truncated", pdu: []byte{FuncReadInput, 0, 0}, excCode: ExcIllegalAddress},
		{name: "read oversized pdu", pdu: append(rd(FuncReadInput, 0, 1), 0xff), excCode: ExcIllegalAddress},
		{name: "read count zero", pdu: rd(FuncReadInput, 0, 0), excCode: ExcIllegalAddress},
		{name: "read count over 125", pdu: rd(FuncReadInput, 0, 126), excCode: ExcIllegalAddress},
		{name: "read unmapped", pdu: rd(FuncReadInput, 400, 1), excCode: ExcIllegalAddress},
		{name: "read wraparound", pdu: rd(FuncReadInput, 0xFFFF, 2), excCode: ExcIllegalAddress},
		{name: "read last register", pdu: rd(FuncReadInput, 0xFFFF, 1), want: []byte{FuncReadInput, 2, 0, 9}},
		{name: "write ok echoes", pdu: rd(FuncWriteSingle, 5, 1234), want: rd(FuncWriteSingle, 5, 1234)},
		{name: "write truncated", pdu: []byte{FuncWriteSingle, 0, 5}, excCode: ExcIllegalAddress},
		{name: "write unmapped", pdu: rd(FuncWriteSingle, 77, 1), excCode: ExcIllegalAddress},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := srv.handlePDU(tc.pdu)
			if tc.excCode != 0 {
				if len(resp) != 2 || resp[0]&0x80 == 0 || resp[1] != tc.excCode {
					t.Fatalf("response % x, want exception %#02x", resp, tc.excCode)
				}
				return
			}
			if tc.want != nil {
				if string(resp) != string(tc.want) {
					t.Fatalf("response % x, want % x", resp, tc.want)
				}
			}
		})
	}
}

// FuzzHandlePDU asserts the dispatcher's structural invariants over
// arbitrary request bytes: no panic, and every response is either a
// two-byte exception or a well-formed success for the requested function.
func FuzzHandlePDU(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{FuncReadInput, 0, 0, 0, 1})
	f.Add([]byte{FuncReadHolding, 0xff, 0xfe, 0, 3})
	f.Add([]byte{FuncWriteSingle, 0, 0, 0x30, 0x39})
	f.Add([]byte{0x10, 0, 0, 0, 2, 4, 0, 1, 0, 2})
	bank := NewMapBank()
	for i := uint16(0); i < 16; i++ {
		bank.SetInput(i, i)
		bank.SetHolding(i, i)
	}
	bank.SetInput(0xFFFE, 1)
	bank.SetInput(0xFFFF, 2)
	srv := NewServer(bank)
	f.Fuzz(func(t *testing.T, pdu []byte) {
		resp := srv.handlePDU(pdu)
		if len(resp) < 2 {
			t.Fatalf("pdu % x: %d-byte response", pdu, len(resp))
		}
		if resp[0]&0x80 != 0 {
			if len(resp) != 2 {
				t.Fatalf("pdu % x: %d-byte exception", pdu, len(resp))
			}
			if len(pdu) > 0 && resp[0]&0x7f != pdu[0] {
				t.Fatalf("pdu % x: exception for function %#02x", pdu, resp[0]&0x7f)
			}
			return
		}
		// Success: must mirror the function code and, for reads, carry
		// exactly the advertised byte count.
		if len(pdu) == 0 || resp[0] != pdu[0] {
			t.Fatalf("pdu % x: response function %#02x", pdu, resp[0])
		}
		switch pdu[0] {
		case FuncReadInput, FuncReadHolding:
			count := binary.BigEndian.Uint16(pdu[3:5])
			if int(resp[1]) != 2*int(count) || len(resp) != 2+2*int(count) {
				t.Fatalf("pdu % x: read response shape % x", pdu, resp[:2])
			}
			if int(binary.BigEndian.Uint16(pdu[1:3]))+int(count) > 0x10000 {
				t.Fatalf("pdu % x: wraparound read succeeded", pdu)
			}
		case FuncWriteSingle:
			if len(resp) != 5 || string(resp) != string(pdu) {
				t.Fatalf("pdu % x: write echo % x", pdu, resp)
			}
		}
	})
}

// TestClientFramingErrors drives the client's response parser with broken
// wire bytes. Every case must surface an error in bounded time — a framing
// bug here is what turns a flaky device into a hung control loop.
func TestClientFramingErrors(t *testing.T) {
	cases := []struct {
		name    string
		respond func(req []byte) []byte
	}{
		{"truncated mbap header", func(req []byte) []byte { return []byte{0, 1, 0} }},
		{"length zero", func(req []byte) []byte {
			return []byte{req[0], req[1], 0, 0, 0, 0, 1}
		}},
		{"length one", func(req []byte) []byte {
			return []byte{req[0], req[1], 0, 0, 0, 1, 1}
		}},
		{"length over 260", func(req []byte) []byte {
			return []byte{req[0], req[1], 0, 0, 0xff, 0xff, 1}
		}},
		{"truncated body", func(req []byte) []byte {
			// Header promises 4 PDU bytes, delivers 1.
			return []byte{req[0], req[1], 0, 0, 0, 5, 1, FuncReadInput}
		}},
		{"wrong transaction id", func(req []byte) []byte {
			resp := frameFor(req, []byte{req[7], 2, 0, 1})
			resp[0] ^= 0xff
			return resp
		}},
		{"byte count disagrees", func(req []byte) []byte {
			return frameFor(req, []byte{req[7], 6, 0, 1})
		}},
		{"wrong function echoed", func(req []byte) []byte {
			return frameFor(req, []byte{FuncReadHolding, 2, 0, 1})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := fakeServer(t, tc.respond)
			client, err := DialOptions(addr, ClientOptions{Timeout: 200 * time.Millisecond, Unit: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			done := make(chan error, 1)
			go func() {
				_, err := client.ReadInput(0, 1)
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatalf("malformed response accepted")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("client hung on malformed response")
			}
		})
	}
}
