package errmon

import (
	"fmt"
	"testing"

	"tesla/internal/rng"
)

// BenchmarkCharacterize measures the 500-draw bootstrap (N_b in Table 2)
// over a full one-day error window at several pool sizes.
func BenchmarkCharacterize(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m, err := New(1440, 500, 9)
			if err != nil {
				b.Fatal(err)
			}
			m.SetWorkers(workers)
			r := rng.New(4)
			for i := 0; i < 1440; i++ {
				m.RecordConstraint(r.NormScaled(0.1, 0.4))
			}
			b.ReportAllocs()
			b.ResetTimer()
			var u Uncertainty
			for i := 0; i < b.N; i++ {
				u = m.Constraint()
			}
			b.ReportMetric(u.Variance, "boot_var")
		})
	}
}
