// Package errmon implements TESLA's online prediction-error monitor
// (paper §3.3): a sliding one-day window of the errors the DC time-series
// model made on the objective (cooling energy + interruption) and the
// constraint (max cold-aisle temperature), from which bootstrap resampling
// produces the uncertainty estimates fed into the fixed-noise Gaussian
// processes of the Bayesian optimizer.
package errmon

import (
	"fmt"

	"tesla/internal/parallel"
	"tesla/internal/rng"
	"tesla/internal/stats"
)

// MinSamples is the minimum number of recorded errors a channel needs before
// its bootstrap bias/variance are considered reliable. Below it the bootstrap
// mostly re-reads the same handful of values — in the degenerate one-sample
// case it would report the sample as a zero-variance bias and recenter the
// BO constraint with full confidence — so the characterization is flagged
// unreliable and the controller keeps its configured default variances.
const MinSamples = 8

// bootChunk is the fixed batch of bootstrap draws one pool task generates.
// Chunk boundaries (and the per-chunk RNG substreams keyed on the chunk
// index) depend only on the draw count, making the bootstrap bit-identical
// for any worker count.
const bootChunk = 128

// Monitor tracks a bounded history of prediction errors per channel.
type Monitor struct {
	capacity int
	nBoot    int
	workers  int
	r        *rng.Rand

	obj ring
	con ring
}

// New builds a monitor that keeps the most recent capacity errors per
// channel (one day = 1440 one-minute steps in the paper) and draws nBoot
// bootstrap resamples (N_b = 500 in Table 2).
func New(capacity, nBoot int, seed uint64) (*Monitor, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("errmon: capacity must be positive, got %d", capacity)
	}
	if nBoot < 1 {
		return nil, fmt.Errorf("errmon: bootstrap count must be positive, got %d", nBoot)
	}
	return &Monitor{
		capacity: capacity,
		nBoot:    nBoot,
		r:        rng.New(seed),
		obj:      ring{buf: make([]float64, 0, capacity)},
		con:      ring{buf: make([]float64, 0, capacity)},
	}, nil
}

// RecordObjective logs a matured objective prediction error
// (predicted − realized).
func (m *Monitor) RecordObjective(err float64) { m.obj.push(err, m.capacity) }

// RecordConstraint logs a matured constraint prediction error.
func (m *Monitor) RecordConstraint(err float64) { m.con.push(err, m.capacity) }

// ObjectiveCount returns how many objective errors are currently tracked.
func (m *Monitor) ObjectiveCount() int { return len(m.obj.buf) }

// ConstraintCount returns how many constraint errors are currently tracked.
func (m *Monitor) ConstraintCount() int { return len(m.con.buf) }

// Uncertainty bundles the bootstrap characterization of one error channel.
type Uncertainty struct {
	// Variance is the bootstrap estimate of the error variance — the
	// fixed observation noise handed to the GP surrogate.
	Variance float64
	// Bias is the bootstrap mean error (predicted − realized); the TESLA
	// controller uses it to recenter constraint observations.
	Bias float64
	// N is the number of underlying error samples.
	N int
	// Reliable reports whether N reached MinSamples. Consumers must treat an
	// unreliable Bias/Variance as absent and fall back to their defaults.
	Reliable bool
}

// SampleObjective draws one bootstrap error sample for the objective channel
// (used to create the N_b noisy versions of Ô).
func (m *Monitor) SampleObjective() float64 { return m.obj.sample(m.r) }

// SampleConstraint draws one bootstrap error sample for the constraint
// channel.
func (m *Monitor) SampleConstraint() float64 { return m.con.sample(m.r) }

// Objective characterizes the objective-error channel via bootstrapping.
func (m *Monitor) Objective() Uncertainty { return m.characterize(&m.obj) }

// Constraint characterizes the constraint-error channel via bootstrapping.
func (m *Monitor) Constraint() Uncertainty { return m.characterize(&m.con) }

// SetWorkers bounds the bootstrap's worker pool (<= 0 selects GOMAXPROCS).
// The characterization is bit-identical for every worker count.
func (m *Monitor) SetWorkers(w int) { m.workers = w }

func (m *Monitor) characterize(rg *ring) Uncertainty {
	n := len(rg.buf)
	if n < 2 {
		// Zero samples say nothing; one sample pins the bias with zero
		// variance — equally useless to a fixed-noise GP. Report the count
		// and nothing else.
		return Uncertainty{N: n}
	}
	// Bootstrap: draw nBoot single-error resamples — these are the N_b
	// "versions" of the prediction whose spread is the noise variance.
	// Each fixed-size chunk of draws comes from its own seed-derived
	// substream, so the fan-out below is deterministic per seed regardless
	// of how many workers execute it.
	base := m.r.Uint64()
	draws := make([]float64, m.nBoot)
	parallel.Chunks(m.workers, m.nBoot, bootChunk, func(c, lo, hi int) {
		r := rng.NewStream(base, uint64(c))
		for k := lo; k < hi; k++ {
			draws[k] = rg.buf[r.Intn(n)]
		}
	})
	return Uncertainty{
		Variance: stats.Variance(draws),
		Bias:     stats.Mean(draws),
		N:        n,
		Reliable: n >= MinSamples,
	}
}

// State is the monitor's full mutable state, exported for checkpointing. The
// capacity/bootstrap configuration is NOT part of it — a restored monitor is
// built with New and the same configuration, then handed the state.
type State struct {
	Obj     []float64
	ObjNext int
	Con     []float64
	ConNext int
	RNG     rng.State
}

// State captures the residual windows and the bootstrap RNG. The RNG matters
// for bit-identical recovery: each characterization call draws a fresh base
// seed from it, so a restored monitor must continue the same draw stream.
func (m *Monitor) State() State {
	return State{
		Obj:     append([]float64(nil), m.obj.buf...),
		ObjNext: m.obj.next,
		Con:     append([]float64(nil), m.con.buf...),
		ConNext: m.con.next,
		RNG:     m.r.State(),
	}
}

// Restore resets the monitor to a previously captured state.
func (m *Monitor) Restore(st State) error {
	if len(st.Obj) > m.capacity || len(st.Con) > m.capacity {
		return fmt.Errorf("errmon: state holds %d/%d errors, capacity is %d",
			len(st.Obj), len(st.Con), m.capacity)
	}
	if st.ObjNext < 0 || st.ObjNext >= m.capacity || st.ConNext < 0 || st.ConNext >= m.capacity {
		return fmt.Errorf("errmon: ring cursors %d/%d outside capacity %d", st.ObjNext, st.ConNext, m.capacity)
	}
	m.obj = ring{buf: append(make([]float64, 0, m.capacity), st.Obj...), next: st.ObjNext}
	m.con = ring{buf: append(make([]float64, 0, m.capacity), st.Con...), next: st.ConNext}
	m.r.Restore(st.RNG)
	return nil
}

// ring is a fixed-capacity overwrite-oldest buffer.
type ring struct {
	buf  []float64
	next int
}

func (r *ring) push(v float64, capacity int) {
	if len(r.buf) < capacity {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % capacity
}

func (r *ring) sample(rnd *rng.Rand) float64 {
	if len(r.buf) == 0 {
		return 0
	}
	return r.buf[rnd.Intn(len(r.buf))]
}
