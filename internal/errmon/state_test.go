package errmon

import (
	"testing"

	"tesla/internal/rng"
)

// TestStateRestoreContinuation: a monitor restored into a fresh instance must
// produce bit-identical characterizations and bootstrap draws from then on —
// the residual windows, ring cursors and the RNG stream all carry over.
func TestStateRestoreContinuation(t *testing.T) {
	build := func() *Monitor {
		m, err := New(50, 400, 31)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := build()
	r := rng.New(8)
	// Overfill the windows so the ring cursors are mid-wrap.
	for i := 0; i < 80; i++ {
		ref.RecordObjective(r.NormScaled(0.1, 0.4))
		ref.RecordConstraint(r.NormScaled(-0.2, 0.6))
	}
	// Advance the bootstrap RNG so the state is not the seed state.
	ref.Objective()
	ref.Constraint()

	st := ref.State()
	clone := build()
	if err := clone.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// Continue both with identical inputs; every output must match bitwise.
	r1, r2 := rng.New(9), rng.New(9)
	for i := 0; i < 30; i++ {
		ref.RecordObjective(r1.Norm())
		clone.RecordObjective(r2.Norm())
		ref.RecordConstraint(r1.Norm())
		clone.RecordConstraint(r2.Norm())
	}
	for i := 0; i < 5; i++ {
		if a, b := ref.Objective(), clone.Objective(); a != b {
			t.Fatalf("objective characterization %d diverged: %+v != %+v", i, a, b)
		}
		if a, b := ref.Constraint(), clone.Constraint(); a != b {
			t.Fatalf("constraint characterization %d diverged: %+v != %+v", i, a, b)
		}
		if a, b := ref.SampleObjective(), clone.SampleObjective(); a != b {
			t.Fatalf("bootstrap sample %d diverged: %g != %g", i, a, b)
		}
	}
}

func TestStateRestoreRejectsOversize(t *testing.T) {
	m, err := New(4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := State{Obj: make([]float64, 5)}
	if err := m.Restore(st); err == nil {
		t.Fatal("state larger than capacity accepted")
	}
	if err := m.Restore(State{ObjNext: 7}); err == nil {
		t.Fatal("out-of-range ring cursor accepted")
	}
}
