package errmon

import (
	"math"
	"testing"

	"tesla/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, 1); err == nil {
		t.Fatalf("zero capacity accepted")
	}
	if _, err := New(10, 0, 1); err == nil {
		t.Fatalf("zero bootstrap accepted")
	}
}

func TestCountsAndRingCapacity(t *testing.T) {
	m, err := New(5, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		m.RecordObjective(float64(i))
	}
	if m.ObjectiveCount() != 5 {
		t.Fatalf("ring should cap at 5, got %d", m.ObjectiveCount())
	}
	if m.ConstraintCount() != 0 {
		t.Fatalf("constraint channel should be empty")
	}
	// After overflow only the most recent values remain: bias near the
	// mean of {7..11}.
	u := m.Objective()
	if math.Abs(u.Bias-9) > 1.6 {
		t.Fatalf("ring kept stale values: bias %g, want ~9", u.Bias)
	}
}

func TestBootstrapBiasAndVariance(t *testing.T) {
	m, err := New(1000, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	trueBias, trueStd := 0.7, 0.3
	for i := 0; i < 800; i++ {
		m.RecordConstraint(r.NormScaled(trueBias, trueStd))
	}
	u := m.Constraint()
	if u.N != 800 {
		t.Fatalf("N = %d", u.N)
	}
	if math.Abs(u.Bias-trueBias) > 0.05 {
		t.Fatalf("bias %g, want ~%g", u.Bias, trueBias)
	}
	if math.Abs(math.Sqrt(u.Variance)-trueStd) > 0.05 {
		t.Fatalf("std %g, want ~%g", math.Sqrt(u.Variance), trueStd)
	}
}

func TestEmptyChannelsAreZero(t *testing.T) {
	m, _ := New(10, 10, 4)
	u := m.Objective()
	if u.Variance != 0 || u.Bias != 0 || u.N != 0 {
		t.Fatalf("empty channel should be zero: %+v", u)
	}
	if m.SampleObjective() != 0 {
		t.Fatalf("sampling an empty channel should yield 0")
	}
}

func TestSingleErrorChannel(t *testing.T) {
	m, _ := New(10, 10, 5)
	m.RecordObjective(0.42)
	u := m.Objective()
	if u.N != 1 || u.Bias != 0.42 || u.Variance != 0 {
		t.Fatalf("single-sample characterization wrong: %+v", u)
	}
	if m.SampleObjective() != 0.42 {
		t.Fatalf("sample should return the only value")
	}
}

func TestSampleDrawsFromRecorded(t *testing.T) {
	m, _ := New(10, 10, 6)
	vals := map[float64]bool{1: true, 2: true, 3: true}
	for v := range vals {
		m.RecordConstraint(v)
	}
	for i := 0; i < 100; i++ {
		if !vals[m.SampleConstraint()] {
			t.Fatalf("sample outside recorded values")
		}
	}
}

func TestChannelsIndependent(t *testing.T) {
	m, _ := New(10, 500, 7)
	for i := 0; i < 10; i++ {
		m.RecordObjective(1)
		m.RecordConstraint(-1)
	}
	if m.Objective().Bias != 1 || m.Constraint().Bias != -1 {
		t.Fatalf("channels leaked into each other")
	}
}
