package errmon

import (
	"math"
	"testing"

	"tesla/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, 1); err == nil {
		t.Fatalf("zero capacity accepted")
	}
	if _, err := New(10, 0, 1); err == nil {
		t.Fatalf("zero bootstrap accepted")
	}
}

func TestCountsAndRingCapacity(t *testing.T) {
	m, err := New(5, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		m.RecordObjective(float64(i))
	}
	if m.ObjectiveCount() != 5 {
		t.Fatalf("ring should cap at 5, got %d", m.ObjectiveCount())
	}
	if m.ConstraintCount() != 0 {
		t.Fatalf("constraint channel should be empty")
	}
	// After overflow only the most recent values remain: bias near the
	// mean of {7..11}.
	u := m.Objective()
	if math.Abs(u.Bias-9) > 1.6 {
		t.Fatalf("ring kept stale values: bias %g, want ~9", u.Bias)
	}
}

func TestBootstrapBiasAndVariance(t *testing.T) {
	m, err := New(1000, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	trueBias, trueStd := 0.7, 0.3
	for i := 0; i < 800; i++ {
		m.RecordConstraint(r.NormScaled(trueBias, trueStd))
	}
	u := m.Constraint()
	if u.N != 800 {
		t.Fatalf("N = %d", u.N)
	}
	if math.Abs(u.Bias-trueBias) > 0.05 {
		t.Fatalf("bias %g, want ~%g", u.Bias, trueBias)
	}
	if math.Abs(math.Sqrt(u.Variance)-trueStd) > 0.05 {
		t.Fatalf("std %g, want ~%g", math.Sqrt(u.Variance), trueStd)
	}
}

func TestEmptyChannelsAreZero(t *testing.T) {
	m, _ := New(10, 10, 4)
	u := m.Objective()
	if u.Variance != 0 || u.Bias != 0 || u.N != 0 {
		t.Fatalf("empty channel should be zero: %+v", u)
	}
	if m.SampleObjective() != 0 {
		t.Fatalf("sampling an empty channel should yield 0")
	}
}

func TestSingleErrorChannel(t *testing.T) {
	// A single sample must NOT be reported as a zero-variance bias: that
	// would recenter the BO constraint with full confidence off one
	// observation. The characterization stays empty and unreliable.
	m, _ := New(10, 10, 5)
	m.RecordObjective(0.42)
	u := m.Objective()
	if u.N != 1 || u.Bias != 0 || u.Variance != 0 || u.Reliable {
		t.Fatalf("single-sample characterization wrong: %+v", u)
	}
	if m.SampleObjective() != 0.42 {
		t.Fatalf("sample should return the only value")
	}
}

func TestReliabilityGate(t *testing.T) {
	m, _ := New(100, 200, 8)
	for i := 0; i < MinSamples-1; i++ {
		m.RecordConstraint(1.5)
	}
	if u := m.Constraint(); u.Reliable {
		t.Fatalf("%d samples flagged reliable, gate is %d: %+v", u.N, MinSamples, u)
	}
	m.RecordConstraint(1.5)
	u := m.Constraint()
	if !u.Reliable || u.N != MinSamples {
		t.Fatalf("gate should open at %d samples: %+v", MinSamples, u)
	}
	if u.Bias != 1.5 || u.Variance != 0 {
		t.Fatalf("constant channel should bootstrap to its value: %+v", u)
	}
}

func TestBootstrapWorkerCountIndependent(t *testing.T) {
	build := func(workers int) *Monitor {
		m, err := New(500, 2000, 77)
		if err != nil {
			t.Fatal(err)
		}
		m.SetWorkers(workers)
		r := rng.New(12)
		for i := 0; i < 300; i++ {
			m.RecordObjective(r.NormScaled(0.2, 0.5))
			m.RecordConstraint(r.NormScaled(-0.1, 0.3))
		}
		return m
	}
	ref := build(1)
	refObj, refCon := ref.Objective(), ref.Constraint()
	for _, workers := range []int{2, 4, 16, 0} {
		m := build(workers)
		if obj := m.Objective(); obj != refObj {
			t.Fatalf("workers=%d: objective %+v != serial %+v", workers, obj, refObj)
		}
		if con := m.Constraint(); con != refCon {
			t.Fatalf("workers=%d: constraint %+v != serial %+v", workers, con, refCon)
		}
	}
}

func TestSampleDrawsFromRecorded(t *testing.T) {
	m, _ := New(10, 10, 6)
	vals := map[float64]bool{1: true, 2: true, 3: true}
	for v := range vals {
		m.RecordConstraint(v)
	}
	for i := 0; i < 100; i++ {
		if !vals[m.SampleConstraint()] {
			t.Fatalf("sample outside recorded values")
		}
	}
}

func TestChannelsIndependent(t *testing.T) {
	m, _ := New(10, 500, 7)
	for i := 0; i < 10; i++ {
		m.RecordObjective(1)
		m.RecordConstraint(-1)
	}
	if m.Objective().Bias != 1 || m.Constraint().Bias != -1 {
		t.Fatalf("channels leaked into each other")
	}
}
