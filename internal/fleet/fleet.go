// Package fleet is the multi-room orchestrator: it runs N independent
// machine rooms — each with its own testbed, workload profile, control
// policy and thermal-safety supervisor — concurrently over the
// internal/parallel pool, feeding a telegraf-style ingestion pipeline of
// bounded per-room telemetry queues batched into fleet-wide rollups
// (internal/telemetry).
//
// Two contracts define the package:
//
// Determinism. Every per-room seed is derived from the fleet seed and the
// room's stream index via rng.SeedFor, and rooms share no mutable state, so
// a room's trajectory is bit-identical for any worker count and any set of
// sibling rooms — room 0 alone equals room 0 inside a 16-room fleet. (The
// ingestion rollup is the one deliberately wall-clock-dependent piece: it
// observes whatever reached the queues before eviction, and the drop
// counters account exactly for the remainder.)
//
// Isolation. A room's control loop never blocks on anything outside the
// room: telemetry pushes are non-blocking (the bounded queue evicts and
// counts), faults are injected per room, and a slow device stalls only the
// worker running that room. Siblings complete every control step regardless
// of one room's quarantine storm, fault scenario or device latency.
package fleet

import (
	"fmt"
	"sort"
	"time"

	"tesla/internal/control"
	"tesla/internal/faults"
	"tesla/internal/parallel"
	"tesla/internal/rng"
	"tesla/internal/safety"
	"tesla/internal/telemetry"
	"tesla/internal/testbed"
	"tesla/internal/workload"
)

// PolicyFactory builds the control policy for one room. It is called
// concurrently from the worker pool, so it must be safe for concurrent use
// and must return a policy that depends only on (room, seed) — never on
// shared mutable state — to preserve the determinism contract.
type PolicyFactory func(room int, seed uint64) (control.Policy, error)

// RoomSpec describes one room of the fleet.
type RoomSpec struct {
	// Name labels the room in results and HTTP endpoints; empty defaults to
	// "room-<stream>".
	Name string
	// Stream is the rng.SeedFor substream this room derives every seed from.
	// Rooms in one fleet must use distinct streams. The zero value means
	// "use the room's index in Config.Rooms" — the common case; set it
	// explicitly to reproduce one room of a larger fleet in isolation.
	Stream uint64
	// Profile drives the room's cluster load. Required.
	Profile workload.Profile
	// Scenario optionally injects a deterministic fault schedule into this
	// room (and only this room).
	Scenario *faults.Scenario
	// StallPerStep simulates a slow device on this room's telemetry/command
	// path (a lagging Modbus endpoint): the room's loop sleeps this long
	// every control step. Wall-clock only — the simulated trajectory is
	// unaffected, which is exactly the isolation property worth testing.
	StallPerStep time.Duration

	// The remaining fields make fleets heterogeneous: each zero value keeps
	// the Config.Testbed template untouched, so existing configurations (and
	// their golden trajectory hashes) are unaffected.

	// Servers overrides the room's cluster size (0 = template, i.e. 21).
	Servers int
	// ACUCoolKW overrides the room ACU's peak cooling capacity in kW
	// (0 = template, i.e. 13): under-provisioned rooms saturate their
	// compressor under batch load — the thermally weak rooms a fleet
	// scheduler must route work away from.
	ACUCoolKW float64
	// ThermalMass scales the room's air/structure/rack heat capacitances
	// (0 or 1 = template): lighter rooms heat faster and give the cooling
	// loop less slack.
	ThermalMass float64
}

// Config assembles a fleet run.
type Config struct {
	// Testbed is the per-room plant template; each room overrides Seed with
	// its own substream.
	Testbed testbed.Config
	// Rooms lists the fleet members.
	Rooms []RoomSpec
	// Seed is the fleet master seed all per-room substreams derive from.
	Seed uint64
	// Workers bounds the worker pool (<= 0 selects GOMAXPROCS). Any value
	// yields bit-identical per-room results.
	Workers int

	// WarmupS runs each room under InitSpC before evaluation (recorded, so
	// policies have history; must cover at least one control step).
	WarmupS float64
	// EvalS is the controlled evaluation window per room.
	EvalS float64
	// InitSpC is the warm-up set-point.
	InitSpC float64
	// ColdLimitC is the ASHRAE cold-aisle limit (22 °C in the paper).
	ColdLimitC float64

	// QueueCap bounds each room's telemetry queue (<= 0 selects 512).
	QueueCap int
	// Batch bounds the ingestor's per-queue drain per sweep (<= 0 selects 64).
	Batch int
	// IngestEvery is the ingestor's sweep interval (<= 0 selects 200 µs).
	IngestEvery time.Duration

	// Safety overrides the supervisor configuration; nil derives the
	// deployment default from ColdLimitC and the ACU set-point range.
	Safety *safety.Config
	// NewPolicy builds each room's policy. Required.
	NewPolicy PolicyFactory

	// DataDir enables per-room durability: each room opens a WAL + snapshot
	// store under DataDir/<room-name>, recovers whatever a previous run left
	// there, and resumes the horizon where the durable record ends. Empty
	// disables durability (the previous behavior).
	DataDir string
	// SnapshotEvery checkpoints controller state every N evaluation steps
	// (<= 0 selects 64). Smaller bounds replay work on recovery; larger
	// spends less time encoding state.
	SnapshotEvery int
	// SyncEvery is the WAL fsync batch: 0 syncs every record (default,
	// strongest durability), n > 0 every n records, negative never.
	SyncEvery int
	// HaltAfter is a crash-simulation hook for recovery tests: when > 0,
	// each room's loop halts before executing evaluation step HaltAfter
	// (global step index) and returns WITHOUT closing its store — exactly
	// the torn state a killed process leaves. Zero disables.
	HaltAfter int

	// Quantize, when set, transforms every decided set-point before it is
	// applied, logged and hashed — on the live path AND during WAL replay.
	// It must be pure and idempotent (e.g. modbus.QuantizeTempC, the
	// centidegree register round-trip) so a recovered or migrated room
	// re-derives exactly the bits a gateway-actuated live run produced,
	// and so a reference run with the same Quantize is bit-identical to a
	// run actuated through the real field bus.
	Quantize func(spC float64) float64
	// Actuate, when set, replaces the direct testbed set-point write on
	// the LIVE path only: the host routes the (already quantized) command
	// through its field bus — gateway write → Modbus → device bridge —
	// and the bridge latches the value into the plant before the step
	// advances. Replay never actuates: recovery re-applies set-points
	// directly, which is bit-identical as long as Quantize matches the
	// field bus's rounding. An actuation error aborts the room's run.
	Actuate func(room int, spC float64) error
	// Publish, when set, observes every live sample right after the plant
	// advances — the field-bus refresh hook: the host updates its device
	// sim's input registers and runs its poll sweep here, one polled
	// sample per control step. Live-only, like Actuate; it must not
	// mutate the sample or the plant.
	Publish func(room int, s testbed.Sample)
}

// DefaultConfig returns a fleet of n heterogeneous healthy rooms (diurnal
// loads cycling medium/high/idle with per-room seeds) under the paper's
// 12-hour evaluation protocol.
func DefaultConfig(n int, seed uint64, newPolicy PolicyFactory) Config {
	return Config{
		Testbed:    testbed.DefaultConfig(),
		Rooms:      DiurnalSpecs(n, seed),
		Seed:       seed,
		WarmupS:    3600,
		EvalS:      43200,
		InitSpC:    23,
		ColdLimitC: 22,
		NewPolicy:  newPolicy,
	}
}

// DiurnalSpecs builds n healthy room specs with heterogeneous diurnal loads:
// room i cycles through medium/high/idle and draws its burst pattern from
// its own substream, so no two rooms see the same load trace.
func DiurnalSpecs(n int, seed uint64) []RoomSpec {
	loads := []workload.Setting{workload.Medium, workload.High, workload.Idle}
	specs := make([]RoomSpec, n)
	for i := range specs {
		specs[i] = RoomSpec{
			Name:    fmt.Sprintf("room-%d", i),
			Profile: workload.NewDiurnal(loads[i%len(loads)], 43200, rng.SeedFor(seed, profileStream(uint64(i)))),
		}
	}
	return specs
}

// Seed-substream layout: each room owns four substreams of the fleet seed,
// keyed by its stream index, so seeds never depend on the fleet size.
func testbedStream(stream uint64) uint64 { return 4 * stream }
func policyStream(stream uint64) uint64  { return 4*stream + 1 }
func profileStream(stream uint64) uint64 { return 4*stream + 2 }

// RoomSeeds resolves the testbed and policy seeds for one room stream —
// exported so live runners (teslad -rooms) derive exactly the substreams Run
// uses and stay trajectory-compatible with batch fleet runs.
func RoomSeeds(fleetSeed, stream uint64) (testbedSeed, policySeed uint64) {
	return rng.SeedFor(fleetSeed, testbedStream(stream)), rng.SeedFor(fleetSeed, policyStream(stream))
}

// Validate reports unusable configurations.
func (c *Config) Validate() error {
	if len(c.Rooms) == 0 {
		return fmt.Errorf("fleet: no rooms")
	}
	if c.NewPolicy == nil {
		return fmt.Errorf("fleet: NewPolicy is required")
	}
	if c.Testbed.SamplePeriodS <= 0 {
		return fmt.Errorf("fleet: sample period must be positive")
	}
	if c.WarmupS < c.Testbed.SamplePeriodS {
		return fmt.Errorf("fleet: warm-up %gs must cover at least one control step (%gs)", c.WarmupS, c.Testbed.SamplePeriodS)
	}
	if c.EvalS < c.Testbed.SamplePeriodS {
		return fmt.Errorf("fleet: evaluation window %gs shorter than one control step", c.EvalS)
	}
	seen := make(map[uint64]int, len(c.Rooms))
	for i, spec := range c.Rooms {
		if spec.Profile == nil {
			return fmt.Errorf("fleet: room %d has no workload profile", i)
		}
		if spec.Servers < 0 {
			return fmt.Errorf("fleet: room %d server override %d must be non-negative", i, spec.Servers)
		}
		if spec.ACUCoolKW < 0 {
			return fmt.Errorf("fleet: room %d ACU capacity override %g must be non-negative", i, spec.ACUCoolKW)
		}
		if spec.ThermalMass < 0 {
			return fmt.Errorf("fleet: room %d thermal-mass scale %g must be non-negative", i, spec.ThermalMass)
		}
		s := c.streamOf(i)
		if prev, dup := seen[s]; dup {
			return fmt.Errorf("fleet: rooms %d and %d share seed stream %d", prev, i, s)
		}
		seen[s] = i
		if spec.Scenario != nil {
			if err := spec.Scenario.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// streamOf resolves a room's effective seed stream (zero value → index).
func (c *Config) streamOf(i int) uint64 {
	if c.Rooms[i].Stream != 0 {
		return c.Rooms[i].Stream
	}
	return uint64(i)
}

// nameOf resolves a room's display name.
func (c *Config) nameOf(i int) string {
	if c.Rooms[i].Name != "" {
		return c.Rooms[i].Name
	}
	return fmt.Sprintf("room-%d", c.streamOf(i))
}

// RoomName resolves room i's display name — also the room's store directory
// under DataDir, which is why hosts that manage room stores without a
// running room (the sharded control plane's migration path) need it.
func (c *Config) RoomName(i int) string { return c.nameOf(i) }

// RoomResult is one room's authoritative outcome, computed inside the room's
// own control loop (the ingestion rollup is the lossy observability view).
type RoomResult struct {
	Room   int    `json:"room"`
	Name   string `json:"name"`
	Stream uint64 `json:"stream"`

	PlannedSteps int `json:"planned_steps"`
	Steps        int `json:"steps"` // executed control steps; == PlannedSteps unless the run errored

	CEkWh       float64 `json:"ce_kwh"`
	TSVFrac     float64 `json:"tsv_frac"`
	CIFrac      float64 `json:"ci_frac"`
	TrueTSVFrac float64 `json:"true_tsv_frac"`
	MeanSp      float64 `json:"mean_sp_c"`
	MaxCold     float64 `json:"max_cold_c"`

	// TrajectoryHash is an FNV-1a digest of the executed set-points and the
	// delivered + ground-truth cold-aisle maxima at every evaluation step —
	// the bit-identity witness the determinism tests compare.
	TrajectoryHash uint64 `json:"trajectory_hash"`

	SafetyMax   safety.Level `json:"safety_max_level"`
	Degraded    bool         `json:"degraded"` // left LevelNormal at least once
	Escalations uint64       `json:"escalations"`
	Overrides   uint64       `json:"overrides"`
	Quarantines uint64       `json:"quarantines"`

	// QueueDropped counts this room's telemetry samples evicted under
	// backpressure — observability loss, never control loss.
	QueueDropped uint64 `json:"queue_dropped"`

	// Recovery reports what the room's durable store replayed on boot (zero
	// when durability is disabled or the store was fresh).
	Recovery RecoveryInfo `json:"recovery"`
	// Halted is true when the HaltAfter crash hook stopped this room's loop
	// mid-horizon (the store is deliberately left unclosed).
	Halted bool `json:"halted,omitempty"`

	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`

	latencies []time.Duration
}

// LatencyStats summarize per-step wall latency across the whole fleet.
type LatencyStats struct {
	P50, P90, P99, Max time.Duration
}

// Result is one fleet run's outcome.
type Result struct {
	Rooms    []RoomResult        `json:"rooms"`
	Rollup   telemetry.Rollup    `json:"rollup"`
	RoomAggs []telemetry.RoomAgg `json:"room_aggs"`

	TotalSteps  int          `json:"total_steps"`
	WallSeconds float64      `json:"wall_seconds"`
	StepsPerSec float64      `json:"steps_per_sec"`
	Latency     LatencyStats `json:"latency"`
}

// String renders the run as a fixed-width operator table.
func (r *Result) String() string {
	var b []byte
	b = fmt.Appendf(b, "fleet: %d rooms × %d steps, %.1f steps/s (p50=%s p99=%s), rollup: %d ingested / %d dropped, maxCold=%.2f°C\n",
		len(r.Rooms), plannedOf(r), r.StepsPerSec, r.Latency.P50.Round(time.Microsecond), r.Latency.P99.Round(time.Microsecond),
		r.Rollup.Samples, r.Rollup.Dropped, r.Rollup.MaxColdC)
	b = fmt.Appendf(b, "  %-10s %6s %9s %7s %7s %8s %8s %-14s %5s %6s\n",
		"room", "steps", "CE(kWh)", "TSV(%)", "CI(%)", "true(%)", "maxCold", "max level", "esc", "drops")
	for _, rr := range r.Rooms {
		b = fmt.Appendf(b, "  %-10s %6d %9.2f %7.2f %7.2f %8.2f %8.2f %-14s %5d %6d\n",
			rr.Name, rr.Steps, rr.CEkWh, 100*rr.TSVFrac, 100*rr.CIFrac, 100*rr.TrueTSVFrac,
			rr.MaxCold, rr.SafetyMax, rr.Escalations, rr.QueueDropped)
	}
	return string(b)
}

func plannedOf(r *Result) int {
	if len(r.Rooms) == 0 {
		return 0
	}
	return r.Rooms[0].PlannedSteps
}

// Run executes the fleet: every room's full horizon fans out over the worker
// pool while one ingestor goroutine drains the telemetry queues into the
// fleet rollup. The per-room results are bit-identical for any Workers value;
// the rollup sees every sample that survived its bounded queue, with drops
// accounted.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = 512
	}
	interval := cfg.IngestEvery
	if interval <= 0 {
		interval = 200 * time.Microsecond
	}

	queues := make([]*telemetry.Queue, len(cfg.Rooms))
	for i := range queues {
		queues[i] = telemetry.NewQueue(queueCap)
	}
	ing := telemetry.NewIngestor(queues, cfg.ColdLimitC, cfg.Testbed.SamplePeriodS, cfg.Batch)

	stop := make(chan struct{})
	var g parallel.Group
	g.Go(func() { ing.Run(stop, interval) })

	start := time.Now()
	rooms, err := parallel.MapErr(cfg.Workers, len(cfg.Rooms), func(i int) (RoomResult, error) {
		return runRoom(&cfg, i, queues[i])
	})
	wall := time.Since(start)
	close(stop)
	g.Wait()
	if err != nil {
		return nil, err
	}

	res := &Result{Rooms: rooms, Rollup: ing.Rollup(), RoomAggs: ing.RoomAggs(), WallSeconds: wall.Seconds()}
	var all []time.Duration
	for i := range res.Rooms {
		res.TotalSteps += res.Rooms[i].Steps
		all = append(all, res.Rooms[i].latencies...)
		res.Rooms[i].latencies = nil
	}
	if res.WallSeconds > 0 {
		res.StepsPerSec = float64(res.TotalSteps) / res.WallSeconds
	}
	res.Latency = ComputeLatencyStats(all)
	return res, nil
}

// ComputeLatencyStats computes percentiles over per-operation wall
// latencies (sorting d in place). Exported so other load harnesses — the
// gateway bench in particular — report quantiles with the same estimator
// the fleet orchestrator uses.
func ComputeLatencyStats(d []time.Duration) LatencyStats {
	if len(d) == 0 {
		return LatencyStats{}
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	pick := func(q float64) time.Duration {
		i := int(q*float64(len(d))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(d) {
			i = len(d) - 1
		}
		return d[i]
	}
	return LatencyStats{P50: pick(0.50), P90: pick(0.90), P99: pick(0.99), Max: d[len(d)-1]}
}
