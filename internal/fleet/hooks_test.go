package fleet

import (
	"testing"

	"tesla/internal/gateway"
	"tesla/internal/modbus"
	"tesla/internal/testbed"
)

// testBus is a complete field path for one room: the plant's register
// bridge, an in-process Modbus/TCP device sim, a gateway device dialing
// it, and a single-device poller — the same stack a shard hosts per room.
type testBus struct {
	bridge *modbus.ACUBridge
	dev    *gateway.Device
	poller *gateway.Poller
}

func startTestBus(t *testing.T, r *Runner) *testBus {
	t.Helper()
	bridge := modbus.NewACUBridge(r.Plant())
	srv := modbus.NewServer(bridge.Bank)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	gw := gateway.New(gateway.Config{})
	t.Cleanup(func() { gw.Close() })
	dev, err := gw.Add("room-0", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &testBus{
		bridge: bridge,
		dev:    dev,
		poller: gateway.NewPollerOver([]*gateway.Device{dev}, gateway.PollerConfig{ColdLimitC: 22, PeriodS: 60}),
	}
}

// TestGatewayActuationBitIdentical proves the field-bus hook contract: a
// room actuated through a REAL Modbus path — gateway write → TCP → device
// sim → bridge latch — with a per-step register poll produces exactly the
// trajectory of a plain in-process run that applies the same centidegree
// quantization. This is the invariant the sharded control plane's chaos
// tests lean on: quantization is the only observable difference the bus
// introduces, and Config.Quantize captures it entirely. The poll ledger
// must be exact too: one sample per control step, zero gaps.
func TestGatewayActuationBitIdentical(t *testing.T) {
	mk := func() Config {
		cfg := durableShortConfig(1, 93)
		cfg.Quantize = modbus.QuantizeTempC
		return cfg
	}
	ref, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}

	// The bus needs the plant, which exists only after NewRunner — the
	// hooks close over the pointer and the bus is attached before the
	// first Step, exactly the shard's late-binding order.
	var bus *testBus
	cfg := mk()
	cfg.Actuate = func(_ int, sp float64) error {
		return bus.dev.WriteHolding(modbus.RegSetpoint, modbus.EncodeTempC(sp))
	}
	cfg.Publish = func(_ int, s testbed.Sample) {
		bus.bridge.Refresh(s)
		bus.poller.PollOnce(s.TimeS)
		bus.poller.DrainOnce()
	}
	r, err := NewRunner(cfg, 0, nil, "bus-host")
	if err != nil {
		t.Fatal(err)
	}
	bus = startTestBus(t, r)
	for !r.Done() {
		if err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}

	want := ref.Rooms[0]
	if res.TrajectoryHash != want.TrajectoryHash {
		t.Errorf("gateway-actuated trajectory hash %#x, want %#x — the bus is not transparent beyond quantization",
			res.TrajectoryHash, want.TrajectoryHash)
	}
	if res.CEkWh != want.CEkWh || res.MaxCold != want.MaxCold || res.MeanSp != want.MeanSp {
		t.Errorf("gateway-actuated metrics diverged:\n  got  %+v\n  want %+v", res, want)
	}

	ru := bus.poller.Rollup()
	if ru.Samples != uint64(res.Steps) || ru.Gaps != 0 {
		t.Errorf("poll ledger: %d samples, %d gaps, want %d, 0", ru.Samples, ru.Gaps, res.Steps)
	}
	if seqs := bus.poller.Seqs(); seqs[0] != uint64(res.Steps) {
		t.Errorf("final poll seq %d, want %d (one sweep per control step)", seqs[0], res.Steps)
	}
}

// TestQuantizedRecoveryBitIdentical pins the replay half of the Quantize
// contract: recovery re-derives decisions through the same quantizer the
// live loop used, so a quantized run killed mid-horizon completes
// bit-identically with zero decision mismatches. Without quantization in
// the replay path the re-derived set-points differ from the logged ones
// in the third decimal and every downstream bit diverges.
func TestQuantizedRecoveryBitIdentical(t *testing.T) {
	mk := func() Config {
		cfg := durableShortConfig(2, 51)
		cfg.Quantize = modbus.QuantizeTempC
		return cfg
	}
	ref, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}

	cfg := mk()
	cfg.DataDir = t.TempDir()
	cfg.SnapshotEvery = 8
	cfg.HaltAfter = 31
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.HaltAfter = 0
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertRecoveredMatches(t, ref, got)
}
