package fleet

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"tesla/internal/control"
	"tesla/internal/dataset"
)

// durableEMA is a cheap stateful policy with a Durable implementation: it
// tracks an exponential moving average of the delivered cold-aisle maximum
// and steers the set-point against it. Every decision depends on the whole
// history through the EMA, so the tiniest recovery error compounds into a
// different trajectory — a sharp bit-identity probe without TESLA's training
// cost.
type durableEMA struct {
	bias float64 // from the room's policy seed, rebuilt by the factory
	ema  float64
	n    int
}

func newDurableEMA(room int, seed uint64) (control.Policy, error) {
	return &durableEMA{bias: 22.8 + float64(seed%64)/128}, nil
}

func (p *durableEMA) Name() string { return "durable-ema" }

func (p *durableEMA) Decide(tr *dataset.Trace, t int) float64 {
	v := tr.MaxCold[t]
	if p.n == 0 {
		p.ema = v
	} else {
		p.ema = 0.2*v + 0.8*p.ema
	}
	p.n++
	return p.bias + 0.05*(21.5-p.ema)
}

type emaState struct {
	EMA float64
	N   int
}

func (p *durableEMA) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(emaState{p.ema, p.n}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (p *durableEMA) Restore(blob []byte) error {
	var st emaState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return err
	}
	p.ema, p.n = st.EMA, st.N
	return nil
}

func durableShortConfig(n int, seed uint64) Config {
	cfg := shortConfig(n, seed)
	cfg.NewPolicy = newDurableEMA
	return cfg
}

// assertRecoveredMatches compares a recovered fleet result against the
// uninterrupted reference room by room, bit for bit.
func assertRecoveredMatches(t *testing.T, ref, got *Result) {
	t.Helper()
	if len(got.Rooms) != len(ref.Rooms) {
		t.Fatalf("%d rooms, want %d", len(got.Rooms), len(ref.Rooms))
	}
	for i := range ref.Rooms {
		r, g := ref.Rooms[i], got.Rooms[i]
		if g.TrajectoryHash != r.TrajectoryHash {
			t.Errorf("room %d: trajectory hash %#x after recovery, want %#x — recovery is not bit-identical",
				i, g.TrajectoryHash, r.TrajectoryHash)
		}
		if g.Steps != r.Steps || g.CEkWh != r.CEkWh || g.TSVFrac != r.TSVFrac ||
			g.TrueTSVFrac != r.TrueTSVFrac || g.CIFrac != r.CIFrac ||
			g.MeanSp != r.MeanSp || g.MaxCold != r.MaxCold {
			t.Errorf("room %d: metrics diverged after recovery:\n  got  %+v\n  want %+v", i, g, r)
		}
		if g.SafetyMax != r.SafetyMax || g.Escalations != r.Escalations || g.Overrides != r.Overrides {
			t.Errorf("room %d: supervisor counters diverged after recovery", i)
		}
		if g.Recovery.DecisionMismatches != 0 {
			t.Errorf("room %d: %d replayed decisions differ from the log", i, g.Recovery.DecisionMismatches)
		}
		if g.Recovery.PlantMismatches != 0 {
			t.Errorf("room %d: %d re-simulated samples differ from the log", i, g.Recovery.PlantMismatches)
		}
	}
}

// TestFleetCrashRecoveryBitIdentical is the subsystem's acceptance gate: kill
// a durable fleet run at an arbitrary evaluation step, recover from whatever
// the WAL and snapshots hold, and the completed trajectory — hash, energy,
// violation counts, supervisor counters — is bit-identical to a run that was
// never interrupted, for any snapshot interval, any fsync batching, any kill
// step and any worker count.
func TestFleetCrashRecoveryBitIdentical(t *testing.T) {
	ref, err := Run(durableShortConfig(3, 21))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name                 string
		snapEvery, syncEvery int
		k, workers           int
	}{
		{"early-kill-snap8", 8, 0, 2, 1},
		{"mid-kill-snap16-batched", 16, 4, 33, 2},
		{"kill-on-snapshot-boundary", 10, 0, 40, 2},
		{"late-kill-nosync", 16, -1, 59, 3},
		{"kill-before-first-snapshot", 64, 2, 7, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := durableShortConfig(3, 21)
			cfg.DataDir = t.TempDir()
			cfg.SnapshotEvery = tc.snapEvery
			cfg.SyncEvery = tc.syncEvery
			cfg.Workers = tc.workers
			cfg.HaltAfter = tc.k

			killed, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, rr := range killed.Rooms {
				if !rr.Halted {
					t.Fatalf("room %d did not halt at step %d", i, tc.k)
				}
				if rr.Steps != tc.k {
					t.Fatalf("room %d executed %d steps before the crash, want %d", i, rr.Steps, tc.k)
				}
			}

			cfg.HaltAfter = 0
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, rr := range got.Rooms {
				if !rr.Recovery.Recovered {
					t.Fatalf("room %d recovered nothing from the store", i)
				}
				if rr.Halted {
					t.Fatalf("room %d halted on the recovery run", i)
				}
				if tc.k > tc.snapEvery && rr.Recovery.SnapshotStep < 0 {
					t.Errorf("room %d: no checkpoint restored despite %d steps at interval %d",
						i, tc.k, tc.snapEvery)
				}
			}
			assertRecoveredMatches(t, ref, got)
		})
	}
}

// TestFleetRecoveryNonDurablePolicy: a policy without Snapshot/Restore still
// recovers bit-identically — no checkpoints are written, and the whole WAL
// tail replays through the real Decide path.
func TestFleetRecoveryNonDurablePolicy(t *testing.T) {
	ref, err := Run(shortConfig(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortConfig(2, 5)
	cfg.DataDir = t.TempDir()
	cfg.HaltAfter = 25
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.HaltAfter = 0
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range got.Rooms {
		if rr.Recovery.SnapshotStep != -1 {
			t.Errorf("room %d restored checkpoint step %d — a non-durable policy must never write one",
				i, rr.Recovery.SnapshotStep)
		}
		if rr.Recovery.ReplayedSteps != rr.Recovery.StepRecords {
			t.Errorf("room %d replayed %d of %d logged steps — full replay expected without a checkpoint",
				i, rr.Recovery.ReplayedSteps, rr.Recovery.StepRecords)
		}
	}
	assertRecoveredMatches(t, ref, got)
}

// TestFleetRecoveryAfterCompletion: restarting a run that already finished
// restores the final checkpoint, re-decides nothing, and reports the same
// result.
func TestFleetRecoveryAfterCompletion(t *testing.T) {
	cfg := durableShortConfig(2, 13)
	cfg.DataDir = t.TempDir()
	cfg.SnapshotEvery = 20
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range again.Rooms {
		if rr.Recovery.SnapshotStep != rr.PlannedSteps {
			t.Errorf("room %d resumed from checkpoint step %d, want the final checkpoint at %d",
				i, rr.Recovery.SnapshotStep, rr.PlannedSteps)
		}
		if rr.Recovery.ReplayedSteps != 0 {
			t.Errorf("room %d re-decided %d steps of a completed run", i, rr.Recovery.ReplayedSteps)
		}
	}
	assertRecoveredMatches(t, first, again)
}

// TestFleetRecoveryFreshStoreUnperturbed: turning durability on must not
// change a single bit of the trajectory.
func TestFleetRecoveryFreshStoreUnperturbed(t *testing.T) {
	ref, err := Run(durableShortConfig(2, 17))
	if err != nil {
		t.Fatal(err)
	}
	cfg := durableShortConfig(2, 17)
	cfg.DataDir = t.TempDir()
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range got.Rooms {
		if rr.Recovery.Recovered {
			t.Errorf("room %d claims recovery from a fresh store", i)
		}
	}
	assertRecoveredMatches(t, ref, got)
}

// TestFleetCrashRecoveryFuzz sweeps randomized (snapshot interval, fsync
// batch, worker count, kill schedule) combinations — including double-crash
// schedules where the second kill interrupts a run that itself recovered —
// and requires bit-identity every time. The generator is seeded, so a failure
// reproduces.
func TestFleetCrashRecoveryFuzz(t *testing.T) {
	ref, err := Run(durableShortConfig(2, 33))
	if err != nil {
		t.Fatal(err)
	}
	evalSteps := ref.Rooms[0].PlannedSteps

	iters := 8
	if testing.Short() {
		iters = 3
	}
	rng := rand.New(rand.NewSource(99))
	for it := 0; it < iters; it++ {
		cfg := durableShortConfig(2, 33)
		cfg.DataDir = t.TempDir()
		cfg.SnapshotEvery = 1 + rng.Intn(70)
		cfg.SyncEvery = rng.Intn(9) - 1
		cfg.Workers = 1 + rng.Intn(3)
		kills := []int{1 + rng.Intn(evalSteps-1)}
		if rng.Intn(2) == 1 && kills[0] < evalSteps-1 {
			kills = append(kills, kills[0]+1+rng.Intn(evalSteps-1-kills[0]))
		}
		for _, k := range kills {
			cfg.HaltAfter = k
			if _, err := Run(cfg); err != nil {
				t.Fatalf("iter %d (snap=%d sync=%d kills=%v): crash run: %v",
					it, cfg.SnapshotEvery, cfg.SyncEvery, kills, err)
			}
		}
		cfg.HaltAfter = 0
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("iter %d (snap=%d sync=%d kills=%v): recovery run: %v",
				it, cfg.SnapshotEvery, cfg.SyncEvery, kills, err)
		}
		for i := range ref.Rooms {
			if got.Rooms[i].TrajectoryHash != ref.Rooms[i].TrajectoryHash {
				t.Errorf("iter %d (snap=%d sync=%d workers=%d kills=%v): room %d hash %#x, want %#x",
					it, cfg.SnapshotEvery, cfg.SyncEvery, cfg.Workers, kills, i,
					got.Rooms[i].TrajectoryHash, ref.Rooms[i].TrajectoryHash)
			}
			if got.Rooms[i].Recovery.DecisionMismatches != 0 || got.Rooms[i].Recovery.PlantMismatches != 0 {
				t.Errorf("iter %d: room %d logged-vs-replayed mismatches: %+v", it, i, got.Rooms[i].Recovery)
			}
		}
	}
}
