package fleet

import (
	"fmt"
	"testing"
)

// BenchmarkFleetStep measures fleet throughput in control steps per second:
// each op is one control step in every room (supervised policy decision +
// one minute of plant physics + telemetry push). Rooms fan out over
// GOMAXPROCS workers. This is the perf baseline BENCH_fleet.json snapshots;
// later PRs regress against it.
func BenchmarkFleetStep(b *testing.B) {
	for _, rooms := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("rooms=%d", rooms), func(b *testing.B) {
			cfg := DefaultConfig(rooms, 13, seededFixed)
			cfg.WarmupS = 1800
			cfg.EvalS = float64(b.N) * cfg.Testbed.SamplePeriodS
			b.ResetTimer()
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if res.TotalSteps != rooms*b.N {
				b.Fatalf("executed %d steps, want %d", res.TotalSteps, rooms*b.N)
			}
			b.ReportMetric(res.StepsPerSec, "steps/s")
			b.ReportMetric(float64(res.Latency.P99.Nanoseconds()), "p99-ns/step")
		})
	}
}
