package fleet

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"tesla/internal/store"
)

// RecoveryInfo reports what a room's durable store contributed on boot. All
// counters are zero when durability is disabled or the store was fresh.
type RecoveryInfo struct {
	// Recovered is true when the store held any durable state (records or a
	// checkpoint) from a previous process.
	Recovered bool `json:"recovered,omitempty"`
	// SnapshotStep is the checkpoint step the controller resumed from, -1
	// when replay ran from scratch (no checkpoint, non-durable policy, or a
	// checkpoint that failed to restore).
	SnapshotStep int `json:"snapshot_step,omitempty"`
	// WarmupRecords / StepRecords count the valid WAL records recovered.
	WarmupRecords int `json:"warmup_records,omitempty"`
	StepRecords   int `json:"step_records,omitempty"`
	// ReplayedSteps counts evaluation steps re-decided through the real
	// Decide path (steps below the checkpoint only re-advance the plant).
	ReplayedSteps int `json:"replayed_steps,omitempty"`
	// DecisionMismatches counts replayed decisions that differ from the
	// logged set-point — zero unless the store came from a different build
	// or configuration.
	DecisionMismatches int `json:"decision_mismatches,omitempty"`
	// PlantMismatches counts re-simulated samples that differ from their WAL
	// record (same foreign-store signal as DecisionMismatches).
	PlantMismatches int `json:"plant_mismatches,omitempty"`

	WALCorruptions     int   `json:"wal_corruptions,omitempty"`
	WALTruncatedBytes  int64 `json:"wal_truncated_bytes,omitempty"`
	WALDroppedSegments int   `json:"wal_dropped_segments,omitempty"`
	InvalidSnapshots   int   `json:"invalid_snapshots,omitempty"`
}

// harnessState is the checkpointed view of the room accumulators — the
// partial sums as of the checkpoint step, so a recovered room's final result
// is bit-identical to an uninterrupted run's (same additions, same order).
type harnessState struct {
	Version int
	Steps   int
	Hash    uint64
	CEkWh   float64
	TSV     float64
	TrueTSV float64
	CI      float64
	MeanSp  float64
	MaxCold float64
}

const harnessVersion = 1

func (rr *roomRun) encodeHarness() ([]byte, error) {
	h := harnessState{
		Version: harnessVersion,
		Steps:   rr.res.Steps,
		Hash:    rr.hash,
		CEkWh:   rr.res.CEkWh,
		TSV:     rr.res.TSVFrac,
		TrueTSV: rr.res.TrueTSVFrac,
		CI:      rr.res.CIFrac,
		MeanSp:  rr.res.MeanSp,
		MaxCold: rr.res.MaxCold,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeHarness(blob []byte) (harnessState, error) {
	var h harnessState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&h); err != nil {
		return h, err
	}
	if h.Version != harnessVersion {
		return h, fmt.Errorf("fleet: harness state version %d, want %d", h.Version, harnessVersion)
	}
	return h, nil
}

// openStore opens the room's WAL + snapshot store and files the recovered
// records and checkpoint for warmup/replay to consume.
func (rr *roomRun) openStore(dir string) error { return rr.openStoreAs(dir, "") }

// openStoreAs is openStore with an explicit lock-holder identity, so a
// refused single-writer lock names the host that owns the room.
func (rr *roomRun) openStoreAs(dir, holder string) error {
	st, rec, err := store.Open(dir, store.Options{WAL: store.WALOptions{SyncEvery: rr.cfg.SyncEvery}, LockHolder: holder})
	if err != nil {
		return fmt.Errorf("fleet: room %s: %w", rr.res.Name, err)
	}
	warm, steps, err := store.Partition(rec.Records)
	if err != nil {
		// An out-of-order log is a foreign store; replaying it would corrupt
		// the trajectory, so fail loudly instead.
		st.Close()
		return fmt.Errorf("fleet: room %s: %w", rr.res.Name, err)
	}
	if len(warm) > rr.warmSteps || len(steps) > rr.evalSteps {
		st.Close()
		return fmt.Errorf("fleet: room %s: store holds %d warm-up + %d step records, horizon is %d + %d — config mismatch",
			rr.res.Name, len(warm), len(steps), rr.warmSteps, rr.evalSteps)
	}
	rr.st = st
	rr.recWarm, rr.recSteps = warm, steps
	rr.ckpt, rr.haveCkpt = rec.Checkpoint, rec.HaveCheckpoint

	info := &rr.res.Recovery
	info.Recovered = len(rec.Records) > 0 || rec.HaveCheckpoint
	info.SnapshotStep = -1
	info.WarmupRecords = len(warm)
	info.StepRecords = len(steps)
	info.WALCorruptions = rec.WAL.Corruptions
	info.WALTruncatedBytes = rec.WAL.TruncatedBytes
	info.WALDroppedSegments = rec.WAL.DroppedSegments
	info.InvalidSnapshots = rec.InvalidSnapshots
	return nil
}

// restoreCheckpoint rebuilds controller, supervisor and accumulator state
// from the checkpoint. The harness blob is decoded first (it is pure), so a
// stale-schema checkpoint is rejected before any component has been mutated.
func (rr *roomRun) restoreCheckpoint() error {
	d, ok := rr.durablePolicy()
	if !ok {
		return fmt.Errorf("policy is not durable")
	}
	h, err := decodeHarness(rr.ckpt.Harness)
	if err != nil {
		return err
	}
	if err := d.Restore(rr.ckpt.Policy); err != nil {
		return err
	}
	if err := rr.sup.Restore(rr.ckpt.Supervisor); err != nil {
		return err
	}
	rr.res.Steps = h.Steps
	rr.hash = h.Hash
	rr.res.CEkWh = h.CEkWh
	rr.res.TSVFrac = h.TSV
	rr.res.TrueTSVFrac = h.TrueTSV
	rr.res.CIFrac = h.CI
	rr.res.MeanSp = h.MeanSp
	rr.res.MaxCold = h.MaxCold
	return nil
}

// replay re-derives the evaluation steps the WAL holds. Below the restored
// checkpoint only the plant is re-advanced (controller state came from the
// snapshot); from the checkpoint on, every step runs through the real
// supervised Decide path, cross-checked against the logged decision. Either
// way the room lands on the exact state of a run that never stopped, and the
// live loop continues from startStep.
func (rr *roomRun) replay() error {
	if rr.st == nil || len(rr.recSteps) == 0 {
		return nil
	}
	info := &rr.res.Recovery

	snap := 0
	if rr.haveCkpt && rr.ckpt.Step >= 1 && rr.ckpt.Step <= len(rr.recSteps) {
		if _, ok := rr.durablePolicy(); ok {
			if err := rr.restoreCheckpoint(); err != nil {
				// Stale or foreign checkpoint: rebuild a fresh controller and
				// fall back to full replay. restoreCheckpoint may have
				// half-applied state, so the rebuild is not optional.
				if rerr := rr.buildController(); rerr != nil {
					return rerr
				}
				info.InvalidSnapshots++
			} else {
				snap = rr.ckpt.Step
				info.SnapshotStep = snap
			}
		}
	}

	for j := 0; j < snap; j++ {
		rec := &rr.recSteps[j]
		rr.tb.SetSetpoint(rec.Setpoint)
		s := rr.tb.Advance()
		rr.tr.Append(s)
		rr.last = s
		rr.checkSample(&rec.Sample, &s)
	}
	for j := snap; j < len(rr.recSteps); j++ {
		rec := &rr.recSteps[j]
		sp := rr.sup.Decide(rr.tr, rr.tr.Len()-1)
		// Replay applies the same set-point quantization as the live loop
		// (logged set-points are post-quantization), but never actuates —
		// the plant is re-advanced directly.
		if rr.cfg.Quantize != nil {
			sp = rr.cfg.Quantize(sp)
		}
		if sp != rec.Setpoint {
			info.DecisionMismatches++
		}
		rr.tb.SetSetpoint(sp)
		s := rr.tb.Advance()
		rr.tr.Append(s)
		rr.last = s
		rr.checkSample(&rec.Sample, &s)
		rr.applyStep(sp, &s)
		info.ReplayedSteps++
	}
	rr.startStep = len(rr.recSteps)
	return nil
}
