package fleet

import (
	"fmt"
	"math"
	"time"

	"tesla/internal/dataset"
	"tesla/internal/faults"
	"tesla/internal/rng"
	"tesla/internal/safety"
	"tesla/internal/telemetry"
	"tesla/internal/testbed"
)

// runRoom executes one room's full horizon: build the plant from the room's
// seed substreams, wrap the policy in its own safety supervisor, attach the
// room's fault scenario, then warm up and run the evaluation loop, pushing
// every evaluated sample into the room's bounded queue. Everything the
// function touches is room-local, which is the whole isolation story.
func runRoom(cfg *Config, idx int, q *telemetry.Queue) (RoomResult, error) {
	spec := cfg.Rooms[idx]
	stream := cfg.streamOf(idx)
	res := RoomResult{Room: idx, Name: cfg.nameOf(idx), Stream: stream}

	tbCfg := cfg.Testbed
	tbCfg.Seed = rng.SeedFor(cfg.Seed, testbedStream(stream))
	tb, err := testbed.New(tbCfg)
	if err != nil {
		return res, fmt.Errorf("fleet: room %s: %w", res.Name, err)
	}
	tb.UseProfile(spec.Profile)
	tb.SetSetpoint(cfg.InitSpC)

	pol, err := cfg.NewPolicy(idx, rng.SeedFor(cfg.Seed, policyStream(stream)))
	if err != nil {
		return res, fmt.Errorf("fleet: room %s: building policy: %w", res.Name, err)
	}
	supCfg := safety.DefaultConfig(cfg.ColdLimitC, tbCfg.ACU.SetpointMinC, tbCfg.ACU.SetpointMaxC)
	if cfg.Safety != nil {
		supCfg = *cfg.Safety
	}
	sup, err := safety.Wrap(pol, supCfg)
	if err != nil {
		return res, fmt.Errorf("fleet: room %s: %w", res.Name, err)
	}
	if spec.Scenario != nil {
		eng, err := faults.NewEngine(*spec.Scenario)
		if err != nil {
			return res, fmt.Errorf("fleet: room %s: %w", res.Name, err)
		}
		tb.AddStepHook(eng)
	}

	tr := dataset.NewTrace(tbCfg.SamplePeriodS, len(tb.Sensors.ACU), len(tb.Sensors.DC))
	warmSteps := int(cfg.WarmupS / tbCfg.SamplePeriodS)
	evalSteps := int(cfg.EvalS / tbCfg.SamplePeriodS)
	res.PlannedSteps = evalSteps
	for i := 0; i < warmSteps; i++ {
		tr.Append(tb.Advance())
	}

	const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211
	hash := uint64(fnvOffset)
	mix := func(v float64) {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			hash = (hash ^ (bits >> s & 0xff)) * fnvPrime
		}
	}
	res.latencies = make([]time.Duration, 0, evalSteps)
	for i := 0; i < evalSteps; i++ {
		stepStart := time.Now()
		sp := sup.Decide(tr, tr.Len()-1)
		tb.SetSetpoint(sp)
		s := tb.Advance()
		tr.Append(s)
		if spec.StallPerStep > 0 {
			time.Sleep(spec.StallPerStep)
		}
		res.latencies = append(res.latencies, time.Since(stepStart))

		// Non-blocking by construction: a full queue evicts and counts, so
		// telemetry backpressure can never stall this loop.
		q.Push(telemetry.RoomSample{Room: idx, Seq: uint64(i), Level: int(sup.Level()), S: s})

		res.Steps++
		res.CEkWh += s.ACUPowerKW * tbCfg.SamplePeriodS / 3600
		if s.MaxColdAisle > cfg.ColdLimitC {
			res.TSVFrac++
		}
		if s.TrueMaxColdC > cfg.ColdLimitC {
			res.TrueTSVFrac++
		}
		if s.Interrupted {
			res.CIFrac++
		}
		res.MeanSp += s.SetpointC
		if s.MaxColdAisle > res.MaxCold {
			res.MaxCold = s.MaxColdAisle
		}
		mix(sp)
		mix(s.MaxColdAisle)
		mix(s.TrueMaxColdC)
		mix(s.ACUPowerKW)
	}
	res.TSVFrac /= float64(res.Steps)
	res.TrueTSVFrac /= float64(res.Steps)
	res.CIFrac /= float64(res.Steps)
	res.MeanSp /= float64(res.Steps)
	res.TrajectoryHash = hash

	st := sup.Stats()
	res.SafetyMax = sup.MaxLevel()
	res.Degraded = res.SafetyMax > safety.LevelNormal
	res.Escalations = st.Escalations
	res.Overrides = st.Overrides
	res.Quarantines = st.QuarantineEvents
	_, res.QueueDropped = q.Stats()

	lat := append([]time.Duration(nil), res.latencies...)
	ls := latencyStats(lat)
	res.LatencyP50, res.LatencyP99 = ls.P50, ls.P99
	return res, nil
}
