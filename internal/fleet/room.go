package fleet

import (
	"fmt"
	"math"
	"path/filepath"
	"time"

	"tesla/internal/control"
	"tesla/internal/dataset"
	"tesla/internal/faults"
	"tesla/internal/rng"
	"tesla/internal/safety"
	"tesla/internal/store"
	"tesla/internal/telemetry"
	"tesla/internal/testbed"
)

const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211

// roomRun is one room's in-flight control loop: the plant, the supervised
// policy, the recorded trace, the accumulators, and (when durability is on)
// the room's WAL + snapshot store. Everything is room-local — the isolation
// contract — and every step flows through applyStep in a fixed order, so the
// accumulator and hash values are bit-identical whether a step was executed
// live or re-derived during crash recovery.
type roomRun struct {
	cfg   *Config
	spec  RoomSpec
	tbCfg testbed.Config
	tb    *testbed.Testbed
	pol   control.Policy
	sup   *safety.Supervisor
	tr    *dataset.Trace
	st    *store.Store
	q     *telemetry.Queue

	res  RoomResult
	hash uint64
	// last is the most recent plant sample (warm-up, replay or live) — what
	// a fleet-level scheduler reads at the step barrier to judge the room's
	// thermal headroom and cooling capacity.
	last testbed.Sample

	warmSteps int
	evalSteps int
	// startStep is the first evaluation step the live loop executes; recovery
	// moves it past the steps already re-derived from the WAL.
	startStep int

	// recWarm/recSteps are the records recovered from the WAL (empty on a
	// fresh store or with durability disabled).
	recWarm, recSteps []store.Record
	haveCkpt          bool
	ckpt              store.Checkpoint
}

// buildController constructs the room's policy and its safety supervisor from
// the room seed substreams — in the initial build and again when recovery must
// discard a half-restored controller and fall back to full replay. The seeds
// are pure functions of (fleet seed, stream), so a rebuilt controller is
// indistinguishable from a freshly booted one.
func (rr *roomRun) buildController() error {
	pol, err := rr.cfg.NewPolicy(rr.res.Room, rng.SeedFor(rr.cfg.Seed, policyStream(rr.res.Stream)))
	if err != nil {
		return fmt.Errorf("fleet: room %s: building policy: %w", rr.res.Name, err)
	}
	supCfg := safety.DefaultConfig(rr.cfg.ColdLimitC, rr.tbCfg.ACU.SetpointMinC, rr.tbCfg.ACU.SetpointMaxC)
	if rr.cfg.Safety != nil {
		supCfg = *rr.cfg.Safety
	}
	sup, err := safety.Wrap(pol, supCfg)
	if err != nil {
		return fmt.Errorf("fleet: room %s: %w", rr.res.Name, err)
	}
	rr.pol, rr.sup = pol, sup
	return nil
}

// durablePolicy reports whether the room's policy participates in
// checkpointing. Without it, checkpoints are not written and recovery
// replays the whole horizon through the freshly built controller — still
// bit-identical, just more replay work.
func (rr *roomRun) durablePolicy() (control.Durable, bool) {
	d, ok := rr.pol.(control.Durable)
	return d, ok
}

func (rr *roomRun) mix(v float64) {
	bits := math.Float64bits(v)
	for s := 0; s < 64; s += 8 {
		rr.hash = (rr.hash ^ (bits >> s & 0xff)) * fnvPrime
	}
}

// applyStep folds one executed evaluation step into the room accumulators.
// The call order — and therefore every float rounding — is identical for
// live and replayed steps; that is what makes the recovery hash bit-exact.
func (rr *roomRun) applyStep(sp float64, s *testbed.Sample) {
	rr.res.Steps++
	rr.res.CEkWh += s.ACUPowerKW * rr.tbCfg.SamplePeriodS / 3600
	if s.MaxColdAisle > rr.cfg.ColdLimitC {
		rr.res.TSVFrac++
	}
	if s.TrueMaxColdC > rr.cfg.ColdLimitC {
		rr.res.TrueTSVFrac++
	}
	if s.Interrupted {
		rr.res.CIFrac++
	}
	rr.res.MeanSp += s.SetpointC
	if s.MaxColdAisle > rr.res.MaxCold {
		rr.res.MaxCold = s.MaxColdAisle
	}
	rr.mix(sp)
	rr.mix(s.MaxColdAisle)
	rr.mix(s.TrueMaxColdC)
	rr.mix(s.ACUPowerKW)
}

// checkSample cross-checks a re-simulated sample against its WAL record.
// The simulated plant is deterministic, so any divergence means the store
// belongs to a different build or configuration — counted, not fatal, since
// the re-simulated trajectory is internally consistent either way.
func (rr *roomRun) checkSample(logged, got *testbed.Sample) {
	if logged.SetpointC != got.SetpointC || logged.ACUPowerKW != got.ACUPowerKW ||
		logged.MaxColdAisle != got.MaxColdAisle || logged.TrueMaxColdC != got.TrueMaxColdC ||
		logged.TimeS != got.TimeS {
		rr.res.Recovery.PlantMismatches++
	}
}

// newRoomRun builds the room-local world: plant from the room's seed
// substreams, policy wrapped in its own safety supervisor, fault scenario
// hooked into the testbed, empty trace.
func newRoomRun(cfg *Config, idx int, q *telemetry.Queue) (*roomRun, error) {
	spec := cfg.Rooms[idx]
	stream := cfg.streamOf(idx)
	rr := &roomRun{
		cfg: cfg, spec: spec, q: q, hash: fnvOffset,
		res: RoomResult{Room: idx, Name: cfg.nameOf(idx), Stream: stream},
	}

	rr.tbCfg = cfg.Testbed
	rr.tbCfg.Seed = rng.SeedFor(cfg.Seed, testbedStream(stream))
	// Per-room heterogeneity overrides; zero values keep the fleet template.
	if spec.Servers > 0 {
		rr.tbCfg.Servers = spec.Servers
	}
	if spec.ACUCoolKW > 0 {
		rr.tbCfg.ACU.MaxCoolKW = spec.ACUCoolKW
	}
	if spec.ThermalMass > 0 && spec.ThermalMass != 1 {
		rr.tbCfg.Room.ColdCapKJPerK *= spec.ThermalMass
		rr.tbCfg.Room.HotCapKJPerK *= spec.ThermalMass
		rr.tbCfg.Room.RackCapKJPerK *= spec.ThermalMass
	}
	tb, err := testbed.New(rr.tbCfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: room %s: %w", rr.res.Name, err)
	}
	rr.tb = tb
	tb.UseProfile(spec.Profile)
	tb.SetSetpoint(cfg.InitSpC)

	if err := rr.buildController(); err != nil {
		return nil, err
	}
	if spec.Scenario != nil {
		eng, err := faults.NewEngine(*spec.Scenario)
		if err != nil {
			return nil, fmt.Errorf("fleet: room %s: %w", rr.res.Name, err)
		}
		tb.AddStepHook(eng)
	}

	rr.tr = dataset.NewTrace(rr.tbCfg.SamplePeriodS, len(tb.Sensors.ACU), len(tb.Sensors.DC))
	rr.warmSteps = int(cfg.WarmupS / rr.tbCfg.SamplePeriodS)
	rr.evalSteps = int(cfg.EvalS / rr.tbCfg.SamplePeriodS)
	rr.res.PlannedSteps = rr.evalSteps
	return rr, nil
}

// warmup advances the plant through the recorded warm-up window, logging any
// warm-up records the WAL does not already hold.
func (rr *roomRun) warmup() error {
	for i := 0; i < rr.warmSteps; i++ {
		s := rr.tb.Advance()
		rr.tr.Append(s)
		rr.last = s
		switch {
		case i < len(rr.recWarm):
			rr.checkSample(&rr.recWarm[i].Sample, &s)
		// Only re-log missing warm-up records while the log holds no step
		// records yet: warm-up frames appended after step frames would break
		// the log's partition invariant on the next recovery.
		case rr.st != nil && len(rr.recSteps) == 0:
			rec := store.Record{Kind: store.KindWarmup, Step: uint32(i), Sample: s}
			if err := rr.st.AppendRecord(&rec); err != nil {
				return fmt.Errorf("fleet: room %s: %w", rr.res.Name, err)
			}
		}
	}
	return nil
}

// writeCheckpoint snapshots the controller, supervisor and harness
// accumulators; step is the first evaluation step a future recovery would
// still need to replay.
func (rr *roomRun) writeCheckpoint(d control.Durable, step int) error {
	polBlob, err := d.Snapshot()
	if err != nil {
		return err
	}
	supBlob, err := rr.sup.Snapshot()
	if err != nil {
		return err
	}
	harness, err := rr.encodeHarness()
	if err != nil {
		return err
	}
	return rr.st.WriteCheckpoint(store.Checkpoint{
		Step: step, Policy: polBlob, Supervisor: supBlob, Harness: harness,
	})
}

// snapInterval resolves the effective checkpoint interval.
func (rr *roomRun) snapInterval() int {
	if rr.cfg.SnapshotEvery > 0 {
		return rr.cfg.SnapshotEvery
	}
	return 64
}

// stepOnce executes evaluation step i live: decide, actuate, sample, push
// telemetry, fold accumulators, log, checkpoint on the interval. The body is
// shared by the batch loop (run) and the step-wise Runner the control plane
// hosts, so both produce the same bits.
func (rr *roomRun) stepOnce(i int, d control.Durable, durable bool, snapEvery int) error {
	stepStart := time.Now()
	sp := rr.sup.Decide(rr.tr, rr.tr.Len()-1)
	if rr.cfg.Quantize != nil {
		sp = rr.cfg.Quantize(sp)
	}
	if rr.cfg.Actuate != nil {
		if err := rr.cfg.Actuate(rr.res.Room, sp); err != nil {
			return fmt.Errorf("fleet: room %s: actuate step %d: %w", rr.res.Name, i, err)
		}
	} else {
		rr.tb.SetSetpoint(sp)
	}
	s := rr.tb.Advance()
	rr.tr.Append(s)
	rr.last = s
	if rr.cfg.Publish != nil {
		rr.cfg.Publish(rr.res.Room, s)
	}
	if rr.spec.StallPerStep > 0 {
		time.Sleep(rr.spec.StallPerStep)
	}
	rr.res.latencies = append(rr.res.latencies, time.Since(stepStart))

	// Non-blocking by construction: a full queue evicts and counts, so
	// telemetry backpressure can never stall this loop.
	rr.q.Push(telemetry.RoomSample{Room: rr.res.Room, Seq: uint64(i), Level: int(rr.sup.Level()), S: s})
	rr.applyStep(sp, &s)

	if rr.st != nil {
		rec := store.Record{
			Kind: store.KindStep, Step: uint32(i), Setpoint: sp,
			Level: uint8(rr.sup.Level()), Sample: s,
		}
		if err := rr.st.AppendRecord(&rec); err != nil {
			return fmt.Errorf("fleet: room %s: %w", rr.res.Name, err)
		}
		if durable && (i+1)%snapEvery == 0 && i+1 < rr.evalSteps {
			if err := rr.writeCheckpoint(d, i+1); err != nil {
				return fmt.Errorf("fleet: room %s: checkpoint: %w", rr.res.Name, err)
			}
		}
	}
	return nil
}

// closeStore writes the final checkpoint (durable policies only) and closes
// the store; a restart of the completed horizon then recovers without
// replaying a single step.
func (rr *roomRun) closeStore() error {
	if rr.st == nil {
		return nil
	}
	if d, ok := rr.durablePolicy(); ok {
		if err := rr.writeCheckpoint(d, rr.res.Steps); err != nil {
			return fmt.Errorf("fleet: room %s: final checkpoint: %w", rr.res.Name, err)
		}
	}
	if err := rr.st.Close(); err != nil {
		return fmt.Errorf("fleet: room %s: closing store: %w", rr.res.Name, err)
	}
	rr.st = nil
	return nil
}

// run executes the room's remaining horizon live: decide, actuate, log,
// checkpoint. When the HaltAfter crash hook fires the store is abandoned the
// way a killed process leaves it — unflushed buffer lost, lock released by
// descriptor death, tail possibly torn.
func (rr *roomRun) run() error {
	cfg := rr.cfg
	d, durable := rr.durablePolicy()
	snapEvery := rr.snapInterval()

	rr.res.latencies = make([]time.Duration, 0, rr.evalSteps-rr.startStep)
	for i := rr.startStep; i < rr.evalSteps; i++ {
		if cfg.HaltAfter > 0 && i == cfg.HaltAfter {
			rr.res.Halted = true
			if rr.st != nil {
				rr.st.Abandon()
				rr.st = nil
			}
			return nil
		}
		if err := rr.stepOnce(i, d, durable, snapEvery); err != nil {
			return err
		}
	}
	return rr.closeStore()
}

// finish divides the accumulators and collects the supervisor's counters.
func (rr *roomRun) finish() RoomResult {
	if rr.res.Steps > 0 {
		rr.res.TSVFrac /= float64(rr.res.Steps)
		rr.res.TrueTSVFrac /= float64(rr.res.Steps)
		rr.res.CIFrac /= float64(rr.res.Steps)
		rr.res.MeanSp /= float64(rr.res.Steps)
	}
	rr.res.TrajectoryHash = rr.hash

	st := rr.sup.Stats()
	rr.res.SafetyMax = rr.sup.MaxLevel()
	rr.res.Degraded = rr.res.SafetyMax > safety.LevelNormal
	rr.res.Escalations = st.Escalations
	rr.res.Overrides = st.Overrides
	rr.res.Quarantines = st.QuarantineEvents
	_, rr.res.QueueDropped = rr.q.Stats()

	lat := append([]time.Duration(nil), rr.res.latencies...)
	ls := ComputeLatencyStats(lat)
	rr.res.LatencyP50, rr.res.LatencyP99 = ls.P50, ls.P99
	return rr.res
}

// runRoom executes one room's full horizon. With durability enabled the room
// first recovers whatever a previous process persisted under
// DataDir/<room-name>, replays the WAL tail through the real decision path,
// and only then continues live — landing on the exact trajectory of a run
// that never stopped.
func runRoom(cfg *Config, idx int, q *telemetry.Queue) (RoomResult, error) {
	rr, err := newRoomRun(cfg, idx, q)
	if err != nil {
		return RoomResult{Room: idx, Name: cfg.nameOf(idx)}, err
	}
	if cfg.DataDir != "" {
		if err := rr.openStore(filepath.Join(cfg.DataDir, rr.res.Name)); err != nil {
			return rr.res, err
		}
	}
	if err := rr.warmup(); err != nil {
		return rr.res, err
	}
	if err := rr.replay(); err != nil {
		return rr.res, err
	}
	if err := rr.run(); err != nil {
		return rr.res, err
	}
	return rr.finish(), nil
}
