package fleet

import (
	"errors"
	"testing"

	"tesla/internal/store"
)

// TestRunnerMatchesBatchRun: a room stepped one Step() at a time produces
// the same bits as the same room inside a batch fleet Run — the property the
// sharded control plane stands on.
func TestRunnerMatchesBatchRun(t *testing.T) {
	ref, err := Run(shortConfig(3, 7))
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 3; idx++ {
		r, err := NewRunner(shortConfig(3, 7), idx, nil, "test")
		if err != nil {
			t.Fatal(err)
		}
		for !r.Done() {
			if err := r.Step(); err != nil {
				t.Fatal(err)
			}
		}
		res, err := r.Finish()
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Rooms[idx]
		if res.TrajectoryHash != want.TrajectoryHash {
			t.Errorf("room %d: runner hash %#x, batch %#x", idx, res.TrajectoryHash, want.TrajectoryHash)
		}
		if res.CEkWh != want.CEkWh || res.TSVFrac != want.TSVFrac || res.MeanSp != want.MeanSp {
			t.Errorf("room %d: runner metrics diverge from batch run", idx)
		}
	}
}

// TestRunnerDrainResumeBitIdentical is the hand-off core: drain a durable
// room mid-horizon (checkpoint barrier + closed store), resume it in a fresh
// Runner — a different host in real life — and the completed trajectory is
// bit-identical to a never-interrupted run.
func TestRunnerDrainResumeBitIdentical(t *testing.T) {
	ref, err := Run(durableShortConfig(2, 21))
	if err != nil {
		t.Fatal(err)
	}

	cfg := durableShortConfig(2, 21)
	cfg.DataDir = t.TempDir()
	cfg.SnapshotEvery = 10
	src, err := NewRunner(cfg, 0, nil, "source-shard")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 23; i++ {
		if err := src.Step(); err != nil {
			t.Fatal(err)
		}
	}
	step, err := src.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if step != 23 {
		t.Fatalf("drained at step %d, want 23", step)
	}

	dst, err := NewRunner(cfg, 0, nil, "target-shard")
	if err != nil {
		t.Fatal(err)
	}
	if !dst.Recovery().Recovered {
		t.Fatal("resumed runner recovered nothing — hand-off lost the durable state")
	}
	if dst.Recovery().SnapshotStep != 23 {
		t.Fatalf("resumed from checkpoint step %d, want the drain barrier at 23", dst.Recovery().SnapshotStep)
	}
	if dst.StepIndex() != 23 {
		t.Fatalf("resume positioned at step %d, want 23", dst.StepIndex())
	}
	for !dst.Done() {
		if err := dst.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := dst.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Rooms[0]
	if res.TrajectoryHash != want.TrajectoryHash {
		t.Fatalf("hand-off hash %#x, uninterrupted %#x — migration is not bit-identical", res.TrajectoryHash, want.TrajectoryHash)
	}
	if res.Recovery.DecisionMismatches != 0 || res.Recovery.PlantMismatches != 0 {
		t.Fatalf("replay mismatches after hand-off: %+v", res.Recovery)
	}
	if res.CEkWh != want.CEkWh || res.SafetyMax != want.SafetyMax || res.Escalations != want.Escalations {
		t.Fatal("metrics diverged across hand-off")
	}
}

// TestRunnerSecondHostRefused: while one Runner hosts a room, a second host
// opening the same data dir gets ErrStoreLocked naming the holder — the
// double-writer race a botched failover would otherwise hit.
func TestRunnerSecondHostRefused(t *testing.T) {
	cfg := durableShortConfig(1, 9)
	cfg.DataDir = t.TempDir()
	r1, err := NewRunner(cfg, 0, nil, "shard-alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Abandon()

	_, err = NewRunner(cfg, 0, nil, "shard-beta")
	if !errors.Is(err, store.ErrStoreLocked) {
		t.Fatalf("second host got %v, want ErrStoreLocked", err)
	}
	var lerr *store.LockedError
	if !errors.As(err, &lerr) || lerr.Holder != "shard-alpha" {
		t.Fatalf("lock error %v does not name shard-alpha", err)
	}
}
