package fleet

import (
	"fmt"
	"path/filepath"
	"time"

	"tesla/internal/control"
	"tesla/internal/telemetry"
	"tesla/internal/testbed"
)

// Runner is the step-wise form of one room's control loop, built for hosts
// that need to start, pause, hand off or kill a room mid-horizon — the
// sharded control plane. It drives exactly the same code path as Run's batch
// loop (construction, recovery, per-step execution and accumulator folding
// are shared with roomRun), so a room stepped by a Runner produces the same
// trajectory hash, bit for bit, as the same room inside a batch fleet run.
//
// A Runner is not safe for concurrent use; give each room one goroutine.
type Runner struct {
	rr      *roomRun
	cfg     Config
	d       control.Durable
	durable bool
	snap    int
	next    int
	closed  bool
}

// NewRunner builds, recovers and warms up room idx of cfg, leaving the
// Runner positioned at the first evaluation step that still needs to
// execute. With cfg.DataDir set the room's store is opened (single-writer
// locked), whatever a previous host persisted is replayed through the real
// Decide path, and stepping resumes where the durable record ends — the
// crash-recovery machinery, reused as the failover/migration path.
// lockHolder names this host in the store's lock file so a racing second
// host gets a useful refusal.
func NewRunner(cfg Config, idx int, q *telemetry.Queue, lockHolder string) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(cfg.Rooms) {
		return nil, fmt.Errorf("fleet: room index %d outside fleet of %d", idx, len(cfg.Rooms))
	}
	if q == nil {
		cap := cfg.QueueCap
		if cap <= 0 {
			cap = 512
		}
		q = telemetry.NewQueue(cap)
	}
	r := &Runner{cfg: cfg}
	rr, err := newRoomRun(&r.cfg, idx, q)
	if err != nil {
		return nil, err
	}
	r.rr = rr
	if r.cfg.DataDir != "" {
		if err := rr.openStoreAs(filepath.Join(r.cfg.DataDir, rr.res.Name), lockHolder); err != nil {
			return nil, err
		}
	}
	if err := rr.warmup(); err != nil {
		r.abandonStore()
		return nil, err
	}
	if err := rr.replay(); err != nil {
		r.abandonStore()
		return nil, err
	}
	r.d, r.durable = rr.durablePolicy()
	r.snap = rr.snapInterval()
	r.next = rr.startStep
	rr.res.latencies = make([]time.Duration, 0, rr.evalSteps-rr.startStep)
	return r, nil
}

func (r *Runner) abandonStore() {
	if r.rr.st != nil {
		r.rr.st.Abandon()
		r.rr.st = nil
	}
}

// Name returns the room's display name.
func (r *Runner) Name() string { return r.rr.res.Name }

// Room returns the room's index in the fleet config.
func (r *Runner) Room() int { return r.rr.res.Room }

// StepIndex is the next evaluation step Step would execute — after recovery,
// the first step the durable record does not already cover.
func (r *Runner) StepIndex() int { return r.next }

// PlannedSteps is the room's evaluation horizon.
func (r *Runner) PlannedSteps() int { return r.rr.evalSteps }

// Done reports whether the horizon is complete.
func (r *Runner) Done() bool { return r.next >= r.rr.evalSteps }

// Recovery reports what the room's store contributed when the Runner opened.
func (r *Runner) Recovery() RecoveryInfo { return r.rr.res.Recovery }

// Plant exposes the room's simulated testbed so a host can attach its
// field-bus stack (device sim bridge + gateway device) between NewRunner
// and the first Step — warmup and replay never actuate, so late binding
// is safe. The control loop itself must never touch the plant directly
// once Config.Actuate is set.
func (r *Runner) Plant() *testbed.Testbed { return r.rr.tb }

// LastSample returns the most recent plant sample (from warm-up, recovery
// replay or the last Step) — the per-room observation a fleet-level
// scheduler reads at its step barrier: cold-aisle headroom
// (ColdLimitC − MaxColdAisle), compressor duty, IT power. The sample is the
// delivered telemetry view (fault hooks applied), which is exactly what a
// real scheduler would see. The returned sample shares its slices with the
// runner; callers must not mutate them.
func (r *Runner) LastSample() testbed.Sample { return r.rr.last }

// Step executes one evaluation step — identical, bit for bit, to the same
// step inside a batch fleet run.
func (r *Runner) Step() error {
	if r.closed {
		return fmt.Errorf("fleet: room %s: runner closed", r.rr.res.Name)
	}
	if r.Done() {
		return fmt.Errorf("fleet: room %s: horizon complete", r.rr.res.Name)
	}
	if err := r.rr.stepOnce(r.next, r.d, r.durable, r.snap); err != nil {
		return err
	}
	r.next++
	return nil
}

// Drain is the hand-off write barrier: checkpoint the controller at the
// current step boundary, flush and close the store, release the lock. The
// room can then be resumed by another host — from this or any machine that
// can see the data directory — continuing bit-identically at StepIndex. The
// Runner is unusable afterwards.
func (r *Runner) Drain() (step int, err error) {
	if r.closed {
		return r.next, fmt.Errorf("fleet: room %s: runner closed", r.rr.res.Name)
	}
	r.closed = true
	return r.next, r.rr.closeStore()
}

// Finish completes a Done Runner: final checkpoint, store closed, metrics
// divided and counters collected. The result matches the RoomResult the same
// room produces inside a batch fleet run.
func (r *Runner) Finish() (RoomResult, error) {
	if r.closed {
		return r.rr.res, fmt.Errorf("fleet: room %s: runner closed", r.rr.res.Name)
	}
	if !r.Done() {
		return r.rr.res, fmt.Errorf("fleet: room %s: finish at step %d of %d", r.rr.res.Name, r.next, r.rr.evalSteps)
	}
	r.closed = true
	if err := r.rr.closeStore(); err != nil {
		return r.rr.res, err
	}
	return r.rr.finish(), nil
}

// Abandon simulates this host dying with the room live: the store descriptor
// closes without flushing (buffered records lost, tail possibly torn) and
// the lock releases the way a dead process's descriptors release it. The
// room recovers on its next host exactly as after a real kill -9.
func (r *Runner) Abandon() {
	r.closed = true
	r.abandonStore()
}

// Status is a cheap mid-run observability snapshot (the authoritative result
// comes from Finish).
type RunnerStatus struct {
	Room      int     `json:"room"`
	Name      string  `json:"name"`
	Step      int     `json:"step"`
	Planned   int     `json:"planned"`
	EnergyKWh float64 `json:"energy_kwh"`
	MaxColdC  float64 `json:"max_cold_c"`
}

// Status snapshots the room's progress.
func (r *Runner) Status() RunnerStatus {
	return RunnerStatus{
		Room:      r.rr.res.Room,
		Name:      r.rr.res.Name,
		Step:      r.next,
		Planned:   r.rr.evalSteps,
		EnergyKWh: r.rr.res.CEkWh,
		MaxColdC:  r.rr.res.MaxCold,
	}
}
