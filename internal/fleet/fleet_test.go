package fleet

import (
	"testing"
	"time"

	"tesla/internal/control"
	"tesla/internal/faults"
	"tesla/internal/safety"
	"tesla/internal/workload"
)

// seededFixed builds a cheap deterministic policy whose set-point depends on
// the room's policy seed — so the tests exercise the per-room seed
// derivation, not just the plant physics.
func seededFixed(room int, seed uint64) (control.Policy, error) {
	return control.Fixed{SetpointC: 22.8 + float64(seed%64)/128}, nil
}

// shortConfig returns an n-room fleet with a CI-friendly horizon: 30 warm-up
// steps and 60 evaluated steps per room.
func shortConfig(n int, seed uint64) Config {
	cfg := DefaultConfig(n, seed, seededFixed)
	cfg.WarmupS = 1800
	cfg.EvalS = 3600
	return cfg
}

// TestFleetDeterministic is the acceptance gate: for fixed seeds, per-room
// trajectories are bit-identical across worker counts and independent of how
// many sibling rooms run alongside.
func TestFleetDeterministic(t *testing.T) {
	cfg1 := shortConfig(16, 7)
	cfg1.Workers = 1
	r1, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg4 := shortConfig(16, 7)
	cfg4.Workers = 4
	r4, err := Run(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Rooms {
		if r1.Rooms[i].TrajectoryHash != r4.Rooms[i].TrajectoryHash {
			t.Errorf("room %d: trajectory differs between workers=1 and workers=4", i)
		}
		if r1.Rooms[i].CEkWh != r4.Rooms[i].CEkWh || r1.Rooms[i].TSVFrac != r4.Rooms[i].TSVFrac {
			t.Errorf("room %d: metrics differ across worker counts", i)
		}
	}

	// Distinct rooms must see distinct trajectories (the per-room substreams
	// and profiles are actually different).
	seen := map[uint64]int{}
	for i, rr := range r1.Rooms {
		if prev, dup := seen[rr.TrajectoryHash]; dup {
			t.Errorf("rooms %d and %d share a trajectory hash — per-room seeding is broken", prev, i)
		}
		seen[rr.TrajectoryHash] = i
	}

	// Room 0 alone == room 0 within the 16-room fleet; same for a middle
	// room reproduced via its explicit stream.
	solo := shortConfig(16, 7)
	solo.Rooms = solo.Rooms[:1]
	s0, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	if s0.Rooms[0].TrajectoryHash != r1.Rooms[0].TrajectoryHash {
		t.Error("room 0 alone differs from room 0 inside the 16-room fleet")
	}
	mid := shortConfig(16, 7)
	spec7 := mid.Rooms[7]
	spec7.Stream = 7
	mid.Rooms = []RoomSpec{spec7}
	s7, err := Run(mid)
	if err != nil {
		t.Fatal(err)
	}
	if s7.Rooms[0].TrajectoryHash != r1.Rooms[7].TrajectoryHash {
		t.Error("room 7 reproduced via Stream=7 differs from room 7 inside the fleet")
	}
}

// TestFleetIsolation is the acceptance gate: a room with an injected
// telemetry-gap fault and a slow device finishes degraded while every
// sibling completes every control step with zero dropped telemetry and a
// trajectory bit-identical to running alone.
func TestFleetIsolation(t *testing.T) {
	mk := func(faulty bool) Config {
		cfg := shortConfig(4, 11)
		cfg.Workers = 4
		if faulty {
			cfg.Rooms[3].Scenario = &faults.Scenario{
				Name: "gap", Seed: 5,
				Events: []faults.Event{{Kind: faults.TelemetryGap, StartS: cfg.WarmupS + 300, EndS: cfg.WarmupS + 1500}},
			}
			cfg.Rooms[3].StallPerStep = 300 * time.Microsecond
		}
		return cfg
	}
	res, err := Run(mk(true))
	if err != nil {
		t.Fatal(err)
	}

	faulty := res.Rooms[3]
	if !faulty.Degraded || faulty.SafetyMax < safety.LevelHold {
		t.Errorf("faulty room did not degrade: max level %s", faulty.SafetyMax)
	}
	if faulty.Steps != faulty.PlannedSteps {
		t.Errorf("faulty room executed %d/%d steps — even a degraded room keeps stepping", faulty.Steps, faulty.PlannedSteps)
	}

	healthy, err := Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rr := res.Rooms[i]
		if rr.Steps != rr.PlannedSteps || rr.Steps == 0 {
			t.Errorf("sibling %d executed %d/%d steps", i, rr.Steps, rr.PlannedSteps)
		}
		if rr.QueueDropped != 0 {
			t.Errorf("sibling %d dropped %d telemetry samples", i, rr.QueueDropped)
		}
		if rr.TrajectoryHash != healthy.Rooms[i].TrajectoryHash {
			t.Errorf("sibling %d trajectory changed because room 3 was faulty — isolation broken", i)
		}
		if rr.Degraded {
			t.Errorf("sibling %d degraded to %s alongside the faulty room", i, rr.SafetyMax)
		}
	}

	total := 0
	for _, rr := range res.Rooms {
		total += rr.Steps
	}
	if got := res.Rollup.Samples + res.Rollup.Dropped; got != uint64(total) {
		t.Errorf("pipeline accounting: ingested %d + dropped %d != %d steps", res.Rollup.Samples, res.Rollup.Dropped, total)
	}
}

// TestFleetBackpressureIsObservable forces the ingestor to lag a tiny queue
// and checks the loss is (a) harmless to control and (b) fully accounted.
func TestFleetBackpressureIsObservable(t *testing.T) {
	cfg := shortConfig(1, 3)
	cfg.QueueCap = 8
	cfg.IngestEvery = 2 * time.Second // guarantees the producer laps the consumer
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Rooms[0]
	if rr.Steps != rr.PlannedSteps {
		t.Fatalf("backpressure stalled the control loop: %d/%d steps", rr.Steps, rr.PlannedSteps)
	}
	if rr.QueueDropped == 0 {
		t.Fatal("expected telemetry drops with an 8-sample queue and a 2s ingest interval")
	}
	if res.Rollup.Samples+res.Rollup.Dropped != uint64(rr.Steps) {
		t.Fatalf("loss not accounted: %d ingested + %d dropped != %d steps",
			res.Rollup.Samples, res.Rollup.Dropped, rr.Steps)
	}
	if res.Rollup.Gaps == 0 {
		t.Fatal("sequence gaps must surface when samples were evicted mid-stream")
	}
}

func TestFleetRollupMatchesRoomTruthWhenLossless(t *testing.T) {
	cfg := shortConfig(2, 9)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rollup.Dropped != 0 {
		t.Skipf("unexpected drops (%d) under a roomy queue; accounting covered elsewhere", res.Rollup.Dropped)
	}
	var wantViol, wantSteps int
	var wantMax float64
	for _, rr := range res.Rooms {
		wantSteps += rr.Steps
		wantViol += int(rr.TSVFrac*float64(rr.Steps) + 0.5)
		if rr.MaxCold > wantMax {
			wantMax = rr.MaxCold
		}
	}
	if res.Rollup.Samples != uint64(wantSteps) {
		t.Fatalf("rollup ingested %d, rooms executed %d", res.Rollup.Samples, wantSteps)
	}
	if res.Rollup.ViolationMin != wantViol {
		t.Fatalf("rollup violation minutes %d, rooms counted %d", res.Rollup.ViolationMin, wantViol)
	}
	if res.Rollup.MaxColdC != wantMax {
		t.Fatalf("rollup max cold %g, rooms saw %g", res.Rollup.MaxColdC, wantMax)
	}
	var levels uint64
	for _, n := range res.Rollup.SafetyLevels {
		levels += n
	}
	if levels != res.Rollup.Samples {
		t.Fatalf("safety histogram covers %d steps, ingested %d", levels, res.Rollup.Samples)
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config must fail")
	}
	cfg := shortConfig(2, 1)
	cfg.NewPolicy = nil
	if _, err := Run(cfg); err == nil {
		t.Fatal("nil policy factory must fail")
	}
	cfg = shortConfig(3, 1)
	cfg.Rooms[1].Stream = 2 // collides with room 2's default stream
	if err := cfg.Validate(); err == nil {
		t.Fatal("duplicate seed streams must fail validation")
	}
	cfg = shortConfig(2, 1)
	cfg.Rooms[0].Profile = nil
	if _, err := Run(cfg); err == nil {
		t.Fatal("missing profile must fail")
	}
	cfg = shortConfig(1, 1)
	cfg.WarmupS = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero warm-up must fail (policies need at least one step of history)")
	}
	cfg = shortConfig(1, 1)
	cfg.Rooms[0].Scenario = &faults.Scenario{Name: "bad"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid fault scenario must fail")
	}
}

func TestDiurnalSpecsHeterogeneous(t *testing.T) {
	specs := DiurnalSpecs(6, 42)
	if len(specs) != 6 {
		t.Fatalf("got %d specs", len(specs))
	}
	for i, s := range specs {
		d, ok := s.Profile.(*workload.Diurnal)
		if !ok {
			t.Fatalf("spec %d profile %T", i, s.Profile)
		}
		want := []workload.Setting{workload.Medium, workload.High, workload.Idle}[i%3]
		if d.Setting != want {
			t.Fatalf("spec %d load %s, want %s", i, d.Setting, want)
		}
	}
}
