package faults

import (
	"math"
	"testing"

	"tesla/internal/testbed"
	"tesla/internal/thermo"
	"tesla/internal/workload"
)

func newBed(t *testing.T, seed uint64) *testbed.Testbed {
	t.Helper()
	cfg := testbed.DefaultConfig()
	cfg.Seed = seed
	tb, err := testbed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb.UseProfile(workload.Constant{Util: 0.35, Label: "faults-test"})
	return tb
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Name: "empty"},
		{Name: "inverted", Events: []Event{{Kind: SensorStuck, StartS: 10, EndS: 5}}},
		{Name: "neg-sensor", Events: []Event{{Kind: SensorDrift, StartS: 0, EndS: 1, Sensor: -1}}},
		{Name: "no-delay", Events: []Event{{Kind: TelemetryDelay, StartS: 0, EndS: 1}}},
		{Name: "unknown", Events: []Event{{Kind: Kind("bogus"), StartS: 0, EndS: 1}}},
	}
	for _, sc := range bad {
		if _, err := NewEngine(sc); err == nil {
			t.Errorf("scenario %q accepted", sc.Name)
		}
	}
	if _, err := NewEngine(Scenario{Name: "ok", Events: []Event{
		{Kind: TelemetryGap, StartS: 0, EndS: 60},
	}}); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestKindClasses(t *testing.T) {
	want := map[Kind]string{
		SensorStuck: "sensor", SensorDrift: "sensor", SensorDropout: "sensor", SensorNoise: "sensor",
		ActuatorLatch: "actuator", ActuatorCutout: "actuator", ActuatorDerated: "actuator",
		TelemetryGap: "telemetry", TelemetryDelay: "telemetry",
	}
	for k, c := range want {
		if k.Class() != c {
			t.Errorf("%s class %q, want %q", k, k.Class(), c)
		}
	}
	if Kind("bogus").Class() != "unknown" {
		t.Errorf("unknown kind must classify as unknown")
	}
}

// TestEngineAppliesAndClears walks a sensor-stuck and an actuator-latch
// window and checks the plant is mutated exactly inside them.
func TestEngineAppliesAndClears(t *testing.T) {
	tb := newBed(t, 3)
	tb.SetSetpoint(23)
	start := tb.TimeS()
	eng, err := NewEngine(Scenario{Name: "s", Seed: 1, Events: []Event{
		{Kind: SensorStuck, StartS: start + 120, EndS: start + 300, Sensor: 4, Value: 30},
		{Kind: ActuatorLatch, StartS: start + 120, EndS: start + 300},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tb.AddStepHook(eng)

	for i := 0; i < 10; i++ {
		s := tb.Advance()
		elapsed := s.TimeS - start
		stuck := tb.Sensors.DC[4].Mode == thermo.FaultStuck
		latched := tb.ACU.LatchFailed()
		// The hook runs at the start of Advance, so the sample at time T
		// reflects the window state of T-period.
		inWindow := elapsed-60 >= 120 && elapsed-60 < 300
		if stuck != inWindow || latched != inWindow {
			t.Fatalf("t=%gs: stuck=%v latched=%v, want %v", elapsed, stuck, latched, inWindow)
		}
		if inWindow {
			if got := tb.Sensors.DC[4].Read(tb.Room, nil); got != 30 {
				t.Fatalf("stuck sensor reads %g, want 30", got)
			}
			if sp := tb.SetSetpoint(27); sp != 23 {
				t.Fatalf("latched set-point moved to %g", sp)
			}
		}
	}
	if tb.Sensors.DC[4].Mode != thermo.FaultNone || tb.ACU.LatchFailed() {
		t.Fatalf("faults must clear after the window")
	}
	if len(eng.Log()) != 4 {
		t.Fatalf("expected 4 transitions, got %d: %+v", len(eng.Log()), eng.Log())
	}
	// The latch must be free again.
	if sp := tb.SetSetpoint(27); sp != 27 {
		t.Fatalf("latch did not release: %g", sp)
	}
}

// TestDriftAccumulates checks the drift fault integrates over the window and
// resets on clear.
func TestDriftAccumulates(t *testing.T) {
	tb := newBed(t, 4)
	start := tb.TimeS()
	eng, err := NewEngine(Scenario{Name: "d", Seed: 2, Events: []Event{
		{Kind: SensorDrift, StartS: start, EndS: start + 600, Sensor: 2, Value: 0.1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tb.AddStepHook(eng)
	for i := 0; i < 5; i++ {
		tb.Advance()
	}
	got := tb.Sensors.DC[2].DriftC
	if math.Abs(got-0.5) > 1e-9 { // 5 steps × 0.1 °C/min × 1 min
		t.Fatalf("drift after 5 min = %g, want 0.5", got)
	}
	for i := 0; i < 10; i++ {
		tb.Advance()
	}
	if tb.Sensors.DC[2].DriftC != 0 || tb.Sensors.DC[2].Mode != thermo.FaultNone {
		t.Fatalf("drift must reset when the window closes")
	}
}

// TestTelemetryGapAndDelay checks the telemetry-layer faults rewrite the
// delivered sample but never the ground truth.
func TestTelemetryGapAndDelay(t *testing.T) {
	tb := newBed(t, 5)
	start := tb.TimeS()
	eng, err := NewEngine(Scenario{Name: "g", Seed: 3, Events: []Event{
		{Kind: TelemetryGap, StartS: start + 120, EndS: start + 300},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tb.AddStepHook(eng)
	var samples []testbed.Sample
	for i := 0; i < 8; i++ {
		samples = append(samples, tb.Advance())
	}
	// Samples 3 and 4 fall inside the gap (hook state at Advance start):
	// they must repeat sample 2's telemetry under fresh timestamps.
	for _, i := range []int{3, 4} {
		if samples[i].MaxColdAisle != samples[2].MaxColdAisle ||
			samples[i].ACUPowerKW != samples[2].ACUPowerKW {
			t.Fatalf("gap sample %d not frozen to sample 2", i)
		}
		if samples[i].TimeS == samples[2].TimeS {
			t.Fatalf("gap sample %d must keep its own timestamp", i)
		}
		if samples[i].TrueMaxColdC == samples[2].TrueMaxColdC {
			t.Fatalf("ground truth must keep evolving through the gap")
		}
	}
	if samples[5].MaxColdAisle == samples[2].MaxColdAisle {
		t.Fatalf("delivery must resume after the gap")
	}

	tb2 := newBed(t, 5)
	start2 := tb2.TimeS()
	eng2, err := NewEngine(Scenario{Name: "dl", Seed: 3, Events: []Event{
		{Kind: TelemetryDelay, StartS: start2 + 240, EndS: start2 + 600, DelaySteps: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tb2.AddStepHook(eng2)
	var s2 []testbed.Sample
	for i := 0; i < 8; i++ {
		s2 = append(s2, tb2.Advance())
	}
	// tb2 shares tb's seed, so its true sequence matches samples[] until the
	// fault diverges the delivered view; sample 5 (inside the delay window)
	// must carry sample 3's telemetry.
	if s2[5].MaxColdAisle != s2[3].MaxColdAisle || s2[5].ACUPowerKW != s2[3].ACUPowerKW {
		t.Fatalf("delayed sample 5 must repeat sample 3's telemetry")
	}
}

// TestEngineDeterministic runs the same scenario twice (including the
// stochastic dropout flicker) and demands bit-identical delivered telemetry.
func TestEngineDeterministic(t *testing.T) {
	run := func() []testbed.Sample {
		tb := newBed(t, 11)
		start := tb.TimeS()
		eng, err := NewEngine(Scenario{Name: "det", Seed: 42, Events: []Event{
			{Kind: SensorDropout, StartS: start + 60, EndS: start + 600, Sensor: 6, Value: 0.5},
			{Kind: TelemetryDelay, StartS: start + 300, EndS: start + 600, DelaySteps: 2},
		}})
		if err != nil {
			t.Fatal(err)
		}
		tb.AddStepHook(eng)
		var out []testbed.Sample
		for i := 0; i < 12; i++ {
			out = append(out, tb.Advance())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i].DCTemps {
			av, bv := a[i].DCTemps[j], b[i].DCTemps[j]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("step %d sensor %d: %g vs %g", i, j, av, bv)
			}
		}
		if a[i].ACUPowerKW != b[i].ACUPowerKW || a[i].SetpointC != b[i].SetpointC {
			t.Fatalf("step %d: runs diverged", i)
		}
	}
}

// TestMatrixScenariosCoverEveryClass sanity-checks the canonical sweep.
func TestMatrixScenariosCoverEveryClass(t *testing.T) {
	scs := Matrix(3600, 7200, 17)
	classes := map[string]int{}
	names := map[string]bool{}
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if names[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		for _, e := range sc.Events {
			classes[e.Kind.Class()]++
			if e.StartS < 3600 || e.EndS > 3600+7200 {
				t.Fatalf("%s: event outside the evaluation window", sc.Name)
			}
		}
	}
	for _, c := range []string{"sensor", "actuator", "telemetry"} {
		if classes[c] == 0 {
			t.Fatalf("no %s scenario in the matrix", c)
		}
	}
	// Seeds must derive per-index: same base seed, distinct scenario seeds.
	if scs[0].Seed == scs[1].Seed {
		t.Fatalf("scenario seeds must differ")
	}
	again := Matrix(3600, 7200, 17)
	for i := range scs {
		if scs[i].Seed != again[i].Seed {
			t.Fatalf("Matrix must be a pure function of its arguments")
		}
	}
}

// TestInterruptionDynamicsFig3 asserts the testbed reproduces the paper's
// Figure 3 through the fault engine: a forced compressor interruption drives
// the cold aisle up at roughly 1 °C/min, and recovery after restart is
// slower than the rise.
func TestInterruptionDynamicsFig3(t *testing.T) {
	tb := newBed(t, 4)
	tb.SetSetpoint(22)
	tb.Warmup(4 * 3600)

	const interruptionMin = 10
	start := tb.TimeS()
	eng, err := NewEngine(Scenario{Name: "fig3", Seed: 9, Events: []Event{
		{Kind: ActuatorCutout, StartS: start, EndS: start + interruptionMin*60},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tb.AddStepHook(eng)

	before := tb.Sensors.TrueMaxColdAisle(tb.Room)
	var peak float64
	for i := 0; i < interruptionMin; i++ {
		s := tb.Advance()
		if !s.Interrupted {
			t.Fatalf("minute %d: ACU must report interruption (power %.3f kW)", i, s.ACUPowerKW)
		}
		peak = s.TrueMaxColdC
	}
	rise := peak - before
	riseRate := rise / interruptionMin
	if riseRate < 0.4 || riseRate > 2.0 {
		t.Fatalf("cold-aisle rise %.2f °C/min, want ≈1 °C/min (Fig. 3)", riseRate)
	}

	// Recovery: the compressor restarts; find how long the cold aisle takes
	// to come back within 0.5 °C of the pre-fault level.
	recoveryMin := -1
	for i := 0; i < 120; i++ {
		s := tb.Advance()
		if s.TrueMaxColdC <= before+0.5 {
			recoveryMin = i + 1
			break
		}
	}
	if recoveryMin < 0 {
		t.Fatalf("cold aisle never recovered within 2 h")
	}
	if recoveryMin <= interruptionMin {
		t.Fatalf("recovery (%d min) must be slower than the rise (%d min)", recoveryMin, interruptionMin)
	}
	recoveryRate := (peak - (before + 0.5)) / float64(recoveryMin)
	if recoveryRate >= riseRate {
		t.Fatalf("recovery rate %.2f °C/min must undercut rise rate %.2f °C/min", recoveryRate, riseRate)
	}
}
