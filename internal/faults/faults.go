// Package faults is the deterministic, schedule-driven fault-injection
// engine of the TESLA testbed. The paper's whole premise is thermal safety
// under uncertainty (§2, Fig. 3, §8), yet a controller can only be trusted
// against faults it has actually been exercised with — so this package
// treats the plant as adversarial and scripts the failures: sensor faults
// (stuck-at, drift, dropout, noise burst), actuator faults (set-point latch
// failure, compressor-interruption windows, capacity degradation) and
// telemetry faults (sample gaps, delayed delivery).
//
// An Engine attaches to a testbed as a step hook and applies its scenario's
// events by simulation time. Every stochastic sub-behaviour draws from a
// per-event substream derived via rng.SeedFor(scenario seed, event index),
// so a scenario is bit-reproducible regardless of how many scenarios run in
// parallel around it or in what order.
package faults

import (
	"fmt"

	"tesla/internal/rng"
	"tesla/internal/testbed"
	"tesla/internal/thermo"
)

// Kind names one injectable fault class.
type Kind string

// The fault taxonomy. Sensor faults corrupt individual probes, actuator
// faults degrade the ACU, telemetry faults corrupt the delivered samples
// without touching the plant.
const (
	SensorStuck     Kind = "sensor-stuck"
	SensorDrift     Kind = "sensor-drift"
	SensorDropout   Kind = "sensor-dropout"
	SensorNoise     Kind = "sensor-noise-burst"
	ActuatorLatch   Kind = "acu-setpoint-latch"
	ActuatorCutout  Kind = "acu-compressor-interruption"
	ActuatorDerated Kind = "acu-capacity-degraded"
	TelemetryGap    Kind = "telemetry-gap"
	TelemetryDelay  Kind = "telemetry-delay"
)

// Class groups a kind into "sensor", "actuator" or "telemetry" for
// reporting. Sensor and telemetry faults corrupt only what the controller
// sees, so a supervised controller must keep the true plant safe through
// them; actuator faults physically remove cooling and are scored on
// recovery instead.
func (k Kind) Class() string {
	switch k {
	case SensorStuck, SensorDrift, SensorDropout, SensorNoise:
		return "sensor"
	case ActuatorLatch, ActuatorCutout, ActuatorDerated:
		return "actuator"
	case TelemetryGap, TelemetryDelay:
		return "telemetry"
	default:
		return "unknown"
	}
}

// Event is one scheduled fault window [StartS, EndS) in simulation time.
type Event struct {
	Kind   Kind
	StartS float64
	EndS   float64
	// Sensor is the DC-sensor index for sensor faults (cold-aisle probes are
	// indices 0..10 in the default array).
	Sensor int
	// Value parameterizes the fault: stuck-at reading (SensorStuck), drift
	// rate in °C per minute (SensorDrift), dropout probability per step
	// (SensorDropout), extra noise std in °C (SensorNoise), capacity factor
	// (ActuatorDerated). Unused otherwise.
	Value float64
	// DelaySteps is the delivery lag in control steps (TelemetryDelay).
	DelaySteps int
}

// Validate rejects unschedulable events.
func (e Event) Validate() error {
	if e.EndS <= e.StartS {
		return fmt.Errorf("faults: event %s window [%g, %g) is empty", e.Kind, e.StartS, e.EndS)
	}
	switch e.Kind {
	case SensorStuck, SensorDrift, SensorDropout, SensorNoise:
		if e.Sensor < 0 {
			return fmt.Errorf("faults: event %s has negative sensor index", e.Kind)
		}
	case TelemetryDelay:
		if e.DelaySteps < 1 {
			return fmt.Errorf("faults: %s needs DelaySteps >= 1", e.Kind)
		}
	case ActuatorLatch, ActuatorCutout, ActuatorDerated, TelemetryGap:
	default:
		return fmt.Errorf("faults: unknown kind %q", e.Kind)
	}
	return nil
}

// Scenario is a named, seeded schedule of fault events.
type Scenario struct {
	Name   string
	Seed   uint64
	Events []Event
}

// Validate checks every event.
func (sc Scenario) Validate() error {
	if len(sc.Events) == 0 {
		return fmt.Errorf("faults: scenario %q has no events", sc.Name)
	}
	for _, e := range sc.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}
	return nil
}

// EndS returns the latest event end time — the moment the plant is fault
// free again and recovery measurement starts.
func (sc Scenario) EndS() float64 {
	var end float64
	for _, e := range sc.Events {
		if e.EndS > end {
			end = e.EndS
		}
	}
	return end
}

// Transition records one activation edge for the engine's log.
type Transition struct {
	TimeS  float64
	Kind   Kind
	Active bool
	Detail string
}

// Engine applies a scenario to a testbed. Attach it with
// testbed.AddStepHook; it is not safe for use from multiple goroutines (the
// testbed itself is single-goroutine).
type Engine struct {
	sc     Scenario
	active []bool
	rands  []*rng.Rand // per-event substream, rng.SeedFor(sc.Seed, i)
	log    []Transition

	// telemetry-fault state
	delivered []testbed.Sample // ring of recent true samples for delay
	frozen    *testbed.Sample  // last delivered sample during a gap
}

// NewEngine validates the scenario and builds an engine for it.
func NewEngine(sc Scenario) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		sc:     sc,
		active: make([]bool, len(sc.Events)),
		rands:  make([]*rng.Rand, len(sc.Events)),
	}
	for i := range sc.Events {
		e.rands[i] = rng.NewStream(sc.Seed, uint64(i))
	}
	return e, nil
}

// Scenario returns the schedule the engine runs.
func (e *Engine) Scenario() Scenario { return e.sc }

// Log returns the recorded activation edges in time order.
func (e *Engine) Log() []Transition { return e.log }

// BeforeStep implements testbed.StepHook: it switches plant-level faults on
// entering their window and off on leaving it, and integrates drift.
func (e *Engine) BeforeStep(tb *testbed.Testbed) {
	now := tb.TimeS()
	dtMin := tb.Config().SamplePeriodS / 60
	for i, ev := range e.sc.Events {
		inWindow := now >= ev.StartS && now < ev.EndS
		switch {
		case inWindow && !e.active[i]:
			e.apply(tb, i, ev)
		case !inWindow && e.active[i]:
			e.clear(tb, i, ev)
		}
		if !e.active[i] {
			continue
		}
		// Per-step behaviour while active.
		switch ev.Kind {
		case SensorDrift:
			tb.Sensors.DC[ev.Sensor].DriftC += ev.Value * dtMin
		case SensorDropout:
			// Intermittent dropout: the probe flickers between NaN and a
			// valid reading with probability Value per step, drawn from this
			// event's own substream.
			s := &tb.Sensors.DC[ev.Sensor]
			if e.rands[i].Float64() < ev.Value {
				s.Mode = thermo.FaultDropout
			} else {
				s.Mode = thermo.FaultNone
			}
		}
	}
}

// apply switches one event on.
func (e *Engine) apply(tb *testbed.Testbed, i int, ev Event) {
	e.active[i] = true
	detail := ""
	switch ev.Kind {
	case SensorStuck:
		s := &tb.Sensors.DC[ev.Sensor]
		s.Mode = thermo.FaultStuck
		s.StuckAt = ev.Value
		detail = fmt.Sprintf("%s stuck at %.2f°C", s.Name, ev.Value)
	case SensorDrift:
		s := &tb.Sensors.DC[ev.Sensor]
		s.Mode = thermo.FaultDrift
		s.DriftC = 0
		detail = fmt.Sprintf("%s drifting %+.3f°C/min", s.Name, ev.Value)
	case SensorDropout:
		s := &tb.Sensors.DC[ev.Sensor]
		s.Mode = thermo.FaultDropout
		detail = fmt.Sprintf("%s dropping out (p=%.2f)", s.Name, ev.Value)
	case SensorNoise:
		s := &tb.Sensors.DC[ev.Sensor]
		s.Mode = thermo.FaultNoise
		s.ExtraNoiseStd = ev.Value
		detail = fmt.Sprintf("%s noise burst +%.2f°C std", s.Name, ev.Value)
	case ActuatorLatch:
		tb.ACU.SetLatchFailed(true)
		detail = "set-point latch wedged"
	case ActuatorCutout:
		tb.ACU.ForceInterruption(true)
		detail = "compressor interrupted"
	case ActuatorDerated:
		tb.ACU.SetCapacityFactor(ev.Value)
		detail = fmt.Sprintf("cooling capacity derated to %.0f%%", 100*ev.Value)
	case TelemetryGap:
		detail = "telemetry gap: samples frozen"
	case TelemetryDelay:
		detail = fmt.Sprintf("telemetry delayed %d steps", ev.DelaySteps)
	}
	e.log = append(e.log, Transition{TimeS: tb.TimeS(), Kind: ev.Kind, Active: true, Detail: detail})
}

// clear switches one event off.
func (e *Engine) clear(tb *testbed.Testbed, i int, ev Event) {
	e.active[i] = false
	switch ev.Kind {
	case SensorStuck, SensorDrift, SensorDropout, SensorNoise:
		tb.Sensors.DC[ev.Sensor].ClearFault()
	case ActuatorLatch:
		tb.ACU.SetLatchFailed(false)
	case ActuatorCutout:
		tb.ACU.ForceInterruption(false)
	case ActuatorDerated:
		tb.ACU.SetCapacityFactor(1)
	case TelemetryGap:
		e.frozen = nil
	}
	e.log = append(e.log, Transition{TimeS: tb.TimeS(), Kind: ev.Kind, Active: false, Detail: "cleared"})
}

// AfterSample implements testbed.StepHook: telemetry faults rewrite the
// delivered sample. The true sample always enters the delay ring first, so a
// delay window that opens mid-run has history to serve.
func (e *Engine) AfterSample(tb *testbed.Testbed, s *testbed.Sample) {
	// Record the true sample for delayed delivery before any corruption.
	maxDelay := 1
	for _, ev := range e.sc.Events {
		if ev.Kind == TelemetryDelay && ev.DelaySteps+1 > maxDelay {
			maxDelay = ev.DelaySteps + 1
		}
	}
	e.delivered = append(e.delivered, s.Clone())
	if len(e.delivered) > maxDelay {
		e.delivered = e.delivered[len(e.delivered)-maxDelay:]
	}

	for i, ev := range e.sc.Events {
		if !e.active[i] {
			continue
		}
		switch ev.Kind {
		case TelemetryGap:
			if e.frozen == nil {
				f := s.Clone()
				e.frozen = &f
			}
			overwriteTelemetry(s, *e.frozen)
		case TelemetryDelay:
			idx := len(e.delivered) - 1 - ev.DelaySteps
			if idx < 0 {
				idx = 0
			}
			overwriteTelemetry(s, e.delivered[idx])
		}
	}
}

// overwriteTelemetry replaces every observable field of dst with src's,
// keeping dst's wall-clock time and ground truth.
func overwriteTelemetry(dst *testbed.Sample, src testbed.Sample) {
	timeS, truth := dst.TimeS, dst.TrueMaxColdC
	*dst = src.Clone()
	dst.TimeS = timeS
	dst.TrueMaxColdC = truth
}

// Matrix returns the canonical per-class fault scenarios for a run whose
// evaluation window covers [startS, startS+evalS). Each scenario injects one
// fault class at one quarter of the window and clears it at the midpoint,
// leaving the second half to measure recovery. Scenario i draws its seed via
// rng.SeedFor(seed, i), so the set is bit-reproducible and each scenario is
// independent of how the others are scheduled.
func Matrix(startS, evalS float64, seed uint64) []Scenario {
	on := startS + evalS/4
	off := startS + evalS/2
	mk := func(i int, name string, events ...Event) Scenario {
		return Scenario{Name: name, Seed: rng.SeedFor(seed, uint64(i)), Events: events}
	}
	scs := []Scenario{
		// Stuck high, near the limit: the measured constraint turns
		// pessimistic — the pre-supervisor repo's only fault experiment.
		mk(0, "stuck-high", Event{Kind: SensorStuck, StartS: on, EndS: off, Sensor: 5, Value: 21.8}),
		// Stuck low: the dangerous direction — the probe under-reports and
		// would mask a real violation if it were trusted.
		mk(1, "stuck-low", Event{Kind: SensorStuck, StartS: on, EndS: off, Sensor: 9, Value: 16.0}),
		mk(2, "drift-up", Event{Kind: SensorDrift, StartS: on, EndS: off, Sensor: 3, Value: 0.08}),
		mk(3, "dropout", Event{Kind: SensorDropout, StartS: on, EndS: off, Sensor: 7, Value: 0.7}),
		mk(4, "noise-burst", Event{Kind: SensorNoise, StartS: on, EndS: off, Sensor: 2, Value: 1.5}),
		mk(5, "latch-failure", Event{Kind: ActuatorLatch, StartS: on, EndS: off}),
		// Compressor interruption: five minutes, the Fig. 3 experiment.
		mk(6, "compressor-cutout", Event{Kind: ActuatorCutout, StartS: on, EndS: on + 300}),
		mk(7, "capacity-derated", Event{Kind: ActuatorDerated, StartS: on, EndS: off, Value: 0.6}),
		mk(8, "telemetry-gap", Event{Kind: TelemetryGap, StartS: on, EndS: on + 360}),
		mk(9, "telemetry-delay", Event{Kind: TelemetryDelay, StartS: on, EndS: off, DelaySteps: 3}),
	}
	return scs
}
