package controlplane

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tesla/internal/control"
	"tesla/internal/dataset"
	"tesla/internal/fleet"
)

// emaPolicy mirrors the fleet package's durable test policy: a stateful EMA
// controller where every decision depends on the entire history, so any
// recovery or hand-off error compounds into a different trajectory hash.
type emaPolicy struct {
	bias float64
	ema  float64
	n    int
}

func newEMAPolicy(room int, seed uint64) (control.Policy, error) {
	return &emaPolicy{bias: 22.8 + float64(seed%64)/128}, nil
}

func (p *emaPolicy) Name() string { return "cp-ema" }

func (p *emaPolicy) Decide(tr *dataset.Trace, t int) float64 {
	v := tr.MaxCold[t]
	if p.n == 0 {
		p.ema = v
	} else {
		p.ema = 0.2*v + 0.8*p.ema
	}
	p.n++
	return p.bias + 0.05*(21.5-p.ema)
}

type emaState struct {
	EMA float64
	N   int
}

func (p *emaPolicy) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(emaState{p.ema, p.n}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (p *emaPolicy) Restore(blob []byte) error {
	var st emaState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return err
	}
	p.ema, p.n = st.EMA, st.N
	return nil
}

// testFleetCfg builds an n-room fleet with a CI-friendly horizon: 30 warm-up
// and 60 evaluated steps per room, checkpointing every 8.
func testFleetCfg(n int, seed uint64) fleet.Config {
	cfg := fleet.DefaultConfig(n, seed, newEMAPolicy)
	cfg.WarmupS = 1800
	cfg.EvalS = 3600
	cfg.SnapshotEvery = 8
	return cfg
}

// referenceHashes runs the fleet uninterrupted in one process and returns
// per-room trajectory hashes — the ground truth every chaos scenario must
// reproduce bit for bit.
func referenceHashes(t *testing.T, cfg fleet.Config) map[int]uint64 {
	t.Helper()
	ref, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]uint64, len(ref.Rooms))
	for _, r := range ref.Rooms {
		out[r.Room] = r.TrajectoryHash
	}
	return out
}

func fastRPC() ClientOptions {
	return ClientOptions{Retries: 2, BackoffMin: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond, Timeout: 5 * time.Second}
}

// cluster wires a coordinator and shards over real loopback HTTP.
type cluster struct {
	t        *testing.T
	coord    *Coordinator
	coordSrv *httptest.Server
	shards   map[string]*Shard
	srvs     map[string]*httptest.Server
}

// startCluster launches a coordinator plus one shard per entry of roots
// (shard ID → data dir; point several at one directory for the shared-root
// failover model). Chaos-friendly timings: 10ms heartbeats, dead after
// 90ms, reconcile every 10ms.
func startCluster(t *testing.T, fcfg fleet.Config, roots map[string]string, delay time.Duration) *cluster {
	t.Helper()
	return startClusterFB(t, fcfg, roots, delay, false)
}

// startClusterFB is startCluster with the per-shard Modbus field bus
// switched on or off.
func startClusterFB(t *testing.T, fcfg fleet.Config, roots map[string]string, delay time.Duration, fieldBus bool) *cluster {
	t.Helper()
	coord, err := NewCoordinator(CoordinatorConfig{
		Fleet:          fcfg,
		SuspectAfter:   40 * time.Millisecond,
		DeadAfter:      90 * time.Millisecond,
		ReconcileEvery: 10 * time.Millisecond,
		RPC:            fastRPC(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := &cluster{t: t, coord: coord, shards: map[string]*Shard{}, srvs: map[string]*httptest.Server{}}
	cl.coordSrv = httptest.NewServer(coord.Handler())
	coord.Start()
	for id, dir := range roots {
		sh, err := NewShard(ShardConfig{
			ID:             id,
			Fleet:          fcfg,
			DataDir:        dir,
			StepDelay:      delay,
			Coordinator:    cl.coordSrv.URL,
			HeartbeatEvery: 10 * time.Millisecond,
			RPC:            fastRPC(),
			FieldBus:       fieldBus,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(sh.Handler())
		sh.SetAdvertise(srv.URL)
		sh.Start()
		cl.shards[id] = sh
		cl.srvs[id] = srv
	}
	t.Cleanup(func() {
		coord.Stop()
		for _, sh := range cl.shards {
			sh.Stop()
		}
		cl.coordSrv.Close()
		for _, srv := range cl.srvs {
			srv.Close()
		}
	})
	return cl
}

// waitFor polls the coordinator's fleet view until cond holds.
func (cl *cluster) waitFor(timeout time.Duration, what string, cond func(FleetView) bool) FleetView {
	cl.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := cl.coord.Fleet()
		if cond(v) {
			return v
		}
		if time.Now().After(deadline) {
			dump, _ := json.Marshal(v)
			cl.t.Fatalf("timed out waiting for %s; fleet view: %s", what, dump)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (cl *cluster) waitDone(timeout time.Duration) FleetView {
	return cl.waitFor(timeout, "all rooms done", func(v FleetView) bool { return v.Done == v.Rooms })
}

// assertHashes compares every finished room's trajectory hash against the
// uninterrupted reference.
func assertHashes(t *testing.T, v FleetView, want map[int]uint64) {
	t.Helper()
	for _, p := range v.Placements {
		if !p.Done || p.Result == nil {
			t.Errorf("room %d not done in final view", p.Room)
			continue
		}
		if p.Result.TrajectoryHash != want[p.Room] {
			t.Errorf("room %d: hash %#x, uninterrupted reference %#x — continuation is not bit-identical",
				p.Room, p.Result.TrajectoryHash, want[p.Room])
		}
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestClusterPlacementAndRollup: the happy path. Rooms spread over two
// shards, finish with reference-identical hashes, and the coordinator's
// merged rollup accounts for every sample exactly once.
func TestClusterPlacementAndRollup(t *testing.T) {
	fcfg := testFleetCfg(4, 11)
	want := referenceHashes(t, fcfg)
	cl := startCluster(t, fcfg, map[string]string{"shard-a": t.TempDir(), "shard-b": t.TempDir()}, 0)

	// While rooms are unplaced the coordinator must refuse to look healthy.
	if code, _ := httpGet(t, cl.coordSrv.URL+"/healthz"); code != http.StatusServiceUnavailable {
		// Placement can complete very fast; only fail if rooms are still
		// unplaced AND healthz claimed OK.
		if v := cl.coord.Fleet(); v.Unplaced > 0 {
			t.Fatalf("healthz %d with %d rooms unplaced", code, v.Unplaced)
		}
	}

	v := cl.waitDone(60 * time.Second)
	assertHashes(t, v, want)

	// Every room's 60 evaluated steps were ingested by exactly one shard;
	// no recoveries ran, so no seq gaps either.
	if v.Rollup.Samples != 4*60 || v.Rollup.Gaps != 0 || v.Rollup.Dropped != 0 {
		t.Errorf("rollup samples/gaps/dropped = %d/%d/%d, want 240/0/0", v.Rollup.Samples, v.Rollup.Gaps, v.Rollup.Dropped)
	}
	if v.Rollup.Rooms != 4 {
		t.Errorf("rollup rooms %d, want 4", v.Rollup.Rooms)
	}

	if code, body := httpGet(t, cl.coordSrv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz after completion: %d %s", code, body)
	}
	if code, body := httpGet(t, cl.coordSrv.URL+"/shards"); code != http.StatusOK || !strings.Contains(body, "shard-a") {
		t.Errorf("/shards: %d %s", code, body)
	}
}

// TestFailoverBitIdentical is the headline chaos test: kill a shard mid-run
// (stores abandoned exactly as kill -9 leaves them), let the coordinator
// stage it through suspect to dead and re-place its rooms on the survivor,
// and prove the rooms recovered from their durable stores and finished with
// trajectory hashes bit-identical to an uninterrupted single-process run.
func TestFailoverBitIdentical(t *testing.T) {
	fcfg := testFleetCfg(4, 23)
	want := referenceHashes(t, fcfg)
	shared := t.TempDir() // shared storage: survivors open the dead shard's stores
	cl := startCluster(t, fcfg, map[string]string{"shard-a": shared, "shard-b": shared}, 2*time.Millisecond)

	// Kill a shard while it hosts at least one room mid-horizon.
	var victim string
	cl.waitFor(30*time.Second, "a room mid-flight", func(v FleetView) bool {
		for _, p := range v.Placements {
			if !p.Done && p.Shard != "" && p.Step >= 5 && p.Step <= 40 {
				victim = p.Shard
				return true
			}
		}
		return false
	})
	cl.shards[victim].Kill()

	v := cl.waitDone(60 * time.Second)
	assertHashes(t, v, want)

	ct := cl.coord.Counters()
	if ct.Failovers < 1 || ct.RoomFailovers < 1 {
		t.Fatalf("no failover recorded: %+v", ct)
	}
	// The hash match must come from durable recovery, not a lucky from-
	// scratch rerun: at least one re-placed room replayed store records.
	recovered := 0
	for _, p := range v.Placements {
		if p.Result != nil && p.Result.Recovery.Recovered && p.Result.Recovery.StepRecords > 0 {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("no room recovered durable state — failover re-ran from scratch")
	}

	// Replayed steps are not re-pushed to telemetry, so they surface as seq
	// gaps; samples + gaps still account for every evaluated step exactly.
	if got := v.Rollup.Samples + v.Rollup.Gaps; got != 4*60 {
		t.Errorf("samples(%d) + gaps(%d) = %d, want 240 — seq-gap accounting broken", v.Rollup.Samples, v.Rollup.Gaps, got)
	}
	if v.Rollup.Gaps == 0 {
		t.Error("failover produced no seq gaps — recovery did not replay")
	}

	code, metrics := httpGet(t, cl.coordSrv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{"tesla_failovers_total", "tesla_shard_heartbeat_age_seconds", "tesla_migrations_total{result=\"ok\"}"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if strings.Contains(metrics, "tesla_failovers_total 0\n") {
		t.Error("/metrics reports zero failovers after a kill")
	}
}

// TestLiveMigrationBitIdentical drains a mid-flight room on its source
// shard, ships its snapshot + WAL to a shard with a completely separate
// data root, resumes it there, and proves the finished trajectory matches
// the uninterrupted reference bit for bit.
func TestLiveMigrationBitIdentical(t *testing.T) {
	fcfg := testFleetCfg(3, 31)
	want := referenceHashes(t, fcfg)
	cl := startCluster(t, fcfg, map[string]string{"shard-a": t.TempDir(), "shard-b": t.TempDir()}, 2*time.Millisecond)

	var room int
	var source string
	cl.waitFor(30*time.Second, "a room mid-flight", func(v FleetView) bool {
		for _, p := range v.Placements {
			if !p.Done && p.Shard != "" && p.Step >= 8 && p.Step <= 40 {
				room, source = p.Room, p.Shard
				return true
			}
		}
		return false
	})
	target := "shard-a"
	if source == target {
		target = "shard-b"
	}

	body, _ := json.Marshal(map[string]any{"room": room, "target": target})
	resp, err := http.Post(cl.coordSrv.URL+"/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate: status %d, body %s", resp.StatusCode, raw)
	}
	var rep MigrationReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("migrate: decode %v, body %s", err, raw)
	}
	if rep.From != source || rep.To != target || rep.Step < 8 || rep.PauseMs <= 0 {
		t.Fatalf("migration report %+v", rep)
	}

	v := cl.waitDone(60 * time.Second)
	assertHashes(t, v, want)

	var migrated *RoomPlacement
	for i := range v.Placements {
		if v.Placements[i].Room == room {
			migrated = &v.Placements[i]
		}
	}
	if migrated.Shard != target {
		t.Errorf("room %d finished on %s, want %s", room, migrated.Shard, target)
	}
	res := migrated.Result
	if !res.Recovery.Recovered || res.Recovery.SnapshotStep != rep.Step {
		t.Errorf("migrated room resumed from snapshot step %d (recovered=%v), drain barrier was %d",
			res.Recovery.SnapshotStep, res.Recovery.Recovered, rep.Step)
	}
	if res.Recovery.DecisionMismatches != 0 || res.Recovery.PlantMismatches != 0 {
		t.Errorf("shipped state replayed with mismatches: %+v", res.Recovery)
	}
	if ct := cl.coord.Counters(); ct.MigrationsOK != 1 || ct.MigrationsFailed != 0 {
		t.Errorf("migration counters %+v", ct)
	}
	if _, metrics := httpGet(t, cl.coordSrv.URL+"/metrics"); !strings.Contains(metrics, "tesla_migrations_total{result=\"ok\"} 1") {
		t.Error("/metrics does not report the migration")
	}
}

// TestZombieShardFenced: a shard that stops heartbeating but keeps running
// is declared dead and its rooms re-placed; its own store locks hold the
// survivor off until the zombie's next beat is fenced (409), at which point
// it drains everything and re-registers. The fleet still converges to
// reference-identical trajectories.
func TestZombieShardFenced(t *testing.T) {
	fcfg := testFleetCfg(4, 41)
	fcfg.EvalS = 9000 // 150 steps: keep the zombie's rooms mid-flight through the fence window
	want := referenceHashes(t, fcfg)
	shared := t.TempDir()
	cl := startCluster(t, fcfg, map[string]string{"shard-a": shared, "shard-b": shared}, 2*time.Millisecond)

	var victim string
	cl.waitFor(30*time.Second, "a room mid-flight", func(v FleetView) bool {
		for _, p := range v.Placements {
			if !p.Done && p.Shard != "" && p.Step >= 5 {
				victim = p.Shard
				return true
			}
		}
		return false
	})
	cl.shards[victim].PauseHeartbeats()

	cl.waitFor(30*time.Second, "zombie declared dead", func(v FleetView) bool {
		for _, sh := range v.Shards {
			if sh.ID == victim && sh.Health == ShardDead {
				return true
			}
		}
		return false
	})
	cl.shards[victim].ResumeHeartbeats()

	v := cl.waitDone(120 * time.Second)
	assertHashes(t, v, want)

	ct := cl.coord.Counters()
	if ct.FencedHeartbeats < 1 {
		t.Errorf("zombie's beat was never fenced: %+v", ct)
	}
	if got := cl.shards[victim].FencedRooms(); got < 1 {
		t.Errorf("zombie relinquished %d rooms after fencing, want >= 1", got)
	}
	// The fenced shard re-registered as a fresh worker.
	cl.waitFor(10*time.Second, "zombie re-registered", func(v FleetView) bool {
		for _, sh := range v.Shards {
			if sh.ID == victim && sh.Health == ShardAlive {
				return true
			}
		}
		return false
	})
}

// TestEpochFencingRejectsStaleReports exercises the coordinator's fencing
// rules directly with a scripted shard: stale lease epochs get 409, stale
// per-room assignment epochs are listed for relinquishment, and liveness
// stages from alive through suspect to dead.
func TestEpochFencingRejectsStaleReports(t *testing.T) {
	fcfg := testFleetCfg(2, 51)
	coord, err := NewCoordinator(CoordinatorConfig{
		Fleet:        fcfg,
		SuspectAfter: 30 * time.Millisecond,
		DeadAfter:    70 * time.Millisecond,
		RPC:          fastRPC(),
	})
	if err != nil {
		t.Fatal(err)
	}
	csrv := httptest.NewServer(coord.Handler())
	defer csrv.Close()

	// A scripted shard that accepts any assignment.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"step":0,"recovered":false}`))
	}))
	defer fake.Close()

	post := func(path string, in any, out any) int {
		t.Helper()
		body, _ := json.Marshal(in)
		resp, err := http.Post(csrv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode
	}

	var reg RegisterResponse
	if code := post("/register", RegisterRequest{ID: "z", Addr: fake.URL}, &reg); code != http.StatusOK {
		t.Fatalf("register: %d", code)
	}
	coord.Reconcile() // places both rooms on z
	placed := coord.Fleet()
	if placed.Placed != 2 {
		t.Fatalf("placed %d rooms on the only shard, want 2", placed.Placed)
	}

	// Stale lease epoch → whole beat fenced with 409.
	if code := post("/heartbeat", HeartbeatRequest{ID: "z", Epoch: reg.Epoch + 1}, nil); code != http.StatusConflict {
		t.Fatalf("stale-lease heartbeat: %d, want 409", code)
	}
	if ct := coord.Counters(); ct.FencedHeartbeats != 1 {
		t.Fatalf("fenced heartbeats %d, want 1", ct.FencedHeartbeats)
	}

	// Valid lease, but one room reported at a stale assignment epoch: that
	// room is fenced individually, the fresh one is accepted.
	roomEpoch := placed.Placements[0].Epoch
	var hb HeartbeatResponse
	code := post("/heartbeat", HeartbeatRequest{ID: "z", Epoch: reg.Epoch, Rooms: []RoomStatus{
		{Room: 0, Epoch: roomEpoch + 7, Step: 5},
		{Room: 1, Epoch: placed.Placements[1].Epoch, Step: 9},
	}}, &hb)
	if code != http.StatusOK {
		t.Fatalf("heartbeat: %d", code)
	}
	if len(hb.FencedRooms) != 1 || hb.FencedRooms[0].Room != 0 {
		t.Fatalf("fenced rooms %v, want room 0", hb.FencedRooms)
	}
	if got := coord.Fleet().Placements[1].Step; got != 9 {
		t.Fatalf("accepted report not recorded: step %d, want 9", got)
	}

	// Liveness staging: quiet past SuspectAfter → suspect; past DeadAfter →
	// dead, rooms unplaced, and the next beat is fenced even with the old
	// lease epoch.
	time.Sleep(40 * time.Millisecond)
	coord.Reconcile()
	if h := coord.Fleet().Shards[0].Health; h != ShardSuspect {
		t.Fatalf("health after %v quiet: %s, want suspect", 40*time.Millisecond, h)
	}
	time.Sleep(40 * time.Millisecond)
	coord.Reconcile()
	view := coord.Fleet()
	if h := view.Shards[0].Health; h != ShardDead {
		t.Fatalf("health: %s, want dead", h)
	}
	if view.Unplaced+view.Placed != 2 || view.Unplaced == 0 {
		// Reconcile immediately re-places on... nobody: the ring is empty,
		// so both rooms must be unplaced.
		t.Fatalf("after death: %d placed, %d unplaced", view.Placed, view.Unplaced)
	}
	if code := post("/heartbeat", HeartbeatRequest{ID: "z", Epoch: reg.Epoch}, nil); code != http.StatusConflict {
		t.Fatalf("zombie beat after death: %d, want 409", code)
	}
}

// TestShardAutonomy: a shard with no coordinator at all hosts rooms to
// completion through its own API — the control plane is an optimization,
// never a dependency of control.
func TestShardAutonomy(t *testing.T) {
	fcfg := testFleetCfg(2, 61)
	want := referenceHashes(t, fcfg)
	sh, err := NewShard(ShardConfig{ID: "solo", Fleet: fcfg, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Stop()
	for room := 0; room < 2; room++ {
		if _, err := sh.Assign(room, 1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		sts := sh.Statuses()
		done := 0
		for _, st := range sts {
			if st.Done {
				done++
			}
		}
		if done == 2 {
			for _, st := range sts {
				if st.Result.TrajectoryHash != want[st.Room] {
					t.Errorf("room %d: autonomous hash %#x, reference %#x", st.Room, st.Result.TrajectoryHash, want[st.Room])
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rooms not done: %+v", sts)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ru := sh.Rollup(); ru.Samples != 2*60 {
		t.Errorf("autonomous rollup samples %d, want 120", ru.Samples)
	}
}

// TestCoordinatorDegradesWithoutShards: with every shard gone the
// coordinator still serves its fleet view and metrics — degraded, not down.
func TestCoordinatorDegradesWithoutShards(t *testing.T) {
	fcfg := testFleetCfg(2, 71)
	coord, err := NewCoordinator(CoordinatorConfig{Fleet: fcfg, RPC: fastRPC()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	coord.Reconcile() // no shards: nothing to place, nothing to crash on

	if code, body := httpGet(t, srv.URL+"/fleet"); code != http.StatusOK || !strings.Contains(body, "\"unplaced\":2") {
		t.Errorf("/fleet: %d %s", code, body)
	}
	if code, _ := httpGet(t, srv.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz with all rooms unplaced: %d, want 503", code)
	}
	if code, body := httpGet(t, srv.URL+"/metrics"); code != http.StatusOK || !strings.Contains(body, "tesla_rooms_unplaced 2") {
		t.Errorf("/metrics: %d %s", code, body)
	}
}
