package controlplane

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func testClientOpts() ClientOptions {
	return ClientOptions{Ident: "test", Retries: 3, BackoffMin: time.Millisecond, BackoffMax: 5 * time.Millisecond}
}

// TestClientRetriesWithStableIdempotencyKey: a 500 is retried, and every
// attempt of the same logical call carries the same idempotency key — the
// contract that lets handlers deduplicate replays.
func TestClientRetriesWithStableIdempotencyKey(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	fails := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get(idemHeader))
		n := len(keys)
		mu.Unlock()
		if n <= fails {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"step":7}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL, testClientOpts())
	var out DrainResponse
	if err := c.Call(context.Background(), http.MethodPost, "/drain", DrainRequest{Room: 1}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Step != 7 {
		t.Fatalf("step %d, want 7", out.Step)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != fails+1 {
		t.Fatalf("%d attempts, want %d", len(keys), fails+1)
	}
	for i, k := range keys {
		if k == "" || k != keys[0] {
			t.Fatalf("attempt %d key %q differs from %q", i, k, keys[0])
		}
	}
}

// TestClientFencedNotRetried: 409 is a verdict, not a fault — one attempt,
// ErrFenced surfaced.
func TestClientFencedNotRetried(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		w.WriteHeader(http.StatusConflict)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, testClientOpts())
	err := c.Call(context.Background(), http.MethodPost, "/heartbeat", HeartbeatRequest{}, nil)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("got %v, want ErrFenced", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 1 {
		t.Fatalf("fenced call attempted %d times", attempts)
	}
}

// TestClientRetriesExhausted: a persistently failing endpoint errors after
// the bounded retry budget, not never.
func TestClientRetriesExhausted(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()

	opts := testClientOpts()
	opts.Retries = 2
	c := NewClient(srv.URL, opts)
	if err := c.Call(context.Background(), http.MethodPost, "/assign", AssignRequest{}, nil); err == nil {
		t.Fatal("exhausted retries returned nil")
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 3 {
		t.Fatalf("%d attempts, want 3 (1 + 2 retries)", attempts)
	}
}

// TestClientTimeoutPerAttempt: a hung server trips the per-attempt timeout
// instead of wedging the caller.
func TestClientTimeoutPerAttempt(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block) // unblock handlers before Close waits on them

	opts := testClientOpts()
	opts.Timeout = 30 * time.Millisecond
	opts.Retries = 1
	c := NewClient(srv.URL, opts)
	start := time.Now()
	if err := c.Call(context.Background(), http.MethodPost, "/assign", AssignRequest{}, nil); err == nil {
		t.Fatal("hung endpoint returned nil")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("call took %v — per-attempt timeout not applied", el)
	}
}

// TestBackoffJitterSeededAndSpread: the jitter stream is deterministic per
// (seed, ident) and actually varies across attempts.
func TestBackoffJitterSeededAndSpread(t *testing.T) {
	mk := func(ident string, seed uint64) []time.Duration {
		o := testClientOpts()
		o.Ident, o.Seed = ident, seed
		c := NewClient("http://invalid", o)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = c.backoff(i % 3)
		}
		return out
	}
	a1, a2 := mk("shard-a", 1), mk("shard-a", 1)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same (seed, ident) produced different backoff streams")
		}
	}
	b := mk("shard-b", 1)
	same := 0
	for i := range a1 {
		if a1[i] == b[i] {
			same++
		}
	}
	if same == len(a1) {
		t.Fatal("different idents share a jitter stream")
	}
	// Bounds: attempt 0 jitter lies in [0.5, 1.5) × BackoffMin.
	o := testClientOpts()
	c := NewClient("http://invalid", o)
	for i := 0; i < 100; i++ {
		d := c.backoff(0)
		if d < o.BackoffMin/2 || d >= o.BackoffMin*3/2 {
			t.Fatalf("backoff %v outside [%v, %v)", d, o.BackoffMin/2, o.BackoffMin*3/2)
		}
	}
}

// TestIdemCacheReplays: the server-side cache replays a completed mutation's
// response instead of executing it twice, and bounds its memory.
func TestIdemCacheReplays(t *testing.T) {
	ic := newIdemCache(4)
	executions := 0
	h := func(w http.ResponseWriter, r *http.Request) {
		if ic.replay(w, r.Header.Get(idemHeader)) {
			return
		}
		executions++
		writeJSON(w, r, ic, http.StatusOK, DrainResponse{Step: executions})
	}
	call := func(key string) string {
		req := httptest.NewRequest(http.MethodPost, "/drain", nil)
		req.Header.Set(idemHeader, key)
		rec := httptest.NewRecorder()
		h(rec, req)
		return rec.Body.String()
	}
	first := call("k1")
	if second := call("k1"); second != first {
		t.Fatalf("replay %q differs from original %q", second, first)
	}
	if executions != 1 {
		t.Fatalf("handler executed %d times for one key", executions)
	}
	for i := 0; i < 10; i++ {
		call(string(rune('a' + i)))
	}
	if len(ic.byKey) > 4 {
		t.Fatalf("cache grew to %d entries, cap 4", len(ic.byKey))
	}
}
