package controlplane

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"tesla/internal/scheduler"
)

// TestHeartbeatCarriesSchedCounters: shards running a batch scheduler sample
// its ledger into every heartbeat, and the coordinator's fleet view merges
// placements, deferrals, per-reason migrations and queue depths fleet-wide.
func TestHeartbeatCarriesSchedCounters(t *testing.T) {
	fcfg := testFleetCfg(2, 11)
	coord, err := NewCoordinator(CoordinatorConfig{
		Fleet:          fcfg,
		SuspectAfter:   40 * time.Millisecond,
		DeadAfter:      90 * time.Millisecond,
		ReconcileEvery: 10 * time.Millisecond,
		RPC:            fastRPC(),
	})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()
	coord.Start()
	defer coord.Stop()

	counters := []scheduler.Counters{
		{
			Placements: 7, Deferrals: 3, Waiting: 1, RunningJobs: 2, CompletedJobs: 4,
			Migrations: map[string]uint64{scheduler.ReasonThermal: 2},
			RoomQueue:  map[string]int{"room-0": 2},
		},
		{
			Placements: 5, Deferrals: 1, Waiting: 0, RunningJobs: 1, CompletedJobs: 3,
			Migrations: map[string]uint64{scheduler.ReasonThermal: 1, scheduler.ReasonCapacity: 4},
			RoomQueue:  map[string]int{"room-1": 1},
		},
	}
	for i, id := range []string{"a", "b"} {
		c := counters[i]
		sh, err := NewShard(ShardConfig{
			ID:             id,
			Fleet:          fcfg,
			DataDir:        t.TempDir(),
			Coordinator:    coordSrv.URL,
			HeartbeatEvery: 10 * time.Millisecond,
			RPC:            fastRPC(),
		})
		if err != nil {
			t.Fatal(err)
		}
		sh.SetSchedCounters(func() scheduler.Counters { return c.Clone() })
		srv := httptest.NewServer(sh.Handler())
		sh.SetAdvertise(srv.URL)
		sh.Start()
		defer func() { sh.Stop(); srv.Close() }()
	}

	deadline := time.Now().Add(5 * time.Second)
	var got *scheduler.Counters
	for {
		v := coord.Fleet()
		if v.Sched != nil && v.Sched.Placements == 12 {
			got = v.Sched
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet view never merged both shards' sched counters: %+v", v.Sched)
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := counters[0].Clone()
	want.Merge(counters[1])
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("merged sched counters = %+v, want %+v", *got, want)
	}
	if got.Migrations[scheduler.ReasonThermal] != 3 || got.Migrations[scheduler.ReasonCapacity] != 4 {
		t.Fatalf("per-reason migrations not merged: %+v", got.Migrations)
	}
	if got.RoomQueue["room-0"] != 2 || got.RoomQueue["room-1"] != 1 {
		t.Fatalf("queue depths not merged: %+v", got.RoomQueue)
	}

	_, body := httpGet(t, coordSrv.URL+"/metrics")
	for _, line := range []string{
		"tesla_fleet_sched_placements_total 12",
		"tesla_fleet_sched_deferrals_total 4",
		`tesla_fleet_sched_migrations_total{reason="thermal"} 3`,
		`tesla_fleet_sched_migrations_total{reason="capacity"} 4`,
		"tesla_fleet_sched_waiting_jobs 1",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("coordinator /metrics missing %q in:\n%s", line, body)
		}
	}
}
