package controlplane

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tesla/internal/fleet"
	"tesla/internal/modbus"
)

// fieldFleetCfg is testFleetCfg with the decide path quantized to Modbus
// wire resolution — the reference a field-bus cluster must reproduce bit
// for bit, since every set-point it actuates crosses centidegree registers.
func fieldFleetCfg(n int, seed uint64) fleet.Config {
	cfg := testFleetCfg(n, seed)
	cfg.Quantize = modbus.QuantizeTempC
	return cfg
}

// TestFieldBusFailoverBitIdentical: rooms actuated and polled through real
// per-shard Modbus gateways, one shard killed mid-horizon. The re-placed
// rooms recover from the shared root and every trajectory still matches the
// uninterrupted single-process reference bit for bit; the survivors' field
// ledgers stay gap-free (the dead shard's in-memory ledger dies with it,
// exactly like a crashed gateway's would).
func TestFieldBusFailoverBitIdentical(t *testing.T) {
	fcfg := fieldFleetCfg(4, 61)
	want := referenceHashes(t, fcfg)
	shared := t.TempDir()
	cl := startClusterFB(t, fcfg, map[string]string{"shard-a": shared, "shard-b": shared}, 2*time.Millisecond, true)

	var victim string
	cl.waitFor(30*time.Second, "a room mid-flight", func(v FleetView) bool {
		for _, p := range v.Placements {
			if !p.Done && p.Shard != "" && p.Step >= 5 && p.Step <= 40 {
				victim = p.Shard
				return true
			}
		}
		return false
	})
	cl.shards[victim].Kill()

	v := cl.waitDone(60 * time.Second)
	assertHashes(t, v, want)

	if v.Field == nil || v.Field.Samples == 0 {
		t.Fatalf("fleet view carries no field-bus ledger: %+v", v.Field)
	}
	if v.Field.Gaps != 0 {
		t.Errorf("field ledger charged %d gaps — in-process sims polled per step must be gap-free", v.Field.Gaps)
	}
	if v.Gateway == nil || v.Gateway.Writes == 0 {
		t.Fatalf("no gateway writes recorded — actuation did not cross the wire: %+v", v.Gateway)
	}

	// The survivor's /metrics must expose the shared gateway series with a
	// shard label, plus the field ledger.
	survivor := "shard-a"
	if victim == survivor {
		survivor = "shard-b"
	}
	_, metrics := httpGet(t, cl.srvs[survivor].URL+"/metrics")
	for _, m := range []string{
		"tesla_gateway_requests_total{shard=\"" + survivor + "\"}",
		"tesla_gateway_writes_total{shard=\"" + survivor + "\"}",
		"tesla_shard_field_samples_total{shard=\"" + survivor + "\"}",
	} {
		if !strings.Contains(metrics, m) {
			t.Errorf("shard /metrics missing %s", m)
		}
	}
}

// TestFieldBusMigrationBitIdentical: a gateway-backed room is live-migrated
// between shards with separate data roots. The bundle carries the source
// poller's hand-off token, so beyond bit-identical trajectories the merged
// fleet field ledger is EXACT: one polled sample per evaluated step per
// room, zero gaps, zero duplicates — every sequence number accounted once
// across both hosts.
func TestFieldBusMigrationBitIdentical(t *testing.T) {
	fcfg := fieldFleetCfg(3, 67)
	want := referenceHashes(t, fcfg)
	cl := startClusterFB(t, fcfg, map[string]string{"shard-a": t.TempDir(), "shard-b": t.TempDir()}, 2*time.Millisecond, true)

	var room int
	var source string
	cl.waitFor(30*time.Second, "a room mid-flight", func(v FleetView) bool {
		for _, p := range v.Placements {
			if !p.Done && p.Shard != "" && p.Step >= 8 && p.Step <= 40 {
				room, source = p.Room, p.Shard
				return true
			}
		}
		return false
	})
	target := "shard-a"
	if source == target {
		target = "shard-b"
	}

	body, _ := json.Marshal(map[string]any{"room": room, "target": target})
	resp, err := http.Post(cl.coordSrv.URL+"/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate: status %d, body %s", resp.StatusCode, raw)
	}
	var rep MigrationReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("migrate: decode %v, body %s", err, raw)
	}

	v := cl.waitDone(60 * time.Second)
	assertHashes(t, v, want)

	// Exactness across the hand-off: all rooms fresh-started, every
	// evaluated step polled exactly once fleet-wide. A dropped token would
	// surface as gaps; a double-applied one as duplicate samples.
	steps := 3 * 60
	if v.Field == nil {
		t.Fatal("fleet view carries no field-bus ledger")
	}
	if int(v.Field.Samples) != steps || v.Field.Gaps != 0 {
		t.Errorf("fleet field ledger %d samples + %d gaps, want exactly %d + 0 — hand-off token lost or double-applied",
			v.Field.Samples, v.Field.Gaps, steps)
	}

	_, metrics := httpGet(t, cl.coordSrv.URL+"/metrics")
	for _, m := range []string{"tesla_gateway_requests_total ", "tesla_gateway_writes_total ", "tesla_fleet_field_samples_total "} {
		if !strings.Contains(metrics, m) {
			t.Errorf("coordinator /metrics missing summed %s", strings.TrimSpace(m))
		}
	}
}

// TestFieldBusMigrationLedgerExact drives the migration hand-off directly
// on autonomous shards and audits the two hosts' field ledgers seq by seq:
// the drain response carries Poller.Seqs() at the barrier, the successor
// resumes from it, and the merged ledgers satisfy
//
//	samples(src) + samples(tgt) + gaps == final sequence number
//
// with zero gaps and zero duplicates on healthy in-process sims.
func TestFieldBusMigrationLedgerExact(t *testing.T) {
	fcfg := fieldFleetCfg(1, 71)
	want := referenceHashes(t, fcfg)

	src, err := NewShard(ShardConfig{ID: "src", Fleet: fcfg, DataDir: t.TempDir(), StepDelay: 2 * time.Millisecond, FieldBus: true})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Stop()
	if _, err := src.Assign(0, 1); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		sts := src.Statuses()
		if len(sts) == 1 && sts[0].Step >= 8 && sts[0].Step <= 40 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("room never reached mid-sweep: %+v", sts)
		}
		time.Sleep(2 * time.Millisecond)
	}

	dr, err := src.Drain(0)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh-started room polls once per evaluated step: the hand-off token
	// IS the drain barrier.
	if len(dr.GatewaySeqs) != 1 || dr.GatewaySeqs[0] != uint64(dr.Step) {
		t.Fatalf("drain at step %d returned token %v, want [%d]", dr.Step, dr.GatewaySeqs, dr.Step)
	}
	srcField := src.FieldRollup()
	if srcField.Samples != uint64(dr.Step) || srcField.Gaps != 0 {
		t.Fatalf("source ledger %d samples + %d gaps at barrier %d", srcField.Samples, srcField.Gaps, dr.Step)
	}

	b, err := src.PackRoom(0)
	if err != nil {
		t.Fatal(err)
	}
	b.Step = dr.Step
	b.GatewaySeqs = dr.GatewaySeqs

	tgt, err := NewShard(ShardConfig{ID: "tgt", Fleet: fcfg, DataDir: t.TempDir(), StepDelay: time.Millisecond, FieldBus: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Stop()
	rr, err := tgt.Resume(ResumeRequest{Room: 0, Epoch: 2, Bundle: b})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Step != dr.Step {
		t.Fatalf("resumed at %d, barrier %d", rr.Step, dr.Step)
	}

	deadline = time.Now().Add(60 * time.Second)
	var final RoomStatus
	for {
		sts := tgt.Statuses()
		if len(sts) == 1 && sts[0].Done {
			final = sts[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("migrated room never finished: %+v", sts)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if final.Result == nil || final.Result.TrajectoryHash != want[0] {
		t.Fatalf("migrated trajectory hash %#x, reference %#x", final.Result.TrajectoryHash, want[0])
	}

	// Drain the finished room to surface the successor's final token: it
	// must have continued the SAME sequence stream to the horizon.
	dr2, err := tgt.Drain(0)
	if err != nil {
		t.Fatal(err)
	}
	steps := uint64(final.Planned)
	if len(dr2.GatewaySeqs) != 1 || dr2.GatewaySeqs[0] != steps {
		t.Fatalf("successor final token %v, want [%d] — sequence stream restarted or skipped", dr2.GatewaySeqs, steps)
	}

	tgtField := tgt.FieldRollup()
	merged := srcField
	merged.Merge(tgtField)
	if merged.Samples+merged.Gaps != steps {
		t.Errorf("merged ledgers: %d samples + %d gaps != final seq %d — a sequence number was dropped or double-counted",
			merged.Samples, merged.Gaps, steps)
	}
	if merged.Gaps != 0 {
		t.Errorf("healthy in-process sims charged %d gaps across the hand-off", merged.Gaps)
	}
	if srcField.Samples+tgtField.Samples != steps {
		t.Errorf("samples src(%d) + tgt(%d) != %d — duplicate or missing polls across the hand-off",
			srcField.Samples, tgtField.Samples, steps)
	}
}
