package controlplane

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// PackBundle reads a drained room's store directory into a migration
// bundle: every WAL segment (replay re-advances the plant from step 0, so
// the full log ships, not just the tail past the checkpoint) plus the
// newest snapshot (older ones are garbage the next compaction would drop).
// The directory must be quiescent — call it only after Drain closed the
// store.
func PackBundle(dir string, room int, name string, step int) (Bundle, error) {
	b := Bundle{Room: room, Name: name, Step: step}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return b, fmt.Errorf("controlplane: pack %s: %w", dir, err)
	}
	var segs, snaps []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".seg":
			segs = append(segs, e.Name())
		case ".snap":
			snaps = append(snaps, e.Name())
		}
	}
	sort.Strings(segs)
	sort.Strings(snaps)
	ship := segs
	if len(snaps) > 0 {
		// Zero-padded step numbers sort lexically; the last is the newest.
		ship = append(ship, snaps[len(snaps)-1])
	}
	if len(ship) == 0 {
		return b, fmt.Errorf("controlplane: pack %s: no durable state to ship", dir)
	}
	for _, fn := range ship {
		data, err := os.ReadFile(filepath.Join(dir, fn))
		if err != nil {
			return b, fmt.Errorf("controlplane: pack %s: %w", dir, err)
		}
		b.Files = append(b.Files, BundleFile{Name: fn, Data: data})
	}
	return b, nil
}

// UnpackBundle installs a shipped bundle into the target shard's store
// directory for the room. It refuses a directory that already holds store
// files — a resume landing on a room another host still owns is a bug, not
// something to merge — and fsyncs everything so the hand-off is as durable
// as the source was.
func UnpackBundle(dir string, b Bundle) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("controlplane: unpack %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("controlplane: unpack %s: %w", dir, err)
	}
	for _, e := range entries {
		if ext := filepath.Ext(e.Name()); ext == ".seg" || ext == ".snap" {
			return fmt.Errorf("controlplane: unpack %s: target already holds store file %s", dir, e.Name())
		}
	}
	for _, f := range b.Files {
		// The file names come off the wire; keep them inside dir.
		if f.Name != filepath.Base(f.Name) || strings.HasPrefix(f.Name, ".") {
			return fmt.Errorf("controlplane: unpack %s: suspicious file name %q", dir, f.Name)
		}
		path := filepath.Join(dir, f.Name)
		fh, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("controlplane: unpack %s: %w", dir, err)
		}
		if _, err := fh.Write(f.Data); err == nil {
			err = fh.Sync()
		}
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("controlplane: unpack %s: %w", path, err)
		}
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
