package controlplane

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"tesla/internal/fleet"
	"tesla/internal/gateway"
	"tesla/internal/ingest"
	"tesla/internal/scheduler"
	"tesla/internal/telemetry"
)

// CoordinatorConfig assembles the fleet coordinator.
type CoordinatorConfig struct {
	// Fleet is the fleet being sharded — the same config every shard holds.
	Fleet fleet.Config
	// SuspectAfter stages a quiet shard to suspect (default 3s); DeadAfter
	// declares it dead, fences its lease and re-places its rooms (default
	// 6s). DeadAfter must exceed SuspectAfter.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// ReconcileEvery is the placement/liveness sweep period (default 500ms).
	ReconcileEvery time.Duration
	// Vnodes tunes the placement ring (default 64 per shard).
	Vnodes int
	// Seed seeds the coordinator's RPC backoff jitter.
	Seed uint64
	// RPC tunes coordinator→shard clients; Ident and Seed are filled in.
	RPC ClientOptions
}

func (c *CoordinatorConfig) withDefaults() {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * time.Second
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = 2 * c.SuspectAfter
	}
	if c.ReconcileEvery <= 0 {
		c.ReconcileEvery = 500 * time.Millisecond
	}
	c.RPC.Ident = "coordinator"
	c.RPC.Seed = c.Seed
}

// ShardHealth is a tracked shard's liveness stage.
type ShardHealth string

const (
	ShardAlive   ShardHealth = "alive"
	ShardSuspect ShardHealth = "suspect"
	ShardDead    ShardHealth = "dead"
)

// shardState is the coordinator's view of one shard.
type shardState struct {
	id       string
	addr     string
	epoch    uint64 // lease epoch granted at registration
	lastBeat time.Time
	health   ShardHealth
	client   *Client
	rollup   telemetry.Rollup
	gateway  *gateway.Stats
	ingest   *ingest.Stats
	field    *telemetry.Rollup
	sched    *scheduler.Counters
}

// roomState is the coordinator's view of one room's placement.
type roomState struct {
	epoch   uint64 // assignment epoch, bumped on every re-placement
	shard   string // "" = unplaced
	step    int
	done    bool
	result  *fleet.RoomResult
	lastErr string // last error the hosting shard reported for this room
}

// ShardInfo is a shard's externally visible state.
type ShardInfo struct {
	ID          string      `json:"id"`
	Addr        string      `json:"addr"`
	Health      ShardHealth `json:"health"`
	Epoch       uint64      `json:"epoch"`
	BeatAgeMs   int64       `json:"beat_age_ms"`
	Rooms       int         `json:"rooms"`
	RollupRooms int         `json:"rollup_rooms"`
}

// RoomPlacement is a room's externally visible placement.
type RoomPlacement struct {
	Room   int               `json:"room"`
	Name   string            `json:"name"`
	Shard  string            `json:"shard,omitempty"`
	Epoch  uint64            `json:"epoch"`
	Step   int               `json:"step"`
	Done   bool              `json:"done"`
	Result *fleet.RoomResult `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// FleetView is the coordinator's rollup of the whole estate: per-shard
// rollups merged into one telemetry aggregate, gateway stats summed, and
// every room's placement. It is built entirely from the last heartbeats, so
// it keeps serving (with growing beat ages) when shards go quiet.
type FleetView struct {
	Rooms    int              `json:"rooms"`
	Placed   int              `json:"placed"`
	Done     int              `json:"done"`
	Unplaced int              `json:"unplaced"`
	Shards   []ShardInfo      `json:"shards"`
	Rollup   telemetry.Rollup `json:"rollup"`
	Gateway  *gateway.Stats   `json:"gateway,omitempty"`
	Ingest   *ingest.Stats    `json:"ingest,omitempty"`
	// Field is the fleet-wide field-bus poll ledger: every live shard's
	// per-room Modbus poller rollups merged. Absent when no shard runs a
	// field bus.
	Field *telemetry.Rollup `json:"field,omitempty"`
	// Sched is the fleet-wide batch-scheduler ledger: every live shard's
	// placement/deferral/migration counters and queue depths merged. Absent
	// when no shard runs a scheduler.
	Sched      *scheduler.Counters `json:"sched,omitempty"`
	Placements []RoomPlacement     `json:"placements"`
}

// Counters are the coordinator's control-plane event totals.
type Counters struct {
	Failovers         uint64 `json:"failovers"`      // shard-death events that re-placed rooms
	RoomFailovers     uint64 `json:"room_failovers"` // rooms re-placed by those events
	MigrationsOK      uint64 `json:"migrations_ok"`
	MigrationsFailed  uint64 `json:"migrations_failed"`
	FencedHeartbeats  uint64 `json:"fenced_heartbeats"` // zombie beats rejected
	FencedRoomReports uint64 `json:"fenced_room_reports"`
}

// MigrationReport describes one completed live migration.
type MigrationReport struct {
	Room  int    `json:"room"`
	From  string `json:"from"`
	To    string `json:"to"`
	Step  int    `json:"step"`  // drain barrier = resume point
	Epoch uint64 `json:"epoch"` // assignment epoch on the target
	// PauseMs is the control-plane pause: from the drain request until the
	// room was stepping again on the target.
	PauseMs float64 `json:"pause_ms"`
}

// Coordinator places rooms on shards, tracks their leases and re-places
// rooms when shards die. It never touches room state itself — all durable
// truth lives in the rooms' stores — so losing the coordinator costs
// placement agility, not control.
type Coordinator struct {
	cfg CoordinatorConfig

	mu       sync.Mutex
	shards   map[string]*shardState
	rooms    []roomState
	ring     *Ring
	epochSeq uint64
	counters Counters

	mux  *http.ServeMux
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewCoordinator builds a coordinator for the given fleet.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.Fleet.Validate(); err != nil {
		return nil, err
	}
	cfg.withDefaults()
	c := &Coordinator{
		cfg:    cfg,
		shards: make(map[string]*shardState),
		rooms:  make([]roomState, len(cfg.Fleet.Rooms)),
		ring:   NewRing(cfg.Vnodes),
		stop:   make(chan struct{}),
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/register", c.handleRegister)
	c.mux.HandleFunc("/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("/fleet", c.handleFleet)
	c.mux.HandleFunc("/shards", c.handleShards)
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/metrics", c.handleMetrics)
	c.mux.HandleFunc("/migrate", c.handleMigrate)
	return c, nil
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Start launches the reconcile loop.
func (c *Coordinator) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.ReconcileEvery)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.Reconcile()
			}
		}
	}()
}

// Stop halts the reconcile loop. Shards keep running their rooms.
func (c *Coordinator) Stop() {
	c.once.Do(func() { close(c.stop) })
	c.wg.Wait()
}

func (c *Coordinator) roomKey(i int) string {
	return fmt.Sprintf("%s#%d", c.cfg.Fleet.RoomName(i), i)
}

// Reconcile runs one liveness + placement sweep: stage quiet shards through
// suspect to dead (fencing the dead and re-placing their rooms), then place
// every unplaced, unfinished room on its ring owner. Placement RPCs use the
// client's bounded retries; a placement that still fails (say, the room's
// store is locked by a not-yet-fenced zombie) stays unplaced and is retried
// next sweep — convergence is eventual, not per-call.
func (c *Coordinator) Reconcile() {
	now := time.Now()

	type assignment struct {
		room   int
		epoch  uint64
		client *Client
		shard  string
	}
	var todo []assignment

	c.mu.Lock()
	for _, sh := range c.shards {
		if sh.health == ShardDead {
			continue
		}
		age := now.Sub(sh.lastBeat)
		switch {
		case age > c.cfg.DeadAfter:
			sh.health = ShardDead
			c.ring.Remove(sh.id)
			moved := 0
			for i := range c.rooms {
				if c.rooms[i].shard == sh.id && !c.rooms[i].done {
					c.rooms[i].shard = ""
					c.rooms[i].epoch++
					moved++
				}
			}
			c.counters.Failovers++
			c.counters.RoomFailovers += uint64(moved)
		case age > c.cfg.SuspectAfter:
			sh.health = ShardSuspect
		}
	}
	for i := range c.rooms {
		rm := &c.rooms[i]
		if rm.done || rm.shard != "" {
			continue
		}
		owner := c.ring.Lookup(c.roomKey(i))
		if owner == "" {
			continue
		}
		sh := c.shards[owner]
		rm.epoch++
		// Commit the placement before the RPC goes out: the shard starts
		// hosting (and heartbeat-reporting) the room before the assign
		// response returns, and a report against a still-unplaced room would
		// be fenced — killing the host we just created. Placement intent is
		// the coordinator's to declare; the RPC only confirms it.
		rm.shard = owner
		todo = append(todo, assignment{room: i, epoch: rm.epoch, client: sh.client, shard: owner})
	}
	c.mu.Unlock()

	for _, a := range todo {
		var resp AssignResponse
		err := a.client.Call(context.Background(), http.MethodPost, "/assign",
			AssignRequest{Room: a.room, Epoch: a.epoch}, &resp)
		c.mu.Lock()
		rm := &c.rooms[a.room]
		if rm.epoch == a.epoch && rm.shard == a.shard {
			if err == nil {
				rm.step = resp.Step
			} else {
				rm.shard = "" // placement failed; retried next sweep
			}
		}
		c.mu.Unlock()
	}
}

// Migrate live-migrates a placed room to the named shard: drain on the
// source (write barrier), ship the newest snapshot + WAL, resume on the
// target at a bumped assignment epoch. On any failure past the drain the
// room is left unplaced for the reconcile loop to re-place from its durable
// store.
func (c *Coordinator) Migrate(ctx context.Context, room int, target string) (MigrationReport, error) {
	c.mu.Lock()
	if room < 0 || room >= len(c.rooms) {
		c.mu.Unlock()
		return MigrationReport{}, fmt.Errorf("controlplane: no room %d", room)
	}
	rm := c.rooms[room]
	tgt, ok := c.shards[target]
	src, okSrc := c.shards[rm.shard]
	switch {
	case !ok || tgt.health == ShardDead:
		c.mu.Unlock()
		return MigrationReport{}, fmt.Errorf("controlplane: target shard %q unknown or dead", target)
	case rm.done:
		c.mu.Unlock()
		return MigrationReport{}, fmt.Errorf("controlplane: room %d already finished", room)
	case rm.shard == "" || !okSrc:
		c.mu.Unlock()
		return MigrationReport{}, fmt.Errorf("controlplane: room %d is not placed", room)
	case rm.shard == target:
		c.mu.Unlock()
		return MigrationReport{}, fmt.Errorf("controlplane: room %d already on %s", room, target)
	}
	from := rm.shard
	epoch := rm.epoch
	srcClient, tgtClient := src.client, tgt.client
	c.mu.Unlock()

	fail := func(err error) (MigrationReport, error) {
		c.mu.Lock()
		c.counters.MigrationsFailed++
		if c.rooms[room].epoch == epoch && !c.rooms[room].done {
			// The room is off the source (or in limbo); let reconcile
			// re-place it from durable state.
			c.rooms[room].shard = ""
			c.rooms[room].epoch++
		}
		c.mu.Unlock()
		return MigrationReport{}, err
	}

	pauseStart := time.Now()
	var dr DrainResponse
	if err := srcClient.Call(ctx, http.MethodPost, "/drain", DrainRequest{Room: room}, &dr); err != nil {
		return fail(fmt.Errorf("controlplane: drain room %d on %s: %w", room, from, err))
	}
	var b Bundle
	if err := srcClient.Call(ctx, http.MethodGet, fmt.Sprintf("/bundle?room=%d", room), nil, &b); err != nil {
		return fail(fmt.Errorf("controlplane: bundle room %d from %s: %w", room, from, err))
	}
	b.Step = dr.Step
	b.GatewaySeqs = dr.GatewaySeqs

	// Commit the new placement before the resume RPC for the same reason
	// Reconcile does: the target starts reporting the room the moment it
	// hosts it, and an unplaced-room report would be fenced.
	c.mu.Lock()
	c.rooms[room].epoch++
	epoch = c.rooms[room].epoch
	c.rooms[room].shard = target
	c.mu.Unlock()

	var rr ResumeResponse
	if err := tgtClient.Call(ctx, http.MethodPost, "/resume",
		ResumeRequest{Room: room, Epoch: epoch, Bundle: b}, &rr); err != nil {
		return fail(fmt.Errorf("controlplane: resume room %d on %s: %w", room, target, err))
	}
	pause := time.Since(pauseStart)

	c.mu.Lock()
	if c.rooms[room].epoch == epoch {
		c.rooms[room].step = rr.Step
	}
	c.counters.MigrationsOK++
	c.mu.Unlock()
	return MigrationReport{
		Room: room, From: from, To: target, Step: rr.Step, Epoch: epoch,
		PauseMs: float64(pause.Nanoseconds()) / 1e6,
	}, nil
}

// Counters snapshots the control-plane event totals.
func (c *Coordinator) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// Fleet builds the estate view from the last heartbeats.
func (c *Coordinator) Fleet() FleetView {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	v := FleetView{Rooms: len(c.rooms)}
	var gw gateway.Stats
	haveGw := false
	var ing ingest.Stats
	haveIng := false
	var fld telemetry.Rollup
	haveFld := false
	var sched scheduler.Counters
	haveSched := false
	ids := make([]string, 0, len(c.shards))
	for id := range c.shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sh := c.shards[id]
		hosted := 0
		for i := range c.rooms {
			if c.rooms[i].shard == id && !c.rooms[i].done {
				hosted++
			}
		}
		v.Shards = append(v.Shards, ShardInfo{
			ID: id, Addr: sh.addr, Health: sh.health, Epoch: sh.epoch,
			BeatAgeMs:   now.Sub(sh.lastBeat).Milliseconds(),
			Rooms:       hosted,
			RollupRooms: sh.rollup.Rooms,
		})
		if sh.health != ShardDead {
			v.Rollup.Merge(sh.rollup)
			if sh.gateway != nil {
				mergeGateway(&gw, *sh.gateway)
				haveGw = true
			}
			if sh.ingest != nil {
				ing.Merge(*sh.ingest)
				haveIng = true
			}
			if sh.field != nil {
				fld.Merge(*sh.field)
				haveFld = true
			}
			if sh.sched != nil {
				sched.Merge(*sh.sched)
				haveSched = true
			}
		}
	}
	// The merged Rooms field counts per-shard ingestor instances over time;
	// the coordinator's placement table is the authoritative room count.
	v.Rollup.Rooms = len(c.rooms)
	if haveGw {
		v.Gateway = &gw
	}
	if haveIng {
		v.Ingest = &ing
	}
	if haveFld {
		v.Field = &fld
	}
	if haveSched {
		v.Sched = &sched
	}
	for i := range c.rooms {
		rm := &c.rooms[i]
		v.Placements = append(v.Placements, RoomPlacement{
			Room: i, Name: c.cfg.Fleet.RoomName(i), Shard: rm.shard,
			Epoch: rm.epoch, Step: rm.step, Done: rm.done, Result: rm.result,
			Error: rm.lastErr,
		})
		switch {
		case rm.done:
			v.Done++
		case rm.shard != "":
			v.Placed++
		default:
			v.Unplaced++
		}
	}
	return v
}

func mergeGateway(dst *gateway.Stats, s gateway.Stats) {
	dst.Devices += s.Devices
	dst.Connected += s.Connected
	dst.InFlight += s.InFlight
	dst.Submitted += s.Submitted
	dst.Completed += s.Completed
	dst.Failed += s.Failed
	dst.Dropped += s.Dropped
	dst.Reconnects += s.Reconnects
	dst.DialFailures += s.DialFailures
	dst.WireReads += s.WireReads
	dst.MergedReads += s.MergedReads
	dst.Writes += s.Writes
}

// --- HTTP handlers ---

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeBody(w, r, nil, &req) {
		return
	}
	if req.ID == "" || req.Addr == "" {
		writeError(w, r, nil, http.StatusBadRequest, "register needs id and addr")
		return
	}
	c.mu.Lock()
	c.epochSeq++
	epoch := c.epochSeq
	// A re-registration (fenced zombie coming back, or a restarted shard)
	// starts a fresh lease. Any rooms still attributed to the old
	// incarnation are re-placed: the new process does not host them.
	for i := range c.rooms {
		if c.rooms[i].shard == req.ID && !c.rooms[i].done {
			c.rooms[i].shard = ""
			c.rooms[i].epoch++
		}
	}
	c.shards[req.ID] = &shardState{
		id: req.ID, addr: req.Addr, epoch: epoch,
		lastBeat: time.Now(), health: ShardAlive,
		client: NewClient(req.Addr, c.cfg.RPC),
	}
	c.ring.Add(req.ID)
	c.mu.Unlock()
	writeJSON(w, r, nil, http.StatusOK, RegisterResponse{Epoch: epoch})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, nil, &req) {
		return
	}
	c.mu.Lock()
	sh, ok := c.shards[req.ID]
	if !ok || sh.health == ShardDead || sh.epoch != req.Epoch {
		// A beat from a buried or unknown incarnation: fence it. The shard
		// must stop writing and re-register.
		c.counters.FencedHeartbeats++
		c.mu.Unlock()
		writeError(w, r, nil, http.StatusConflict, "shard %s epoch %d is fenced", req.ID, req.Epoch)
		return
	}
	sh.lastBeat = time.Now()
	sh.health = ShardAlive
	sh.rollup = req.Rollup
	sh.gateway = req.Gateway
	sh.ingest = req.Ingest
	sh.field = req.Field
	sh.sched = req.Sched

	var resp HeartbeatResponse
	for _, st := range req.Rooms {
		if st.Room < 0 || st.Room >= len(c.rooms) {
			continue
		}
		rm := &c.rooms[st.Room]
		if rm.shard != req.ID || rm.epoch != st.Epoch {
			// The room moved on without this shard — epoch fencing rejects
			// the zombie's report and tells it to relinquish.
			c.counters.FencedRoomReports++
			resp.FencedRooms = append(resp.FencedRooms, FencedRoom{Room: st.Room, Epoch: st.Epoch})
			continue
		}
		rm.step = st.Step
		rm.lastErr = st.Error
		if st.Done && st.Result != nil {
			rm.done = true
			res := *st.Result
			rm.result = &res
		}
	}
	c.mu.Unlock()
	writeJSON(w, r, nil, http.StatusOK, resp)
}

func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, r, nil, http.StatusOK, c.Fleet())
}

func (c *Coordinator) handleShards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, r, nil, http.StatusOK, c.Fleet().Shards)
}

// handleHealthz reports 503 while any unfinished room lacks a live
// placement — the condition an operator must react to, because unplaced
// rooms are not being controlled by anyone.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := c.Fleet()
	status := http.StatusOK
	if v.Unplaced > 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, r, nil, status, map[string]any{
		"rooms": v.Rooms, "placed": v.Placed, "done": v.Done, "unplaced": v.Unplaced,
	})
}

func (c *Coordinator) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Room   int    `json:"room"`
		Target string `json:"target"`
	}
	if !decodeBody(w, r, nil, &req) {
		return
	}
	rep, err := c.Migrate(r.Context(), req.Room, req.Target)
	if err != nil {
		writeError(w, r, nil, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, r, nil, http.StatusOK, rep)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	v := c.Fleet()
	ct := c.Counters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE tesla_shard_heartbeat_age_seconds gauge\n")
	for _, sh := range v.Shards {
		fmt.Fprintf(w, "tesla_shard_heartbeat_age_seconds{shard=%q,health=%q} %g\n",
			sh.ID, sh.Health, float64(sh.BeatAgeMs)/1000)
	}
	fmt.Fprintf(w, "# TYPE tesla_failovers_total counter\ntesla_failovers_total %d\n", ct.Failovers)
	fmt.Fprintf(w, "# TYPE tesla_room_failovers_total counter\ntesla_room_failovers_total %d\n", ct.RoomFailovers)
	fmt.Fprintf(w, "# TYPE tesla_migrations_total counter\n")
	fmt.Fprintf(w, "tesla_migrations_total{result=\"ok\"} %d\n", ct.MigrationsOK)
	fmt.Fprintf(w, "tesla_migrations_total{result=\"error\"} %d\n", ct.MigrationsFailed)
	fmt.Fprintf(w, "# TYPE tesla_fenced_heartbeats_total counter\ntesla_fenced_heartbeats_total %d\n", ct.FencedHeartbeats)
	fmt.Fprintf(w, "# TYPE tesla_rooms_unplaced gauge\ntesla_rooms_unplaced %d\n", v.Unplaced)
	fmt.Fprintf(w, "# TYPE tesla_rooms_done gauge\ntesla_rooms_done %d\n", v.Done)
	fmt.Fprintf(w, "# TYPE tesla_fleet_samples_ingested_total counter\ntesla_fleet_samples_ingested_total %d\n", v.Rollup.Samples)
	if v.Ingest != nil {
		fmt.Fprintf(w, "# TYPE tesla_fleet_ingest_attempts_total counter\ntesla_fleet_ingest_attempts_total %d\n", v.Ingest.Attempts)
		fmt.Fprintf(w, "# TYPE tesla_fleet_ingest_ingested_total counter\ntesla_fleet_ingest_ingested_total %d\n", v.Ingest.Ingested)
		fmt.Fprintf(w, "# TYPE tesla_fleet_ingest_dropped_total counter\ntesla_fleet_ingest_dropped_total %d\n", v.Ingest.Dropped)
		fmt.Fprintf(w, "# TYPE tesla_fleet_ingest_seq_gaps_total counter\ntesla_fleet_ingest_seq_gaps_total %d\n", v.Ingest.SeqGaps)
		fmt.Fprintf(w, "# TYPE tesla_fleet_tsdb_raw_points gauge\ntesla_fleet_tsdb_raw_points %d\n", v.Ingest.TSDB.RawPoints)
		fmt.Fprintf(w, "# TYPE tesla_fleet_tsdb_inserted_total counter\ntesla_fleet_tsdb_inserted_total %d\n", v.Ingest.TSDB.Inserted)
	}
	if v.Gateway != nil {
		// Fleet-wide sums over every live shard's gateway, under the same
		// metric names the shards expose with {shard=...} labels.
		writeGatewayMetrics(w, "", *v.Gateway)
	}
	if v.Field != nil {
		fmt.Fprintf(w, "# TYPE tesla_fleet_field_samples_total counter\ntesla_fleet_field_samples_total %d\n", v.Field.Samples)
		fmt.Fprintf(w, "# TYPE tesla_fleet_field_seq_gaps_total counter\ntesla_fleet_field_seq_gaps_total %d\n", v.Field.Gaps)
	}
	if v.Sched != nil {
		fmt.Fprintf(w, "# TYPE tesla_fleet_sched_placements_total counter\ntesla_fleet_sched_placements_total %d\n", v.Sched.Placements)
		fmt.Fprintf(w, "# TYPE tesla_fleet_sched_deferrals_total counter\ntesla_fleet_sched_deferrals_total %d\n", v.Sched.Deferrals)
		fmt.Fprintf(w, "# TYPE tesla_fleet_sched_migrations_total counter\n")
		reasons := make([]string, 0, len(v.Sched.Migrations))
		for r := range v.Sched.Migrations {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Fprintf(w, "tesla_fleet_sched_migrations_total{reason=%q} %d\n", r, v.Sched.Migrations[r])
		}
		fmt.Fprintf(w, "# TYPE tesla_fleet_sched_waiting_jobs gauge\ntesla_fleet_sched_waiting_jobs %d\n", v.Sched.Waiting)
	}
	fmt.Fprintf(w, "# TYPE tesla_fleet_max_cold_aisle_celsius gauge\ntesla_fleet_max_cold_aisle_celsius %g\n", v.Rollup.MaxColdC)
}
