// Package controlplane shards a TESLA fleet across room-shard workers
// coordinated over an internal HTTP/JSON control plane.
//
// The coordinator places rooms on shards via consistent hashing, tracks
// shard liveness with epoch-fenced heartbeat leases, re-places rooms from
// their durable stores when a shard dies, and orchestrates live migration
// (drain → ship snapshot+WAL → resume). Because every room's trajectory is a
// pure function of (fleet seed, room stream) and the durable store replays
// through the real decision path, a room that failed over or migrated
// produces the same trajectory hash, bit for bit, as the same room in an
// uninterrupted single-process run — the property the package's tests pin.
//
// Degradation is graceful in both directions: a shard keeps stepping its
// rooms when the coordinator is unreachable (control never depends on the
// control plane), and the coordinator keeps serving fleet state from the
// last heartbeats when shards go quiet.
package controlplane

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the virtual-node count per shard on the placement ring —
// enough that a handful of shards split rooms roughly evenly, small enough
// that rebuilding the ring on membership change stays trivial.
const defaultVnodes = 64

// Ring is a consistent-hash placement ring. Placement is a pure function of
// the member set and the key, so coordinator restarts and every replica of
// the ring agree on where a room lives without coordination. Not safe for
// concurrent use; the coordinator guards it with its own lock.
type Ring struct {
	vnodes int
	nodes  map[string]struct{}
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring. vnodes <= 0 selects the default.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a node. Adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{ringHash(fmt.Sprintf("%s#%d", node, v)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node; keys it owned redistribute to the survivors while
// every other key keeps its placement — the property failover relies on.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the node owning key: the first ring point clockwise from
// the key's hash. Empty string when the ring has no members.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}
