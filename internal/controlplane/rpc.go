package controlplane

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tesla/internal/fleet"
	"tesla/internal/gateway"
	"tesla/internal/ingest"
	"tesla/internal/rng"
	"tesla/internal/scheduler"
	"tesla/internal/telemetry"
)

// ErrFenced reports that the remote side rejected the call because the
// caller's lease or assignment epoch is stale — a zombie talking after its
// successor took over. Fenced calls are never retried: the correct reaction
// is to stop writing, not to try harder.
var ErrFenced = errors.New("controlplane: fenced: stale epoch")

// Wire messages. Everything crossing shard/coordinator boundaries is plain
// JSON over internal HTTP — debuggable with curl, no schema compiler.

// RoomStatus is one hosted room's state as reported in heartbeats.
type RoomStatus struct {
	Room    int    `json:"room"`
	Epoch   uint64 `json:"epoch"`
	Step    int    `json:"step"`
	Planned int    `json:"planned"`
	Done    bool   `json:"done"`
	// Result carries the room's final RoomResult once Done — including the
	// trajectory hash the coordinator uses to prove bit-identical
	// continuation after failover or migration.
	Result *fleet.RoomResult `json:"result,omitempty"`
	// Error reports a room whose loop died on this shard — surfaced so the
	// operator sees a wedged room instead of a silently stale step counter.
	Error string `json:"error,omitempty"`
}

// RegisterRequest announces a shard to the coordinator.
type RegisterRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"` // base URL the coordinator dials back
}

// RegisterResponse grants the shard its lease epoch. Every later heartbeat
// must carry it; a lower epoch is fenced.
type RegisterResponse struct {
	Epoch uint64 `json:"epoch"`
}

// HeartbeatRequest is the shard's periodic lease renewal plus its full local
// state: room statuses (with per-assignment epochs), the shard's telemetry
// rollup, and optional field-gateway stats. Carrying state in the heartbeat
// keeps the control plane one round-trip wide and means the coordinator's
// fleet view degrades to "last heartbeat" rather than erroring when a shard
// goes quiet.
type HeartbeatRequest struct {
	ID      string           `json:"id"`
	Epoch   uint64           `json:"epoch"`
	Rooms   []RoomStatus     `json:"rooms"`
	Rollup  telemetry.Rollup `json:"rollup"`
	Gateway *gateway.Stats   `json:"gateway,omitempty"`
	Ingest  *ingest.Stats    `json:"ingest,omitempty"`
	// Field is the shard's field-bus poll ledger (per-room Modbus pollers
	// merged with retired rooms' final ledgers); set only on shards running
	// a field bus.
	Field *telemetry.Rollup `json:"field,omitempty"`
	// Sched is the shard's batch-scheduler ledger (placements, deferrals,
	// migrations by reason, queue depths); set only on shards running a job
	// scheduler alongside their rooms.
	Sched *scheduler.Counters `json:"sched,omitempty"`
}

// HeartbeatResponse lists assignments the shard must relinquish: rooms whose
// epoch moved past the shard's copy (re-placed elsewhere while this shard
// was presumed dead).
type HeartbeatResponse struct {
	FencedRooms []FencedRoom `json:"fenced_rooms,omitempty"`
}

// FencedRoom is one rejected room report. Epoch is the assignment epoch that
// was fenced, so the shard only relinquishes a hosting at or below it — a
// newer assignment of the same room (re-placed back onto this shard while the
// verdict was in flight) survives.
type FencedRoom struct {
	Room  int    `json:"room"`
	Epoch uint64 `json:"epoch"`
}

// AssignRequest places a room on a shard at an assignment epoch.
type AssignRequest struct {
	Room  int    `json:"room"`
	Epoch uint64 `json:"epoch"`
}

// AssignResponse reports where the room's horizon starts on this shard —
// after durable recovery when the room's store has history.
type AssignResponse struct {
	Step      int  `json:"step"`
	Recovered bool `json:"recovered"`
}

// DrainRequest checkpoints a room at its current step boundary and closes
// its store (the migration write barrier).
type DrainRequest struct {
	Room int `json:"room"`
}

// DrainResponse reports the barrier step.
type DrainResponse struct {
	Step int `json:"step"`
	// GatewaySeqs is the drained room's field-bus hand-off token
	// (Poller.Seqs() at the drain barrier); nil when the source shard runs
	// no field bus. The coordinator copies it into the migration bundle.
	GatewaySeqs []uint64 `json:"gateway_seqs,omitempty"`
}

// BundleFile is one durable-store file shipped during migration. Data is
// base64 on the wire (encoding/json's []byte convention).
type BundleFile struct {
	Name string `json:"name"`
	Data []byte `json:"data"`
}

// Bundle is a drained room's complete durable store — newest snapshot plus
// WAL segments — as shipped from source to target shard.
type Bundle struct {
	Room  int          `json:"room"`
	Name  string       `json:"name"`
	Step  int          `json:"step"`
	Files []BundleFile `json:"files"`
	// GatewaySeqs carries the source host's field-bus poller hand-off token
	// so the target's poller resumes the room's sequence stream exactly —
	// every sequence number accounted once across both hosts' ledgers, no
	// duplicate samples, no double-counted gaps. Nil without a field bus.
	GatewaySeqs []uint64 `json:"gateway_seqs,omitempty"`
}

// ResumeRequest installs a shipped bundle on the target shard and resumes
// the room there at a new assignment epoch.
type ResumeRequest struct {
	Room   int    `json:"room"`
	Epoch  uint64 `json:"epoch"`
	Bundle Bundle `json:"bundle"`
}

// ResumeResponse reports the step the room resumed at.
type ResumeResponse struct {
	Step int `json:"step"`
}

// errorBody is the JSON error envelope every handler returns on failure.
type errorBody struct {
	Error string `json:"error"`
}

const idemHeader = "X-Idempotency-Key"

// ClientOptions tunes a control-plane RPC client. Zero values select
// defaults suitable for a LAN control plane.
type ClientOptions struct {
	// Ident prefixes idempotency keys so keys from different processes never
	// collide. Required in practice (shard ID or "coordinator").
	Ident string
	// Timeout bounds each attempt, not the whole call (default 2s).
	Timeout time.Duration
	// Retries is the number of re-attempts after the first try (default 3).
	// Only transport errors and 5xx responses are retried; fencing (409) and
	// other 4xx fail immediately.
	Retries int
	// BackoffMin/BackoffMax bound the exponential retry backoff
	// (defaults 20ms / 500ms).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed seeds the backoff jitter stream — deterministic per client, so
	// tests can pin retry timing.
	Seed uint64
}

func (o *ClientOptions) withDefaults() {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 3
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 20 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 500 * time.Millisecond
	}
}

// Client is an internal-RPC client with per-attempt timeouts, bounded
// retries under jittered exponential backoff, and an idempotency key per
// logical call (stable across that call's retries, so a handler that
// executed a lost-response attempt replays its answer instead of acting
// twice).
type Client struct {
	base  string
	opts  ClientOptions
	hc    *http.Client
	nonce string
	seq   atomic.Uint64

	mu  sync.Mutex
	rnd *rng.Rand
}

// NewClient builds a client for the shard or coordinator at base URL.
func NewClient(base string, opts ClientOptions) *Client {
	opts.withDefaults()
	// The nonce makes idempotency keys unique per client instance, not just
	// per (ident, sequence). Without it, a rebuilt client — say the
	// coordinator re-registering a returned zombie shard — restarts its
	// sequence at zero and its calls replay stale cached responses from the
	// previous incarnation's calls instead of executing.
	var nb [8]byte
	_, _ = cryptorand.Read(nb[:])
	return &Client{
		base:  base,
		opts:  opts,
		hc:    &http.Client{},
		nonce: hex.EncodeToString(nb[:]),
		rnd:   rng.New(rng.SeedFor(opts.Seed, ringHash(opts.Ident))),
	}
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

// backoff returns the jittered sleep before retry attempt n (0-based): an
// exponential base capped at BackoffMax, scaled by a uniform factor in
// [0.5, 1.5) so synchronized retriers spread out.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BackoffMin << uint(attempt)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	c.mu.Lock()
	u := c.rnd.Float64()
	c.mu.Unlock()
	return time.Duration((0.5 + u) * float64(d))
}

// Call performs one logical RPC: marshal in (nil for GET-style calls), POST
// to path, decode the JSON response into out (unless nil). Transport errors
// and 5xx responses are retried up to Retries times; a 409 maps to ErrFenced
// and any other non-2xx fails immediately with the server's error string.
func (c *Client) Call(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("controlplane: marshal %s: %w", path, err)
		}
	}
	key := fmt.Sprintf("%s-%s-%d", c.opts.Ident, c.nonce, c.seq.Add(1))

	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.backoff(attempt - 1)):
			}
		}
		retry, err := c.attempt(ctx, method, path, key, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retry {
			return err
		}
	}
	return fmt.Errorf("controlplane: %s %s: retries exhausted: %w", method, path, lastErr)
}

// attempt is one wire round-trip; retry reports whether the failure class is
// retryable.
func (c *Client) attempt(ctx context.Context, method, path, key string, body []byte, out any) (retry bool, err error) {
	actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(idemHeader, key)
	resp, err := c.hc.Do(req)
	if err != nil {
		return true, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusConflict:
		return false, fmt.Errorf("%s %s: %w", method, path, ErrFenced)
	case resp.StatusCode >= 500:
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return true, fmt.Errorf("%s %s: %d %s", method, path, resp.StatusCode, eb.Error)
	case resp.StatusCode >= 400:
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return false, fmt.Errorf("%s %s: %d %s", method, path, resp.StatusCode, eb.Error)
	}
	if out == nil {
		return false, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// The handler acted; only the response was lost. Retrying with the
		// same idempotency key replays the cached answer.
		return true, fmt.Errorf("%s %s: decode: %w", method, path, err)
	}
	return false, nil
}

// idemCache replays responses for idempotency keys the server has already
// processed, so a retried mutation acts once. Bounded FIFO: old entries age
// out, which is safe because clients retry within seconds, not hours.
type idemCache struct {
	mu    sync.Mutex
	cap   int
	order []string
	byKey map[string]idemEntry
}

type idemEntry struct {
	status int
	body   []byte
}

func newIdemCache(capacity int) *idemCache {
	if capacity <= 0 {
		capacity = 512
	}
	return &idemCache{cap: capacity, byKey: make(map[string]idemEntry)}
}

// replay writes the cached response for key if present.
func (ic *idemCache) replay(w http.ResponseWriter, key string) bool {
	if key == "" {
		return false
	}
	ic.mu.Lock()
	e, ok := ic.byKey[key]
	ic.mu.Unlock()
	if !ok {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	w.Write(e.body)
	return true
}

// store records the response sent for key.
func (ic *idemCache) store(key string, status int, body []byte) {
	if key == "" {
		return
	}
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if _, ok := ic.byKey[key]; ok {
		return
	}
	if len(ic.order) >= ic.cap {
		delete(ic.byKey, ic.order[0])
		ic.order = ic.order[1:]
	}
	ic.order = append(ic.order, key)
	ic.byKey[key] = idemEntry{status, append([]byte(nil), body...)}
}

// writeJSON sends v with the given status and records it against the
// request's idempotency key.
func writeJSON(w http.ResponseWriter, r *http.Request, ic *idemCache, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		body, _ = json.Marshal(errorBody{Error: err.Error()})
	}
	if ic != nil {
		ic.store(r.Header.Get(idemHeader), status, body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// writeError sends a JSON error envelope.
func writeError(w http.ResponseWriter, r *http.Request, ic *idemCache, status int, format string, args ...any) {
	writeJSON(w, r, ic, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// jsonDecode reads a request body into v.
func jsonDecode(r *http.Request, v any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(v)
}
