package controlplane

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tesla/internal/ingest"
)

// TestHeartbeatCarriesIngestStats: shards with an ingest pipeline sample its
// ledgers into every heartbeat, and the coordinator's fleet view and /metrics
// expose the exact fleet-wide sums.
func TestHeartbeatCarriesIngestStats(t *testing.T) {
	fcfg := testFleetCfg(2, 11)
	coord, err := NewCoordinator(CoordinatorConfig{
		Fleet:          fcfg,
		SuspectAfter:   40 * time.Millisecond,
		DeadAfter:      90 * time.Millisecond,
		ReconcileEvery: 10 * time.Millisecond,
		RPC:            fastRPC(),
	})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()
	coord.Start()
	defer coord.Stop()

	stats := []ingest.Stats{
		{Inputs: 1, Attempts: 100, Ingested: 90, Dropped: 10, SeqGaps: 3},
		{Inputs: 2, Attempts: 50, Ingested: 50, Subscriptions: 1, Resubscribes: 4},
	}
	for i, id := range []string{"a", "b"} {
		st := stats[i]
		sh, err := NewShard(ShardConfig{
			ID:             id,
			Fleet:          fcfg,
			DataDir:        t.TempDir(),
			Coordinator:    coordSrv.URL,
			HeartbeatEvery: 10 * time.Millisecond,
			RPC:            fastRPC(),
			IngestStats:    func() ingest.Stats { return st },
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(sh.Handler())
		sh.SetAdvertise(srv.URL)
		sh.Start()
		defer func() { sh.Stop(); srv.Close() }()
	}

	deadline := time.Now().Add(5 * time.Second)
	var got *ingest.Stats
	for {
		v := coord.Fleet()
		if v.Ingest != nil && v.Ingest.Inputs == 3 {
			got = v.Ingest
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet view never merged both shards' ingest stats: %+v", v.Ingest)
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := stats[0]
	want.Merge(stats[1])
	if *got != want {
		t.Fatalf("merged ingest stats = %+v, want %+v", *got, want)
	}
	if got.Attempts != got.Ingested+got.Dropped {
		t.Fatalf("merged ledger broken: attempts %d != ingested %d + dropped %d",
			got.Attempts, got.Ingested, got.Dropped)
	}

	_, body := httpGet(t, coordSrv.URL+"/metrics")
	for _, line := range []string{
		"tesla_fleet_ingest_attempts_total 150",
		"tesla_fleet_ingest_ingested_total 140",
		"tesla_fleet_ingest_dropped_total 10",
		"tesla_fleet_ingest_seq_gaps_total 3",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("coordinator /metrics missing %q", line)
		}
	}
}
