package controlplane

import (
	"fmt"
	"io"
	"sync"

	"tesla/internal/gateway"
	"tesla/internal/modbus"
	"tesla/internal/telemetry"
	"tesla/internal/testbed"
)

// fieldBus is one hosted room's complete field path: the plant's register
// bridge, an in-process Modbus/TCP ACU device sim serving it, a device on
// the shard's shared gateway dialing that sim, and a single-device poller.
// Actuation crosses the wire (gateway write → TCP → device sim → bridge
// latch into the plant) and every control step runs exactly one poll
// sweep, so the poller's per-device sequence ledger is the migratable
// record of what this host observed: Poller.Seqs() is the hand-off token
// a successor resumes from.
type fieldBus struct {
	gw     *gateway.Gateway
	id     string
	bridge *modbus.ACUBridge
	srv    *modbus.Server
	dev    *gateway.Device
	poller *gateway.Poller

	once sync.Once
	seqs []uint64
	roll telemetry.Rollup
}

// newFieldBus boots a room's field path onto the shard gateway. The
// migration hand-off token rides in pcfg.StartSeqs (nil for a fresh or
// failover placement, where the predecessor's ledger died with it).
func newFieldBus(gw *gateway.Gateway, id string, tb *testbed.Testbed, pcfg gateway.PollerConfig) (*fieldBus, error) {
	bridge := modbus.NewACUBridge(tb)
	srv := modbus.NewServer(bridge.Bank)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("controlplane: field bus %s: %w", id, err)
	}
	dev, err := gw.Add(id, addr)
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("controlplane: field bus %s: %w", id, err)
	}
	return &fieldBus{
		gw: gw, id: id, bridge: bridge, srv: srv, dev: dev,
		poller: gateway.NewPollerOver([]*gateway.Device{dev}, pcfg),
	}, nil
}

// actuate routes one set-point command over the wire; the device bridge
// latches the decoded value into the plant before this returns (writes
// are barriers in the device pipeline).
func (f *fieldBus) actuate(spC float64) error {
	return f.dev.WriteHolding(modbus.RegSetpoint, modbus.EncodeTempC(spC))
}

// publish refreshes the device sim's input registers from the step's
// sample and runs one poll sweep + drain — exactly one polled sample (or
// one exact seq gap) per control step, stamped with simulation time.
// Called only from the room's loop goroutine.
func (f *fieldBus) publish(s testbed.Sample) {
	f.bridge.Refresh(s)
	f.poller.PollOnce(s.TimeS)
	f.poller.DrainOnce()
}

// rollup snapshots the live poll ledger. Safe concurrently with publish —
// the poller's ingestor is internally locked.
func (f *fieldBus) rollup() telemetry.Rollup { return f.poller.Rollup() }

// close flushes the poller, snapshots the hand-off token and final ledger,
// and tears the field path down (device off the gateway, sim stopped).
// Idempotent — every caller sees the same snapshot. Must not run
// concurrently with actuate/publish; callers tear down only after the
// room's loop goroutine has exited.
func (f *fieldBus) close() (seqs []uint64, roll telemetry.Rollup) {
	f.once.Do(func() {
		for f.poller.DrainOnce() > 0 {
		}
		f.seqs = f.poller.Seqs()
		f.roll = f.poller.Rollup()
		f.gw.Remove(f.id)
		f.srv.Close()
	})
	return f.seqs, f.roll
}

// writeGatewayMetrics emits the tesla_gateway_* series for one stats
// snapshot — the same names the single-room daemon exposes, with an
// optional label block ({shard="..."} on shards, none on the coordinator's
// fleet-wide sum).
func writeGatewayMetrics(w io.Writer, labels string, gs gateway.Stats) {
	fmt.Fprintf(w, "# TYPE tesla_gateway_devices gauge\ntesla_gateway_devices%s %d\n", labels, gs.Devices)
	fmt.Fprintf(w, "# TYPE tesla_gateway_connected gauge\ntesla_gateway_connected%s %d\n", labels, gs.Connected)
	fmt.Fprintf(w, "# TYPE tesla_gateway_in_flight gauge\ntesla_gateway_in_flight%s %d\n", labels, gs.InFlight)
	fmt.Fprintf(w, "# TYPE tesla_gateway_requests_total counter\ntesla_gateway_requests_total%s %d\n", labels, gs.Submitted)
	fmt.Fprintf(w, "# TYPE tesla_gateway_completed_total counter\ntesla_gateway_completed_total%s %d\n", labels, gs.Completed)
	fmt.Fprintf(w, "# TYPE tesla_gateway_failed_total counter\ntesla_gateway_failed_total%s %d\n", labels, gs.Failed)
	fmt.Fprintf(w, "# TYPE tesla_gateway_dropped_total counter\ntesla_gateway_dropped_total%s %d\n", labels, gs.Dropped)
	fmt.Fprintf(w, "# TYPE tesla_gateway_reconnects_total counter\ntesla_gateway_reconnects_total%s %d\n", labels, gs.Reconnects)
	fmt.Fprintf(w, "# TYPE tesla_gateway_dial_failures_total counter\ntesla_gateway_dial_failures_total%s %d\n", labels, gs.DialFailures)
	fmt.Fprintf(w, "# TYPE tesla_gateway_wire_reads_total counter\ntesla_gateway_wire_reads_total%s %d\n", labels, gs.WireReads)
	fmt.Fprintf(w, "# TYPE tesla_gateway_merged_reads_total counter\ntesla_gateway_merged_reads_total%s %d\n", labels, gs.MergedReads)
	fmt.Fprintf(w, "# TYPE tesla_gateway_writes_total counter\ntesla_gateway_writes_total%s %d\n", labels, gs.Writes)
}
