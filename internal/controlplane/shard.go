package controlplane

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"tesla/internal/fleet"
	"tesla/internal/gateway"
	"tesla/internal/ingest"
	"tesla/internal/modbus"
	"tesla/internal/scheduler"
	"tesla/internal/telemetry"
	"tesla/internal/testbed"
)

// ShardConfig assembles one room-shard worker.
type ShardConfig struct {
	// ID names this shard on the placement ring and in lock files. Required
	// and unique per shard.
	ID string
	// Fleet is the full fleet configuration — identical on every shard and
	// on the coordinator, so any shard can host any room. The coordinator
	// decides which rooms this shard actually runs.
	Fleet fleet.Config
	// DataDir is this shard's durable root; each hosted room stores under
	// DataDir/<room-name>. Shards sharing a root get failover recovery for
	// free (the survivor opens the dead shard's stores); shards with
	// distinct roots rely on live migration to move durable state. Required.
	DataDir string
	// StepDelay paces each hosted room's loop by sleeping between control
	// steps — zero for batch speed, non-zero to keep rooms in flight long
	// enough for chaos tests and demos to interrupt them. Wall-clock only;
	// trajectories are unaffected.
	StepDelay time.Duration
	// Coordinator is the coordinator's base URL; empty runs the shard
	// autonomously (no registration, no heartbeats — rooms are assigned via
	// its own API and run to completion regardless).
	Coordinator string
	// Advertise is the base URL the coordinator dials this shard back on.
	// Required when Coordinator is set.
	Advertise string
	// HeartbeatEvery is the lease renewal period (default 1s).
	HeartbeatEvery time.Duration
	// Seed seeds this shard's RPC backoff jitter.
	Seed uint64
	// RPC tunes the shard→coordinator client; Ident and Seed are filled
	// from ID/Seed.
	RPC ClientOptions
	// GatewayStats, when set, is sampled into every heartbeat so the
	// coordinator's fleet view includes field-bus health.
	GatewayStats func() gateway.Stats
	// IngestStats, when set, is sampled into every heartbeat so the
	// coordinator's fleet view includes this shard's telemetry-ingest
	// pipeline (inputs, exact drop/gap ledger, TSDB tier sizes).
	IngestStats func() ingest.Stats
	// SchedCounters, when set, is sampled into every heartbeat so the
	// coordinator's fleet view rolls up this shard's batch-scheduler ledger
	// (placements, deferrals, migrations by reason, queue depths).
	SchedCounters func() scheduler.Counters
	// FieldBus puts a real Modbus field path under every hosted room: one
	// in-process ACU device sim per room served over TCP, a shared shard
	// gateway actuating set-points and polling telemetry across that wire,
	// and the decide path quantized to wire resolution (Fleet.Quantize
	// defaults to modbus.QuantizeTempC) so trajectories stay bit-identical
	// to a quantized single-process reference. Live migration carries each
	// room's Poller.Seqs() hand-off token in the bundle, so the successor's
	// poller continues the sequence stream with every number accounted
	// exactly once across both hosts' ledgers.
	FieldBus bool
	// FieldBusConfig tunes the shard gateway when FieldBus is set.
	FieldBusConfig gateway.Config
}

// hostState is a hosted room's lifecycle stage.
type hostState int

const (
	hostRunning hostState = iota
	hostDone
	hostFailed
)

// roomHost is one hosted room: a fleet.Runner driven by its own goroutine,
// with a single-queue ingestor folding the room's telemetry. The runner is
// owned exclusively by the loop goroutine while it runs; other goroutines
// read the published status under the shard lock and only touch the runner
// after loopDone closes.
type roomHost struct {
	room  int
	epoch uint64

	runner *fleet.Runner
	ing    *telemetry.Ingestor
	q      *telemetry.Queue
	fb     *fieldBus // nil unless the shard runs a field bus

	recovered bool // captured at creation: runner opened onto durable history

	stop     chan struct{} // drain request: loop exits at the next step boundary
	kill     chan struct{} // crash simulation: loop exits immediately, store abandoned
	loopDone chan struct{}
	ingStop  chan struct{}
	ingDone  chan struct{}
	stopOnce sync.Once
	killOnce sync.Once
	ingOnce  sync.Once
	relOnce  sync.Once
	relStep  int
	relSeqs  []uint64 // field-bus hand-off token captured at relinquish

	fieldMerged bool // guarded by Shard.mu: fb's final ledger folded into fieldRetired

	// Guarded by Shard.mu.
	state  hostState
	status RoomStatus
	result *fleet.RoomResult
	err    error
}

// Shard hosts a subset of the fleet's rooms. It exposes an internal HTTP
// API (Handler) for the coordinator and keeps stepping its rooms whether or
// not the coordinator is reachable — the control plane can place and move
// rooms, but control itself never waits on it.
type Shard struct {
	cfg ShardConfig

	gw *gateway.Gateway // field-bus gateway; nil unless cfg.FieldBus

	mu           sync.Mutex
	rooms        map[int]*roomHost
	retired      telemetry.Rollup // rollup contribution of rooms no longer hosted
	fieldRetired telemetry.Rollup // field-bus ledgers of rooms no longer hosted
	lease        uint64
	killed       bool
	paused       bool // heartbeats suppressed (zombie simulation)

	fencedRooms  uint64 // assignments relinquished after coordinator fencing
	leaseFences  uint64 // whole-lease fences (shard was presumed dead)
	beatFailures uint64

	idem *idemCache
	mux  *http.ServeMux

	client *Client
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewShard builds a shard worker. The fleet config is validated here so a
// bad config fails at boot, not at first placement.
func NewShard(cfg ShardConfig) (*Shard, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("controlplane: shard needs an ID")
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("controlplane: shard %s needs a DataDir", cfg.ID)
	}
	if err := cfg.Fleet.Validate(); err != nil {
		return nil, err
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	cfg.RPC.Ident = cfg.ID
	cfg.RPC.Seed = cfg.Seed
	if cfg.FieldBus && cfg.Fleet.Quantize == nil {
		// The wire carries centidegree registers; quantizing the decide path
		// makes the Modbus-actuated trajectory bit-identical to a quantized
		// in-process reference.
		cfg.Fleet.Quantize = modbus.QuantizeTempC
	}
	s := &Shard{
		cfg:   cfg,
		rooms: make(map[int]*roomHost),
		idem:  newIdemCache(0),
		stop:  make(chan struct{}),
	}
	if cfg.FieldBus {
		s.gw = gateway.New(cfg.FieldBusConfig)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/rooms", s.handleRooms)
	s.mux.HandleFunc("/assign", s.handleAssign)
	s.mux.HandleFunc("/drain", s.handleDrain)
	s.mux.HandleFunc("/bundle", s.handleBundle)
	s.mux.HandleFunc("/resume", s.handleResume)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// ID returns the shard's identity.
func (s *Shard) ID() string { return s.cfg.ID }

// Handler returns the shard's internal HTTP API.
func (s *Shard) Handler() http.Handler { return s.mux }

// SetAdvertise sets the base URL the coordinator dials this shard back on.
// Call before Start (the listener's address usually isn't known until the
// server is bound).
func (s *Shard) SetAdvertise(u string) { s.cfg.Advertise = u }

// Start launches the registration/heartbeat loop when a coordinator is
// configured. Autonomous shards (no coordinator) need no Start.
func (s *Shard) Start() {
	if s.cfg.Coordinator == "" {
		return
	}
	s.client = NewClient(s.cfg.Coordinator, s.cfg.RPC)
	s.wg.Add(1)
	go s.heartbeatLoop()
}

// Stop drains every hosted room (checkpoint + close, locks released) and
// stops the heartbeat loop. The shard's rooms can be re-hosted elsewhere.
func (s *Shard) Stop() {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	hosts := make([]*roomHost, 0, len(s.rooms))
	for _, h := range s.rooms {
		hosts = append(hosts, h)
	}
	s.mu.Unlock()
	close(s.stop)
	for _, h := range hosts {
		s.relinquish(h, false)
	}
	s.wg.Wait()
	if s.gw != nil {
		s.gw.Close()
	}
}

// Kill simulates this shard dying mid-step — kill -9, not shutdown. Room
// loops exit without checkpointing, stores are abandoned exactly as a dead
// process leaves them (buffered tail lost, locks released by the kernel),
// and heartbeats stop so the coordinator stages the shard through suspect
// to dead.
func (s *Shard) Kill() {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return
	}
	s.killed = true
	hosts := make([]*roomHost, 0, len(s.rooms))
	for _, h := range s.rooms {
		hosts = append(hosts, h)
	}
	s.mu.Unlock()
	close(s.stop)
	for _, h := range hosts {
		h.killOnce.Do(func() { close(h.kill) })
		<-h.loopDone
		h.runner.Abandon()
		h.ingOnce.Do(func() { close(h.ingStop) })
		<-h.ingDone
		if h.fb != nil {
			// The field path dies with the process; its in-memory seq ledger
			// is lost exactly as a crashed gateway's would be — the successor
			// starts a fresh stream (no hand-off token).
			h.fb.close()
		}
	}
	s.wg.Wait()
	if s.gw != nil {
		s.gw.Close()
	}
}

// PauseHeartbeats suppresses lease renewal without stopping room loops —
// the zombie scenario: a shard that looks dead to the coordinator while its
// rooms keep stepping and its stores stay locked.
func (s *Shard) PauseHeartbeats() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// ResumeHeartbeats ends the zombie simulation; the next beat will be fenced
// if the coordinator already declared this shard dead.
func (s *Shard) ResumeHeartbeats() {
	s.mu.Lock()
	s.paused = false
	s.mu.Unlock()
}

// Rollup merges the shard's hosted-room ingestors (plus rooms already
// retired from this shard) into one shard-level telemetry rollup.
func (s *Shard) Rollup() telemetry.Rollup {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.retired
	for _, h := range s.rooms {
		out.Merge(h.ing.Rollup())
	}
	return out
}

// FieldRollup merges every hosted room's live field-bus poll ledger with
// the retired contribution of rooms that already left this shard. Zero
// when the shard runs no field bus.
func (s *Shard) FieldRollup() telemetry.Rollup {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.fieldRetired
	for _, h := range s.rooms {
		if h.fb != nil && !h.fieldMerged {
			out.Merge(h.fb.rollup())
		}
	}
	return out
}

// Gateway exposes the shard's field-bus gateway — the handle the daemon
// registers its modbus ingest input against. Nil unless FieldBus is set.
func (s *Shard) Gateway() *gateway.Gateway { return s.gw }

// SetIngestStats wires the heartbeat's ingest-pipeline sampler after
// construction — the daemon boots its ingest pipeline against the shard's
// gateway, which exists only once the shard does. Call before Start.
func (s *Shard) SetIngestStats(f func() ingest.Stats) {
	s.mu.Lock()
	s.cfg.IngestStats = f
	s.mu.Unlock()
}

// SetSchedCounters wires the heartbeat's batch-scheduler sampler after
// construction, for hosts that run a job scheduler alongside the shard's
// rooms. Call before Start.
func (s *Shard) SetSchedCounters(f func() scheduler.Counters) {
	s.mu.Lock()
	s.cfg.SchedCounters = f
	s.mu.Unlock()
}

// Statuses snapshots the hosted rooms' statuses.
func (s *Shard) Statuses() []RoomStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RoomStatus, 0, len(s.rooms))
	for _, h := range s.rooms {
		out = append(out, h.status)
	}
	return out
}

// FencedRooms reports how many assignments this shard has relinquished
// after coordinator fencing (room-level plus whole-lease).
func (s *Shard) FencedRooms() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fencedRooms
}

// Assign places a room on this shard at the given assignment epoch. It is
// idempotent for a repeated (room, epoch) and fenced (ErrFenced) for an
// epoch below the one already hosted. The room's store is opened under the
// shard's data root: if a previous host left durable state there — the
// shared-root failover path — the room recovers and resumes where that
// record ends.
func (s *Shard) Assign(room int, epoch uint64) (AssignResponse, error) {
	return s.assign(room, epoch, nil)
}

// assign is Assign plus the field-bus hand-off: startSeqs, when non-nil, is
// the predecessor poller's Seqs() token from a migration bundle, seeding
// this host's poller so the room's sequence stream continues without
// duplicates or double-counted gaps.
func (s *Shard) assign(room int, epoch uint64, startSeqs []uint64) (AssignResponse, error) {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return AssignResponse{}, fmt.Errorf("controlplane: shard %s is stopped", s.cfg.ID)
	}
	if h, ok := s.rooms[room]; ok {
		defer s.mu.Unlock()
		if epoch < h.epoch {
			return AssignResponse{}, fmt.Errorf("assign room %d epoch %d < hosted %d: %w", room, epoch, h.epoch, ErrFenced)
		}
		// Same or newer epoch for a room already here: adopt the epoch and
		// report current progress — the idempotent replay of a lost response.
		h.epoch = epoch
		h.status.Epoch = epoch
		return AssignResponse{Step: h.status.Step, Recovered: h.recovered}, nil
	}
	s.mu.Unlock()

	cfg := s.cfg.Fleet
	cfg.DataDir = s.cfg.DataDir
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = 512
	}
	q := telemetry.NewQueue(queueCap)

	h := &roomHost{
		room:     room,
		epoch:    epoch,
		q:        q,
		stop:     make(chan struct{}),
		kill:     make(chan struct{}),
		loopDone: make(chan struct{}),
		ingStop:  make(chan struct{}),
		ingDone:  make(chan struct{}),
	}
	if s.gw != nil {
		// The hooks close over h; h.fb is installed below, after the runner
		// exists (the bridge needs the plant), and before any loop goroutine
		// starts. Warmup and recovery replay never actuate, so late-binding
		// the bus is safe.
		cfg.Actuate = func(_ int, spC float64) error { return h.fb.actuate(spC) }
		cfg.Publish = func(_ int, smp testbed.Sample) { h.fb.publish(smp) }
	}
	r, err := fleet.NewRunner(cfg, room, q, s.cfg.ID)
	if err != nil {
		return AssignResponse{}, err
	}
	h.runner = r
	h.recovered = r.Recovery().Recovered
	h.ing = telemetry.NewIngestor([]*telemetry.Queue{q}, cfg.ColdLimitC, cfg.Testbed.SamplePeriodS, cfg.Batch)
	if s.gw != nil {
		fb, err := newFieldBus(s.gw, cfg.RoomName(room), r.Plant(), gateway.PollerConfig{
			ColdLimitC: cfg.ColdLimitC,
			PeriodS:    cfg.Testbed.SamplePeriodS,
			Batch:      cfg.Batch,
			StartSeqs:  startSeqs,
		})
		if err != nil {
			r.Abandon()
			return AssignResponse{}, err
		}
		h.fb = fb
	}
	startStep, recovered := r.StepIndex(), r.Recovery().Recovered
	h.status = RoomStatus{Room: room, Epoch: epoch, Step: startStep, Planned: r.PlannedSteps()}

	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		r.Abandon()
		if h.fb != nil {
			h.fb.close()
		}
		return AssignResponse{}, fmt.Errorf("controlplane: shard %s is stopped", s.cfg.ID)
	}
	if prev, ok := s.rooms[room]; ok {
		// Raced with a concurrent assign; keep the incumbent.
		s.mu.Unlock()
		r.Abandon()
		if h.fb != nil {
			h.fb.close()
		}
		return AssignResponse{Step: prev.status.Step, Recovered: prev.recovered}, nil
	}
	s.rooms[room] = h
	s.mu.Unlock()

	go h.ingestLoop(s.cfg.Fleet.IngestEvery)
	go s.roomLoop(h)
	return AssignResponse{Step: startStep, Recovered: recovered}, nil
}

func (h *roomHost) ingestLoop(every time.Duration) {
	defer close(h.ingDone)
	if every <= 0 {
		every = 200 * time.Microsecond
	}
	h.ing.Run(h.ingStop, every)
}

// roomLoop drives one hosted room to completion, publishing progress under
// the shard lock after every step. On stop it exits at a step boundary and
// leaves draining to the requester; on kill it exits immediately.
func (s *Shard) roomLoop(h *roomHost) {
	defer close(h.loopDone)
	for !h.runner.Done() {
		select {
		case <-h.stop:
			return
		case <-h.kill:
			return
		default:
		}
		err := h.runner.Step()
		s.mu.Lock()
		if err != nil {
			h.state = hostFailed
			h.err = err
			h.status.Error = err.Error()
			s.mu.Unlock()
			return
		}
		h.status.Step = h.runner.StepIndex()
		s.mu.Unlock()
		if d := s.cfg.StepDelay; d > 0 {
			select {
			case <-h.stop:
				return
			case <-h.kill:
				return
			case <-time.After(d):
			}
		}
	}
	res, err := h.runner.Finish()
	// Fold the room's remaining telemetry before reporting Done, so anyone
	// who observes a finished room also observes its complete rollup.
	h.ingOnce.Do(func() { close(h.ingStop) })
	<-h.ingDone
	s.closeFieldBus(h)
	s.mu.Lock()
	if err != nil {
		h.state = hostFailed
		h.err = err
		h.status.Error = err.Error()
	} else {
		h.state = hostDone
		h.result = &res
		h.status.Done = true
		h.status.Result = &res
	}
	s.mu.Unlock()
}

// Drain checkpoints a hosted room at its current step boundary, closes its
// store and removes it from this shard — the migration write barrier. For a
// room that already finished it reports the final step.
func (s *Shard) Drain(room int) (DrainResponse, error) {
	s.mu.Lock()
	h, ok := s.rooms[room]
	s.mu.Unlock()
	if !ok {
		return DrainResponse{}, fmt.Errorf("controlplane: shard %s does not host room %d", s.cfg.ID, room)
	}
	step := s.relinquish(h, false)
	return DrainResponse{Step: step, GatewaySeqs: h.relSeqs}, nil
}

// closeFieldBus tears down a host's field path and folds its final poll
// ledger into the shard's retired field rollup exactly once. Returns the
// hand-off token (nil when the host runs no field bus). Idempotent; every
// caller sees the same token.
func (s *Shard) closeFieldBus(h *roomHost) []uint64 {
	if h.fb == nil {
		return nil
	}
	seqs, roll := h.fb.close()
	s.mu.Lock()
	if !h.fieldMerged {
		h.fieldMerged = true
		s.fieldRetired.Merge(roll)
	}
	s.mu.Unlock()
	return seqs
}

// relinquish stops a host's loop, closes (or abandons) its store, folds its
// telemetry into the retired rollup and drops it from the room map. Returns
// the step the room stopped at. Idempotent: a concurrent second caller
// (heartbeat fencing racing a drain RPC) blocks until the first finishes and
// gets the same step.
func (s *Shard) relinquish(h *roomHost, abandon bool) int {
	h.relOnce.Do(func() {
		h.stopOnce.Do(func() { close(h.stop) })
		<-h.loopDone
		h.ingOnce.Do(func() { close(h.ingStop) })
		<-h.ingDone
		// The loop has exited: flush and close the field path, capturing the
		// hand-off token the drain response carries to the migration target.
		h.relSeqs = s.closeFieldBus(h)

		step := h.runner.StepIndex()
		s.mu.Lock()
		finished := h.state == hostDone || h.state == hostFailed
		s.mu.Unlock()
		if !finished {
			if abandon {
				h.runner.Abandon()
			} else if n, err := h.runner.Drain(); err == nil {
				step = n
			}
		}
		s.mu.Lock()
		s.retired.Merge(h.ing.Rollup())
		delete(s.rooms, h.room)
		s.mu.Unlock()
		h.relStep = step
	})
	return h.relStep
}

// Resume installs a migration bundle into this shard's data root and hosts
// the room. The bundle lands in the room's store directory before the
// runner opens it, so recovery replays the shipped state and the room
// continues at the source's drain barrier.
func (s *Shard) Resume(req ResumeRequest) (ResumeResponse, error) {
	s.mu.Lock()
	if h, ok := s.rooms[req.Room]; ok {
		step, hosted := h.status.Step, h.epoch
		s.mu.Unlock()
		if req.Epoch < hosted {
			return ResumeResponse{}, fmt.Errorf("resume room %d: %w", req.Room, ErrFenced)
		}
		return ResumeResponse{Step: step}, nil // idempotent replay
	}
	s.mu.Unlock()
	dir := filepath.Join(s.cfg.DataDir, s.cfg.Fleet.RoomName(req.Room))
	if err := UnpackBundle(dir, req.Bundle); err != nil {
		return ResumeResponse{}, err
	}
	ar, err := s.assign(req.Room, req.Epoch, req.Bundle.GatewaySeqs)
	if err != nil {
		return ResumeResponse{}, err
	}
	if ar.Step != req.Bundle.Step {
		// The shipped store did not reproduce the barrier — refuse to run a
		// room whose continuation point moved.
		_, _ = s.Drain(req.Room)
		return ResumeResponse{}, fmt.Errorf("controlplane: resume room %d at step %d, bundle barrier %d", req.Room, ar.Step, req.Bundle.Step)
	}
	return ResumeResponse{Step: ar.Step}, nil
}

// PackRoom packs a drained room's store directory for shipment. The room
// must not be hosted here any more (Drain first).
func (s *Shard) PackRoom(room int) (Bundle, error) {
	s.mu.Lock()
	_, hosted := s.rooms[room]
	s.mu.Unlock()
	if hosted {
		return Bundle{}, fmt.Errorf("controlplane: room %d still hosted; drain before packing", room)
	}
	name := s.cfg.Fleet.RoomName(room)
	// The barrier step travels in the drain response; the bundle re-derives
	// it on unpack via recovery, so 0 here is a placeholder the coordinator
	// overwrites with the drained step.
	return PackBundle(filepath.Join(s.cfg.DataDir, name), room, name, 0)
}

// heartbeatLoop registers with the coordinator (retrying forever — the
// shard is useful without it) and then renews the lease every
// HeartbeatEvery, carrying room statuses and the shard rollup. A fenced
// beat means the coordinator declared this shard dead and moved its rooms:
// the shard drains everything it still hosts and re-registers as a fresh
// worker.
func (s *Shard) heartbeatLoop() {
	defer s.wg.Done()
	if !s.register() {
		return
	}
	t := time.NewTicker(s.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		paused := s.paused
		s.mu.Unlock()
		if paused {
			continue
		}
		if !s.beat() {
			return
		}
	}
}

// register announces the shard until it succeeds or the shard stops.
// Returns false when stopped.
func (s *Shard) register() bool {
	for {
		var resp RegisterResponse
		err := s.client.Call(context.Background(), http.MethodPost, "/register",
			RegisterRequest{ID: s.cfg.ID, Addr: s.cfg.Advertise}, &resp)
		if err == nil {
			s.mu.Lock()
			s.lease = resp.Epoch
			s.mu.Unlock()
			return true
		}
		s.mu.Lock()
		s.beatFailures++
		s.mu.Unlock()
		select {
		case <-s.stop:
			return false
		case <-time.After(s.cfg.HeartbeatEvery):
		}
	}
}

// beat sends one heartbeat and applies the coordinator's fencing verdicts.
// Returns false when the shard stopped.
func (s *Shard) beat() bool {
	s.mu.Lock()
	req := HeartbeatRequest{ID: s.cfg.ID, Epoch: s.lease}
	for _, h := range s.rooms {
		st := h.status
		req.Rooms = append(req.Rooms, st)
	}
	gwStats, ingStats, schedStats := s.cfg.GatewayStats, s.cfg.IngestStats, s.cfg.SchedCounters
	s.mu.Unlock()
	req.Rollup = s.Rollup()
	if gwStats != nil {
		gs := gwStats()
		req.Gateway = &gs
	} else if s.gw != nil {
		gs := s.gw.Stats()
		req.Gateway = &gs
	}
	if ingStats != nil {
		is := ingStats()
		req.Ingest = &is
	}
	if s.gw != nil {
		fr := s.FieldRollup()
		req.Field = &fr
	}
	if schedStats != nil {
		sc := schedStats()
		req.Sched = &sc
	}

	var resp HeartbeatResponse
	err := s.client.Call(context.Background(), http.MethodPost, "/heartbeat", req, &resp)
	switch {
	case err == nil:
		for _, f := range resp.FencedRooms {
			s.mu.Lock()
			h, ok := s.rooms[f.Room]
			// Only the fenced epoch (or older) is relinquished — if the room
			// was re-assigned here at a newer epoch while the verdict was in
			// flight, that hosting is legitimate and stays.
			ok = ok && h.epoch <= f.Epoch
			if ok {
				s.fencedRooms++
			}
			s.mu.Unlock()
			if ok {
				// The room lives elsewhere now; checkpoint, close, release
				// the lock so the new owner can open the store.
				s.relinquish(h, false)
			}
		}
		return true
	case isFenced(err):
		// Whole lease fenced: the coordinator buried us and re-placed our
		// rooms. Stop writing, release everything, come back as new.
		s.mu.Lock()
		s.leaseFences++
		hosts := make([]*roomHost, 0, len(s.rooms))
		for _, h := range s.rooms {
			hosts = append(hosts, h)
			s.fencedRooms++
		}
		s.mu.Unlock()
		for _, h := range hosts {
			s.relinquish(h, false)
		}
		return s.register()
	default:
		s.mu.Lock()
		s.beatFailures++
		s.mu.Unlock()
		return true // coordinator unreachable: keep stepping, keep trying
	}
}

func isFenced(err error) bool { return errors.Is(err, ErrFenced) }

// --- HTTP handlers ---

func (s *Shard) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.rooms)
	lease := s.lease
	s.mu.Unlock()
	writeJSON(w, r, nil, http.StatusOK, map[string]any{
		"id": s.cfg.ID, "rooms": n, "lease_epoch": lease,
	})
}

func (s *Shard) handleRooms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, r, nil, http.StatusOK, s.Statuses())
}

func (s *Shard) handleAssign(w http.ResponseWriter, r *http.Request) {
	if s.idem.replay(w, r.Header.Get(idemHeader)) {
		return
	}
	var req AssignRequest
	if !decodeBody(w, r, s.idem, &req) {
		return
	}
	resp, err := s.Assign(req.Room, req.Epoch)
	if err != nil {
		writeError(w, r, s.idem, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, r, s.idem, http.StatusOK, resp)
}

func (s *Shard) handleDrain(w http.ResponseWriter, r *http.Request) {
	if s.idem.replay(w, r.Header.Get(idemHeader)) {
		return
	}
	var req DrainRequest
	if !decodeBody(w, r, s.idem, &req) {
		return
	}
	resp, err := s.Drain(req.Room)
	if err != nil {
		writeError(w, r, s.idem, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, r, s.idem, http.StatusOK, resp)
}

func (s *Shard) handleBundle(w http.ResponseWriter, r *http.Request) {
	room, err := strconv.Atoi(r.URL.Query().Get("room"))
	if err != nil {
		writeError(w, r, nil, http.StatusBadRequest, "bad room: %v", err)
		return
	}
	b, err := s.PackRoom(room)
	if err != nil {
		writeError(w, r, nil, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, r, nil, http.StatusOK, b)
}

func (s *Shard) handleResume(w http.ResponseWriter, r *http.Request) {
	if s.idem.replay(w, r.Header.Get(idemHeader)) {
		return
	}
	var req ResumeRequest
	if !decodeBody(w, r, s.idem, &req) {
		return
	}
	resp, err := s.Resume(req)
	if err != nil {
		writeError(w, r, s.idem, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, r, s.idem, http.StatusOK, resp)
}

func (s *Shard) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	ru := s.Rollup()
	s.mu.Lock()
	rooms, fenced, fails := len(s.rooms), s.fencedRooms, s.beatFailures
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE tesla_shard_rooms gauge\ntesla_shard_rooms{shard=%q} %d\n", s.cfg.ID, rooms)
	fmt.Fprintf(w, "# TYPE tesla_shard_samples_ingested_total counter\ntesla_shard_samples_ingested_total{shard=%q} %d\n", s.cfg.ID, ru.Samples)
	fmt.Fprintf(w, "# TYPE tesla_shard_seq_gaps_total counter\ntesla_shard_seq_gaps_total{shard=%q} %d\n", s.cfg.ID, ru.Gaps)
	fmt.Fprintf(w, "# TYPE tesla_shard_fenced_rooms_total counter\ntesla_shard_fenced_rooms_total{shard=%q} %d\n", s.cfg.ID, fenced)
	fmt.Fprintf(w, "# TYPE tesla_shard_heartbeat_failures_total counter\ntesla_shard_heartbeat_failures_total{shard=%q} %d\n", s.cfg.ID, fails)
	if s.gw != nil {
		writeGatewayMetrics(w, fmt.Sprintf("{shard=%q}", s.cfg.ID), s.gw.Stats())
		fr := s.FieldRollup()
		fmt.Fprintf(w, "# TYPE tesla_shard_field_samples_total counter\ntesla_shard_field_samples_total{shard=%q} %d\n", s.cfg.ID, fr.Samples)
		fmt.Fprintf(w, "# TYPE tesla_shard_field_seq_gaps_total counter\ntesla_shard_field_seq_gaps_total{shard=%q} %d\n", s.cfg.ID, fr.Gaps)
	}
}

func statusFor(err error) int {
	if isFenced(err) {
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

func decodeBody(w http.ResponseWriter, r *http.Request, ic *idemCache, v any) bool {
	if err := jsonDecode(r, v); err != nil {
		writeError(w, r, ic, http.StatusBadRequest, "decode: %v", err)
		return false
	}
	return true
}
