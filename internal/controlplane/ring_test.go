package controlplane

import (
	"fmt"
	"testing"
)

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		counts[r.Lookup(fmt.Sprintf("room-%d#%d", i, i))]++
	}
	for _, n := range []string{"a", "b", "c"} {
		if counts[n] == 0 {
			t.Errorf("node %s owns no keys: %v", n, counts)
		}
	}
}

func TestRingRemoveMovesOnlyOwnedKeys(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"a", "b", "c"} {
		r.Add(n)
	}
	before := map[string]string{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("room-%d#%d", i, i)
		before[k] = r.Lookup(k)
	}
	r.Remove("b")
	for k, owner := range before {
		after := r.Lookup(k)
		if owner != "b" && after != owner {
			t.Fatalf("key %s moved %s→%s although its owner survived", k, owner, after)
		}
		if owner == "b" && after == "b" {
			t.Fatalf("key %s still on removed node", k)
		}
	}
	if got := r.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("nodes after remove: %v", got)
	}
}

func TestRingDeterministic(t *testing.T) {
	build := func() *Ring {
		r := NewRing(32)
		// Insertion order must not matter.
		for _, n := range []string{"c", "a", "b"} {
			r.Add(n)
		}
		return r
	}
	r1, r2 := build(), build()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		if r1.Lookup(k) != r2.Lookup(k) {
			t.Fatalf("placement of %s differs between identical rings", k)
		}
	}
	if r1.Lookup("x") == "" || NewRing(0).Lookup("x") != "" {
		t.Fatal("empty-ring / populated-ring lookup contract broken")
	}
}
