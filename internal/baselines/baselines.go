// Package baselines implements the comparison models the paper evaluates
// against (§5.2–5.3):
//
//   - Lazic et al. [20]: a single autoregressive linear model over all DC
//     temperatures fitted with ordinary least squares, rolled out
//     recursively over the horizon (Table 3, and the plant model of the
//     Lazic MPC controller);
//   - Wang et al. [42]: the same recursive architecture with an MLP
//     regressor (Table 3);
//   - MLP / XGBoost-style GBT / Random-Forest cooling-energy predictors on
//     the same features as TESLA's cooling-energy sub-module (Table 4).
//
// The recursive models deliberately share the paper-criticized design: all
// temperatures are modeled collectively together with the cooling demand
// (server power) and provisioning (set-point), and multi-step prediction
// feeds the model its own outputs, so error compounds along the horizon.
package baselines

import (
	"fmt"

	"tesla/internal/dataset"
	"tesla/internal/linreg"
	"tesla/internal/mat"
	"tesla/internal/mlp"
)

// Regressor is the minimal multi-output prediction interface the recursive
// roll-out needs.
type Regressor interface {
	Predict(x []float64) []float64
}

// Recursive is a one-step-ahead model over the stacked temperature vector
// [ACU sensors..., DC sensors...], rolled out recursively.
type Recursive struct {
	W      int // autoregressive window (past steps)
	Na, Nd int
	Reg    Regressor
}

// featureLen returns the input dimensionality: set-point and server power
// for the next step plus W lags of all temperatures.
func (m *Recursive) featureLen() int { return 2 + m.W*(m.Na+m.Nd) }

// buildRecursiveData assembles the one-step-ahead training set.
func buildRecursiveData(tr *dataset.Trace, w, stride int) (x, y *mat.Dense, err error) {
	na, nd := tr.Na(), tr.Nd()
	dim := 2 + w*(na+nd)
	var rows int
	for t := w - 1; t+1 < tr.Len(); t += stride {
		rows++
	}
	if rows < dim {
		return nil, nil, fmt.Errorf("baselines: only %d training rows for %d features (underdetermined)", rows, dim)
	}
	x = mat.New(rows, dim)
	y = mat.New(rows, na+nd)
	i := 0
	for t := w - 1; t+1 < tr.Len(); t += stride {
		row := x.Row(i)
		row[0] = tr.Setpoint[t+1]
		row[1] = tr.AvgPower[t]
		pos := 2
		for j := 0; j < w; j++ { // lag j: time t-j
			for a := 0; a < na; a++ {
				row[pos] = tr.ACUTemps[a][t-j]
				pos++
			}
			for k := 0; k < nd; k++ {
				row[pos] = tr.DCTemps[k][t-j]
				pos++
			}
		}
		yr := y.Row(i)
		for a := 0; a < na; a++ {
			yr[a] = tr.ACUTemps[a][t+1]
		}
		for k := 0; k < nd; k++ {
			yr[na+k] = tr.DCTemps[k][t+1]
		}
		i++
	}
	return x, y, nil
}

// TrainLazic fits the Lazic et al. model: one-step AR with ordinary least
// squares (no regularization, per Dhillon et al. [9] as cited in §5.2).
func TrainLazic(tr *dataset.Trace, w, stride int) (*Recursive, error) {
	x, y, err := buildRecursiveData(tr, w, stride)
	if err != nil {
		return nil, err
	}
	reg, err := linreg.Fit(x, y, 0)
	if err != nil {
		return nil, fmt.Errorf("baselines: Lazic OLS fit: %w", err)
	}
	return &Recursive{W: w, Na: tr.Na(), Nd: tr.Nd(), Reg: reg}, nil
}

// TrainWangMLP fits the Wang et al. model: the same one-step architecture
// with an MLP regressor.
func TrainWangMLP(tr *dataset.Trace, w, stride int, cfg mlp.Config) (*Recursive, error) {
	x, y, err := buildRecursiveData(tr, w, stride)
	if err != nil {
		return nil, err
	}
	net, err := mlp.Train(x, y, cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: Wang MLP fit: %w", err)
	}
	return &Recursive{W: w, Na: tr.Na(), Nd: tr.Nd(), Reg: net}, nil
}

// RolloutInput is the recursive model's conditioning information: the last W
// temperature snapshots (oldest→newest) and the current server power, which
// the model holds constant over the horizon (the load-unawareness the paper
// criticizes).
type RolloutInput struct {
	ACUTemps [][]float64 // [Na][W]
	DCTemps  [][]float64 // [Nd][W]
	PowerKW  float64
}

// RolloutInputAt extracts conditioning information ending at step t.
func RolloutInputAt(tr *dataset.Trace, t, w int) (*RolloutInput, error) {
	if t-w+1 < 0 || t >= tr.Len() {
		return nil, fmt.Errorf("baselines: window [%d,%d] outside trace of %d", t-w+1, t, tr.Len())
	}
	in := &RolloutInput{PowerKW: tr.AvgPower[t]}
	in.ACUTemps = make([][]float64, tr.Na())
	for a := range in.ACUTemps {
		in.ACUTemps[a] = append([]float64(nil), tr.ACUTemps[a][t-w+1:t+1]...)
	}
	in.DCTemps = make([][]float64, tr.Nd())
	for k := range in.DCTemps {
		in.DCTemps[k] = append([]float64(nil), tr.DCTemps[k][t-w+1:t+1]...)
	}
	return in, nil
}

// Rollout predicts L steps ahead recursively under the given set-point
// sequence, returning L×Na ACU and L×Nd DC temperature predictions.
func (m *Recursive) Rollout(in *RolloutInput, setpoints []float64) (acuPred, dcPred *mat.Dense, err error) {
	if len(in.ACUTemps) != m.Na || len(in.DCTemps) != m.Nd {
		return nil, nil, fmt.Errorf("baselines: input has %d/%d series, model expects %d/%d",
			len(in.ACUTemps), len(in.DCTemps), m.Na, m.Nd)
	}
	for _, s := range in.ACUTemps {
		if len(s) != m.W {
			return nil, nil, fmt.Errorf("baselines: need %d lags, got %d", m.W, len(s))
		}
	}
	L := len(setpoints)
	// lags[j] is the stacked temperature vector at lag j (0 = newest).
	lags := make([][]float64, m.W)
	for j := 0; j < m.W; j++ {
		v := make([]float64, m.Na+m.Nd)
		for a := 0; a < m.Na; a++ {
			v[a] = in.ACUTemps[a][m.W-1-j]
		}
		for k := 0; k < m.Nd; k++ {
			v[m.Na+k] = in.DCTemps[k][m.W-1-j]
		}
		lags[j] = v
	}
	acuPred = mat.New(L, m.Na)
	dcPred = mat.New(L, m.Nd)
	x := make([]float64, m.featureLen())
	for l := 0; l < L; l++ {
		x[0] = setpoints[l]
		x[1] = in.PowerKW
		pos := 2
		for j := 0; j < m.W; j++ {
			copy(x[pos:pos+m.Na+m.Nd], lags[j])
			pos += m.Na + m.Nd
		}
		next := m.Reg.Predict(x)
		copy(acuPred.Row(l), next[:m.Na])
		copy(dcPred.Row(l), next[m.Na:])
		// Shift lags: newest becomes the prediction.
		copy(lags[1:], lags[:m.W-1])
		lags[0] = append([]float64(nil), next...)
	}
	return acuPred, dcPred, nil
}
